// Ablation C: online labeling (Section 9 extension). Measures event-feed
// throughput, mid-run query latency (O(plan depth), no frozen orders yet)
// and the cost of Finish() against offline labeling of the same run.
#include <cstdio>
#include <functional>

#include "bench/bench_common.h"
#include "src/common/stopwatch.h"
#include "src/core/online_labeler.h"

int main() {
  using namespace skl;
  using namespace skl::bench;
  Specification spec = QblastSpec();
  auto scheme = CreateSpecScheme(SpecSchemeKind::kTcm);
  SKL_CHECK(scheme->Build(spec.graph()).ok());
  SkeletonLabeler offline(&spec, SpecSchemeKind::kTcm);
  SKL_CHECK(offline.Init().ok());

  PrintHeader("Ablation C: Online vs Offline Labeling (QBLAST)");
  std::printf("%10s %14s %16s %14s %14s\n", "run size", "feed ms",
              "mid-run q ns", "finish ms", "offline ms");
  for (uint32_t target : SizeSweep()) {
    if (target > 51200) break;
    GeneratedRun gen = MakeRun(spec, target, target * 7 + 5);

    // Replay the ground-truth plan as a DFS event stream.
    const ExecutionPlan& plan = gen.plan;
    std::vector<std::vector<VertexId>> by_context(plan.num_nodes());
    for (VertexId v = 0; v < gen.run.num_vertices(); ++v) {
      by_context[plan.ContextOf(v)].push_back(v);
    }
    OnlineLabeler ol(&spec, scheme.get());
    Stopwatch sw;
    std::function<void(PlanNodeId)> replay = [&](PlanNodeId x) {
      for (VertexId v : by_context[x]) {
        auto id = ol.ExecuteModule(spec.ModuleName(gen.origin[v]));
        SKL_CHECK(id.ok());
      }
      for (PlanNodeId g : plan.node(x).children) {
        SKL_CHECK(ol.BeginExecution(plan.node(g).hier).ok());
        for (PlanNodeId copy : plan.node(g).children) {
          SKL_CHECK(ol.BeginCopy().ok());
          replay(copy);
          SKL_CHECK(ol.EndCopy().ok());
        }
        SKL_CHECK(ol.EndExecution().ok());
      }
    };
    replay(kPlanRoot);
    double feed_ms = sw.ElapsedMillis();

    auto queries = GenerateQueries(ol.num_vertices(), 100000, target + 3);
    sw.Restart();
    size_t sink = 0;
    for (const auto& [u, v] : queries) sink += ol.Reaches(u, v);
    double query_ns = sw.ElapsedSeconds() * 1e9 / queries.size();
    if (sink == SIZE_MAX) std::printf("!");

    sw.Restart();
    auto finished = std::move(ol).Finish();
    double finish_ms = sw.ElapsedMillis();
    SKL_CHECK(finished.ok());

    sw.Restart();
    auto off = offline.LabelRun(gen.run);
    double offline_ms = sw.ElapsedMillis();
    SKL_CHECK(off.ok());

    std::printf("%10u %14.3f %16.1f %14.3f %14.3f\n",
                gen.run.num_vertices(), feed_ms, query_ns, finish_ms,
                offline_ms);
  }
  std::printf("\nexpected: event feeding and Finish() are linear and "
              "cheaper than offline labeling\n"
              "          (no graph recovery needed); mid-run queries cost "
              "O(plan depth) ~ tens of ns.\n");
  return 0;
}
