// The dynamic-update headline number (docs/UPDATES.md): how much cheaper
// an incremental relabel of the delta's dirty region is than rebuilding
// the skeleton scheme from scratch. The same delta sequence — parallel
// source->x->sink module grafts alternated with their removals, whose
// dirty region stays a handful of vertices regardless of spec size — runs
// against an incrementally-relabeling service and a twin pinned to
// Options::full_rebuild_on_delta, and the per-delta averages land in the
// gated JSON keys spec_delta_relabel_ms / spec_delta_full_rebuild_ms
// (tools/bench_compare.py fails CI when the relabel path regresses).
//
// Workload knobs: SKL_BENCH_DELTA_NG (spec vertices, default 800) and
// SKL_BENCH_DELTA_OPS (applied deltas per side, default 40; rounded up to
// even so every graft is ungrafted and the spec ends at its base size).
// SKL_BENCH_JSON=<path> writes the metrics machine-readably.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench/bench_common.h"
#include "src/core/provenance_service.h"
#include "src/workflow/spec_delta.h"

int main() {
  using namespace skl;
  using namespace skl::bench;

  uint32_t n_g = 800;
  if (const char* env = std::getenv("SKL_BENCH_DELTA_NG")) {
    n_g = static_cast<uint32_t>(std::strtoul(env, nullptr, 10));
  }
  size_t num_ops = 40;
  if (const char* env = std::getenv("SKL_BENCH_DELTA_OPS")) {
    num_ops = std::strtoul(env, nullptr, 10);
  }
  num_ops += num_ops % 2;  // add/remove pairs

  JsonReporter json("bench_spec_update");
  json.Add("spec_vertices", n_g, "vertices");
  json.Add("num_deltas", static_cast<double>(num_ops), "deltas");

  PrintHeader("Spec-Delta Relabel vs Full Rebuild (synthetic n_G=" +
              std::to_string(n_g) + ", " + std::to_string(num_ops) +
              " deltas)");

  const Specification spec = SyntheticSpec(n_g);
  const Digraph& g = spec.graph();
  std::string source, sink;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (g.InNeighbors(v).empty()) source = spec.ModuleName(v);
    if (g.OutNeighbors(v).empty()) sink = spec.ModuleName(v);
  }
  SKL_CHECK_MSG(!source.empty() && !sink.empty(), "spec has no source/sink");

  // The measured op sequence: graft par<i>, ungraft par<i>, repeat. The
  // graft's dirty region is {source, par<i>} — constant-size — so the
  // incremental path's advantage grows linearly with n_G.
  auto run_side = [&](bool full_rebuild) -> double {
    ProvenanceService::Options options;
    options.full_rebuild_on_delta = full_rebuild;
    auto service =
        ProvenanceService::Create(spec, SpecSchemeKind::kTcm, options);
    SKL_CHECK_MSG(service.ok(), service.status().ToString().c_str());
    Stopwatch sw;
    for (size_t i = 0; i < num_ops; i += 2) {
      SpecDelta graft;
      graft.kind = SpecDelta::Kind::kAddModule;
      graft.module = "par" + std::to_string(i);
      graft.from = {source};
      graft.to = {sink};
      auto added = service->ApplySpecDelta(graft);
      SKL_CHECK_MSG(added.ok(), added.status().ToString().c_str());
      SpecDelta ungraft;
      ungraft.kind = SpecDelta::Kind::kRemoveModule;
      ungraft.module = graft.module;
      auto removed = service->ApplySpecDelta(ungraft);
      SKL_CHECK_MSG(removed.ok(), removed.status().ToString().c_str());
    }
    SKL_CHECK_MSG(service->spec_epoch() == 1 + num_ops, "epoch mismatch");
    return sw.ElapsedMillis() / static_cast<double>(num_ops);
  };

  const double full_ms = run_side(/*full_rebuild=*/true);
  const double relabel_ms = run_side(/*full_rebuild=*/false);

  std::printf("%-28s %12.4f ms/delta\n", "incremental relabel", relabel_ms);
  std::printf("%-28s %12.4f ms/delta\n", "full scheme rebuild", full_ms);
  std::printf("%-28s %12.2fx\n", "speedup",
              relabel_ms > 0 ? full_ms / relabel_ms : 0.0);

  json.Add("spec_delta_relabel_ms", relabel_ms, "ms");
  json.Add("spec_delta_full_rebuild_ms", full_ms, "ms");
  return 0;
}
