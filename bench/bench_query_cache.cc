// Measures what the sharded registry + per-shard result cache buy on the
// serving path (docs/BENCHMARKS.md):
//
//   1. per-query latency: uncached compute vs cache miss (compute+insert)
//      vs cache hit, under a cheap scheme (TCM, O(1) label compare) and an
//      expensive one (BFS, per-query graph search) — the hit row should
//      undercut BFS compute by orders of magnitude and stay competitive
//      even with TCM;
//   2. the cache hit rate on a repeated-query workload (a bounded working
//      set swept many times), the >90% regime the acceptance bar names;
//   3. multi-reader throughput at 1/2/4/8 threads with the registry fully
//      contended (--shards=1: every run on one lock) vs striped
//      (16 shards) — the lock-contention spread only shows on multi-core
//      hardware (the trailer prints the thread count available).
//
// Knobs (environment, like every bench here): SKL_BENCH_CACHE_QUERIES,
// SKL_BENCH_CACHE_SIZE, SKL_BENCH_CACHE_WORKING_SET,
// SKL_BENCH_CACHE_MAX_THREADS. SKL_BENCH_JSON=<path> writes the key
// metrics for the CI bench-results artifact.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/common/metrics.h"
#include "src/core/provenance_service.h"
#include "src/core/provenance_store.h"
#include "src/core/run_labeling.h"

namespace skl {
namespace bench {
namespace {

uint32_t EnvU32(const char* name, uint32_t fallback) {
  if (const char* env = std::getenv(name)) {
    return static_cast<uint32_t>(std::strtoul(env, nullptr, 10));
  }
  return fallback;
}

ProvenanceService MakeService(const Specification& spec, SpecSchemeKind kind,
                              size_t num_shards, size_t cache_slots) {
  auto service = ProvenanceService::Create(
      Specification(spec), kind,
      {.num_shards = num_shards, .cache_slots = cache_slots});
  SKL_CHECK_MSG(service.ok(), service.status().ToString().c_str());
  return std::move(service).value();
}

double NsPerQuery(double seconds, size_t queries) {
  return queries == 0 ? 0.0 : seconds * 1e9 / static_cast<double>(queries);
}

/// Sweeps the query set `rounds` times; returns elapsed seconds.
double Sweep(const ProvenanceService& service, RunId id,
             const std::vector<VertexPair>& queries, size_t rounds) {
  Stopwatch sw;
  for (size_t r = 0; r < rounds; ++r) {
    for (const auto& [v, w] : queries) {
      auto answer = service.Reaches(id, v, w);
      SKL_CHECK(answer.ok());
    }
  }
  return sw.ElapsedSeconds();
}

/// Sweeps once, recording each query's latency in nanoseconds into `hist` —
/// the same LatencyHistogram the server's metrics endpoint serves
/// (src/common/metrics.h), so a bench p99 and a scraped p99 come from one
/// bucketing code path. Kept separate from Sweep: the per-query Stopwatch
/// restart would perturb the aggregate ns/query numbers the CI gate reads.
void SweepRecording(const ProvenanceService& service, RunId id,
                    const std::vector<VertexPair>& queries,
                    LatencyHistogram& hist) {
  Stopwatch sw;
  for (const auto& [v, w] : queries) {
    sw.Restart();
    auto answer = service.Reaches(id, v, w);
    hist.Record(static_cast<uint64_t>(sw.ElapsedSeconds() * 1e9));
    SKL_CHECK(answer.ok());
  }
}

}  // namespace
}  // namespace bench
}  // namespace skl

int main() {
  using namespace skl;         // NOLINT: bench brevity
  using namespace skl::bench;  // NOLINT

  const uint32_t run_size = EnvU32("SKL_BENCH_CACHE_SIZE", 2000);
  const uint32_t total_queries = EnvU32("SKL_BENCH_CACHE_QUERIES", 200000);
  const uint32_t working_set = EnvU32("SKL_BENCH_CACHE_WORKING_SET", 1024);
  const uint32_t max_threads = EnvU32("SKL_BENCH_CACHE_MAX_THREADS", 8);
  const size_t rounds =
      std::max<size_t>(1, total_queries / std::max<uint32_t>(1, working_set));

  JsonReporter json("bench_query_cache");
  const Specification spec = SyntheticSpec();
  const GeneratedRun generated = MakeRun(spec, run_size, /*seed=*/7);
  const VertexId n = generated.run.num_vertices();

  // ------------------------------------------ 1. hit / miss / uncached ns --
  PrintHeader("query cache: per-query latency (ns)");
  std::printf("%-8s %14s %14s %14s %10s\n", "scheme", "uncached", "miss",
              "hit", "hit rate");
  for (SpecSchemeKind kind : {SpecSchemeKind::kTcm, SpecSchemeKind::kBfs}) {
    const std::string name = SpecSchemeKindName(kind);
    ProvenanceService uncached = MakeService(spec, kind, 8, 0);
    ProvenanceService cached = MakeService(spec, kind, 8, 1 << 15);
    auto uncached_id = uncached.AddRun(generated.run);
    auto cached_id = cached.AddRun(generated.run);
    SKL_CHECK(uncached_id.ok() && cached_id.ok());
    const std::vector<VertexPair> queries =
        GenerateQueries(n, working_set, /*seed=*/17);

    const double uncached_ns = NsPerQuery(
        Sweep(uncached, *uncached_id, queries, rounds),
        queries.size() * rounds);
    // Cold pass: every probe misses, computes and inserts.
    const double miss_ns = NsPerQuery(
        Sweep(cached, *cached_id, queries, 1), queries.size());
    // Warm passes: everything hits (the working set fits the cache).
    const double hit_ns = NsPerQuery(
        Sweep(cached, *cached_id, queries, rounds), queries.size() * rounds);
    const ServiceStats stats = cached.service_stats();
    const double hit_rate =
        100.0 * static_cast<double>(stats.cache_hits) /
        static_cast<double>(stats.cache_hits + stats.cache_misses);
    // Hit-latency distribution (everything is warm by now): quantiles via
    // the production histogram rather than a private sort.
    LatencyHistogram hit_hist;
    SweepRecording(cached, *cached_id, queries, hit_hist);
    const double hit_p99_ns = hit_hist.Quantile(0.99);
    std::printf("%-8s %14.1f %14.1f %14.1f %9.1f%%   (hit p99 %.0f ns)\n",
                name.c_str(), uncached_ns, miss_ns, hit_ns, hit_rate,
                hit_p99_ns);
    json.Add(name + "_uncached_ns", uncached_ns, "ns/query");
    json.Add(name + "_miss_ns", miss_ns, "ns/query");
    json.Add(name + "_hit_ns", hit_ns, "ns/query");
    json.Add(name + "_hit_p99_ns", hit_p99_ns, "ns/query");
    if (kind == SpecSchemeKind::kTcm) {
      // The bench-compare CI gate's serving-latency key
      // (tools/bench_compare.py; docs/BENCHMARKS.md).
      json.Add("query_cache_hit_ns", hit_ns, "ns/query");
    }
  }

  // --------------------------------- 2. repeated-query workload hit rate --
  {
    ProvenanceService service = MakeService(spec, SpecSchemeKind::kTcm, 8,
                                            1 << 15);
    auto id = service.AddRun(generated.run);
    SKL_CHECK(id.ok());
    const std::vector<VertexPair> queries =
        GenerateQueries(n, working_set, /*seed=*/29);
    Sweep(service, *id, queries, rounds);
    const ServiceStats stats = service.service_stats();
    const double hit_rate =
        100.0 * static_cast<double>(stats.cache_hits) /
        static_cast<double>(stats.cache_hits + stats.cache_misses);
    PrintHeader("repeated-query workload");
    std::printf("working set %u pairs, %zu sweeps: hit rate %.1f%% "
                "(%llu hits / %llu lookups)\n",
                working_set, rounds, hit_rate,
                static_cast<unsigned long long>(stats.cache_hits),
                static_cast<unsigned long long>(stats.cache_hits +
                                                stats.cache_misses));
    json.Add("repeat_workload_hit_rate_pct", hit_rate, "%");
  }

  // ------------------- 2b. batch kernel: columnar vs AoS label storage --
  {
    // The storage-layout before/after column: the same label-compare sweep
    // (every source vertex against a fixed target, the ReachesBatch inner
    // loop) over the store's flat columns vs an array-of-structs twin
    // materialized from them — the per-run heap-blob layout the columnar
    // arena replaced. Store-level on purpose: no cache, no locks, just the
    // memory layout under the decision kernel.
    ProvenanceService service = MakeService(spec, SpecSchemeKind::kTcm, 8, 0);
    auto id = service.AddRun(generated.run);
    SKL_CHECK(id.ok());
    auto blob = service.ExportRun(*id);
    SKL_CHECK(blob.ok());
    auto store = ProvenanceStore::Deserialize(*blob);
    SKL_CHECK(store.ok());
    const SpecLabelingScheme& scheme = service.scheme();
    const size_t kernel_rounds = std::max<size_t>(1, total_queries / n);

    std::vector<RunLabel> aos;
    aos.reserve(n);
    for (VertexId v = 0; v < n; ++v) aos.push_back(store->label(v));

    size_t columnar_true = 0, aos_true = 0;
    Stopwatch sw;
    for (size_t r = 0; r < kernel_rounds; ++r) {
      const RunLabel target = store->label(n - 1 - (r % n));
      for (VertexId v = 0; v < n; ++v) {
        columnar_true +=
            RunLabeling::Decide(store->label(v), target, scheme) ? 1 : 0;
      }
    }
    const double columnar_ns =
        NsPerQuery(sw.ElapsedSeconds(), static_cast<size_t>(n) * kernel_rounds);
    sw.Restart();
    for (size_t r = 0; r < kernel_rounds; ++r) {
      const RunLabel target = aos[n - 1 - (r % n)];
      for (VertexId v = 0; v < n; ++v) {
        aos_true += RunLabeling::Decide(aos[v], target, scheme) ? 1 : 0;
      }
    }
    const double aos_ns =
        NsPerQuery(sw.ElapsedSeconds(), static_cast<size_t>(n) * kernel_rounds);
    SKL_CHECK(columnar_true == aos_true);  // layouts must agree bit-for-bit

    PrintHeader("batch label-compare kernel (TCM, full-run sweep)");
    std::printf("columnar %8.2f ns/pair   aos twin %8.2f ns/pair "
                "(%zu pairs, answers identical)\n",
                columnar_ns, aos_ns,
                static_cast<size_t>(n) * kernel_rounds);
    json.Add("batch_columnar_ns", columnar_ns, "ns/pair");
    json.Add("batch_aos_ns", aos_ns, "ns/pair");
  }

  // --------------------------- 3. reader scaling: contended vs sharded --
  PrintHeader("multi-reader throughput (queries/s)");
  std::printf("%-8s %16s %16s\n", "threads", "1 shard", "16 shards");
  for (uint32_t threads = 1; threads <= max_threads; threads *= 2) {
    double qps[2] = {0, 0};
    int config = 0;
    for (size_t shards : {size_t{1}, size_t{16}}) {
      ProvenanceService service =
          MakeService(spec, SpecSchemeKind::kTcm, shards, 1 << 15);
      // One run per thread: with 16 shards the ids stripe over distinct
      // locks; with 1 shard every thread contends on the same one.
      std::vector<RunId> ids;
      for (uint32_t t = 0; t < threads; ++t) {
        auto id = service.AddRun(generated.run);
        SKL_CHECK(id.ok());
        ids.push_back(*id);
      }
      const size_t per_thread = total_queries / threads;
      std::vector<std::vector<VertexPair>> thread_queries;
      for (uint32_t t = 0; t < threads; ++t) {
        thread_queries.push_back(
            GenerateQueries(n, working_set, /*seed=*/100 + t));
      }
      Stopwatch sw;
      std::vector<std::thread> workers;
      for (uint32_t t = 0; t < threads; ++t) {
        workers.emplace_back([&, t] {
          const std::vector<VertexPair>& qs = thread_queries[t];
          for (size_t q = 0; q < per_thread; ++q) {
            const auto& [v, w] = qs[q % qs.size()];
            auto answer = service.Reaches(ids[t], v, w);
            SKL_CHECK(answer.ok());
          }
        });
      }
      for (std::thread& w : workers) w.join();
      const double seconds = sw.ElapsedSeconds();
      qps[config] = seconds > 0
                        ? static_cast<double>(per_thread) * threads / seconds
                        : 0.0;
      json.Add("qps_shards" + std::to_string(shards) + "_t" +
                   std::to_string(threads),
               qps[config], "queries/s");
      ++config;
    }
    std::printf("%-8u %16.0f %16.0f\n", threads, qps[0], qps[1]);
  }
  std::printf(
      "\n(threads available on this machine: %u — the contended-vs-sharded "
      "spread needs real cores)\n",
      std::thread::hardware_concurrency());
  return 0;
}
