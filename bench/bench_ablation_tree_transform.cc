// Ablation B: the Heinis-Alonso-style tree-transform baseline [8] against
// SKL. The paper's Section 2 criticism is that duplicating a DAG into a
// tree can blow up exponentially; fork-heavy runs trigger exactly that.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/baseline/tree_transform.h"
#include "src/common/stopwatch.h"

int main() {
  using namespace skl;
  using namespace skl::bench;
  // Fork-heavy synthetic spec: every subgraph is a fork.
  SpecGenOptions opt;
  opt.num_vertices = 40;
  opt.num_edges = 60;
  opt.num_subgraphs = 8;
  opt.depth = 3;
  opt.fork_fraction = 1.0;
  opt.seed = 5;
  auto spec_result = GenerateSpecification(opt);
  SKL_CHECK(spec_result.ok());
  Specification spec = std::move(spec_result).value();

  SkeletonLabeler labeler(&spec, SpecSchemeKind::kTcm);
  SKL_CHECK(labeler.Init().ok());

  PrintHeader("Ablation B: Tree-Transform Baseline [8] vs SKL "
              "(fork-heavy runs)");
  std::printf("%10s %10s | %14s %14s | %14s %16s %12s\n", "run size",
              "edges", "SKL bits/v", "SKL ms", "tree nodes", "tree bits/v",
              "tree ms");
  for (uint32_t target : SizeSweep()) {
    if (target > 12800) break;  // the unfolding explodes far earlier
    GeneratedRun gen = MakeRun(spec, target, target + 31);
    Stopwatch sw;
    auto labeling = labeler.LabelRun(gen.run);
    double skl_ms = sw.ElapsedMillis();
    SKL_CHECK(labeling.ok());

    TreeTransformLabeling tree(/*max_tree_nodes=*/size_t{32} << 20);
    sw.Restart();
    Status st = tree.Build(gen.run);
    double tree_ms = sw.ElapsedMillis();
    if (!st.ok()) {
      std::printf("%10u %10zu | %14u %14.3f | %14s %16s %12s\n",
                  gen.run.num_vertices(), gen.run.num_edges(),
                  labeling->label_bits(), skl_ms, "BLOW-UP", "(cap hit)",
                  "-");
      continue;
    }
    std::printf("%10u %10zu | %14u %14.3f | %14zu %16.1f %12.3f\n",
                gen.run.num_vertices(), gen.run.num_edges(),
                labeling->label_bits(), skl_ms, tree.tree_size(),
                static_cast<double>(tree.TotalLabelBits()) /
                    gen.run.num_vertices(),
                tree_ms);
  }
  std::printf("\nexpected: the unfolded tree grows super-linearly in run "
              "size and hits the 32M-node cap\n"
              "          while SKL stays at a few dozen bits per vertex "
              "with linear build time.\n");
  return 0;
}
