// Bulk ingestion scaling: the paper's "many runs" amortization, parallel.
// Ingests the same batch of QBLAST runs through (a) a serial AddRun loop and
// (b) AddRunsParallel with 1, 2, 4 and 8 pool workers, and reports runs/sec,
// per-run latency and speedup over the serial loop. Per-run work is
// identical on both paths (plan recovery + labeling + store capture); the
// parallel path only moves it onto pool workers and batches the publish, so
// speedup tracks available cores.
//
// Workload knobs: SKL_BENCH_BULK_RUNS (default 24 runs) and
// SKL_BENCH_BULK_SIZE (default ~2000 vertices per run).
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench/bench_common.h"
#include "src/common/thread_pool.h"
#include "src/core/provenance_service.h"

int main() {
  using namespace skl;
  using namespace skl::bench;

  size_t num_runs = 24;
  if (const char* env = std::getenv("SKL_BENCH_BULK_RUNS")) {
    num_runs = std::strtoul(env, nullptr, 10);
  }
  uint32_t target = 2000;
  if (const char* env = std::getenv("SKL_BENCH_BULK_SIZE")) {
    target = static_cast<uint32_t>(std::strtoul(env, nullptr, 10));
  }

  Specification spec = QblastSpec();
  RunGenerator generator(&spec);
  RunGenOptions opt;
  opt.target_vertices = target;
  opt.seed = 99;
  auto generated = generator.GenerateMany(opt, num_runs);
  SKL_CHECK_MSG(generated.ok(), generated.status().ToString().c_str());
  std::vector<Run> runs;
  runs.reserve(generated->size());
  for (GeneratedRun& g : *generated) runs.push_back(std::move(g.run));

  JsonReporter json("bench_bulk_ingest");
  json.Add("num_runs", static_cast<double>(num_runs), "runs");
  json.Add("target_vertices", target, "vertices");

  PrintHeader("Bulk Ingestion Scaling (QBLAST, " +
              std::to_string(num_runs) + " runs x ~" +
              std::to_string(target) + " vertices)");
  std::printf("%10s %8s %10s %9s %8s %8s\n", "mode", "threads", "total ms",
              "ms/run", "runs/s", "speedup");

  // Serial baseline: the pre-bulk-API idiom, one AddRun call per run.
  double serial_secs = 0;
  {
    auto service = ProvenanceService::Create(QblastSpec(),
                                             SpecSchemeKind::kTcm);
    SKL_CHECK(service.ok());
    Stopwatch sw;
    for (const Run& run : runs) {
      auto id = service->AddRun(run);
      SKL_CHECK_MSG(id.ok(), id.status().ToString().c_str());
    }
    serial_secs = sw.ElapsedSeconds();
    SKL_CHECK(service->num_runs() == runs.size());
  }
  std::printf("%10s %8s %10.1f %9.2f %8.0f %8s\n", "serial", "-",
              serial_secs * 1e3, serial_secs * 1e3 / runs.size(),
              runs.size() / serial_secs, "1.00x");
  json.Add("serial_runs_per_sec", runs.size() / serial_secs, "runs/s");

  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    ProvenanceService::Options options;
    options.num_threads = threads;
    auto service = ProvenanceService::Create(QblastSpec(),
                                             SpecSchemeKind::kTcm, options);
    SKL_CHECK(service.ok());
    Stopwatch sw;
    std::vector<Result<RunId>> ids = service->AddRunsParallel(runs);
    const double secs = sw.ElapsedSeconds();
    for (const Result<RunId>& id : ids) {
      SKL_CHECK_MSG(id.ok(), id.status().ToString().c_str());
    }
    SKL_CHECK(service->num_runs() == runs.size());
    std::printf("%10s %8u %10.1f %9.2f %8.0f %7.2fx\n", "parallel", threads,
                secs * 1e3, secs * 1e3 / runs.size(), runs.size() / secs,
                serial_secs / secs);
    const std::string t = std::to_string(threads);
    json.Add("parallel_t" + t + "_runs_per_sec", runs.size() / secs,
             "runs/s");
    json.Add("parallel_t" + t + "_speedup", serial_secs / secs, "x");
  }

  std::printf("\nhardware threads: %u (wall-clock speedup is bounded by "
              "this)\n",
              ThreadPool::DefaultThreadCount());
  return 0;
}
