// Shared benchmark scaffolding: the paper's run-size sweep (0.1K..102.4K
// vertices, doubling), standard workloads (QBLAST and the synthetic spec of
// Section 8.2), timing helpers and table printing.
//
// Scale note: the paper averages label/construction points over 10^3 runs
// and query points over 10^6 queries on 2005-era hardware. We default to a
// handful of runs and 10^5..10^6 queries, which gives stable numbers in
// seconds; SKL_BENCH_RUNS / SKL_BENCH_MAX_SIZE environment variables scale
// the sweep up or down. SKL_BENCH_JSON=<path> additionally writes the key
// metrics as machine-readable JSON (JsonReporter below) — the format CI
// archives on every push for the perf trajectory.
#ifndef SKL_BENCH_BENCH_COMMON_H_
#define SKL_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "src/common/check.h"
#include "src/common/stopwatch.h"
#include "src/core/skeleton_labeler.h"
#include "src/workload/query_generator.h"
#include "src/workload/real_workflows.h"
#include "src/workload/run_generator.h"
#include "src/workload/spec_generator.h"

namespace skl {
namespace bench {

inline uint32_t MaxSweepSize() {
  if (const char* env = std::getenv("SKL_BENCH_MAX_SIZE")) {
    return static_cast<uint32_t>(std::strtoul(env, nullptr, 10));
  }
  return 102400;
}

inline int RunsPerPoint() {
  if (const char* env = std::getenv("SKL_BENCH_RUNS")) {
    return std::atoi(env);
  }
  return 3;
}

/// 100, 200, ..., capped by MaxSweepSize(); the paper's 0.1K..102.4K.
inline std::vector<uint32_t> SizeSweep() {
  std::vector<uint32_t> sizes;
  for (uint32_t s = 100; s <= MaxSweepSize(); s *= 2) sizes.push_back(s);
  return sizes;
}

inline Specification QblastSpec() {
  auto spec = BuildRealWorkflow("QBLAST");
  SKL_CHECK_MSG(spec.ok(), spec.status().ToString().c_str());
  return std::move(spec).value();
}

/// Section 8.2's synthetic spec: n_G=100, m_G=200, |T_G|=10, [T_G]=4.
inline Specification SyntheticSpec(uint32_t n_g = 100, uint64_t seed = 71) {
  SpecGenOptions opt;
  opt.num_vertices = n_g;
  opt.num_edges = n_g * 2;
  opt.num_subgraphs = 9;
  opt.depth = 4;
  opt.seed = seed;
  auto spec = GenerateSpecification(opt);
  SKL_CHECK_MSG(spec.ok(), spec.status().ToString().c_str());
  return std::move(spec).value();
}

inline GeneratedRun MakeRun(const Specification& spec, uint32_t target,
                            uint64_t seed) {
  RunGenerator generator(&spec);
  RunGenOptions opt;
  opt.target_vertices = target;
  opt.seed = seed;
  auto run = generator.Generate(opt);
  SKL_CHECK_MSG(run.ok(), run.status().ToString().c_str());
  return std::move(run).value();
}

/// Variable-width bits for one label value (paper's "average label length"
/// is measured over the variable-size encodings).
inline uint32_t VarBits(uint32_t value) {
  uint32_t bits = 1;
  while (value >>= 1) ++bits;
  return bits;
}

inline double AverageLabelBits(const RunLabeling& labeling) {
  double total = 0;
  for (const RunLabel& l : labeling.labels()) {
    total += VarBits(l.q1) + VarBits(l.q2) + VarBits(l.q3) +
             VarBits(l.origin + 1);
  }
  return total / labeling.num_vertices();
}

/// Prints a header + underline.
inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

/// Machine-readable results sink for the CI perf trajectory: when
/// SKL_BENCH_JSON=<path> is set, every Add() call is collected and written
/// to <path> as one JSON document when the reporter is destroyed (or on an
/// explicit Flush()). Without the variable the reporter is a no-op, so
/// benches construct one unconditionally next to their printf tables:
///
///   JsonReporter json("bench_bulk_ingest");
///   json.Add("serial_runs_per_sec", runs / secs, "runs/s");
///
/// Output shape (one file per bench binary; CI uploads the directory):
///   {"bench": "<name>", "bench_schema_version": 1, "results": [
///     {"name": "...", "value": 123.4, "unit": "..."}, ...]}
///
/// bench_schema_version names the artifact format itself; bump it on any
/// incompatible change to this shape so tools/bench_compare.py can reject
/// a stale baseline instead of mis-reading it.
class JsonReporter {
 public:
  /// Artifact format version written into every document.
  static constexpr int kSchemaVersion = 1;
  explicit JsonReporter(std::string bench_name)
      : bench_(std::move(bench_name)) {}

  JsonReporter(const JsonReporter&) = delete;
  JsonReporter& operator=(const JsonReporter&) = delete;

  ~JsonReporter() { Flush(); }

  static bool Enabled() { return std::getenv("SKL_BENCH_JSON") != nullptr; }

  void Add(const std::string& name, double value, const std::string& unit) {
    if (!Enabled()) return;
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.10g", value);
    entries_.push_back("    {\"name\": \"" + Escape(name) +
                       "\", \"value\": " + buf + ", \"unit\": \"" +
                       Escape(unit) + "\"}");
  }

  /// Writes the document and clears the collected entries; safe to call
  /// when disabled or empty (does nothing).
  void Flush() {
    const char* path = std::getenv("SKL_BENCH_JSON");
    if (path == nullptr || entries_.empty()) return;
    std::ofstream out(path, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "warning: cannot write SKL_BENCH_JSON=%s\n", path);
      return;
    }
    out << "{\n  \"bench\": \"" << Escape(bench_)
        << "\",\n  \"bench_schema_version\": " << kSchemaVersion
        << ",\n  \"results\": [\n";
    for (size_t i = 0; i < entries_.size(); ++i) {
      out << entries_[i] << (i + 1 < entries_.size() ? ",\n" : "\n");
    }
    out << "  ]\n}\n";
    entries_.clear();
  }

 private:
  static std::string Escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    return out;
  }

  std::string bench_;
  std::vector<std::string> entries_;
};

}  // namespace bench
}  // namespace skl

#endif  // SKL_BENCH_BENCH_COMMON_H_
