// Ablation A: robustness of SKL to the skeleton scheme (the paper's
// Section 8.2 conclusion: "when labeling large runs, SKL is insensitive to
// the quality of the labeling scheme used to label the specification").
// Runs the full pipeline over five skeleton schemes on QBLAST runs.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/common/stopwatch.h"

int main() {
  using namespace skl;
  using namespace skl::bench;
  Specification spec = QblastSpec();
  const SpecSchemeKind kinds[] = {
      SpecSchemeKind::kTcm, SpecSchemeKind::kBfs, SpecSchemeKind::kDfs,
      SpecSchemeKind::kTreeCover, SpecSchemeKind::kChain};

  PrintHeader("Ablation A: SKL robustness to the skeleton scheme (QBLAST)");
  std::printf("%-10s %12s %14s %12s %14s %16s\n", "skeleton",
              "spec bits", "spec build us", "run size", "label ms",
              "query ns");
  for (SpecSchemeKind kind : kinds) {
    SkeletonLabeler labeler(&spec, kind);
    SKL_CHECK(labeler.Init().ok());
    for (uint32_t target : {1600u, 25600u}) {
      if (target > MaxSweepSize()) continue;
      GeneratedRun gen = MakeRun(spec, target, target * 3 + 1);
      Stopwatch sw;
      auto labeling = labeler.LabelRun(gen.run);
      double label_ms = sw.ElapsedMillis();
      SKL_CHECK(labeling.ok());
      auto queries =
          GenerateQueries(gen.run.num_vertices(), 200000, target);
      sw.Restart();
      size_t sink = 0;
      for (const auto& [u, v] : queries) sink += labeling->Reaches(u, v);
      double query_ns = sw.ElapsedSeconds() * 1e9 / queries.size();
      if (sink == SIZE_MAX) std::printf("!");
      std::printf("%-10s %12zu %14.1f %12u %14.3f %16.1f\n",
                  std::string(labeler.scheme().name()).c_str(),
                  labeler.scheme().TotalLabelBits(),
                  labeler.scheme().BuildSeconds() * 1e6,
                  gen.run.num_vertices(), label_ms, query_ns);
    }
  }
  std::printf("\nexpected: labeling time and query latency vary only "
              "mildly across skeleton schemes\n"
              "          (search-based skeletons pay on the ~50%% of "
              "queries that consult the spec).\n");
  return 0;
}
