// Figure 13: SKL construction time versus run size for QBLAST, in the
// default setting (plan and context recovered from the raw graph, Section 5)
// and with the execution plan & context given (as a workflow engine's log
// would provide). Expected shape: both linear in run size, with the default
// setting dominated by plan recovery.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/core/plan_builder.h"

int main() {
  using namespace skl;
  using namespace skl::bench;
  Specification spec = QblastSpec();
  SkeletonLabeler labeler(&spec, SpecSchemeKind::kTcm);
  SKL_CHECK(labeler.Init().ok());

  PrintHeader("Figure 13: Construction Time for QBLAST");
  std::printf("%10s %10s %14s %18s %14s\n", "run size", "edges",
              "default ms", "with plan&ctx ms", "ns/edge");
  const int runs = RunsPerPoint();
  for (uint32_t target : SizeSweep()) {
    double default_ms = 0, given_ms = 0, n_r = 0, m_r = 0;
    for (int r = 0; r < runs; ++r) {
      GeneratedRun gen = MakeRun(spec, target, target * 17 + r);
      Stopwatch sw;
      auto labeling = labeler.LabelRun(gen.run);
      default_ms += sw.ElapsedMillis();
      SKL_CHECK(labeling.ok());
      sw.Restart();
      auto labeling2 =
          labeler.LabelRunWithPlan(gen.run, gen.plan, gen.origin);
      given_ms += sw.ElapsedMillis();
      SKL_CHECK(labeling2.ok());
      n_r += gen.run.num_vertices();
      m_r += gen.run.num_edges();
    }
    default_ms /= runs;
    given_ms /= runs;
    n_r /= runs;
    m_r /= runs;
    std::printf("%10.0f %10.0f %14.3f %18.3f %14.1f\n", n_r, m_r,
                default_ms, given_ms, default_ms * 1e6 / m_r);
  }
  std::printf("\nexpected: time grows linearly (constant ns/edge); the "
              "plan&context setting is\n"
              "          substantially cheaper since plan recovery "
              "dominates (paper Section 8.1).\n");
  return 0;
}
