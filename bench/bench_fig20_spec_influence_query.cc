// Figure 20: influence of specification size on query time (BFS+SKL).
// Expected shape: larger specs are slower (the skeleton consultations do a
// graph search over the spec); query time *decreases* with run size as more
// queries are answered by the extended labels alone; the three curves
// converge for large runs.
#include <cstdio>

#include "bench/bench_common.h"

int main() {
  using namespace skl;
  using namespace skl::bench;
  const uint32_t spec_sizes[] = {50, 100, 200};
  std::vector<Specification> specs;
  std::vector<std::unique_ptr<SkeletonLabeler>> labelers;
  for (uint32_t n_g : spec_sizes) {
    specs.push_back(SyntheticSpec(n_g, 71 + n_g));
  }
  for (auto& spec : specs) {
    labelers.push_back(
        std::make_unique<SkeletonLabeler>(&spec, SpecSchemeKind::kBfs));
    SKL_CHECK(labelers.back()->Init().ok());
  }

  PrintHeader("Figure 20: Influence of Specification on Query Time "
              "(BFS+SKL, ns per query)");
  std::printf("%10s %14s %14s %14s\n", "run size", "n_G=50", "n_G=100",
              "n_G=200");
  const size_t kQueries = 200000;
  for (uint32_t target : SizeSweep()) {
    std::printf("%10u", target);
    for (size_t i = 0; i < specs.size(); ++i) {
      GeneratedRun gen = MakeRun(specs[i], target, target * 43 + i);
      auto labeling = labelers[i]->LabelRun(gen.run);
      SKL_CHECK(labeling.ok());
      auto queries =
          GenerateQueries(gen.run.num_vertices(), kQueries, target + i);
      Stopwatch sw;
      size_t sink = 0;
      for (const auto& [u, v] : queries) sink += labeling->Reaches(u, v);
      double ns = sw.ElapsedSeconds() * 1e9 / queries.size();
      if (sink == SIZE_MAX) std::printf("!");
      std::printf(" %14.1f", ns);
    }
    std::printf("\n");
  }
  std::printf("\nexpected: larger specs slower (graph search on skeleton "
              "consultations); all three\n"
              "          decrease with run size and converge for large "
              "runs (paper Fig. 20).\n");
  return 0;
}
