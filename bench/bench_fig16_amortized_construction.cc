// Figure 16: construction time with amortized skeleton cost: TCM+SKL
// (k = 1, 2, 10 runs), BFS+SKL, and TCM built directly on the run.
// Expected shape: SKL variants are linear in run size and faster than
// TCM-on-run by orders of magnitude; TCM-on-run is polynomial and (as in
// the paper) only scales to 25.6K vertices.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/baseline/direct.h"
#include "src/common/stopwatch.h"
#include "src/speclabel/tcm.h"

int main() {
  using namespace skl;
  using namespace skl::bench;
  Specification spec = SyntheticSpec();

  // Skeleton build cost (paid once, amortized over k runs).
  TcmScheme spec_tcm;
  Stopwatch sw;
  SKL_CHECK(spec_tcm.Build(spec.graph()).ok());
  const double tcm_spec_ms = sw.ElapsedMillis();

  SkeletonLabeler tcm_labeler(&spec, SpecSchemeKind::kTcm);
  SKL_CHECK(tcm_labeler.Init().ok());

  PrintHeader("Figure 16: Construction Time with Amortized Cost");
  std::printf("%10s %14s %14s %14s %12s %14s\n", "run size", "TCM+SKL k=1",
              "TCM+SKL k=2", "TCM+SKL k=10", "BFS+SKL", "TCM-on-run");
  const uint32_t tcm_run_cap = 25600;  // paper: memory-bound beyond this
  const int runs = RunsPerPoint();
  for (uint32_t target : SizeSweep()) {
    double skl_ms = 0;
    GeneratedRun gen = MakeRun(spec, target, target * 23 + 9);
    for (int r = 0; r < runs; ++r) {
      Stopwatch t;
      auto labeling = tcm_labeler.LabelRun(gen.run);
      skl_ms += t.ElapsedMillis();
      SKL_CHECK(labeling.ok());
    }
    skl_ms /= runs;
    double tcm_on_run_ms = -1;
    if (gen.run.num_vertices() <= tcm_run_cap) {
      DirectRunLabeling direct(SpecSchemeKind::kTcm);
      Stopwatch t;
      SKL_CHECK(direct.Build(gen.run).ok());
      tcm_on_run_ms = t.ElapsedMillis();
    }
    char tcm_buf[32];
    if (tcm_on_run_ms < 0) {
      std::snprintf(tcm_buf, sizeof(tcm_buf), "%14s", "(skipped)");
    } else {
      std::snprintf(tcm_buf, sizeof(tcm_buf), "%14.2f", tcm_on_run_ms);
    }
    std::printf("%10u %14.2f %14.2f %14.2f %12.2f %s\n",
                gen.run.num_vertices(), skl_ms + tcm_spec_ms,
                skl_ms + tcm_spec_ms / 2, skl_ms + tcm_spec_ms / 10,
                skl_ms, tcm_buf);
  }
  std::printf("\nexpected: SKL curves linear and nearly identical (the "
              "spec's TCM costs ~%.2f ms once);\n"
              "          TCM-on-run polynomial, orders of magnitude "
              "slower, capped at 25.6K as in the paper.\n",
              tcm_spec_ms);
  return 0;
}
