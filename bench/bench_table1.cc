// Table 1: characteristics of the (reconstructed) real-life scientific
// workflows. The numbers are recomputed from the built specifications, so a
// regression in the generator would show here immediately.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/workload/real_workflows.h"

int main() {
  using namespace skl;
  bench::PrintHeader("Table 1: Characteristics of Real-life Scientific "
                     "Workflows (reconstructed)");
  std::printf("%-10s %6s %6s %7s %7s\n", "workflow", "n_G", "m_G", "|T_G|",
              "[T_G]");
  for (const RealWorkflowInfo& info : RealWorkflowTable()) {
    auto spec = BuildRealWorkflow(info.name);
    if (!spec.ok()) {
      std::fprintf(stderr, "%s: %s\n", info.name.c_str(),
                   spec.status().ToString().c_str());
      return 1;
    }
    std::printf("%-10s %6u %6zu %7zu %7d\n", info.name.c_str(),
                spec->graph().num_vertices(), spec->graph().num_edges(),
                spec->subgraphs().size() + 1, spec->hierarchy().depth());
  }
  std::printf("\npaper reference: EBI 29/31/4/2, PubMed 35/45/3/3, "
              "QBLAST 58/72/6/3,\n                 BioAID 71/87/10/4, "
              "ProScan 89/119/9/4, ProDisc 111/158/9/3\n");
  return 0;
}
