// Micro-benchmarks (google-benchmark): predicate evaluation, plan recovery
// throughput, order generation and label codec.
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "src/core/label_codec.h"
#include "src/core/orders.h"
#include "src/core/plan_builder.h"

namespace {

using namespace skl;
using namespace skl::bench;

struct Fixture {
  Fixture() : spec(QblastSpec()), labeler(&spec, SpecSchemeKind::kTcm) {
    SKL_CHECK(labeler.Init().ok());
    gen = MakeRun(spec, 10000, 77);
    auto l = labeler.LabelRun(gen.run);
    SKL_CHECK(l.ok());
    labeling = std::make_unique<RunLabeling>(std::move(l).value());
    queries = GenerateQueries(gen.run.num_vertices(), 1 << 16, 9);
  }
  Specification spec;
  SkeletonLabeler labeler;
  GeneratedRun gen;
  std::unique_ptr<RunLabeling> labeling;
  std::vector<std::pair<VertexId, VertexId>> queries;
};

Fixture& GetFixture() {
  static Fixture fixture;
  return fixture;
}

void BM_PredicateTcmSkl(benchmark::State& state) {
  Fixture& f = GetFixture();
  size_t i = 0;
  for (auto _ : state) {
    const auto& [u, v] = f.queries[i++ & (f.queries.size() - 1)];
    benchmark::DoNotOptimize(f.labeling->Reaches(u, v));
  }
}
BENCHMARK(BM_PredicateTcmSkl);

void BM_ConstructPlan(benchmark::State& state) {
  Specification spec = QblastSpec();
  GeneratedRun gen =
      MakeRun(spec, static_cast<uint32_t>(state.range(0)), 13);
  for (auto _ : state) {
    auto rec = ConstructPlan(spec, gen.run);
    SKL_CHECK(rec.ok());
    benchmark::DoNotOptimize(rec->plan.num_nodes());
  }
  state.SetItemsProcessed(state.iterations() * gen.run.num_edges());
}
BENCHMARK(BM_ConstructPlan)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_GenerateThreeOrders(benchmark::State& state) {
  Fixture& f = GetFixture();
  auto rec = ConstructPlan(f.spec, f.gen.run);
  SKL_CHECK(rec.ok());
  for (auto _ : state) {
    ContextEncoding enc = GenerateThreeOrders(rec->plan);
    benchmark::DoNotOptimize(enc.num_nonempty_plus);
  }
}
BENCHMARK(BM_GenerateThreeOrders);

void BM_EncodeLabels(benchmark::State& state) {
  Fixture& f = GetFixture();
  for (auto _ : state) {
    EncodedLabels enc = EncodeLabels(*f.labeling);
    benchmark::DoNotOptimize(enc.bytes.data());
  }
  state.SetItemsProcessed(state.iterations() * f.labeling->num_vertices());
}
BENCHMARK(BM_EncodeLabels);

void BM_DecodeLabels(benchmark::State& state) {
  Fixture& f = GetFixture();
  EncodedLabels enc = EncodeLabels(*f.labeling);
  for (auto _ : state) {
    auto labels = DecodeLabels(enc);
    SKL_CHECK(labels.ok());
    benchmark::DoNotOptimize(labels->size());
  }
  state.SetItemsProcessed(state.iterations() * f.labeling->num_vertices());
}
BENCHMARK(BM_DecodeLabels);

}  // namespace

BENCHMARK_MAIN();
