// Figure 14: SKL query time versus run size for QBLAST with a TCM skeleton.
// Expected shape: flat (constant time), independent of run size.
#include <cstdio>

#include "bench/bench_common.h"

int main() {
  using namespace skl;
  using namespace skl::bench;
  Specification spec = QblastSpec();
  SkeletonLabeler labeler(&spec, SpecSchemeKind::kTcm);
  SKL_CHECK(labeler.Init().ok());

  PrintHeader("Figure 14: Query Time for QBLAST (TCM skeleton)");
  std::printf("%10s %14s %16s %18s\n", "run size", "query ns",
              "reachable %", "skeleton used %");
  const size_t kQueries = 1000000;
  for (uint32_t target : SizeSweep()) {
    GeneratedRun gen = MakeRun(spec, target, target * 13 + 1);
    auto labeling = labeler.LabelRun(gen.run);
    SKL_CHECK(labeling.ok());
    auto queries =
        GenerateQueries(gen.run.num_vertices(), kQueries, target + 5);
    // Measure with the plain predicate; count decision mix separately.
    Stopwatch sw;
    size_t positive = 0;
    for (const auto& [u, v] : queries) {
      positive += labeling->Reaches(u, v) ? 1 : 0;
    }
    double ns = sw.ElapsedSeconds() * 1e9 / queries.size();
    size_t skeleton_used = 0;
    for (size_t i = 0; i < 20000; ++i) {
      bool used;
      labeling->ReachesWithStats(queries[i].first, queries[i].second,
                                 &used);
      skeleton_used += used ? 1 : 0;
    }
    std::printf("%10u %14.1f %16.1f %18.1f\n", gen.run.num_vertices(), ns,
                100.0 * positive / queries.size(),
                skeleton_used / 200.0);
  }
  std::printf("\nexpected: flat query latency across three decades of run "
              "size (the paper reports\n"
              "          ~0.004 ms on 2005 Java; native code is "
              "correspondingly faster).\n");
  return 0;
}
