// Figure 14: SKL query time versus run size for QBLAST with a TCM skeleton,
// measured through the service API. Expected shape: flat (constant time),
// independent of run size. The batch column answers a span of pairs under
// one reader lock; the single column pays the shared_mutex acquisition per
// call — the gap is the service-layer overhead amortized away by batching.
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "src/core/provenance_service.h"

int main() {
  using namespace skl;
  using namespace skl::bench;
  Specification spec = QblastSpec();
  auto service = ProvenanceService::Create(std::move(spec),
                                           SpecSchemeKind::kTcm);
  SKL_CHECK(service.ok());

  PrintHeader("Figure 14: Query Time for QBLAST (TCM skeleton, service API)");
  std::printf("%10s %14s %15s %14s\n", "run size", "batch ns",
              "single-call ns", "reachable %");
  const size_t kQueries = 1000000;
  for (uint32_t target : SizeSweep()) {
    GeneratedRun gen = MakeRun(service->spec(), target, target * 13 + 1);
    auto id = service->AddRun(gen.run);
    SKL_CHECK(id.ok());
    // GenerateQueries already returns std::vector<VertexPair>.
    auto pairs =
        GenerateQueries(gen.run.num_vertices(), kQueries, target + 5);

    Stopwatch sw;
    auto answers = service->ReachesBatch(*id, pairs);
    SKL_CHECK(answers.ok());
    double batch_ns = sw.ElapsedSeconds() * 1e9 / pairs.size();
    size_t positive = 0;
    for (bool a : *answers) positive += a ? 1 : 0;

    const size_t single_sample = 100000;
    sw.Restart();
    size_t sink = 0;
    for (size_t i = 0; i < single_sample; ++i) {
      auto r = service->Reaches(*id, pairs[i].first, pairs[i].second);
      sink += r.ok() && *r ? 1 : 0;
    }
    double single_ns = sw.ElapsedSeconds() * 1e9 / single_sample;
    if (sink == 0xdeadbeef) std::printf("impossible\n");  // keep sink live

    std::printf("%10u %14.1f %15.1f %14.1f\n", gen.run.num_vertices(),
                batch_ns, single_ns, 100.0 * positive / pairs.size());
  }
  std::printf("\nexpected: flat query latency across three decades of run "
              "size (the paper reports\n"
              "          ~0.004 ms on 2005 Java; native code is "
              "correspondingly faster).\n");
  return 0;
}
