// Figure 18: influence of specification size on label length (TCM+SKL,
// amortized over k=2 runs), n_G in {50, 100, 200}, m_G/n_G = 2, |T_G|=10,
// [T_G]=4. Expected shape: smaller specs win for small runs (cheaper
// skeleton storage) but lose slightly for large runs (smaller forks/loops
// mean more copies, hence a larger execution plan and larger context
// coordinates).
#include <cstdio>

#include "bench/bench_common.h"

int main() {
  using namespace skl;
  using namespace skl::bench;
  const uint32_t spec_sizes[] = {50, 100, 200};
  std::vector<Specification> specs;
  std::vector<std::unique_ptr<SkeletonLabeler>> labelers;
  for (uint32_t n_g : spec_sizes) {
    specs.push_back(SyntheticSpec(n_g, 71 + n_g));
  }
  for (auto& spec : specs) {
    labelers.push_back(
        std::make_unique<SkeletonLabeler>(&spec, SpecSchemeKind::kTcm));
    SKL_CHECK(labelers.back()->Init().ok());
  }

  PrintHeader("Figure 18: Influence of Specification on Label Length "
              "(TCM+SKL, amortized over k=2 runs)");
  std::printf("%10s %14s %14s %14s\n", "run size", "n_G=50", "n_G=100",
              "n_G=200");
  for (uint32_t target : SizeSweep()) {
    std::printf("%10u", target);
    for (size_t i = 0; i < specs.size(); ++i) {
      GeneratedRun gen = MakeRun(specs[i], target, target * 37 + i);
      auto labeling = labelers[i]->LabelRun(gen.run);
      SKL_CHECK(labeling.ok());
      double n_g = specs[i].graph().num_vertices();
      double amortized = n_g * n_g / (2.0 * gen.run.num_vertices());
      std::printf(" %14.1f", labeling->label_bits() + amortized);
    }
    std::printf("\n");
  }
  std::printf("\nexpected: n_G=50 shortest for small runs (skeleton "
              "storage dominates), slightly longest\n"
              "          for large runs (more copies -> larger plan "
              "coordinates); curves cross mid-sweep.\n");
  return 0;
}
