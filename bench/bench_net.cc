// bench_net: throughput and latency of the network query serving layer
// (src/net/, docs/NETWORK.md) over loopback. One server process-half, 1/2/4/8
// concurrent client connections, two client strategies:
//
//   roundtrip  one Reaches frame per query, response awaited before the next
//              — the latency-bound interactive pattern (p50/p99 reported)
//   pipelined  64 request frames written back to back, then 64 responses
//              read — the throughput pattern request pipelining enables
//
// The spread between the two is the whole point of supporting pipelining in
// the protocol; the spread between 1 and 8 connections shows how far the
// per-connection handler model scales on this machine's cores.
//
// Environment knobs (CI uses tiny values, docs/BENCHMARKS.md the defaults):
//   SKL_BENCH_NET_QUERIES    total queries per mode point (default 20000)
//   SKL_BENCH_NET_SIZE       run size in vertices (default 2000)
//   SKL_BENCH_NET_MAX_CONNS  largest connection count (default 8)
//   SKL_BENCH_JSON           machine-readable results (bench_common.h)
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/skl.h"

using namespace skl;         // NOLINT: bench brevity
using namespace skl::bench;  // NOLINT

namespace {

size_t EnvOr(const char* name, size_t fallback) {
  if (const char* env = std::getenv(name)) {
    return static_cast<size_t>(std::strtoull(env, nullptr, 10));
  }
  return fallback;
}

double Quantile(std::vector<double>& sorted_us, double q) {
  if (sorted_us.empty()) return 0;
  const size_t idx = static_cast<size_t>(
      q * static_cast<double>(sorted_us.size() - 1) + 0.5);
  return sorted_us[std::min(idx, sorted_us.size() - 1)];
}

struct ModeResult {
  double seconds = 0;
  size_t queries = 0;
  std::vector<double> lat_us;  ///< per-query (roundtrip mode only)
};

}  // namespace

int main() {
  const size_t total_queries = EnvOr("SKL_BENCH_NET_QUERIES", 20000);
  const uint32_t run_size =
      static_cast<uint32_t>(EnvOr("SKL_BENCH_NET_SIZE", 2000));
  const unsigned max_conns =
      static_cast<unsigned>(EnvOr("SKL_BENCH_NET_MAX_CONNS", 8));

  Specification spec = QblastSpec();
  GeneratedRun gen = MakeRun(spec, run_size, 7);
  auto service =
      ProvenanceService::Create(std::move(spec), SpecSchemeKind::kTcm);
  SKL_CHECK_MSG(service.ok(), service.status().ToString().c_str());
  auto id = service->AddRun(gen.run);
  SKL_CHECK_MSG(id.ok(), id.status().ToString().c_str());
  const VertexId n = gen.run.num_vertices();

  ProvenanceServer::Options server_options;
  server_options.num_threads = std::max(max_conns, 1u);
  auto server =
      ProvenanceServer::Start(std::move(service).value(), server_options);
  SKL_CHECK_MSG(server.ok(), server.status().ToString().c_str());
  const uint16_t port = (*server)->port();

  PrintHeader("network serving: Reaches over loopback, run of " +
              std::to_string(n) + " vertices");
  std::printf("%6s  %-10s %10s %12s %10s %10s\n", "conns", "mode", "queries",
              "queries/s", "p50(us)", "p99(us)");

  JsonReporter json("bench_net");

  // Per-connection deterministic query workloads.
  const auto make_pairs = [&](unsigned conn, size_t count) {
    std::vector<VertexPair> pairs;
    pairs.reserve(count);
    Rng rng(1000 + conn);
    for (size_t i = 0; i < count; ++i) {
      pairs.push_back({static_cast<VertexId>(rng.NextBelow(n)),
                       static_cast<VertexId>(rng.NextBelow(n))});
    }
    return pairs;
  };

  const auto run_mode = [&](unsigned conns, bool pipelined) {
    const size_t per_conn = total_queries / conns;
    std::vector<ModeResult> results(conns);
    std::vector<ProvenanceClient> clients;
    clients.reserve(conns);
    for (unsigned c = 0; c < conns; ++c) {
      auto client = ProvenanceClient::Connect("127.0.0.1", port);
      SKL_CHECK_MSG(client.ok(), client.status().ToString().c_str());
      clients.push_back(std::move(client).value());
    }
    std::vector<std::thread> threads;
    Stopwatch wall;
    for (unsigned c = 0; c < conns; ++c) {
      threads.emplace_back([&, c] {
        ProvenanceClient& client = clients[c];
        const std::vector<VertexPair> pairs = make_pairs(c, per_conn);
        ModeResult& result = results[c];
        Stopwatch sw;
        if (pipelined) {
          constexpr size_t kWindow = 64;
          sw.Restart();
          for (size_t off = 0; off < pairs.size(); off += kWindow) {
            const size_t len = std::min(kWindow, pairs.size() - off);
            auto answers = client.ReachesPipelined(
                *id, std::span<const VertexPair>(pairs).subspan(off, len));
            SKL_CHECK_MSG(answers.ok(), answers.status().ToString().c_str());
            result.queries += len;
          }
          result.seconds = sw.ElapsedSeconds();
        } else {
          result.lat_us.reserve(pairs.size());
          Stopwatch total;
          for (const auto& [v, w] : pairs) {
            sw.Restart();
            auto answer = client.Reaches(*id, v, w);
            result.lat_us.push_back(sw.ElapsedSeconds() * 1e6);
            SKL_CHECK_MSG(answer.ok(), answer.status().ToString().c_str());
            ++result.queries;
          }
          result.seconds = total.ElapsedSeconds();
        }
      });
    }
    for (std::thread& t : threads) t.join();
    const double wall_secs = wall.ElapsedSeconds();

    ModeResult merged;
    merged.seconds = wall_secs;
    for (ModeResult& r : results) {
      merged.queries += r.queries;
      merged.lat_us.insert(merged.lat_us.end(), r.lat_us.begin(),
                           r.lat_us.end());
    }
    std::sort(merged.lat_us.begin(), merged.lat_us.end());
    const double qps =
        wall_secs > 0 ? static_cast<double>(merged.queries) / wall_secs : 0;
    const double p50 = Quantile(merged.lat_us, 0.50);
    const double p99 = Quantile(merged.lat_us, 0.99);
    const char* mode = pipelined ? "pipelined" : "roundtrip";
    if (pipelined) {
      std::printf("%6u  %-10s %10zu %12.0f %10s %10s\n", conns, mode,
                  merged.queries, qps, "-", "-");
    } else {
      std::printf("%6u  %-10s %10zu %12.0f %10.1f %10.1f\n", conns, mode,
                  merged.queries, qps, p50, p99);
    }
    const std::string prefix =
        "net_" + std::string(mode) + "_" + std::to_string(conns) + "conn_";
    json.Add(prefix + "queries_per_sec", qps, "queries/s");
    if (!pipelined) {
      json.Add(prefix + "p50_latency", p50, "us");
      json.Add(prefix + "p99_latency", p99, "us");
    }
  };

  for (unsigned conns = 1; conns <= max_conns; conns *= 2) {
    run_mode(conns, /*pipelined=*/false);
    run_mode(conns, /*pipelined=*/true);
  }

  (*server)->Shutdown();
  return 0;
}
