// bench_net: throughput and latency of the network query serving layer
// (src/net/, docs/NETWORK.md) over loopback. One server process-half, 1/2/4/8
// concurrent client connections, two client strategies:
//
//   roundtrip  one Reaches frame per query, response awaited before the next
//              — the latency-bound interactive pattern (p50/p99 reported)
//   pipelined  64 request frames written back to back, then 64 responses
//              read — the throughput pattern request pipelining enables
//
// The spread between the two is the whole point of supporting pipelining in
// the protocol; the spread between 1 and 8 connections shows how far the
// per-connection handler model scales on this machine's cores.
//
// A third mode exercises the epoll reactor at connection scale: 256/1k/4k
// open connections, almost all idle, 32 active roundtrip clients measured
// for p50/p99/qps while a churn thread connects, pings and disconnects in a
// loop. The idle population and the churn are the point — with the
// thread-per-connection model this sweep would need thousands of threads;
// the reactor serves it from Options::num_io_threads.
//
// Environment knobs (CI uses tiny values, docs/BENCHMARKS.md the defaults):
//   SKL_BENCH_NET_QUERIES    total queries per mode point (default 20000)
//   SKL_BENCH_NET_SIZE       run size in vertices (default 2000)
//   SKL_BENCH_NET_MAX_CONNS  largest connection count (default 8)
//   SKL_BENCH_NET_CONNS      largest connection-scale level (default 4096,
//                            0 skips the connection-scale sweep)
//   SKL_BENCH_NET_ACTIVE     active clients at each level (default 32)
//   SKL_BENCH_NET_IO_THREADS reactor threads for the server (default 2)
//   SKL_BENCH_JSON           machine-readable results (bench_common.h)
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/common/metrics.h"
#include "src/skl.h"

using namespace skl;         // NOLINT: bench brevity
using namespace skl::bench;  // NOLINT

namespace {

size_t EnvOr(const char* name, size_t fallback) {
  if (const char* env = std::getenv(name)) {
    return static_cast<size_t>(std::strtoull(env, nullptr, 10));
  }
  return fallback;
}

struct ModeResult {
  double seconds = 0;
  size_t queries = 0;
};

/// Raises the soft fd limit toward the hard one and returns the resulting
/// soft limit (the connection-scale sweep needs thousands of sockets).
size_t RaiseFdLimit() {
  rlimit lim{};
  if (::getrlimit(RLIMIT_NOFILE, &lim) != 0) return 1024;
  if (lim.rlim_cur < lim.rlim_max) {
    lim.rlim_cur = lim.rlim_max;
    ::setrlimit(RLIMIT_NOFILE, &lim);
    ::getrlimit(RLIMIT_NOFILE, &lim);
  }
  return static_cast<size_t>(lim.rlim_cur);
}

/// A raw connected TCP socket that sends nothing: the idle population.
int ConnectIdle(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

}  // namespace

int main() {
  const size_t total_queries = EnvOr("SKL_BENCH_NET_QUERIES", 20000);
  const uint32_t run_size =
      static_cast<uint32_t>(EnvOr("SKL_BENCH_NET_SIZE", 2000));
  const unsigned max_conns =
      static_cast<unsigned>(EnvOr("SKL_BENCH_NET_MAX_CONNS", 8));

  Specification spec = QblastSpec();
  GeneratedRun gen = MakeRun(spec, run_size, 7);
  auto service =
      ProvenanceService::Create(std::move(spec), SpecSchemeKind::kTcm);
  SKL_CHECK_MSG(service.ok(), service.status().ToString().c_str());
  auto id = service->AddRun(gen.run);
  SKL_CHECK_MSG(id.ok(), id.status().ToString().c_str());
  const VertexId n = gen.run.num_vertices();

  ProvenanceServer::Options server_options;
  server_options.num_threads = std::max(max_conns, 1u);
  server_options.num_io_threads =
      static_cast<unsigned>(EnvOr("SKL_BENCH_NET_IO_THREADS", 2));
  auto server =
      ProvenanceServer::Start(std::move(service).value(), server_options);
  SKL_CHECK_MSG(server.ok(), server.status().ToString().c_str());
  const uint16_t port = (*server)->port();

  PrintHeader("network serving: Reaches over loopback, run of " +
              std::to_string(n) + " vertices");
  std::printf("%6s  %-10s %10s %12s %10s %10s\n", "conns", "mode", "queries",
              "queries/s", "p50(us)", "p99(us)");

  JsonReporter json("bench_net");

  // Per-connection deterministic query workloads.
  const auto make_pairs = [&](unsigned conn, size_t count) {
    std::vector<VertexPair> pairs;
    pairs.reserve(count);
    Rng rng(1000 + conn);
    for (size_t i = 0; i < count; ++i) {
      pairs.push_back({static_cast<VertexId>(rng.NextBelow(n)),
                       static_cast<VertexId>(rng.NextBelow(n))});
    }
    return pairs;
  };

  const auto run_mode = [&](unsigned conns, bool pipelined) {
    const size_t per_conn = total_queries / conns;
    // The same histogram type the server's metrics endpoint serves
    // (docs/OBSERVABILITY.md): thread-safe to record from every client
    // thread, quantiles within 12.5% of exact. Bench latencies record in
    // nanoseconds; the report converts to microseconds.
    LatencyHistogram lat_hist;
    std::vector<ModeResult> results(conns);
    std::vector<ProvenanceClient> clients;
    clients.reserve(conns);
    for (unsigned c = 0; c < conns; ++c) {
      auto client = ProvenanceClient::Connect("127.0.0.1", port);
      SKL_CHECK_MSG(client.ok(), client.status().ToString().c_str());
      clients.push_back(std::move(client).value());
    }
    std::vector<std::thread> threads;
    Stopwatch wall;
    for (unsigned c = 0; c < conns; ++c) {
      threads.emplace_back([&, c] {
        ProvenanceClient& client = clients[c];
        const std::vector<VertexPair> pairs = make_pairs(c, per_conn);
        ModeResult& result = results[c];
        Stopwatch sw;
        if (pipelined) {
          constexpr size_t kWindow = 64;
          sw.Restart();
          for (size_t off = 0; off < pairs.size(); off += kWindow) {
            const size_t len = std::min(kWindow, pairs.size() - off);
            auto answers = client.ReachesPipelined(
                *id, std::span<const VertexPair>(pairs).subspan(off, len));
            SKL_CHECK_MSG(answers.ok(), answers.status().ToString().c_str());
            result.queries += len;
          }
          result.seconds = sw.ElapsedSeconds();
        } else {
          Stopwatch total;
          for (const auto& [v, w] : pairs) {
            sw.Restart();
            auto answer = client.Reaches(*id, v, w);
            lat_hist.Record(
                static_cast<uint64_t>(sw.ElapsedSeconds() * 1e9));
            SKL_CHECK_MSG(answer.ok(), answer.status().ToString().c_str());
            ++result.queries;
          }
          result.seconds = total.ElapsedSeconds();
        }
      });
    }
    for (std::thread& t : threads) t.join();
    const double wall_secs = wall.ElapsedSeconds();

    ModeResult merged;
    merged.seconds = wall_secs;
    for (ModeResult& r : results) merged.queries += r.queries;
    const double qps =
        wall_secs > 0 ? static_cast<double>(merged.queries) / wall_secs : 0;
    const double p50 = lat_hist.Quantile(0.50) / 1e3;
    const double p99 = lat_hist.Quantile(0.99) / 1e3;
    const char* mode = pipelined ? "pipelined" : "roundtrip";
    if (pipelined) {
      std::printf("%6u  %-10s %10zu %12.0f %10s %10s\n", conns, mode,
                  merged.queries, qps, "-", "-");
    } else {
      std::printf("%6u  %-10s %10zu %12.0f %10.1f %10.1f\n", conns, mode,
                  merged.queries, qps, p50, p99);
    }
    const std::string prefix =
        "net_" + std::string(mode) + "_" + std::to_string(conns) + "conn_";
    json.Add(prefix + "queries_per_sec", qps, "queries/s");
    if (!pipelined) {
      json.Add(prefix + "p50_latency", p50, "us");
      json.Add(prefix + "p99_latency", p99, "us");
    }
  };

  for (unsigned conns = 1; conns <= max_conns; conns *= 2) {
    run_mode(conns, /*pipelined=*/false);
    run_mode(conns, /*pipelined=*/true);
  }

  // ---- connection-scale sweep: mostly-idle populations + churn ----
  const size_t conn_scale_max = EnvOr("SKL_BENCH_NET_CONNS", 4096);
  const size_t active_conns = std::max<size_t>(EnvOr("SKL_BENCH_NET_ACTIVE", 32), 1);
  const size_t fd_limit = RaiseFdLimit();
  if (conn_scale_max > 0) {
    PrintHeader("connection scale: " + std::to_string(active_conns) +
                " active roundtrip clients inside an idle population, "
                "with connection churn");
    std::printf("%6s  %-10s %10s %12s %10s %10s %10s\n", "conns", "mode",
                "queries", "queries/s", "p50(us)", "p99(us)", "churned");
  }
  const auto run_conn_scale = [&](size_t level) {
    // Idle sockets + active clients + our own files + server-side fds for
    // all of them: be conservative about what fits under the fd limit.
    if (level * 2 + 64 > fd_limit) {
      std::printf("%6zu  %-10s  skipped: fd limit %zu is too low\n", level,
                  "connscale", fd_limit);
      return;
    }
    const size_t idle = level > active_conns ? level - active_conns : 0;
    std::vector<int> idle_fds;
    idle_fds.reserve(idle);
    for (size_t i = 0; i < idle; ++i) {
      const int fd = ConnectIdle(port);
      SKL_CHECK_MSG(fd >= 0, "idle connect failed");
      idle_fds.push_back(fd);
    }
    const size_t per_conn =
        std::max<size_t>(total_queries / active_conns, 1);
    LatencyHistogram lat_hist;  // shared, recorded in ns (see run_mode)
    std::vector<ModeResult> results(active_conns);
    std::vector<ProvenanceClient> clients;
    clients.reserve(active_conns);
    for (size_t c = 0; c < active_conns; ++c) {
      auto client = ProvenanceClient::Connect("127.0.0.1", port);
      SKL_CHECK_MSG(client.ok(), client.status().ToString().c_str());
      clients.push_back(std::move(client).value());
    }
    std::atomic<bool> done{false};
    std::atomic<size_t> churned{0};
    // Connection churn alongside the measurement: connect, ping, close —
    // the accept/teardown path must not disturb the serving population.
    std::thread churner([&] {
      while (!done.load(std::memory_order_relaxed)) {
        auto client = ProvenanceClient::Connect("127.0.0.1", port);
        if (!client.ok()) continue;
        if (client->Ping().ok()) {
          churned.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
    std::vector<std::thread> threads;
    Stopwatch wall;
    for (size_t c = 0; c < active_conns; ++c) {
      threads.emplace_back([&, c] {
        ProvenanceClient& client = clients[c];
        const std::vector<VertexPair> pairs =
            make_pairs(static_cast<unsigned>(c + 100), per_conn);
        ModeResult& result = results[c];
        Stopwatch sw;
        for (const auto& [v, w] : pairs) {
          sw.Restart();
          auto answer = client.Reaches(*id, v, w);
          lat_hist.Record(static_cast<uint64_t>(sw.ElapsedSeconds() * 1e9));
          SKL_CHECK_MSG(answer.ok(), answer.status().ToString().c_str());
          ++result.queries;
        }
      });
    }
    for (std::thread& t : threads) t.join();
    const double wall_secs = wall.ElapsedSeconds();
    done.store(true, std::memory_order_relaxed);
    churner.join();
    for (int fd : idle_fds) ::close(fd);

    ModeResult merged;
    for (ModeResult& r : results) merged.queries += r.queries;
    const double qps =
        wall_secs > 0 ? static_cast<double>(merged.queries) / wall_secs : 0;
    const double p50 = lat_hist.Quantile(0.50) / 1e3;
    const double p99 = lat_hist.Quantile(0.99) / 1e3;
    std::printf("%6zu  %-10s %10zu %12.0f %10.1f %10.1f %10zu\n", level,
                "connscale", merged.queries, qps, p50, p99, churned.load());
    const std::string prefix =
        "net_connscale_" + std::to_string(level) + "_";
    json.Add(prefix + "queries_per_sec", qps, "queries/s");
    json.Add(prefix + "p50_latency", p50, "us");
    json.Add(prefix + "p99_latency", p99, "us");
    json.Add(prefix + "churned_conns", static_cast<double>(churned.load()),
             "conns");
  };
  for (size_t level : {size_t{256}, size_t{1024}, size_t{4096}}) {
    if (level <= conn_scale_max) run_conn_scale(level);
  }

  (*server)->Shutdown();
  return 0;
}
