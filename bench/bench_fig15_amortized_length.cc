// Figure 15: maximum label length with amortized skeleton-label storage:
// TCM+SKL (spec closure amortized over k = 1, 2, 10 runs) versus BFS+SKL.
// Synthetic spec n_G=100, m_G=200, |T_G|=10, [T_G]=4 as in Section 8.2.
// Expected shape: BFS+SKL grows logarithmically; TCM+SKL starts much higher
// for small runs (the n_G^2/(k n_R) term dominates) and converges to
// BFS+SKL for large runs; more runs shrink the gap.
#include <cstdio>

#include "bench/bench_common.h"

int main() {
  using namespace skl;
  using namespace skl::bench;
  Specification spec = SyntheticSpec();
  const double n_g = spec.graph().num_vertices();

  SkeletonLabeler tcm_labeler(&spec, SpecSchemeKind::kTcm);
  SKL_CHECK(tcm_labeler.Init().ok());
  SkeletonLabeler bfs_labeler(&spec, SpecSchemeKind::kBfs);
  SKL_CHECK(bfs_labeler.Init().ok());

  PrintHeader("Figure 15: Label Length with Amortized Cost "
              "(synthetic n_G=100, m_G=200)");
  std::printf("%10s %16s %16s %16s %12s\n", "run size", "TCM+SKL k=1",
              "TCM+SKL k=2", "TCM+SKL k=10", "BFS+SKL");
  for (uint32_t target : SizeSweep()) {
    GeneratedRun gen = MakeRun(spec, target, target * 19 + 3);
    auto labeling = tcm_labeler.LabelRun(gen.run);
    SKL_CHECK(labeling.ok());
    double base = labeling->label_bits();
    double n_r = gen.run.num_vertices();
    double amortized_tcm = n_g * n_g / n_r;  // skeleton storage per vertex
    auto bfs_labeling = bfs_labeler.LabelRun(gen.run);
    SKL_CHECK(bfs_labeling.ok());
    std::printf("%10.0f %16.1f %16.1f %16.1f %12.1f\n", n_r,
                base + amortized_tcm, base + amortized_tcm / 2,
                base + amortized_tcm / 10,
                static_cast<double>(bfs_labeling->label_bits()));
  }
  std::printf("\nexpected: the TCM+SKL curves start high (amortized n_G^2 /"
              " (k n_R) skeleton storage)\n"
              "          and collapse onto BFS+SKL's logarithmic curve for "
              "large runs (paper Fig. 15).\n");
  return 0;
}
