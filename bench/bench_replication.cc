// bench_replication: the replication subsystem (src/replication/,
// docs/REPLICATION.md) over loopback. Three figures:
//
//   lag        per-write replication lag: time from the primary acking a
//              mutation (append-before-ack, so the LSN is durable) to a
//              tailing replica having applied that LSN (p50/p99)
//   catch-up   a fresh replica started against a primary that already
//              holds the whole workload: wall time from Start() to
//              caught-up, rated over the op-log's on-disk bytes (MB/s)
//   read qps   Reaches throughput against 1/2/4 endpoints (the primary
//              plus N-1 replicas, one client thread per endpoint) — the
//              horizontal read-scaling figure replicas exist for
//
// Environment knobs (CI uses tiny values):
//   SKL_BENCH_REPL_WRITES     lag samples (default 200)
//   SKL_BENCH_REPL_RUNS       catch-up workload size in runs (default 48)
//   SKL_BENCH_REPL_SIZE      run size in vertices (default 500)
//   SKL_BENCH_REPL_QUERIES    total queries per endpoint point (default 20000)
//   SKL_BENCH_REPL_ENDPOINTS  largest endpoint count (default 4)
//   SKL_BENCH_REPL_FSYNC=1    fsync each op-log append (default off: the
//                             bench measures shipping, not disk flushes)
//   SKL_BENCH_JSON            machine-readable results (bench_common.h)
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/common/temp_path.h"
#include "src/skl.h"

using namespace skl;         // NOLINT: bench brevity
using namespace skl::bench;  // NOLINT

namespace {

size_t EnvOr(const char* name, size_t fallback) {
  if (const char* env = std::getenv(name)) {
    return static_cast<size_t>(std::strtoull(env, nullptr, 10));
  }
  return fallback;
}

double Quantile(std::vector<double>& sorted_us, double q) {
  if (sorted_us.empty()) return 0;
  const size_t idx = static_cast<size_t>(
      q * static_cast<double>(sorted_us.size() - 1) + 0.5);
  return sorted_us[std::min(idx, sorted_us.size() - 1)];
}

}  // namespace

int main() {
  const size_t lag_writes = EnvOr("SKL_BENCH_REPL_WRITES", 200);
  const size_t catchup_runs = EnvOr("SKL_BENCH_REPL_RUNS", 48);
  const uint32_t run_size =
      static_cast<uint32_t>(EnvOr("SKL_BENCH_REPL_SIZE", 500));
  const size_t total_queries = EnvOr("SKL_BENCH_REPL_QUERIES", 20000);
  const unsigned max_endpoints =
      static_cast<unsigned>(EnvOr("SKL_BENCH_REPL_ENDPOINTS", 4));

  Specification spec = QblastSpec();
  const std::string spec_xml = WriteSpecificationXml(spec);
  GeneratedRun gen = MakeRun(spec, run_size, 7);

  const std::string oplog_path =
      PidQualifiedTempPath("bench_replication", ".skllog");
  std::filesystem::remove(oplog_path);
  OpLog::Options log_options;
  log_options.fsync = EnvOr("SKL_BENCH_REPL_FSYNC", 0) != 0;
  auto oplog = OpLog::Open(oplog_path, spec_xml,
                           SpecSchemeKindName(SpecSchemeKind::kTcm),
                           log_options);
  SKL_CHECK_MSG(oplog.ok(), oplog.status().ToString().c_str());

  auto service =
      ProvenanceService::Create(std::move(spec), SpecSchemeKind::kTcm);
  SKL_CHECK_MSG(service.ok(), service.status().ToString().c_str());
  ProvenanceServer::Options server_options;
  server_options.oplog = oplog->get();
  auto server =
      ProvenanceServer::Start(std::move(service).value(), server_options);
  SKL_CHECK_MSG(server.ok(), server.status().ToString().c_str());
  const uint16_t port = (*server)->port();

  ReadReplica::Options replica_options;
  replica_options.poll_interval_ms = 1;
  auto tail_replica = ReadReplica::Start("127.0.0.1", port, replica_options);
  SKL_CHECK_MSG(tail_replica.ok(), tail_replica.status().ToString().c_str());

  auto writer = ProvenanceClient::Connect("127.0.0.1", port);
  SKL_CHECK_MSG(writer.ok(), writer.status().ToString().c_str());

  JsonReporter json("bench_replication");
  PrintHeader("replication: op-log shipping over loopback, runs of " +
              std::to_string(gen.run.num_vertices()) + " vertices");

  // --- lag: ack-to-replica-visible per write -----------------------------
  std::vector<double> lag_us;
  lag_us.reserve(lag_writes);
  std::vector<RunId> written;
  for (size_t i = 0; i < lag_writes; ++i) {
    Stopwatch sw;
    auto id = writer->AddRun(gen.run);
    SKL_CHECK_MSG(id.ok(), id.status().ToString().c_str());
    const uint64_t lsn = writer->last_write_lsn();
    Status caught = (*tail_replica)->WaitForLsn(lsn, /*timeout_ms=*/10000);
    SKL_CHECK_MSG(caught.ok(), caught.ToString().c_str());
    lag_us.push_back(sw.ElapsedSeconds() * 1e6);
    written.push_back(*id);
  }
  std::sort(lag_us.begin(), lag_us.end());
  const double lag_p50 = Quantile(lag_us, 0.50);
  const double lag_p99 = Quantile(lag_us, 0.99);
  std::printf("lag over %zu writes:       p50 %.0f us, p99 %.0f us "
              "(ack to replica-visible, incl. the write itself)\n",
              lag_writes, lag_p50, lag_p99);
  json.Add("repl_lag_p50", lag_p50, "us");
  json.Add("repl_lag_p99", lag_p99, "us");

  // Keep the registry small for the read phase; the catch-up workload below
  // re-fills it to a known size.
  for (size_t i = 1; i < written.size(); ++i) {
    SKL_CHECK_MSG(writer->RemoveRun(written[i]).ok(), "remove failed");
  }
  const RunId query_id = written[0];

  // --- catch-up: fresh replica against the full workload -----------------
  for (size_t i = 0; i < catchup_runs; ++i) {
    auto id = writer->AddRun(gen.run);
    SKL_CHECK_MSG(id.ok(), id.status().ToString().c_str());
  }
  const uint64_t head = writer->last_write_lsn();
  std::error_code ec;
  const auto log_bytes = std::filesystem::file_size(oplog_path, ec);
  Stopwatch catchup;
  auto fresh = ReadReplica::Start("127.0.0.1", port, replica_options);
  SKL_CHECK_MSG(fresh.ok(), fresh.status().ToString().c_str());
  Status caught = (*fresh)->WaitForLsn(head, /*timeout_ms=*/60000);
  SKL_CHECK_MSG(caught.ok(), caught.ToString().c_str());
  const double catchup_secs = catchup.ElapsedSeconds();
  const double mb = ec ? 0 : static_cast<double>(log_bytes) / 1e6;
  const double mb_per_sec = catchup_secs > 0 ? mb / catchup_secs : 0;
  std::printf("catch-up over %zu runs:     %.2f MB logged, %.1f ms, "
              "%.1f MB/s\n",
              catchup_runs, mb, catchup_secs * 1e3, mb_per_sec);
  json.Add("repl_catch_up", mb_per_sec, "MB/s");
  (*fresh)->Stop();

  // --- read qps at 1/2/4 endpoints ---------------------------------------
  // Endpoint 0 is the primary; endpoints 1..E-1 are replicas, started once
  // and reused across points.
  std::vector<std::unique_ptr<ReadReplica>> replicas;
  replicas.push_back(std::move(*tail_replica));
  while (replicas.size() + 1 < max_endpoints) {
    auto extra = ReadReplica::Start("127.0.0.1", port, replica_options);
    SKL_CHECK_MSG(extra.ok(), extra.status().ToString().c_str());
    replicas.push_back(std::move(extra).value());
  }
  for (auto& replica : replicas) {
    SKL_CHECK_MSG(replica->WaitForLsn(head, 60000).ok(), "catch-up");
  }
  const VertexId n = gen.run.num_vertices();
  std::printf("%10s %10s %12s\n", "endpoints", "queries", "queries/s");
  for (unsigned endpoints = 1; endpoints <= max_endpoints; endpoints *= 2) {
    std::vector<ProvenanceClient> clients;
    for (unsigned e = 0; e < endpoints; ++e) {
      const uint16_t target = e == 0 ? port : replicas[e - 1]->port();
      auto client = ProvenanceClient::Connect("127.0.0.1", target);
      SKL_CHECK_MSG(client.ok(), client.status().ToString().c_str());
      clients.push_back(std::move(client).value());
    }
    const size_t per_endpoint = total_queries / endpoints;
    std::vector<std::thread> threads;
    Stopwatch wall;
    for (unsigned e = 0; e < endpoints; ++e) {
      threads.emplace_back([&, e] {
        Rng rng(9000 + e);
        for (size_t i = 0; i < per_endpoint; ++i) {
          auto answer =
              clients[e].Reaches(query_id,
                                 static_cast<VertexId>(rng.NextBelow(n)),
                                 static_cast<VertexId>(rng.NextBelow(n)));
          SKL_CHECK_MSG(answer.ok(), answer.status().ToString().c_str());
        }
      });
    }
    for (std::thread& t : threads) t.join();
    const double secs = wall.ElapsedSeconds();
    const double qps =
        secs > 0 ? static_cast<double>(per_endpoint * endpoints) / secs : 0;
    std::printf("%10u %10zu %12.0f\n", endpoints, per_endpoint * endpoints,
                qps);
    json.Add("repl_read_qps_" + std::to_string(endpoints) + "_endpoints",
             qps, "queries/s");
  }

  for (auto& replica : replicas) replica->Stop();
  (*server)->Shutdown();
  std::filesystem::remove(oplog_path);
  return 0;
}
