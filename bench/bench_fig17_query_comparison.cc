// Figure 17: query time for TCM+SKL, BFS+SKL, TCM-on-run and BFS-on-run.
// The SKL columns go through ProvenanceService (one service per skeleton
// scheme, batch queries under a single reader lock); the on-run baselines
// label the run graph directly. Expected shape: TCM+SKL and TCM-on-run flat
// (TCM+SKL slightly slower: extra decode step); BFS+SKL starts slower and
// *decreases* with run size (more queries are settled by the extended
// labels alone as fork/loop copies multiply — the paper's counter-intuitive
// observation); BFS-on-run is linear in run size, orders of magnitude
// slower.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/baseline/direct.h"
#include "src/core/provenance_service.h"

int main() {
  using namespace skl;
  using namespace skl::bench;
  Specification spec = SyntheticSpec();

  auto tcm_service = ProvenanceService::Create(spec, SpecSchemeKind::kTcm);
  auto bfs_service = ProvenanceService::Create(spec, SpecSchemeKind::kBfs);
  SKL_CHECK(tcm_service.ok() && bfs_service.ok());
  // The decision-mix stat (skeleton consulted vs extended labels alone)
  // needs ReachesWithStats, which lives on the low-level RunLabeling.
  SkeletonLabeler bfs_labeler(&spec, SpecSchemeKind::kBfs);
  SKL_CHECK(bfs_labeler.Init().ok());

  PrintHeader("Figure 17: Query Time Comparison (ns per query)");
  std::printf("%10s %12s %12s %14s %12s %16s\n", "run size", "TCM+SKL",
              "BFS+SKL", "TCM-on-run", "BFS-on-run", "skeleton-used %");
  const uint32_t tcm_run_cap = 25600;
  for (uint32_t target : SizeSweep()) {
    GeneratedRun gen = MakeRun(spec, target, target * 29 + 2);
    const VertexId n = gen.run.num_vertices();

    auto tcm_id = tcm_service->AddRun(gen.run);
    auto bfs_id = bfs_service->AddRun(gen.run);
    SKL_CHECK(tcm_id.ok() && bfs_id.ok());

    auto queries = GenerateQueries(n, 200000, target + 77);
    size_t sink = 0;
    Stopwatch sw;
    auto tcm_answers = tcm_service->ReachesBatch(*tcm_id, queries);
    double tcm_skl_ns = sw.ElapsedSeconds() * 1e9 / queries.size();
    SKL_CHECK(tcm_answers.ok());
    for (bool a : *tcm_answers) sink += a;

    sw.Restart();
    auto bfs_answers = bfs_service->ReachesBatch(*bfs_id, queries);
    double bfs_skl_ns = sw.ElapsedSeconds() * 1e9 / queries.size();
    SKL_CHECK(bfs_answers.ok());
    for (bool a : *bfs_answers) sink += a;

    auto bfs_labeling = bfs_labeler.LabelRun(gen.run);
    SKL_CHECK(bfs_labeling.ok());
    size_t skeleton_used = 0;
    const size_t mix_sample = 50000;
    for (size_t i = 0; i < mix_sample; ++i) {
      bool used;
      bfs_labeling->ReachesWithStats(queries[i].first, queries[i].second,
                                     &used);
      skeleton_used += used;
    }

    double tcm_run_ns = -1;
    if (n <= tcm_run_cap) {
      DirectRunLabeling tcm_direct(SpecSchemeKind::kTcm);
      SKL_CHECK(tcm_direct.Build(gen.run).ok());
      sw.Restart();
      for (const auto& [u, v] : queries) {
        sink += tcm_direct.Reaches(u, v);
      }
      tcm_run_ns = sw.ElapsedSeconds() * 1e9 / queries.size();
    }

    DirectRunLabeling bfs_direct(SpecSchemeKind::kBfs);
    SKL_CHECK(bfs_direct.Build(gen.run).ok());
    const size_t bfs_queries = 2000;  // BFS per query is O(m_R): sample less
    sw.Restart();
    for (size_t i = 0; i < bfs_queries; ++i) {
      sink += bfs_direct.Reaches(queries[i].first, queries[i].second);
    }
    double bfs_run_ns = sw.ElapsedSeconds() * 1e9 / bfs_queries;

    // Keep one run per service per size point: drop the registered runs so
    // memory stays flat across the sweep.
    SKL_CHECK(tcm_service->RemoveRun(*tcm_id).ok());
    SKL_CHECK(bfs_service->RemoveRun(*bfs_id).ok());

    char tcm_buf[32];
    if (tcm_run_ns < 0) {
      std::snprintf(tcm_buf, sizeof(tcm_buf), "%14s", "(skipped)");
    } else {
      std::snprintf(tcm_buf, sizeof(tcm_buf), "%14.1f", tcm_run_ns);
    }
    std::printf("%10u %12.1f %12.1f %s %12.0f %16.1f\n", n, tcm_skl_ns,
                bfs_skl_ns, tcm_buf, bfs_run_ns,
                100.0 * skeleton_used / mix_sample);
    if (sink == 0xdeadbeef) std::printf("impossible\n");  // keep sink live
  }
  std::printf("\nexpected: TCM+SKL and TCM-on-run flat; BFS+SKL decreasing "
              "as the skeleton-used%% drops;\n"
              "          BFS-on-run linear in run size, orders of "
              "magnitude slower (log axes in the paper).\n");
  return 0;
}
