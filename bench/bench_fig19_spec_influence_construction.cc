// Figure 19: influence of specification size on construction time (TCM+SKL
// with the spec's closure cost amortized over k=2 runs). Expected shape:
// mirrors Figure 18 — the smaller spec is cheaper for small runs and the
// influence washes out for large runs.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/common/stopwatch.h"
#include "src/speclabel/tcm.h"

int main() {
  using namespace skl;
  using namespace skl::bench;
  const uint32_t spec_sizes[] = {50, 100, 200};
  std::vector<Specification> specs;
  std::vector<double> spec_ms;
  std::vector<std::unique_ptr<SkeletonLabeler>> labelers;
  for (uint32_t n_g : spec_sizes) {
    specs.push_back(SyntheticSpec(n_g, 71 + n_g));
  }
  for (auto& spec : specs) {
    TcmScheme probe;
    Stopwatch sw;
    SKL_CHECK(probe.Build(spec.graph()).ok());
    spec_ms.push_back(sw.ElapsedMillis());
    labelers.push_back(
        std::make_unique<SkeletonLabeler>(&spec, SpecSchemeKind::kTcm));
    SKL_CHECK(labelers.back()->Init().ok());
  }

  PrintHeader("Figure 19: Influence of Specification on Construction Time "
              "(TCM+SKL, amortized over k=2 runs, ms)");
  std::printf("%10s %14s %14s %14s\n", "run size", "n_G=50", "n_G=100",
              "n_G=200");
  const int runs = RunsPerPoint();
  for (uint32_t target : SizeSweep()) {
    std::printf("%10u", target);
    for (size_t i = 0; i < specs.size(); ++i) {
      double ms = 0;
      for (int r = 0; r < runs; ++r) {
        GeneratedRun gen = MakeRun(specs[i], target, target * 41 + r);
        Stopwatch sw;
        auto labeling = labelers[i]->LabelRun(gen.run);
        ms += sw.ElapsedMillis();
        SKL_CHECK(labeling.ok());
      }
      std::printf(" %14.3f", ms / runs + spec_ms[i] / 2);
    }
    std::printf("\n");
  }
  std::printf("\nexpected: linear growth for all three; spec size has weak "
              "influence for large runs.\n");
  return 0;
}
