// Figure 12: maximum and average SKL label length versus run size for the
// QBLAST workflow, against the 3*log2(n_R) asymptote. Expected shape:
// logarithmic growth, maximum a small constant below 3*log2(n_R) + log2(n_G)
// (the tight bound uses nonempty + nodes, not n_R), average within a small
// constant of the maximum.
#include <cmath>
#include <cstdio>

#include "bench/bench_common.h"

int main() {
  using namespace skl;
  using namespace skl::bench;
  Specification spec = QblastSpec();
  SkeletonLabeler labeler(&spec, SpecSchemeKind::kTcm);
  SKL_CHECK(labeler.Init().ok());

  PrintHeader("Figure 12: Label Length for QBLAST (TCM skeleton, cost of "
              "spec labels excluded)");
  std::printf("%10s %10s %12s %12s %12s %12s\n", "run size", "n_T^+",
              "max bits", "avg bits", "3log(nR)", "3log(nR)+logB");
  const int runs = RunsPerPoint();
  for (uint32_t target : SizeSweep()) {
    double max_bits = 0, avg_bits = 0, nonempty = 0, n_r = 0;
    for (int r = 0; r < runs; ++r) {
      GeneratedRun gen = MakeRun(spec, target, target * 131 + r);
      auto labeling = labeler.LabelRun(gen.run);
      SKL_CHECK(labeling.ok());
      max_bits += labeling->label_bits();
      avg_bits += AverageLabelBits(*labeling);
      nonempty += labeling->num_nonempty_plus();
      n_r += gen.run.num_vertices();
    }
    max_bits /= runs;
    avg_bits /= runs;
    nonempty /= runs;
    n_r /= runs;
    double asym = 3 * std::log2(n_r);
    double bound = asym + std::log2(spec.graph().num_vertices());
    std::printf("%10.0f %10.0f %12.1f %12.1f %12.1f %12.1f\n", n_r,
                nonempty, max_bits, avg_bits, asym, bound);
  }
  std::printf("\nexpected: max <= 3 ceil(log2 n_T^+) + ceil(log2 n_G), "
              "growing logarithmically;\n"
              "          actual max sits below the 3log(nR) dotted line of "
              "the paper by a small constant.\n");
  return 0;
}
