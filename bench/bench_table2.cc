// Table 2: complexity comparison with amortized cost — the paper's analytic
// table, printed alongside measured values on a concrete run so the formulas
// can be sanity-checked empirically.
#include <cmath>
#include <cstdio>

#include "bench/bench_common.h"
#include "src/baseline/direct.h"
#include "src/common/stopwatch.h"
#include "src/speclabel/tcm.h"

int main() {
  using namespace skl;
  using namespace skl::bench;
  Specification spec = SyntheticSpec();
  const double n_g = spec.graph().num_vertices();
  const double m_g = spec.graph().num_edges();

  PrintHeader("Table 2: Complexity Comparison (with amortized cost over k "
              "runs)");
  std::printf("%-10s | %-34s | %-26s | %-14s\n", "scheme", "label length",
              "construction time", "query time");
  std::printf("%-10s | %-34s | %-26s | %-14s\n", "TCM+SKL",
              "3log nR + log nG + nG^2/(k nR)", "O(mR + nR + mG nG / k)",
              "O(1)");
  std::printf("%-10s | %-34s | %-26s | %-14s\n", "BFS+SKL",
              "3log nR + log nG", "O(mR + nR)", "O(mG + nG)");
  std::printf("%-10s | %-34s | %-26s | %-14s\n", "TCM", "nR",
              "O(mR x nR)", "O(1)");
  std::printf("%-10s | %-34s | %-26s | %-14s\n", "BFS", "0", "0",
              "O(mR + nR)");

  // Empirical spot check at nR = 12.8K, k = 1.
  const uint32_t target = 12800;
  GeneratedRun gen = MakeRun(spec, target, 2025);
  const double n_r = gen.run.num_vertices();
  const double m_r = gen.run.num_edges();

  SkeletonLabeler tcm_labeler(&spec, SpecSchemeKind::kTcm);
  SKL_CHECK(tcm_labeler.Init().ok());
  SkeletonLabeler bfs_labeler(&spec, SpecSchemeKind::kBfs);
  SKL_CHECK(bfs_labeler.Init().ok());

  Stopwatch sw;
  auto skl_labeling = tcm_labeler.LabelRun(gen.run);
  double skl_ms = sw.ElapsedMillis();
  SKL_CHECK(skl_labeling.ok());
  auto bfs_labeling = bfs_labeler.LabelRun(gen.run);
  SKL_CHECK(bfs_labeling.ok());

  DirectRunLabeling tcm_direct(SpecSchemeKind::kTcm);
  sw.Restart();
  SKL_CHECK(tcm_direct.Build(gen.run).ok());
  double tcm_direct_ms = sw.ElapsedMillis();

  auto queries = GenerateQueries(gen.run.num_vertices(), 100000, 5);
  auto time_queries = [&](auto&& reach) {
    Stopwatch t;
    size_t sink = 0;
    for (const auto& [u, v] : queries) sink += reach(u, v);
    (void)sink;
    return t.ElapsedSeconds() * 1e9 / queries.size();
  };
  double q_tcm_skl = time_queries(
      [&](VertexId u, VertexId v) { return skl_labeling->Reaches(u, v); });
  double q_bfs_skl = time_queries(
      [&](VertexId u, VertexId v) { return bfs_labeling->Reaches(u, v); });
  double q_tcm = time_queries(
      [&](VertexId u, VertexId v) { return tcm_direct.Reaches(u, v); });
  DirectRunLabeling bfs_direct(SpecSchemeKind::kBfs);
  SKL_CHECK(bfs_direct.Build(gen.run).ok());
  Stopwatch t;
  size_t sink = 0;
  for (size_t i = 0; i < 1000; ++i) {
    sink += bfs_direct.Reaches(queries[i].first, queries[i].second);
  }
  (void)sink;
  double q_bfs = t.ElapsedSeconds() * 1e9 / 1000;

  std::printf("\nempirical check at n_R=%.0f, m_R=%.0f, n_G=%.0f, m_G=%.0f, "
              "k=1:\n", n_r, m_r, n_g, m_g);
  std::printf("  TCM+SKL: %u-bit labels (+%.0f amortized), built in %.2f "
              "ms, %.0f ns/query\n",
              skl_labeling->label_bits(), n_g * n_g / n_r, skl_ms,
              q_tcm_skl);
  std::printf("  BFS+SKL: %u-bit labels, %.0f ns/query\n",
              bfs_labeling->label_bits(), q_bfs_skl);
  std::printf("  TCM    : %.0f-bit labels, built in %.2f ms, %.0f "
              "ns/query\n", n_r, tcm_direct_ms, q_tcm);
  std::printf("  BFS    : 0-bit labels, no construction, %.0f ns/query\n",
              q_bfs);
  std::printf("\nexpected: the measured ordering matches the table "
              "(SKL label ~ a few dozen bits vs nR bits for\n"
              "          TCM; SKL construction linear vs polynomial; BFS "
              "queries slower by orders of magnitude).\n");
  return 0;
}
