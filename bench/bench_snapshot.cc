// Durable snapshot throughput and the warm-restart argument: a service
// restored via LoadSnapshot skips every per-run relabeling the paper's
// pipeline would otherwise redo on restart. Measures (a) SaveSnapshot and
// LoadSnapshot throughput in runs/sec and MB/s over a populated registry,
// and (b) warm restart (LoadSnapshot) against the cold path a snapshot-less
// deployment is stuck with: re-parse every run XML and relabel it from
// scratch (plan recovery + labeling + capture).
//
// Workload knobs: SKL_BENCH_SNAP_RUNS (default 16 runs) and
// SKL_BENCH_SNAP_SIZE (default ~1000 vertices per run); every run carries a
// generated data catalog so blobs contain both labels and items.
// SKL_BENCH_JSON=<path> writes the metrics machine-readably (CI archives
// them on every push).
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/common/temp_path.h"
#include "src/core/provenance_service.h"
#include "src/io/workflow_xml.h"
#include "src/workload/data_generator.h"

int main() {
  using namespace skl;
  using namespace skl::bench;

  size_t num_runs = 16;
  if (const char* env = std::getenv("SKL_BENCH_SNAP_RUNS")) {
    num_runs = std::strtoul(env, nullptr, 10);
  }
  uint32_t target = 1000;
  if (const char* env = std::getenv("SKL_BENCH_SNAP_SIZE")) {
    target = static_cast<uint32_t>(std::strtoul(env, nullptr, 10));
  }

  JsonReporter json("bench_snapshot");
  json.Add("num_runs", static_cast<double>(num_runs), "runs");
  json.Add("target_vertices", target, "vertices");

  PrintHeader("Service Snapshot Save/Load (QBLAST, " +
              std::to_string(num_runs) + " runs x ~" +
              std::to_string(target) + " vertices)");

  Specification spec = QblastSpec();
  RunGenerator generator(&spec);
  RunGenOptions opt;
  opt.target_vertices = target;
  opt.seed = 1234;
  auto generated = generator.GenerateMany(opt, num_runs);
  SKL_CHECK_MSG(generated.ok(), generated.status().ToString().c_str());

  // The cold-restart input: run XMLs plus catalogs, exactly what a
  // snapshot-less service would re-ingest from its workflow archive.
  std::vector<std::string> run_xmls;
  std::vector<DataCatalog> catalogs;
  run_xmls.reserve(num_runs);
  catalogs.reserve(num_runs);
  uint64_t total_vertices = 0;
  for (const GeneratedRun& g : *generated) {
    run_xmls.push_back(WriteRunXml(g.run));
    DataGenOptions dopt;
    dopt.seed = 7 + run_xmls.size();
    catalogs.push_back(GenerateDataCatalog(g.run, dopt));
    total_vertices += g.run.num_vertices();
  }

  auto service = ProvenanceService::Create(QblastSpec(), SpecSchemeKind::kTcm);
  SKL_CHECK(service.ok());
  for (size_t i = 0; i < generated->size(); ++i) {
    auto id = service->AddRun((*generated)[i].run, &catalogs[i]);
    SKL_CHECK_MSG(id.ok(), id.status().ToString().c_str());
  }

  const std::string path = PidQualifiedTempPath("bench_snapshot", ".skls");

  Stopwatch sw;
  Status saved = service->SaveSnapshot(path);
  const double save_secs = sw.ElapsedSeconds();
  SKL_CHECK_MSG(saved.ok(), saved.ToString().c_str());
  std::error_code ec;
  const double mb =
      static_cast<double>(std::filesystem::file_size(path, ec)) / 1e6;
  SKL_CHECK(!ec);

  sw.Restart();
  auto restored = ProvenanceService::LoadSnapshot(path);
  const double load_secs = sw.ElapsedSeconds();
  SKL_CHECK_MSG(restored.ok(), restored.status().ToString().c_str());
  SKL_CHECK(restored->num_runs() == service->num_runs());

  // The zero-copy path: map the columnar sections read-only and rebuild
  // only the per-run index.
  sw.Restart();
  auto mapped = ProvenanceService::LoadSnapshot(path, {}, {.use_mmap = true});
  const double mmap_secs = sw.ElapsedSeconds();
  SKL_CHECK_MSG(mapped.ok(), mapped.status().ToString().c_str());
  SKL_CHECK(mapped->num_runs() == service->num_runs());

  // The before/after column: the v1 per-run-blob format this release's
  // columnar layout replaced, saved and loaded through its compat path.
  const std::string v1_path =
      PidQualifiedTempPath("bench_snapshot_v1", ".skls");
  Status v1_saved = service->SaveSnapshotAtVersion(v1_path, 1);
  SKL_CHECK_MSG(v1_saved.ok(), v1_saved.ToString().c_str());
  sw.Restart();
  auto v1_restored = ProvenanceService::LoadSnapshot(v1_path);
  const double v1_load_secs = sw.ElapsedSeconds();
  SKL_CHECK_MSG(v1_restored.ok(), v1_restored.status().ToString().c_str());
  SKL_CHECK(v1_restored->num_runs() == service->num_runs());

  // Cold restart: re-parse every run XML and relabel it from scratch —
  // the work LoadSnapshot's label reuse avoids.
  sw.Restart();
  auto relabeled = ProvenanceService::Create(QblastSpec(),
                                             SpecSchemeKind::kTcm);
  SKL_CHECK(relabeled.ok());
  for (size_t i = 0; i < run_xmls.size(); ++i) {
    auto run = ReadRunXml(run_xmls[i]);
    SKL_CHECK_MSG(run.ok(), run.status().ToString().c_str());
    auto id = relabeled->AddRun(*run, &catalogs[i]);
    SKL_CHECK_MSG(id.ok(), id.status().ToString().c_str());
  }
  const double relabel_secs = sw.ElapsedSeconds();

  // The restored registry must answer like the original (spot check; the
  // exhaustive version lives in tests/snapshot_test.cc).
  for (RunId id : service->ListRuns()) {
    auto stats = service->Stats(id);
    SKL_CHECK(stats.ok());
    const VertexId n = stats->num_vertices;
    for (VertexId v = 0; v < n; v += 1 + n / 8) {
      auto a = service->Reaches(id, v, n - 1 - v);
      auto b = restored->Reaches(id, v, n - 1 - v);
      SKL_CHECK(a.ok() && b.ok() && *a == *b);
    }
  }

  std::printf("%14s %10s %10s %10s\n", "phase", "total ms", "runs/s",
              "MB/s");
  std::printf("%14s %10.2f %10.0f %10.1f\n", "save", save_secs * 1e3,
              num_runs / save_secs, mb / save_secs);
  std::printf("%14s %10.2f %10.0f %10.1f\n", "load", load_secs * 1e3,
              num_runs / load_secs, mb / load_secs);
  std::printf("%14s %10.2f %10.0f %10.1f\n", "load (mmap)", mmap_secs * 1e3,
              num_runs / mmap_secs, mb / mmap_secs);
  std::printf("%14s %10.2f %10.0f %10.1f\n", "load (v1)", v1_load_secs * 1e3,
              num_runs / v1_load_secs, mb / v1_load_secs);
  std::printf("%14s %10.2f %10.0f %10s\n", "relabel (xml)",
              relabel_secs * 1e3, num_runs / relabel_secs, "-");
  std::printf("\nsnapshot: %.3f MB for %zu runs (%llu vertices); "
              "warm restart is %.1fx faster than relabeling\n",
              mb, num_runs, static_cast<unsigned long long>(total_vertices),
              relabel_secs / load_secs);

  json.Add("snapshot_mb", mb, "MB");
  json.Add("save_ms", save_secs * 1e3, "ms");
  json.Add("save_runs_per_sec", num_runs / save_secs, "runs/s");
  json.Add("save_mb_per_sec", mb / save_secs, "MB/s");
  json.Add("load_ms", load_secs * 1e3, "ms");
  json.Add("load_runs_per_sec", num_runs / load_secs, "runs/s");
  json.Add("load_mb_per_sec", mb / load_secs, "MB/s");
  // The snapshot_load_* keys are the bench-compare CI gate's regression
  // surface (tools/bench_compare.py; docs/BENCHMARKS.md).
  json.Add("snapshot_load_ms", load_secs * 1e3, "ms");
  json.Add("snapshot_load_mmap_ms", mmap_secs * 1e3, "ms");
  json.Add("snapshot_load_v1_ms", v1_load_secs * 1e3, "ms");
  json.Add("snapshot_load_mb_per_sec", mb / load_secs, "MB/s");
  json.Add("relabel_ms", relabel_secs * 1e3, "ms");
  json.Add("warm_restart_speedup", relabel_secs / load_secs, "x");

  std::filesystem::remove(path, ec);
  std::filesystem::remove(v1_path, ec);
  return 0;
}
