// Tests for the fork/loop hierarchy T_G (paper Figure 6) built from the
// running example and synthetic cases.
#include <gtest/gtest.h>

#include <algorithm>

#include "src/workflow/hierarchy.h"
#include "tests/test_util.h"

namespace skl {
namespace {

class HierarchyRunningExample : public ::testing::Test {
 protected:
  void SetUp() override { ex_ = testing_util::MakeRunningExample(); }

  /// Node id for the i-th declared subgraph (F1=0, L1=1, L2=2, F2=3).
  HierNodeId Node(int declared_index) const {
    return static_cast<HierNodeId>(declared_index + 1);
  }

  testing_util::RunningExample ex_;
};

TEST_F(HierarchyRunningExample, ShapeMatchesFigure6) {
  const Hierarchy& h = ex_.spec.hierarchy();
  ASSERT_EQ(h.size(), 5u);
  EXPECT_EQ(h.depth(), 3);
  // Root -> {F1, L2}; F1 -> L1; L2 -> F2.
  EXPECT_EQ(h.node(Node(0)).parent, kHierRoot);  // F1
  EXPECT_EQ(h.node(Node(1)).parent, Node(0));    // L1 under F1
  EXPECT_EQ(h.node(Node(2)).parent, kHierRoot);  // L2
  EXPECT_EQ(h.node(Node(3)).parent, Node(2));    // F2 under L2
  EXPECT_EQ(h.node(Node(0)).depth, 2);
  EXPECT_EQ(h.node(Node(1)).depth, 3);
  EXPECT_EQ(h.node(Node(3)).depth, 3);
}

TEST_F(HierarchyRunningExample, Kinds) {
  const Hierarchy& h = ex_.spec.hierarchy();
  EXPECT_EQ(h.node(kHierRoot).kind, HierKind::kRoot);
  EXPECT_EQ(h.node(Node(0)).kind, HierKind::kFork);
  EXPECT_EQ(h.node(Node(1)).kind, HierKind::kLoop);
  EXPECT_EQ(h.node(Node(2)).kind, HierKind::kLoop);
  EXPECT_EQ(h.node(Node(3)).kind, HierKind::kFork);
}

TEST_F(HierarchyRunningExample, Owners) {
  const Hierarchy& h = ex_.spec.hierarchy();
  EXPECT_EQ(h.OwnerOf(ex_.sv("a")), kHierRoot);
  EXPECT_EQ(h.OwnerOf(ex_.sv("h")), kHierRoot);
  EXPECT_EQ(h.OwnerOf(ex_.sv("d")), kHierRoot);
  EXPECT_EQ(h.OwnerOf(ex_.sv("b")), Node(1));  // L1 (deeper than F1)
  EXPECT_EQ(h.OwnerOf(ex_.sv("c")), Node(1));
  EXPECT_EQ(h.OwnerOf(ex_.sv("e")), Node(2));  // L2
  EXPECT_EQ(h.OwnerOf(ex_.sv("g")), Node(2));
  EXPECT_EQ(h.OwnerOf(ex_.sv("f")), Node(3));  // F2 (deeper than L2)
}

TEST_F(HierarchyRunningExample, OwnEdges) {
  const Hierarchy& h = ex_.spec.hierarchy();
  // F1 owns a->b and c->h (b->c belongs to L1).
  EXPECT_EQ(h.node(Node(0)).own_edges.size(), 2u);
  // L1 owns b->c (leaf).
  ASSERT_EQ(h.node(Node(1)).own_edges.size(), 1u);
  EXPECT_EQ(h.node(Node(1)).own_edges[0],
            std::make_pair(ex_.sv("b"), ex_.sv("c")));
  // L2 owns nothing: F2 has the same edge set.
  EXPECT_TRUE(h.node(Node(2)).own_edges.empty());
  // F2 (leaf) owns e->f and f->g.
  EXPECT_EQ(h.node(Node(3)).own_edges.size(), 2u);
  // Root owns a->d, d->e, g->h.
  EXPECT_EQ(h.node(kHierRoot).own_edges.size(), 3u);
}

TEST_F(HierarchyRunningExample, LeadersAndDesignatedChildren) {
  const Hierarchy& h = ex_.spec.hierarchy();
  // Leaves: L1 and F2 carry leader edges.
  EXPECT_TRUE(h.IsLeaf(Node(1)));
  EXPECT_TRUE(h.IsLeaf(Node(3)));
  EXPECT_NE(h.node(Node(1)).leader_edge.first, kInvalidVertex);
  // Inner nodes designate a child.
  EXPECT_EQ(h.node(Node(0)).designated_child, Node(1));
  EXPECT_EQ(h.node(Node(2)).designated_child, Node(3));
}

TEST_F(HierarchyRunningExample, Levels) {
  const Hierarchy& h = ex_.spec.hierarchy();
  EXPECT_EQ(h.Level(1).size(), 1u);
  EXPECT_EQ(h.Level(2).size(), 2u);
  EXPECT_EQ(h.Level(3).size(), 2u);
}

TEST_F(HierarchyRunningExample, OwnVertices) {
  const Hierarchy& h = ex_.spec.hierarchy();
  EXPECT_EQ(h.OwnVertices(kHierRoot).size(), 3u);  // a, h, d
  EXPECT_TRUE(h.OwnVertices(Node(0)).empty());     // F1 owns none
  EXPECT_EQ(h.OwnVertices(Node(1)).size(), 2u);    // b, c
  EXPECT_EQ(h.OwnVertices(Node(2)).size(), 2u);    // e, g
  EXPECT_EQ(h.OwnVertices(Node(3)).size(), 1u);    // f
}

}  // namespace
}  // namespace skl
