// Tests for skl::ThreadPool: FIFO dispatch, exception capture into futures,
// the zero-thread inline mode, queue draining on destruction, and a
// many-producer stress run.
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <stdexcept>
#include <thread>
#include <vector>

#include "src/common/thread_pool.h"

namespace skl {
namespace {

TEST(ThreadPoolTest, SingleWorkerRunsTasksInSubmissionOrder) {
  ThreadPool pool(1);
  std::vector<int> order;  // touched only by the single worker
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(pool.Submit([&order, i] { order.push_back(i); }));
  }
  for (std::future<void>& f : futures) f.get();
  ASSERT_EQ(order.size(), 64u);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPoolTest, ExceptionPropagatesThroughFutureAndPoolSurvives) {
  ThreadPool pool(2);
  std::future<void> boom =
      pool.Submit([] { throw std::runtime_error("task failed"); });
  EXPECT_THROW(boom.get(), std::runtime_error);

  // The worker that ran the throwing task is still alive and serving.
  std::atomic<int> ran{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 16; ++i) {
    futures.push_back(pool.Submit([&ran] { ran.fetch_add(1); }));
  }
  for (std::future<void>& f : futures) f.get();
  EXPECT_EQ(ran.load(), 16);
}

TEST(ThreadPoolTest, ZeroThreadsExecutesInlineOnCallingThread) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 0u);
  std::thread::id task_thread;
  std::future<void> f =
      pool.Submit([&task_thread] { task_thread = std::this_thread::get_id(); });
  // Inline mode completes before Submit returns.
  EXPECT_EQ(f.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  f.get();
  EXPECT_EQ(task_thread, std::this_thread::get_id());

  // Exceptions still land in the future, not at the Submit call site.
  std::future<void> boom =
      pool.Submit([] { throw std::runtime_error("inline failure"); });
  EXPECT_THROW(boom.get(), std::runtime_error);
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 32; ++i) {
      pool.Submit([&ran] { ran.fetch_add(1); });
    }
    // No waiting here: destruction must finish the queue, then join.
  }
  EXPECT_EQ(ran.load(), 32);
}

TEST(ThreadPoolTest, ManyProducersManyWorkersStress) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < 4; ++p) {
    producers.emplace_back([&pool, &ran] {
      std::vector<std::future<void>> futures;
      for (int i = 0; i < 200; ++i) {
        futures.push_back(pool.Submit([&ran] { ran.fetch_add(1); }));
      }
      for (std::future<void>& f : futures) f.get();
    });
  }
  for (std::thread& t : producers) t.join();
  EXPECT_EQ(ran.load(), 800);
  EXPECT_EQ(pool.num_threads(), 4u);
}

TEST(ThreadPoolTest, DefaultThreadCountIsPositive) {
  EXPECT_GE(ThreadPool::DefaultThreadCount(), 1u);
}

}  // namespace
}  // namespace skl
