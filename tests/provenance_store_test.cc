// Tests for the persistent provenance store: lossless serialization, queries
// from the blob alone (run graph discarded), and corrupt-input rejection.
// The store itself is pure data since the scheme-passing overloads were
// removed; blob queries go through ProvenanceService::ImportRun, the one
// place that pairs a blob with the scheme its labels were built under.
#include <gtest/gtest.h>

#include <vector>

#include "src/core/provenance_service.h"
#include "src/core/provenance_store.h"
#include "src/core/skeleton_labeler.h"
#include "src/graph/algorithms.h"
#include "src/workload/data_generator.h"
#include "src/workload/run_generator.h"
#include "tests/test_util.h"

namespace skl {
namespace {

class ProvenanceStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ex_ = testing_util::MakeRunningExample();
    labeler_ = std::make_unique<SkeletonLabeler>(&ex_.spec,
                                                 SpecSchemeKind::kTcm);
    ASSERT_TRUE(labeler_->Init().ok());
    auto labeling = labeler_->LabelRun(ex_.run);
    ASSERT_TRUE(labeling.ok());
    labeling_ = std::make_unique<RunLabeling>(std::move(labeling).value());
  }

  /// A service over (a copy of) the running-example spec, for importing
  /// blobs produced by the standalone Capture/Serialize path.
  ProvenanceService MakeService() {
    auto ex = testing_util::MakeRunningExample();
    auto service =
        ProvenanceService::Create(std::move(ex.spec), SpecSchemeKind::kTcm);
    SKL_CHECK_MSG(service.ok(), service.status().ToString().c_str());
    return std::move(service).value();
  }

  testing_util::RunningExample ex_;
  std::unique_ptr<SkeletonLabeler> labeler_;
  std::unique_ptr<RunLabeling> labeling_;
};

TEST_F(ProvenanceStoreTest, RoundTripLabelsOnly) {
  ProvenanceStore store = ProvenanceStore::Capture(*labeling_);
  auto blob = store.Serialize();
  auto restored = ProvenanceStore::Deserialize(blob);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  ASSERT_EQ(restored->num_vertices(), ex_.run.num_vertices());
  EXPECT_EQ(restored->num_items(), 0u);
  // The labels round-trip bit-identically: Decide over restored labels
  // agrees with the in-memory labeling on every pair.
  for (VertexId u = 0; u < ex_.run.num_vertices(); ++u) {
    for (VertexId v = 0; v < ex_.run.num_vertices(); ++v) {
      EXPECT_EQ(RunLabeling::Decide(restored->label(u), restored->label(v),
                                    labeler_->scheme()),
                labeling_->Reaches(u, v));
    }
  }
}

TEST_F(ProvenanceStoreTest, RoundTripWithCatalog) {
  DataCatalog catalog;
  DataItemId x1 = catalog.AddItem(ex_.rv("a1"));
  ASSERT_TRUE(catalog.AddFlow(x1, ex_.rv("a1"), ex_.rv("b1")).ok());
  ASSERT_TRUE(catalog.AddFlow(x1, ex_.rv("a1"), ex_.rv("b3")).ok());
  DataItemId x6 = catalog.AddItem(ex_.rv("c3"));
  ASSERT_TRUE(catalog.AddFlow(x6, ex_.rv("c3"), ex_.rv("h1")).ok());

  ProvenanceStore store = ProvenanceStore::Capture(*labeling_, &catalog);
  ProvenanceService service = MakeService();
  auto id = service.ImportRun(store.Serialize());
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  auto stats = service.Stats(*id);
  ASSERT_TRUE(stats.ok());
  ASSERT_EQ(stats->num_items, 2u);
  EXPECT_TRUE(stats->imported);
  // Example 10, now answered from the persisted blob.
  auto dep = service.DependsOn(*id, x6, x1);
  ASSERT_TRUE(dep.ok());
  EXPECT_TRUE(*dep);
  auto rev = service.DependsOn(*id, x1, x6);
  ASSERT_TRUE(rev.ok());
  EXPECT_FALSE(*rev);
  auto mod = service.DataDependsOnModule(*id, x6, ex_.rv("b3"));
  ASSERT_TRUE(mod.ok());
  EXPECT_TRUE(*mod);
  auto mdd = service.ModuleDependsOnData(*id, ex_.rv("h1"), x1);
  ASSERT_TRUE(mdd.ok());
  EXPECT_TRUE(*mdd);
  // The catalog accessors expose the raw writer/reader lists.
  EXPECT_EQ(store.item_writer(x1), ex_.rv("a1"));
  ASSERT_EQ(store.item_readers(x1).size(), 2u);
}

TEST_F(ProvenanceStoreTest, QueryErrorsOnBadIds) {
  ProvenanceStore store = ProvenanceStore::Capture(*labeling_);
  ProvenanceService service = MakeService();
  auto id = service.ImportRun(store.Serialize());
  ASSERT_TRUE(id.ok());
  // No catalog: every item id is unknown; vertex ids out of range too.
  EXPECT_FALSE(service.DependsOn(*id, 0, 0).ok());
  EXPECT_FALSE(service.ModuleDependsOnData(*id, 0, 99).ok());
  EXPECT_FALSE(service.DataDependsOnModule(*id, 99, 0).ok());
}

TEST_F(ProvenanceStoreTest, CorruptBlobsRejected) {
  ProvenanceStore store = ProvenanceStore::Capture(*labeling_);
  auto blob = store.Serialize();
  // Wrong magic.
  auto bad = blob;
  bad[0] ^= 0xff;
  EXPECT_FALSE(ProvenanceStore::Deserialize(bad).ok());
  // Truncated.
  auto cut = blob;
  cut.resize(cut.size() / 3);
  EXPECT_FALSE(ProvenanceStore::Deserialize(cut).ok());
  // Empty.
  EXPECT_FALSE(ProvenanceStore::Deserialize(std::vector<uint8_t>{}).ok());
}

TEST(ProvenanceStoreLargeTest, GeneratedRunRoundTrip) {
  auto spec_result = BuildRunningExampleSpec();
  ASSERT_TRUE(spec_result.ok());
  Specification spec = std::move(spec_result).value();
  RunGenerator gen(&spec);
  RunGenOptions ropt;
  ropt.target_vertices = 800;
  ropt.seed = 3;
  auto generated = gen.Generate(ropt);
  ASSERT_TRUE(generated.ok());
  SkeletonLabeler labeler(&spec, SpecSchemeKind::kTcm);
  ASSERT_TRUE(labeler.Init().ok());
  auto labeling = labeler.LabelRun(generated->run);
  ASSERT_TRUE(labeling.ok());
  DataGenOptions dopt;
  dopt.seed = 4;
  DataCatalog catalog = GenerateDataCatalog(generated->run, dopt);

  ProvenanceStore store = ProvenanceStore::Capture(*labeling, &catalog);
  auto blob = store.Serialize();

  // Storage sanity: label payload is within a byte-rounding of the
  // theoretical width.
  EXPECT_LT(blob.size(),
            (labeling->label_bits() + 8) / 8.0 *
                    generated->run.num_vertices() +
                catalog.size() * 8 + 64);

  // Import the blob into a fresh service over the same spec; answers must
  // match brute-force graph traversal.
  auto ex = testing_util::MakeRunningExample();
  auto service =
      ProvenanceService::Create(std::move(ex.spec), SpecSchemeKind::kTcm);
  ASSERT_TRUE(service.ok());
  auto id = service->ImportRun(blob);
  ASSERT_TRUE(id.ok()) << id.status().ToString();

  const Digraph& g = generated->run.graph();
  Rng rng(5);
  for (int i = 0; i < 2000; ++i) {
    VertexId u = static_cast<VertexId>(rng.NextBelow(g.num_vertices()));
    VertexId v = static_cast<VertexId>(rng.NextBelow(g.num_vertices()));
    auto stored = service->Reaches(*id, u, v);
    ASSERT_TRUE(stored.ok());
    ASSERT_EQ(*stored, Reaches(g, u, v));
  }
  for (int i = 0; i < 300; ++i) {
    DataItemId a = static_cast<DataItemId>(rng.NextBelow(catalog.size()));
    DataItemId b = static_cast<DataItemId>(rng.NextBelow(catalog.size()));
    auto stored = service->DependsOn(*id, a, b);
    ASSERT_TRUE(stored.ok());
    bool brute = false;
    for (VertexId r : catalog.InputsOf(b)) {
      brute = brute || Reaches(g, r, catalog.OutputOf(a));
    }
    ASSERT_EQ(*stored, brute);
  }
}

}  // namespace
}  // namespace skl
