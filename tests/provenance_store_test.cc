// Tests for the persistent provenance store: lossless serialization, queries
// from the blob alone (run graph discarded), and corrupt-input rejection.
#include <gtest/gtest.h>

#include <vector>

#include "src/core/provenance_store.h"
#include "src/core/skeleton_labeler.h"
#include "src/graph/algorithms.h"
#include "src/workload/data_generator.h"
#include "src/workload/run_generator.h"
#include "tests/test_util.h"

namespace skl {
namespace {

class ProvenanceStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ex_ = testing_util::MakeRunningExample();
    labeler_ = std::make_unique<SkeletonLabeler>(&ex_.spec,
                                                 SpecSchemeKind::kTcm);
    ASSERT_TRUE(labeler_->Init().ok());
    auto labeling = labeler_->LabelRun(ex_.run);
    ASSERT_TRUE(labeling.ok());
    labeling_ = std::make_unique<RunLabeling>(std::move(labeling).value());
  }

  testing_util::RunningExample ex_;
  std::unique_ptr<SkeletonLabeler> labeler_;
  std::unique_ptr<RunLabeling> labeling_;
};

TEST_F(ProvenanceStoreTest, RoundTripLabelsOnly) {
  ProvenanceStore store = ProvenanceStore::Capture(*labeling_);
  auto blob = store.Serialize();
  auto restored = ProvenanceStore::Deserialize(blob);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  ASSERT_EQ(restored->num_vertices(), ex_.run.num_vertices());
  EXPECT_EQ(restored->num_items(), 0u);
  for (VertexId u = 0; u < ex_.run.num_vertices(); ++u) {
    for (VertexId v = 0; v < ex_.run.num_vertices(); ++v) {
      EXPECT_EQ(restored->Reaches(u, v, labeler_->scheme()),
                labeling_->Reaches(u, v));
    }
  }
}

TEST_F(ProvenanceStoreTest, RoundTripWithCatalog) {
  DataCatalog catalog;
  DataItemId x1 = catalog.AddItem(ex_.rv("a1"));
  ASSERT_TRUE(catalog.AddFlow(x1, ex_.rv("a1"), ex_.rv("b1")).ok());
  ASSERT_TRUE(catalog.AddFlow(x1, ex_.rv("a1"), ex_.rv("b3")).ok());
  DataItemId x6 = catalog.AddItem(ex_.rv("c3"));
  ASSERT_TRUE(catalog.AddFlow(x6, ex_.rv("c3"), ex_.rv("h1")).ok());

  ProvenanceStore store = ProvenanceStore::Capture(*labeling_, &catalog);
  auto restored = ProvenanceStore::Deserialize(store.Serialize());
  ASSERT_TRUE(restored.ok());
  ASSERT_EQ(restored->num_items(), 2u);
  // Example 10, now answered from the persisted blob.
  auto dep = restored->DependsOn(x6, x1, labeler_->scheme());
  ASSERT_TRUE(dep.ok());
  EXPECT_TRUE(*dep);
  auto rev = restored->DependsOn(x1, x6, labeler_->scheme());
  ASSERT_TRUE(rev.ok());
  EXPECT_FALSE(*rev);
  auto mod = restored->DataDependsOnModule(x6, ex_.rv("b3"),
                                           labeler_->scheme());
  ASSERT_TRUE(mod.ok());
  EXPECT_TRUE(*mod);
  auto mdd = restored->ModuleDependsOnData(ex_.rv("h1"), x1,
                                           labeler_->scheme());
  ASSERT_TRUE(mdd.ok());
  EXPECT_TRUE(*mdd);
}

TEST_F(ProvenanceStoreTest, QueryErrorsOnBadIds) {
  ProvenanceStore store = ProvenanceStore::Capture(*labeling_);
  EXPECT_FALSE(store.DependsOn(0, 0, labeler_->scheme()).ok());
  EXPECT_FALSE(
      store.ModuleDependsOnData(0, 99, labeler_->scheme()).ok());
  EXPECT_FALSE(
      store.DataDependsOnModule(99, 0, labeler_->scheme()).ok());
}

TEST_F(ProvenanceStoreTest, CorruptBlobsRejected) {
  ProvenanceStore store = ProvenanceStore::Capture(*labeling_);
  auto blob = store.Serialize();
  // Wrong magic.
  auto bad = blob;
  bad[0] ^= 0xff;
  EXPECT_FALSE(ProvenanceStore::Deserialize(bad).ok());
  // Truncated.
  auto cut = blob;
  cut.resize(cut.size() / 3);
  EXPECT_FALSE(ProvenanceStore::Deserialize(cut).ok());
  // Empty.
  EXPECT_FALSE(ProvenanceStore::Deserialize(std::vector<uint8_t>{}).ok());
}

TEST(ProvenanceStoreLargeTest, GeneratedRunRoundTrip) {
  auto spec_result = BuildRunningExampleSpec();
  ASSERT_TRUE(spec_result.ok());
  Specification spec = std::move(spec_result).value();
  RunGenerator gen(&spec);
  RunGenOptions ropt;
  ropt.target_vertices = 800;
  ropt.seed = 3;
  auto generated = gen.Generate(ropt);
  ASSERT_TRUE(generated.ok());
  SkeletonLabeler labeler(&spec, SpecSchemeKind::kTcm);
  ASSERT_TRUE(labeler.Init().ok());
  auto labeling = labeler.LabelRun(generated->run);
  ASSERT_TRUE(labeling.ok());
  DataGenOptions dopt;
  dopt.seed = 4;
  DataCatalog catalog = GenerateDataCatalog(generated->run, dopt);

  ProvenanceStore store = ProvenanceStore::Capture(*labeling, &catalog);
  auto blob = store.Serialize();
  auto restored = ProvenanceStore::Deserialize(blob);
  ASSERT_TRUE(restored.ok());

  // Storage sanity: label payload is within a byte-rounding of the
  // theoretical width.
  EXPECT_LT(blob.size(),
            (labeling->label_bits() + 8) / 8.0 *
                    generated->run.num_vertices() +
                catalog.size() * 8 + 64);

  // Query equivalence against the in-memory path, sampled.
  const Digraph& g = generated->run.graph();
  Rng rng(5);
  for (int i = 0; i < 2000; ++i) {
    VertexId u = static_cast<VertexId>(rng.NextBelow(g.num_vertices()));
    VertexId v = static_cast<VertexId>(rng.NextBelow(g.num_vertices()));
    ASSERT_EQ(restored->Reaches(u, v, labeler.scheme()), Reaches(g, u, v));
  }
  for (int i = 0; i < 300; ++i) {
    DataItemId a = static_cast<DataItemId>(rng.NextBelow(catalog.size()));
    DataItemId b = static_cast<DataItemId>(rng.NextBelow(catalog.size()));
    auto stored = restored->DependsOn(a, b, labeler.scheme());
    ASSERT_TRUE(stored.ok());
    bool brute = false;
    for (VertexId r : catalog.InputsOf(b)) {
      brute = brute || Reaches(g, r, catalog.OutputOf(a));
    }
    ASSERT_EQ(*stored, brute);
  }
}

}  // namespace
}  // namespace skl
