// Tests for Section 6 data provenance: the paper's Example 10 plus
// brute-force cross-checks of the dependency semantics.
#include <gtest/gtest.h>

#include "src/core/data_provenance.h"
#include "src/core/skeleton_labeler.h"
#include "src/graph/algorithms.h"
#include "src/workload/data_generator.h"
#include "src/workload/run_generator.h"
#include "tests/test_util.h"

namespace skl {
namespace {

class DataProvenanceExample : public ::testing::Test {
 protected:
  void SetUp() override {
    ex_ = testing_util::MakeRunningExample();
    labeler_ = std::make_unique<SkeletonLabeler>(&ex_.spec,
                                                 SpecSchemeKind::kTcm);
    ASSERT_TRUE(labeler_->Init().ok());
    auto labeling = labeler_->LabelRun(ex_.run);
    ASSERT_TRUE(labeling.ok());
    labeling_ = std::make_unique<RunLabeling>(std::move(labeling).value());
  }

  testing_util::RunningExample ex_;
  std::unique_ptr<SkeletonLabeler> labeler_;
  std::unique_ptr<RunLabeling> labeling_;
};

TEST_F(DataProvenanceExample, Example10) {
  // Figure 11: x1 flows a1->{b1, b3}; x6 flows c3->h1.
  DataCatalog catalog;
  DataItemId x1 = catalog.AddItem(ex_.rv("a1"));
  ASSERT_TRUE(catalog.AddFlow(x1, ex_.rv("a1"), ex_.rv("b1")).ok());
  ASSERT_TRUE(catalog.AddFlow(x1, ex_.rv("a1"), ex_.rv("b3")).ok());
  DataItemId x6 = catalog.AddItem(ex_.rv("c3"));
  ASSERT_TRUE(catalog.AddFlow(x6, ex_.rv("c3"), ex_.rv("h1")).ok());

  auto dp = DataProvenance::Build(labeling_.get(), catalog);
  ASSERT_TRUE(dp.ok());
  // x6 depends on x1 iff some reader of x1 (b1 or b3) reaches c3. b3 does.
  EXPECT_TRUE(dp->DependsOn(x6, x1));
  // x1 does not depend on x6 (h1 reaches nothing upstream).
  EXPECT_FALSE(dp->DependsOn(x1, x6));
  // Data-vs-module queries.
  EXPECT_TRUE(dp->DataDependsOnModule(x6, ex_.rv("b3")));
  EXPECT_FALSE(dp->DataDependsOnModule(x6, ex_.rv("b1")));
  EXPECT_TRUE(dp->ModuleDependsOnData(ex_.rv("h1"), x1));
  EXPECT_FALSE(dp->ModuleDependsOnData(ex_.rv("d1"), x1));
}

TEST_F(DataProvenanceExample, WriterConsistencyEnforced) {
  DataCatalog catalog;
  DataItemId x = catalog.AddItem(ex_.rv("a1"));
  EXPECT_FALSE(catalog.AddFlow(x, ex_.rv("b1"), ex_.rv("c1")).ok());
  EXPECT_FALSE(catalog.AddFlow(99, ex_.rv("a1"), ex_.rv("b1")).ok());
}

TEST_F(DataProvenanceExample, DuplicateReaderDeduplicated) {
  DataCatalog catalog;
  DataItemId x = catalog.AddItem(ex_.rv("a1"));
  ASSERT_TRUE(catalog.AddFlow(x, ex_.rv("a1"), ex_.rv("b1")).ok());
  ASSERT_TRUE(catalog.AddFlow(x, ex_.rv("a1"), ex_.rv("b1")).ok());
  EXPECT_EQ(catalog.InputsOf(x).size(), 1u);
  EXPECT_EQ(catalog.MaxInputs(), 1u);
}

TEST_F(DataProvenanceExample, LabelBitsScaleWithReaders) {
  DataCatalog catalog;
  DataItemId x1 = catalog.AddItem(ex_.rv("a1"));
  ASSERT_TRUE(catalog.AddFlow(x1, ex_.rv("a1"), ex_.rv("b1")).ok());
  ASSERT_TRUE(catalog.AddFlow(x1, ex_.rv("a1"), ex_.rv("b3")).ok());
  DataItemId x2 = catalog.AddItem(ex_.rv("c3"));
  ASSERT_TRUE(catalog.AddFlow(x2, ex_.rv("c3"), ex_.rv("h1")).ok());
  auto dp = DataProvenance::Build(labeling_.get(), catalog);
  ASSERT_TRUE(dp.ok());
  EXPECT_EQ(dp->LabelBits(x1), 3u * labeling_->label_bits());
  EXPECT_EQ(dp->LabelBits(x2), 2u * labeling_->label_bits());
}

TEST_F(DataProvenanceExample, RejectsOutOfRangeModules) {
  DataCatalog catalog;
  catalog.AddItem(9999);
  auto dp = DataProvenance::Build(labeling_.get(), catalog);
  EXPECT_FALSE(dp.ok());
}

TEST(DataProvenancePropertyTest, MatchesBruteForceOnGeneratedRun) {
  auto spec_result = BuildRunningExampleSpec();
  ASSERT_TRUE(spec_result.ok());
  Specification spec = std::move(spec_result).value();
  RunGenerator generator(&spec);
  RunGenOptions ropt;
  ropt.target_vertices = 120;
  ropt.seed = 5;
  auto gen = generator.Generate(ropt);
  ASSERT_TRUE(gen.ok());

  SkeletonLabeler labeler(&spec, SpecSchemeKind::kTcm);
  ASSERT_TRUE(labeler.Init().ok());
  auto labeling = labeler.LabelRun(gen->run);
  ASSERT_TRUE(labeling.ok());

  DataGenOptions dopt;
  dopt.seed = 17;
  DataCatalog catalog = GenerateDataCatalog(gen->run, dopt);
  ASSERT_GT(catalog.size(), 0u);
  auto dp = DataProvenance::Build(&labeling.value(), catalog);
  ASSERT_TRUE(dp.ok());

  const Digraph& g = gen->run.graph();
  // Brute force: x depends on x_from iff some reader of x_from reaches
  // Output(x) in the run graph.
  auto brute = [&](DataItemId x, DataItemId x_from) {
    for (VertexId r : catalog.InputsOf(x_from)) {
      if (Reaches(g, r, catalog.OutputOf(x))) return true;
    }
    return false;
  };
  // Sample pairs (the full cross product is quadratic in items).
  Rng rng(23);
  for (int i = 0; i < 400; ++i) {
    DataItemId a = static_cast<DataItemId>(rng.NextBelow(catalog.size()));
    DataItemId b = static_cast<DataItemId>(rng.NextBelow(catalog.size()));
    EXPECT_EQ(dp->DependsOn(a, b), brute(a, b)) << a << " vs " << b;
  }
  for (int i = 0; i < 200; ++i) {
    DataItemId a = static_cast<DataItemId>(rng.NextBelow(catalog.size()));
    VertexId v = static_cast<VertexId>(rng.NextBelow(g.num_vertices()));
    EXPECT_EQ(dp->DataDependsOnModule(a, v),
              Reaches(g, v, catalog.OutputOf(a)));
  }
}

}  // namespace
}  // namespace skl
