// Tests for Run/RunBuilder and the origin function (Definition 8).
#include <gtest/gtest.h>

#include "src/workflow/run.h"
#include "tests/test_util.h"

namespace skl {
namespace {

TEST(RunBuilderTest, OwnedTableInternsNames) {
  RunBuilder b;
  VertexId v0 = b.AddVertex("alpha");
  VertexId v1 = b.AddVertex("beta");
  VertexId v2 = b.AddVertex("alpha");
  b.AddEdge(v0, v1).AddEdge(v1, v2);
  auto run = std::move(b).Build();
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->num_vertices(), 3u);
  EXPECT_EQ(run->ModuleNameOf(v0), "alpha");
  EXPECT_EQ(run->ModuleNameOf(v2), "alpha");
  EXPECT_EQ(run->ModuleOf(v0), run->ModuleOf(v2));
  EXPECT_NE(run->ModuleOf(v0), run->ModuleOf(v1));
}

TEST(RunBuilderTest, SharedTable) {
  auto ex = testing_util::MakeRunningExample();
  EXPECT_EQ(&ex.run.modules(), &ex.spec.modules());
  EXPECT_EQ(ex.run.ModuleNameOf(ex.rv("b2")), "b");
}

TEST(RunBuilderTest, RejectsBadEdges) {
  RunBuilder b;
  VertexId v = b.AddVertex("x");
  b.AddEdge(v, 42);
  EXPECT_FALSE(std::move(b).Build().ok());

  RunBuilder b2;
  VertexId w = b2.AddVertex("x");
  b2.AddEdge(w, w);
  EXPECT_FALSE(std::move(b2).Build().ok());
}

TEST(RunBuilderTest, RejectsUnknownModuleId) {
  auto ex = testing_util::MakeRunningExample();
  RunBuilder b(ex.spec.shared_modules());
  b.AddVertexById(999);
  EXPECT_FALSE(std::move(b).Build().ok());
}

TEST(ComputeOriginTest, RunningExample) {
  auto ex = testing_util::MakeRunningExample();
  auto origin = ComputeOrigin(ex.spec, ex.run);
  ASSERT_TRUE(origin.ok()) << origin.status().ToString();
  EXPECT_EQ((*origin)[ex.rv("b1")], ex.sv("b"));
  EXPECT_EQ((*origin)[ex.rv("b3")], ex.sv("b"));
  EXPECT_EQ((*origin)[ex.rv("f2")], ex.sv("f"));
  EXPECT_EQ((*origin)[ex.rv("a1")], ex.sv("a"));
}

TEST(ComputeOriginTest, ByNameAcrossTables) {
  auto ex = testing_util::MakeRunningExample();
  // Rebuild the run with an independent module table: origins must resolve
  // through names.
  RunBuilder b;
  VertexId x = b.AddVertex("a");
  VertexId y = b.AddVertex("d");
  b.AddEdge(x, y);
  auto run = std::move(b).Build();
  ASSERT_TRUE(run.ok());
  auto origin = ComputeOrigin(ex.spec, *run);
  ASSERT_TRUE(origin.ok());
  EXPECT_EQ((*origin)[x], ex.sv("a"));
  EXPECT_EQ((*origin)[y], ex.sv("d"));
}

TEST(ComputeOriginTest, UnknownModuleFails) {
  auto ex = testing_util::MakeRunningExample();
  RunBuilder b;
  b.AddVertex("not_a_module");
  auto run = std::move(b).Build();
  ASSERT_TRUE(run.ok());
  auto origin = ComputeOrigin(ex.spec, *run);
  ASSERT_FALSE(origin.ok());
  EXPECT_EQ(origin.status().code(), StatusCode::kInvalidRun);
}

}  // namespace
}  // namespace skl
