// Tests for the Section 5 plan-recovery algorithm: the running example must
// reproduce the Figure 7 execution plan and the Figure 8 context assignment,
// and nonconforming runs must be rejected.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "src/core/plan_builder.h"
#include "tests/test_util.h"

namespace skl {
namespace {

class PlanBuilderRunningExample : public ::testing::Test {
 protected:
  void SetUp() override {
    ex_ = testing_util::MakeRunningExample();
    auto result = ConstructPlan(ex_.spec, ex_.run);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    plan_ = std::move(result->plan);
    origin_ = std::move(result->origin);
  }

  PlanNodeId Ctx(const std::string& name) const {
    return plan_.ContextOf(ex_.rv(name));
  }

  testing_util::RunningExample ex_;
  ExecutionPlan plan_;
  std::vector<VertexId> origin_;
};

TEST_F(PlanBuilderRunningExample, NodeCountsMatchFigure7) {
  // Figure 7 has 17 nodes: G+, F1-, 2x F1+, 2x L1-, 3x L1+, L2-, 2x L2+,
  // 2x F2-, 3x F2+.
  EXPECT_EQ(plan_.num_nodes(), 17u);
  std::map<PlanNodeType, int> counts;
  for (const PlanNode& n : plan_.nodes()) ++counts[n.type];
  EXPECT_EQ(counts[PlanNodeType::kGPlus], 1);
  EXPECT_EQ(counts[PlanNodeType::kFMinus], 3);  // F1- once, F2- twice
  EXPECT_EQ(counts[PlanNodeType::kFPlus], 5);   // 2x F1+, 3x F2+
  EXPECT_EQ(counts[PlanNodeType::kLMinus], 3);  // 2x L1-, 1x L2-
  EXPECT_EQ(counts[PlanNodeType::kLPlus], 5);   // 3x L1+, 2x L2+
}

TEST_F(PlanBuilderRunningExample, NonemptyPlusMatchesFigure8) {
  // Nonempty + nodes: root, 3x L1+, 2x L2+, 3x F2+ = 9 (x3/x7 are empty).
  EXPECT_EQ(plan_.num_nonempty_plus(), 9u);
  // The two F1+ copies are empty: a1/h1 belong to the root, b/c to L1+.
  for (const PlanNode& n : plan_.nodes()) {
    if (n.type == PlanNodeType::kFPlus && n.hier == 1 /* F1 */) {
      EXPECT_EQ(n.num_context_vertices, 0u);
    }
  }
}

TEST_F(PlanBuilderRunningExample, ContextsMatchFigure8) {
  // Root context: a1, h1, d1.
  EXPECT_EQ(Ctx("a1"), kPlanRoot);
  EXPECT_EQ(Ctx("h1"), kPlanRoot);
  EXPECT_EQ(Ctx("d1"), kPlanRoot);
  // L1+ copies: {b1,c1}, {b2,c2}, {b3,c3}.
  EXPECT_EQ(Ctx("b1"), Ctx("c1"));
  EXPECT_EQ(Ctx("b2"), Ctx("c2"));
  EXPECT_EQ(Ctx("b3"), Ctx("c3"));
  EXPECT_NE(Ctx("b1"), Ctx("b2"));
  EXPECT_NE(Ctx("b1"), Ctx("b3"));
  // L2+ copies: {e1,g1} and {e2,g2}.
  EXPECT_EQ(Ctx("e1"), Ctx("g1"));
  EXPECT_EQ(Ctx("e2"), Ctx("g2"));
  EXPECT_NE(Ctx("e1"), Ctx("e2"));
  // F2+ copies: {f1}, {f2}, {f3}, all distinct.
  EXPECT_NE(Ctx("f1"), Ctx("f2"));
  EXPECT_NE(Ctx("f2"), Ctx("f3"));
  EXPECT_NE(Ctx("f1"), Ctx("f3"));
  // Node types of the contexts.
  EXPECT_EQ(plan_.node(Ctx("b1")).type, PlanNodeType::kLPlus);
  EXPECT_EQ(plan_.node(Ctx("f1")).type, PlanNodeType::kFPlus);
  EXPECT_EQ(plan_.node(Ctx("e1")).type, PlanNodeType::kLPlus);
}

TEST_F(PlanBuilderRunningExample, SerialOrderOfLoopCopies) {
  // b1/c1 and b2/c2 sit in successive iterations of the same L1 execution:
  // same L- parent, b1's copy first.
  PlanNodeId l1 = plan_.node(Ctx("b1")).parent;
  ASSERT_EQ(plan_.node(l1).type, PlanNodeType::kLMinus);
  EXPECT_EQ(plan_.node(Ctx("b2")).parent, l1);
  ASSERT_EQ(plan_.node(l1).children.size(), 2u);
  EXPECT_EQ(plan_.node(l1).children[0], Ctx("b1"));
  EXPECT_EQ(plan_.node(l1).children[1], Ctx("b2"));
  // b3's iteration belongs to a different L- (other fork copy), size 1.
  PlanNodeId l1b = plan_.node(Ctx("b3")).parent;
  EXPECT_NE(l1b, l1);
  EXPECT_EQ(plan_.node(l1b).children.size(), 1u);
  // e1 before e2 under the L2 execution.
  PlanNodeId l2 = plan_.node(Ctx("e1")).parent;
  ASSERT_EQ(plan_.node(l2).type, PlanNodeType::kLMinus);
  ASSERT_EQ(plan_.node(l2).children.size(), 2u);
  EXPECT_EQ(plan_.node(l2).children[0], Ctx("e1"));
  EXPECT_EQ(plan_.node(l2).children[1], Ctx("e2"));
}

TEST_F(PlanBuilderRunningExample, ForkGrouping) {
  // f2 and f3 are parallel copies under one F2-.
  PlanNodeId f2_group = plan_.node(Ctx("f2")).parent;
  ASSERT_EQ(plan_.node(f2_group).type, PlanNodeType::kFMinus);
  EXPECT_EQ(plan_.node(Ctx("f3")).parent, f2_group);
  EXPECT_EQ(plan_.node(f2_group).children.size(), 2u);
  // f1's F2 execution (iteration 1) is a separate group of size 1.
  PlanNodeId f1_group = plan_.node(Ctx("f1")).parent;
  EXPECT_NE(f1_group, f2_group);
  EXPECT_EQ(plan_.node(f1_group).children.size(), 1u);
}

TEST_F(PlanBuilderRunningExample, HierarchyOfGroups) {
  // The F2- group of {f2,f3} hangs under e2's L2+ copy.
  PlanNodeId f2_group = plan_.node(Ctx("f2")).parent;
  EXPECT_EQ(plan_.node(f2_group).parent, Ctx("e2"));
  // L1 executions hang under (empty) F1+ copies, which group under one F1-.
  PlanNodeId l1_exec = plan_.node(Ctx("b1")).parent;
  PlanNodeId f1_copy = plan_.node(l1_exec).parent;
  EXPECT_EQ(plan_.node(f1_copy).type, PlanNodeType::kFPlus);
  PlanNodeId f1_exec = plan_.node(f1_copy).parent;
  EXPECT_EQ(plan_.node(f1_exec).type, PlanNodeType::kFMinus);
  EXPECT_EQ(plan_.node(f1_exec).parent, kPlanRoot);
  // The other fork copy (b3's) shares the same F1- node.
  PlanNodeId f1_copy_b =
      plan_.node(plan_.node(Ctx("b3")).parent).parent;
  EXPECT_EQ(plan_.node(f1_copy_b).parent, f1_exec);
  EXPECT_EQ(plan_.node(f1_exec).children.size(), 2u);
}

TEST_F(PlanBuilderRunningExample, PlanValidates) {
  EXPECT_TRUE(plan_.Validate(ex_.run.num_edges()).ok());
  EXPECT_LE(plan_.num_nodes(), 4 * ex_.run.num_edges());
}

TEST_F(PlanBuilderRunningExample, OriginsRecovered) {
  EXPECT_EQ(origin_[ex_.rv("b2")], ex_.sv("b"));
  EXPECT_EQ(origin_[ex_.rv("g2")], ex_.sv("g"));
}

TEST(PlanBuilderConformance, MinimalRunIsAccepted) {
  auto ex = testing_util::MakeRunningExample();
  // The spec itself (each subgraph executed once) is a valid run.
  RunBuilder rb(ex.spec.shared_modules());
  for (VertexId v = 0; v < ex.spec.graph().num_vertices(); ++v) {
    rb.AddVertexById(static_cast<ModuleId>(v));
  }
  for (const auto& [u, v] : ex.spec.graph().Edges()) rb.AddEdge(u, v);
  auto run = std::move(rb).Build();
  ASSERT_TRUE(run.ok());
  auto plan = ConstructPlan(ex.spec, *run);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_TRUE(plan->plan.Validate(run->num_edges()).ok());
}

TEST(PlanBuilderConformance, RejectsUnknownModule) {
  auto ex = testing_util::MakeRunningExample();
  RunBuilder rb;
  VertexId x = rb.AddVertex("zzz");
  VertexId y = rb.AddVertex("a");
  rb.AddEdge(y, x);
  auto run = std::move(rb).Build();
  ASSERT_TRUE(run.ok());
  EXPECT_FALSE(ConstructPlan(ex.spec, *run).ok());
}

TEST(PlanBuilderConformance, RejectsMissingSubgraphCopy) {
  auto ex = testing_util::MakeRunningExample();
  // A "run" missing the whole b/c branch: no copies of L1.
  RunBuilder rb(ex.spec.shared_modules());
  VertexId a = rb.AddVertexById(static_cast<ModuleId>(ex.sv("a")));
  VertexId d = rb.AddVertexById(static_cast<ModuleId>(ex.sv("d")));
  VertexId e = rb.AddVertexById(static_cast<ModuleId>(ex.sv("e")));
  VertexId f = rb.AddVertexById(static_cast<ModuleId>(ex.sv("f")));
  VertexId g = rb.AddVertexById(static_cast<ModuleId>(ex.sv("g")));
  VertexId h = rb.AddVertexById(static_cast<ModuleId>(ex.sv("h")));
  rb.AddEdge(a, d).AddEdge(d, e).AddEdge(e, f).AddEdge(f, g).AddEdge(g, h);
  auto run = std::move(rb).Build();
  ASSERT_TRUE(run.ok());
  auto plan = ConstructPlan(ex.spec, *run);
  ASSERT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kInvalidRun);
}

TEST(PlanBuilderConformance, RejectsForeignEdge) {
  auto ex = testing_util::MakeRunningExample();
  // Start from the valid Figure 3 run and add an edge d1 -> b3 that exists
  // nowhere in the specification.
  RunBuilder rb(ex.spec.shared_modules());
  for (VertexId v = 0; v < ex.run.num_vertices(); ++v) {
    rb.AddVertexById(ex.run.ModuleOf(v));
  }
  for (const auto& [u, v] : ex.run.graph().Edges()) rb.AddEdge(u, v);
  rb.AddEdge(ex.rv("d1"), ex.rv("b3"));
  auto run = std::move(rb).Build();
  ASSERT_TRUE(run.ok());
  EXPECT_FALSE(ConstructPlan(ex.spec, *run).ok());
}

TEST(PlanBuilderConformance, RejectsDuplicatedTopLevelVertex) {
  auto ex = testing_util::MakeRunningExample();
  // Two d vertices without a fork/loop justifying them.
  RunBuilder rb(ex.spec.shared_modules());
  for (VertexId v = 0; v < ex.run.num_vertices(); ++v) {
    rb.AddVertexById(ex.run.ModuleOf(v));
  }
  for (const auto& [u, v] : ex.run.graph().Edges()) rb.AddEdge(u, v);
  VertexId d2 = rb.AddVertexById(static_cast<ModuleId>(ex.sv("d")));
  rb.AddEdge(ex.rv("a1"), d2);
  auto run = std::move(rb).Build();
  ASSERT_TRUE(run.ok());
  EXPECT_FALSE(ConstructPlan(ex.spec, *run).ok());
}

TEST(PlanBuilderConformance, RejectsBrokenSerialChain) {
  auto ex = testing_util::MakeRunningExample();
  // Drop the serial edge g1 -> e2: the two L2 iterations float apart and the
  // top level ends up with two unconnected copies.
  RunBuilder rb(ex.spec.shared_modules());
  for (VertexId v = 0; v < ex.run.num_vertices(); ++v) {
    rb.AddVertexById(ex.run.ModuleOf(v));
  }
  for (const auto& [u, v] : ex.run.graph().Edges()) {
    if (u == ex.rv("g1") && v == ex.rv("e2")) continue;
    rb.AddEdge(u, v);
  }
  auto run = std::move(rb).Build();
  ASSERT_TRUE(run.ok());
  EXPECT_FALSE(ConstructPlan(ex.spec, *run).ok());
}

}  // namespace
}  // namespace skl
