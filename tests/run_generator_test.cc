// Tests for the run generator: conformance by construction (accepted by the
// plan-recovery conformance checker), ground-truth plan validity, target
// sizing and determinism.
#include <gtest/gtest.h>

#include "src/core/plan_builder.h"
#include "src/graph/algorithms.h"
#include "src/workload/run_generator.h"
#include "src/workload/spec_generator.h"
#include "tests/test_util.h"

namespace skl {
namespace {

TEST(RunGeneratorTest, MinimalRunMatchesSpecSize) {
  auto ex = testing_util::MakeRunningExample();
  RunGenerator gen(&ex.spec);
  auto run = gen.GenerateMinimal();
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->run.num_vertices(), ex.spec.graph().num_vertices());
  EXPECT_EQ(run->run.num_edges(), ex.spec.graph().num_edges());
  EXPECT_TRUE(run->plan.Validate(run->run.num_edges()).ok());
}

TEST(RunGeneratorTest, GeneratedRunsConform) {
  auto ex = testing_util::MakeRunningExample();
  RunGenerator gen(&ex.spec);
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    RunGenOptions opt;
    opt.mean_replication = 2.5;
    opt.seed = seed;
    auto run = gen.Generate(opt);
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    // The recovery algorithm doubles as a conformance oracle.
    auto rec = ConstructPlan(ex.spec, run->run);
    ASSERT_TRUE(rec.ok()) << "seed " << seed << ": "
                          << rec.status().ToString();
  }
}

TEST(RunGeneratorTest, TargetSizing) {
  auto ex = testing_util::MakeRunningExample();
  RunGenerator gen(&ex.spec);
  for (uint32_t target : {100u, 1000u, 10000u}) {
    RunGenOptions opt;
    opt.target_vertices = target;
    opt.seed = 3;
    auto run = gen.Generate(opt);
    ASSERT_TRUE(run.ok());
    double err = std::abs(static_cast<double>(run->run.num_vertices()) -
                          target) /
                 target;
    EXPECT_LE(err, 0.25) << "target " << target << " got "
                         << run->run.num_vertices();
  }
}

TEST(RunGeneratorTest, GroundTruthPlanMatchesRecoveredPlan) {
  auto ex = testing_util::MakeRunningExample();
  RunGenerator gen(&ex.spec);
  RunGenOptions opt;
  opt.target_vertices = 300;
  opt.seed = 11;
  auto run = gen.Generate(opt);
  ASSERT_TRUE(run.ok());
  auto rec = ConstructPlan(ex.spec, run->run);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  // Same node statistics...
  EXPECT_EQ(rec->plan.num_nodes(), run->plan.num_nodes());
  EXPECT_EQ(rec->plan.num_plus_nodes(), run->plan.num_plus_nodes());
  EXPECT_EQ(rec->plan.num_nonempty_plus(), run->plan.num_nonempty_plus());
  // ...and identical per-vertex context classes: two vertices share a
  // generated context iff they share a recovered context.
  const VertexId n = run->run.num_vertices();
  std::unordered_map<PlanNodeId, PlanNodeId> gen_to_rec;
  for (VertexId v = 0; v < n; ++v) {
    PlanNodeId g = run->plan.ContextOf(v);
    PlanNodeId r = rec->plan.ContextOf(v);
    auto [it, inserted] = gen_to_rec.emplace(g, r);
    EXPECT_EQ(it->second, r) << "vertex " << v;
  }
}

TEST(RunGeneratorTest, DeterministicForSameSeed) {
  auto ex = testing_util::MakeRunningExample();
  RunGenerator gen(&ex.spec);
  RunGenOptions opt;
  opt.target_vertices = 500;
  opt.seed = 7;
  auto a = gen.Generate(opt);
  auto b = gen.Generate(opt);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->run.graph().Edges(), b->run.graph().Edges());
}

TEST(RunGeneratorTest, ShuffleTogglePreservesStructure) {
  auto ex = testing_util::MakeRunningExample();
  RunGenerator gen(&ex.spec);
  RunGenOptions opt;
  opt.target_vertices = 200;
  opt.seed = 13;
  opt.shuffle_vertex_ids = false;
  auto plain = gen.Generate(opt);
  opt.shuffle_vertex_ids = true;
  auto shuffled = gen.Generate(opt);
  ASSERT_TRUE(plain.ok() && shuffled.ok());
  EXPECT_EQ(plain->run.num_vertices(), shuffled->run.num_vertices());
  EXPECT_EQ(plain->run.num_edges(), shuffled->run.num_edges());
  // Both conform.
  EXPECT_TRUE(ConstructPlan(ex.spec, plain->run).ok());
  EXPECT_TRUE(ConstructPlan(ex.spec, shuffled->run).ok());
}

TEST(RunGeneratorTest, SpecWithoutSubgraphsYieldsIsomorphicRuns) {
  SpecGenOptions sopt;
  sopt.num_vertices = 30;
  sopt.num_edges = 45;
  sopt.num_subgraphs = 0;
  sopt.depth = 1;
  auto spec = GenerateSpecification(sopt);
  ASSERT_TRUE(spec.ok());
  RunGenerator gen(&spec.value());
  RunGenOptions opt;
  opt.target_vertices = 1000;  // unreachable: no forks/loops to replicate
  auto run = gen.Generate(opt);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->run.num_vertices(), 30u);
}

TEST(RunGeneratorTest, GenerateManyMatchesSequentialGenerate) {
  auto ex = testing_util::MakeRunningExample();
  RunGenerator gen(&ex.spec);
  RunGenOptions opt;
  opt.target_vertices = 120;
  opt.seed = 40;

  auto many = gen.GenerateMany(opt, 4, /*num_threads=*/3);
  ASSERT_TRUE(many.ok()) << many.status().ToString();
  ASSERT_EQ(many->size(), 4u);
  for (size_t i = 0; i < many->size(); ++i) {
    // GenerateMany(opt, n) is defined as Generate at seeds opt.seed + i, in
    // order, independent of the worker count.
    RunGenOptions per_run = opt;
    per_run.seed = opt.seed + i;
    auto reference = gen.Generate(per_run);
    ASSERT_TRUE(reference.ok());
    EXPECT_EQ((*many)[i].run.num_vertices(),
              reference->run.num_vertices());
    EXPECT_EQ((*many)[i].run.num_edges(), reference->run.num_edges());
    EXPECT_EQ((*many)[i].origin, reference->origin);
    EXPECT_TRUE((*many)[i].plan.Validate((*many)[i].run.num_edges()).ok());
  }

  // Thread count does not change the batch (0 = hardware default).
  auto serial = gen.GenerateMany(opt, 4, /*num_threads=*/1);
  ASSERT_TRUE(serial.ok());
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ((*many)[i].origin, (*serial)[i].origin);
  }
}

TEST(RunGeneratorTest, RunsOverGeneratedSpecsConform) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    SpecGenOptions sopt;
    sopt.num_vertices = 60;
    sopt.num_edges = 100;
    sopt.num_subgraphs = 7;
    sopt.depth = 4;
    sopt.seed = seed;
    auto spec = GenerateSpecification(sopt);
    ASSERT_TRUE(spec.ok()) << spec.status().ToString();
    RunGenerator gen(&spec.value());
    RunGenOptions opt;
    opt.target_vertices = 400;
    opt.seed = seed * 31;
    auto run = gen.Generate(opt);
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    auto rec = ConstructPlan(spec.value(), run->run);
    ASSERT_TRUE(rec.ok()) << "seed " << seed << ": "
                          << rec.status().ToString();
    EXPECT_TRUE(rec->plan.Validate(run->run.num_edges()).ok());
  }
}

}  // namespace
}  // namespace skl
