// Tests for the CSR digraph and the shared graph algorithms.
#include <gtest/gtest.h>

#include <algorithm>

#include "src/common/random.h"
#include "src/graph/algorithms.h"
#include "src/graph/digraph.h"

namespace skl {
namespace {

Digraph Diamond() {
  // 0 -> 1 -> 3, 0 -> 2 -> 3
  DigraphBuilder b(4);
  b.AddEdge(0, 1);
  b.AddEdge(0, 2);
  b.AddEdge(1, 3);
  b.AddEdge(2, 3);
  return std::move(b).Build();
}

TEST(DigraphTest, BasicTopology) {
  Digraph g = Diamond();
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.OutDegree(0), 2u);
  EXPECT_EQ(g.InDegree(0), 0u);
  EXPECT_EQ(g.InDegree(3), 2u);
  EXPECT_EQ(g.OutDegree(3), 0u);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_FALSE(g.HasEdge(1, 0));
  EXPECT_FALSE(g.HasEdge(0, 3));
}

TEST(DigraphTest, NeighborsMatchEdges) {
  Digraph g = Diamond();
  auto out0 = g.OutNeighbors(0);
  std::vector<VertexId> v(out0.begin(), out0.end());
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, (std::vector<VertexId>{1, 2}));
  auto in3 = g.InNeighbors(3);
  std::vector<VertexId> w(in3.begin(), in3.end());
  std::sort(w.begin(), w.end());
  EXPECT_EQ(w, (std::vector<VertexId>{1, 2}));
}

TEST(DigraphTest, ImplicitVertexCreation) {
  DigraphBuilder b;
  b.AddEdge(5, 2);
  Digraph g = std::move(b).Build();
  EXPECT_EQ(g.num_vertices(), 6u);
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(DigraphTest, EdgesEnumeration) {
  Digraph g = Diamond();
  auto edges = g.Edges();
  EXPECT_EQ(edges.size(), 4u);
  std::sort(edges.begin(), edges.end());
  std::vector<std::pair<VertexId, VertexId>> expected{
      {0, 1}, {0, 2}, {1, 3}, {2, 3}};
  EXPECT_EQ(edges, expected);
}

TEST(TopoSortTest, ValidOrder) {
  Digraph g = Diamond();
  auto topo = TopologicalSort(g);
  ASSERT_TRUE(topo.ok());
  std::vector<uint32_t> pos(4);
  for (uint32_t i = 0; i < 4; ++i) pos[topo.value()[i]] = i;
  for (const auto& [u, v] : g.Edges()) EXPECT_LT(pos[u], pos[v]);
}

TEST(TopoSortTest, DetectsCycle) {
  DigraphBuilder b(3);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddEdge(2, 0);
  Digraph g = std::move(b).Build();
  EXPECT_FALSE(TopologicalSort(g).ok());
  EXPECT_FALSE(IsAcyclic(g));
}

TEST(ReachabilityTest, ReflexiveAndTransitive) {
  Digraph g = Diamond();
  EXPECT_TRUE(Reaches(g, 0, 0));
  EXPECT_TRUE(Reaches(g, 0, 3));
  EXPECT_TRUE(Reaches(g, 1, 3));
  EXPECT_FALSE(Reaches(g, 1, 2));
  EXPECT_FALSE(Reaches(g, 3, 0));
  EXPECT_TRUE(ReachesDfs(g, 0, 3));
  EXPECT_FALSE(ReachesDfs(g, 2, 1));
}

TEST(ReachabilityTest, ReachableFromSet) {
  Digraph g = Diamond();
  DynamicBitset r = ReachableFrom(g, 1);
  EXPECT_TRUE(r.Test(1));
  EXPECT_TRUE(r.Test(3));
  EXPECT_FALSE(r.Test(0));
  EXPECT_FALSE(r.Test(2));
}

TEST(TransitiveClosureTest, MatchesPairwiseBfs) {
  Rng rng(123);
  for (int trial = 0; trial < 10; ++trial) {
    // Random DAG: edges only from lower to higher ids.
    const VertexId n = 30;
    DigraphBuilder b(n);
    for (VertexId u = 0; u < n; ++u) {
      for (VertexId v = u + 1; v < n; ++v) {
        if (rng.NextBool(0.12)) b.AddEdge(u, v);
      }
    }
    Digraph g = std::move(b).Build();
    auto closure = TransitiveClosure(g);
    for (VertexId u = 0; u < n; ++u) {
      for (VertexId v = 0; v < n; ++v) {
        EXPECT_EQ(closure[u].Test(v), Reaches(g, u, v))
            << "trial " << trial << " pair " << u << "->" << v;
      }
    }
  }
}

TEST(SourcesSinksTest, Diamond) {
  Digraph g = Diamond();
  EXPECT_EQ(Sources(g), std::vector<VertexId>{0});
  EXPECT_EQ(Sinks(g), std::vector<VertexId>{3});
}

TEST(InducedConnectivityTest, Cases) {
  Digraph g = Diamond();
  std::vector<bool> all(4, true);
  EXPECT_TRUE(InducedWeaklyConnected(g, all));
  // {1, 2} are parallel branches: not connected without 0 and 3.
  std::vector<bool> mid{false, true, true, false};
  EXPECT_FALSE(InducedWeaklyConnected(g, mid));
  // Empty and singleton sets count as connected.
  std::vector<bool> none(4, false);
  EXPECT_TRUE(InducedWeaklyConnected(g, none));
  std::vector<bool> one{true, false, false, false};
  EXPECT_TRUE(InducedWeaklyConnected(g, one));
}

TEST(ParallelEdgesTest, Detection) {
  DigraphBuilder b(2);
  b.AddEdge(0, 1);
  Digraph g1 = std::move(b).Build();
  EXPECT_FALSE(HasParallelEdges(g1));
  DigraphBuilder b2(2);
  b2.AddEdge(0, 1);
  b2.AddEdge(0, 1);
  Digraph g2 = std::move(b2).Build();
  EXPECT_TRUE(HasParallelEdges(g2));
}

}  // namespace
}  // namespace skl
