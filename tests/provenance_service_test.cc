// Tests for the service-level API: multi-run registry isolation, the three
// ingestion paths (raw run, engine plan, live session), the parallel bulk
// ingestion paths (input-order publishing, fail-fast semantics, concurrent
// ingest-while-querying), export→import→query equivalence, and a threaded
// smoke test comparing concurrent answers against single-threaded ones.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <thread>
#include <utility>
#include <vector>

#include "src/common/temp_path.h"
#include "src/core/provenance_service.h"
#include "src/core/skeleton_labeler.h"
#include "src/workload/data_generator.h"
#include "src/workload/query_generator.h"
#include "src/workload/run_generator.h"
#include "src/workload/spec_generator.h"
#include "tests/test_util.h"

namespace skl {
namespace {

Specification MakeSpec() {
  return testing_util::MakeRunningExample().spec;
}

Run MakeGeneratedRun(const Specification& spec, uint32_t target,
                     uint64_t seed) {
  RunGenerator generator(&spec);
  RunGenOptions opt;
  opt.target_vertices = target;
  opt.seed = seed;
  auto gen = generator.Generate(opt);
  SKL_CHECK_MSG(gen.ok(), gen.status().ToString().c_str());
  return std::move(gen->run);
}

/// Reference answers via the low-level facade the service wraps.
std::vector<std::vector<bool>> ReferenceMatrix(const Specification& spec,
                                               const Run& run) {
  SkeletonLabeler labeler(&spec, SpecSchemeKind::kTcm);
  SKL_CHECK(labeler.Init().ok());
  auto labeling = labeler.LabelRun(run);
  SKL_CHECK_MSG(labeling.ok(), labeling.status().ToString().c_str());
  std::vector<std::vector<bool>> m(run.num_vertices());
  for (VertexId u = 0; u < run.num_vertices(); ++u) {
    m[u].resize(run.num_vertices());
    for (VertexId v = 0; v < run.num_vertices(); ++v) {
      m[u][v] = labeling->Reaches(u, v);
    }
  }
  return m;
}

TEST(ProvenanceServiceTest, FigureThreeAnswers) {
  auto ex = testing_util::MakeRunningExample();
  auto service = ProvenanceService::Create(std::move(ex.spec),
                                           SpecSchemeKind::kTcm);
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  auto id = service->AddRun(ex.run);
  ASSERT_TRUE(id.ok()) << id.status().ToString();

  // The paper's introduction queries.
  EXPECT_FALSE(*service->Reaches(*id, ex.rv("b1"), ex.rv("c3")));
  EXPECT_TRUE(*service->Reaches(*id, ex.rv("c1"), ex.rv("b2")));
  EXPECT_TRUE(*service->Reaches(*id, ex.rv("b1"), ex.rv("c1")));
  EXPECT_FALSE(*service->Reaches(*id, ex.rv("c1"), ex.rv("d1")));
  EXPECT_TRUE(*service->Reaches(*id, ex.rv("f1"), ex.rv("f2")));
  EXPECT_FALSE(*service->Reaches(*id, ex.rv("f2"), ex.rv("f3")));

  // Batch variant answers pairwise-identically.
  std::vector<VertexPair> pairs = {{ex.rv("b1"), ex.rv("c3")},
                                   {ex.rv("c1"), ex.rv("b2")},
                                   {ex.rv("f1"), ex.rv("f2")}};
  auto batch = service->ReachesBatch(*id, pairs);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch->size(), 3u);
  EXPECT_FALSE((*batch)[0]);
  EXPECT_TRUE((*batch)[1]);
  EXPECT_TRUE((*batch)[2]);
}

TEST(ProvenanceServiceTest, MultiRunRegistryIsolation) {
  Specification spec = MakeSpec();
  std::vector<::skl::Run> runs;
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    runs.push_back(MakeGeneratedRun(spec, 40 + 20 * seed, seed));
  }
  std::vector<std::vector<std::vector<bool>>> expected;
  for (const ::skl::Run& r : runs) expected.push_back(ReferenceMatrix(spec, r));

  auto service =
      ProvenanceService::Create(std::move(spec), SpecSchemeKind::kTcm);
  ASSERT_TRUE(service.ok());
  std::vector<RunId> ids;
  for (const ::skl::Run& r : runs) {
    auto id = service->AddRun(r);
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    ids.push_back(*id);
  }
  ASSERT_EQ(service->num_runs(), runs.size());
  EXPECT_EQ(service->ListRuns().size(), runs.size());

  // Every run answers exactly its own reference matrix — sizes differ, so a
  // registry mix-up would be caught immediately.
  for (size_t i = 0; i < runs.size(); ++i) {
    auto stats = service->Stats(ids[i]);
    ASSERT_TRUE(stats.ok());
    ASSERT_EQ(stats->num_vertices, runs[i].num_vertices());
    for (VertexId u = 0; u < runs[i].num_vertices(); ++u) {
      for (VertexId v = 0; v < runs[i].num_vertices(); ++v) {
        ASSERT_EQ(*service->Reaches(ids[i], u, v), expected[i][u][v])
            << "run " << i << " " << u << "->" << v;
      }
    }
  }

  // Removing one run does not disturb the others; its handle goes stale.
  ASSERT_TRUE(service->RemoveRun(ids[1]).ok());
  EXPECT_EQ(service->num_runs(), runs.size() - 1);
  EXPECT_FALSE(service->Contains(ids[1]));
  EXPECT_FALSE(service->Reaches(ids[1], 0, 0).ok());
  EXPECT_FALSE(service->RemoveRun(ids[1]).ok());  // double remove
  EXPECT_TRUE(*service->Reaches(ids[0], 0, 0));  // reflexive, still there
  auto id_again = service->AddRun(runs[1]);
  ASSERT_TRUE(id_again.ok());
  EXPECT_NE(*id_again, ids[1]) << "RunIds must never be reused";
}

TEST(ProvenanceServiceTest, RemoveRunStaleHandlesReturnNotFound) {
  // RunId's header promises: handles are never reused, and a stale handle
  // (after RemoveRun) or a RunId::FromValue of an unknown value fails with
  // NotFound — assert the code, not just !ok().
  auto service = ProvenanceService::Create(MakeSpec(), SpecSchemeKind::kTcm);
  ASSERT_TRUE(service.ok());
  auto ex = testing_util::MakeRunningExample();
  auto id = service->AddRun(ex.run);
  ASSERT_TRUE(id.ok());
  const uint64_t raw = id->value();

  ASSERT_TRUE(service->RemoveRun(*id).ok());
  EXPECT_EQ(service->RemoveRun(*id).code(), StatusCode::kNotFound);
  EXPECT_EQ(service->Reaches(*id, 0, 0).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(service->Stats(*id).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(service->ExportRun(*id).status().code(), StatusCode::kNotFound);

  // Reconstructing the stale handle from its numeric value changes nothing:
  // the id is gone for good, and later runs never reclaim it.
  RunId stale = RunId::FromValue(raw);
  EXPECT_EQ(service->RemoveRun(stale).code(), StatusCode::kNotFound);
  EXPECT_EQ(service->Reaches(stale, 0, 0).status().code(),
            StatusCode::kNotFound);
  auto fresh = service->AddRun(ex.run);
  ASSERT_TRUE(fresh.ok());
  EXPECT_NE(fresh->value(), raw);
  EXPECT_EQ(service->Reaches(stale, 0, 0).status().code(),
            StatusCode::kNotFound);

  // The default (invalid) handle and a never-issued value behave the same.
  EXPECT_EQ(service->RemoveRun(RunId()).code(), StatusCode::kNotFound);
  EXPECT_EQ(service->RemoveRun(RunId::FromValue(12345)).code(),
            StatusCode::kNotFound);
}

TEST(ProvenanceServiceTest, AddRunWithPlanMatchesAddRun) {
  auto ex = testing_util::MakeRunningExample();
  auto recovered = ConstructPlan(ex.spec, ex.run);
  ASSERT_TRUE(recovered.ok());
  auto service = ProvenanceService::Create(std::move(ex.spec),
                                           SpecSchemeKind::kTcm);
  ASSERT_TRUE(service.ok());
  auto a = service->AddRun(ex.run);
  auto b = service->AddRunWithPlan(ex.run, recovered->plan,
                                   recovered->origin);
  ASSERT_TRUE(a.ok() && b.ok());
  for (VertexId u = 0; u < ex.run.num_vertices(); ++u) {
    for (VertexId v = 0; v < ex.run.num_vertices(); ++v) {
      EXPECT_EQ(*service->Reaches(*a, u, v), *service->Reaches(*b, u, v));
    }
  }

  std::vector<VertexId> short_origin(ex.run.num_vertices() - 1);
  EXPECT_FALSE(
      service->AddRunWithPlan(ex.run, recovered->plan, short_origin).ok());
}

TEST(ProvenanceServiceTest, SessionSealsIntoRegistry) {
  // ingest -> [ prepare -> { evaluate } -> select ]* -> publish, as in the
  // live_monitor example; loop=1, fork=2 in declaration order.
  SpecificationBuilder b;
  VertexId ingest = b.AddModule("ingest");
  VertexId prepare = b.AddModule("prepare");
  VertexId evaluate = b.AddModule("evaluate");
  VertexId select = b.AddModule("select");
  VertexId publish = b.AddModule("publish");
  b.AddEdge(ingest, prepare).AddEdge(prepare, evaluate)
      .AddEdge(evaluate, select).AddEdge(select, publish);
  b.DeclareLoop({prepare, evaluate, select});
  b.DeclareFork({prepare, evaluate, select});
  auto spec = std::move(b).Build();
  ASSERT_TRUE(spec.ok());
  auto service = ProvenanceService::Create(std::move(spec).value(),
                                           SpecSchemeKind::kTcm);
  ASSERT_TRUE(service.ok());

  RunSession session = service->OpenSession();
  auto iv = session.ExecuteModule("ingest");
  ASSERT_TRUE(iv.ok());
  ASSERT_TRUE(session.BeginExecution(1).ok());
  std::vector<VertexId> evals;
  for (int it = 0; it < 2; ++it) {
    ASSERT_TRUE(session.BeginCopy().ok());
    ASSERT_TRUE(session.ExecuteModule("prepare").ok());
    ASSERT_TRUE(session.BeginExecution(2).ok());
    for (int f = 0; f < 2; ++f) {
      ASSERT_TRUE(session.BeginCopy().ok());
      auto e = session.ExecuteModule("evaluate");
      ASSERT_TRUE(e.ok());
      evals.push_back(*e);
      ASSERT_TRUE(session.EndCopy().ok());
    }
    ASSERT_TRUE(session.EndExecution().ok());
    ASSERT_TRUE(session.ExecuteModule("select").ok());
    ASSERT_TRUE(session.EndCopy().ok());
  }
  // Mid-run answers (O(depth) plan walk).
  EXPECT_TRUE(session.Reaches(evals[0], evals[2]));   // across iterations
  EXPECT_FALSE(session.Reaches(evals[2], evals[3]));  // parallel copies
  ASSERT_TRUE(session.EndExecution().ok());
  auto pv = session.ExecuteModule("publish");
  ASSERT_TRUE(pv.ok());

  auto id = std::move(session).Seal();
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  ASSERT_TRUE(service->Contains(*id));
  // Sealed answers agree with the mid-run ones, now in O(1).
  EXPECT_TRUE(*service->Reaches(*id, evals[0], evals[2]));
  EXPECT_FALSE(*service->Reaches(*id, evals[2], evals[3]));
  EXPECT_TRUE(*service->Reaches(*id, *iv, *pv));
}

TEST(ProvenanceServiceTest, ExportImportQueryEquivalence) {
  Specification spec = MakeSpec();
  ::skl::Run run = MakeGeneratedRun(spec, 120, 9);
  DataGenOptions dopt;
  dopt.seed = 5;
  DataCatalog catalog = GenerateDataCatalog(run, dopt);

  auto service =
      ProvenanceService::Create(std::move(spec), SpecSchemeKind::kTcm);
  ASSERT_TRUE(service.ok());
  auto original = service->AddRun(run, &catalog);
  ASSERT_TRUE(original.ok());

  auto blob = service->ExportRun(*original);
  ASSERT_TRUE(blob.ok());
  auto imported = service->ImportRun(*blob);
  ASSERT_TRUE(imported.ok()) << imported.status().ToString();
  EXPECT_NE(*imported, *original);

  auto stats = service->Stats(*imported);
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats->imported);
  EXPECT_EQ(stats->num_vertices, run.num_vertices());
  EXPECT_EQ(stats->num_items, catalog.size());

  for (VertexId u = 0; u < run.num_vertices(); ++u) {
    for (VertexId v = 0; v < run.num_vertices(); ++v) {
      ASSERT_EQ(*service->Reaches(*imported, u, v),
                *service->Reaches(*original, u, v))
          << u << "->" << v;
    }
  }
  const DataItemId items = static_cast<DataItemId>(catalog.size());
  for (DataItemId x = 0; x < items; x += 7) {
    for (DataItemId y = 0; y < items; y += 11) {
      ASSERT_EQ(*service->DependsOn(*imported, x, y),
                *service->DependsOn(*original, x, y));
    }
  }
  for (VertexId v = 0; v < run.num_vertices(); v += 13) {
    for (DataItemId x = 0; x < items; x += 17) {
      ASSERT_EQ(*service->ModuleDependsOnData(*imported, v, x),
                *service->ModuleDependsOnData(*original, v, x));
      ASSERT_EQ(*service->DataDependsOnModule(*imported, x, v),
                *service->DataDependsOnModule(*original, x, v));
    }
  }
}

TEST(ProvenanceServiceTest, ErrorPaths) {
  auto ex = testing_util::MakeRunningExample();
  auto service = ProvenanceService::Create(std::move(ex.spec),
                                           SpecSchemeKind::kTcm);
  ASSERT_TRUE(service.ok());
  auto id = service->AddRun(ex.run);
  ASSERT_TRUE(id.ok());

  // Unknown handle, invalid handle, stale handle value.
  EXPECT_FALSE(service->Reaches(RunId(), 0, 0).ok());
  EXPECT_FALSE(service->Reaches(RunId::FromValue(999), 0, 0).ok());
  EXPECT_FALSE(service->ExportRun(RunId::FromValue(999)).ok());
  EXPECT_FALSE(service->Stats(RunId::FromValue(999)).ok());

  // Vertex range checks, single and batch.
  EXPECT_FALSE(service->Reaches(*id, 0, ex.run.num_vertices()).ok());
  std::vector<VertexPair> bad = {{0, 0}, {ex.run.num_vertices(), 0}};
  EXPECT_FALSE(service->ReachesBatch(*id, bad).ok());

  // Item queries on a run without a catalog.
  EXPECT_FALSE(service->DependsOn(*id, 0, 0).ok());

  // Catalog naming a vertex the run does not have.
  DataCatalog bad_catalog;
  bad_catalog.AddItem(ex.run.num_vertices() + 3);
  EXPECT_FALSE(service->AddRun(ex.run, &bad_catalog).ok());

  // Corrupt blobs are rejected.
  EXPECT_FALSE(service->ImportRun({0x01, 0x02, 0x03}).ok());
  auto blob = service->ExportRun(*id);
  ASSERT_TRUE(blob.ok());
  std::vector<uint8_t> truncated(blob->begin(),
                                 blob->begin() + blob->size() / 2);
  EXPECT_FALSE(service->ImportRun(truncated).ok());
}

TEST(ProvenanceServiceTest, ImportRejectsForeignSpecBlob) {
  // A blob whose labels reference spec vertices beyond this service's
  // specification must be refused, not accepted and queried out of range.
  SpecGenOptions opt;
  opt.num_vertices = 60;
  opt.num_edges = 120;
  opt.num_subgraphs = 5;
  opt.depth = 3;
  opt.seed = 77;
  auto big_spec = GenerateSpecification(opt);
  ASSERT_TRUE(big_spec.ok());
  ::skl::Run big_run = MakeGeneratedRun(*big_spec, 150, 3);
  auto big_service = ProvenanceService::Create(std::move(big_spec).value(),
                                               SpecSchemeKind::kTcm);
  ASSERT_TRUE(big_service.ok());
  auto big_id = big_service->AddRun(big_run);
  ASSERT_TRUE(big_id.ok());
  auto blob = big_service->ExportRun(*big_id);
  ASSERT_TRUE(blob.ok());

  auto small_service = ProvenanceService::Create(MakeSpec(),
                                                 SpecSchemeKind::kTcm);
  ASSERT_TRUE(small_service.ok());
  EXPECT_FALSE(small_service->ImportRun(*blob).ok());
}

/// A structurally valid run whose module name is unknown to the running
/// example spec, so plan recovery (and hence bulk ingestion) fails on it.
::skl::Run MakeForeignRun() {
  RunBuilder b;
  VertexId v = b.AddVertex("no-such-module");
  VertexId w = b.AddVertex("no-such-module-either");
  b.AddEdge(v, w);
  auto run = std::move(b).Build();
  SKL_CHECK(run.ok());
  return std::move(run).value();
}

TEST(ProvenanceServiceTest, AddRunsParallelPublishesInInputOrder) {
  Specification spec = MakeSpec();
  std::vector<::skl::Run> runs;
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    // Distinct sizes so a slot mix-up is caught by Stats alone.
    runs.push_back(MakeGeneratedRun(spec, 30 + 25 * seed, seed));
  }
  std::vector<std::vector<std::vector<bool>>> expected;
  for (const ::skl::Run& r : runs) expected.push_back(ReferenceMatrix(spec, r));

  ProvenanceService::Options options;
  options.num_threads = 4;
  auto service =
      ProvenanceService::Create(std::move(spec), SpecSchemeKind::kTcm,
                                options);
  ASSERT_TRUE(service.ok());
  std::vector<Result<RunId>> ids = service->AddRunsParallel(runs);
  ASSERT_EQ(ids.size(), runs.size());
  ASSERT_EQ(service->num_runs(), runs.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    ASSERT_TRUE(ids[i].ok()) << i << ": " << ids[i].status().ToString();
    if (i > 0) {
      EXPECT_LT(ids[i - 1]->value(), ids[i]->value())
          << "ids must ascend in input order";
    }
    auto stats = service->Stats(*ids[i]);
    ASSERT_TRUE(stats.ok());
    EXPECT_EQ(stats->num_vertices, runs[i].num_vertices());
    for (VertexId u = 0; u < runs[i].num_vertices(); u += 3) {
      for (VertexId v = 0; v < runs[i].num_vertices(); v += 5) {
        ASSERT_EQ(*service->Reaches(*ids[i], u, v), expected[i][u][v])
            << "run " << i << " " << u << "->" << v;
      }
    }
  }
}

TEST(ProvenanceServiceTest, AddRunsWithPlansParallelMatchesSerialPath) {
  Specification spec = MakeSpec();
  RunGenerator generator(&spec);
  RunGenOptions opt;
  opt.target_vertices = 70;
  opt.seed = 31;
  auto generated = generator.GenerateMany(opt, 5, /*num_threads=*/2);
  ASSERT_TRUE(generated.ok()) << generated.status().ToString();
  ASSERT_EQ(generated->size(), 5u);

  auto service =
      ProvenanceService::Create(std::move(spec), SpecSchemeKind::kTcm,
                                {.num_threads = 3});
  ASSERT_TRUE(service.ok());
  std::vector<PlannedRun> planned;
  for (const GeneratedRun& g : *generated) {
    planned.push_back({&g.run, &g.plan, g.origin});
  }
  std::vector<Result<RunId>> bulk = service->AddRunsWithPlansParallel(planned);
  ASSERT_EQ(bulk.size(), planned.size());
  for (size_t i = 0; i < planned.size(); ++i) {
    ASSERT_TRUE(bulk[i].ok()) << bulk[i].status().ToString();
    auto serial = service->AddRunWithPlan((*generated)[i].run,
                                          (*generated)[i].plan,
                                          (*generated)[i].origin);
    ASSERT_TRUE(serial.ok());
    const VertexId n = (*generated)[i].run.num_vertices();
    for (VertexId u = 0; u < n; u += 3) {
      for (VertexId v = 0; v < n; v += 5) {
        ASSERT_EQ(*service->Reaches(*bulk[i], u, v),
                  *service->Reaches(*serial, u, v));
      }
    }
  }

  // Null run/plan pointers are per-entry errors, not crashes.
  std::vector<PlannedRun> bad(1);
  auto bad_results = service->AddRunsWithPlansParallel(bad);
  ASSERT_EQ(bad_results.size(), 1u);
  EXPECT_EQ(bad_results[0].status().code(), StatusCode::kInvalidArgument);
}

TEST(ProvenanceServiceTest, AddRunsParallelPartialFailureWithoutFailFast) {
  Specification spec = MakeSpec();
  std::vector<::skl::Run> runs;
  runs.push_back(MakeGeneratedRun(spec, 40, 1));
  runs.push_back(MakeForeignRun());  // fails plan recovery
  runs.push_back(MakeGeneratedRun(spec, 60, 2));

  auto service =
      ProvenanceService::Create(std::move(spec), SpecSchemeKind::kTcm,
                                {.num_threads = 2, .fail_fast = false});
  ASSERT_TRUE(service.ok());
  std::vector<Result<RunId>> ids = service->AddRunsParallel(runs);
  ASSERT_EQ(ids.size(), 3u);
  EXPECT_TRUE(ids[0].ok());
  EXPECT_FALSE(ids[1].ok());
  EXPECT_NE(ids[1].status().code(), StatusCode::kCancelled)
      << "without fail_fast the bad run keeps its own error";
  EXPECT_TRUE(ids[2].ok());
  EXPECT_EQ(service->num_runs(), 2u);
  EXPECT_TRUE(*service->Reaches(*ids[0], 0, 0));
  EXPECT_TRUE(*service->Reaches(*ids[2], 0, 0));
}

TEST(ProvenanceServiceTest, AddRunsParallelFailFastIsAllOrNothing) {
  Specification spec = MakeSpec();
  std::vector<::skl::Run> runs;
  runs.push_back(MakeGeneratedRun(spec, 40, 1));
  runs.push_back(MakeForeignRun());
  runs.push_back(MakeGeneratedRun(spec, 60, 2));

  auto service =
      ProvenanceService::Create(std::move(spec), SpecSchemeKind::kTcm,
                                {.num_threads = 2, .fail_fast = true});
  ASSERT_TRUE(service.ok());
  std::vector<Result<RunId>> ids = service->AddRunsParallel(runs);
  ASSERT_EQ(ids.size(), 3u);
  EXPECT_EQ(service->num_runs(), 0u) << "fail_fast publishes nothing";
  for (const Result<RunId>& r : ids) EXPECT_FALSE(r.ok());
  EXPECT_FALSE(ids[1].ok());
  // The failing entry keeps its own error; every other entry is Cancelled.
  EXPECT_NE(ids[1].status().code(), StatusCode::kCancelled);
  EXPECT_EQ(ids[0].status().code(), StatusCode::kCancelled);
  EXPECT_EQ(ids[2].status().code(), StatusCode::kCancelled);

  // The service is not poisoned: the same good runs ingest cleanly next try.
  std::vector<::skl::Run> good;
  good.push_back(std::move(runs[0]));
  good.push_back(std::move(runs[2]));
  std::vector<Result<RunId>> retry = service->AddRunsParallel(good);
  ASSERT_EQ(retry.size(), 2u);
  EXPECT_TRUE(retry[0].ok() && retry[1].ok());
  EXPECT_EQ(service->num_runs(), 2u);
}

TEST(ProvenanceServiceTest, AddRunsParallelCatalogMismatchAndEmptyBatch) {
  Specification spec = MakeSpec();
  std::vector<::skl::Run> runs;
  runs.push_back(MakeGeneratedRun(spec, 40, 1));
  auto service =
      ProvenanceService::Create(std::move(spec), SpecSchemeKind::kTcm);
  ASSERT_TRUE(service.ok());

  const DataCatalog* catalogs[2] = {nullptr, nullptr};
  std::vector<Result<RunId>> mismatched =
      service->AddRunsParallel(runs, catalogs);
  ASSERT_EQ(mismatched.size(), 1u);
  EXPECT_EQ(mismatched[0].status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(service->num_runs(), 0u);

  EXPECT_TRUE(service->AddRunsParallel({}).empty());
}

TEST(ProvenanceServiceTest, ServiceStatsResetAcrossLoadSnapshot) {
  // The pinned-down semantics (docs/NETWORK.md): ServiceStats counters
  // describe the served lifetime of one registry and are NOT part of a
  // snapshot — a LoadSnapshot-restored service starts every cumulative
  // counter at zero, while the point-in-time num_runs reflects the
  // restored registry.
  Specification spec = MakeSpec();
  ::skl::Run run = MakeGeneratedRun(spec, 60, 3);
  auto service =
      ProvenanceService::Create(std::move(spec), SpecSchemeKind::kTcm);
  ASSERT_TRUE(service.ok());
  auto id = service->AddRun(run);
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(service->Reaches(*id, 0, 1).ok());
  ASSERT_TRUE(service->Reaches(*id, 0, 1).ok());

  const std::string path =
      PidQualifiedTempPath("skl_service_stats_reset", ".skls");
  ASSERT_TRUE(service->SaveSnapshot(path).ok());

  const ServiceStats before = service->service_stats();
  EXPECT_EQ(before.runs_ingested, 1u);
  EXPECT_EQ(before.reaches_queries, 2u);
  EXPECT_EQ(before.snapshot_saves, 1u);
  EXPECT_EQ(before.cache_hits + before.cache_misses, 2u);

  auto restored = ProvenanceService::LoadSnapshot(path);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  const ServiceStats after = restored->service_stats();
  EXPECT_EQ(after.num_runs, 1u) << "the registry itself is restored";
  EXPECT_EQ(after.reaches_queries, 0u);
  EXPECT_EQ(after.depends_on_queries, 0u);
  EXPECT_EQ(after.module_data_queries, 0u);
  EXPECT_EQ(after.data_module_queries, 0u);
  EXPECT_EQ(after.batch_calls, 0u);
  EXPECT_EQ(after.runs_ingested, 0u);
  EXPECT_EQ(after.runs_imported, 0u);
  EXPECT_EQ(after.runs_removed, 0u);
  EXPECT_EQ(after.bulk_batches, 0u);
  EXPECT_EQ(after.snapshot_saves, 0u);
  EXPECT_EQ(after.cache_hits, 0u);
  EXPECT_EQ(after.cache_misses, 0u);

  // The restored service counts its own lifetime from here.
  ASSERT_TRUE(restored->Reaches(*id, 0, 1).ok());
  EXPECT_EQ(restored->service_stats().reaches_queries, 1u);

  std::error_code ec;
  std::filesystem::remove(path, ec);
}

TEST(ProvenanceServiceTest, ShardedRegistryAndCacheAnswerIdentically) {
  // Smoke for the Options knobs themselves: extreme shard counts (clamped)
  // and cache on/off answer identically, and repeated queries on a cached
  // service actually hit.
  Specification spec = MakeSpec();
  ::skl::Run run = MakeGeneratedRun(spec, 80, 5);
  std::vector<std::vector<bool>> reference = ReferenceMatrix(spec, run);

  for (size_t shards : {size_t{0}, size_t{1}, size_t{3}, size_t{64},
                        size_t{100000}}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    auto service = ProvenanceService::Create(
        Specification(spec), SpecSchemeKind::kTcm,
        {.num_shards = shards, .cache_slots = 64});
    ASSERT_TRUE(service.ok());
    auto id = service->AddRun(run);
    ASSERT_TRUE(id.ok());
    for (VertexId u = 0; u < run.num_vertices(); u += 3) {
      for (VertexId v = 0; v < run.num_vertices(); v += 5) {
        ASSERT_EQ(*service->Reaches(*id, u, v), reference[u][v]);
        ASSERT_EQ(*service->Reaches(*id, u, v), reference[u][v]);  // cached
      }
    }
    const ServiceStats stats = service->service_stats();
    EXPECT_GT(stats.cache_hits, 0u) << "repeat queries must hit";
  }

  // cache_slots = 0 disables caching entirely: same answers, zero lookups.
  auto uncached = ProvenanceService::Create(
      Specification(spec), SpecSchemeKind::kTcm, {.cache_slots = 0});
  ASSERT_TRUE(uncached.ok());
  auto id = uncached->AddRun(run);
  ASSERT_TRUE(id.ok());
  for (VertexId u = 0; u < run.num_vertices(); u += 3) {
    ASSERT_EQ(*uncached->Reaches(*id, u, 0), reference[u][0]);
    ASSERT_EQ(*uncached->Reaches(*id, u, 0), reference[u][0]);
  }
  const ServiceStats stats = uncached->service_stats();
  EXPECT_EQ(stats.cache_hits, 0u);
  EXPECT_EQ(stats.cache_misses, 0u);
}

TEST(ProvenanceServiceTest, ConcurrentBulkIngestWhileQuerying) {
  // TSan target: readers hammer an existing run while bulk batches land and
  // a remover retires them; answers must stay byte-identical throughout.
  Specification spec = MakeSpec();
  ::skl::Run stable_run = MakeGeneratedRun(spec, 90, 7);
  std::vector<::skl::Run> batch;
  for (uint64_t seed = 0; seed < 4; ++seed) {
    batch.push_back(MakeGeneratedRun(spec, 50 + 10 * seed, 100 + seed));
  }
  auto service =
      ProvenanceService::Create(std::move(spec), SpecSchemeKind::kTcm,
                                {.num_threads = 2});
  ASSERT_TRUE(service.ok());
  auto stable_id = service->AddRun(stable_run);
  ASSERT_TRUE(stable_id.ok());
  std::vector<VertexPair> queries =
      GenerateQueries(stable_run.num_vertices(), 2000, 17);
  auto expected = service->ReachesBatch(*stable_id, queries);
  ASSERT_TRUE(expected.ok());

  std::atomic<size_t> mismatches{0};
  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        auto answers = service->ReachesBatch(*stable_id, queries);
        if (!answers.ok() || *answers != *expected) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
          return;
        }
      }
    });
  }
  std::thread ingester([&] {
    for (int round = 0; round < 6; ++round) {
      std::vector<Result<RunId>> ids = service->AddRunsParallel(batch);
      for (const Result<RunId>& id : ids) {
        if (!id.ok() || !service->RemoveRun(*id).ok()) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
          return;
        }
      }
    }
  });
  ingester.join();
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& r : readers) r.join();
  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_EQ(service->num_runs(), 1u);
}

TEST(ProvenanceServiceTest, ThreadedReadersMatchSingleThreaded) {
  Specification spec = MakeSpec();
  constexpr size_t kRuns = 3;
  constexpr size_t kThreads = 8;
  constexpr size_t kQueriesPerThread = 4000;

  std::vector<::skl::Run> runs;
  for (uint64_t seed = 0; seed < kRuns; ++seed) {
    runs.push_back(MakeGeneratedRun(spec, 80 + 40 * seed, seed + 21));
  }
  auto service =
      ProvenanceService::Create(std::move(spec), SpecSchemeKind::kTcm);
  ASSERT_TRUE(service.ok());
  std::vector<RunId> ids;
  std::vector<std::vector<VertexPair>> queries;
  std::vector<std::vector<bool>> expected;
  for (size_t i = 0; i < kRuns; ++i) {
    auto id = service->AddRun(runs[i]);
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
    queries.push_back(GenerateQueries(runs[i].num_vertices(),
                                      kQueriesPerThread, 1000 + i));
    // Single-threaded reference answers through the same service.
    auto answers = service->ReachesBatch(*id, queries.back());
    ASSERT_TRUE(answers.ok());
    expected.push_back(*answers);
  }

  // N reader threads per run: half use the batch variant, half the single
  // calls; a writer thread keeps registering and removing extra runs so
  // readers run against a mutating registry.
  std::atomic<size_t> mismatches{0};
  std::atomic<bool> stop_writer{false};
  std::thread writer([&] {
    while (!stop_writer.load(std::memory_order_relaxed)) {
      auto extra = service->AddRun(runs[0]);
      if (!extra.ok() || !service->RemoveRun(*extra).ok()) {
        mismatches.fetch_add(1, std::memory_order_relaxed);
        return;
      }
    }
  });
  std::vector<std::thread> readers;
  for (size_t t = 0; t < kThreads; ++t) {
    readers.emplace_back([&, t] {
      const size_t i = t % kRuns;
      if (t % 2 == 0) {
        auto answers = service->ReachesBatch(ids[i], queries[i]);
        if (!answers.ok() || *answers != expected[i]) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
        return;
      }
      for (size_t q = 0; q < queries[i].size(); ++q) {
        auto r = service->Reaches(ids[i], queries[i][q].first,
                                  queries[i][q].second);
        if (!r.ok() || *r != expected[i][q]) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
          return;
        }
      }
    });
  }
  for (std::thread& th : readers) th.join();
  stop_writer.store(true, std::memory_order_relaxed);
  writer.join();
  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_EQ(service->num_runs(), kRuns);
}

}  // namespace
}  // namespace skl
