// End-to-end property tests: over random specifications and runs, SKL must
// agree with ground-truth graph reachability for every sampled vertex pair,
// under every skeleton scheme, both with recovered and with ground-truth
// plans; the paper's structural bounds (Lemma 4.2, Lemma 4.7) must hold.
#include <gtest/gtest.h>

#include <cmath>

#include "src/common/random.h"
#include "src/core/plan_builder.h"
#include "src/core/skeleton_labeler.h"
#include "src/graph/algorithms.h"
#include "src/workload/run_generator.h"
#include "src/workload/spec_generator.h"

namespace skl {
namespace {

struct PropertyCase {
  uint64_t spec_seed;
  uint32_t spec_vertices;
  uint32_t spec_edges;
  uint32_t subgraphs;
  uint32_t depth;
  uint32_t run_target;
  SpecSchemeKind scheme;
};

class SkeletonProperty : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(SkeletonProperty, AgreesWithGroundTruth) {
  const PropertyCase& pc = GetParam();
  SpecGenOptions sopt;
  sopt.num_vertices = pc.spec_vertices;
  sopt.num_edges = pc.spec_edges;
  sopt.num_subgraphs = pc.subgraphs;
  sopt.depth = pc.depth;
  sopt.seed = pc.spec_seed;
  auto spec = GenerateSpecification(sopt);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();

  RunGenerator gen(&spec.value());
  RunGenOptions ropt;
  ropt.target_vertices = pc.run_target;
  ropt.seed = pc.spec_seed * 1000003;
  auto run = gen.Generate(ropt);
  ASSERT_TRUE(run.ok()) << run.status().ToString();

  SkeletonLabeler labeler(&spec.value(), pc.scheme);
  ASSERT_TRUE(labeler.Init().ok());
  auto labeling = labeler.LabelRun(run->run);
  ASSERT_TRUE(labeling.ok()) << labeling.status().ToString();

  // Lemma 4.7: label length <= 3 log n_T+ + log n_G, with n_T+ <= n_R.
  const double n_r = run->run.num_vertices();
  EXPECT_LE(labeling->num_nonempty_plus(), run->run.num_vertices());
  EXPECT_LE(labeling->context_bits(),
            3 * (std::floor(std::log2(std::max(2.0, n_r))) + 1));

  const Digraph& g = run->run.graph();
  Rng rng(pc.spec_seed * 77 + 5);
  const size_t pairs = 4000;
  for (size_t i = 0; i < pairs; ++i) {
    VertexId u = static_cast<VertexId>(rng.NextBelow(g.num_vertices()));
    VertexId v = static_cast<VertexId>(rng.NextBelow(g.num_vertices()));
    bool expected = Reaches(g, u, v);
    EXPECT_EQ(labeling->Reaches(u, v), expected)
        << u << " -> " << v << " (" << run->run.ModuleNameOf(u) << " -> "
        << run->run.ModuleNameOf(v) << ")";
    if (labeling->Reaches(u, v) != expected) break;  // one failure is enough
  }

  // Ground-truth plan path must agree with the recovered-plan path.
  auto labeling2 =
      labeler.LabelRunWithPlan(run->run, run->plan, run->origin);
  ASSERT_TRUE(labeling2.ok());
  for (size_t i = 0; i < 500; ++i) {
    VertexId u = static_cast<VertexId>(rng.NextBelow(g.num_vertices()));
    VertexId v = static_cast<VertexId>(rng.NextBelow(g.num_vertices()));
    EXPECT_EQ(labeling->Reaches(u, v), labeling2->Reaches(u, v));
  }
}

std::vector<PropertyCase> MakeCases() {
  std::vector<PropertyCase> cases;
  const SpecSchemeKind schemes[] = {SpecSchemeKind::kTcm,
                                    SpecSchemeKind::kBfs,
                                    SpecSchemeKind::kChain};
  int i = 0;
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    PropertyCase pc;
    pc.spec_seed = seed;
    pc.spec_vertices = 40 + 20 * (seed % 3);
    pc.spec_edges = pc.spec_vertices * 3 / 2;
    pc.subgraphs = 5 + (seed % 4);
    pc.depth = 3 + (seed % 2);
    pc.run_target = 200 + 300 * (seed % 3);
    pc.scheme = schemes[i++ % 3];
    cases.push_back(pc);
  }
  // A couple of stress shapes: deep nesting and fork-only / loop-only specs.
  cases.push_back(PropertyCase{101, 60, 90, 12, 6, 800,
                               SpecSchemeKind::kTcm});
  cases.push_back(PropertyCase{102, 30, 40, 4, 4, 1500,
                               SpecSchemeKind::kTcm});
  cases.push_back(PropertyCase{103, 80, 200, 9, 4, 600,
                               SpecSchemeKind::kTreeCover});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(RandomWorkloads, SkeletonProperty,
                         ::testing::ValuesIn(MakeCases()),
                         [](const auto& info) {
                           return "case" + std::to_string(info.index);
                         });

TEST(SkeletonBoundsTest, Lemma42HoldsAcrossSeeds) {
  SpecGenOptions sopt;
  sopt.num_vertices = 50;
  sopt.num_edges = 80;
  sopt.num_subgraphs = 8;
  sopt.depth = 4;
  sopt.seed = 9;
  auto spec = GenerateSpecification(sopt);
  ASSERT_TRUE(spec.ok());
  RunGenerator gen(&spec.value());
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    RunGenOptions ropt;
    ropt.mean_replication = 3.0;
    ropt.seed = seed;
    auto run = gen.Generate(ropt);
    ASSERT_TRUE(run.ok());
    auto rec = ConstructPlan(spec.value(), run->run);
    ASSERT_TRUE(rec.ok());
    EXPECT_LE(rec->plan.num_nodes(), 4 * run->run.num_edges());
  }
}

TEST(SkeletonBoundsTest, FigureShapesAllForksAllLoops) {
  for (double fork_fraction : {0.0, 1.0}) {
    SpecGenOptions sopt;
    sopt.num_vertices = 40;
    sopt.num_edges = 60;
    sopt.num_subgraphs = 6;
    sopt.depth = 3;
    sopt.fork_fraction = fork_fraction;
    sopt.seed = 21;
    auto spec = GenerateSpecification(sopt);
    ASSERT_TRUE(spec.ok());
    RunGenerator gen(&spec.value());
    RunGenOptions ropt;
    ropt.target_vertices = 500;
    ropt.seed = 22;
    auto run = gen.Generate(ropt);
    ASSERT_TRUE(run.ok());
    SkeletonLabeler labeler(&spec.value(), SpecSchemeKind::kTcm);
    ASSERT_TRUE(labeler.Init().ok());
    auto labeling = labeler.LabelRun(run->run);
    ASSERT_TRUE(labeling.ok()) << labeling.status().ToString();
    const Digraph& g = run->run.graph();
    Rng rng(33);
    for (int i = 0; i < 2000; ++i) {
      VertexId u = static_cast<VertexId>(rng.NextBelow(g.num_vertices()));
      VertexId v = static_cast<VertexId>(rng.NextBelow(g.num_vertices()));
      ASSERT_EQ(labeling->Reaches(u, v), Reaches(g, u, v))
          << "fork_fraction " << fork_fraction;
    }
  }
}

}  // namespace
}  // namespace skl
