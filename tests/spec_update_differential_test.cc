// Differential conformance suite for the dynamic spec-update subsystem
// (docs/UPDATES.md): an incrementally-relabeling service and a twin that
// rebuilds its scheme from scratch on every delta
// (Options::full_rebuild_on_delta) replay one seeded, randomized op
// sequence — ApplySpecDelta (valid appends, valid removals, and a steady
// diet of structurally invalid edits) interleaved with AddRun / RemoveRun /
// ImportRun and every query kind, including at_epoch pins on the run's own
// epoch, the default 0, and deliberately wrong epochs — in lockstep, and
// every answer (value AND status code), every allocated id, every RunStats
// field and the spec epoch itself must be bit-identical between the two.
// Runs across all 7 schemes; a failure prints the scheme, seed, op index
// and the recent op trace so the exact sequence replays from the seed
// (SKL_TEST_SEED overrides; SKL_TEST_ITER_SCALE multiplies for the CI
// long-fuzz leg).
//
// Plus: a byte-exhaustive encoding fuzz over all four delta kinds (every
// strict prefix must fail, trailing garbage must fail, the full blob must
// round-trip), a replica fed *only* op-log entries — including kSpecDelta —
// that must converge to the primary's epoch state (both via ApplyLogOp and
// via RecoverPrimary from the log file), and a readers-during-delta phase
// that TSan watches for epoch-publication races.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <deque>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/common/random.h"
#include "src/core/provenance_service.h"
#include "src/io/workflow_xml.h"
#include "src/replication/oplog.h"
#include "src/replication/replicator.h"
#include "src/workflow/spec_delta.h"
#include "src/workload/data_generator.h"
#include "src/workload/run_generator.h"
#include "tests/test_util.h"

namespace skl {
namespace {

/// A tree-shaped specification for the interval scheme (which rejects spec
/// graphs with undirected cycles); same shape as query_cache_test.cc uses.
Specification MakeTreeSpec() {
  SpecificationBuilder builder;
  VertexId a = builder.AddModule("a");
  VertexId b = builder.AddModule("b");
  VertexId c = builder.AddModule("c");
  VertexId d = builder.AddModule("d");
  builder.AddEdge(a, b).AddEdge(b, c).AddEdge(c, d);
  builder.DeclareLoop({b, c});
  auto spec = std::move(builder).Build();
  SKL_CHECK_MSG(spec.ok(), spec.status().ToString().c_str());
  return std::move(spec).value();
}

Specification MakeSpecFor(SpecSchemeKind kind) {
  return kind == SpecSchemeKind::kInterval
             ? MakeTreeSpec()
             : testing_util::MakeRunningExample().spec;
}

/// The name of the head spec's unique sink (the only vertex with no
/// out-edges) — the anchor of the always-valid "append a module after the
/// sink" delta, which works on every spec shape including the interval
/// scheme's tree (a chain stays a chain).
std::string SinkModuleName(const Specification& spec) {
  const Digraph& g = spec.graph();
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (g.OutNeighbors(v).empty()) return spec.ModuleName(v);
  }
  SKL_CHECK_MSG(false, "specification has no sink");
  return "";
}

/// Replays one randomized op sequence against an incrementally-relabeling
/// service and its rebuild-from-scratch twin, asserting bit-identical
/// behavior throughout.
class SpecUpdateDifferentialTester {
 public:
  SpecUpdateDifferentialTester(SpecSchemeKind kind, uint64_t seed,
                               size_t num_shards)
      : kind_(kind), seed_(seed), rng_(seed) {
    ProvenanceService::Options incr_options;
    incr_options.num_shards = num_shards;
    auto incr =
        ProvenanceService::Create(MakeSpecFor(kind), kind, incr_options);
    SKL_CHECK_MSG(incr.ok(), incr.status().ToString().c_str());
    incr_ = std::make_unique<ProvenanceService>(std::move(incr).value());

    ProvenanceService::Options full_options;
    full_options.num_shards = 1;
    full_options.full_rebuild_on_delta = true;  // the reference
    auto full =
        ProvenanceService::Create(MakeSpecFor(kind), kind, full_options);
    SKL_CHECK_MSG(full.ok(), full.status().ToString().c_str());
    full_ = std::make_unique<ProvenanceService>(std::move(full).value());

    RebuildPool();
  }

  void Run(size_t num_ops) {
    for (op_index_ = 0; op_index_ < num_ops; ++op_index_) {
      Step();
      if (::testing::Test::HasFatalFailure()) return;
    }
    FinalSweep();
    if (::testing::Test::HasFatalFailure()) return;
    // The replay must actually have moved the epoch and rejected edits, or
    // the equivalence above proved nothing about the update subsystem.
    EXPECT_GT(applied_deltas_, 0u) << Context("no delta ever applied");
    EXPECT_GT(rejected_deltas_, 0u) << Context("no delta ever rejected");
    EXPECT_GT(incr_->spec_epoch(), 1u) << Context("epoch never advanced");
  }

 private:
  /// Everything a human needs to replay a failure: seed, scheme, op index
  /// and the trailing window of executed ops.
  std::string Context(const std::string& op) const {
    std::string out = "scheme=" + std::string(SpecSchemeKindName(kind_)) +
                      " seed=" + std::to_string(seed_) + " op#" +
                      std::to_string(op_index_) + ": " + op +
                      "\nrecent ops (oldest first):";
    for (const std::string& t : trace_) out += "\n  " + t;
    return out;
  }

  void Record(const std::string& op) {
    trace_.push_back("op#" + std::to_string(op_index_) + " " + op);
    if (trace_.size() > 40) trace_.pop_front();
  }

  /// Regenerates the ingestion pool from the *current* head spec (run
  /// shapes must conform to the epoch they will be ingested under). Export
  /// blobs come from a scratch service sharing the head spec so ImportRun
  /// stays exercised at every epoch.
  void RebuildPool() {
    pool_.clear();
    catalogs_.clear();
    blobs_.clear();
    Specification head = incr_->spec();
    RunGenerator generator(&incr_->spec());
    for (uint64_t i = 0; i < 4; ++i) {
      RunGenOptions opt;
      opt.target_vertices = 24 + 8 * static_cast<uint32_t>(i);
      opt.seed = seed_ * 131 + pool_generation_ * 977 + i;
      auto gen = generator.Generate(opt);
      SKL_CHECK_MSG(gen.ok(), gen.status().ToString().c_str());
      pool_.push_back(std::move(gen->run));
      DataGenOptions dopt;
      dopt.seed = seed_ * 17 + pool_generation_ * 31 + i;
      catalogs_.push_back(GenerateDataCatalog(pool_.back(), dopt));
    }
    auto scratch = ProvenanceService::Create(std::move(head), kind_);
    SKL_CHECK_MSG(scratch.ok(), scratch.status().ToString().c_str());
    for (size_t i = 0; i < pool_.size(); ++i) {
      auto id = scratch->AddRun(pool_[i], &catalogs_[i]);
      SKL_CHECK_MSG(id.ok(), id.status().ToString().c_str());
      auto blob = scratch->ExportRun(*id);
      SKL_CHECK_MSG(blob.ok(), blob.status().ToString().c_str());
      blobs_.push_back(std::move(blob).value());
    }
    ++pool_generation_;
  }

  /// A random delta proposal: a mix of guaranteed-valid edits (append a
  /// fresh module after the current sink; graft a parallel source->x->sink
  /// branch, which stays removable later) and likely-invalid ones (remove
  /// a sink or interior module, edits naming unknown modules, duplicate
  /// edges).
  SpecDelta ProposeDelta() {
    const uint64_t r = rng_.NextBelow(100);
    SpecDelta delta;
    if (r < 25 || appended_.empty()) {
      // Always valid: the old sink gains one out-edge to a fresh module.
      delta.kind = SpecDelta::Kind::kAddModule;
      delta.module = "dyn" + std::to_string(next_module_++);
      delta.from = {SinkModuleName(incr_->spec())};
      return delta;
    }
    if (r < 40) {
      // Parallel branch source -> x -> sink: valid on series-parallel
      // shapes, rejected by the interval scheme's tree requirement —
      // either way both twins must agree.
      const Digraph& g = incr_->spec().graph();
      std::string source;
      for (VertexId v = 0; v < g.num_vertices(); ++v) {
        if (g.InNeighbors(v).empty()) {
          source = incr_->spec().ModuleName(v);
          break;
        }
      }
      delta.kind = SpecDelta::Kind::kAddModule;
      delta.module = "par" + std::to_string(next_module_++);
      delta.from = {source};
      delta.to = {SinkModuleName(incr_->spec())};
      return delta;
    }
    if (r < 60) {
      // Removing a parallel branch succeeds when no head-epoch run is
      // live; removing a sink-appended or interior module is a structural
      // rejection — all three paths are wanted.
      delta.kind = SpecDelta::Kind::kRemoveModule;
      delta.module = appended_[rng_.NextBelow(appended_.size())];
      return delta;
    }
    if (r < 75) {
      // Unknown-name probes: must be descriptive NotFound on both twins.
      delta.kind = rng_.NextBelow(2) == 0 ? SpecDelta::Kind::kRemoveModule
                                          : SpecDelta::Kind::kAddEdge;
      if (delta.kind == SpecDelta::Kind::kRemoveModule) {
        delta.module = "ghost" + std::to_string(rng_.NextBelow(4));
      } else {
        delta.edge_from = "ghost" + std::to_string(rng_.NextBelow(4));
        delta.edge_to = SinkModuleName(incr_->spec());
      }
      return delta;
    }
    if (r < 88) {
      // Duplicate edge (sink chain edge already exists) — rejected.
      delta.kind = SpecDelta::Kind::kAddEdge;
      delta.edge_from = appended_.empty()
                            ? SinkModuleName(incr_->spec())
                            : appended_.back();
      delta.edge_to = delta.edge_from;  // self-edge: always invalid
      return delta;
    }
    // Remove a structural edge of the base spec: usually breaks the flow
    // network or touches a declared fork/loop — a rejection either way on
    // both twins; occasionally legal, which is fine too.
    delta.kind = SpecDelta::Kind::kRemoveEdge;
    const Digraph& g = incr_->spec().graph();
    const VertexId v = static_cast<VertexId>(rng_.NextBelow(
        g.num_vertices()));
    delta.edge_from = incr_->spec().ModuleName(v);
    const auto& out = g.OutNeighbors(v);
    delta.edge_to = out.empty()
                        ? delta.edge_from
                        : incr_->spec().ModuleName(
                              out[rng_.NextBelow(out.size())]);
    return delta;
  }

  void ExpectSameBool(const Result<bool>& a, const Result<bool>& b,
                      const std::string& op) {
    ASSERT_EQ(a.ok(), b.ok())
        << Context(op) << "\nincremental: "
        << (a.ok() ? "ok" : a.status().ToString()) << "\nfull-rebuild: "
        << (b.ok() ? "ok" : b.status().ToString());
    if (a.ok()) {
      ASSERT_EQ(*a, *b) << Context(op);
    } else {
      ASSERT_EQ(a.status().code(), b.status().code()) << Context(op);
    }
  }

  /// Picks a run id to query: mostly live, sometimes stale or never-issued.
  uint64_t PickId() {
    const uint64_t r = rng_.NextBelow(100);
    if (r < 70 && !live_.empty()) {
      return live_[rng_.NextBelow(live_.size())];
    }
    if (r < 85 && !all_.empty()) {
      return all_[rng_.NextBelow(all_.size())];  // possibly removed by now
    }
    return 1000000 + rng_.NextBelow(5);  // never issued
  }

  /// Picks the at_epoch pin for a query: usually the default 0, sometimes
  /// the run's own epoch (must answer), sometimes a wrong or future epoch
  /// (must be kEpochMismatch on a live run — on both twins either way).
  uint64_t PickAtEpoch(uint64_t id) {
    const uint64_t r = rng_.NextBelow(100);
    if (r < 60) return 0;
    if (r < 80) {
      auto stats = full_->Stats(RunId::FromValue(id));
      if (stats.ok()) return stats->epoch;
    }
    return 1 + rng_.NextBelow(incr_->spec_epoch() + 2);
  }

  VertexId VerticesOf(uint64_t id) {
    auto stats = full_->Stats(RunId::FromValue(id));
    return stats.ok() ? stats->num_vertices : 8;
  }

  void Step() {
    const uint64_t r = rng_.NextBelow(1000);
    if (r < 50) {  // ApplySpecDelta — the subsystem under test
      const SpecDelta delta = ProposeDelta();
      Record("ApplySpecDelta(" + std::string(SpecDeltaKindName(delta.kind)) +
             " " + (delta.module.empty()
                        ? delta.edge_from + "->" + delta.edge_to
                        : delta.module) +
             ")");
      auto a = incr_->ApplySpecDelta(delta);
      auto b = full_->ApplySpecDelta(delta);
      ASSERT_EQ(a.ok(), b.ok())
          << Context("ApplySpecDelta") << "\nincremental: "
          << (a.ok() ? "ok" : a.status().ToString()) << "\nfull-rebuild: "
          << (b.ok() ? "ok" : b.status().ToString());
      if (a.ok()) {
        ASSERT_EQ(*a, *b) << Context("ApplySpecDelta: epoch diverged");
        ASSERT_EQ(incr_->spec_epoch(), full_->spec_epoch())
            << Context("spec_epoch after delta");
        ++applied_deltas_;
        // Track the appended-module stack so later removals can be
        // proposed; a successful RemoveModule pops its name wherever it is.
        if (delta.kind == SpecDelta::Kind::kAddModule) {
          appended_.push_back(delta.module);
        } else if (delta.kind == SpecDelta::Kind::kRemoveModule) {
          for (size_t i = 0; i < appended_.size(); ++i) {
            if (appended_[i] == delta.module) {
              appended_.erase(appended_.begin() + static_cast<ptrdiff_t>(i));
              break;
            }
          }
        }
        RebuildPool();  // future ingests must conform to the new head
      } else {
        ASSERT_EQ(a.status().code(), b.status().code())
            << Context("ApplySpecDelta rejection code") << "\nincremental: "
            << a.status().ToString() << "\nfull-rebuild: "
            << b.status().ToString();
        ASSERT_FALSE(a.status().message().empty())
            << Context("rejection must be descriptive");
        ++rejected_deltas_;
      }
      return;
    }
    if (r < 130) {  // AddRun at the current epoch
      const size_t i = rng_.NextBelow(pool_.size());
      const DataCatalog* catalog = (i % 2 == 1) ? &catalogs_[i] : nullptr;
      Record("AddRun(pool[" + std::to_string(i) + "]" +
             (catalog ? ", catalog" : "") + ")");
      auto a = incr_->AddRun(pool_[i], catalog);
      auto b = full_->AddRun(pool_[i], catalog);
      ASSERT_EQ(a.ok(), b.ok()) << Context("AddRun");
      ASSERT_TRUE(a.ok()) << Context("AddRun") << a.status().ToString();
      ASSERT_EQ(a->value(), b->value())
          << Context("AddRun: twins diverged on allocated id");
      live_.push_back(a->value());
      all_.push_back(a->value());
      return;
    }
    if (r < 180) {  // RemoveRun
      uint64_t id;
      if (!live_.empty() && rng_.NextBelow(10) < 9) {
        const size_t i = rng_.NextBelow(live_.size());
        id = live_[i];
        live_.erase(live_.begin() + static_cast<ptrdiff_t>(i));
      } else {
        id = 1000000 + rng_.NextBelow(5);
      }
      Record("RemoveRun(" + std::to_string(id) + ")");
      const Status a = incr_->RemoveRun(RunId::FromValue(id));
      const Status b = full_->RemoveRun(RunId::FromValue(id));
      ASSERT_EQ(a.code(), b.code()) << Context("RemoveRun");
      return;
    }
    if (r < 230) {  // ImportRun (blob regenerated per epoch)
      const size_t i = rng_.NextBelow(blobs_.size());
      Record("ImportRun(blob[" + std::to_string(i) + "])");
      auto a = incr_->ImportRun(blobs_[i]);
      auto b = full_->ImportRun(blobs_[i]);
      ASSERT_EQ(a.ok(), b.ok()) << Context("ImportRun");
      ASSERT_TRUE(a.ok()) << Context("ImportRun") << a.status().ToString();
      ASSERT_EQ(a->value(), b->value()) << Context("ImportRun id");
      live_.push_back(a->value());
      all_.push_back(a->value());
      return;
    }
    if (r < 700) {  // Reaches, with epoch pins
      const uint64_t id = PickId();
      const uint64_t at = PickAtEpoch(id);
      const VertexId n = VerticesOf(id);
      const VertexId v = static_cast<VertexId>(rng_.NextBelow(n + 2));
      const VertexId w = static_cast<VertexId>(rng_.NextBelow(n + 2));
      Record("Reaches(" + std::to_string(id) + ", " + std::to_string(v) +
             ", " + std::to_string(w) + ", at=" + std::to_string(at) + ")");
      ExpectSameBool(incr_->Reaches(RunId::FromValue(id), v, w, at),
                     full_->Reaches(RunId::FromValue(id), v, w, at),
                     "Reaches");
      return;
    }
    if (r < 800) {  // DependsOn, with epoch pins
      const uint64_t id = PickId();
      const uint64_t at = PickAtEpoch(id);
      auto stats = full_->Stats(RunId::FromValue(id));
      const size_t items = stats.ok() ? stats->num_items : 4;
      const DataItemId x = static_cast<DataItemId>(rng_.NextBelow(items + 2));
      const DataItemId y = static_cast<DataItemId>(rng_.NextBelow(items + 2));
      Record("DependsOn(" + std::to_string(id) + ", " + std::to_string(x) +
             ", " + std::to_string(y) + ", at=" + std::to_string(at) + ")");
      ExpectSameBool(incr_->DependsOn(RunId::FromValue(id), x, y, at),
                     full_->DependsOn(RunId::FromValue(id), x, y, at),
                     "DependsOn");
      return;
    }
    if (r < 880) {  // the two mixed module/data directions, with pins
      const uint64_t id = PickId();
      const uint64_t at = PickAtEpoch(id);
      auto stats = full_->Stats(RunId::FromValue(id));
      const size_t items = stats.ok() ? stats->num_items : 4;
      const VertexId n = VerticesOf(id);
      const VertexId v = static_cast<VertexId>(rng_.NextBelow(n + 2));
      const DataItemId x = static_cast<DataItemId>(rng_.NextBelow(items + 2));
      if (r % 2 == 0) {
        Record("ModuleDependsOnData(" + std::to_string(id) + ", " +
               std::to_string(v) + ", " + std::to_string(x) +
               ", at=" + std::to_string(at) + ")");
        ExpectSameBool(
            incr_->ModuleDependsOnData(RunId::FromValue(id), v, x, at),
            full_->ModuleDependsOnData(RunId::FromValue(id), v, x, at),
            "ModuleDependsOnData");
      } else {
        Record("DataDependsOnModule(" + std::to_string(id) + ", " +
               std::to_string(x) + ", " + std::to_string(v) +
               ", at=" + std::to_string(at) + ")");
        ExpectSameBool(
            incr_->DataDependsOnModule(RunId::FromValue(id), x, v, at),
            full_->DataDependsOnModule(RunId::FromValue(id), x, v, at),
            "DataDependsOnModule");
      }
      return;
    }
    if (r < 950) {  // ReachesBatch over a mixed window, with pins
      const uint64_t id = PickId();
      const uint64_t at = PickAtEpoch(id);
      const VertexId n = VerticesOf(id);
      std::vector<VertexPair> pairs;
      for (int i = 0; i < 8; ++i) {
        pairs.push_back({static_cast<VertexId>(rng_.NextBelow(n)),
                         static_cast<VertexId>(rng_.NextBelow(n))});
      }
      Record("ReachesBatch(" + std::to_string(id) +
             ", 8 pairs, at=" + std::to_string(at) + ")");
      auto a = incr_->ReachesBatch(RunId::FromValue(id), pairs, at);
      auto b = full_->ReachesBatch(RunId::FromValue(id), pairs, at);
      ASSERT_EQ(a.ok(), b.ok()) << Context("ReachesBatch");
      if (a.ok()) {
        ASSERT_EQ(*a, *b) << Context("ReachesBatch");
      } else {
        ASSERT_EQ(a.status().code(), b.status().code())
            << Context("ReachesBatch");
      }
      return;
    }
    // RunStats must agree field for field (epoch, label geometry, counts):
    // the incremental relabel may not perturb a single stored bit-width.
    const uint64_t id = PickId();
    Record("Stats(" + std::to_string(id) + ")");
    auto a = incr_->Stats(RunId::FromValue(id));
    auto b = full_->Stats(RunId::FromValue(id));
    ASSERT_EQ(a.ok(), b.ok()) << Context("Stats");
    if (!a.ok()) {
      ASSERT_EQ(a.status().code(), b.status().code()) << Context("Stats");
      return;
    }
    ASSERT_EQ(a->epoch, b->epoch) << Context("Stats.epoch");
    ASSERT_EQ(a->num_vertices, b->num_vertices) << Context("Stats.vertices");
    ASSERT_EQ(a->num_items, b->num_items) << Context("Stats.items");
    ASSERT_EQ(a->label_bits, b->label_bits) << Context("Stats.label_bits");
    ASSERT_EQ(a->context_bits, b->context_bits)
        << Context("Stats.context_bits");
    ASSERT_EQ(a->origin_bits, b->origin_bits) << Context("Stats.origin_bits");
    ASSERT_EQ(a->imported, b->imported) << Context("Stats.imported");
  }

  /// Every live run, every query kind, pinned to its own epoch and to the
  /// default — the closing bit-identity audit after the randomized phase.
  void FinalSweep() {
    Record("final sweep");
    ASSERT_EQ(incr_->spec_epoch(), full_->spec_epoch())
        << Context("final spec_epoch");
    ASSERT_EQ(incr_->num_runs(), full_->num_runs()) << Context("num_runs");
    const ServiceStats sa = incr_->service_stats();
    const ServiceStats sb = full_->service_stats();
    EXPECT_EQ(sa.spec_epoch, sb.spec_epoch) << Context("stats spec_epoch");
    EXPECT_EQ(sa.num_runs, sb.num_runs) << Context("stats num_runs");
    EXPECT_EQ(sa.runs_ingested, sb.runs_ingested)
        << Context("stats runs_ingested");
    EXPECT_EQ(sa.runs_removed, sb.runs_removed)
        << Context("stats runs_removed");
    EXPECT_EQ(sa.runs_imported, sb.runs_imported)
        << Context("stats runs_imported");
    for (uint64_t id : live_) {
      auto stats = full_->Stats(RunId::FromValue(id));
      ASSERT_TRUE(stats.ok()) << Context("final Stats(" + std::to_string(id) +
                                         ")");
      const VertexId n = stats->num_vertices;
      for (uint64_t at : {uint64_t{0}, stats->epoch}) {
        for (VertexId v = 0; v < n && v < 6; ++v) {
          for (VertexId w = 0; w < n && w < 6; ++w) {
            ExpectSameBool(incr_->Reaches(RunId::FromValue(id), v, w, at),
                           full_->Reaches(RunId::FromValue(id), v, w, at),
                           "final Reaches(" + std::to_string(id) + ")");
            if (::testing::Test::HasFatalFailure()) return;
          }
        }
      }
      // A wrong pin must be an epoch mismatch on both, never an answer.
      const uint64_t wrong = stats->epoch + incr_->spec_epoch() + 1;
      auto a = incr_->Reaches(RunId::FromValue(id), 0, 0, wrong);
      auto b = full_->Reaches(RunId::FromValue(id), 0, 0, wrong);
      ASSERT_FALSE(a.ok()) << Context("wrong pin answered");
      ASSERT_EQ(a.status().code(), StatusCode::kEpochMismatch)
          << Context("wrong pin code");
      ASSERT_EQ(b.status().code(), StatusCode::kEpochMismatch)
          << Context("wrong pin code (full twin)");
    }
  }

  const SpecSchemeKind kind_;
  const uint64_t seed_;
  Rng rng_;
  std::unique_ptr<ProvenanceService> incr_;
  std::unique_ptr<ProvenanceService> full_;
  std::vector<::skl::Run> pool_;
  std::vector<DataCatalog> catalogs_;
  std::vector<std::vector<uint8_t>> blobs_;
  uint64_t pool_generation_ = 0;
  uint64_t next_module_ = 0;
  std::vector<std::string> appended_;  ///< dyn modules currently in the spec
  std::vector<uint64_t> live_;         ///< currently registered ids
  std::vector<uint64_t> all_;          ///< every id ever issued
  uint64_t applied_deltas_ = 0;
  uint64_t rejected_deltas_ = 0;
  std::deque<std::string> trace_;
  size_t op_index_ = 0;
};

TEST(SpecUpdateDifferentialTest, IncrementalBitIdenticalToRebuildAllSchemes) {
  const SpecSchemeKind kinds[] = {
      SpecSchemeKind::kTcm,       SpecSchemeKind::kBfs,
      SpecSchemeKind::kDfs,       SpecSchemeKind::kInterval,
      SpecSchemeKind::kTreeCover, SpecSchemeKind::kChain,
      SpecSchemeKind::kTwoHop};
  const size_t shard_choices[] = {1, 2, 8};
  const uint64_t base_seed =
      testing_util::TestSeed("SpecUpdateDifferentialTest", 0xEB0C);
  const uint64_t iters = 1500 * testing_util::TestIterScale();
  size_t i = 0;
  for (SpecSchemeKind kind : kinds) {
    SCOPED_TRACE(SpecSchemeKindName(kind));
    SpecUpdateDifferentialTester tester(kind, base_seed + i,
                                        shard_choices[i % 3]);
    tester.Run(iters);
    if (::testing::Test::HasFatalFailure()) return;
    ++i;
  }
}

// ------------------------------------------------- delta encoding fuzz --

/// Every strict prefix of a well-formed delta blob must fail to decode,
/// the full blob must round-trip exactly, and one trailing byte must be a
/// shape mismatch — byte-exhaustive in the oplog_test style, over all four
/// kinds including empty and multi-element neighbor lists.
TEST(SpecDeltaEncodingTest, ByteExhaustiveTruncationFuzz) {
  std::vector<SpecDelta> cases;
  {
    SpecDelta d;
    d.kind = SpecDelta::Kind::kAddModule;
    d.module = "audit";
    d.from = {"a", "b"};
    d.to = {"h"};
    cases.push_back(d);
  }
  {
    SpecDelta d;
    d.kind = SpecDelta::Kind::kAddModule;
    d.module = "tail";
    d.from = {"h"};  // to[] empty: the appended-after-sink shape
    cases.push_back(d);
  }
  {
    SpecDelta d;
    d.kind = SpecDelta::Kind::kRemoveModule;
    d.module = "audit";
    cases.push_back(d);
  }
  {
    SpecDelta d;
    d.kind = SpecDelta::Kind::kAddEdge;
    d.edge_from = "a";
    d.edge_to = "d";
    cases.push_back(d);
  }
  {
    SpecDelta d;
    d.kind = SpecDelta::Kind::kRemoveEdge;
    d.edge_from = "a";
    d.edge_to = "d";
    cases.push_back(d);
  }
  for (const SpecDelta& original : cases) {
    SCOPED_TRACE(SpecDeltaKindName(original.kind) + std::string(" ") +
                 (original.module.empty() ? original.edge_from
                                          : original.module));
    const std::vector<uint8_t> good = SerializeSpecDelta(original);
    auto decoded = DeserializeSpecDelta(good);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded->kind, original.kind);
    EXPECT_EQ(decoded->module, original.module);
    EXPECT_EQ(decoded->from, original.from);
    EXPECT_EQ(decoded->to, original.to);
    EXPECT_EQ(decoded->edge_from, original.edge_from);
    EXPECT_EQ(decoded->edge_to, original.edge_to);
    // Every strict prefix is a truncation, never a partial decode.
    for (size_t len = 0; len < good.size(); ++len) {
      auto r = DeserializeSpecDelta(
          std::vector<uint8_t>(good.begin(),
                               good.begin() + static_cast<ptrdiff_t>(len)));
      EXPECT_FALSE(r.ok()) << "prefix of " << len << " bytes decoded";
      if (r.ok()) break;
      EXPECT_EQ(r.status().code(), StatusCode::kParseError);
    }
    // Trailing garbage is a shape mismatch.
    std::vector<uint8_t> padded = good;
    padded.push_back(0x00);
    auto r = DeserializeSpecDelta(padded);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kParseError);
    // An unknown kind byte must be rejected up front.
    std::vector<uint8_t> bad_kind = good;
    bad_kind[0] = 0x7F;
    EXPECT_FALSE(DeserializeSpecDelta(bad_kind).ok());
  }
}

// --------------------------------------------- replica epoch convergence --

/// A replica fed nothing but op-log entries — including kSpecDelta — must
/// converge to the primary's exact epoch state; so must a primary rebuilt
/// from the log file alone (RecoverPrimary). Acceptance criterion of
/// ISSUE 10.
TEST(SpecUpdateReplicationTest, ReplicaConvergesFromOplogDeltasAlone) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "skl_spec_update_oplog.log")
          .string();
  std::filesystem::remove(path);
  const Specification base = testing_util::MakeRunningExample().spec;
  const std::string spec_xml = WriteSpecificationXml(base);
  const char* scheme_name = SpecSchemeKindName(SpecSchemeKind::kTcm);

  std::vector<LogOp> shipped;
  uint64_t primary_epoch = 0;
  std::vector<uint64_t> primary_runs;
  {
    auto oplog = OpLog::Open(path, spec_xml, scheme_name, {});
    ASSERT_TRUE(oplog.ok()) << oplog.status().ToString();
    auto primary = ProvenanceService::Create(base, SpecSchemeKind::kTcm);
    ASSERT_TRUE(primary.ok());
    primary->AttachOpLog(oplog->get());

    // Interleave epochs and runs: run under epoch 1, delta to 2, run under
    // 2, delta to 3, remove the first run.
    RunGenerator generator(&primary->spec());
    RunGenOptions opt;
    opt.target_vertices = 30;
    opt.seed = 7;
    auto run1 = generator.Generate(opt);
    ASSERT_TRUE(run1.ok());
    auto id1 = primary->AddRun(run1->run);
    ASSERT_TRUE(id1.ok()) << id1.status().ToString();

    SpecDelta d1;
    d1.kind = SpecDelta::Kind::kAddModule;
    d1.module = "audit";
    d1.from = {"h"};
    auto e2 = primary->ApplySpecDelta(d1);
    ASSERT_TRUE(e2.ok()) << e2.status().ToString();
    EXPECT_EQ(*e2, 2u);

    RunGenerator gen2(&primary->spec());
    RunGenOptions opt2;
    opt2.target_vertices = 30;
    opt2.seed = 8;
    auto run2 = gen2.Generate(opt2);
    ASSERT_TRUE(run2.ok());
    auto id2 = primary->AddRun(run2->run);
    ASSERT_TRUE(id2.ok()) << id2.status().ToString();
    auto s2 = primary->Stats(*id2);
    ASSERT_TRUE(s2.ok());
    EXPECT_EQ(s2->epoch, 2u);

    SpecDelta d2;
    d2.kind = SpecDelta::Kind::kAddModule;
    d2.module = "archive";
    d2.from = {"audit"};
    auto e3 = primary->ApplySpecDelta(d2);
    ASSERT_TRUE(e3.ok()) << e3.status().ToString();
    EXPECT_EQ(*e3, 3u);

    ASSERT_TRUE(primary->RemoveRun(*id1).ok());

    shipped = (*oplog)->ReadFrom(0, 1000);
    ASSERT_EQ(shipped.size(), 5u);  // add, delta, add, delta, remove
    primary_epoch = primary->spec_epoch();
    for (RunId id : primary->ListRuns()) primary_runs.push_back(id.value());
    // Primary + log close here; RecoverPrimary below reopens the file.
  }

  // Replica path: a fresh service that sees only the shipped ops.
  auto replica = ProvenanceService::Create(base, SpecSchemeKind::kTcm);
  ASSERT_TRUE(replica.ok());
  for (const LogOp& op : shipped) {
    Status applied = ApplyLogOp(*replica, op);
    ASSERT_TRUE(applied.ok())
        << "lsn " << op.lsn << ": " << applied.ToString();
  }
  EXPECT_EQ(replica->spec_epoch(), primary_epoch);
  std::vector<uint64_t> replica_runs;
  for (RunId id : replica->ListRuns()) replica_runs.push_back(id.value());
  EXPECT_EQ(replica_runs, primary_runs);
  for (uint64_t id : replica_runs) {
    auto stats = replica->Stats(RunId::FromValue(id));
    ASSERT_TRUE(stats.ok());
    // The surviving run was ingested under epoch 2 and must stay pinned
    // there through replication.
    EXPECT_EQ(stats->epoch, 2u);
    EXPECT_TRUE(
        replica->Reaches(RunId::FromValue(id), 0, 0, stats->epoch).ok());
    auto mism = replica->Reaches(RunId::FromValue(id), 0, 0,
                                 primary_epoch + 7);
    ASSERT_FALSE(mism.ok());
    EXPECT_EQ(mism.status().code(), StatusCode::kEpochMismatch);
  }

  // Crash-recovery path: the log file alone rebuilds the same state.
  auto recovered = RecoverPrimary(path);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered->service.spec_epoch(), primary_epoch);
  std::vector<uint64_t> recovered_runs;
  for (RunId id : recovered->service.ListRuns()) {
    recovered_runs.push_back(id.value());
  }
  EXPECT_EQ(recovered_runs, primary_runs);
  std::filesystem::remove(path);
}

// ------------------------------------------------ readers during deltas --

/// Reader threads hammer queries on runs frozen to epoch 1 while the main
/// thread applies a stream of deltas: TSan must see no race on the epoch
/// head publication, and every reader answer must stay correct (the runs'
/// epoch-1 labels never change).
TEST(SpecUpdateConcurrencyTest, ReadersSeeFrozenAnswersDuringDeltas) {
  auto service = ProvenanceService::Create(
      testing_util::MakeRunningExample().spec, SpecSchemeKind::kTcm);
  ASSERT_TRUE(service.ok());
  RunGenerator generator(&service->spec());
  std::vector<uint64_t> ids;
  for (uint64_t i = 0; i < 3; ++i) {
    RunGenOptions opt;
    opt.target_vertices = 40;
    opt.seed = 100 + i;
    auto gen = generator.Generate(opt);
    ASSERT_TRUE(gen.ok());
    auto id = service->AddRun(gen->run);
    ASSERT_TRUE(id.ok());
    ids.push_back(id->value());
  }
  // Ground truth computed before any delta exists.
  struct Probe {
    uint64_t id;
    VertexId v, w;
    bool answer;
  };
  std::vector<Probe> probes;
  Rng rng(42);
  for (int i = 0; i < 64; ++i) {
    const uint64_t id = ids[rng.NextBelow(ids.size())];
    auto stats = service->Stats(RunId::FromValue(id));
    ASSERT_TRUE(stats.ok());
    const VertexId v =
        static_cast<VertexId>(rng.NextBelow(stats->num_vertices));
    const VertexId w =
        static_cast<VertexId>(rng.NextBelow(stats->num_vertices));
    auto answer = service->Reaches(RunId::FromValue(id), v, w);
    ASSERT_TRUE(answer.ok());
    probes.push_back({id, v, w, *answer});
  }

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> wrong{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&service, &probes, &stop, &wrong] {
      while (!stop.load(std::memory_order_relaxed)) {
        for (const Probe& p : probes) {
          auto got = service->Reaches(RunId::FromValue(p.id), p.v, p.w);
          if (!got.ok() || *got != p.answer) {
            wrong.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (int i = 0; i < 8; ++i) {
    SpecDelta delta;
    delta.kind = SpecDelta::Kind::kAddModule;
    delta.module = "dyn" + std::to_string(i);
    delta.from = {i == 0 ? std::string("h") : "dyn" + std::to_string(i - 1)};
    auto epoch = service->ApplySpecDelta(delta);
    ASSERT_TRUE(epoch.ok()) << epoch.status().ToString();
    EXPECT_EQ(*epoch, static_cast<uint64_t>(i) + 2);
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(wrong.load(), 0u)
      << "a reader saw an epoch-1 answer change under concurrent deltas";
  EXPECT_EQ(service->spec_epoch(), 9u);
}

}  // namespace
}  // namespace skl
