// Tests for Definition 1-2 validation: acyclic flow networks, subgraph
// normalization (self-contained / atomic / complete) and well-nestedness,
// including every failure path.
#include <gtest/gtest.h>

#include "src/graph/digraph.h"
#include "src/workflow/validation.h"

namespace skl {
namespace {

Digraph Chain(VertexId n) {
  DigraphBuilder b(n);
  for (VertexId i = 0; i + 1 < n; ++i) b.AddEdge(i, i + 1);
  return std::move(b).Build();
}

TEST(FlowNetworkTest, ChainIsValid) {
  Digraph g = Chain(5);
  VertexId s, t;
  ASSERT_TRUE(CheckAcyclicFlowNetwork(g, &s, &t).ok());
  EXPECT_EQ(s, 0u);
  EXPECT_EQ(t, 4u);
}

TEST(FlowNetworkTest, RejectsEmpty) {
  Digraph g;
  VertexId s, t;
  EXPECT_EQ(CheckAcyclicFlowNetwork(g, &s, &t).code(),
            StatusCode::kInvalidSpecification);
}

TEST(FlowNetworkTest, RejectsTwoSources) {
  DigraphBuilder b(3);
  b.AddEdge(0, 2);
  b.AddEdge(1, 2);
  Digraph g = std::move(b).Build();
  VertexId s, t;
  auto st = CheckAcyclicFlowNetwork(g, &s, &t);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("source"), std::string::npos);
}

TEST(FlowNetworkTest, RejectsTwoSinks) {
  DigraphBuilder b(3);
  b.AddEdge(0, 1);
  b.AddEdge(0, 2);
  Digraph g = std::move(b).Build();
  VertexId s, t;
  auto st = CheckAcyclicFlowNetwork(g, &s, &t);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("sink"), std::string::npos);
}

TEST(FlowNetworkTest, RejectsCycle) {
  DigraphBuilder b(4);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddEdge(2, 1);
  b.AddEdge(2, 3);
  Digraph g = std::move(b).Build();
  VertexId s, t;
  EXPECT_FALSE(CheckAcyclicFlowNetwork(g, &s, &t).ok());
}

TEST(FlowNetworkTest, RejectsParallelEdges) {
  DigraphBuilder b(2);
  b.AddEdge(0, 1);
  b.AddEdge(0, 1);
  Digraph g = std::move(b).Build();
  VertexId s, t;
  auto st = CheckAcyclicFlowNetwork(g, &s, &t);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("parallel"), std::string::npos);
}

TEST(FlowNetworkTest, RejectsDisconnected) {
  // 0 -> 3 and isolated diamond 1 -> 2 cannot happen with unique terminals;
  // instead: 0->1->4, 2->3 ... that has two sources. Use a vertex not
  // reachable from the source but feeding the sink: 0->2, 1->2 is two
  // sources again. A vertex with no edges gives both: covered by terminal
  // checks. What slips past terminals: a "back alley" 0->1->3, 0->2->3 plus
  // unreachable 4? vertex 4 with no edges adds a source+sink. So the
  // reachability check is exercised with a parallel component that has its
  // own internal edge: impossible without extra terminals. The check still
  // guards Internal invariants; assert the valid case here.
  Digraph g = Chain(3);
  VertexId s, t;
  EXPECT_TRUE(CheckAcyclicFlowNetwork(g, &s, &t).ok());
}

// Fixture graph for subgraph tests:
//   0 -> 1 -> 2 -> 3 -> 4, plus 1 -> 5 -> 3 (diamond between 1 and 3),
//   and 1 -> 3 direct edge.
Digraph SubgraphFixture() {
  DigraphBuilder b(6);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddEdge(2, 3);
  b.AddEdge(3, 4);
  b.AddEdge(1, 5);
  b.AddEdge(5, 3);
  b.AddEdge(1, 3);
  return std::move(b).Build();
}

TEST(NormalizeTest, LoopIncludesAllBranches) {
  Digraph g = SubgraphFixture();
  auto r = NormalizeSubgraph(g, SubgraphKind::kLoop, {1, 2, 5, 3});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->source, 1u);
  EXPECT_EQ(r->sink, 3u);
  EXPECT_EQ(r->edges.size(), 5u);  // 1-2, 2-3, 1-5, 5-3, 1-3
  EXPECT_EQ(r->dom_set.Count(), 4u);
}

TEST(NormalizeTest, ForkDiamondIsNotAtomic) {
  Digraph g = SubgraphFixture();
  auto r = NormalizeSubgraph(g, SubgraphKind::kFork, {1, 2, 5, 3});
  // 2 and 5 are vertex-disjoint parallel branches -> not atomic.
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("atomic"), std::string::npos);
}

TEST(NormalizeTest, AtomicForkChain) {
  Digraph g = SubgraphFixture();
  auto r = NormalizeSubgraph(g, SubgraphKind::kFork, {1, 2, 3});
  // Induced: 1->2, 2->3 plus direct 1->3 dropped. V* = {2}: atomic.
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->edges.size(), 2u);
}

TEST(NormalizeTest, SingleEdgeForkRejected) {
  Digraph g = Chain(3);
  // A fork over a single edge has no edges left once the direct
  // source->sink edge is dropped (and no internal vertex either way).
  auto r = NormalizeSubgraph(g, SubgraphKind::kFork, {0, 1});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidSpecification);
}

TEST(NormalizeTest, ForkWithoutInternalVertexRejected) {
  // Parallel paths s->t and s->m->t: fork {s, m, t} is fine, but a fork
  // {s, t} over just the direct edge is not.
  DigraphBuilder b(4);
  b.AddEdge(0, 1);
  b.AddEdge(1, 3);
  b.AddEdge(1, 2);
  b.AddEdge(2, 3);
  Digraph g = std::move(b).Build();
  auto r = NormalizeSubgraph(g, SubgraphKind::kFork, {1, 3});
  ASSERT_FALSE(r.ok());
}

TEST(NormalizeTest, SingleEdgeLoopAllowed) {
  Digraph g = Chain(3);
  auto r = NormalizeSubgraph(g, SubgraphKind::kLoop, {1, 2});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->edges.size(), 1u);
}

TEST(NormalizeTest, RejectsNotSelfContained) {
  Digraph g = SubgraphFixture();
  // {1, 2}: vertex 2 is internal? no — 2 is the sink here; but {2, 3}:
  // source 2, sink 3; ok. Take {1, 2, 3} as loop: 2 internal has no outside
  // edges; but 1 has outgoing to 5 outside -> completeness violation.
  auto r = NormalizeSubgraph(g, SubgraphKind::kLoop, {1, 2, 3});
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("complete"), std::string::npos);
}

TEST(NormalizeTest, RejectsInternalLeak) {
  // 0->1->2->3, 1->4, 4->2 and declare {1, 2} with internal... build a case
  // where an internal vertex touches outside: 0->1, 1->2, 2->3, 1->4, 4->3:
  // subgraph {1, 2, 4, 3}? 4 and 2 parallel... use loop {1,2,3} with 2
  // internal and 2->4 outside.
  DigraphBuilder b(5);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddEdge(2, 3);
  b.AddEdge(2, 4);
  b.AddEdge(3, 4);
  Digraph g = std::move(b).Build();
  auto r = NormalizeSubgraph(g, SubgraphKind::kLoop, {1, 2, 3});
  ASSERT_FALSE(r.ok());
}

TEST(NormalizeTest, RejectsMultipleSources) {
  DigraphBuilder b(5);
  b.AddEdge(0, 1);
  b.AddEdge(0, 2);
  b.AddEdge(1, 3);
  b.AddEdge(2, 3);
  b.AddEdge(3, 4);
  Digraph g = std::move(b).Build();
  // {1, 2, 3}: both 1 and 2 have no induced in-edges.
  auto r = NormalizeSubgraph(g, SubgraphKind::kLoop, {1, 2, 3});
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("source"), std::string::npos);
}

TEST(NormalizeTest, RejectsTooSmall) {
  Digraph g = Chain(3);
  EXPECT_FALSE(NormalizeSubgraph(g, SubgraphKind::kLoop, {1}).ok());
  EXPECT_FALSE(NormalizeSubgraph(g, SubgraphKind::kLoop, {1, 1}).ok());
}

TEST(NormalizeTest, RejectsOutOfRange) {
  Digraph g = Chain(3);
  EXPECT_FALSE(NormalizeSubgraph(g, SubgraphKind::kLoop, {1, 99}).ok());
}

TEST(WellNestedTest, DisjointOk) {
  Digraph g = Chain(6);
  auto a = NormalizeSubgraph(g, SubgraphKind::kLoop, {1, 2});
  auto b = NormalizeSubgraph(g, SubgraphKind::kLoop, {3, 4});
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_TRUE(CheckWellNested({a.value(), b.value()}).ok());
}

TEST(WellNestedTest, NestedOk) {
  Digraph g = Chain(6);
  auto outer = NormalizeSubgraph(g, SubgraphKind::kLoop, {1, 2, 3, 4});
  auto inner = NormalizeSubgraph(g, SubgraphKind::kLoop, {2, 3});
  ASSERT_TRUE(outer.ok() && inner.ok());
  EXPECT_TRUE(CheckWellNested({outer.value(), inner.value()}).ok());
}

TEST(WellNestedTest, EqualEdgeForkInLoopOk) {
  // The paper's F2-in-L2 pattern: same edge set, smaller DomSet for the fork.
  Digraph g = Chain(5);
  auto loop = NormalizeSubgraph(g, SubgraphKind::kLoop, {1, 2, 3});
  auto fork = NormalizeSubgraph(g, SubgraphKind::kFork, {1, 2, 3});
  ASSERT_TRUE(loop.ok() && fork.ok());
  EXPECT_TRUE(CheckWellNested({loop.value(), fork.value()}).ok());
}

TEST(WellNestedTest, IdenticalLoopsRejected) {
  Digraph g = Chain(5);
  auto a = NormalizeSubgraph(g, SubgraphKind::kLoop, {1, 2, 3});
  auto b = NormalizeSubgraph(g, SubgraphKind::kLoop, {1, 2, 3});
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_FALSE(CheckWellNested({a.value(), b.value()}).ok());
}

TEST(WellNestedTest, StraddlingRejected) {
  Digraph g = Chain(8);
  auto a = NormalizeSubgraph(g, SubgraphKind::kLoop, {1, 2, 3, 4});
  auto b = NormalizeSubgraph(g, SubgraphKind::kLoop, {3, 4, 5, 6});
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_FALSE(CheckWellNested({a.value(), b.value()}).ok());
}

}  // namespace
}  // namespace skl
