// Tests for SpecificationBuilder and the running-example specification
// (paper Figure 2).
#include <gtest/gtest.h>

#include "src/workflow/specification.h"
#include "tests/test_util.h"

namespace skl {
namespace {

TEST(SpecificationTest, RunningExampleBuilds) {
  auto spec = BuildRunningExampleSpec();
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec->graph().num_vertices(), 8u);
  EXPECT_EQ(spec->graph().num_edges(), 8u);
  EXPECT_EQ(spec->num_forks(), 2u);
  EXPECT_EQ(spec->num_loops(), 2u);
  EXPECT_EQ(spec->ModuleName(spec->source()), "a");
  EXPECT_EQ(spec->ModuleName(spec->sink()), "h");
}

TEST(SpecificationTest, VertexLookupByModuleName) {
  auto spec = BuildRunningExampleSpec();
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->ModuleName(spec->VertexOf("d")), "d");
  EXPECT_EQ(spec->VertexOf("nope"), kInvalidVertex);
}

TEST(SpecificationTest, DuplicateModuleNamesRejected) {
  SpecificationBuilder b;
  b.AddModule("x");
  b.AddModule("x");
  auto spec = std::move(b).Build();
  ASSERT_FALSE(spec.ok());
  EXPECT_NE(spec.status().message().find("duplicate"), std::string::npos);
}

TEST(SpecificationTest, EmptyNameRejected) {
  SpecificationBuilder b;
  b.AddModule("");
  EXPECT_FALSE(std::move(b).Build().ok());
}

TEST(SpecificationTest, SelfLoopRejected) {
  SpecificationBuilder b;
  VertexId x = b.AddModule("x");
  b.AddModule("y");
  b.AddEdge(x, x);
  EXPECT_FALSE(std::move(b).Build().ok());
}

TEST(SpecificationTest, EdgeOutOfRangeRejected) {
  SpecificationBuilder b;
  VertexId x = b.AddModule("x");
  b.AddEdge(x, 99);
  EXPECT_FALSE(std::move(b).Build().ok());
}

TEST(SpecificationTest, InvalidForkRejected) {
  SpecificationBuilder b;
  VertexId s = b.AddModule("s");
  VertexId m = b.AddModule("m");
  VertexId n = b.AddModule("n");
  VertexId t = b.AddModule("t");
  b.AddEdge(s, m).AddEdge(s, n).AddEdge(m, t).AddEdge(n, t);
  b.DeclareFork({s, m, n, t});  // diamond: not atomic
  auto spec = std::move(b).Build();
  ASSERT_FALSE(spec.ok());
  EXPECT_EQ(spec.status().code(), StatusCode::kInvalidSpecification);
}

TEST(SpecificationTest, NotWellNestedRejected) {
  SpecificationBuilder b;
  std::vector<VertexId> v;
  for (int i = 0; i < 8; ++i) v.push_back(b.AddModule("m" + std::to_string(i)));
  for (int i = 0; i + 1 < 8; ++i) b.AddEdge(v[i], v[i + 1]);
  b.DeclareLoop({v[1], v[2], v[3], v[4]});
  b.DeclareLoop({v[3], v[4], v[5], v[6]});
  EXPECT_FALSE(std::move(b).Build().ok());
}

TEST(SpecificationTest, SubgraphNormalization) {
  auto ex = testing_util::MakeRunningExample();
  const auto& subs = ex.spec.subgraphs();
  ASSERT_EQ(subs.size(), 4u);
  // F1 = {a,b,c,h}: source a, sink h, dominates {b,c}.
  EXPECT_EQ(subs[0].kind, SubgraphKind::kFork);
  EXPECT_EQ(subs[0].source, ex.sv("a"));
  EXPECT_EQ(subs[0].sink, ex.sv("h"));
  EXPECT_EQ(subs[0].dom_set.Count(), 2u);
  EXPECT_EQ(subs[0].edges.size(), 3u);
  // L1 = {b,c}.
  EXPECT_EQ(subs[1].kind, SubgraphKind::kLoop);
  EXPECT_EQ(subs[1].edges.size(), 1u);
  EXPECT_EQ(subs[1].dom_set.Count(), 2u);
  // L2 = {e,f,g} and F2 = {e,f,g} share the edge set.
  EXPECT_EQ(subs[2].edges.size(), 2u);
  EXPECT_EQ(subs[3].edges.size(), 2u);
  EXPECT_EQ(subs[2].dom_set.Count(), 3u);
  EXPECT_EQ(subs[3].dom_set.Count(), 1u);
}

TEST(SpecificationTest, SpecWithoutSubgraphs) {
  SpecificationBuilder b;
  VertexId x = b.AddModule("x");
  VertexId y = b.AddModule("y");
  b.AddEdge(x, y);
  auto spec = std::move(b).Build();
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec->hierarchy().depth(), 1);
  EXPECT_EQ(spec->hierarchy().size(), 1u);
}

}  // namespace
}  // namespace skl
