// Adversarial socket behavior against the epoll reactor server: clients
// that trickle bytes, never write, die mid-frame, or refuse to read their
// responses. The invariant under attack is always the same — misbehaving
// connections cost bounded memory and zero threads, healthy clients keep
// getting correct answers, and the graceful drain still completes. Plus a
// directed fd-exhaustion test: the accept path must back off and retry on
// EMFILE, not silently die (the listen backlog keeps pending handshakes
// alive until descriptors free up).
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/core/provenance_service.h"
#include "src/net/client.h"
#include "src/net/protocol.h"
#include "src/net/server.h"
#include "src/workload/data_generator.h"
#include "src/workload/run_generator.h"
#include "tests/test_util.h"

namespace skl {
namespace {

/// Server over the running example with one catalog-bearing run, tuned by
/// the test (small write buffers, short drain grace).
struct Harness {
  std::unique_ptr<ProvenanceServer> server;
  RunId run_id = RunId::FromValue(0);
  VertexId num_vertices = 0;
};

Harness StartHarness(ProvenanceServer::Options options) {
  auto example = testing_util::MakeRunningExample();
  RunGenerator generator(&example.spec);
  RunGenOptions gen_options;
  gen_options.target_vertices = 120;
  gen_options.seed = 33;
  auto gen = generator.Generate(gen_options);
  SKL_CHECK_MSG(gen.ok(), gen.status().ToString().c_str());
  DataGenOptions dopt;
  dopt.seed = 9;
  DataCatalog catalog = GenerateDataCatalog(gen->run, dopt);
  auto service =
      ProvenanceService::Create(std::move(example.spec), SpecSchemeKind::kTcm);
  SKL_CHECK_MSG(service.ok(), service.status().ToString().c_str());
  auto id = service->AddRun(gen->run, &catalog);
  SKL_CHECK_MSG(id.ok(), id.status().ToString().c_str());
  Harness h;
  h.run_id = *id;
  h.num_vertices = gen->run.num_vertices();
  auto server = ProvenanceServer::Start(std::move(service).value(), options);
  SKL_CHECK_MSG(server.ok(), server.status().ToString().c_str());
  h.server = std::move(server).value();
  return h;
}

/// Raw socket client (same idiom as net_server_test): full control over
/// when and how bytes hit the wire.
class RawConn {
 public:
  explicit RawConn(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    SKL_CHECK(fd_ >= 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    SKL_CHECK(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr) == 1);
    SKL_CHECK(::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                        sizeof(addr)) == 0);
  }
  ~RawConn() {
    if (fd_ >= 0) ::close(fd_);
  }

  void Send(std::span<const uint8_t> bytes) {
    size_t off = 0;
    while (off < bytes.size()) {
      ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off,
                         MSG_NOSIGNAL);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return;  // peer already gone: the test still proceeds
      off += static_cast<size_t>(n);
    }
  }

  void FinishWrites() { ::shutdown(fd_, SHUT_WR); }

  /// Abrupt death: RST on close instead of an orderly FIN handshake.
  void KillWithRst() {
    linger hard{};
    hard.l_onoff = 1;
    hard.l_linger = 0;
    ::setsockopt(fd_, SOL_SOCKET, SO_LINGER, &hard, sizeof(hard));
    ::close(fd_);
    fd_ = -1;
  }

  /// Reads and decodes exactly `count` response frames.
  std::vector<Frame> ReadFrames(size_t count) {
    FrameDecoder decoder;
    std::vector<Frame> frames;
    uint8_t buf[65536];
    while (frames.size() < count) {
      ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) break;  // EOF before all frames: caller's assertions fail
      decoder.Feed({buf, static_cast<size_t>(n)});
      for (;;) {
        auto next = decoder.Next();
        SKL_CHECK_MSG(next.ok(), next.status().ToString().c_str());
        if (!next->has_value()) break;
        frames.push_back(std::move(**next));
        if (frames.size() == count) break;
      }
    }
    return frames;
  }

  /// Blocks until the server closes; returns everything read meanwhile.
  std::vector<uint8_t> ReadUntilEof() {
    std::vector<uint8_t> all;
    uint8_t buf[4096];
    for (;;) {
      ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return all;
      all.insert(all.end(), buf, buf + n);
    }
  }

  int fd() const { return fd_; }

 private:
  int fd_ = -1;
};

std::vector<uint8_t> EncodeOne(Frame frame) {
  std::vector<uint8_t> bytes;
  EncodeFrame(frame, &bytes);
  return bytes;
}

std::vector<uint8_t> PingFrame(uint64_t request_id) {
  Frame frame;
  frame.type = MsgType::kPing;
  frame.request_id = request_id;
  PayloadWriter payload;
  payload.U64(0);  // v5 trace id: untraced
  frame.payload = std::move(payload).Finish();
  return EncodeOne(std::move(frame));
}

std::vector<uint8_t> ExportFrame(RunId id, uint64_t request_id) {
  Frame frame;
  frame.type = MsgType::kExportRun;
  frame.request_id = request_id;
  PayloadWriter payload;
  payload.U64(id.value());
  payload.U64(0);  // v3+ read token: any LSN is applied on a primary
  payload.U64(0);  // v5 trace id: untraced
  frame.payload = std::move(payload).Finish();
  return EncodeOne(std::move(frame));
}

/// A healthy client must get correct answers no matter what the
/// misbehaving sockets around it are doing.
void ExpectHealthyService(const Harness& h) {
  auto client = ProvenanceClient::Connect("127.0.0.1", h.server->port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  const ProvenanceService& direct = h.server->service();
  std::vector<VertexPair> pairs;
  for (VertexId v = 0; v < h.num_vertices; v += 3) {
    pairs.push_back({v, static_cast<VertexId>(h.num_vertices - 1 - v)});
  }
  auto expected = direct.ReachesBatch(h.run_id, pairs);
  ASSERT_TRUE(expected.ok());
  auto remote = client->ReachesPipelined(h.run_id, pairs);
  ASSERT_TRUE(remote.ok()) << remote.status().ToString();
  EXPECT_EQ(*remote, *expected);
}

bool PollUntil(const std::function<bool()>& cond, int timeout_ms = 5000) {
  for (int waited = 0; waited < timeout_ms; waited += 10) {
    if (cond()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return cond();
}

TEST(ReactorAdversarialTest, SlowLorisIsServedAndHealthyClientsFly) {
  Harness h = StartHarness({});
  RawConn loris(h.server->port());
  const std::vector<uint8_t> bytes = PingFrame(42);
  std::thread trickle([&] {
    for (uint8_t byte : bytes) {
      loris.Send({&byte, 1});
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });
  // While the loris trickles its frame one byte at a time, a healthy
  // client runs a full query load unimpeded.
  ExpectHealthyService(h);
  trickle.join();
  // The trickled frame is a valid Ping: it gets its answer like any other.
  std::vector<Frame> replies = loris.ReadFrames(1);
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].type, MsgType::kReply);
  EXPECT_EQ(replies[0].request_id, 42u);
}

TEST(ReactorAdversarialTest, ConnectAndNeverWriteCostsNothing) {
  Harness h = StartHarness({});
  std::vector<std::unique_ptr<RawConn>> silent;
  for (int i = 0; i < 40; ++i) {
    silent.push_back(std::make_unique<RawConn>(h.server->port()));
  }
  ASSERT_TRUE(PollUntil([&] {
    return h.server->reactor_stats().connections_open >= 40;
  }));
  ExpectHealthyService(h);
  silent.clear();  // orderly FINs: the reactor reaps them all
  EXPECT_TRUE(PollUntil([&] {
    return h.server->reactor_stats().connections_open == 0;
  }));
}

TEST(ReactorAdversarialTest, ClientsKilledMidFrameDoNotPoisonTheServer) {
  Harness h = StartHarness({});
  const std::vector<uint8_t> frame = ExportFrame(h.run_id, 7);
  for (int i = 0; i < 30; ++i) {
    RawConn dying(h.server->port());
    // Half a valid frame, then an RST instead of the rest.
    dying.Send(std::span<const uint8_t>(frame).first(frame.size() / 2));
    dying.KillWithRst();
    if (i % 10 == 0) ExpectHealthyService(h);
  }
  ExpectHealthyService(h);
  // Every dead connection is reaped; only instantaneous clients remain.
  EXPECT_TRUE(PollUntil([&] {
    return h.server->reactor_stats().connections_open == 0;
  }));
}

TEST(ReactorAdversarialTest, NonDrainingReaderTripsBackpressureNotOom) {
  ProvenanceServer::Options options;
  options.max_write_buffer_bytes = 32u << 10;  // trip early
  Harness h = StartHarness(options);
  auto blob = h.server->service().ExportRun(h.run_id);
  ASSERT_TRUE(blob.ok());
  // Enough responses that the reader's refusal to drain must eventually
  // push the connection past kernel socket buffers AND the server's write
  // buffer cap — the backpressure counter is the proof. Requests are tiny,
  // so sending them all up front cannot block us.
  const size_t responses_needed =
      std::max<size_t>(200, (48u << 20) / std::max<size_t>(blob->size(), 1));
  RawConn reader(h.server->port());
  std::vector<uint8_t> burst;
  for (size_t i = 0; i < responses_needed; ++i) {
    const std::vector<uint8_t> frame = ExportFrame(h.run_id, i);
    burst.insert(burst.end(), frame.begin(), frame.end());
  }
  // The burst goes out on its own thread: once the server throttles reads
  // on the suspended connection, our own blocking send stalls too, and it
  // only finishes once the drain below gets the pipeline moving again.
  std::thread writer([&] { reader.Send(burst); });
  // Read nothing. The server must suspend this connection's dispatch
  // instead of buffering tens of megabytes for it.
  ASSERT_TRUE(PollUntil([&] {
    return h.server->reactor_stats().connections_backpressured >= 1;
  }))
      << "write-buffer cap never tripped";
  // The misbehaver is suspended, not the server: healthy traffic flows.
  ExpectHealthyService(h);
  // Redemption: drain everything. Every response arrives, in order.
  std::vector<Frame> replies = reader.ReadFrames(responses_needed);
  writer.join();
  ASSERT_EQ(replies.size(), responses_needed);
  for (size_t i = 0; i < replies.size(); ++i) {
    ASSERT_EQ(replies[i].type, MsgType::kReply) << "frame " << i;
    ASSERT_EQ(replies[i].request_id, i) << "frame " << i;
  }
  ExpectHealthyService(h);
}

TEST(ReactorAdversarialTest, ShutdownDrainsThroughMisbehavingPeers) {
  ProvenanceServer::Options options;
  options.max_write_buffer_bytes = 32u << 10;
  options.drain_grace_ms = 300;  // non-draining peers get force-closed
  Harness h = StartHarness(options);
  // A rogues' gallery: silent connections, a half-frame, and a reader
  // with a backpressured pile of responses it refuses to take.
  std::vector<std::unique_ptr<RawConn>> silent;
  for (int i = 0; i < 10; ++i) {
    silent.push_back(std::make_unique<RawConn>(h.server->port()));
  }
  RawConn half_frame(h.server->port());
  const std::vector<uint8_t> frame = ExportFrame(h.run_id, 1);
  half_frame.Send(std::span<const uint8_t>(frame).first(frame.size() / 2));
  RawConn hoarder(h.server->port());
  std::vector<uint8_t> burst;
  for (size_t i = 0; i < 2000; ++i) {
    const std::vector<uint8_t> req = ExportFrame(h.run_id, i);
    burst.insert(burst.end(), req.begin(), req.end());
  }
  hoarder.Send(burst);
  ExpectHealthyService(h);

  auto client = ProvenanceClient::Connect("127.0.0.1", h.server->port());
  ASSERT_TRUE(client.ok());
  const auto start = std::chrono::steady_clock::now();
  ASSERT_TRUE(client->Shutdown().ok());  // the OK reply arrives first
  h.server->Wait();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  // The drain must complete despite peers that will never cooperate —
  // bounded by the grace period, not by their goodwill.
  EXPECT_LT(std::chrono::duration_cast<std::chrono::seconds>(elapsed).count(),
            30);
  EXPECT_EQ(h.server->reactor_stats().connections_open, 0u);
}

/// Restores the fd limit no matter how the test exits.
struct RlimitGuard {
  RlimitGuard() { ::getrlimit(RLIMIT_NOFILE, &original); }
  ~RlimitGuard() { ::setrlimit(RLIMIT_NOFILE, &original); }
  rlimit original{};
};

TEST(ReactorAdversarialTest, EmfileBacksOffAndRecoversTheAcceptPath) {
  Harness h = StartHarness({});
  // A healthy connection established before the fd famine.
  auto client = ProvenanceClient::Connect("127.0.0.1", h.server->port());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->Ping().ok());

  // Allocate the pending client's socket BEFORE clamping the limit:
  // connect() completes the handshake through the listen backlog without
  // the server spending a descriptor.
  const int pending_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(pending_fd, 0);

  RlimitGuard guard;
  {
    // Clamp the fd limit to exactly the next free descriptor: every
    // allocation from here on — the server's accept4 included — fails
    // with EMFILE.
    const int probe = ::dup(0);
    ASSERT_GE(probe, 0);
    ::close(probe);
    rlimit clamped = guard.original;
    clamped.rlim_cur = static_cast<rlim_t>(probe);
    ASSERT_EQ(::setrlimit(RLIMIT_NOFILE, &clamped), 0);
  }

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(h.server->port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(pending_fd, reinterpret_cast<sockaddr*>(&addr),
                      sizeof(addr)),
            0);

  // The accept loop must register the famine and keep retrying — not
  // silently fall out of the accept path (the pre-reactor bug).
  ASSERT_TRUE(PollUntil([&] {
    return h.server->reactor_stats().accept_backoffs >= 1;
  }))
      << "accept path never recorded an fd-exhaustion backoff";
  // Established connections are unaffected throughout the famine.
  ASSERT_TRUE(client->Ping().ok());

  // Lift the famine: the backed-off accept retry (bounded at 1s) must now
  // admit the patiently waiting connection and serve it.
  ASSERT_EQ(::setrlimit(RLIMIT_NOFILE, &guard.original), 0);
  const std::vector<uint8_t> ping = PingFrame(99);
  size_t off = 0;
  while (off < ping.size()) {
    const ssize_t n =
        ::send(pending_fd, ping.data() + off, ping.size() - off, MSG_NOSIGNAL);
    ASSERT_GT(n, 0);
    off += static_cast<size_t>(n);
  }
  FrameDecoder decoder;
  uint8_t buf[4096];
  std::optional<Frame> reply;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(10);
  while (!reply.has_value() &&
         std::chrono::steady_clock::now() < deadline) {
    const ssize_t n = ::recv(pending_fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    ASSERT_GT(n, 0) << "server closed the backlogged connection";
    decoder.Feed({buf, static_cast<size_t>(n)});
    auto next = decoder.Next();
    ASSERT_TRUE(next.ok());
    if (next->has_value()) reply = std::move(**next);
  }
  ::close(pending_fd);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->type, MsgType::kReply);
  EXPECT_EQ(reply->request_id, 99u);
  EXPECT_GE(h.server->reactor_stats().accept_backoffs, 1u);
}

}  // namespace
}  // namespace skl
