// Tests for the specification labeling schemes: each scheme must agree with
// the transitive closure on random DAGs; scheme-specific structure is also
// checked (intervals, tree-cover interval lists, chain counts).
#include <gtest/gtest.h>

#include "src/common/check.h"
#include "src/common/random.h"
#include "src/graph/algorithms.h"
#include "src/speclabel/chain.h"
#include "src/speclabel/interval.h"
#include "src/speclabel/scheme.h"
#include "src/speclabel/tcm.h"
#include "src/speclabel/tree_cover.h"
#include "src/workload/spec_generator.h"

namespace skl {
namespace {

Digraph RandomSpecGraph(uint64_t seed) {
  SpecGenOptions opt;
  opt.num_vertices = 40;
  opt.num_edges = 70;
  opt.num_subgraphs = 4;
  opt.depth = 3;
  opt.seed = seed;
  auto spec = GenerateSpecification(opt);
  SKL_CHECK_MSG(spec.ok(), spec.status().ToString().c_str());
  return spec->graph();
}

class SchemeCorrectness
    : public ::testing::TestWithParam<std::tuple<SpecSchemeKind, uint64_t>> {
};

TEST_P(SchemeCorrectness, MatchesTransitiveClosure) {
  auto [kind, seed] = GetParam();
  Digraph g = RandomSpecGraph(seed);
  auto scheme = CreateSpecScheme(kind);
  ASSERT_TRUE(scheme->Build(g).ok());
  auto closure = TransitiveClosure(g);
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      EXPECT_EQ(scheme->Reaches(u, v), closure[u].Test(v))
          << SpecSchemeKindName(kind) << " " << u << "->" << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SchemesBySeed, SchemeCorrectness,
    ::testing::Combine(::testing::Values(SpecSchemeKind::kTcm,
                                         SpecSchemeKind::kBfs,
                                         SpecSchemeKind::kDfs,
                                         SpecSchemeKind::kTreeCover,
                                         SpecSchemeKind::kChain,
                                         SpecSchemeKind::kTwoHop),
                       ::testing::Values(1u, 2u, 3u, 4u, 5u)),
    [](const auto& info) {
      std::string name(SpecSchemeKindName(std::get<0>(info.param)));
      if (name == "2HOP") name = "TwoHop";
      return name + "_seed" + std::to_string(std::get<1>(info.param));
    });

TEST(TcmTest, LabelBitsAreQuadratic) {
  Digraph g = RandomSpecGraph(7);
  TcmScheme tcm;
  ASSERT_TRUE(tcm.Build(g).ok());
  EXPECT_EQ(tcm.TotalLabelBits(),
            static_cast<size_t>(g.num_vertices()) * g.num_vertices());
  EXPECT_EQ(tcm.MaxLabelBits(), g.num_vertices());
}

TEST(TcmTest, RejectsCyclicGraph) {
  DigraphBuilder b(2);
  b.AddEdge(0, 1);
  b.AddEdge(1, 0);
  Digraph g = std::move(b).Build();
  TcmScheme tcm;
  EXPECT_FALSE(tcm.Build(g).ok());
}

TEST(TraversalSchemesTest, ZeroLabelBits) {
  Digraph g = RandomSpecGraph(8);
  auto bfs = CreateSpecScheme(SpecSchemeKind::kBfs);
  ASSERT_TRUE(bfs->Build(g).ok());
  EXPECT_EQ(bfs->TotalLabelBits(), 0u);
  EXPECT_EQ(bfs->MaxLabelBits(), 0u);
}

TEST(IntervalTest, WorksOnTrees) {
  // 0 -> {1, 2}, 1 -> {3, 4}.
  DigraphBuilder b(5);
  b.AddEdge(0, 1);
  b.AddEdge(0, 2);
  b.AddEdge(1, 3);
  b.AddEdge(1, 4);
  Digraph g = std::move(b).Build();
  IntervalScheme iv;
  ASSERT_TRUE(iv.Build(g).ok());
  for (VertexId u = 0; u < 5; ++u) {
    for (VertexId v = 0; v < 5; ++v) {
      EXPECT_EQ(iv.Reaches(u, v), Reaches(g, u, v)) << u << "->" << v;
    }
  }
  auto [pre0, max0] = iv.IntervalOf(0);
  EXPECT_EQ(pre0, 0u);
  EXPECT_EQ(max0, 4u);
}

TEST(IntervalTest, RejectsDags) {
  DigraphBuilder b(3);
  b.AddEdge(0, 1);
  b.AddEdge(0, 2);
  b.AddEdge(1, 2);  // second parent for 2
  Digraph g = std::move(b).Build();
  IntervalScheme iv;
  EXPECT_FALSE(iv.Build(g).ok());
}

TEST(IntervalTest, RejectsForests) {
  DigraphBuilder b(4);
  b.AddEdge(0, 1);
  b.AddEdge(2, 3);
  Digraph g = std::move(b).Build();
  IntervalScheme iv;
  EXPECT_FALSE(iv.Build(g).ok());
}

TEST(TreeCoverTest, IntervalListsAreCompact) {
  Digraph g = RandomSpecGraph(9);
  TreeCoverScheme tc;
  ASSERT_TRUE(tc.Build(g).ok());
  // The source reaches everything: its merged interval list must be a
  // single interval covering all postorder numbers.
  auto sources = Sources(g);
  ASSERT_EQ(sources.size(), 1u);
  EXPECT_EQ(tc.NumIntervals(sources[0]), 1u);
  EXPECT_GT(tc.TotalLabelBits(), 0u);
  EXPECT_GE(tc.MaxLabelBits(), 2u);
}

TEST(ChainTest, ChainCountBounded) {
  Digraph g = RandomSpecGraph(10);
  ChainScheme chain;
  ASSERT_TRUE(chain.Build(g).ok());
  EXPECT_GE(chain.num_chains(), 1u);
  EXPECT_LE(chain.num_chains(), g.num_vertices());
  EXPECT_GT(chain.TotalLabelBits(), 0u);
}

TEST(SchemeFactoryTest, NamesRoundTrip) {
  for (SpecSchemeKind kind :
       {SpecSchemeKind::kTcm, SpecSchemeKind::kBfs, SpecSchemeKind::kDfs,
        SpecSchemeKind::kInterval, SpecSchemeKind::kTreeCover,
        SpecSchemeKind::kChain, SpecSchemeKind::kTwoHop}) {
    auto scheme = CreateSpecScheme(kind);
    EXPECT_EQ(scheme->name(), SpecSchemeKindName(kind));
  }
}

TEST(SchemeFactoryTest, ParseInvertsName) {
  // Canonical names parse back to the same kind...
  for (SpecSchemeKind kind :
       {SpecSchemeKind::kTcm, SpecSchemeKind::kBfs, SpecSchemeKind::kDfs,
        SpecSchemeKind::kInterval, SpecSchemeKind::kTreeCover,
        SpecSchemeKind::kChain, SpecSchemeKind::kTwoHop}) {
    auto parsed = ParseSpecSchemeKind(SpecSchemeKindName(kind));
    ASSERT_TRUE(parsed.ok()) << SpecSchemeKindName(kind);
    EXPECT_EQ(*parsed, kind);
  }
  // ...as do the CLI spellings, case-insensitively.
  const std::pair<const char*, SpecSchemeKind> cli[] = {
      {"tcm", SpecSchemeKind::kTcm},
      {"bfs", SpecSchemeKind::kBfs},
      {"dfs", SpecSchemeKind::kDfs},
      {"interval", SpecSchemeKind::kInterval},
      {"tree-cover", SpecSchemeKind::kTreeCover},
      {"TreeCover", SpecSchemeKind::kTreeCover},
      {"chain", SpecSchemeKind::kChain},
      {"2hop", SpecSchemeKind::kTwoHop},
      {"two-hop", SpecSchemeKind::kTwoHop},
  };
  for (const auto& [name, kind] : cli) {
    auto parsed = ParseSpecSchemeKind(name);
    ASSERT_TRUE(parsed.ok()) << name;
    EXPECT_EQ(*parsed, kind) << name;
  }
  EXPECT_FALSE(ParseSpecSchemeKind("").ok());
  EXPECT_FALSE(ParseSpecSchemeKind("bogus").ok());
  EXPECT_FALSE(ParseSpecSchemeKind("tcm2").ok());
}

}  // namespace
}  // namespace skl
