// Tests for bit-exact label serialization: round trips, width accounting
// against the Lemma 4.7 bound, and corrupt-input handling.
#include <gtest/gtest.h>

#include "src/core/label_codec.h"
#include "src/core/skeleton_labeler.h"
#include "src/workload/run_generator.h"
#include "tests/test_util.h"

namespace skl {
namespace {

TEST(LabelCodecTest, RoundTripRunningExample) {
  auto ex = testing_util::MakeRunningExample();
  SkeletonLabeler labeler(&ex.spec, SpecSchemeKind::kTcm);
  ASSERT_TRUE(labeler.Init().ok());
  auto labeling = labeler.LabelRun(ex.run);
  ASSERT_TRUE(labeling.ok());

  EncodedLabels encoded = EncodeLabels(*labeling);
  EXPECT_EQ(encoded.num_labels, ex.run.num_vertices());
  EXPECT_EQ(encoded.bits_per_label, labeling->label_bits());

  auto decoded = DecodeLabels(encoded);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded->size(), ex.run.num_vertices());
  for (VertexId v = 0; v < ex.run.num_vertices(); ++v) {
    const RunLabel& a = labeling->label(v);
    const RunLabel& b = (*decoded)[v];
    EXPECT_EQ(a.q1, b.q1);
    EXPECT_EQ(a.q2, b.q2);
    EXPECT_EQ(a.q3, b.q3);
    EXPECT_EQ(a.origin, b.origin);
  }
}

TEST(LabelCodecTest, DecodedLabelsAnswerQueries) {
  auto ex = testing_util::MakeRunningExample();
  SkeletonLabeler labeler(&ex.spec, SpecSchemeKind::kTcm);
  ASSERT_TRUE(labeler.Init().ok());
  auto labeling = labeler.LabelRun(ex.run);
  ASSERT_TRUE(labeling.ok());
  auto decoded = DecodeLabels(EncodeLabels(*labeling));
  ASSERT_TRUE(decoded.ok());
  for (VertexId u = 0; u < ex.run.num_vertices(); ++u) {
    for (VertexId v = 0; v < ex.run.num_vertices(); ++v) {
      EXPECT_EQ(RunLabeling::Decide((*decoded)[u], (*decoded)[v],
                                    labeler.scheme()),
                labeling->Reaches(u, v));
    }
  }
}

TEST(LabelCodecTest, StorageMatchesTheoreticalWidth) {
  auto ex = testing_util::MakeRunningExample();
  SkeletonLabeler labeler(&ex.spec, SpecSchemeKind::kBfs);
  ASSERT_TRUE(labeler.Init().ok());
  auto labeling = labeler.LabelRun(ex.run);
  ASSERT_TRUE(labeling.ok());
  EncodedLabels encoded = EncodeLabels(*labeling);
  // Header (3 varints <= 5 bytes here) + ceil(n * bits / 8).
  size_t payload_bits =
      static_cast<size_t>(encoded.num_labels) * encoded.bits_per_label;
  EXPECT_LE(encoded.bytes.size(), 5 + (payload_bits + 7) / 8 + 1);
}

TEST(LabelCodecTest, CorruptHeaderRejected) {
  std::vector<uint8_t> junk{0xff};
  EXPECT_FALSE(DecodeLabels(junk).ok());
  std::vector<uint8_t> empty;
  EXPECT_FALSE(DecodeLabels(empty).ok());
}

TEST(LabelCodecTest, TruncatedPayloadRejected) {
  auto ex = testing_util::MakeRunningExample();
  SkeletonLabeler labeler(&ex.spec, SpecSchemeKind::kTcm);
  ASSERT_TRUE(labeler.Init().ok());
  auto labeling = labeler.LabelRun(ex.run);
  ASSERT_TRUE(labeling.ok());
  EncodedLabels encoded = EncodeLabels(*labeling);
  encoded.bytes.resize(encoded.bytes.size() / 2);
  EXPECT_FALSE(DecodeLabels(encoded).ok());
}

TEST(LabelCodecTest, LargeRunRoundTrip) {
  auto ex = testing_util::MakeRunningExample();
  RunGenerator generator(&ex.spec);
  RunGenOptions opt;
  opt.target_vertices = 2000;
  opt.seed = 99;
  auto gen = generator.Generate(opt);
  ASSERT_TRUE(gen.ok());
  SkeletonLabeler labeler(&ex.spec, SpecSchemeKind::kTcm);
  ASSERT_TRUE(labeler.Init().ok());
  auto labeling = labeler.LabelRun(gen->run);
  ASSERT_TRUE(labeling.ok()) << labeling.status().ToString();
  auto decoded = DecodeLabels(EncodeLabels(*labeling));
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->size(), gen->run.num_vertices());
  for (VertexId v = 0; v < gen->run.num_vertices(); ++v) {
    EXPECT_EQ((*decoded)[v].q1, labeling->label(v).q1);
    EXPECT_EQ((*decoded)[v].origin, labeling->label(v).origin);
  }
}

}  // namespace
}  // namespace skl
