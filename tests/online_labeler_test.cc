// Tests for the online labeler (Section 9 future-work extension): replay
// the running example as an event stream, query mid-run, compare the final
// labeling against the offline path, and exercise the event-protocol error
// paths.
#include <gtest/gtest.h>

#include <functional>
#include <map>
#include <string>

#include "src/core/online_labeler.h"
#include "src/core/skeleton_labeler.h"
#include "src/graph/algorithms.h"
#include "src/workload/run_generator.h"
#include "src/workload/spec_generator.h"
#include "tests/test_util.h"

namespace skl {
namespace {

class OnlineLabelerExample : public ::testing::Test {
 protected:
  void SetUp() override {
    ex_ = testing_util::MakeRunningExample();
    scheme_ = CreateSpecScheme(SpecSchemeKind::kTcm);
    ASSERT_TRUE(scheme_->Build(ex_.spec.graph()).ok());
    // Hierarchy ids: declaration order + 1 (F1=1, L1=2, L2=3, F2=4).
  }

  /// Replays Figure 3 as a well-parenthesized event stream, recording
  /// vertex ids under the paper's names.
  Status Replay(OnlineLabeler* ol) {
    auto exec = [&](const std::string& inst, const char* module) -> Status {
      SKL_ASSIGN_OR_RETURN(VertexId id, ol->ExecuteModule(module));
      v_[inst] = id;
      return Status::OK();
    };
    SKL_RETURN_NOT_OK(exec("a1", "a"));
    SKL_RETURN_NOT_OK(exec("d1", "d"));
    SKL_RETURN_NOT_OK(exec("h1", "h"));
    SKL_RETURN_NOT_OK(ol->BeginExecution(1));  // F1 execution
    {
      SKL_RETURN_NOT_OK(ol->BeginCopy());  // fork copy with two iterations
      SKL_RETURN_NOT_OK(ol->BeginExecution(2));  // L1
      SKL_RETURN_NOT_OK(ol->BeginCopy());
      SKL_RETURN_NOT_OK(exec("b1", "b"));
      SKL_RETURN_NOT_OK(exec("c1", "c"));
      SKL_RETURN_NOT_OK(ol->EndCopy());
      SKL_RETURN_NOT_OK(ol->BeginCopy());
      SKL_RETURN_NOT_OK(exec("b2", "b"));
      SKL_RETURN_NOT_OK(exec("c2", "c"));
      SKL_RETURN_NOT_OK(ol->EndCopy());
      SKL_RETURN_NOT_OK(ol->EndExecution());
      SKL_RETURN_NOT_OK(ol->EndCopy());

      SKL_RETURN_NOT_OK(ol->BeginCopy());  // fork copy with one iteration
      SKL_RETURN_NOT_OK(ol->BeginExecution(2));  // L1
      SKL_RETURN_NOT_OK(ol->BeginCopy());
      SKL_RETURN_NOT_OK(exec("b3", "b"));
      SKL_RETURN_NOT_OK(exec("c3", "c"));
      SKL_RETURN_NOT_OK(ol->EndCopy());
      SKL_RETURN_NOT_OK(ol->EndExecution());
      SKL_RETURN_NOT_OK(ol->EndCopy());
    }
    SKL_RETURN_NOT_OK(ol->EndExecution());

    SKL_RETURN_NOT_OK(ol->BeginExecution(3));  // L2 execution
    {
      SKL_RETURN_NOT_OK(ol->BeginCopy());  // iteration 1
      SKL_RETURN_NOT_OK(exec("e1", "e"));
      SKL_RETURN_NOT_OK(exec("g1", "g"));
      SKL_RETURN_NOT_OK(ol->BeginExecution(4));  // F2
      SKL_RETURN_NOT_OK(ol->BeginCopy());
      SKL_RETURN_NOT_OK(exec("f1", "f"));
      SKL_RETURN_NOT_OK(ol->EndCopy());
      SKL_RETURN_NOT_OK(ol->EndExecution());
      SKL_RETURN_NOT_OK(ol->EndCopy());

      SKL_RETURN_NOT_OK(ol->BeginCopy());  // iteration 2: F2 forked twice
      SKL_RETURN_NOT_OK(exec("e2", "e"));
      SKL_RETURN_NOT_OK(exec("g2", "g"));
      SKL_RETURN_NOT_OK(ol->BeginExecution(4));
      SKL_RETURN_NOT_OK(ol->BeginCopy());
      SKL_RETURN_NOT_OK(exec("f2", "f"));
      SKL_RETURN_NOT_OK(ol->EndCopy());
      SKL_RETURN_NOT_OK(ol->BeginCopy());
      SKL_RETURN_NOT_OK(exec("f3", "f"));
      SKL_RETURN_NOT_OK(ol->EndCopy());
      SKL_RETURN_NOT_OK(ol->EndExecution());
      SKL_RETURN_NOT_OK(ol->EndCopy());
    }
    SKL_RETURN_NOT_OK(ol->EndExecution());
    return Status::OK();
  }

  testing_util::RunningExample ex_;
  std::unique_ptr<SpecLabelingScheme> scheme_;
  std::map<std::string, VertexId> v_;
};

TEST_F(OnlineLabelerExample, MidRunQueries) {
  OnlineLabeler ol(&ex_.spec, scheme_.get());
  ASSERT_TRUE(ol.ExecuteModule("a").ok());
  ASSERT_TRUE(ol.BeginExecution(1).ok());
  ASSERT_TRUE(ol.BeginCopy().ok());
  ASSERT_TRUE(ol.BeginExecution(2).ok());
  ASSERT_TRUE(ol.BeginCopy().ok());
  auto b1 = ol.ExecuteModule("b");
  auto c1 = ol.ExecuteModule("c");
  ASSERT_TRUE(b1.ok() && c1.ok());
  // Query while the first loop iteration is still open.
  EXPECT_TRUE(ol.Reaches(0, *b1));   // a1 ~> b1 (spec: a ~> b)
  EXPECT_TRUE(ol.Reaches(*b1, *c1));
  EXPECT_FALSE(ol.Reaches(*c1, *b1));
  ASSERT_TRUE(ol.EndCopy().ok());
  ASSERT_TRUE(ol.BeginCopy().ok());
  auto b2 = ol.ExecuteModule("b");
  ASSERT_TRUE(b2.ok());
  // Cross-iteration: c1 ~> b2 even though spec has no path c ~> b.
  EXPECT_TRUE(ol.Reaches(*c1, *b2));
  EXPECT_FALSE(ol.Reaches(*b2, *c1));
}

TEST_F(OnlineLabelerExample, FullReplayMatchesOffline) {
  OnlineLabeler ol(&ex_.spec, scheme_.get());
  Status st = Replay(&ol);
  ASSERT_TRUE(st.ok()) << st.ToString();
  ASSERT_EQ(ol.num_vertices(), ex_.run.num_vertices());

  // Mid-run predicate must agree with graph search on the true run for every
  // pair, matched by instance name.
  const Digraph& g = ex_.run.graph();
  for (const auto& [nu, u_online] : v_) {
    for (const auto& [nv, v_online] : v_) {
      EXPECT_EQ(ol.Reaches(u_online, v_online),
                Reaches(g, ex_.rv(nu), ex_.rv(nv)))
          << nu << " -> " << nv;
    }
  }

  // Finished labeling must agree as well (constant-time path).
  auto labeling = std::move(ol).Finish();
  ASSERT_TRUE(labeling.ok()) << labeling.status().ToString();
  for (const auto& [nu, u_online] : v_) {
    for (const auto& [nv, v_online] : v_) {
      EXPECT_EQ(labeling->Reaches(u_online, v_online),
                Reaches(g, ex_.rv(nu), ex_.rv(nv)))
          << nu << " -> " << nv;
    }
  }
  EXPECT_EQ(labeling->num_nonempty_plus(), 9u);
}

TEST_F(OnlineLabelerExample, ProtocolErrors) {
  OnlineLabeler ol(&ex_.spec, scheme_.get());
  // EndCopy/EndExecution with nothing open.
  EXPECT_FALSE(ol.EndCopy().ok());
  EXPECT_FALSE(ol.EndExecution().ok());
  // BeginCopy outside an execution.
  EXPECT_FALSE(ol.BeginCopy().ok());
  // Executing a module owned by a nested loop at the top level.
  EXPECT_FALSE(ol.ExecuteModule("b").ok());
  // Unknown module / subgraph.
  EXPECT_FALSE(ol.ExecuteModule("zzz").ok());
  EXPECT_FALSE(ol.BeginExecution(99).ok());
  // L1 (id 2) is nested in F1, not directly under the root.
  EXPECT_FALSE(ol.BeginExecution(2).ok());
  // Proper nesting: F1, then a module between Begin and Copy is an error.
  ASSERT_TRUE(ol.BeginExecution(1).ok());
  EXPECT_FALSE(ol.ExecuteModule("a").ok());
  // Executing F1 twice in the same (root) copy is rejected.
  EXPECT_FALSE(ol.BeginExecution(1).ok());
  // Closing an execution without any copy is rejected.
  EXPECT_FALSE(ol.EndExecution().ok());
  ASSERT_TRUE(ol.BeginCopy().ok());
  // A fork copy of F1 must run L1 exactly once before closing.
  EXPECT_FALSE(ol.EndCopy().ok());
}

TEST_F(OnlineLabelerExample, FinishValidation) {
  {
    // Unclosed execution.
    OnlineLabeler ol(&ex_.spec, scheme_.get());
    ASSERT_TRUE(ol.BeginExecution(1).ok());
    EXPECT_FALSE(std::move(ol).Finish().ok());
  }
  {
    // Top-level subgraphs never executed.
    OnlineLabeler ol(&ex_.spec, scheme_.get());
    ASSERT_TRUE(ol.ExecuteModule("a").ok());
    EXPECT_FALSE(std::move(ol).Finish().ok());
  }
  {
    // Complete replay finishes cleanly and rejects further events.
    OnlineLabeler ol(&ex_.spec, scheme_.get());
    ASSERT_TRUE(Replay(&ol).ok());
    auto labeling = std::move(ol).Finish();
    ASSERT_TRUE(labeling.ok());
    EXPECT_FALSE(ol.ExecuteModule("a").ok());
    EXPECT_FALSE(ol.BeginExecution(1).ok());
  }
}

// Replays a generated run's ground-truth plan as an event stream and checks
// the online labeler against graph search on the materialized run.
class OnlinePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OnlinePropertyTest, ReplayedGeneratedRunsAgreeWithGraphSearch) {
  const uint64_t seed = GetParam();
  SpecGenOptions sopt;
  sopt.num_vertices = 50;
  sopt.num_edges = 80;
  sopt.num_subgraphs = 6;
  sopt.depth = 4;
  sopt.seed = seed;
  auto spec = GenerateSpecification(sopt);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  RunGenerator gen(&spec.value());
  RunGenOptions ropt;
  ropt.target_vertices = 300;
  ropt.seed = seed * 13 + 1;
  auto generated = gen.Generate(ropt);
  ASSERT_TRUE(generated.ok());

  auto scheme = CreateSpecScheme(SpecSchemeKind::kTcm);
  ASSERT_TRUE(scheme->Build(spec->graph()).ok());
  OnlineLabeler ol(&spec.value(), scheme.get());

  // Vertices per context node.
  const ExecutionPlan& plan = generated->plan;
  std::vector<std::vector<VertexId>> by_context(plan.num_nodes());
  for (VertexId v = 0; v < generated->run.num_vertices(); ++v) {
    by_context[plan.ContextOf(v)].push_back(v);
  }
  std::vector<VertexId> online_id(generated->run.num_vertices(),
                                  kInvalidVertex);
  // Depth-first replay of the plan tree.
  std::function<void(PlanNodeId)> replay = [&](PlanNodeId x) {
    for (VertexId v : by_context[x]) {
      auto id = ol.ExecuteModule(
          spec->ModuleName(generated->origin[v]));
      ASSERT_TRUE(id.ok()) << id.status().ToString();
      online_id[v] = *id;
    }
    for (PlanNodeId g : plan.node(x).children) {
      ASSERT_TRUE(ol.BeginExecution(plan.node(g).hier).ok());
      for (PlanNodeId copy : plan.node(g).children) {
        ASSERT_TRUE(ol.BeginCopy().ok());
        replay(copy);
        ASSERT_TRUE(ol.EndCopy().ok());
      }
      ASSERT_TRUE(ol.EndExecution().ok());
    }
  };
  replay(kPlanRoot);
  ASSERT_EQ(ol.num_vertices(), generated->run.num_vertices());

  const Digraph& g = generated->run.graph();
  Rng rng(seed + 99);
  for (int i = 0; i < 1500; ++i) {
    VertexId u = static_cast<VertexId>(rng.NextBelow(g.num_vertices()));
    VertexId v = static_cast<VertexId>(rng.NextBelow(g.num_vertices()));
    ASSERT_EQ(ol.Reaches(online_id[u], online_id[v]), Reaches(g, u, v))
        << u << " -> " << v;
  }
  auto labeling = std::move(ol).Finish();
  ASSERT_TRUE(labeling.ok()) << labeling.status().ToString();
  for (int i = 0; i < 1500; ++i) {
    VertexId u = static_cast<VertexId>(rng.NextBelow(g.num_vertices()));
    VertexId v = static_cast<VertexId>(rng.NextBelow(g.num_vertices()));
    ASSERT_EQ(labeling->Reaches(online_id[u], online_id[v]),
              Reaches(g, u, v));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OnlinePropertyTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

}  // namespace
}  // namespace skl
