// Differential conformance suite for the replication subsystem
// (src/replication/, docs/REPLICATION.md): a primary (op-log attached) +
// 2 read replicas behind a FleetClient replay one seeded, randomized op
// sequence in lockstep with a single-node in-process twin — AddRun /
// ImportRun / RemoveRun interleaved with every query kind, ListRuns and
// per-run stats — and every answer (value AND status code) and every
// allocated RunId must be bit-identical between the fleet and the twin,
// no matter which endpoint a read landed on or how far a replica was
// lagging (read-your-writes LSN tokens make lag observable, never wrong).
// Runs across all 7 schemes, >= 10k ops total. Each scheme ends with a
// catch-up barrier + full-state sweep across primary, both replicas and
// the twin, then a crash-recovery scenario: the primary is destroyed, a
// new one is rebuilt from the op-log alone (RecoverPrimary), must answer
// identically, and must allocate the same next RunId — while the orphaned
// replicas keep serving reads.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "src/common/check.h"
#include "src/common/random.h"
#include "src/common/temp_path.h"
#include "src/core/provenance_service.h"
#include "src/io/workflow_xml.h"
#include "src/net/client.h"
#include "src/net/server.h"
#include "src/replication/fleet_client.h"
#include "src/replication/oplog.h"
#include "src/replication/replicator.h"
#include "src/workload/data_generator.h"
#include "src/workload/run_generator.h"
#include "tests/test_util.h"

namespace skl {
namespace {

/// Tree-shaped specification for the interval scheme (which rejects spec
/// graphs with undirected cycles); same shape as query_cache_test.cc.
Specification MakeTreeSpec() {
  SpecificationBuilder builder;
  VertexId a = builder.AddModule("a");
  VertexId b = builder.AddModule("b");
  VertexId c = builder.AddModule("c");
  VertexId d = builder.AddModule("d");
  builder.AddEdge(a, b).AddEdge(b, c).AddEdge(c, d);
  builder.DeclareLoop({b, c});
  auto spec = std::move(builder).Build();
  SKL_CHECK_MSG(spec.ok(), spec.status().ToString().c_str());
  return std::move(spec).value();
}

Specification MakeSpecFor(SpecSchemeKind kind) {
  return kind == SpecSchemeKind::kInterval
             ? MakeTreeSpec()
             : testing_util::MakeRunningExample().spec;
}

/// One primary + 2 replicas + fleet client + local twin, replaying one
/// seeded op sequence and asserting fleet/twin bit-identity throughout.
class FleetDifferentialTester {
 public:
  FleetDifferentialTester(SpecSchemeKind kind, uint64_t seed)
      : kind_(kind), seed_(seed), rng_(seed) {
    const std::string scheme_name = SpecSchemeKindName(kind);
    oplog_path_ = PidQualifiedTempPath(
        std::string("replication_") + scheme_name, ".skllog");
    std::filesystem::remove(oplog_path_);
    spec_xml_ = WriteSpecificationXml(MakeSpecFor(kind));
    OpLog::Options log_options;
    log_options.fsync = false;  // process-crash durability is enough here
    auto oplog = OpLog::Open(oplog_path_, spec_xml_, scheme_name,
                             log_options);
    SKL_CHECK_MSG(oplog.ok(), oplog.status().ToString().c_str());
    oplog_ = std::move(oplog).value();

    auto service = ProvenanceService::Create(MakeSpecFor(kind), kind);
    SKL_CHECK_MSG(service.ok(), service.status().ToString().c_str());
    ProvenanceServer::Options server_options;
    server_options.num_threads = 4;
    server_options.oplog = oplog_.get();
    auto primary = ProvenanceServer::Start(std::move(service).value(),
                                           server_options);
    SKL_CHECK_MSG(primary.ok(), primary.status().ToString().c_str());
    primary_ = std::move(primary).value();

    ReadReplica::Options replica_options;
    replica_options.poll_interval_ms = 1;
    for (int i = 0; i < 2; ++i) {
      auto replica = ReadReplica::Start("127.0.0.1", primary_->port(),
                                        replica_options);
      SKL_CHECK_MSG(replica.ok(), replica.status().ToString().c_str());
      replicas_.push_back(std::move(replica).value());
    }

    auto fleet = FleetClient::Connect(
        "127.0.0.1:" + std::to_string(primary_->port()),
        {"127.0.0.1:" + std::to_string(replicas_[0]->port()),
         "127.0.0.1:" + std::to_string(replicas_[1]->port())});
    SKL_CHECK_MSG(fleet.ok(), fleet.status().ToString().c_str());
    fleet_ = std::make_unique<FleetClient>(std::move(fleet).value());

    auto twin = ProvenanceService::Create(MakeSpecFor(kind), kind);
    SKL_CHECK_MSG(twin.ok(), twin.status().ToString().c_str());
    twin_ = std::make_unique<ProvenanceService>(std::move(twin).value());

    // Run pool + export blobs (blobs carry catalogs — the wire AddRun path
    // has none, so imports are where catalog state gets replicated).
    RunGenerator generator(&twin_->spec());
    std::vector<DataCatalog> catalogs;
    for (uint64_t i = 0; i < 5; ++i) {
      RunGenOptions opt;
      opt.target_vertices = 25 + 10 * static_cast<uint32_t>(i);
      opt.seed = seed * 131 + i;
      auto gen = generator.Generate(opt);
      SKL_CHECK_MSG(gen.ok(), gen.status().ToString().c_str());
      pool_.push_back(std::move(gen->run));
      DataGenOptions dopt;
      dopt.seed = seed * 17 + i;
      catalogs.push_back(GenerateDataCatalog(pool_.back(), dopt));
    }
    auto scratch = ProvenanceService::Create(MakeSpecFor(kind), kind);
    SKL_CHECK_MSG(scratch.ok(), scratch.status().ToString().c_str());
    for (size_t i = 0; i < pool_.size(); ++i) {
      auto id = scratch->AddRun(pool_[i], &catalogs[i]);
      SKL_CHECK_MSG(id.ok(), id.status().ToString().c_str());
      auto blob = scratch->ExportRun(*id);
      SKL_CHECK_MSG(blob.ok(), blob.status().ToString().c_str());
      blobs_.push_back(std::move(blob).value());
    }
  }

  ~FleetDifferentialTester() {
    for (auto& replica : replicas_) replica->Stop();
    if (primary_ != nullptr) primary_->Shutdown();
    std::filesystem::remove(oplog_path_);
  }

  void Run(size_t num_ops) {
    for (op_index_ = 0; op_index_ < num_ops; ++op_index_) {
      Step();
      if (::testing::Test::HasFatalFailure()) return;
    }
    CatchUpAndSweep();
    if (::testing::Test::HasFatalFailure()) return;
    CrashPrimaryAndRecover();
  }

 private:
  std::string Context(const std::string& op) const {
    return "scheme=" + std::string(SpecSchemeKindName(kind_)) +
           " seed=" + std::to_string(seed_) +
           " op#" + std::to_string(op_index_) + ": " + op;
  }

  uint64_t PickId() {
    const uint64_t r = rng_.NextBelow(100);
    if (r < 70 && !live_.empty()) {
      return live_[rng_.NextBelow(live_.size())];
    }
    if (r < 85 && !all_.empty()) {
      return all_[rng_.NextBelow(all_.size())];
    }
    return 1000000 + rng_.NextBelow(5);
  }

  VertexId VerticesOf(uint64_t id) {
    auto stats = twin_->Stats(RunId::FromValue(id));
    return stats.ok() ? stats->num_vertices : 8;
  }

  void ExpectSameBool(const Result<bool>& f, const Result<bool>& t,
                      const std::string& op) {
    ASSERT_EQ(f.ok(), t.ok())
        << Context(op) << "\nfleet: "
        << (f.ok() ? "ok" : f.status().ToString()) << "\ntwin:  "
        << (t.ok() ? "ok" : t.status().ToString());
    if (f.ok()) {
      ASSERT_EQ(*f, *t) << Context(op);
    } else {
      ASSERT_EQ(f.status().code(), t.status().code()) << Context(op);
    }
  }

  void ExpectSameStats(const Result<RunStats>& f, const Result<RunStats>& t,
                       const std::string& op) {
    ASSERT_EQ(f.ok(), t.ok()) << Context(op);
    if (!f.ok()) {
      ASSERT_EQ(f.status().code(), t.status().code()) << Context(op);
      return;
    }
    ASSERT_EQ(f->num_vertices, t->num_vertices) << Context(op);
    ASSERT_EQ(f->num_items, t->num_items) << Context(op);
    ASSERT_EQ(f->label_bits, t->label_bits) << Context(op);
    ASSERT_EQ(f->context_bits, t->context_bits) << Context(op);
    ASSERT_EQ(f->origin_bits, t->origin_bits) << Context(op);
    ASSERT_EQ(f->num_nonempty_plus, t->num_nonempty_plus) << Context(op);
    ASSERT_EQ(f->imported, t->imported) << Context(op);
  }

  void ExpectSameIdList(const std::vector<RunId>& f,
                        const std::vector<RunId>& t,
                        const std::string& op) {
    ASSERT_EQ(f.size(), t.size()) << Context(op);
    for (size_t i = 0; i < f.size(); ++i) {
      ASSERT_EQ(f[i].value(), t[i].value())
          << Context(op + "[" + std::to_string(i) + "]");
    }
  }

  void Step() {
    const uint64_t r = rng_.NextBelow(1000);
    if (r < 100) {  // AddRun over the wire vs in-process
      const size_t i = rng_.NextBelow(pool_.size());
      auto f = fleet_->AddRun(pool_[i]);
      auto t = twin_->AddRun(pool_[i]);
      ASSERT_EQ(f.ok(), t.ok()) << Context("AddRun");
      ASSERT_TRUE(f.ok()) << Context("AddRun") << f.status().ToString();
      ASSERT_EQ(f->value(), t->value())
          << Context("AddRun: fleet and twin diverged on allocated id");
      live_.push_back(f->value());
      all_.push_back(f->value());
      return;
    }
    if (r < 160) {  // ImportRun (the catalog-carrying ingestion path)
      const size_t i = rng_.NextBelow(blobs_.size());
      auto f = fleet_->ImportRun(blobs_[i]);
      auto t = twin_->ImportRun(blobs_[i]);
      ASSERT_EQ(f.ok(), t.ok()) << Context("ImportRun");
      ASSERT_TRUE(f.ok()) << Context("ImportRun") << f.status().ToString();
      ASSERT_EQ(f->value(), t->value()) << Context("ImportRun id");
      live_.push_back(f->value());
      all_.push_back(f->value());
      return;
    }
    if (r < 220) {  // RemoveRun (live, stale or never-issued)
      uint64_t id;
      if (!live_.empty() && rng_.NextBelow(10) < 9) {
        const size_t i = rng_.NextBelow(live_.size());
        id = live_[i];
        live_.erase(live_.begin() + static_cast<ptrdiff_t>(i));
      } else {
        id = 1000000 + rng_.NextBelow(5);
      }
      const Status f = fleet_->RemoveRun(RunId::FromValue(id));
      const Status t = twin_->RemoveRun(RunId::FromValue(id));
      ASSERT_EQ(f.code(), t.code())
          << Context("RemoveRun(" + std::to_string(id) + ")");
      return;
    }
    if (r < 700) {  // Reaches
      const uint64_t id = PickId();
      const VertexId n = VerticesOf(id);
      const VertexId v = static_cast<VertexId>(rng_.NextBelow(n + 2));
      const VertexId w = static_cast<VertexId>(rng_.NextBelow(n + 2));
      ExpectSameBool(fleet_->Reaches(RunId::FromValue(id), v, w),
                     twin_->Reaches(RunId::FromValue(id), v, w),
                     "Reaches(" + std::to_string(id) + ", " +
                         std::to_string(v) + ", " + std::to_string(w) + ")");
      return;
    }
    if (r < 790) {  // DependsOn
      const uint64_t id = PickId();
      auto stats = twin_->Stats(RunId::FromValue(id));
      const size_t items = stats.ok() ? stats->num_items : 4;
      const DataItemId x = static_cast<DataItemId>(rng_.NextBelow(items + 2));
      const DataItemId y = static_cast<DataItemId>(rng_.NextBelow(items + 2));
      ExpectSameBool(fleet_->DependsOn(RunId::FromValue(id), x, y),
                     twin_->DependsOn(RunId::FromValue(id), x, y),
                     "DependsOn(" + std::to_string(id) + ")");
      return;
    }
    if (r < 860) {  // mixed module/data directions
      const uint64_t id = PickId();
      auto stats = twin_->Stats(RunId::FromValue(id));
      const size_t items = stats.ok() ? stats->num_items : 4;
      const VertexId n = VerticesOf(id);
      const VertexId v = static_cast<VertexId>(rng_.NextBelow(n + 2));
      const DataItemId x = static_cast<DataItemId>(rng_.NextBelow(items + 2));
      if (r % 2 == 0) {
        ExpectSameBool(
            fleet_->ModuleDependsOnData(RunId::FromValue(id), v, x),
            twin_->ModuleDependsOnData(RunId::FromValue(id), v, x),
            "ModuleDependsOnData(" + std::to_string(id) + ")");
      } else {
        ExpectSameBool(
            fleet_->DataDependsOnModule(RunId::FromValue(id), x, v),
            twin_->DataDependsOnModule(RunId::FromValue(id), x, v),
            "DataDependsOnModule(" + std::to_string(id) + ")");
      }
      return;
    }
    if (r < 940) {  // ReachesBatch
      const uint64_t id = PickId();
      const VertexId n = VerticesOf(id);
      std::vector<VertexPair> pairs;
      for (int i = 0; i < 8; ++i) {
        pairs.push_back({static_cast<VertexId>(rng_.NextBelow(n)),
                         static_cast<VertexId>(rng_.NextBelow(n))});
      }
      auto f = fleet_->ReachesBatch(RunId::FromValue(id), pairs);
      auto t = twin_->ReachesBatch(RunId::FromValue(id), pairs);
      ASSERT_EQ(f.ok(), t.ok()) << Context("ReachesBatch");
      if (f.ok()) {
        ASSERT_EQ(*f, *t) << Context("ReachesBatch");
      } else {
        ASSERT_EQ(f.status().code(), t.status().code())
            << Context("ReachesBatch");
      }
      return;
    }
    if (r < 975) {  // registry view
      auto f = fleet_->ListRuns();
      ASSERT_TRUE(f.ok()) << Context("ListRuns") << f.status().ToString();
      ExpectSameIdList(*f, twin_->ListRuns(), "ListRuns");
      return;
    }
    // Per-run stats agreement.
    const uint64_t id = PickId();
    ExpectSameStats(fleet_->Stats(RunId::FromValue(id)),
                    twin_->Stats(RunId::FromValue(id)),
                    "Stats(" + std::to_string(id) + ")");
  }

  /// Barrier: both replicas reach the primary's LSN, then the full state
  /// must read identically from every endpoint.
  void CatchUpAndSweep() {
    const uint64_t head = oplog_->last_lsn();
    for (size_t r = 0; r < replicas_.size(); ++r) {
      Status caught = replicas_[r]->WaitForLsn(head, /*timeout_ms=*/10000);
      ASSERT_TRUE(caught.ok())
          << Context("replica " + std::to_string(r) +
                     " catch-up: " + caught.ToString());
    }
    const std::vector<RunId> expect = twin_->ListRuns();
    for (size_t r = 0; r < replicas_.size(); ++r) {
      auto client = ProvenanceClient::Connect("127.0.0.1",
                                              replicas_[r]->port());
      ASSERT_TRUE(client.ok()) << client.status().ToString();
      client->SetReadLsn(head);
      auto ids = client->ListRuns();
      ASSERT_TRUE(ids.ok())
          << Context("replica sweep ListRuns") << ids.status().ToString();
      ExpectSameIdList(*ids, expect,
                       "replica " + std::to_string(r) + " sweep");
      // Spot-check stats and answers for every live run on this replica.
      for (const RunId id : expect) {
        ExpectSameStats(client->Stats(id), twin_->Stats(id),
                        "replica sweep Stats(" +
                            std::to_string(id.value()) + ")");
        const VertexId n = VerticesOf(id.value());
        ExpectSameBool(client->Reaches(id, 0, n > 1 ? n - 1 : 0),
                       twin_->Reaches(id, 0, n > 1 ? n - 1 : 0),
                       "replica sweep Reaches");
        if (::testing::Test::HasFatalFailure()) return;
      }
    }
    // Replica lag is visible in its service stats, and never negative.
    auto client =
        ProvenanceClient::Connect("127.0.0.1", replicas_[0]->port());
    ASSERT_TRUE(client.ok());
    auto stats = client->GetServiceStats();
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_EQ(stats->replication_lsn, head) << Context("replica lsn");
    EXPECT_GE(stats->replication_target_lsn, stats->replication_lsn)
        << Context("replica target lsn");
  }

  /// Kill the primary, rebuild it from the op-log alone, and require
  /// bit-identical state — while the orphaned replicas keep serving.
  void CrashPrimaryAndRecover() {
    const std::vector<RunId> expect = twin_->ListRuns();
    primary_->Shutdown();
    primary_.reset();
    oplog_.reset();  // close the append handle before recovery reopens it

    OpLog::Options log_options;
    log_options.fsync = false;
    auto recovered = RecoverPrimary(oplog_path_, {}, log_options);
    ASSERT_TRUE(recovered.ok())
        << Context("RecoverPrimary") << recovered.status().ToString();

    ExpectSameIdList(recovered->service.ListRuns(), expect,
                     "recovered ListRuns");
    for (const RunId id : expect) {
      ExpectSameStats(recovered->service.Stats(id), twin_->Stats(id),
                      "recovered Stats(" + std::to_string(id.value()) + ")");
      const VertexId n = VerticesOf(id.value());
      for (VertexId v = 0; v < n && v < 6; ++v) {
        ExpectSameBool(recovered->service.Reaches(id, v, n - 1),
                       twin_->Reaches(id, v, n - 1), "recovered Reaches");
        if (::testing::Test::HasFatalFailure()) return;
      }
    }

    // The orphaned replicas still answer reads (at LSN 0 tokens — no
    // freshness demanded of a fleet with no primary).
    for (size_t r = 0; r < replicas_.size(); ++r) {
      auto client = ProvenanceClient::Connect("127.0.0.1",
                                              replicas_[r]->port());
      ASSERT_TRUE(client.ok()) << client.status().ToString();
      auto ids = client->ListRuns();
      ASSERT_TRUE(ids.ok())
          << Context("orphaned replica ListRuns") << ids.status().ToString();
      ExpectSameIdList(*ids, expect, "orphaned replica ListRuns");
    }

    // The recovered primary continues the id sequence exactly where the
    // crashed one left off.
    auto f = recovered->service.AddRun(pool_[0]);
    auto t = twin_->AddRun(pool_[0]);
    ASSERT_TRUE(f.ok()) << Context("post-recovery AddRun")
                        << f.status().ToString();
    ASSERT_TRUE(t.ok());
    ASSERT_EQ(f->value(), t->value())
        << Context("post-recovery AddRun: id sequence diverged");
  }

  const SpecSchemeKind kind_;
  const uint64_t seed_;
  Rng rng_;
  std::string oplog_path_;
  std::string spec_xml_;
  std::unique_ptr<OpLog> oplog_;
  std::unique_ptr<ProvenanceServer> primary_;
  std::vector<std::unique_ptr<ReadReplica>> replicas_;
  std::unique_ptr<FleetClient> fleet_;
  std::unique_ptr<ProvenanceService> twin_;
  std::vector<::skl::Run> pool_;
  std::vector<std::vector<uint8_t>> blobs_;
  std::vector<uint64_t> live_;
  std::vector<uint64_t> all_;
  size_t op_index_ = 0;
};

TEST(ReplicationDifferentialTest, FleetBitIdenticalToSingleNodeAllSchemes) {
  const SpecSchemeKind kinds[] = {
      SpecSchemeKind::kTcm,       SpecSchemeKind::kBfs,
      SpecSchemeKind::kDfs,       SpecSchemeKind::kInterval,
      SpecSchemeKind::kTreeCover, SpecSchemeKind::kChain,
      SpecSchemeKind::kTwoHop};
  const uint64_t base_seed =
      testing_util::TestSeed("ReplicationDifferentialTest", 0xD1CE);
  const uint64_t iters = 1500 * testing_util::TestIterScale();
  size_t i = 0;
  for (SpecSchemeKind kind : kinds) {
    SCOPED_TRACE(SpecSchemeKindName(kind));
    FleetDifferentialTester tester(kind, /*seed=*/base_seed + i);
    // 7 schemes x 1500 ops > the 10k-op floor the suite promises.
    tester.Run(iters);
    if (::testing::Test::HasFatalFailure()) return;
    ++i;
  }
}

// ------------------------------------------------------- directed checks --

TEST(ReplicationTest, ReadAheadOfReplicaBouncesWithRetryAt) {
  auto service = ProvenanceService::Create(
      testing_util::MakeRunningExample().spec, SpecSchemeKind::kTcm);
  ASSERT_TRUE(service.ok());
  ProvenanceServer::Options options;
  options.read_only = true;
  auto server = ProvenanceServer::Start(std::move(service).value(), options);
  ASSERT_TRUE(server.ok());
  (*server)->SetReplicationLsns(/*applied_lsn=*/3, /*target_lsn=*/10);

  auto client = ProvenanceClient::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(client.ok());
  // Token at/below the applied LSN: served (NotFound — empty registry —
  // is the service's real answer, not a bounce).
  client->SetReadLsn(3);
  auto served = client->Reaches(RunId::FromValue(1), 0, 1);
  ASSERT_FALSE(served.ok());
  EXPECT_EQ(served.status().code(), StatusCode::kNotFound);
  // Token ahead: bounced with kRetryAt, naming the applied LSN; the
  // connection stays usable.
  client->SetReadLsn(7);
  auto bounced = client->Reaches(RunId::FromValue(1), 0, 1);
  ASSERT_FALSE(bounced.ok());
  EXPECT_EQ(bounced.status().code(), StatusCode::kRetryAt);
  EXPECT_NE(bounced.status().message().find("3"), std::string::npos)
      << bounced.status().ToString();
  EXPECT_TRUE(client->Ping().ok());
  // Writes are refused outright on a read-only replica.
  auto removed = client->RemoveRun(RunId::FromValue(1));
  EXPECT_EQ(removed.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(removed.message().find("read-only"), std::string::npos);
  (*server)->Shutdown();
}

TEST(ReplicationTest, SubscribeWithoutAnOpLogIsRefusedDescriptively) {
  auto service = ProvenanceService::Create(
      testing_util::MakeRunningExample().spec, SpecSchemeKind::kTcm);
  ASSERT_TRUE(service.ok());
  auto server = ProvenanceServer::Start(std::move(service).value(), {});
  ASSERT_TRUE(server.ok());
  auto client = ProvenanceClient::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(client.ok());
  auto batch = client->Subscribe(0, 10);
  ASSERT_FALSE(batch.ok());
  EXPECT_EQ(batch.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(batch.status().message().find("no replication log"),
            std::string::npos)
      << batch.status().ToString();
  auto snap = client->SnapshotFetch();
  ASSERT_FALSE(snap.ok());
  EXPECT_EQ(snap.status().code(), StatusCode::kInvalidArgument);
  (*server)->Shutdown();
}

}  // namespace
}  // namespace skl
