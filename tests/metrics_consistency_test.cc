// Counter/histogram consistency: the observability layer must agree with
// itself. Under a concurrent mixed workload, every per-opcode histogram
// count in the kMetrics exposition has to equal the matching ServiceStats
// query counter (one answered frame = one observation = one counted
// query), the result-cache counters have to account for exactly the
// cache-eligible answered queries, and the per-shard cache gauges have to
// sum to the global counters. Runs under the TSan leg with everything
// else: the invariants only hold if the relaxed atomics in the histogram
// and the counters are actually race-free.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "src/core/provenance_service.h"
#include "src/net/client.h"
#include "src/net/server.h"
#include "src/workload/data_generator.h"
#include "src/workload/run_generator.h"
#include "tests/test_util.h"

namespace skl {
namespace {

/// The value of one exact series (`name{labels}` spelled in full) in a
/// Prometheus text exposition; fails the test if the series is absent.
uint64_t SeriesValue(const std::string& text, const std::string& series) {
  const std::string needle = series + " ";
  size_t pos = text.find(needle);
  EXPECT_NE(pos, std::string::npos) << "no series " << series;
  if (pos == std::string::npos) return 0;
  return std::strtoull(text.c_str() + pos + needle.size(), nullptr, 10);
}

/// Sums every series whose line starts with `prefix` (e.g. all shards of
/// one per-shard gauge family).
uint64_t SumSeries(const std::string& text, const std::string& prefix) {
  uint64_t total = 0;
  size_t pos = 0;
  while ((pos = text.find(prefix, pos)) != std::string::npos) {
    if (pos != 0 && text[pos - 1] != '\n') {
      pos += prefix.size();
      continue;
    }
    const size_t space = text.find(' ', pos);
    EXPECT_NE(space, std::string::npos);
    total += std::strtoull(text.c_str() + space + 1, nullptr, 10);
    pos = space;
  }
  return total;
}

TEST(MetricsConsistencyTest, HistogramsCountersAndCacheAgreeUnderLoad) {
  auto ex = testing_util::MakeRunningExample();
  RunGenerator generator(&ex.spec);
  RunGenOptions gopt;
  gopt.target_vertices = 50;
  gopt.seed = 23;
  auto generated = generator.Generate(gopt);
  ASSERT_TRUE(generated.ok());
  DataGenOptions dopt;
  dopt.seed = 5;
  DataCatalog catalog = GenerateDataCatalog(generated->run, dopt);

  auto service =
      ProvenanceService::Create(std::move(ex.spec), SpecSchemeKind::kTcm);
  ASSERT_TRUE(service.ok());
  auto id = service->AddRun(generated->run, &catalog);
  ASSERT_TRUE(id.ok());
  const RunId run = *id;
  const VertexId n = generated->run.num_vertices();
  auto run_stats = service->Stats(run);
  ASSERT_TRUE(run_stats.ok());
  const DataItemId items = static_cast<DataItemId>(run_stats->num_items);
  ASSERT_GT(items, 0u);

  ProvenanceServer::Options options;
  options.num_threads = 4;
  auto server = ProvenanceServer::Start(std::move(service).value(), options);
  ASSERT_TRUE(server.ok());

  // Mixed concurrent workload: single reads (cache-eligible), batch reads
  // (cache-eligible per pair, one frame), and stats polls (neither).
  constexpr int kClients = 4;
  constexpr int kRounds = 40;
  std::atomic<uint64_t> reaches_frames{0};
  std::atomic<uint64_t> batch_frames{0};
  std::atomic<uint64_t> depends_frames{0};
  std::atomic<uint64_t> cache_lookups{0};
  std::atomic<uint64_t> failures{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      auto client =
          ProvenanceClient::Connect("127.0.0.1", (*server)->port());
      if (!client.ok()) {
        failures.fetch_add(1);
        return;
      }
      std::vector<VertexPair> pairs = {{0, 1}, {1, 2}, {2, 3}};
      for (int round = 0; round < kRounds; ++round) {
        const VertexId v = static_cast<VertexId>((c * 31 + round) % n);
        const VertexId w = static_cast<VertexId>((v * 7 + 1) % n);
        if (!client->Reaches(run, v, w).ok()) failures.fetch_add(1);
        reaches_frames.fetch_add(1);
        cache_lookups.fetch_add(1);
        if (!client->ReachesBatch(run, pairs).ok()) failures.fetch_add(1);
        batch_frames.fetch_add(1);
        cache_lookups.fetch_add(pairs.size());
        const DataItemId x = static_cast<DataItemId>(round % items);
        if (!client->DependsOn(run, x, (x + 1) % items).ok()) {
          failures.fetch_add(1);
        }
        depends_frames.fetch_add(1);
        cache_lookups.fetch_add(1);
        if (round % 10 == 0 && !client->GetServiceStats().ok()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  ASSERT_EQ(failures.load(), 0u);

  auto probe = ProvenanceClient::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(probe.ok());
  auto stats = probe->GetServiceStats();
  ASSERT_TRUE(stats.ok());
  auto text = probe->GetMetrics();
  ASSERT_TRUE(text.ok());

  // One answered frame = one histogram observation, per opcode — and the
  // queue-wait and execute histograms saw the same frames.
  EXPECT_EQ(SeriesValue(*text, "skl_server_execute_us_count{op=\"Reaches\"}"),
            reaches_frames.load());
  EXPECT_EQ(
      SeriesValue(*text, "skl_server_queue_wait_us_count{op=\"Reaches\"}"),
      reaches_frames.load());
  EXPECT_EQ(
      SeriesValue(*text, "skl_server_execute_us_count{op=\"ReachesBatch\"}"),
      batch_frames.load());
  EXPECT_EQ(
      SeriesValue(*text, "skl_server_execute_us_count{op=\"DependsOn\"}"),
      depends_frames.load());

  // The ServiceStats counters count per answered pair (a batch of 3 pairs
  // is 3 queries), matching what the clients issued.
  EXPECT_EQ(stats->reaches_queries,
            reaches_frames.load() + batch_frames.load() * 3);
  EXPECT_EQ(stats->depends_on_queries, depends_frames.load());
  EXPECT_EQ(stats->batch_calls, batch_frames.load());

  // Every cache-eligible answered query was exactly one cache lookup:
  // hits and misses partition them, nothing double-counted, nothing lost.
  EXPECT_EQ(stats->cache_hits + stats->cache_misses, cache_lookups.load());
  EXPECT_GT(stats->cache_hits, 0u);  // repeated batch pairs must hit

  // The per-shard gauges decompose the same totals.
  EXPECT_EQ(SumSeries(*text, "skl_cache_shard_hits{"), stats->cache_hits);
  EXPECT_EQ(SumSeries(*text, "skl_cache_shard_misses{"),
            stats->cache_misses);

  (*server)->Shutdown();
}

}  // namespace
}  // namespace skl
