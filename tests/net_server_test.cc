// Network query serving layer, end to end over real loopback sockets:
// remote answers must be bit-identical to direct ProvenanceService answers
// for every bundled scheme (single + batch + imported runs), concurrent
// clients must ingest and query without races (TSan leg), and no malformed
// byte stream may crash the server or poison other connections — the
// socket-level counterpart of protocol_test.cc's decoder fuzz.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/common/temp_path.h"
#include "src/core/provenance_service.h"
#include "src/io/workflow_xml.h"
#include "src/net/client.h"
#include "src/net/protocol.h"
#include "src/net/server.h"
#include "src/workload/data_generator.h"
#include "src/workload/run_generator.h"
#include "tests/test_util.h"

namespace skl {
namespace {

::skl::Run GenerateRun(const Specification& spec, uint32_t target,
                       uint64_t seed) {
  RunGenerator generator(&spec);
  RunGenOptions opt;
  opt.target_vertices = target;
  opt.seed = seed;
  auto gen = generator.Generate(opt);
  SKL_CHECK_MSG(gen.ok(), gen.status().ToString().c_str());
  return std::move(gen->run);
}

/// A tree-shaped specification for the interval scheme (which rejects spec
/// graphs with undirected cycles); same shape as snapshot_test.cc uses.
Specification MakeTreeSpec() {
  SpecificationBuilder builder;
  VertexId a = builder.AddModule("a");
  VertexId b = builder.AddModule("b");
  VertexId c = builder.AddModule("c");
  VertexId d = builder.AddModule("d");
  builder.AddEdge(a, b).AddEdge(b, c).AddEdge(c, d);
  builder.DeclareLoop({b, c});
  auto spec = std::move(builder).Build();
  SKL_CHECK_MSG(spec.ok(), spec.status().ToString().c_str());
  return std::move(spec).value();
}

/// Builds a service with three registered runs — a plain one, one with a
/// data catalog, and an imported one (export → import round trip) — then
/// serves it. Interval runs on the tree spec, everything else on the
/// running example.
std::unique_ptr<ProvenanceServer> StartServer(SpecSchemeKind kind,
                                              unsigned server_threads = 6) {
  const bool tree = kind == SpecSchemeKind::kInterval;
  Specification spec =
      tree ? MakeTreeSpec() : testing_util::MakeRunningExample().spec;
  ::skl::Run plain = GenerateRun(spec, 40, 11);
  ::skl::Run with_data = GenerateRun(spec, 60, 12);
  DataGenOptions dopt;
  dopt.seed = 5;
  DataCatalog catalog = GenerateDataCatalog(with_data, dopt);

  auto service = ProvenanceService::Create(std::move(spec), kind);
  SKL_CHECK_MSG(service.ok(), service.status().ToString().c_str());
  auto id1 = service->AddRun(plain);
  auto id2 = service->AddRun(with_data, &catalog);
  SKL_CHECK_MSG(id1.ok(), id1.status().ToString().c_str());
  SKL_CHECK_MSG(id2.ok(), id2.status().ToString().c_str());
  auto blob = service->ExportRun(*id2);
  SKL_CHECK_MSG(blob.ok(), blob.status().ToString().c_str());
  auto imported = service->ImportRun(*blob);
  SKL_CHECK_MSG(imported.ok(), imported.status().ToString().c_str());

  ProvenanceServer::Options options;
  options.num_threads = server_threads;
  auto server = ProvenanceServer::Start(std::move(service).value(), options);
  SKL_CHECK_MSG(server.ok(), server.status().ToString().c_str());
  return std::move(server).value();
}

ProvenanceClient NewClient(const ProvenanceServer& server) {
  auto client = ProvenanceClient::Connect("127.0.0.1", server.port());
  SKL_CHECK_MSG(client.ok(), client.status().ToString().c_str());
  return std::move(client).value();
}

/// Every remote answer — registry, stats, single and batch queries — must
/// be bit-identical to the direct in-process answer.
void ExpectClientMirrorsService(const ProvenanceServer& server,
                                ProvenanceClient& client) {
  const ProvenanceService& direct = server.service();
  const std::vector<RunId> ids = direct.ListRuns();
  auto remote_ids = client.ListRuns();
  ASSERT_TRUE(remote_ids.ok()) << remote_ids.status().ToString();
  ASSERT_EQ(remote_ids->size(), ids.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ((*remote_ids)[i].value(), ids[i].value());
  }

  for (RunId id : ids) {
    auto direct_stats = direct.Stats(id);
    auto remote_stats = client.Stats(id);
    ASSERT_TRUE(direct_stats.ok() && remote_stats.ok());
    EXPECT_EQ(remote_stats->num_vertices, direct_stats->num_vertices);
    EXPECT_EQ(remote_stats->num_items, direct_stats->num_items);
    EXPECT_EQ(remote_stats->label_bits, direct_stats->label_bits);
    EXPECT_EQ(remote_stats->context_bits, direct_stats->context_bits);
    EXPECT_EQ(remote_stats->origin_bits, direct_stats->origin_bits);
    EXPECT_EQ(remote_stats->num_nonempty_plus,
              direct_stats->num_nonempty_plus);
    EXPECT_EQ(remote_stats->imported, direct_stats->imported);

    const VertexId n = direct_stats->num_vertices;
    std::vector<VertexPair> pairs;
    pairs.reserve(static_cast<size_t>(n) * n);
    for (VertexId v = 0; v < n; ++v) {
      for (VertexId w = 0; w < n; ++w) pairs.push_back({v, w});
    }
    // Batch: one frame, all pairs.
    auto direct_batch = direct.ReachesBatch(id, pairs);
    auto remote_batch = client.ReachesBatch(id, pairs);
    ASSERT_TRUE(direct_batch.ok() && remote_batch.ok());
    ASSERT_EQ(*remote_batch, *direct_batch) << "run " << id.value();
    // Pipelined singles: one frame per pair, one round trip.
    auto piped = client.ReachesPipelined(id, pairs);
    ASSERT_TRUE(piped.ok()) << piped.status().ToString();
    ASSERT_EQ(*piped, *direct_batch) << "run " << id.value();
    // Exhaustive single-call spot equivalence on a diagonal band (the
    // batch above already covered every pair once).
    for (VertexId v = 0; v < n; ++v) {
      const VertexId w = n - 1 - v;
      auto direct_one = direct.Reaches(id, v, w);
      auto remote_one = client.Reaches(id, v, w);
      ASSERT_TRUE(direct_one.ok() && remote_one.ok());
      ASSERT_EQ(*remote_one, *direct_one);
    }

    const DataItemId items =
        static_cast<DataItemId>(direct_stats->num_items);
    if (items > 0) {
      std::vector<ItemPair> item_pairs;
      for (DataItemId x = 0; x < items; ++x) {
        item_pairs.push_back({x, (x * 7 + 3) % items});
      }
      auto direct_dep = direct.DependsOnBatch(id, item_pairs);
      auto remote_dep = client.DependsOnBatch(id, item_pairs);
      ASSERT_TRUE(direct_dep.ok() && remote_dep.ok());
      ASSERT_EQ(*remote_dep, *direct_dep);
      for (DataItemId x = 0; x < std::min<DataItemId>(items, 32); ++x) {
        const VertexId v = x % n;
        auto d1 = direct.ModuleDependsOnData(id, v, x);
        auto r1 = client.ModuleDependsOnData(id, v, x);
        auto d2 = direct.DataDependsOnModule(id, x, v);
        auto r2 = client.DataDependsOnModule(id, x, v);
        ASSERT_TRUE(d1.ok() && r1.ok() && d2.ok() && r2.ok());
        ASSERT_EQ(*r1, *d1);
        ASSERT_EQ(*r2, *d2);
      }
    }
  }
}

// ------------------------------------------------------------ equivalence --

TEST(NetServerTest, RemoteAnswersMatchDirectForEveryScheme) {
  for (SpecSchemeKind kind :
       {SpecSchemeKind::kTcm, SpecSchemeKind::kBfs, SpecSchemeKind::kDfs,
        SpecSchemeKind::kInterval, SpecSchemeKind::kTreeCover,
        SpecSchemeKind::kChain, SpecSchemeKind::kTwoHop}) {
    SCOPED_TRACE(SpecSchemeKindName(kind));
    auto server = StartServer(kind);
    ProvenanceClient client = NewClient(*server);
    ASSERT_TRUE(client.Ping().ok());
    ExpectClientMirrorsService(*server, client);
    server->Shutdown();
  }
}

TEST(NetServerTest, RemoteIngestionMatchesDirectIngestion) {
  auto ex = testing_util::MakeRunningExample();
  const std::string run_xml = WriteRunXml(ex.run);
  auto server = StartServer(SpecSchemeKind::kTcm);
  ProvenanceClient client = NewClient(*server);

  auto added = client.AddRunXml(run_xml);
  ASSERT_TRUE(added.ok()) << added.status().ToString();
  // The remote ingestion labeled the same run the direct path would; the
  // service now answers for it in-process and over the wire identically.
  const ProvenanceService& direct = server->service();
  ASSERT_TRUE(direct.Contains(*added));
  const VertexId n = ex.run.num_vertices();
  for (VertexId v = 0; v < n; ++v) {
    auto remote = client.Reaches(*added, v, n - 1 - v);
    auto local = direct.Reaches(*added, v, n - 1 - v);
    ASSERT_TRUE(remote.ok() && local.ok());
    ASSERT_EQ(*remote, *local);
  }

  // Export over the wire, re-import over the wire: a third identical run.
  auto blob = client.ExportRun(*added);
  ASSERT_TRUE(blob.ok());
  auto reimported = client.ImportRun(*blob);
  ASSERT_TRUE(reimported.ok());
  auto stats = client.Stats(*reimported);
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats->imported);
  auto a = client.Reaches(*added, 0, n - 1);
  auto b = client.Reaches(*reimported, 0, n - 1);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(*a, *b);

  // RemoveRun makes the handle stale remotely, exactly as in-process.
  ASSERT_TRUE(client.RemoveRun(*reimported).ok());
  auto gone = client.Reaches(*reimported, 0, 0);
  ASSERT_FALSE(gone.ok());
  EXPECT_EQ(gone.status().code(), StatusCode::kNotFound);
}

// ------------------------------------------------------------ error model --

TEST(NetServerTest, ServiceErrorCodesSurviveTheWire) {
  auto server = StartServer(SpecSchemeKind::kTcm);
  ProvenanceClient client = NewClient(*server);

  auto unknown_run = client.Reaches(RunId::FromValue(999), 0, 0);
  ASSERT_FALSE(unknown_run.ok());
  EXPECT_EQ(unknown_run.status().code(), StatusCode::kNotFound);

  auto ids = client.ListRuns();
  ASSERT_TRUE(ids.ok());
  auto out_of_range = client.Reaches((*ids)[0], 0, 100000);
  ASSERT_FALSE(out_of_range.ok());
  EXPECT_EQ(out_of_range.status().code(), StatusCode::kInvalidArgument);

  auto bad_xml = client.AddRunXml("<not-a-run>");
  ASSERT_FALSE(bad_xml.ok());
  EXPECT_EQ(bad_xml.status().code(), StatusCode::kParseError);

  auto bad_blob = client.ImportRun({1, 2, 3});
  ASSERT_FALSE(bad_blob.ok());
  EXPECT_EQ(bad_blob.status().code(), StatusCode::kParseError);

  // Errors are per-request: the connection keeps serving afterwards.
  EXPECT_TRUE(client.Ping().ok());
  server->Shutdown();
}

TEST(NetServerTest, PipelinedErrorsDrainAndTheConnectionSurvives) {
  auto server = StartServer(SpecSchemeKind::kTcm);
  ProvenanceClient client = NewClient(*server);
  std::vector<VertexPair> pairs = {{0, 1}, {0, 2}};
  auto bad = client.ReachesPipelined(RunId::FromValue(999), pairs);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kNotFound);
  // Both in-flight errors were drained; the next call is clean.
  EXPECT_TRUE(client.Ping().ok());
}

// ----------------------------------------------------- malformed networks --

/// A raw TCP connection for speaking deliberately broken protocol.
class RawConn {
 public:
  explicit RawConn(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    SKL_CHECK(fd_ >= 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    SKL_CHECK(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr) == 1);
    SKL_CHECK(::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                        sizeof(addr)) == 0);
  }
  ~RawConn() { ::close(fd_); }

  void Send(std::span<const uint8_t> bytes) {
    size_t off = 0;
    while (off < bytes.size()) {
      ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off,
                         MSG_NOSIGNAL);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return;  // peer already gone: the test still proceeds
      off += static_cast<size_t>(n);
    }
  }

  void FinishWrites() { ::shutdown(fd_, SHUT_WR); }

  /// Reads until the server closes. Terminates because every malformed
  /// input path ends in a server-side close once our write side is shut.
  std::vector<uint8_t> ReadUntilEof() {
    std::vector<uint8_t> all;
    uint8_t buf[4096];
    for (;;) {
      ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return all;
      all.insert(all.end(), buf, buf + n);
    }
  }

  int fd() const { return fd_; }

 private:
  int fd_ = -1;
};

std::vector<uint8_t> EncodeOne(Frame frame) {
  std::vector<uint8_t> bytes;
  EncodeFrame(frame, &bytes);
  return bytes;
}

/// A current-version ping: v5 request payloads end with the trace-id
/// varint, even when there is nothing else to say.
Frame PingFrame(uint64_t request_id, uint64_t trace_id = 0) {
  PayloadWriter payload;
  payload.U64(trace_id);
  return Frame{kProtocolVersion, MsgType::kPing, request_id,
               std::move(payload).Finish()};
}

TEST(NetServerTest, CorruptionAtEveryByteGetsAnErrorNeverACrash) {
  auto server = StartServer(SpecSchemeKind::kTcm);
  Frame request;
  request.type = MsgType::kReaches;
  request.request_id = 1;
  PayloadWriter payload;
  payload.U64(1);
  payload.U64(0);
  payload.U64(1);
  payload.U64(0);  // v3+ read-LSN token
  payload.U64(0);  // v5 trace id
  request.payload = std::move(payload).Finish();
  const std::vector<uint8_t> wire = EncodeOne(request);

  for (size_t i = 0; i < wire.size(); ++i) {
    SCOPED_TRACE("corrupted byte " + std::to_string(i));
    std::vector<uint8_t> corrupted = wire;
    corrupted[i] ^= 0xFF;
    RawConn conn(server->port());
    conn.Send(corrupted);
    conn.FinishWrites();
    const std::vector<uint8_t> response = conn.ReadUntilEof();
    // Either the server detected the corruption and answered a descriptive
    // error frame, or the bytes were an incomplete frame (inflated length
    // prefix) and the connection just closed. Any frame that did come back
    // must be a well-formed kError — never a kReply conjured from noise.
    FrameDecoder decoder;
    decoder.Feed(response);
    size_t frames = 0;
    for (;;) {
      auto next = decoder.Next();
      ASSERT_TRUE(next.ok()) << next.status().ToString();
      if (!next->has_value()) break;
      ++frames;
      EXPECT_EQ((*next)->type, MsgType::kError);
      Status carried = DecodeErrorPayload((*next)->payload);
      EXPECT_FALSE(carried.ok());
      EXPECT_FALSE(carried.message().empty());
    }
    EXPECT_LE(frames, 1u);
  }

  // After the whole fuzz sweep the server still serves fresh connections.
  ProvenanceClient client = NewClient(*server);
  EXPECT_TRUE(client.Ping().ok());
  server->Shutdown();
}

TEST(NetServerTest, TruncationAtEveryPrefixNeverCrashesOrAnswers) {
  auto server = StartServer(SpecSchemeKind::kTcm);
  const std::vector<uint8_t> wire =
      EncodeOne(Frame{kProtocolVersion, MsgType::kListRuns, 1, {}});
  for (size_t len = 0; len < wire.size(); ++len) {
    SCOPED_TRACE("prefix of " + std::to_string(len) + " bytes");
    RawConn conn(server->port());
    conn.Send({wire.data(), len});
    conn.FinishWrites();
    // An incomplete frame gets no response — and must not produce one.
    EXPECT_TRUE(conn.ReadUntilEof().empty());
  }
  ProvenanceClient client = NewClient(*server);
  EXPECT_TRUE(client.Ping().ok());
  server->Shutdown();
}

TEST(NetServerTest, MalformedPayloadKeepsTheConnectionAlive) {
  auto server = StartServer(SpecSchemeKind::kTcm);
  // Frame-level intact (magic, length, CRC all valid) but the payload is
  // not a Reaches request shape: run id only, vertices missing.
  Frame malformed;
  malformed.type = MsgType::kReaches;
  malformed.request_id = 1;
  PayloadWriter payload;
  payload.U64(1);
  malformed.payload = std::move(payload).Finish();

  RawConn conn(server->port());
  conn.Send(EncodeOne(malformed));
  conn.Send(EncodeOne(PingFrame(2)));
  conn.FinishWrites();
  const std::vector<uint8_t> response = conn.ReadUntilEof();

  FrameDecoder decoder;
  decoder.Feed(response);
  auto first = decoder.Next();
  ASSERT_TRUE(first.ok() && first->has_value());
  EXPECT_EQ((*first)->type, MsgType::kError);
  EXPECT_EQ((*first)->request_id, 1u);
  // An in-range v5 request gets the v5 error shape (trailing trace id).
  uint64_t trace = ~0ull;
  Status carried = DecodeErrorPayload((*first)->payload, &trace);
  EXPECT_EQ(trace, 0u);  // the malformed request never got to its trace
  EXPECT_EQ(carried.code(), StatusCode::kParseError);
  EXPECT_NE(carried.message().find("Reaches"), std::string::npos)
      << carried.ToString();
  // The same connection answered the follow-up ping: per-request errors do
  // not cost the connection.
  auto second = decoder.Next();
  ASSERT_TRUE(second.ok() && second->has_value());
  EXPECT_EQ((*second)->type, MsgType::kReply);
  EXPECT_EQ((*second)->request_id, 2u);
  server->Shutdown();
}

TEST(NetServerTest, UnknownOpcodeAndWrongVersionGetDescriptiveErrors) {
  auto server = StartServer(SpecSchemeKind::kTcm);
  {
    RawConn conn(server->port());
    conn.Send(EncodeOne(Frame{kProtocolVersion, static_cast<MsgType>(60), 1,
                              {}}));
    conn.Send(EncodeOne(PingFrame(2)));
    conn.FinishWrites();
    FrameDecoder decoder;
    decoder.Feed(conn.ReadUntilEof());
    auto first = decoder.Next();
    ASSERT_TRUE(first.ok() && first->has_value());
    EXPECT_EQ((*first)->type, MsgType::kError);
    auto second = decoder.Next();
    ASSERT_TRUE(second.ok() && second->has_value());
    EXPECT_EQ((*second)->type, MsgType::kReply);
  }
  {
    RawConn conn(server->port());
    conn.Send(EncodeOne(
        Frame{kProtocolVersion + 5, MsgType::kPing, 1, {}}));
    conn.FinishWrites();
    FrameDecoder decoder;
    decoder.Feed(conn.ReadUntilEof());
    auto first = decoder.Next();
    ASSERT_TRUE(first.ok() && first->has_value());
    EXPECT_EQ((*first)->type, MsgType::kError);
    Status carried = DecodeErrorPayload((*first)->payload);
    EXPECT_NE(carried.message().find("version"), std::string::npos);
  }
  server->Shutdown();
}

TEST(NetServerTest, VersionCrossesGetMatchingRepliesOrDescriptiveErrors) {
  auto server = StartServer(SpecSchemeKind::kTcm);
  {
    // A v2 client against this v5 server: still served, and the reply is
    // stamped v2 so the old client's own version check passes. A v2
    // ListRuns carries no read-LSN token and its reply must not carry LSN
    // fields either — it decodes as exactly {count, count × id}.
    RawConn conn(server->port());
    conn.Send(EncodeOne(Frame{kMinSupportedProtocolVersion, MsgType::kPing,
                              1, {}}));
    conn.Send(EncodeOne(Frame{kMinSupportedProtocolVersion,
                              MsgType::kListRuns, 2, {}}));
    conn.FinishWrites();
    FrameDecoder decoder;
    decoder.Feed(conn.ReadUntilEof());
    auto ping = decoder.Next();
    ASSERT_TRUE(ping.ok() && ping->has_value());
    EXPECT_EQ((*ping)->type, MsgType::kReply);
    EXPECT_EQ((*ping)->version, kMinSupportedProtocolVersion);
    auto list = decoder.Next();
    ASSERT_TRUE(list.ok() && list->has_value());
    EXPECT_EQ((*list)->type, MsgType::kReply);
    EXPECT_EQ((*list)->version, kMinSupportedProtocolVersion);
    PayloadReader reader((*list)->payload);
    auto count = reader.U64();
    ASSERT_TRUE(count.ok());
    EXPECT_EQ(*count, 3u);  // StartServer pre-ingests three runs
    for (uint64_t want = 1; want <= 3; ++want) {
      auto id = reader.U64();
      ASSERT_TRUE(id.ok());
      EXPECT_EQ(*id, want);
    }
    EXPECT_TRUE(reader.ExpectEnd().ok());
  }
  {
    // The trace-less middle versions: a v3 or v4 Reaches carries the read
    // token but no trace id, and must get a plain boolean answer stamped
    // with the requester's version — exactly what a pre-observability
    // client expects.
    for (uint8_t version : {uint8_t{3}, uint8_t{4}}) {
      SCOPED_TRACE("version " + std::to_string(version));
      PayloadWriter payload;
      payload.U64(1);  // run
      payload.U64(0);  // v
      payload.U64(1);  // w
      payload.U64(0);  // v3 read-LSN token — and nothing after it
      RawConn conn(server->port());
      conn.Send(EncodeOne(Frame{version, MsgType::kReaches, 1,
                                std::move(payload).Finish()}));
      conn.Send(EncodeOne(Frame{version, MsgType::kPing, 2, {}}));
      conn.FinishWrites();
      FrameDecoder decoder;
      decoder.Feed(conn.ReadUntilEof());
      auto answer = decoder.Next();
      ASSERT_TRUE(answer.ok() && answer->has_value());
      EXPECT_EQ((*answer)->type, MsgType::kReply);
      EXPECT_EQ((*answer)->version, version);
      PayloadReader reader((*answer)->payload);
      auto value = reader.U64();
      ASSERT_TRUE(value.ok());
      EXPECT_LE(*value, 1u);  // a bare boolean, no trailing fields
      EXPECT_TRUE(reader.ExpectEnd().ok());
      auto ping = decoder.Next();
      ASSERT_TRUE(ping.ok() && ping->has_value());
      EXPECT_EQ((*ping)->type, MsgType::kReply);
      EXPECT_EQ((*ping)->version, version);
    }
  }
  {
    // A client from the future: the error names both its version and the
    // range this server speaks, so an operator reading one log line knows
    // which side to upgrade.
    RawConn conn(server->port());
    conn.Send(EncodeOne(Frame{kProtocolVersion + 1, MsgType::kPing, 1, {}}));
    conn.FinishWrites();
    FrameDecoder decoder;
    decoder.Feed(conn.ReadUntilEof());
    auto first = decoder.Next();
    ASSERT_TRUE(first.ok() && first->has_value());
    EXPECT_EQ((*first)->type, MsgType::kError);
    Status carried = DecodeErrorPayload((*first)->payload);
    EXPECT_EQ(carried.code(), StatusCode::kInvalidArgument);
    EXPECT_NE(carried.message().find(std::to_string(kProtocolVersion + 1)),
              std::string::npos)
        << carried.ToString();
    EXPECT_NE(carried.message().find(std::to_string(kProtocolVersion)),
              std::string::npos)
        << carried.ToString();
    EXPECT_NE(
        carried.message().find(std::to_string(kMinSupportedProtocolVersion)),
        std::string::npos)
        << carried.ToString();
  }
  {
    // One below the supported floor is refused the same way.
    RawConn conn(server->port());
    conn.Send(EncodeOne(Frame{kMinSupportedProtocolVersion - 1,
                              MsgType::kPing, 1, {}}));
    conn.FinishWrites();
    FrameDecoder decoder;
    decoder.Feed(conn.ReadUntilEof());
    auto first = decoder.Next();
    ASSERT_TRUE(first.ok() && first->has_value());
    EXPECT_EQ((*first)->type, MsgType::kError);
    Status carried = DecodeErrorPayload((*first)->payload);
    EXPECT_EQ(carried.code(), StatusCode::kInvalidArgument);
    EXPECT_NE(carried.message().find("version"), std::string::npos);
  }
  server->Shutdown();
}

// ---------------------------------------------------------- observability --

TEST(NetServerTest, ErrorRepliesEchoTheClientTraceId) {
  auto server = StartServer(SpecSchemeKind::kTcm);
  // A v5 Reaches against a run that does not exist, traced as 77: the
  // error reply must carry the Status AND echo the trace id, so a client
  // log line and a server slow-query line join on one token.
  PayloadWriter payload;
  payload.U64(999);  // no such run
  payload.U64(0);
  payload.U64(0);
  payload.U64(0);   // read-LSN token
  payload.U64(77);  // trace id
  RawConn conn(server->port());
  conn.Send(EncodeOne(Frame{kProtocolVersion, MsgType::kReaches, 1,
                            std::move(payload).Finish()}));
  conn.FinishWrites();
  FrameDecoder decoder;
  decoder.Feed(conn.ReadUntilEof());
  auto first = decoder.Next();
  ASSERT_TRUE(first.ok() && first->has_value());
  EXPECT_EQ((*first)->type, MsgType::kError);
  uint64_t trace = 0;
  Status carried = DecodeErrorPayload((*first)->payload, &trace);
  EXPECT_EQ(carried.code(), StatusCode::kNotFound);
  EXPECT_EQ(trace, 77u);
  server->Shutdown();
}

TEST(NetServerTest, SlowQueryLogRecordsTracedRequestsWithTiming) {
  Specification spec = testing_util::MakeRunningExample().spec;
  ::skl::Run run = GenerateRun(spec, 40, 11);
  auto service = ProvenanceService::Create(std::move(spec),
                                           SpecSchemeKind::kTcm);
  ASSERT_TRUE(service.ok());
  ASSERT_TRUE(service->AddRun(run).ok());
  ProvenanceServer::Options options;
  options.slow_query_threshold_us = 1;  // everything is "slow"
  auto server = ProvenanceServer::Start(std::move(service).value(), options);
  ASSERT_TRUE(server.ok());

  ProvenanceClient client = NewClient(**server);
  client.set_trace_id(42);
  ASSERT_TRUE(client.Reaches(RunId::FromValue(1), 0, 1).ok());
  ASSERT_TRUE(client.Ping().ok());

  auto entries = client.SlowQueries();
  ASSERT_TRUE(entries.ok()) << entries.status().ToString();
  bool found = false;
  for (const SlowQueryEntry& e : *entries) {
    if (e.opcode != static_cast<uint8_t>(MsgType::kReaches)) continue;
    found = true;
    EXPECT_EQ(e.trace_id, 42u);
    EXPECT_EQ(e.run_id, 1u);
    EXPECT_GT(e.exec_us + e.queue_us, 0u);
  }
  EXPECT_TRUE(found) << entries->size() << " entries, none for kReaches";

  // The scrape agrees: the per-opcode execute histogram observed exactly
  // the one Reaches request the counter counted.
  auto text = client.GetMetrics();
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_NE(text->find("# TYPE skl_server_execute_us histogram"),
            std::string::npos);
  EXPECT_NE(text->find("skl_server_execute_us_count{op=\"Reaches\"} 1"),
            std::string::npos)
      << *text;
  (*server)->Shutdown();
}

TEST(NetServerTest, SlowQueryLogStaysDisabledWithoutAThreshold) {
  auto server = StartServer(SpecSchemeKind::kTcm);  // threshold 0 = off
  ProvenanceClient client = NewClient(*server);
  ASSERT_TRUE(client.Reaches(RunId::FromValue(1), 0, 1).ok());
  auto entries = client.SlowQueries();
  ASSERT_TRUE(entries.ok());
  EXPECT_TRUE(entries->empty());
  server->Shutdown();
}

// ------------------------------------------------------------ concurrency --

TEST(NetServerTest, FourConcurrentClientsIngestAndQueryRaceFree) {
  auto ex = testing_util::MakeRunningExample();
  const std::string run_xml = WriteRunXml(ex.run);
  const VertexId n = ex.run.num_vertices();
  auto server = StartServer(SpecSchemeKind::kTcm, /*server_threads=*/6);

  constexpr int kClients = 4;
  constexpr int kRounds = 8;
  std::atomic<size_t> failures{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&] {
      auto client = ProvenanceClient::Connect("127.0.0.1", server->port());
      if (!client.ok()) {
        failures.fetch_add(1);
        return;
      }
      std::vector<VertexPair> pairs;
      for (VertexId v = 0; v < n; ++v) pairs.push_back({v, n - 1 - v});
      for (int round = 0; round < kRounds; ++round) {
        auto id = client->AddRunXml(run_xml);
        if (!id.ok()) {
          failures.fetch_add(1);
          return;
        }
        auto batch = client->ReachesBatch(*id, pairs);
        auto single = client->Reaches(*id, 0, n - 1);
        auto blob = client->ExportRun(*id);
        if (!batch.ok() || !single.ok() || !blob.ok() ||
            (*batch)[0] != *client->Reaches(*id, 0, n - 1)) {
          failures.fetch_add(1);
          return;
        }
        auto imported = client->ImportRun(*blob);
        if (!imported.ok() || !client->RemoveRun(*imported).ok()) {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0u);

  // Every ingestion and removal is visible in the cumulative counters.
  const ServiceStats stats = server->service().service_stats();
  const uint64_t expected_adds =
      3 + static_cast<uint64_t>(kClients) * kRounds * 2;  // 3 at StartServer
  EXPECT_EQ(stats.runs_ingested, expected_adds);
  EXPECT_EQ(stats.runs_removed,
            static_cast<uint64_t>(kClients) * kRounds);
  EXPECT_EQ(stats.num_runs, expected_adds - stats.runs_removed);
  server->Shutdown();
}

// ------------------------------------------- counters, snapshots, lifecycle --

TEST(NetServerTest, ServiceStatsRpcCountsServedQueries) {
  auto server = StartServer(SpecSchemeKind::kTcm);
  ProvenanceClient client = NewClient(*server);
  auto before = client.GetServiceStats();
  ASSERT_TRUE(before.ok());
  auto ids = client.ListRuns();
  ASSERT_TRUE(ids.ok());

  ASSERT_TRUE(client.Reaches((*ids)[0], 0, 1).ok());
  ASSERT_TRUE(client.Reaches((*ids)[0], 1, 0).ok());
  std::vector<VertexPair> pairs = {{0, 1}, {1, 2}, {2, 3}};
  ASSERT_TRUE(client.ReachesBatch((*ids)[0], pairs).ok());

  auto after = client.GetServiceStats();
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->reaches_queries - before->reaches_queries, 2u + 3u);
  EXPECT_EQ(after->batch_calls - before->batch_calls, 1u);
  EXPECT_EQ(after->num_runs, 3u);
  EXPECT_EQ(after->runs_ingested, 3u);
  EXPECT_EQ(after->runs_imported, 1u);
  // The result-cache counters travel the wire too (protocol v2): the five
  // answered pairs above were all cache lookups on the default-enabled
  // cache, and the repeated (0, 1) query must have produced a hit.
  EXPECT_EQ((after->cache_hits + after->cache_misses) -
                (before->cache_hits + before->cache_misses),
            2u + 3u);
  EXPECT_GT(after->cache_hits, before->cache_hits);
  server->Shutdown();
}

TEST(NetServerTest, SnapshotSaveAndLoadOverTheWire) {
  const std::string path =
      PidQualifiedTempPath("skl_net_server_test_snapshot", ".skls");
  auto server = StartServer(SpecSchemeKind::kTcm);
  ProvenanceClient client = NewClient(*server);
  auto ids_before = client.ListRuns();
  ASSERT_TRUE(ids_before.ok());

  ASSERT_TRUE(client.SaveSnapshot(path).ok());
  // Mutate past the snapshot, then restore it: the registry rolls back.
  auto ex = testing_util::MakeRunningExample();
  auto extra = client.AddRunXml(WriteRunXml(ex.run));
  ASSERT_TRUE(extra.ok());
  ASSERT_EQ(client.ListRuns()->size(), ids_before->size() + 1);

  ASSERT_TRUE(client.LoadSnapshot(path).ok());
  auto ids_after = client.ListRuns();
  ASSERT_TRUE(ids_after.ok());
  ASSERT_EQ(ids_after->size(), ids_before->size());
  for (size_t i = 0; i < ids_before->size(); ++i) {
    EXPECT_EQ((*ids_after)[i].value(), (*ids_before)[i].value());
  }
  // The pinned-down ServiceStats contract (docs/NETWORK.md): the swap
  // installs a fresh registry AND fresh counters — cumulative counters
  // describe the served lifetime of one registry, so they reset to zero on
  // load; only the point-in-time num_runs reflects the restored registry.
  auto reset = client.GetServiceStats();
  ASSERT_TRUE(reset.ok());
  EXPECT_EQ(reset->num_runs, ids_before->size());
  EXPECT_EQ(reset->reaches_queries, 0u);
  EXPECT_EQ(reset->runs_ingested, 0u);
  EXPECT_EQ(reset->runs_removed, 0u);
  EXPECT_EQ(reset->snapshot_saves, 0u);
  EXPECT_EQ(reset->cache_hits, 0u);
  EXPECT_EQ(reset->cache_misses, 0u);
  // Post-swap traffic counts from zero on the restored registry.
  ASSERT_TRUE(client.Reaches((*ids_after)[0], 0, 1).ok());
  auto counted = client.GetServiceStats();
  ASSERT_TRUE(counted.ok());
  EXPECT_EQ(counted->reaches_queries, 1u);
  // Loading a nonexistent path is a remote error, not a dead server.
  auto missing = client.LoadSnapshot("/nonexistent/missing.skls");
  EXPECT_FALSE(missing.ok());
  EXPECT_TRUE(client.Ping().ok());

  server->Shutdown();
  std::error_code ec;
  std::filesystem::remove(path, ec);
}

TEST(NetServerTest, ShutdownFrameDrainsTheServer) {
  auto server = StartServer(SpecSchemeKind::kTcm);
  const uint16_t port = server->port();
  ProvenanceClient client = NewClient(*server);
  ASSERT_TRUE(client.Ping().ok());
  // The shutdown response itself must arrive (reply before drain).
  ASSERT_TRUE(client.Shutdown().ok());
  server->Wait();
  // The listener is gone: new connections are refused.
  auto refused = ProvenanceClient::Connect("127.0.0.1", port);
  EXPECT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kUnavailable);
  // Idempotent from the owner's side too.
  server->Shutdown();
}

std::unique_ptr<ProvenanceServer> StartServerWithIdleTimeout(
    uint64_t idle_timeout_ms) {
  Specification spec = testing_util::MakeRunningExample().spec;
  auto service = ProvenanceService::Create(std::move(spec),
                                           SpecSchemeKind::kTcm);
  SKL_CHECK_MSG(service.ok(), service.status().ToString().c_str());
  ProvenanceServer::Options options;
  options.idle_timeout_ms = idle_timeout_ms;
  auto server = ProvenanceServer::Start(std::move(service).value(), options);
  SKL_CHECK_MSG(server.ok(), server.status().ToString().c_str());
  return std::move(server).value();
}

TEST(NetServerTest, IdleConnectionPastTimeoutIsClosedAndCounted) {
  auto server = StartServerWithIdleTimeout(150);
  RawConn idle(server->port());
  // Never write a byte: the reaper must close the connection from its side
  // (ReadUntilEof returns without us shutting our write half) and the
  // close must be attributed to the timeout, not to an error.
  const auto start = std::chrono::steady_clock::now();
  const std::vector<uint8_t> response = idle.ReadUntilEof();
  const auto waited = std::chrono::steady_clock::now() - start;
  EXPECT_TRUE(response.empty());
  EXPECT_GE(waited, std::chrono::milliseconds(100));
  EXPECT_LT(waited, std::chrono::seconds(10));
  EXPECT_GE(server->reactor_stats().connections_timed_out, 1u);
  // The counter also travels the wire: a fresh (briefly-lived) client sees
  // it in the stats RPC.
  ProvenanceClient client = NewClient(*server);
  auto stats = client.GetServiceStats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GE(stats->connections_timed_out, 1u);
  server->Shutdown();
}

TEST(NetServerTest, SlowButLiveFrameSurvivesTheIdleTimeout) {
  auto server = StartServerWithIdleTimeout(150);
  RawConn conn(server->port());
  const std::vector<uint8_t> wire = EncodeOne(PingFrame(7));
  // Drip the frame one byte every 50 ms: the connection spends far longer
  // than the 150 ms budget half-way through a frame, but each byte is
  // activity — the reaper must never count it as idle.
  for (uint8_t byte : wire) {
    conn.Send({&byte, 1});
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  conn.FinishWrites();
  const std::vector<uint8_t> response = conn.ReadUntilEof();
  FrameDecoder decoder;
  decoder.Feed(response);
  auto next = decoder.Next();
  ASSERT_TRUE(next.ok());
  ASSERT_TRUE(next->has_value());
  EXPECT_EQ((*next)->type, MsgType::kReply);
  EXPECT_EQ((*next)->request_id, 7u);
  EXPECT_EQ(server->reactor_stats().connections_timed_out, 0u);
  server->Shutdown();
}

}  // namespace
}  // namespace skl
