// Concurrency stress for the sharded run registry and its per-shard result
// cache, written to run under the CI ThreadSanitizer leg: 4 writer threads
// (AddRun / ImportRun / RemoveRun churn) and 4 reader threads (single +
// batch queries verified against precomputed answers) hammer one service,
// first with every id colliding on a single shard, then striped over many
// — while a swapper thread replaces the whole service with a
// LoadSnapshot-restored one mid-flight, using exactly the shared_mutex
// swap discipline of ProvenanceServer's kLoadSnapshot handler. Readers
// must keep observing bit-identical answers for the stable runs across
// the swap (the snapshot contains them with the same ids and labels), and
// no interleaving may produce a torn cache answer, a lost run, or a TSan
// report.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/common/temp_path.h"
#include "src/core/provenance_service.h"
#include "src/workload/query_generator.h"
#include "src/workload/run_generator.h"
#include "tests/test_util.h"

namespace skl {
namespace {

constexpr int kWriters = 4;
constexpr int kReaders = 4;
constexpr int kReaderRounds = 60;
constexpr int kWriterRounds = 40;

::skl::Run GenerateRun(const Specification& spec, uint32_t target,
                       uint64_t seed) {
  RunGenerator generator(&spec);
  RunGenOptions opt;
  opt.target_vertices = target;
  opt.seed = seed;
  auto gen = generator.Generate(opt);
  SKL_CHECK_MSG(gen.ok(), gen.status().ToString().c_str());
  return std::move(gen->run);
}

/// One full stress round at the given shard count. num_shards = 1 forces
/// every run — stable and churned — onto one shard (maximal lock and cache
/// collision); larger counts exercise genuine striping.
void StressWithShards(size_t num_shards) {
  SCOPED_TRACE("num_shards=" + std::to_string(num_shards));
  Specification spec = testing_util::MakeRunningExample().spec;

  ProvenanceService::Options options;
  options.num_shards = num_shards;
  options.cache_slots = 128;  // small: constant eviction + seqlock traffic
  auto created =
      ProvenanceService::Create(std::move(spec), SpecSchemeKind::kTcm,
                                options);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  ProvenanceService service = std::move(created).value();

  // Stable runs: ingested before any thread starts, never removed, and
  // part of the snapshot — their answers are the invariant readers check
  // on both sides of the swap.
  constexpr size_t kStableRuns = 4;
  std::vector<::skl::Run> stable;
  std::vector<RunId> stable_ids;
  std::vector<std::vector<VertexPair>> queries;
  std::vector<std::vector<bool>> expected;
  for (size_t i = 0; i < kStableRuns; ++i) {
    stable.push_back(GenerateRun(service.spec(), 60 + 15 * i, 41 + i));
    auto id = service.AddRun(stable.back());
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    stable_ids.push_back(*id);
    queries.push_back(
        GenerateQueries(stable.back().num_vertices(), 400, 500 + i));
    auto answers = service.ReachesBatch(*id, queries.back());
    ASSERT_TRUE(answers.ok());
    expected.push_back(*answers);
  }

  // Churn material for the writers, plus an import blob.
  ::skl::Run churn_run = GenerateRun(service.spec(), 50, 99);
  auto blob_source = service.AddRun(churn_run);
  ASSERT_TRUE(blob_source.ok());
  auto blob = service.ExportRun(*blob_source);
  ASSERT_TRUE(blob.ok());
  ASSERT_TRUE(service.RemoveRun(*blob_source).ok());

  const std::string snapshot_path = PidQualifiedTempPath(
      "skl_registry_stress_" + std::to_string(num_shards), ".skls");
  ASSERT_TRUE(service.SaveSnapshot(snapshot_path).ok());

  // The server's swap discipline: every service call under a shared lock,
  // the LoadSnapshot swap under the unique lock (src/net/server.cc,
  // kLoadSnapshot). `service` itself is internally synchronized; this
  // outer lock only protects the move-assignment.
  std::shared_mutex swap_mu;
  std::atomic<size_t> failures{0};
  std::atomic<int> swaps_done{0};

  std::vector<std::thread> threads;
  for (int t = 0; t < kReaders; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < kReaderRounds; ++round) {
        const size_t i = (static_cast<size_t>(t) + round) % kStableRuns;
        std::shared_lock lock(swap_mu);
        if (t % 2 == 0) {
          auto answers = service.ReachesBatch(stable_ids[i], queries[i]);
          if (!answers.ok() || *answers != expected[i]) {
            failures.fetch_add(1);
            return;
          }
        } else {
          for (size_t q = 0; q < queries[i].size(); q += 7) {
            auto r = service.Reaches(stable_ids[i], queries[i][q].first,
                                     queries[i][q].second);
            if (!r.ok() || *r != expected[i][q]) {
              failures.fetch_add(1);
              return;
            }
          }
        }
      }
    });
  }
  for (int t = 0; t < kWriters; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < kWriterRounds; ++round) {
        std::shared_lock lock(swap_mu);
        Result<RunId> id = (t % 2 == 0) ? service.AddRun(churn_run)
                                        : service.ImportRun(*blob);
        if (!id.ok()) {
          failures.fetch_add(1);
          return;
        }
        // Query the freshly added run once (warming its shard's cache),
        // then retire it. The swap may have replaced the registry between
        // our Add and Remove: NotFound is then the *correct* outcome for
        // both calls, not a failure.
        auto self = service.Reaches(*id, 0, 0);
        if (self.ok() && !*self) {
          failures.fetch_add(1);  // reflexive reachability broken
          return;
        }
        Status removed = service.RemoveRun(*id);
        if (!removed.ok() && removed.code() != StatusCode::kNotFound) {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }
  // The swapper: two mid-flight service replacements from the snapshot.
  threads.emplace_back([&] {
    for (int s = 0; s < 2; ++s) {
      auto loaded = ProvenanceService::LoadSnapshot(snapshot_path, options);
      if (!loaded.ok()) {
        failures.fetch_add(1);
        return;
      }
      std::unique_lock lock(swap_mu);
      service = std::move(loaded).value();
      swaps_done.fetch_add(1);
    }
  });
  for (std::thread& th : threads) th.join();

  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ(swaps_done.load(), 2);
  // Post-swap sanity: the stable runs answer exactly as before, cold
  // caches and all, and the restored stats counters started afresh
  // relative to the pre-swap traffic (only post-swap ops are visible).
  for (size_t i = 0; i < kStableRuns; ++i) {
    auto answers = service.ReachesBatch(stable_ids[i], queries[i]);
    ASSERT_TRUE(answers.ok()) << answers.status().ToString();
    EXPECT_EQ(*answers, expected[i]);
  }
  const ServiceStats stats = service.service_stats();
  EXPECT_EQ(stats.snapshot_saves, 0u)
      << "counters must reset across LoadSnapshot";

  std::error_code ec;
  std::filesystem::remove(snapshot_path, ec);
}

TEST(RegistryStressTest, CollidingShardsSurviveChurnAndSwap) {
  StressWithShards(1);
}

TEST(RegistryStressTest, StripedShardsSurviveChurnAndSwap) {
  StressWithShards(16);
}

}  // namespace
}  // namespace skl
