// Tests for the minimal XML parser/writer.
#include <gtest/gtest.h>

#include "src/io/xml.h"

namespace skl {
namespace {

TEST(XmlParseTest, SimpleDocument) {
  auto r = ParseXml("<root a=\"1\"><child b=\"x\"/><child b=\"y\"/></root>");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->name, "root");
  ASSERT_NE(r->FindAttribute("a"), nullptr);
  EXPECT_EQ(*r->FindAttribute("a"), "1");
  EXPECT_EQ(r->FindAttribute("zz"), nullptr);
  auto kids = r->FindChildren("child");
  ASSERT_EQ(kids.size(), 2u);
  EXPECT_EQ(*kids[1]->FindAttribute("b"), "y");
  EXPECT_NE(r->FindChild("child"), nullptr);
  EXPECT_EQ(r->FindChild("nope"), nullptr);
}

TEST(XmlParseTest, DeclarationAndComments) {
  auto r = ParseXml(
      "<?xml version=\"1.0\"?>\n<!-- hello -->\n"
      "<root><!-- inner --><x/></root>\n<!-- trailing -->");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->children.size(), 1u);
}

TEST(XmlParseTest, TextContent) {
  auto r = ParseXml("<root>hello &amp; goodbye</root>");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->text, "hello & goodbye");
}

TEST(XmlParseTest, Entities) {
  auto r = ParseXml("<root a=\"&lt;&gt;&quot;&apos;&amp;\"/>");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r->FindAttribute("a"), "<>\"'&");
}

TEST(XmlParseTest, SingleQuotedAttributes) {
  auto r = ParseXml("<root a='va'/>");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r->FindAttribute("a"), "va");
}

TEST(XmlParseTest, NestedElements) {
  auto r = ParseXml("<a><b><c deep=\"1\"/></b></a>");
  ASSERT_TRUE(r.ok());
  const XmlNode* b = r->FindChild("b");
  ASSERT_NE(b, nullptr);
  const XmlNode* c = b->FindChild("c");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(*c->FindAttribute("deep"), "1");
}

TEST(XmlParseTest, Errors) {
  EXPECT_FALSE(ParseXml("").ok());
  EXPECT_FALSE(ParseXml("<a>").ok());                 // unterminated
  EXPECT_FALSE(ParseXml("<a></b>").ok());             // mismatched
  EXPECT_FALSE(ParseXml("<a x=1/>").ok());            // unquoted attribute
  EXPECT_FALSE(ParseXml("<a x=\"1/>").ok());          // unterminated value
  EXPECT_FALSE(ParseXml("<a/><b/>").ok());            // two roots
  EXPECT_FALSE(ParseXml("<a>&unknown;</a>").ok());    // bad entity
  EXPECT_FALSE(ParseXml("<a><!-- \xf0 ").ok());       // unterminated comment
  EXPECT_FALSE(ParseXml("plain text").ok());
}

TEST(XmlSerializeTest, RoundTrip) {
  XmlNode root;
  root.name = "spec";
  root.attributes.emplace_back("title", "a<b & \"c\"");
  XmlNode child;
  child.name = "item";
  child.attributes.emplace_back("k", "v");
  root.children.push_back(child);
  std::string xml = SerializeXml(root);
  auto parsed = ParseXml(xml);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString() << "\n" << xml;
  EXPECT_EQ(parsed->name, "spec");
  EXPECT_EQ(*parsed->FindAttribute("title"), "a<b & \"c\"");
  ASSERT_EQ(parsed->children.size(), 1u);
  EXPECT_EQ(parsed->children[0].name, "item");
}

TEST(XmlSerializeTest, EscapeHelper) {
  EXPECT_EQ(XmlEscape("a&b<c>d\"e'f"),
            "a&amp;b&lt;c&gt;d&quot;e&apos;f");
  EXPECT_EQ(XmlEscape("plain"), "plain");
}

TEST(XmlSerializeTest, TextRoundTrip) {
  XmlNode root;
  root.name = "note";
  root.text = "x < y";
  auto parsed = ParseXml(SerializeXml(root));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->text, "x < y");
}

}  // namespace
}  // namespace skl
