// Differential conformance suite for the sharded registry's reachability
// result cache: a cache-enabled service and a cache-disabled twin replay
// one seeded, randomized op sequence — AddRun / RemoveRun / ImportRun
// interleaved with Reaches / DependsOn / ModuleDependsOnData /
// DataDependsOnModule / ReachesBatch, including stale-handle and
// out-of-range probes — in lockstep, and every single answer (value AND
// status code) must be bit-identical between the two. Repeated queries are
// deliberately replayed so the cached side actually answers from the cache
// (asserted via the hit counter at the end), and removals/imports bump
// shard generations mid-sequence, so stale entries get every chance to
// leak. Runs across all 7 schemes, rotating shard counts, >= 10k ops in
// total; a failure prints the scheme, seed, op index and the recent op
// trace so the exact sequence replays from the seed.
//
// Plus direct unit tests of QueryCache itself: key/kind separation,
// generation invalidation, overwrite-on-collision, and the seqlock's
// refusal to answer from a mid-publish slot is covered indirectly by the
// TSan stress test (tests/registry_stress_test.cc).
#include <gtest/gtest.h>

#include <cstdint>
#include <deque>
#include <string>
#include <utility>
#include <vector>

#include "src/common/random.h"
#include "src/core/provenance_service.h"
#include "src/core/query_cache.h"
#include "src/workload/data_generator.h"
#include "src/workload/run_generator.h"
#include "tests/test_util.h"

namespace skl {
namespace {

// --------------------------------------------------- QueryCache unit tests --

TEST(QueryCacheTest, LookupMissesOnEmptyAndHitsAfterInsert) {
  QueryCache cache(64);
  bool answer = false;
  EXPECT_FALSE(cache.Lookup(1, 7, 1, 2, QueryKind::kReaches, &answer));
  cache.Insert(1, 7, 1, 2, QueryKind::kReaches, true);
  ASSERT_TRUE(cache.Lookup(1, 7, 1, 2, QueryKind::kReaches, &answer));
  EXPECT_TRUE(answer);
  cache.Insert(1, 7, 1, 3, QueryKind::kReaches, false);
  ASSERT_TRUE(cache.Lookup(1, 7, 1, 3, QueryKind::kReaches, &answer));
  EXPECT_FALSE(answer);
}

TEST(QueryCacheTest, KindIsPartOfTheKey) {
  QueryCache cache(64);
  cache.Insert(1, 7, 4, 5, QueryKind::kReaches, true);
  bool answer = false;
  // The same (run, src, dst) under a different kind must not hit.
  EXPECT_FALSE(cache.Lookup(1, 7, 4, 5, QueryKind::kDependsOn, &answer));
  EXPECT_FALSE(cache.Lookup(1, 7, 4, 5, QueryKind::kModuleData, &answer));
  EXPECT_TRUE(cache.Lookup(1, 7, 4, 5, QueryKind::kReaches, &answer));
}

TEST(QueryCacheTest, GenerationBumpInvalidatesInOneStep) {
  QueryCache cache(64);
  cache.Insert(3, 9, 0, 1, QueryKind::kReaches, true);
  bool answer = false;
  ASSERT_TRUE(cache.Lookup(3, 9, 0, 1, QueryKind::kReaches, &answer));
  // A newer generation never sees older stamps...
  EXPECT_FALSE(cache.Lookup(4, 9, 0, 1, QueryKind::kReaches, &answer));
  // ...and an older stamp can equally never satisfy a rolled-back probe.
  EXPECT_FALSE(cache.Lookup(2, 9, 0, 1, QueryKind::kReaches, &answer));
  cache.Insert(4, 9, 0, 1, QueryKind::kReaches, false);
  ASSERT_TRUE(cache.Lookup(4, 9, 0, 1, QueryKind::kReaches, &answer));
  EXPECT_FALSE(answer);
}

TEST(QueryCacheTest, CollidingKeysOverwriteRatherThanLie) {
  // A 1-slot cache makes every insert collide: the latest write wins and
  // the evicted key misses — it must never return the other key's answer.
  QueryCache cache(1);
  ASSERT_EQ(cache.num_slots(), 1u);
  cache.Insert(1, 1, 0, 0, QueryKind::kReaches, true);
  cache.Insert(1, 2, 5, 6, QueryKind::kReaches, false);
  bool answer = true;
  EXPECT_FALSE(cache.Lookup(1, 1, 0, 0, QueryKind::kReaches, &answer));
  ASSERT_TRUE(cache.Lookup(1, 2, 5, 6, QueryKind::kReaches, &answer));
  EXPECT_FALSE(answer);
}

// ------------------------------------------------- differential conformance --

/// A tree-shaped specification for the interval scheme (which rejects spec
/// graphs with undirected cycles); same shape as net_server_test.cc uses.
Specification MakeTreeSpec() {
  SpecificationBuilder builder;
  VertexId a = builder.AddModule("a");
  VertexId b = builder.AddModule("b");
  VertexId c = builder.AddModule("c");
  VertexId d = builder.AddModule("d");
  builder.AddEdge(a, b).AddEdge(b, c).AddEdge(c, d);
  builder.DeclareLoop({b, c});
  auto spec = std::move(builder).Build();
  SKL_CHECK_MSG(spec.ok(), spec.status().ToString().c_str());
  return std::move(spec).value();
}

Specification MakeSpecFor(SpecSchemeKind kind) {
  return kind == SpecSchemeKind::kInterval
             ? MakeTreeSpec()
             : testing_util::MakeRunningExample().spec;
}

/// Replays one randomized op sequence against a cache-enabled service and
/// its cache-disabled twin, asserting bit-identical behavior throughout.
class DifferentialTester {
 public:
  DifferentialTester(SpecSchemeKind kind, uint64_t seed, size_t num_shards)
      : kind_(kind), seed_(seed), rng_(seed) {
    ProvenanceService::Options cached_options;
    cached_options.num_shards = num_shards;
    // Deliberately small: evictions and slot collisions must be part of
    // what the differential replay proves harmless.
    cached_options.cache_slots = 256;
    auto cached = ProvenanceService::Create(MakeSpecFor(kind), kind,
                                            cached_options);
    SKL_CHECK_MSG(cached.ok(), cached.status().ToString().c_str());
    cached_ = std::make_unique<ProvenanceService>(std::move(cached).value());

    ProvenanceService::Options plain_options;
    plain_options.num_shards = 1;
    plain_options.cache_slots = 0;  // the reference: every answer computed
    auto plain =
        ProvenanceService::Create(MakeSpecFor(kind), kind, plain_options);
    SKL_CHECK_MSG(plain.ok(), plain.status().ToString().c_str());
    plain_ = std::make_unique<ProvenanceService>(std::move(plain).value());

    // A pool of runs (with catalogs on the odd ones) both services ingest
    // from, plus export blobs for the ImportRun op.
    RunGenerator generator(&cached_->spec());
    for (uint64_t i = 0; i < 6; ++i) {
      RunGenOptions opt;
      opt.target_vertices = 30 + 10 * static_cast<uint32_t>(i);
      opt.seed = seed * 131 + i;
      auto gen = generator.Generate(opt);
      SKL_CHECK_MSG(gen.ok(), gen.status().ToString().c_str());
      pool_.push_back(std::move(gen->run));
      DataGenOptions dopt;
      dopt.seed = seed * 17 + i;
      catalogs_.push_back(GenerateDataCatalog(pool_.back(), dopt));
    }
    auto scratch =
        ProvenanceService::Create(MakeSpecFor(kind), kind, plain_options);
    SKL_CHECK_MSG(scratch.ok(), scratch.status().ToString().c_str());
    for (size_t i = 0; i < pool_.size(); ++i) {
      auto id = scratch->AddRun(pool_[i], &catalogs_[i]);
      SKL_CHECK_MSG(id.ok(), id.status().ToString().c_str());
      auto blob = scratch->ExportRun(*id);
      SKL_CHECK_MSG(blob.ok(), blob.status().ToString().c_str());
      blobs_.push_back(std::move(blob).value());
    }
  }

  void Run(size_t num_ops) {
    for (op_index_ = 0; op_index_ < num_ops; ++op_index_) {
      Step();
      if (::testing::Test::HasFatalFailure()) return;
    }
    // The replay must have exercised the cache, or the equivalence above
    // proved nothing about it.
    const ServiceStats stats = cached_->service_stats();
    EXPECT_GT(stats.cache_hits, 0u) << Context("final hit-count check");
    EXPECT_GT(stats.cache_misses, 0u) << Context("final miss-count check");
    // And the op-visible counters must agree between the twins (the cache
    // fields are the twins' one allowed difference).
    const ServiceStats plain_stats = plain_->service_stats();
    EXPECT_EQ(stats.num_runs, plain_stats.num_runs) << Context("num_runs");
    EXPECT_EQ(stats.reaches_queries, plain_stats.reaches_queries)
        << Context("reaches_queries");
    EXPECT_EQ(stats.depends_on_queries, plain_stats.depends_on_queries)
        << Context("depends_on_queries");
    EXPECT_EQ(stats.runs_ingested, plain_stats.runs_ingested)
        << Context("runs_ingested");
    EXPECT_EQ(stats.runs_removed, plain_stats.runs_removed)
        << Context("runs_removed");
    EXPECT_EQ(stats.runs_imported, plain_stats.runs_imported)
        << Context("runs_imported");
    EXPECT_EQ(plain_stats.cache_hits, 0u) << Context("plain twin hit cache");
  }

 private:
  /// Everything a human needs to replay a failure: seed, scheme, op index
  /// and the trailing window of executed ops.
  std::string Context(const std::string& op) const {
    std::string out = "scheme=" + std::string(SpecSchemeKindName(kind_)) +
                      " seed=" + std::to_string(seed_) +
                      " op#" + std::to_string(op_index_) + ": " + op +
                      "\nrecent ops (oldest first):";
    for (const std::string& t : trace_) out += "\n  " + t;
    return out;
  }

  void Record(const std::string& op) {
    trace_.push_back("op#" + std::to_string(op_index_) + " " + op);
    if (trace_.size() > 40) trace_.pop_front();
  }

  void ExpectSameBool(const Result<bool>& c, const Result<bool>& p,
                      const std::string& op) {
    ASSERT_EQ(c.ok(), p.ok()) << Context(op) << "\ncached: "
                              << (c.ok() ? "ok" : c.status().ToString())
                              << "\nplain:  "
                              << (p.ok() ? "ok" : p.status().ToString());
    if (c.ok()) {
      ASSERT_EQ(*c, *p) << Context(op);
    } else {
      ASSERT_EQ(c.status().code(), p.status().code()) << Context(op);
    }
  }

  /// Picks a run id to query: mostly live, sometimes stale or never-issued.
  uint64_t PickId() {
    const uint64_t r = rng_.NextBelow(100);
    if (r < 70 && !live_.empty()) {
      return live_[rng_.NextBelow(live_.size())];
    }
    if (r < 85 && !all_.empty()) {
      return all_[rng_.NextBelow(all_.size())];  // possibly removed by now
    }
    return 1000000 + rng_.NextBelow(5);  // never issued
  }

  VertexId VerticesOf(uint64_t id) {
    auto stats = plain_->Stats(RunId::FromValue(id));
    return stats.ok() ? stats->num_vertices : 8;
  }

  void Step() {
    const uint64_t r = rng_.NextBelow(1000);
    if (r < 80) {  // AddRun
      const size_t i = rng_.NextBelow(pool_.size());
      const DataCatalog* catalog = (i % 2 == 1) ? &catalogs_[i] : nullptr;
      Record("AddRun(pool[" + std::to_string(i) + "]" +
             (catalog ? ", catalog" : "") + ")");
      auto c = cached_->AddRun(pool_[i], catalog);
      auto p = plain_->AddRun(pool_[i], catalog);
      ASSERT_EQ(c.ok(), p.ok()) << Context("AddRun");
      ASSERT_TRUE(c.ok()) << Context("AddRun") << c.status().ToString();
      ASSERT_EQ(c->value(), p->value())
          << Context("AddRun: twins diverged on allocated id");
      live_.push_back(c->value());
      all_.push_back(c->value());
      return;
    }
    if (r < 130) {  // RemoveRun
      uint64_t id;
      if (!live_.empty() && rng_.NextBelow(10) < 9) {
        const size_t i = rng_.NextBelow(live_.size());
        id = live_[i];
        live_.erase(live_.begin() + static_cast<ptrdiff_t>(i));
      } else {
        id = 1000000 + rng_.NextBelow(5);
      }
      Record("RemoveRun(" + std::to_string(id) + ")");
      const Status c = cached_->RemoveRun(RunId::FromValue(id));
      const Status p = plain_->RemoveRun(RunId::FromValue(id));
      ASSERT_EQ(c.code(), p.code()) << Context("RemoveRun");
      return;
    }
    if (r < 170) {  // ImportRun
      const size_t i = rng_.NextBelow(blobs_.size());
      Record("ImportRun(blob[" + std::to_string(i) + "])");
      auto c = cached_->ImportRun(blobs_[i]);
      auto p = plain_->ImportRun(blobs_[i]);
      ASSERT_EQ(c.ok(), p.ok()) << Context("ImportRun");
      ASSERT_TRUE(c.ok()) << Context("ImportRun") << c.status().ToString();
      ASSERT_EQ(c->value(), p->value()) << Context("ImportRun id");
      live_.push_back(c->value());
      all_.push_back(c->value());
      return;
    }
    if (r < 800) {  // Reaches — the cache's bread and butter
      uint64_t id;
      VertexId v, w;
      if (!recent_.empty() && rng_.NextBelow(2) == 0) {
        // Replay a recent query verbatim: this is what turns the cached
        // side's lookups into hits.
        const auto& [rid, rv, rw] = recent_[rng_.NextBelow(recent_.size())];
        id = rid;
        v = rv;
        w = rw;
      } else {
        id = PickId();
        const VertexId n = VerticesOf(id);
        v = static_cast<VertexId>(rng_.NextBelow(n + 2));  // may be o-o-r
        w = static_cast<VertexId>(rng_.NextBelow(n + 2));
      }
      Record("Reaches(" + std::to_string(id) + ", " + std::to_string(v) +
             ", " + std::to_string(w) + ")");
      ExpectSameBool(cached_->Reaches(RunId::FromValue(id), v, w),
                     plain_->Reaches(RunId::FromValue(id), v, w), "Reaches");
      recent_.push_back({id, v, w});
      if (recent_.size() > 64) recent_.pop_front();
      return;
    }
    if (r < 880) {  // DependsOn
      const uint64_t id = PickId();
      auto stats = plain_->Stats(RunId::FromValue(id));
      const size_t items = stats.ok() ? stats->num_items : 4;
      const DataItemId x = static_cast<DataItemId>(rng_.NextBelow(items + 2));
      const DataItemId y = static_cast<DataItemId>(rng_.NextBelow(items + 2));
      Record("DependsOn(" + std::to_string(id) + ", " + std::to_string(x) +
             ", " + std::to_string(y) + ")");
      ExpectSameBool(cached_->DependsOn(RunId::FromValue(id), x, y),
                     plain_->DependsOn(RunId::FromValue(id), x, y),
                     "DependsOn");
      return;
    }
    if (r < 940) {  // the two mixed module/data directions
      const uint64_t id = PickId();
      auto stats = plain_->Stats(RunId::FromValue(id));
      const size_t items = stats.ok() ? stats->num_items : 4;
      const VertexId n = VerticesOf(id);
      const VertexId v = static_cast<VertexId>(rng_.NextBelow(n + 2));
      const DataItemId x = static_cast<DataItemId>(rng_.NextBelow(items + 2));
      if (r % 2 == 0) {
        Record("ModuleDependsOnData(" + std::to_string(id) + ", " +
               std::to_string(v) + ", " + std::to_string(x) + ")");
        ExpectSameBool(
            cached_->ModuleDependsOnData(RunId::FromValue(id), v, x),
            plain_->ModuleDependsOnData(RunId::FromValue(id), v, x),
            "ModuleDependsOnData");
      } else {
        Record("DataDependsOnModule(" + std::to_string(id) + ", " +
               std::to_string(x) + ", " + std::to_string(v) + ")");
        ExpectSameBool(
            cached_->DataDependsOnModule(RunId::FromValue(id), x, v),
            plain_->DataDependsOnModule(RunId::FromValue(id), x, v),
            "DataDependsOnModule");
      }
      return;
    }
    if (r < 980) {  // ReachesBatch over a mixed window
      const uint64_t id = PickId();
      const VertexId n = VerticesOf(id);
      std::vector<VertexPair> pairs;
      for (int i = 0; i < 8; ++i) {
        pairs.push_back({static_cast<VertexId>(rng_.NextBelow(n)),
                         static_cast<VertexId>(rng_.NextBelow(n))});
      }
      Record("ReachesBatch(" + std::to_string(id) + ", 8 pairs)");
      auto c = cached_->ReachesBatch(RunId::FromValue(id), pairs);
      auto p = plain_->ReachesBatch(RunId::FromValue(id), pairs);
      ASSERT_EQ(c.ok(), p.ok()) << Context("ReachesBatch");
      if (c.ok()) {
        ASSERT_EQ(*c, *p) << Context("ReachesBatch");
      } else {
        ASSERT_EQ(c.status().code(), p.status().code())
            << Context("ReachesBatch");
      }
      return;
    }
    // Registry views must agree too.
    Record("registry view compare");
    ASSERT_EQ(cached_->num_runs(), plain_->num_runs()) << Context("num_runs");
    const std::vector<RunId> c_ids = cached_->ListRuns();
    const std::vector<RunId> p_ids = plain_->ListRuns();
    ASSERT_EQ(c_ids.size(), p_ids.size()) << Context("ListRuns size");
    for (size_t i = 0; i < c_ids.size(); ++i) {
      ASSERT_EQ(c_ids[i].value(), p_ids[i].value())
          << Context("ListRuns[" + std::to_string(i) + "]");
    }
    const uint64_t id = PickId();
    ASSERT_EQ(cached_->Contains(RunId::FromValue(id)),
              plain_->Contains(RunId::FromValue(id)))
        << Context("Contains(" + std::to_string(id) + ")");
  }

  const SpecSchemeKind kind_;
  const uint64_t seed_;
  Rng rng_;
  std::unique_ptr<ProvenanceService> cached_;
  std::unique_ptr<ProvenanceService> plain_;
  std::vector<::skl::Run> pool_;
  std::vector<DataCatalog> catalogs_;
  std::vector<std::vector<uint8_t>> blobs_;
  std::vector<uint64_t> live_;  ///< currently registered ids
  std::vector<uint64_t> all_;   ///< every id ever issued (stale probes)
  std::deque<std::tuple<uint64_t, VertexId, VertexId>> recent_;
  std::deque<std::string> trace_;
  size_t op_index_ = 0;
};

TEST(QueryCacheDifferentialTest, CacheOnBitIdenticalToCacheOffAllSchemes) {
  const SpecSchemeKind kinds[] = {
      SpecSchemeKind::kTcm,      SpecSchemeKind::kBfs,
      SpecSchemeKind::kDfs,      SpecSchemeKind::kInterval,
      SpecSchemeKind::kTreeCover, SpecSchemeKind::kChain,
      SpecSchemeKind::kTwoHop};
  // Shard counts rotate so the differential replay covers the fully
  // contended single-shard layout and genuinely striped ones.
  const size_t shard_choices[] = {1, 2, 8};
  const uint64_t base_seed =
      testing_util::TestSeed("QueryCacheDifferentialTest", 0xC0FFEE);
  const uint64_t iters = 1600 * testing_util::TestIterScale();
  size_t i = 0;
  for (SpecSchemeKind kind : kinds) {
    SCOPED_TRACE(SpecSchemeKindName(kind));
    DifferentialTester tester(kind, /*seed=*/base_seed + i,
                              shard_choices[i % 3]);
    // 7 schemes x 1600 ops > the 10k-op floor the suite promises.
    tester.Run(iters);
    if (::testing::Test::HasFatalFailure()) return;
    ++i;
  }
}

}  // namespace
}  // namespace skl
