// The observability core in isolation (src/common/metrics.h): the
// log-bucketed histogram's bucket layout and quantile error bound, its
// lock-free concurrent recording, merge/reset semantics, and the
// registry's Prometheus text rendering — family grouping, label splicing,
// callback gauges, and the cumulative le ladder.
#include "src/common/metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <random>
#include <string>
#include <thread>
#include <vector>

namespace skl {
namespace {

// ------------------------------------------------------------ bucket layout --

TEST(LatencyHistogramTest, BucketBoundsPartitionTheValueRange) {
  // Buckets tile [0, 2^64) without gaps or overlaps: every bucket's lower
  // bound maps back to that bucket, and the value just below the next
  // bucket's bound still lands in this one.
  for (size_t i = 0; i + 1 < LatencyHistogram::kNumBuckets; ++i) {
    const uint64_t lo = LatencyHistogram::BucketLowerBound(i);
    const uint64_t next = LatencyHistogram::BucketLowerBound(i + 1);
    ASSERT_LT(lo, next) << "bucket " << i;
    EXPECT_EQ(LatencyHistogram::BucketIndex(lo), i);
    EXPECT_EQ(LatencyHistogram::BucketIndex(next - 1), i);
  }
  EXPECT_EQ(LatencyHistogram::BucketIndex(0), 0u);
  EXPECT_EQ(LatencyHistogram::BucketIndex(~0ull),
            LatencyHistogram::kNumBuckets - 1);
}

TEST(LatencyHistogramTest, SmallValuesGetExactUnitBuckets) {
  // Values below kSubBuckets are exact: one value per bucket, so tiny
  // latencies never smear.
  for (uint64_t v = 0; v < LatencyHistogram::kSubBuckets; ++v) {
    EXPECT_EQ(LatencyHistogram::BucketIndex(v), v);
    EXPECT_EQ(LatencyHistogram::BucketLowerBound(v), v);
  }
}

TEST(LatencyHistogramTest, BucketWidthStaysWithinTheRelativeErrorBound) {
  // The design bound: every bucket's width is at most 1/kSubBuckets
  // (12.5%) of its lower bound, at every magnitude.
  for (size_t i = LatencyHistogram::kSubBuckets;
       i + 1 < LatencyHistogram::kNumBuckets; ++i) {
    const uint64_t lo = LatencyHistogram::BucketLowerBound(i);
    const uint64_t width = LatencyHistogram::BucketLowerBound(i + 1) - lo;
    EXPECT_LE(width * LatencyHistogram::kSubBuckets, lo)
        << "bucket " << i << " [" << lo << ", " << (lo + width) << ")";
  }
}

// --------------------------------------------------------------- recording --

TEST(LatencyHistogramTest, CountSumAndBucketsTrackRecords) {
  LatencyHistogram hist;
  EXPECT_EQ(hist.Count(), 0u);
  EXPECT_EQ(hist.Quantile(0.5), 0.0);
  hist.Record(3);
  hist.Record(3);
  hist.Record(1000);
  EXPECT_EQ(hist.Count(), 3u);
  EXPECT_EQ(hist.Sum(), 1006u);
  EXPECT_EQ(hist.BucketCount(LatencyHistogram::BucketIndex(3)), 2u);
  EXPECT_EQ(hist.BucketCount(LatencyHistogram::BucketIndex(1000)), 1u);
}

TEST(LatencyHistogramTest, QuantilesAreExactToTheBucketWidth) {
  LatencyHistogram hist;
  std::mt19937_64 rng(17);
  std::vector<uint64_t> values;
  for (int i = 0; i < 20000; ++i) {
    // Log-uniform over ~6 decades, the shape of real latency data.
    const double exponent = std::uniform_real_distribution<>(0, 20)(rng);
    values.push_back(static_cast<uint64_t>(std::pow(2.0, exponent)));
  }
  for (uint64_t v : values) hist.Record(v);
  std::sort(values.begin(), values.end());
  for (double q : {0.5, 0.9, 0.99}) {
    const double exact = static_cast<double>(
        values[static_cast<size_t>(q * (values.size() - 1))]);
    const double approx = hist.Quantile(q);
    EXPECT_NEAR(approx, exact, exact / LatencyHistogram::kSubBuckets + 1)
        << "q=" << q;
  }
}

TEST(LatencyHistogramTest, ConcurrentRecordsAllLand) {
  LatencyHistogram hist;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist, t] {
      for (int i = 0; i < kPerThread; ++i) {
        hist.Record(static_cast<uint64_t>(t) * 1000 + 1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(hist.Count(), static_cast<uint64_t>(kThreads) * kPerThread);
  uint64_t bucket_total = 0;
  for (size_t i = 0; i < LatencyHistogram::kNumBuckets; ++i) {
    bucket_total += hist.BucketCount(i);
  }
  EXPECT_EQ(bucket_total, hist.Count());
}

TEST(LatencyHistogramTest, MergeAddsAndResetClears) {
  LatencyHistogram a;
  LatencyHistogram b;
  a.Record(5);
  a.Record(500);
  b.Record(5);
  b.MergeFrom(a);
  EXPECT_EQ(b.Count(), 3u);
  EXPECT_EQ(b.Sum(), 510u);
  EXPECT_EQ(b.BucketCount(LatencyHistogram::BucketIndex(5)), 2u);
  b.Reset();
  EXPECT_EQ(b.Count(), 0u);
  EXPECT_EQ(b.Sum(), 0u);
  EXPECT_EQ(b.BucketCount(LatencyHistogram::BucketIndex(5)), 0u);
  EXPECT_EQ(a.Count(), 2u);  // the source is untouched
}

// ---------------------------------------------------------------- registry --

TEST(MetricsRegistryTest, RendersFamiliesWithHelpTypeAndLabels) {
  MetricsRegistry registry;
  MetricCounter* hits =
      registry.AddCounter("skl_test_hits", "Cache hits", "shard=\"0\"");
  registry.AddCounter("skl_test_hits", "ignored duplicate help",
                      "shard=\"1\"");
  MetricGauge* depth = registry.AddGauge("skl_test_depth", "Queue depth");
  registry.AddCallbackGauge("skl_test_lag", "Apply lag", "",
                            [] { return uint64_t{7}; });
  hits->Increment(3);
  depth->Set(11);

  const std::string text = registry.RenderPrometheus();
  // One HELP/TYPE header per family, taken from the first registration.
  EXPECT_NE(text.find("# HELP skl_test_hits Cache hits"), std::string::npos);
  EXPECT_EQ(text.find("ignored duplicate help"), std::string::npos);
  EXPECT_NE(text.find("# TYPE skl_test_hits counter"), std::string::npos);
  EXPECT_NE(text.find("skl_test_hits{shard=\"0\"} 3"), std::string::npos);
  EXPECT_NE(text.find("skl_test_hits{shard=\"1\"} 0"), std::string::npos);
  EXPECT_NE(text.find("# TYPE skl_test_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("skl_test_depth 11"), std::string::npos);
  // The callback gauge is evaluated at render time.
  EXPECT_NE(text.find("skl_test_lag 7"), std::string::npos);
}

TEST(MetricsRegistryTest, RendersHistogramAsCumulativeLeLadder) {
  MetricsRegistry registry;
  LatencyHistogram* hist = registry.AddHistogram(
      "skl_test_us", "Test latencies", "op=\"Ping\"");
  hist->Record(3);
  hist->Record(3);
  hist->Record(1000000000);  // beyond the 2^30 ladder top: only in +Inf

  const std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("# TYPE skl_test_us histogram"), std::string::npos);
  // Cumulative: the le="4" bucket already holds both small records.
  EXPECT_NE(text.find("skl_test_us_bucket{op=\"Ping\",le=\"4\"} 2"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("skl_test_us_bucket{op=\"Ping\",le=\"+Inf\"} 3"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("skl_test_us_count{op=\"Ping\"} 3"), std::string::npos);
  EXPECT_NE(text.find("skl_test_us_sum{op=\"Ping\"} 1000000006"),
            std::string::npos);
}

TEST(MetricsRegistryTest, PointersStayValidAsTheRegistryGrows) {
  MetricsRegistry registry;
  MetricCounter* first = registry.AddCounter("skl_test_first", "first");
  std::vector<MetricCounter*> counters;
  for (int i = 0; i < 200; ++i) {
    counters.push_back(registry.AddCounter(
        "skl_test_bulk", "bulk", "i=\"" + std::to_string(i) + "\""));
  }
  first->Increment();  // must not be dangling after 200 more registrations
  counters[0]->Increment(5);
  const std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("skl_test_first 1"), std::string::npos);
  EXPECT_NE(text.find("skl_test_bulk{i=\"0\"} 5"), std::string::npos);
}

}  // namespace
}  // namespace skl
