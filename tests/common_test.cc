// Tests for the common substrate: Status/Result, Rng, DynamicBitset and the
// bit codec.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <span>
#include <vector>

#include "src/common/bit_codec.h"
#include "src/common/bitset.h"
#include "src/common/crc32.h"
#include "src/common/random.h"
#include "src/common/status.h"

namespace skl {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::InvalidRun("boom");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidRun);
  EXPECT_EQ(st.message(), "boom");
  EXPECT_EQ(st.ToString(), "InvalidRun: boom");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInvalidArgument),
               "InvalidArgument");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInvalidSpecification),
               "InvalidSpecification");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInvalidRun), "InvalidRun");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeName(StatusCode::kParseError), "ParseError");
  EXPECT_STREQ(StatusCodeName(StatusCode::kCapacityExceeded),
               "CapacityExceeded");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "Internal");
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x * 2;
}

Status UseResult(int x, int* out) {
  SKL_ASSIGN_OR_RETURN(int doubled, ParsePositive(x));
  *out = doubled;
  return Status::OK();
}

TEST(ResultTest, ValueAndErrorPaths) {
  Result<int> good = ParsePositive(21);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 42);

  Result<int> bad = ParsePositive(-1);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseResult(5, &out).ok());
  EXPECT_EQ(out, 10);
  EXPECT_FALSE(UseResult(-5, &out).ok());
}

TEST(RngTest, Deterministic) {
  Rng a(42), b(42), c(43);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_EQ(a.Next(), b.Next());
  Rng a2(42);
  EXPECT_NE(a2.Next(), c.Next());
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
  EXPECT_EQ(rng.NextBelow(1), 0u);
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.NextInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NextCountMeanRoughlyMatches) {
  Rng rng(13);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.NextCount(3.0);
  double mean = sum / n;
  EXPECT_NEAR(mean, 3.0, 0.25);
  EXPECT_EQ(rng.NextCount(1.0), 1u);
  EXPECT_EQ(rng.NextCount(0.5), 1u);
}

TEST(RngTest, ShufflePermutes) {
  Rng rng(17);
  std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, orig);
}

TEST(BitsetTest, SetTestClear) {
  DynamicBitset bs(130);
  EXPECT_EQ(bs.size(), 130u);
  EXPECT_TRUE(bs.None());
  bs.Set(0);
  bs.Set(64);
  bs.Set(129);
  EXPECT_TRUE(bs.Test(0));
  EXPECT_TRUE(bs.Test(64));
  EXPECT_TRUE(bs.Test(129));
  EXPECT_FALSE(bs.Test(1));
  EXPECT_EQ(bs.Count(), 3u);
  bs.Clear(64);
  EXPECT_FALSE(bs.Test(64));
  EXPECT_EQ(bs.Count(), 2u);
}

TEST(BitsetTest, SetOperations) {
  DynamicBitset a(100), b(100);
  a.Set(3);
  a.Set(50);
  b.Set(50);
  b.Set(99);
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_FALSE(a.IsSubsetOf(b));

  DynamicBitset u = a;
  u.UnionWith(b);
  EXPECT_EQ(u.Count(), 3u);
  EXPECT_TRUE(a.IsSubsetOf(u));
  EXPECT_TRUE(b.IsSubsetOf(u));

  DynamicBitset i = a;
  i.IntersectWith(b);
  EXPECT_EQ(i.Count(), 1u);
  EXPECT_TRUE(i.Test(50));

  DynamicBitset c(100);
  c.Set(0);
  EXPECT_FALSE(a.Intersects(c));
}

TEST(BitsetTest, FindFirstNext) {
  DynamicBitset bs(200);
  EXPECT_EQ(bs.FindFirst(), 200u);
  bs.Set(5);
  bs.Set(63);
  bs.Set(64);
  bs.Set(199);
  EXPECT_EQ(bs.FindFirst(), 5u);
  EXPECT_EQ(bs.FindNext(5), 63u);
  EXPECT_EQ(bs.FindNext(63), 64u);
  EXPECT_EQ(bs.FindNext(64), 199u);
  EXPECT_EQ(bs.FindNext(199), 200u);
}

TEST(BitsetTest, Equality) {
  DynamicBitset a(10), b(10);
  EXPECT_TRUE(a == b);
  a.Set(4);
  EXPECT_FALSE(a == b);
  b.Set(4);
  EXPECT_TRUE(a == b);
}

TEST(BitsetTest, GrowToPreservesBitsAndClearsNewOnes) {
  DynamicBitset bs(70);
  bs.Set(0);
  bs.Set(63);
  bs.Set(69);
  bs.GrowTo(200);
  EXPECT_EQ(bs.size(), 200u);
  EXPECT_TRUE(bs.Test(0));
  EXPECT_TRUE(bs.Test(63));
  EXPECT_TRUE(bs.Test(69));
  for (size_t i = 70; i < 200; ++i) EXPECT_FALSE(bs.Test(i)) << i;
  bs.GrowTo(200);  // growing to the current size is a no-op
  EXPECT_EQ(bs.size(), 200u);
}

// EraseBit against a reference model, across word-boundary positions: the
// word-level shift-with-carry must agree with deleting one element of a
// bool vector for every erase position.
TEST(BitsetTest, EraseBitMatchesReferenceModel) {
  constexpr size_t kBits = 140;
  for (size_t pos = 0; pos < kBits; ++pos) {
    DynamicBitset bs(kBits);
    std::vector<bool> model(kBits);
    Rng rng(0xB17 + pos);
    for (size_t i = 0; i < kBits; ++i) {
      if (rng.NextBelow(2) == 1) {
        bs.Set(i);
        model[i] = true;
      }
    }
    bs.EraseBit(pos);
    model.erase(model.begin() + static_cast<ptrdiff_t>(pos));
    ASSERT_EQ(bs.size(), kBits - 1);
    for (size_t i = 0; i + 1 < kBits; ++i) {
      ASSERT_EQ(bs.Test(i), model[i]) << "pos=" << pos << " i=" << i;
    }
  }
}

TEST(BitsetTest, EraseBitDownToEmpty) {
  DynamicBitset bs(65);
  bs.Set(64);
  bs.EraseBit(0);  // the carried top bit shifts down a word
  EXPECT_EQ(bs.size(), 64u);
  EXPECT_TRUE(bs.Test(63));
  while (bs.size() > 0) bs.EraseBit(bs.size() - 1);
  EXPECT_EQ(bs.size(), 0u);
  EXPECT_EQ(bs.MemoryBytes(), 0u);
}

TEST(BitCodecTest, RoundTripFixedWidths) {
  BitWriter w;
  w.Write(0b101, 3);
  w.Write(0xdeadbeef, 32);
  w.Write(1, 1);
  w.Write(0x3ff, 10);
  auto bytes = w.Finish();
  BitReader r(bytes);
  uint64_t v;
  ASSERT_TRUE(r.Read(3, &v).ok());
  EXPECT_EQ(v, 0b101u);
  ASSERT_TRUE(r.Read(32, &v).ok());
  EXPECT_EQ(v, 0xdeadbeefu);
  ASSERT_TRUE(r.Read(1, &v).ok());
  EXPECT_EQ(v, 1u);
  ASSERT_TRUE(r.Read(10, &v).ok());
  EXPECT_EQ(v, 0x3ffu);
}

TEST(BitCodecTest, RoundTripVarint) {
  BitWriter w;
  w.Write(1, 3);  // misalign on purpose
  w.WriteVarint(0);
  w.WriteVarint(127);
  w.WriteVarint(128);
  w.WriteVarint(UINT64_MAX);
  auto bytes = w.Finish();
  BitReader r(bytes);
  uint64_t v;
  ASSERT_TRUE(r.Read(3, &v).ok());
  ASSERT_TRUE(r.ReadVarint(&v).ok());
  EXPECT_EQ(v, 0u);
  ASSERT_TRUE(r.ReadVarint(&v).ok());
  EXPECT_EQ(v, 127u);
  ASSERT_TRUE(r.ReadVarint(&v).ok());
  EXPECT_EQ(v, 128u);
  ASSERT_TRUE(r.ReadVarint(&v).ok());
  EXPECT_EQ(v, UINT64_MAX);
}

TEST(BitCodecTest, ReadPastEndFails) {
  BitWriter w;
  w.Write(1, 4);
  auto bytes = w.Finish();  // padded to 8 bits
  BitReader r(bytes);
  uint64_t v;
  ASSERT_TRUE(r.Read(8, &v).ok());
  EXPECT_FALSE(r.Read(1, &v).ok());
}

TEST(Crc32Test, MatchesTheIeeeCheckValue) {
  // The canonical CRC-32 check: crc32("123456789") == 0xCBF43926.
  const uint8_t digits[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(Crc32(digits), 0xCBF43926u);
  EXPECT_EQ(Crc32({}), 0u);
}

TEST(Crc32Test, StreamingMatchesOneShot) {
  std::vector<uint8_t> bytes(300);
  for (size_t i = 0; i < bytes.size(); ++i) {
    bytes[i] = static_cast<uint8_t>(i * 37 + 11);
  }
  const uint32_t one_shot = Crc32(bytes);
  uint32_t streamed = 0;
  std::span<const uint8_t> view(bytes);
  streamed = Crc32Update(streamed, view.subspan(0, 100));
  streamed = Crc32Update(streamed, view.subspan(100, 1));
  streamed = Crc32Update(streamed, view.subspan(101));
  EXPECT_EQ(streamed, one_shot);
  EXPECT_NE(Crc32(view.subspan(1)), one_shot);
}

TEST(BitCodecTest, RoundTripRawBytes) {
  std::vector<uint8_t> blob = {0x00, 0xFF, 0x42, 0x13};
  BitWriter w;
  w.Write(1, 3);  // misalign on purpose; WriteBytes must realign
  w.WriteBytes(blob);
  w.WriteVarint(99);
  auto bytes = w.Finish();
  BitReader r(bytes);
  uint64_t v;
  ASSERT_TRUE(r.Read(3, &v).ok());
  std::span<const uint8_t> out;
  ASSERT_TRUE(r.ReadBytes(blob.size(), &out).ok());
  EXPECT_TRUE(std::equal(out.begin(), out.end(), blob.begin(), blob.end()));
  ASSERT_TRUE(r.ReadVarint(&v).ok());
  EXPECT_EQ(v, 99u);
}

TEST(BitCodecTest, ReadBytesPastEndFailsWithoutAdvancing) {
  BitWriter w;
  w.WriteBytes(std::vector<uint8_t>{1, 2});
  auto bytes = w.Finish();
  BitReader r(bytes);
  std::span<const uint8_t> out;
  EXPECT_FALSE(r.ReadBytes(3, &out).ok());
  ASSERT_TRUE(r.ReadBytes(2, &out).ok());  // the failed read consumed nothing
  EXPECT_EQ(out[0], 1u);
  EXPECT_EQ(out[1], 2u);
}

TEST(BitCodecTest, ReadBytesZeroLengthAtEndSucceeds) {
  BitReader r(nullptr, 0);
  std::span<const uint8_t> out;
  EXPECT_TRUE(r.ReadBytes(0, &out).ok());
  EXPECT_TRUE(out.empty());
}

TEST(BitCodecTest, BitsForCount) {
  EXPECT_EQ(BitsForCount(0), 1);
  EXPECT_EQ(BitsForCount(1), 1);
  EXPECT_EQ(BitsForCount(2), 1);
  EXPECT_EQ(BitsForCount(3), 2);
  EXPECT_EQ(BitsForCount(4), 2);
  EXPECT_EQ(BitsForCount(5), 3);
  EXPECT_EQ(BitsForCount(1024), 10);
  EXPECT_EQ(BitsForCount(1025), 11);
}

TEST(BitCodecTest, ExhaustiveWidthRoundTrip) {
  for (int bits = 1; bits <= 64; ++bits) {
    BitWriter w;
    uint64_t max_val =
        bits == 64 ? UINT64_MAX : (uint64_t{1} << bits) - 1;
    w.Write(max_val, bits);
    w.Write(0, bits);
    w.Write(max_val & 0x5555555555555555ULL, bits);
    auto bytes = w.Finish();
    BitReader r(bytes);
    uint64_t v;
    ASSERT_TRUE(r.Read(bits, &v).ok());
    EXPECT_EQ(v, max_val) << bits;
    ASSERT_TRUE(r.Read(bits, &v).ok());
    EXPECT_EQ(v, 0u) << bits;
    ASSERT_TRUE(r.Read(bits, &v).ok());
    EXPECT_EQ(v, max_val & 0x5555555555555555ULL) << bits;
  }
}

}  // namespace
}  // namespace skl
