// The v2 columnar snapshot format and its mmap zero-copy loader, proven
// differentially against the v1 per-run-blob twin: for every bundled
// scheme, a service restored from a columnar snapshot (through the copying
// reader AND through the mapped reader) must answer bit-identically to the
// same service restored from a v1 snapshot and to the never-persisted
// original — module reachability and item-level dependency, single and
// batch. Plus the failure battery the container owes every new section:
// byte-exhaustive truncation and single-bit-flip fuzz through both
// loaders, trailing-byte rejection in the run index, scheme-tag mismatch
// rejection, the SKL_NO_MMAP fallback, and the mapping-outlives-the-
// directory-entry contract.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "src/common/temp_path.h"
#include "src/core/provenance_service.h"
#include "src/io/snapshot.h"
#include "src/workload/data_generator.h"
#include "src/workload/run_generator.h"
#include "tests/test_util.h"

namespace skl {
namespace {

class TempFile {
 public:
  explicit TempFile(const std::string& name)
      : path_(PidQualifiedTempPath("skl_columnar_test_" + name, ".skls")) {}
  ~TempFile() {
    std::error_code ec;
    std::filesystem::remove(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::vector<uint8_t> ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  SKL_CHECK(static_cast<bool>(in));
  return std::vector<uint8_t>((std::istreambuf_iterator<char>(in)),
                              std::istreambuf_iterator<char>());
}

void WriteAll(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  SKL_CHECK(static_cast<bool>(out));
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

::skl::Run GenerateRun(const Specification& spec, uint32_t target,
                       uint64_t seed) {
  RunGenerator generator(&spec);
  RunGenOptions opt;
  opt.target_vertices = target;
  opt.seed = seed;
  auto gen = generator.Generate(opt);
  SKL_CHECK_MSG(gen.ok(), gen.status().ToString().c_str());
  return std::move(gen->run);
}

/// Exhaustive module-level (Reaches) and item-level (DependsOn)
/// equivalence over every pair of every run, single and batch.
void ExpectAnswersIdentical(const ProvenanceService& a,
                            const ProvenanceService& b) {
  ASSERT_EQ(a.num_runs(), b.num_runs());
  std::vector<RunId> ids = a.ListRuns();
  std::vector<RunId> b_ids = b.ListRuns();
  ASSERT_EQ(ids.size(), b_ids.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    ASSERT_EQ(ids[i].value(), b_ids[i].value());
  }
  for (RunId id : ids) {
    auto sa = a.Stats(id);
    auto sb = b.Stats(id);
    ASSERT_TRUE(sa.ok() && sb.ok());
    EXPECT_EQ(sa->num_vertices, sb->num_vertices);
    EXPECT_EQ(sa->num_items, sb->num_items);
    EXPECT_EQ(sa->label_bits, sb->label_bits);
    EXPECT_EQ(sa->imported, sb->imported);

    const VertexId n = sa->num_vertices;
    std::vector<VertexPair> pairs;
    pairs.reserve(static_cast<size_t>(n) * n);
    for (VertexId v = 0; v < n; ++v) {
      for (VertexId w = 0; w < n; ++w) pairs.push_back({v, w});
    }
    auto ra = a.ReachesBatch(id, pairs);
    auto rb = b.ReachesBatch(id, pairs);
    ASSERT_TRUE(ra.ok() && rb.ok());
    ASSERT_EQ(*ra, *rb) << "run " << id.value();
    // Spot-check the single-query path through the same store.
    for (VertexId v = 0; v < n; ++v) {
      auto qa = a.Reaches(id, v, n - 1);
      auto qb = b.Reaches(id, v, n - 1);
      ASSERT_TRUE(qa.ok() && qb.ok());
      ASSERT_EQ(*qa, *qb);
    }

    const size_t items = sa->num_items;
    if (items == 0) continue;
    std::vector<ItemPair> item_pairs;
    item_pairs.reserve(items * items);
    for (DataItemId x = 0; x < items; ++x) {
      for (DataItemId y = 0; y < items; ++y) item_pairs.push_back({x, y});
    }
    auto da = a.DependsOnBatch(id, item_pairs);
    auto db = b.DependsOnBatch(id, item_pairs);
    ASSERT_TRUE(da.ok() && db.ok());
    ASSERT_EQ(*da, *db) << "run " << id.value() << " (items)";
  }
}

/// Builds a service with two generated runs (one with a data catalog) and
/// returns it, for a given scheme over the running-example spec.
Result<ProvenanceService> BuildService(SpecSchemeKind kind) {
  auto ex = testing_util::MakeRunningExample();
  ::skl::Run generated = GenerateRun(ex.spec, 50, 11);
  ::skl::Run with_data = GenerateRun(ex.spec, 60, 13);
  DataGenOptions dopt;
  dopt.seed = 7;
  DataCatalog catalog = GenerateDataCatalog(with_data, dopt);
  SKL_ASSIGN_OR_RETURN(ProvenanceService service,
                       ProvenanceService::Create(std::move(ex.spec), kind));
  SKL_RETURN_NOT_OK(service.AddRun(ex.run).status());
  SKL_RETURN_NOT_OK(service.AddRun(generated).status());
  SKL_RETURN_NOT_OK(service.AddRun(with_data, &catalog).status());
  return service;
}

// ----------------------------------------- differential vs the blob twin --

TEST(ColumnarSnapshotTest, BitIdenticalToBlobTwinEveryBundledScheme) {
  // kInterval requires a tree-shaped spec and is covered below.
  for (SpecSchemeKind kind :
       {SpecSchemeKind::kTcm, SpecSchemeKind::kBfs, SpecSchemeKind::kDfs,
        SpecSchemeKind::kTreeCover, SpecSchemeKind::kChain,
        SpecSchemeKind::kTwoHop}) {
    SCOPED_TRACE(SpecSchemeKindName(kind));
    auto service = BuildService(kind);
    ASSERT_TRUE(service.ok()) << service.status().ToString();

    TempFile v2(std::string("twin_v2_") + SpecSchemeKindName(kind));
    TempFile v1(std::string("twin_v1_") + SpecSchemeKindName(kind));
    ASSERT_TRUE(service->SaveSnapshot(v2.path()).ok());
    ASSERT_TRUE(service->SaveSnapshotAtVersion(v1.path(), 1).ok());

    // The blob-backed twin: same registry restored from the v1 format.
    auto from_v1 = ProvenanceService::LoadSnapshot(v1.path());
    ASSERT_TRUE(from_v1.ok()) << from_v1.status().ToString();

    // Columnar through the copying reader...
    auto copied = ProvenanceService::LoadSnapshot(v2.path());
    ASSERT_TRUE(copied.ok()) << copied.status().ToString();
    EXPECT_FALSE(copied->loaded_via_mmap());
    ExpectAnswersIdentical(*service, *copied);
    ExpectAnswersIdentical(*from_v1, *copied);

    // ... and through the zero-copy mapped reader.
    auto mapped =
        ProvenanceService::LoadSnapshot(v2.path(), {}, {.use_mmap = true});
    ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
    ExpectAnswersIdentical(*service, *mapped);
    ExpectAnswersIdentical(*from_v1, *mapped);
  }
}

TEST(ColumnarSnapshotTest, BitIdenticalToBlobTwinIntervalScheme) {
  SpecificationBuilder builder;
  VertexId a = builder.AddModule("a");
  VertexId b = builder.AddModule("b");
  VertexId c = builder.AddModule("c");
  VertexId d = builder.AddModule("d");
  builder.AddEdge(a, b).AddEdge(b, c).AddEdge(c, d);
  builder.DeclareLoop({b, c});
  auto spec = std::move(builder).Build();
  ASSERT_TRUE(spec.ok());

  ::skl::Run run = GenerateRun(*spec, 30, 5);
  auto service = ProvenanceService::Create(std::move(spec).value(),
                                           SpecSchemeKind::kInterval);
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  ASSERT_TRUE(service->AddRun(run).ok());

  TempFile v2("interval_v2");
  TempFile v1("interval_v1");
  ASSERT_TRUE(service->SaveSnapshot(v2.path()).ok());
  ASSERT_TRUE(service->SaveSnapshotAtVersion(v1.path(), 1).ok());
  auto from_v1 = ProvenanceService::LoadSnapshot(v1.path());
  ASSERT_TRUE(from_v1.ok());
  auto mapped =
      ProvenanceService::LoadSnapshot(v2.path(), {}, {.use_mmap = true});
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  ExpectAnswersIdentical(*service, *mapped);
  ExpectAnswersIdentical(*from_v1, *mapped);
}

// ------------------------------------------------- mmap path and fallback --

TEST(ColumnarSnapshotTest, MmapLoadIsZeroCopyAndFallbacksAreNot) {
  auto service = BuildService(SpecSchemeKind::kTcm);
  ASSERT_TRUE(service.ok());
  TempFile file("mmap_modes");
  ASSERT_TRUE(service->SaveSnapshot(file.path()).ok());

  auto mapped =
      ProvenanceService::LoadSnapshot(file.path(), {}, {.use_mmap = true});
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  EXPECT_TRUE(mapped->loaded_via_mmap());

  auto copied = ProvenanceService::LoadSnapshot(file.path());
  ASSERT_TRUE(copied.ok());
  EXPECT_FALSE(copied->loaded_via_mmap());

  // SKL_NO_MMAP forces the copying reader even when mmap was requested —
  // the operational kill switch the CI fallback leg exercises.
  ::setenv("SKL_NO_MMAP", "1", 1);
  auto forced =
      ProvenanceService::LoadSnapshot(file.path(), {}, {.use_mmap = true});
  ::unsetenv("SKL_NO_MMAP");
  ASSERT_TRUE(forced.ok());
  EXPECT_FALSE(forced->loaded_via_mmap());
  ExpectAnswersIdentical(*mapped, *forced);
}

TEST(ColumnarSnapshotTest, V1SnapshotLoadsUnderMmapRequestViaCopy) {
  // A v1 snapshot has no columnar section to view: the mapped container
  // parses fine, the blobs decode into owned memory, and the service must
  // NOT report itself as mmap-backed (nothing references the mapping).
  auto service = BuildService(SpecSchemeKind::kBfs);
  ASSERT_TRUE(service.ok());
  TempFile file("v1_under_mmap");
  ASSERT_TRUE(service->SaveSnapshotAtVersion(file.path(), 1).ok());
  auto restored =
      ProvenanceService::LoadSnapshot(file.path(), {}, {.use_mmap = true});
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_FALSE(restored->loaded_via_mmap());
  ExpectAnswersIdentical(*service, *restored);
}

TEST(ColumnarSnapshotTest, MappedServiceSurvivesFileUnlink) {
  // The mapping outlives the directory entry (POSIX): deleting the
  // snapshot file must not invalidate a service whose runs view the map.
  // (Truncating the file in place WOULD — that contract is documented in
  // docs/PERSISTENCE.md and is why the loader CRC-sweeps eagerly.)
  auto service = BuildService(SpecSchemeKind::kTcm);
  ASSERT_TRUE(service.ok());
  TempFile file("unlink");
  ASSERT_TRUE(service->SaveSnapshot(file.path()).ok());
  auto mapped =
      ProvenanceService::LoadSnapshot(file.path(), {}, {.use_mmap = true});
  ASSERT_TRUE(mapped.ok());
  ASSERT_TRUE(mapped->loaded_via_mmap());
  std::error_code ec;
  ASSERT_TRUE(std::filesystem::remove(file.path(), ec));
  ExpectAnswersIdentical(*service, *mapped);
}

// ------------------------------------------------------- failure battery --

TEST(ColumnarSnapshotTest, TruncationAtEveryPrefixBothLoaders) {
  auto service = BuildService(SpecSchemeKind::kTcm);
  ASSERT_TRUE(service.ok());
  TempFile file("trunc");
  ASSERT_TRUE(service->SaveSnapshot(file.path()).ok());
  const std::vector<uint8_t> bytes = ReadAll(file.path());
  ASSERT_GT(bytes.size(), 0u);

  TempFile cut("trunc_cut");
  for (size_t len = 0; len < bytes.size(); ++len) {
    WriteAll(cut.path(),
             std::vector<uint8_t>(bytes.begin(), bytes.begin() + len));
    auto copied = ProvenanceService::LoadSnapshot(cut.path());
    ASSERT_FALSE(copied.ok()) << "prefix " << len;
    EXPECT_EQ(copied.status().code(), StatusCode::kParseError)
        << "prefix " << len << ": " << copied.status().ToString();
    // The torn-mmap case: a fresh map of the truncated file must fail with
    // the same diagnosis, never SIGBUS at query time.
    auto mapped =
        ProvenanceService::LoadSnapshot(cut.path(), {}, {.use_mmap = true});
    ASSERT_FALSE(mapped.ok()) << "mmap prefix " << len;
    EXPECT_EQ(mapped.status().code(), StatusCode::kParseError)
        << "mmap prefix " << len << ": " << mapped.status().ToString();
  }
}

TEST(ColumnarSnapshotTest, BitFlipFuzzBothLoaders) {
  auto service = BuildService(SpecSchemeKind::kTcm);
  ASSERT_TRUE(service.ok());
  TempFile file("flip");
  ASSERT_TRUE(service->SaveSnapshot(file.path()).ok());
  const std::vector<uint8_t> bytes = ReadAll(file.path());

  TempFile flipped("flip_out");
  for (size_t i = 0; i < bytes.size(); ++i) {
    // One flip per byte (rotating bit position) keeps the sweep
    // byte-exhaustive at an eighth of the full bit-exhaustive cost.
    std::vector<uint8_t> mutated = bytes;
    mutated[i] ^= static_cast<uint8_t>(1u << (i % 8));
    WriteAll(flipped.path(), mutated);
    // Every single-bit flip must be either DETECTED (clean Status — CRC-32
    // catches all single-bit payload errors, header damage parses into
    // missing/garbled sections) or PROVABLY HARMLESS: the one survivable
    // flip class is a pad section's id byte, which turns the pad into a
    // duplicate-id decoy that nothing reads — so a load that succeeds
    // must answer bit-identically to the uncorrupted original. Never a
    // crash, never a silently different registry.
    auto copied = ProvenanceService::LoadSnapshot(flipped.path());
    if (copied.ok()) ExpectAnswersIdentical(*service, *copied);
    auto mapped = ProvenanceService::LoadSnapshot(flipped.path(), {},
                                                  {.use_mmap = true});
    ASSERT_EQ(copied.ok(), mapped.ok()) << "byte " << i;
    if (mapped.ok()) ExpectAnswersIdentical(*service, *mapped);
  }
}

TEST(ColumnarSnapshotTest, RunIndexTrailingBytesAreRejected) {
  // v2 analog of snapshot_test's RunsSectionTrailingBytesAreRejected: a
  // CRC-valid run index with bytes past the declared runs means a writer
  // bug; those runs must not vanish silently.
  auto service = BuildService(SpecSchemeKind::kTcm);
  ASSERT_TRUE(service.ok());
  TempFile file("index_trailing");
  ASSERT_TRUE(service->SaveSnapshot(file.path()).ok());
  auto reader = SnapshotReader::ReadFile(file.path());
  ASSERT_TRUE(reader.ok());
  SnapshotWriter writer;
  for (uint32_t id : {kSnapshotSectionSpec, kSnapshotSectionScheme,
                      kSnapshotSectionRunIndex, kSnapshotSectionColumns}) {
    auto section = reader->Section(id);
    ASSERT_TRUE(section.ok());
    std::vector<uint8_t> payload(section->begin(), section->end());
    if (id == kSnapshotSectionRunIndex) payload.push_back(0x00);
    if (id == kSnapshotSectionColumns) {
      writer.AddAlignedSection(id, std::move(payload));
    } else {
      writer.AddSection(id, std::move(payload));
    }
  }
  TempFile tampered("index_trailing_tampered");
  ASSERT_TRUE(std::move(writer).WriteFile(tampered.path()).ok());
  auto restored = ProvenanceService::LoadSnapshot(tampered.path());
  ASSERT_FALSE(restored.ok());
  EXPECT_EQ(restored.status().code(), StatusCode::kParseError);
  EXPECT_NE(restored.status().message().find("run registry has trailing"),
            std::string::npos)
      << restored.status().ToString();
}

TEST(ColumnarSnapshotTest, SchemeTagMismatchIsRejected) {
  // Rewrite the scheme section to a different bundled scheme: the run
  // index's per-run tags now disagree with the service's scheme and the
  // load must refuse (the tag is what ties labels to the scheme that can
  // interpret them).
  auto service = BuildService(SpecSchemeKind::kTcm);
  ASSERT_TRUE(service.ok());
  TempFile file("tag_mismatch");
  ASSERT_TRUE(service->SaveSnapshot(file.path()).ok());
  auto reader = SnapshotReader::ReadFile(file.path());
  ASSERT_TRUE(reader.ok());
  SnapshotWriter writer;
  for (uint32_t id : {kSnapshotSectionSpec, kSnapshotSectionScheme,
                      kSnapshotSectionRunIndex, kSnapshotSectionColumns}) {
    auto section = reader->Section(id);
    ASSERT_TRUE(section.ok());
    std::vector<uint8_t> payload(section->begin(), section->end());
    if (id == kSnapshotSectionScheme) {
      const std::string other = "BFS";
      payload.assign(other.begin(), other.end());
    }
    if (id == kSnapshotSectionColumns) {
      writer.AddAlignedSection(id, std::move(payload));
    } else {
      writer.AddSection(id, std::move(payload));
    }
  }
  TempFile tampered("tag_mismatch_tampered");
  ASSERT_TRUE(std::move(writer).WriteFile(tampered.path()).ok());
  auto restored = ProvenanceService::LoadSnapshot(tampered.path());
  ASSERT_FALSE(restored.ok());
  EXPECT_EQ(restored.status().code(), StatusCode::kParseError);
  EXPECT_NE(restored.status().message().find("was labeled under scheme"),
            std::string::npos)
      << restored.status().ToString();
}

TEST(ColumnarSnapshotTest, UnalignedColumnsStillDecode) {
  // Re-adding the columns payload as a plain (unaligned) section breaks
  // the zero-copy precondition but not the format: the loader's decode
  // path must restore an equivalent service from the same bytes.
  auto service = BuildService(SpecSchemeKind::kTcm);
  ASSERT_TRUE(service.ok());
  TempFile file("unaligned");
  ASSERT_TRUE(service->SaveSnapshot(file.path()).ok());
  auto reader = SnapshotReader::ReadFile(file.path());
  ASSERT_TRUE(reader.ok());
  SnapshotWriter writer;
  for (uint32_t id : {kSnapshotSectionSpec, kSnapshotSectionScheme,
                      kSnapshotSectionRunIndex, kSnapshotSectionColumns}) {
    auto section = reader->Section(id);
    ASSERT_TRUE(section.ok());
    writer.AddSection(id,
                      std::vector<uint8_t>(section->begin(), section->end()));
  }
  TempFile rebuilt("unaligned_rebuilt");
  ASSERT_TRUE(std::move(writer).WriteFile(rebuilt.path()).ok());
  auto restored = ProvenanceService::LoadSnapshot(rebuilt.path());
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  ExpectAnswersIdentical(*service, *restored);
}

TEST(ColumnarSnapshotTest, ImportRejectsBlobFromAnotherScheme) {
  // The blob-level half of the scheme-tag contract (the header-comment
  // admission fixed in provenance_store.h): an exported run carries its
  // scheme tag and a service under a different scheme refuses it.
  auto tcm = BuildService(SpecSchemeKind::kTcm);
  ASSERT_TRUE(tcm.ok());
  auto ex = testing_util::MakeRunningExample();
  auto bfs =
      ProvenanceService::Create(std::move(ex.spec), SpecSchemeKind::kBfs);
  ASSERT_TRUE(bfs.ok());
  auto blob = tcm->ExportRun(tcm->ListRuns()[0]);
  ASSERT_TRUE(blob.ok());
  auto imported = bfs->ImportRun(*blob);
  ASSERT_FALSE(imported.ok());
  EXPECT_NE(imported.status().message().find("was labeled under scheme"),
            std::string::npos)
      << imported.status().ToString();
}

}  // namespace
}  // namespace skl
