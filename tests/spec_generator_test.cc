// Tests for the synthetic specification generator: exact structural targets
// across seeds and parameter combinations, plus infeasible-target errors.
#include <gtest/gtest.h>

#include "src/workload/spec_generator.h"

namespace skl {
namespace {

struct GenCase {
  uint32_t n, m, subs, depth;
  uint64_t seed;
};

class SpecGeneratorExact : public ::testing::TestWithParam<GenCase> {};

TEST_P(SpecGeneratorExact, HitsTargetsExactly) {
  const GenCase& c = GetParam();
  SpecGenOptions opt;
  opt.num_vertices = c.n;
  opt.num_edges = c.m;
  opt.num_subgraphs = c.subs;
  opt.depth = c.depth;
  opt.seed = c.seed;
  auto spec = GenerateSpecification(opt);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec->graph().num_vertices(), c.n);
  EXPECT_EQ(spec->graph().num_edges(), c.m);
  EXPECT_EQ(spec->subgraphs().size(), c.subs);
  EXPECT_EQ(spec->hierarchy().size(), c.subs + 1u);
  EXPECT_EQ(spec->hierarchy().depth(), static_cast<int32_t>(c.depth));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SpecGeneratorExact,
    ::testing::Values(GenCase{100, 200, 9, 4, 1}, GenCase{100, 200, 9, 4, 2},
                      GenCase{100, 200, 9, 4, 3}, GenCase{50, 100, 9, 4, 1},
                      GenCase{200, 400, 9, 4, 1}, GenCase{29, 31, 3, 2, 7},
                      GenCase{35, 45, 2, 3, 7}, GenCase{58, 72, 5, 3, 7},
                      GenCase{111, 158, 8, 3, 7}, GenCase{20, 19, 0, 1, 1},
                      GenCase{40, 60, 1, 2, 4}, GenCase{60, 80, 12, 6, 11}),
    [](const auto& info) {
      const GenCase& c = info.param;
      return "n" + std::to_string(c.n) + "m" + std::to_string(c.m) + "k" +
             std::to_string(c.subs) + "d" + std::to_string(c.depth) + "s" +
             std::to_string(c.seed);
    });

TEST(SpecGeneratorTest, DeterministicForSameSeed) {
  SpecGenOptions opt;
  opt.seed = 42;
  auto a = GenerateSpecification(opt);
  auto b = GenerateSpecification(opt);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->graph().Edges(), b->graph().Edges());
}

TEST(SpecGeneratorTest, DifferentSeedsDiffer) {
  SpecGenOptions opt;
  opt.seed = 1;
  auto a = GenerateSpecification(opt);
  opt.seed = 2;
  auto b = GenerateSpecification(opt);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE(a->graph().Edges(), b->graph().Edges());
}

TEST(SpecGeneratorTest, ForkFractionExtremes) {
  SpecGenOptions opt;
  opt.fork_fraction = 0.0;
  auto all_loops = GenerateSpecification(opt);
  ASSERT_TRUE(all_loops.ok()) << all_loops.status().ToString();
  EXPECT_EQ(all_loops->num_forks(), 0u);
  opt.fork_fraction = 1.0;
  auto all_forks = GenerateSpecification(opt);
  ASSERT_TRUE(all_forks.ok()) << all_forks.status().ToString();
  EXPECT_EQ(all_forks->num_loops(), 0u);
}

TEST(SpecGeneratorTest, InfeasibleTargetsRejected) {
  SpecGenOptions opt;
  // Too few vertices for the requested subgraphs.
  opt.num_vertices = 5;
  opt.num_subgraphs = 9;
  opt.depth = 4;
  EXPECT_FALSE(GenerateSpecification(opt).ok());

  opt = SpecGenOptions{};
  opt.num_edges = 10;  // below n-1
  opt.num_vertices = 100;
  EXPECT_FALSE(GenerateSpecification(opt).ok());

  opt = SpecGenOptions{};
  opt.depth = 1;
  opt.num_subgraphs = 3;  // depth 1 admits none
  EXPECT_FALSE(GenerateSpecification(opt).ok());

  opt = SpecGenOptions{};
  opt.depth = 6;
  opt.num_subgraphs = 2;  // cannot realize depth 6 with 2 subgraphs
  EXPECT_FALSE(GenerateSpecification(opt).ok());

  opt = SpecGenOptions{};
  opt.num_vertices = 0;
  EXPECT_FALSE(GenerateSpecification(opt).ok());
}

TEST(SpecGeneratorTest, SkipEdgeOverflowRejected) {
  SpecGenOptions opt;
  opt.num_vertices = 10;
  opt.num_edges = 500;  // far beyond the available skip slots
  opt.num_subgraphs = 0;
  opt.depth = 1;
  EXPECT_FALSE(GenerateSpecification(opt).ok());
}

}  // namespace
}  // namespace skl
