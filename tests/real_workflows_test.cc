// Tests that the reconstructed "real" workflows reproduce Table 1 exactly.
#include <gtest/gtest.h>

#include "src/common/random.h"
#include "src/core/skeleton_labeler.h"
#include "src/graph/algorithms.h"
#include "src/workload/real_workflows.h"
#include "src/workload/run_generator.h"

namespace skl {
namespace {

TEST(RealWorkflowsTest, TableHasSixRows) {
  EXPECT_EQ(RealWorkflowTable().size(), 6u);
  EXPECT_EQ(RealWorkflowTable()[2].name, "QBLAST");
}

class RealWorkflowCharacteristics
    : public ::testing::TestWithParam<RealWorkflowInfo> {};

TEST_P(RealWorkflowCharacteristics, MatchesTable1) {
  const RealWorkflowInfo& info = GetParam();
  auto spec = BuildRealWorkflow(info.name);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec->graph().num_vertices(), info.n_g);
  EXPECT_EQ(spec->graph().num_edges(), info.m_g);
  EXPECT_EQ(spec->subgraphs().size() + 1, info.t_g_size);
  EXPECT_EQ(spec->hierarchy().depth(),
            static_cast<int32_t>(info.t_g_depth));
}

INSTANTIATE_TEST_SUITE_P(Table1, RealWorkflowCharacteristics,
                         ::testing::ValuesIn(RealWorkflowTable()),
                         [](const auto& info) { return info.param.name; });

TEST(RealWorkflowsTest, UnknownNameFails) {
  EXPECT_FALSE(BuildRealWorkflow("NotAWorkflow").ok());
}

TEST(RealWorkflowsTest, QblastSupportsLargeRuns) {
  auto spec = BuildRealWorkflow("QBLAST");
  ASSERT_TRUE(spec.ok());
  RunGenerator gen(&spec.value());
  RunGenOptions opt;
  opt.target_vertices = 10000;
  opt.seed = 1;
  auto run = gen.Generate(opt);
  ASSERT_TRUE(run.ok());
  double err = std::abs(static_cast<double>(run->run.num_vertices()) -
                        10000.0) /
               10000.0;
  EXPECT_LE(err, 0.25);
}

TEST_P(RealWorkflowCharacteristics, LabelsAnswerCorrectlyOnRuns) {
  const RealWorkflowInfo& info = GetParam();
  auto spec = BuildRealWorkflow(info.name);
  ASSERT_TRUE(spec.ok());
  RunGenerator gen(&spec.value());
  RunGenOptions ropt;
  ropt.target_vertices = 1000;
  ropt.seed = 17;
  auto run = gen.Generate(ropt);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  SkeletonLabeler labeler(&spec.value(), SpecSchemeKind::kTcm);
  ASSERT_TRUE(labeler.Init().ok());
  auto labeling = labeler.LabelRun(run->run);
  ASSERT_TRUE(labeling.ok()) << labeling.status().ToString();
  const Digraph& g = run->run.graph();
  Rng rng(19);
  for (int i = 0; i < 2500; ++i) {
    VertexId u = static_cast<VertexId>(rng.NextBelow(g.num_vertices()));
    VertexId v = static_cast<VertexId>(rng.NextBelow(g.num_vertices()));
    ASSERT_EQ(labeling->Reaches(u, v), Reaches(g, u, v))
        << info.name << " " << u << "->" << v;
  }
}

TEST(RealWorkflowsTest, RunningExampleSpecIsFigure2) {
  auto spec = BuildRunningExampleSpec();
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec->graph().num_vertices(), 8u);
  EXPECT_EQ(spec->num_forks(), 2u);
  EXPECT_EQ(spec->num_loops(), 2u);
  EXPECT_EQ(spec->hierarchy().depth(), 3);
}

}  // namespace
}  // namespace skl
