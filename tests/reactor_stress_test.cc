// Connection-scale stress for the epoll reactor server (src/net/server.cc):
// a four-digit population of idle connections plus dozens of active
// pipelined clients, served by a handful of threads. Pins the properties
// the reactor exists for — thousands of sockets cost state, not threads;
// answers under full load stay bit-identical to direct service calls; and
// the graceful drain completes with the whole population still connected.
// Runs under TSan and ASan in CI.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <span>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/core/provenance_service.h"
#include "src/net/client.h"
#include "src/net/server.h"
#include "src/workload/run_generator.h"
#include "tests/test_util.h"

namespace skl {
namespace {

/// Open file descriptors of this process (both ends of every loopback
/// connection live here, so the count sees client and server sides).
size_t CountOpenFds() {
  size_t count = 0;
  for ([[maybe_unused]] const auto& entry :
       std::filesystem::directory_iterator("/proc/self/fd")) {
    ++count;
  }
  return count;
}

/// Thread count of this process, from /proc/self/status.
size_t CountThreads() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("Threads:", 0) == 0) {
      return static_cast<size_t>(std::stoul(line.substr(8)));
    }
  }
  return 0;
}

/// Raises the soft fd limit toward the hard one; returns the soft limit.
size_t RaiseFdLimit() {
  rlimit lim{};
  SKL_CHECK(::getrlimit(RLIMIT_NOFILE, &lim) == 0);
  if (lim.rlim_cur < lim.rlim_max) {
    lim.rlim_cur = lim.rlim_max;
    ::setrlimit(RLIMIT_NOFILE, &lim);
    SKL_CHECK(::getrlimit(RLIMIT_NOFILE, &lim) == 0);
  }
  return static_cast<size_t>(lim.rlim_cur);
}

/// A connected TCP socket that never writes: the idle population.
int ConnectIdle(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  SKL_CHECK(fd >= 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  SKL_CHECK(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr) == 1);
  SKL_CHECK(::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                      sizeof(addr)) == 0);
  return fd;
}

TEST(ReactorStressTest, ThousandIdleConnsPlusActivePipelinedClients) {
  const size_t fd_limit = RaiseFdLimit();
  // Each loopback connection costs two fds in this process; leave slack
  // for the suite's own files, the reactor fds and the active clients.
  const size_t idle_target = std::min<size_t>(1000, (fd_limit - 200) / 2);
  constexpr size_t kActiveClients = 32;

  auto example = testing_util::MakeRunningExample();
  RunGenerator generator(&example.spec);
  RunGenOptions gen_options;
  gen_options.target_vertices = 60;
  gen_options.seed = 21;
  auto gen = generator.Generate(gen_options);
  ASSERT_TRUE(gen.ok()) << gen.status().ToString();
  auto service =
      ProvenanceService::Create(std::move(example.spec), SpecSchemeKind::kTcm);
  ASSERT_TRUE(service.ok());
  auto id = service->AddRun(gen->run);
  ASSERT_TRUE(id.ok());
  const VertexId n = gen->run.num_vertices();

  ProvenanceServer::Options options;
  options.num_io_threads = 2;
  options.num_threads = 4;
  auto server = ProvenanceServer::Start(std::move(service).value(), options);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  const uint16_t port = (*server)->port();

  // The whole point of the reactor: adding a thousand connections must add
  // zero threads. Snapshot the thread count with the server fully up.
  const size_t threads_before = CountThreads();
  const size_t fds_before = CountOpenFds();

  std::vector<int> idle_fds;
  idle_fds.reserve(idle_target);
  for (size_t i = 0; i < idle_target; ++i) {
    idle_fds.push_back(ConnectIdle(port));
  }
  // Let the reactor drain its accept backlog before counting.
  for (int spin = 0;
       spin < 500 &&
       (*server)->reactor_stats().connections_open < idle_target;
       ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE((*server)->reactor_stats().connections_open, idle_target);
  EXPECT_EQ(CountThreads(), threads_before)
      << "idle connections must not cost threads";
  // Each connection: one client fd + one accepted server fd, plus a small
  // allowance for anything the runtime opened meanwhile.
  EXPECT_LE(CountOpenFds(), fds_before + 2 * idle_target + 64);

  // 32 active pipelined clients, answers checked bit-identical against the
  // direct in-process service, with the idle thousand still connected.
  const ProvenanceService& direct = (*server)->service();
  std::vector<VertexPair> pairs;
  for (VertexId v = 0; v < n; ++v) {
    for (VertexId w = 0; w < n; ++w) pairs.push_back({v, w});
  }
  auto expected = direct.ReachesBatch(*id, pairs);
  ASSERT_TRUE(expected.ok());

  std::vector<std::thread> workers;
  std::vector<std::string> failures(kActiveClients);
  for (size_t c = 0; c < kActiveClients; ++c) {
    workers.emplace_back([&, c] {
      auto client = ProvenanceClient::Connect("127.0.0.1", port);
      if (!client.ok()) {
        failures[c] = client.status().ToString();
        return;
      }
      auto piped = client->ReachesPipelined(*id, pairs);
      if (!piped.ok()) {
        failures[c] = piped.status().ToString();
        return;
      }
      if (*piped != *expected) {
        failures[c] = "pipelined answers diverged from direct service";
        return;
      }
      auto batch = client->ReachesBatch(*id, pairs);
      if (!batch.ok() || *batch != *expected) {
        failures[c] = "batch answers diverged from direct service";
      }
    });
  }
  for (std::thread& t : workers) t.join();
  for (size_t c = 0; c < kActiveClients; ++c) {
    EXPECT_TRUE(failures[c].empty()) << "client " << c << ": " << failures[c];
  }
  EXPECT_EQ(CountThreads(), threads_before)
      << "active load is served by the fixed pools, not per-conn threads";

  // Graceful drain with the idle thousand still connected: every one of
  // them must be half-closed and reaped, and the fd ledger must balance.
  auto shutdown_client = ProvenanceClient::Connect("127.0.0.1", port);
  ASSERT_TRUE(shutdown_client.ok());
  ASSERT_TRUE(shutdown_client->Shutdown().ok());
  (*server)->Wait();
  const ReactorStats stats = (*server)->reactor_stats();
  EXPECT_EQ(stats.connections_open, 0u);
  EXPECT_GE(stats.connections_accepted, idle_target + kActiveClients);
  for (int fd : idle_fds) ::close(fd);
  // All server-side fds are gone and our client fds are closed: within a
  // small allowance we are back where we started.
  EXPECT_LE(CountOpenFds(), fds_before + 16);
}

}  // namespace
}  // namespace skl
