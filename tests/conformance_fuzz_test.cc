// Conformance fuzzing: mutate conforming runs at random (add/delete edges,
// relabel/duplicate vertices) and require that the plan-recovery algorithm
// either rejects the mutant as nonconforming or — if the mutant happens to
// remain a valid run — produces labels that still agree with graph search.
// Either outcome is sound; silently mislabeling is the only failure mode.
#include <gtest/gtest.h>

#include "src/common/check.h"
#include "src/common/random.h"
#include "src/core/skeleton_labeler.h"
#include "src/graph/algorithms.h"
#include "src/workload/run_generator.h"
#include "src/workload/spec_generator.h"

namespace skl {
namespace {

enum class Mutation {
  kAddEdge,
  kDeleteEdge,
  kRelabelVertex,
  kDuplicateVertex,
};

Run Mutate(const Specification& spec, const Run& run, Mutation kind,
           Rng* rng) {
  RunBuilder rb(spec.shared_modules());
  for (VertexId v = 0; v < run.num_vertices(); ++v) {
    ModuleId m = run.ModuleOf(v);
    if (kind == Mutation::kRelabelVertex &&
        v == rng->NextBelow(run.num_vertices())) {
      m = static_cast<ModuleId>(
          rng->NextBelow(spec.graph().num_vertices()));
    }
    rb.AddVertexById(m);
  }
  auto edges = run.graph().Edges();
  size_t skip = kind == Mutation::kDeleteEdge
                    ? rng->NextBelow(edges.size())
                    : SIZE_MAX;
  for (size_t i = 0; i < edges.size(); ++i) {
    if (i == skip) continue;
    rb.AddEdge(edges[i].first, edges[i].second);
  }
  if (kind == Mutation::kAddEdge) {
    VertexId u = static_cast<VertexId>(rng->NextBelow(run.num_vertices()));
    VertexId v = static_cast<VertexId>(rng->NextBelow(run.num_vertices()));
    if (u != v) rb.AddEdge(u, v);
  }
  if (kind == Mutation::kDuplicateVertex) {
    VertexId v = static_cast<VertexId>(rng->NextBelow(run.num_vertices()));
    VertexId dup = rb.AddVertexById(run.ModuleOf(v));
    auto in = run.graph().InNeighbors(v);
    if (!in.empty()) rb.AddEdge(in[0], dup);
    auto out = run.graph().OutNeighbors(v);
    if (!out.empty()) rb.AddEdge(dup, out[0]);
  }
  auto result = std::move(rb).Build();
  SKL_CHECK(result.ok());
  return std::move(result).value();
}

class ConformanceFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ConformanceFuzz, MutantsAreRejectedOrLabeledCorrectly) {
  const uint64_t seed = GetParam();
  SpecGenOptions sopt;
  sopt.num_vertices = 40;
  sopt.num_edges = 64;
  sopt.num_subgraphs = 5;
  sopt.depth = 3;
  sopt.seed = seed;
  auto spec = GenerateSpecification(sopt);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  SkeletonLabeler labeler(&spec.value(), SpecSchemeKind::kTcm);
  ASSERT_TRUE(labeler.Init().ok());

  RunGenerator gen(&spec.value());
  Rng rng(seed * 7919 + 3);
  size_t rejected = 0, accepted = 0;
  for (int trial = 0; trial < 40; ++trial) {
    RunGenOptions ropt;
    ropt.target_vertices = 150;
    ropt.seed = seed * 100 + trial;
    auto generated = gen.Generate(ropt);
    ASSERT_TRUE(generated.ok());
    Mutation kind = static_cast<Mutation>(rng.NextBelow(4));
    ::skl::Run mutant =
        Mutate(spec.value(), generated->run, kind, &rng);

    auto labeling = labeler.LabelRun(mutant);
    if (!labeling.ok()) {
      // Rejection must come through the typed error, not a crash.
      EXPECT_EQ(labeling.status().code(), StatusCode::kInvalidRun)
          << labeling.status().ToString();
      ++rejected;
      continue;
    }
    ++accepted;
    // The mutant slipped through as (or equal to) a conforming run: its
    // labels must still answer correctly.
    const Digraph& g = mutant.graph();
    for (int q = 0; q < 600; ++q) {
      VertexId u = static_cast<VertexId>(rng.NextBelow(g.num_vertices()));
      VertexId v = static_cast<VertexId>(rng.NextBelow(g.num_vertices()));
      ASSERT_EQ(labeling->Reaches(u, v), Reaches(g, u, v))
          << "seed " << seed << " trial " << trial << " mutation "
          << static_cast<int>(kind);
    }
  }
  // Most mutations break conformance; make sure the oracle is doing work.
  EXPECT_GT(rejected, 0u) << "no mutant was rejected across 40 trials";
  (void)accepted;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConformanceFuzz,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

TEST(ConformanceFuzzShape, ScrambledEdgesRejected) {
  // Extreme mutant: keep the vertex multiset of a valid run but rewire all
  // edges randomly (acyclic by index order).
  SpecGenOptions sopt;
  sopt.seed = 9;
  auto spec = GenerateSpecification(sopt);
  ASSERT_TRUE(spec.ok());
  RunGenerator gen(&spec.value());
  RunGenOptions ropt;
  ropt.target_vertices = 200;
  ropt.seed = 10;
  auto generated = gen.Generate(ropt);
  ASSERT_TRUE(generated.ok());
  Rng rng(11);
  RunBuilder rb(spec->shared_modules());
  for (VertexId v = 0; v < generated->run.num_vertices(); ++v) {
    rb.AddVertexById(generated->run.ModuleOf(v));
  }
  for (size_t i = 0; i < generated->run.num_edges(); ++i) {
    VertexId u = static_cast<VertexId>(
        rng.NextBelow(generated->run.num_vertices() - 1));
    VertexId v = static_cast<VertexId>(
        u + 1 + rng.NextBelow(generated->run.num_vertices() - u - 1));
    rb.AddEdge(u, v);
  }
  auto mutant = std::move(rb).Build();
  ASSERT_TRUE(mutant.ok());
  SkeletonLabeler labeler(&spec.value(), SpecSchemeKind::kTcm);
  ASSERT_TRUE(labeler.Init().ok());
  auto labeling = labeler.LabelRun(*mutant);
  EXPECT_FALSE(labeling.ok());
}

}  // namespace
}  // namespace skl
