// Conformance fuzzing: mutate conforming runs at random (add/delete edges,
// relabel/duplicate vertices) and require that the plan-recovery algorithm
// either rejects the mutant as nonconforming or — if the mutant happens to
// remain a valid run — produces labels that still agree with graph search.
// Either outcome is sound; silently mislabeling is the only failure mode.
// The spec-delta dimension fuzzes the other mutable input: random valid
// and invalid specification edits against a live service. An invalid delta
// must come back as a descriptive typed Status — and must not corrupt
// anything, which a full query sweep over every ingested run proves after
// each rejection. A valid delta must advance the epoch by exactly one and
// leave every old run's answers frozen.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/common/check.h"
#include "src/common/random.h"
#include "src/core/provenance_service.h"
#include "src/core/skeleton_labeler.h"
#include "src/graph/algorithms.h"
#include "src/workflow/spec_delta.h"
#include "src/workload/data_generator.h"
#include "src/workload/run_generator.h"
#include "src/workload/spec_generator.h"

namespace skl {
namespace {

enum class Mutation {
  kAddEdge,
  kDeleteEdge,
  kRelabelVertex,
  kDuplicateVertex,
};

Run Mutate(const Specification& spec, const Run& run, Mutation kind,
           Rng* rng) {
  RunBuilder rb(spec.shared_modules());
  for (VertexId v = 0; v < run.num_vertices(); ++v) {
    ModuleId m = run.ModuleOf(v);
    if (kind == Mutation::kRelabelVertex &&
        v == rng->NextBelow(run.num_vertices())) {
      m = static_cast<ModuleId>(
          rng->NextBelow(spec.graph().num_vertices()));
    }
    rb.AddVertexById(m);
  }
  auto edges = run.graph().Edges();
  size_t skip = kind == Mutation::kDeleteEdge
                    ? rng->NextBelow(edges.size())
                    : SIZE_MAX;
  for (size_t i = 0; i < edges.size(); ++i) {
    if (i == skip) continue;
    rb.AddEdge(edges[i].first, edges[i].second);
  }
  if (kind == Mutation::kAddEdge) {
    VertexId u = static_cast<VertexId>(rng->NextBelow(run.num_vertices()));
    VertexId v = static_cast<VertexId>(rng->NextBelow(run.num_vertices()));
    if (u != v) rb.AddEdge(u, v);
  }
  if (kind == Mutation::kDuplicateVertex) {
    VertexId v = static_cast<VertexId>(rng->NextBelow(run.num_vertices()));
    VertexId dup = rb.AddVertexById(run.ModuleOf(v));
    auto in = run.graph().InNeighbors(v);
    if (!in.empty()) rb.AddEdge(in[0], dup);
    auto out = run.graph().OutNeighbors(v);
    if (!out.empty()) rb.AddEdge(dup, out[0]);
  }
  auto result = std::move(rb).Build();
  SKL_CHECK(result.ok());
  return std::move(result).value();
}

class ConformanceFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ConformanceFuzz, MutantsAreRejectedOrLabeledCorrectly) {
  const uint64_t seed = GetParam();
  SpecGenOptions sopt;
  sopt.num_vertices = 40;
  sopt.num_edges = 64;
  sopt.num_subgraphs = 5;
  sopt.depth = 3;
  sopt.seed = seed;
  auto spec = GenerateSpecification(sopt);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  SkeletonLabeler labeler(&spec.value(), SpecSchemeKind::kTcm);
  ASSERT_TRUE(labeler.Init().ok());

  RunGenerator gen(&spec.value());
  Rng rng(seed * 7919 + 3);
  size_t rejected = 0, accepted = 0;
  for (int trial = 0; trial < 40; ++trial) {
    RunGenOptions ropt;
    ropt.target_vertices = 150;
    ropt.seed = seed * 100 + trial;
    auto generated = gen.Generate(ropt);
    ASSERT_TRUE(generated.ok());
    Mutation kind = static_cast<Mutation>(rng.NextBelow(4));
    ::skl::Run mutant =
        Mutate(spec.value(), generated->run, kind, &rng);

    auto labeling = labeler.LabelRun(mutant);
    if (!labeling.ok()) {
      // Rejection must come through the typed error, not a crash.
      EXPECT_EQ(labeling.status().code(), StatusCode::kInvalidRun)
          << labeling.status().ToString();
      ++rejected;
      continue;
    }
    ++accepted;
    // The mutant slipped through as (or equal to) a conforming run: its
    // labels must still answer correctly.
    const Digraph& g = mutant.graph();
    for (int q = 0; q < 600; ++q) {
      VertexId u = static_cast<VertexId>(rng.NextBelow(g.num_vertices()));
      VertexId v = static_cast<VertexId>(rng.NextBelow(g.num_vertices()));
      ASSERT_EQ(labeling->Reaches(u, v), Reaches(g, u, v))
          << "seed " << seed << " trial " << trial << " mutation "
          << static_cast<int>(kind);
    }
  }
  // Most mutations break conformance; make sure the oracle is doing work.
  EXPECT_GT(rejected, 0u) << "no mutant was rejected across 40 trials";
  (void)accepted;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConformanceFuzz,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

// ------------------------------------------------- spec-delta dimension --

class SpecDeltaFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SpecDeltaFuzz, InvalidDeltasRejectDescriptivelyWithoutCorruption) {
  const uint64_t seed = GetParam();
  SpecGenOptions sopt;
  sopt.num_vertices = 24;
  sopt.num_edges = 36;
  sopt.num_subgraphs = 3;
  sopt.depth = 2;
  sopt.seed = seed;
  auto spec = GenerateSpecification(sopt);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  std::vector<std::string> module_names;
  for (VertexId v = 0; v < spec->graph().num_vertices(); ++v) {
    module_names.push_back(spec->ModuleName(v));
  }

  auto service = ProvenanceService::Create(spec.value(),
                                           SpecSchemeKind::kTcm);
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  RunGenerator gen(&service->spec());
  std::vector<RunId> ids;
  for (int i = 0; i < 3; ++i) {
    RunGenOptions ropt;
    ropt.target_vertices = 60;
    ropt.seed = seed * 100 + i;
    auto generated = gen.Generate(ropt);
    ASSERT_TRUE(generated.ok());
    DataGenOptions dopt;
    dopt.seed = seed * 10 + i;
    const DataCatalog catalog = GenerateDataCatalog(generated->run, dopt);
    auto id = service->AddRun(generated->run, &catalog);
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    ids.push_back(*id);
  }

  // Ground truth per run, captured before any delta: a probe grid across
  // all four query kinds. The sweep below replays it verbatim.
  struct Truth {
    RunId id;
    VertexId n;
    size_t items;
    std::vector<bool> reaches;       // n x n flattened (capped)
    std::vector<bool> depends;       // items x items flattened (capped)
  };
  std::vector<Truth> truths;
  for (RunId id : ids) {
    auto stats = service->Stats(id);
    ASSERT_TRUE(stats.ok());
    Truth t;
    t.id = id;
    t.n = std::min<VertexId>(stats->num_vertices, 12);
    t.items = std::min<size_t>(stats->num_items, 8);
    for (VertexId u = 0; u < t.n; ++u) {
      for (VertexId v = 0; v < t.n; ++v) {
        auto r = service->Reaches(id, u, v);
        ASSERT_TRUE(r.ok());
        t.reaches.push_back(*r);
      }
    }
    for (size_t x = 0; x < t.items; ++x) {
      for (size_t y = 0; y < t.items; ++y) {
        auto r = service->DependsOn(id, static_cast<DataItemId>(x),
                                    static_cast<DataItemId>(y));
        ASSERT_TRUE(r.ok());
        t.depends.push_back(*r);
      }
    }
    truths.push_back(std::move(t));
  }
  auto sweep = [&](const char* when) {
    for (const Truth& t : truths) {
      size_t k = 0;
      for (VertexId u = 0; u < t.n; ++u) {
        for (VertexId v = 0; v < t.n; ++v, ++k) {
          auto r = service->Reaches(t.id, u, v);
          ASSERT_TRUE(r.ok()) << when << ": " << r.status().ToString();
          ASSERT_EQ(*r, t.reaches[k])
              << when << ": Reaches(" << t.id.value() << ", " << u << ", "
              << v << ") changed";
        }
      }
      k = 0;
      for (size_t x = 0; x < t.items; ++x) {
        for (size_t y = 0; y < t.items; ++y, ++k) {
          auto r = service->DependsOn(t.id, static_cast<DataItemId>(x),
                                      static_cast<DataItemId>(y));
          ASSERT_TRUE(r.ok()) << when << ": " << r.status().ToString();
          ASSERT_EQ(*r, t.depends[k])
              << when << ": DependsOn(" << t.id.value() << ", " << x << ", "
              << y << ") changed";
        }
      }
    }
  };

  Rng rng(seed * 104729 + 1);
  auto pick_name = [&]() -> std::string {
    const uint64_t r = rng.NextBelow(10);
    if (r < 6) return module_names[rng.NextBelow(module_names.size())];
    if (r < 8) return "zz" + std::to_string(rng.NextBelow(4));  // unknown
    return "";  // empty name: always invalid
  };
  size_t applied = 0, rejected = 0;
  uint64_t fresh = 0;
  for (int trial = 0; trial < 80; ++trial) {
    SpecDelta delta;
    delta.kind = static_cast<SpecDelta::Kind>(1 + rng.NextBelow(4));
    switch (delta.kind) {
      case SpecDelta::Kind::kAddModule:
        delta.module = rng.NextBelow(3) == 0
                           ? pick_name()  // duplicate or garbage name
                           : "dyn" + std::to_string(fresh++);
        for (uint64_t i = 0; i < rng.NextBelow(3); ++i) {
          delta.from.push_back(pick_name());
        }
        for (uint64_t i = 0; i < rng.NextBelow(3); ++i) {
          delta.to.push_back(pick_name());
        }
        break;
      case SpecDelta::Kind::kRemoveModule:
        delta.module = pick_name();
        break;
      case SpecDelta::Kind::kAddEdge:
      case SpecDelta::Kind::kRemoveEdge:
        delta.edge_from = pick_name();
        delta.edge_to = pick_name();
        break;
    }
    const uint64_t epoch_before = service->spec_epoch();
    auto result = service->ApplySpecDelta(delta);
    if (result.ok()) {
      ++applied;
      ASSERT_EQ(*result, epoch_before + 1) << "epoch must advance by one";
      ASSERT_EQ(service->spec_epoch(), epoch_before + 1);
    } else {
      ++rejected;
      // Rejection must be typed and descriptive, never a crash or a
      // silent half-application.
      EXPECT_FALSE(result.status().message().empty())
          << "trial " << trial << ": undescriptive rejection";
      ASSERT_EQ(service->spec_epoch(), epoch_before)
          << "trial " << trial << ": rejected delta moved the epoch";
    }
    // Whatever happened, runs ingested under epoch 1 answer unchanged.
    sweep(result.ok() ? "after accepted delta" : "after rejected delta");
    if (::testing::Test::HasFatalFailure()) {
      ADD_FAILURE() << "seed " << seed << " trial " << trial << " delta "
                    << SpecDeltaKindName(delta.kind);
      return;
    }
  }
  // Random edits against a declared-subgraph-rich spec must hit both
  // paths, or the fuzz proved nothing.
  EXPECT_GT(rejected, 0u) << "no delta was rejected across 80 trials";
  (void)applied;
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpecDeltaFuzz,
                         ::testing::Values(21u, 22u, 23u, 24u));

TEST(ConformanceFuzzShape, ScrambledEdgesRejected) {
  // Extreme mutant: keep the vertex multiset of a valid run but rewire all
  // edges randomly (acyclic by index order).
  SpecGenOptions sopt;
  sopt.seed = 9;
  auto spec = GenerateSpecification(sopt);
  ASSERT_TRUE(spec.ok());
  RunGenerator gen(&spec.value());
  RunGenOptions ropt;
  ropt.target_vertices = 200;
  ropt.seed = 10;
  auto generated = gen.Generate(ropt);
  ASSERT_TRUE(generated.ok());
  Rng rng(11);
  RunBuilder rb(spec->shared_modules());
  for (VertexId v = 0; v < generated->run.num_vertices(); ++v) {
    rb.AddVertexById(generated->run.ModuleOf(v));
  }
  for (size_t i = 0; i < generated->run.num_edges(); ++i) {
    VertexId u = static_cast<VertexId>(
        rng.NextBelow(generated->run.num_vertices() - 1));
    VertexId v = static_cast<VertexId>(
        u + 1 + rng.NextBelow(generated->run.num_vertices() - u - 1));
    rb.AddEdge(u, v);
  }
  auto mutant = std::move(rb).Build();
  ASSERT_TRUE(mutant.ok());
  SkeletonLabeler labeler(&spec.value(), SpecSchemeKind::kTcm);
  ASSERT_TRUE(labeler.Init().ok());
  auto labeling = labeler.LabelRun(*mutant);
  EXPECT_FALSE(labeling.ok());
}

}  // namespace
}  // namespace skl
