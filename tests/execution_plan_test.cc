// Tests for the ExecutionPlan container itself (structure bookkeeping,
// validation rules, Lemma 4.2 bound check).
#include <gtest/gtest.h>

#include "src/core/execution_plan.h"

namespace skl {
namespace {

TEST(ExecutionPlanTest, RootOnly) {
  ExecutionPlan plan(3);
  EXPECT_EQ(plan.num_nodes(), 1u);
  EXPECT_EQ(plan.node(kPlanRoot).type, PlanNodeType::kGPlus);
  EXPECT_EQ(plan.num_plus_nodes(), 1u);
  EXPECT_EQ(plan.num_nonempty_plus(), 0u);
  plan.AssignContext(0, kPlanRoot);
  plan.AssignContext(1, kPlanRoot);
  plan.AssignContext(2, kPlanRoot);
  EXPECT_EQ(plan.num_nonempty_plus(), 1u);
  EXPECT_TRUE(plan.Validate(5).ok());
}

TEST(ExecutionPlanTest, TypePredicates) {
  EXPECT_TRUE(IsPlusNode(PlanNodeType::kGPlus));
  EXPECT_TRUE(IsPlusNode(PlanNodeType::kFPlus));
  EXPECT_TRUE(IsPlusNode(PlanNodeType::kLPlus));
  EXPECT_FALSE(IsPlusNode(PlanNodeType::kFMinus));
  EXPECT_FALSE(IsPlusNode(PlanNodeType::kLMinus));
  EXPECT_STREQ(PlanNodeTypeName(PlanNodeType::kGPlus), "G+");
  EXPECT_STREQ(PlanNodeTypeName(PlanNodeType::kLMinus), "L-");
}

TEST(ExecutionPlanTest, TreeConstruction) {
  ExecutionPlan plan(4);
  PlanNodeId g = plan.AddNode(PlanNodeType::kFMinus, 1, kPlanRoot);
  PlanNodeId c1 = plan.AddNode(PlanNodeType::kFPlus, 1, g);
  PlanNodeId c2 = plan.AddNode(PlanNodeType::kFPlus, 1, g);
  EXPECT_EQ(plan.node(g).children.size(), 2u);
  EXPECT_EQ(plan.node(c1).parent, g);
  plan.AssignContext(0, kPlanRoot);
  plan.AssignContext(1, kPlanRoot);
  plan.AssignContext(2, c1);
  plan.AssignContext(3, c2);
  EXPECT_EQ(plan.num_nonempty_plus(), 3u);
  EXPECT_TRUE(plan.Validate(10).ok());
}

TEST(ExecutionPlanTest, ValidateRejectsUnassignedContext) {
  ExecutionPlan plan(2);
  plan.AssignContext(0, kPlanRoot);
  auto st = plan.Validate(3);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("without context"), std::string::npos);
}

TEST(ExecutionPlanTest, ValidateRejectsEmptyGroup) {
  ExecutionPlan plan(1);
  plan.AddNode(PlanNodeType::kFMinus, 1, kPlanRoot);
  plan.AssignContext(0, kPlanRoot);
  auto st = plan.Validate(3);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("no copies"), std::string::npos);
}

TEST(ExecutionPlanTest, ValidateRejectsNonAlternating) {
  ExecutionPlan plan(1);
  // + node directly under the + root.
  plan.AddNode(PlanNodeType::kFPlus, 1, kPlanRoot);
  plan.AssignContext(0, kPlanRoot);
  EXPECT_FALSE(plan.Validate(3).ok());
}

TEST(ExecutionPlanTest, ValidateEnforcesLemma42Bound) {
  ExecutionPlan plan(1);
  plan.AssignContext(0, kPlanRoot);
  // Grow an absurd plan for a run that claims a single edge.
  PlanNodeId parent = kPlanRoot;
  for (int i = 0; i < 8; ++i) {
    PlanNodeId minus = plan.AddNode(PlanNodeType::kLMinus, 1, parent);
    parent = plan.AddNode(PlanNodeType::kLPlus, 1, minus);
  }
  EXPECT_FALSE(plan.Validate(1).ok());
  EXPECT_TRUE(plan.Validate(100).ok());
}

TEST(ExecutionPlanTest, ToStringMentionsStructure) {
  ExecutionPlan plan(1);
  PlanNodeId g = plan.AddNode(PlanNodeType::kLMinus, 1, kPlanRoot);
  plan.AddNode(PlanNodeType::kLPlus, 1, g);
  plan.AssignContext(0, kPlanRoot);
  std::string s = plan.ToString();
  EXPECT_NE(s.find("G+"), std::string::npos);
  EXPECT_NE(s.find("L-"), std::string::npos);
  EXPECT_NE(s.find("L+"), std::string::npos);
}

}  // namespace
}  // namespace skl
