// Tests for the three-order context encoding (Algorithm 1 / Lemma 4.5):
// exact positions on a hand-built plan with known child order, plus the
// Lemma 4.5 invariants on the running example's recovered plan.
#include <gtest/gtest.h>

#include <vector>

#include "src/core/orders.h"
#include "src/core/plan_builder.h"
#include "tests/test_util.h"

namespace skl {
namespace {

TEST(OrdersTest, HandBuiltPlanExactPositions) {
  // Root with an F- (two F+ children) followed by an L- (two L+ children);
  // every + node nonempty. Preorder O1: root, f1, f2, l1, l2.
  ExecutionPlan plan(5);
  PlanNodeId fminus = plan.AddNode(PlanNodeType::kFMinus, 1, kPlanRoot);
  PlanNodeId f1 = plan.AddNode(PlanNodeType::kFPlus, 1, fminus);
  PlanNodeId f2 = plan.AddNode(PlanNodeType::kFPlus, 1, fminus);
  PlanNodeId lminus = plan.AddNode(PlanNodeType::kLMinus, 2, kPlanRoot);
  PlanNodeId l1 = plan.AddNode(PlanNodeType::kLPlus, 2, lminus);
  PlanNodeId l2 = plan.AddNode(PlanNodeType::kLPlus, 2, lminus);
  plan.AssignContext(0, kPlanRoot);
  plan.AssignContext(1, f1);
  plan.AssignContext(2, f2);
  plan.AssignContext(3, l1);
  plan.AssignContext(4, l2);

  ContextEncoding enc = GenerateThreeOrders(plan);
  EXPECT_EQ(enc.num_nonempty_plus, 5u);
  // O1: root(1), f1(2), f2(3), l1(4), l2(5).
  EXPECT_EQ(enc.q1[kPlanRoot], 1u);
  EXPECT_EQ(enc.q1[f1], 2u);
  EXPECT_EQ(enc.q1[f2], 3u);
  EXPECT_EQ(enc.q1[l1], 4u);
  EXPECT_EQ(enc.q1[l2], 5u);
  // O2 reverses F- children: f2 before f1.
  EXPECT_EQ(enc.q2[f1], 3u);
  EXPECT_EQ(enc.q2[f2], 2u);
  EXPECT_EQ(enc.q2[l1], 4u);
  EXPECT_EQ(enc.q2[l2], 5u);
  // O3 reverses L- children: l2 before l1.
  EXPECT_EQ(enc.q3[f1], 2u);
  EXPECT_EQ(enc.q3[f2], 3u);
  EXPECT_EQ(enc.q3[l1], 5u);
  EXPECT_EQ(enc.q3[l2], 4u);
  // Minus nodes and the (none here) empty + nodes get no position.
  EXPECT_EQ(enc.q1[fminus], 0u);
  EXPECT_EQ(enc.q1[lminus], 0u);
}

TEST(OrdersTest, EmptyPlusNodesAreSkipped) {
  ExecutionPlan plan(2);
  PlanNodeId fminus = plan.AddNode(PlanNodeType::kFMinus, 1, kPlanRoot);
  PlanNodeId f1 = plan.AddNode(PlanNodeType::kFPlus, 1, fminus);  // empty
  PlanNodeId lminus = plan.AddNode(PlanNodeType::kLMinus, 2, f1);
  PlanNodeId l1 = plan.AddNode(PlanNodeType::kLPlus, 2, lminus);
  plan.AssignContext(0, kPlanRoot);
  plan.AssignContext(1, l1);
  ContextEncoding enc = GenerateThreeOrders(plan);
  EXPECT_EQ(enc.num_nonempty_plus, 2u);
  EXPECT_EQ(enc.q1[f1], 0u);      // empty + node: skipped
  EXPECT_EQ(enc.q1[kPlanRoot], 1u);
  EXPECT_EQ(enc.q1[l1], 2u);
}

/// Finds the least common ancestor by walking parents.
PlanNodeId Lca(const ExecutionPlan& plan, PlanNodeId a, PlanNodeId b) {
  std::vector<bool> seen(plan.num_nodes(), false);
  for (PlanNodeId x = a; x != kInvalidPlanNode; x = plan.node(x).parent) {
    seen[x] = true;
  }
  for (PlanNodeId x = b; x != kInvalidPlanNode; x = plan.node(x).parent) {
    if (seen[x]) return x;
  }
  return kInvalidPlanNode;
}

TEST(OrdersTest, Lemma45InvariantsOnRunningExample) {
  auto ex = testing_util::MakeRunningExample();
  auto rec = ConstructPlan(ex.spec, ex.run);
  ASSERT_TRUE(rec.ok());
  const ExecutionPlan& plan = rec->plan;
  ContextEncoding enc = GenerateThreeOrders(plan);

  std::vector<PlanNodeId> nonempty;
  for (size_t i = 0; i < plan.num_nodes(); ++i) {
    if (enc.q1[i] != 0) nonempty.push_back(static_cast<PlanNodeId>(i));
  }
  ASSERT_EQ(nonempty.size(), 9u);

  for (PlanNodeId x : nonempty) {
    for (PlanNodeId y : nonempty) {
      if (x == y) continue;
      PlanNodeId lca = Lca(plan, x, y);
      ASSERT_NE(lca, kInvalidPlanNode);
      bool lt1 = enc.q1[x] < enc.q1[y];
      bool lt2 = enc.q2[x] < enc.q2[y];
      bool lt3 = enc.q3[x] < enc.q3[y];
      switch (plan.node(lca).type) {
        case PlanNodeType::kFMinus:
          // O1 and O2 must disagree; O1 and O3 agree (Lemma 4.5 case 1).
          EXPECT_NE(lt1, lt2);
          EXPECT_EQ(lt1, lt3);
          break;
        case PlanNodeType::kLMinus:
          // O1 and O3 must disagree; O1 and O2 agree (case 2).
          EXPECT_NE(lt1, lt3);
          EXPECT_EQ(lt1, lt2);
          break;
        default:
          // + node (including one being the other's ancestor): all agree.
          EXPECT_EQ(lt1, lt2);
          EXPECT_EQ(lt1, lt3);
          break;
      }
    }
  }
}

TEST(OrdersTest, AncestorPrecedesDescendantInAllOrders) {
  auto ex = testing_util::MakeRunningExample();
  auto rec = ConstructPlan(ex.spec, ex.run);
  ASSERT_TRUE(rec.ok());
  const ExecutionPlan& plan = rec->plan;
  ContextEncoding enc = GenerateThreeOrders(plan);
  // Preorder property: any nonempty + ancestor precedes its nonempty +
  // descendants in every order.
  for (size_t i = 0; i < plan.num_nodes(); ++i) {
    if (enc.q1[i] == 0) continue;
    for (PlanNodeId anc = plan.node(i).parent; anc != kInvalidPlanNode;
         anc = plan.node(anc).parent) {
      if (enc.q1[anc] == 0) continue;
      EXPECT_LT(enc.q1[anc], enc.q1[i]);
      EXPECT_LT(enc.q2[anc], enc.q2[i]);
      EXPECT_LT(enc.q3[anc], enc.q3[i]);
    }
  }
}

}  // namespace
}  // namespace skl
