// Tests for the full SKL labeling (Algorithms 2-3) on the paper's running
// example: the introduction's three provenance queries, Examples 6 and 9,
// and an exhaustive cross-check against graph search on the run.
#include <gtest/gtest.h>

#include "src/core/skeleton_labeler.h"
#include "src/graph/algorithms.h"
#include "tests/test_util.h"

namespace skl {
namespace {

class RunLabelingExample : public ::testing::TestWithParam<SpecSchemeKind> {
 protected:
  void SetUp() override {
    ex_ = testing_util::MakeRunningExample();
    labeler_ = std::make_unique<SkeletonLabeler>(&ex_.spec, GetParam());
    ASSERT_TRUE(labeler_->Init().ok());
    auto labeling = labeler_->LabelRun(ex_.run);
    ASSERT_TRUE(labeling.ok()) << labeling.status().ToString();
    labeling_ = std::make_unique<RunLabeling>(std::move(labeling).value());
  }

  bool Reach(const std::string& u, const std::string& v) const {
    return labeling_->Reaches(ex_.rv(u), ex_.rv(v));
  }

  testing_util::RunningExample ex_;
  std::unique_ptr<SkeletonLabeler> labeler_;
  std::unique_ptr<RunLabeling> labeling_;
};

TEST_P(RunLabelingExample, IntroductionQueries) {
  // (1) Does x8 (output of c3) depend on x1 (input to b1)? No: parallel
  // fork copies.
  EXPECT_FALSE(Reach("b1", "c3"));
  EXPECT_FALSE(Reach("c3", "b1"));
  // (2) Does x4 (output of b2) depend on x2 (input to c1)? Yes: successive
  // loop iterations, despite b not reachable from c in the spec.
  EXPECT_TRUE(Reach("c1", "b2"));
  EXPECT_FALSE(Reach("b2", "c1"));
  // (3) Does x3 (output of c1) depend on x1 (input to b1)? Same fork/loop
  // copy: reduces to spec reachability b ~> c. Yes.
  EXPECT_TRUE(Reach("b1", "c1"));
}

TEST_P(RunLabelingExample, Example6And9Queries) {
  // Example 6: f1 ~> e2 via the L- ancestor.
  EXPECT_TRUE(Reach("f1", "e2"));
  EXPECT_FALSE(Reach("e2", "f1"));
  // Example 6/9: c1 vs d1 — + ancestor, spec says no path either way.
  EXPECT_FALSE(Reach("c1", "d1"));
  EXPECT_FALSE(Reach("d1", "c1"));
}

TEST_P(RunLabelingExample, ForkAndLoopStructure) {
  // Parallel F2 copies are mutually unreachable.
  EXPECT_FALSE(Reach("f2", "f3"));
  EXPECT_FALSE(Reach("f3", "f2"));
  // Across loop iterations the earlier copy reaches the later one.
  EXPECT_TRUE(Reach("f1", "f2"));
  EXPECT_TRUE(Reach("f1", "f3"));
  EXPECT_FALSE(Reach("f2", "f1"));
  // Source reaches everything; everything reaches the sink.
  for (const auto& [name, v] : ex_.run_vertex) {
    EXPECT_TRUE(labeling_->Reaches(ex_.rv("a1"), v)) << name;
    EXPECT_TRUE(labeling_->Reaches(v, ex_.rv("h1"))) << name;
  }
}

TEST_P(RunLabelingExample, Reflexive) {
  for (const auto& [name, v] : ex_.run_vertex) {
    EXPECT_TRUE(labeling_->Reaches(v, v)) << name;
  }
}

TEST_P(RunLabelingExample, MatchesGraphSearchExhaustively) {
  const Digraph& g = ex_.run.graph();
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      EXPECT_EQ(labeling_->Reaches(u, v), Reaches(g, u, v))
          << ex_.run.ModuleNameOf(u) << " -> " << ex_.run.ModuleNameOf(v);
    }
  }
}

TEST_P(RunLabelingExample, SkeletonConsultationSplit) {
  // Queries decided by the extended labels alone never consult the skeleton;
  // same-copy queries do (the paper's Section 1 observation).
  bool used = true;
  labeling_->ReachesWithStats(ex_.rv("b1"), ex_.rv("c3"), &used);
  EXPECT_FALSE(used);  // F- ancestor
  labeling_->ReachesWithStats(ex_.rv("f1"), ex_.rv("e2"), &used);
  EXPECT_FALSE(used);  // L- ancestor
  labeling_->ReachesWithStats(ex_.rv("c1"), ex_.rv("d1"), &used);
  EXPECT_TRUE(used);  // + ancestor: delegate to skeleton
}

TEST_P(RunLabelingExample, RelateClassification) {
  EXPECT_EQ(labeling_->Relate(ex_.rv("b1"), ex_.rv("b1")),
            RunRelationship::kEqual);
  EXPECT_EQ(labeling_->Relate(ex_.rv("b1"), ex_.rv("c1")),
            RunRelationship::kForward);
  EXPECT_EQ(labeling_->Relate(ex_.rv("c1"), ex_.rv("b1")),
            RunRelationship::kBackward);
  EXPECT_EQ(labeling_->Relate(ex_.rv("c1"), ex_.rv("b2")),
            RunRelationship::kForward);  // serial loop iterations
  EXPECT_EQ(labeling_->Relate(ex_.rv("b1"), ex_.rv("c3")),
            RunRelationship::kUnrelated);  // parallel fork copies
  EXPECT_EQ(labeling_->Relate(ex_.rv("f2"), ex_.rv("f3")),
            RunRelationship::kUnrelated);
  EXPECT_EQ(labeling_->Relate(ex_.rv("c1"), ex_.rv("d1")),
            RunRelationship::kUnrelated);  // incomparable branches
  EXPECT_STREQ(RunRelationshipName(RunRelationship::kForward), "forward");
}

TEST_P(RunLabelingExample, RelateConsistentWithReaches) {
  for (VertexId u = 0; u < ex_.run.num_vertices(); ++u) {
    for (VertexId v = 0; v < ex_.run.num_vertices(); ++v) {
      RunRelationship r = labeling_->Relate(u, v);
      bool fwd = labeling_->Reaches(u, v);
      bool bwd = labeling_->Reaches(v, u);
      if (u == v) {
        EXPECT_EQ(r, RunRelationship::kEqual);
      } else if (fwd) {
        EXPECT_EQ(r, RunRelationship::kForward);
      } else if (bwd) {
        EXPECT_EQ(r, RunRelationship::kBackward);
      } else {
        EXPECT_EQ(r, RunRelationship::kUnrelated);
      }
    }
  }
}

TEST_P(RunLabelingExample, LabelBitsAccounting) {
  // 9 nonempty + nodes -> 4 bits per coordinate; 8 spec vertices -> 3 bits.
  EXPECT_EQ(labeling_->num_nonempty_plus(), 9u);
  EXPECT_EQ(labeling_->context_bits(), 12u);
  EXPECT_EQ(labeling_->origin_bits(), 3u);
  EXPECT_EQ(labeling_->label_bits(), 15u);
}

TEST_P(RunLabelingExample, LabelRunWithPlanAgrees) {
  auto rec = ConstructPlan(ex_.spec, ex_.run);
  ASSERT_TRUE(rec.ok());
  auto labeling2 =
      labeler_->LabelRunWithPlan(ex_.run, rec->plan, rec->origin);
  ASSERT_TRUE(labeling2.ok());
  for (VertexId u = 0; u < ex_.run.num_vertices(); ++u) {
    for (VertexId v = 0; v < ex_.run.num_vertices(); ++v) {
      EXPECT_EQ(labeling_->Reaches(u, v), labeling2->Reaches(u, v));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, RunLabelingExample,
                         ::testing::Values(SpecSchemeKind::kTcm,
                                           SpecSchemeKind::kBfs,
                                           SpecSchemeKind::kDfs,
                                           SpecSchemeKind::kTreeCover,
                                           SpecSchemeKind::kChain,
                                           SpecSchemeKind::kTwoHop),
                         [](const auto& info) {
                           std::string name(SpecSchemeKindName(info.param));
                           if (name == "2HOP") name = "TwoHop";
                           return name;
                         });

TEST(SkeletonLabelerTest, RequiresInit) {
  auto ex = testing_util::MakeRunningExample();
  SkeletonLabeler labeler(&ex.spec, SpecSchemeKind::kTcm);
  auto labeling = labeler.LabelRun(ex.run);
  EXPECT_FALSE(labeling.ok());
}

TEST(SkeletonLabelerTest, PlanSizeMismatchRejected) {
  auto ex = testing_util::MakeRunningExample();
  SkeletonLabeler labeler(&ex.spec, SpecSchemeKind::kTcm);
  ASSERT_TRUE(labeler.Init().ok());
  ExecutionPlan tiny(1);
  tiny.AssignContext(0, kPlanRoot);
  EXPECT_FALSE(labeler.LabelRunWithPlan(ex.run, tiny, {0}).ok());
}

}  // namespace
}  // namespace skl
