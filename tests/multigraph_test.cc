// Tests for the mutable multigraph used by the plan-recovery algorithm.
#include <gtest/gtest.h>

#include "src/graph/multigraph.h"

namespace skl {
namespace {

TEST(MultigraphTest, AddAndQueryEdges) {
  Multigraph mg(3);
  EdgeId e0 = mg.AddEdge(0, 1);
  EdgeId e1 = mg.AddEdge(1, 2, 7);
  EXPECT_EQ(mg.num_alive_edges(), 2u);
  EXPECT_TRUE(mg.IsAlive(e0));
  EXPECT_EQ(mg.edge(e1).tag, 7);
  EXPECT_EQ(mg.edge(e1).from, 1u);
  EXPECT_EQ(mg.edge(e1).to, 2u);
}

TEST(MultigraphTest, ParallelEdgesCoexist) {
  Multigraph mg(2);
  EdgeId a = mg.AddEdge(0, 1, 1);
  EdgeId b = mg.AddEdge(0, 1, 2);
  EXPECT_NE(a, b);
  EXPECT_EQ(mg.OutEdges(0).size(), 2u);
  EXPECT_EQ(mg.InEdges(1).size(), 2u);
}

TEST(MultigraphTest, RemovalAndLazyCompaction) {
  Multigraph mg(2);
  EdgeId a = mg.AddEdge(0, 1);
  EdgeId b = mg.AddEdge(0, 1);
  mg.RemoveEdge(a);
  EXPECT_EQ(mg.num_alive_edges(), 1u);
  EXPECT_FALSE(mg.IsAlive(a));
  const auto& out = mg.OutEdges(0);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], b);
  // Double removal is a no-op.
  mg.RemoveEdge(a);
  EXPECT_EQ(mg.num_alive_edges(), 1u);
}

TEST(MultigraphTest, FromDigraph) {
  DigraphBuilder db(3);
  db.AddEdge(0, 1);
  db.AddEdge(1, 2);
  Digraph g = std::move(db).Build();
  Multigraph mg(g);
  EXPECT_EQ(mg.num_vertices(), 3u);
  EXPECT_EQ(mg.num_alive_edges(), 2u);
  EXPECT_EQ(mg.edge(0).tag, -1);
}

TEST(MultigraphTest, AddVertex) {
  Multigraph mg(1);
  VertexId v = mg.AddVertex();
  EXPECT_EQ(v, 1u);
  EXPECT_EQ(mg.num_vertices(), 2u);
  mg.AddEdge(0, v);
  EXPECT_EQ(mg.InEdges(v).size(), 1u);
}

TEST(MultigraphTest, DegreesSkipDeadEdges) {
  Multigraph mg(3);
  EdgeId a = mg.AddEdge(0, 1);
  mg.AddEdge(0, 2);
  mg.AddEdge(1, 2);
  EXPECT_EQ(mg.OutDegree(0), 2u);
  mg.RemoveEdge(a);
  EXPECT_EQ(mg.OutDegree(0), 1u);
  EXPECT_EQ(mg.InDegree(1), 0u);
  EXPECT_EQ(mg.InDegree(2), 2u);
}

}  // namespace
}  // namespace skl
