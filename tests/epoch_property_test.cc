// Property tests for the spec-epoch model (docs/UPDATES.md): epochs only
// move forward and only by one; answers of a run ingested under an older
// epoch are frozen — bitwise — no matter how many deltas land after it;
// and RemoveModule refuses to orphan live runs of the current epoch.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/random.h"
#include "src/core/provenance_service.h"
#include "src/workflow/spec_delta.h"
#include "src/workload/run_generator.h"
#include "tests/test_util.h"

namespace skl {
namespace {

/// The always-valid edit: append a fresh module after the current sink.
SpecDelta AppendAfterSink(const ProvenanceService& service,
                          const std::string& name) {
  const Specification& spec = service.spec();
  const Digraph& g = spec.graph();
  SpecDelta delta;
  delta.kind = SpecDelta::Kind::kAddModule;
  delta.module = name;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (g.OutNeighbors(v).empty()) {
      delta.from = {spec.ModuleName(v)};
      break;
    }
  }
  return delta;
}

TEST(EpochPropertyTest, EpochsAdvanceByExactlyOneAndNeverRegress) {
  auto service = ProvenanceService::Create(
      testing_util::MakeRunningExample().spec, SpecSchemeKind::kTcm);
  ASSERT_TRUE(service.ok());
  EXPECT_EQ(service->spec_epoch(), 1u);
  ASSERT_NE(service->FindEpoch(1), nullptr);
  EXPECT_EQ(service->FindEpoch(1)->number, 1u);
  EXPECT_EQ(service->FindEpoch(0), nullptr);
  EXPECT_EQ(service->FindEpoch(2), nullptr);

  for (uint64_t i = 0; i < 6; ++i) {
    const uint64_t before = service->spec_epoch();
    // A rejected delta must not move the epoch...
    SpecDelta bogus;
    bogus.kind = SpecDelta::Kind::kRemoveModule;
    bogus.module = "no-such-module";
    auto rejected = service->ApplySpecDelta(bogus);
    ASSERT_FALSE(rejected.ok());
    EXPECT_EQ(service->spec_epoch(), before);
    // ...and an accepted one moves it by exactly one.
    auto epoch = service->ApplySpecDelta(
        AppendAfterSink(*service, "dyn" + std::to_string(i)));
    ASSERT_TRUE(epoch.ok()) << epoch.status().ToString();
    EXPECT_EQ(*epoch, before + 1);
    EXPECT_EQ(service->spec_epoch(), before + 1);
    // Every epoch ever created stays reachable, in order.
    for (uint64_t e = 1; e <= service->spec_epoch(); ++e) {
      const auto* entry = service->FindEpoch(e);
      ASSERT_NE(entry, nullptr) << "epoch " << e << " unreachable";
      EXPECT_EQ(entry->number, e);
    }
    EXPECT_EQ(service->FindEpoch(service->spec_epoch() + 1), nullptr);
  }
  EXPECT_EQ(service->spec_epoch(), 7u);
  // The base spec never moves, even though the head has grown 6 modules.
  EXPECT_EQ(service->base_spec().graph().num_vertices(),
            service->FindEpoch(1)->spec->graph().num_vertices());
  EXPECT_EQ(service->spec().graph().num_vertices(),
            service->base_spec().graph().num_vertices() + 6);
}

TEST(EpochPropertyTest, OldEpochAnswersAreFrozenUnderLaterDeltas) {
  auto service = ProvenanceService::Create(
      testing_util::MakeRunningExample().spec, SpecSchemeKind::kTcm);
  ASSERT_TRUE(service.ok());
  RunGenerator generator(&service->spec());
  RunGenOptions opt;
  opt.target_vertices = 50;
  opt.seed = 13;
  auto gen = generator.Generate(opt);
  ASSERT_TRUE(gen.ok());
  auto id = service->AddRun(gen->run);
  ASSERT_TRUE(id.ok());
  auto stats = service->Stats(*id);
  ASSERT_TRUE(stats.ok());
  ASSERT_EQ(stats->epoch, 1u);

  // The run's complete answer matrix at epoch 1, before any delta.
  const VertexId n = stats->num_vertices;
  std::vector<bool> matrix;
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = 0; v < n; ++v) {
      auto r = service->Reaches(*id, u, v);
      ASSERT_TRUE(r.ok());
      matrix.push_back(*r);
    }
  }

  for (int i = 0; i < 5; ++i) {
    auto epoch = service->ApplySpecDelta(
        AppendAfterSink(*service, "late" + std::to_string(i)));
    ASSERT_TRUE(epoch.ok()) << epoch.status().ToString();
    // After every delta: the run is still pinned to epoch 1 and every
    // answer — default pin and explicit pin alike — is bit-identical.
    auto after = service->Stats(*id);
    ASSERT_TRUE(after.ok());
    EXPECT_EQ(after->epoch, 1u);
    size_t k = 0;
    for (VertexId u = 0; u < n; ++u) {
      for (VertexId v = 0; v < n; ++v, ++k) {
        auto def = service->Reaches(*id, u, v);
        ASSERT_TRUE(def.ok());
        ASSERT_EQ(*def, matrix[k])
            << "delta " << i << " changed Reaches(" << u << ", " << v << ")";
        auto pinned = service->Reaches(*id, u, v, 1);
        ASSERT_TRUE(pinned.ok());
        ASSERT_EQ(*pinned, matrix[k]);
      }
    }
    // Pinning the old run to the *new* head is an explicit mismatch, not
    // a silent re-answer against the wrong scheme.
    auto cross = service->Reaches(*id, 0, 0, service->spec_epoch());
    ASSERT_FALSE(cross.ok());
    EXPECT_EQ(cross.status().code(), StatusCode::kEpochMismatch);
    // The mismatch names both epochs so the operator can see the pin.
    EXPECT_NE(cross.status().message().find("epoch"), std::string::npos);
  }

  // A run ingested *now* freezes to the current head, not to 1.
  RunGenerator head_gen(&service->spec());
  RunGenOptions opt2;
  opt2.target_vertices = 40;
  opt2.seed = 14;
  auto late = head_gen.Generate(opt2);
  ASSERT_TRUE(late.ok());
  auto late_id = service->AddRun(late->run);
  ASSERT_TRUE(late_id.ok()) << late_id.status().ToString();
  auto late_stats = service->Stats(*late_id);
  ASSERT_TRUE(late_stats.ok());
  EXPECT_EQ(late_stats->epoch, 6u);
  // And pinning it to the old epoch mismatches in the other direction.
  auto back = service->Reaches(*late_id, 0, 0, 1);
  ASSERT_FALSE(back.ok());
  EXPECT_EQ(back.status().code(), StatusCode::kEpochMismatch);
}

TEST(EpochPropertyTest, RemoveModuleWithLiveDependentRunsIsRejected) {
  auto service = ProvenanceService::Create(
      testing_util::MakeRunningExample().spec, SpecSchemeKind::kTcm);
  ASSERT_TRUE(service.ok());
  // A parallel branch a -> audit -> h: removable later (unlike a sink
  // append, which RemoveModule rejects structurally).
  SpecDelta add;
  add.kind = SpecDelta::Kind::kAddModule;
  add.module = "audit";
  add.from = {"a"};
  add.to = {"h"};
  auto epoch = service->ApplySpecDelta(add);
  ASSERT_TRUE(epoch.ok()) << epoch.status().ToString();
  ASSERT_EQ(*epoch, 2u);

  // Every conforming run of the new head executes "audit", so this run is
  // a live dependent.
  RunGenerator generator(&service->spec());
  RunGenOptions opt;
  opt.target_vertices = 40;
  opt.seed = 5;
  auto gen = generator.Generate(opt);
  ASSERT_TRUE(gen.ok());
  auto id = service->AddRun(gen->run);
  ASSERT_TRUE(id.ok()) << id.status().ToString();

  SpecDelta remove;
  remove.kind = SpecDelta::Kind::kRemoveModule;
  remove.module = "audit";
  auto rejected = service->ApplySpecDelta(remove);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(rejected.status().message().find("live run"), std::string::npos)
      << rejected.status().ToString();
  EXPECT_EQ(service->spec_epoch(), 2u);
  // The dependent run is untouched by the refused edit.
  EXPECT_TRUE(service->Reaches(*id, 0, 0).ok());

  // Retiring the dependent unblocks the removal.
  ASSERT_TRUE(service->RemoveRun(*id).ok());
  auto accepted = service->ApplySpecDelta(remove);
  ASSERT_TRUE(accepted.ok()) << accepted.status().ToString();
  EXPECT_EQ(*accepted, 3u);

  // Old-epoch dependents never block: an epoch-1 run executing module "h"
  // does not stop "h"-adjacent edits of later epochs from landing, because
  // it is frozen to its own scheme. (Removing "h" itself is structurally
  // invalid here — it sits inside declared subgraphs — so probe with a
  // fresh append/remove pair instead.)
  RunGenOptions opt2;
  opt2.target_vertices = 30;
  opt2.seed = 6;
  RunGenerator gen3(&service->spec());
  auto old_run = gen3.Generate(opt2);
  ASSERT_TRUE(old_run.ok());
  auto old_id = service->AddRun(old_run->run);
  ASSERT_TRUE(old_id.ok());
  SpecDelta add_tail;
  add_tail.kind = SpecDelta::Kind::kAddModule;
  add_tail.module = "tail";
  add_tail.from = {"a"};
  add_tail.to = {"h"};
  auto e4 = service->ApplySpecDelta(add_tail);
  ASSERT_TRUE(e4.ok());
  // The epoch-3 run does not execute "tail", so removing it is legal even
  // though the run is still live.
  SpecDelta remove_tail;
  remove_tail.kind = SpecDelta::Kind::kRemoveModule;
  remove_tail.module = "tail";
  auto e5 = service->ApplySpecDelta(remove_tail);
  ASSERT_TRUE(e5.ok()) << e5.status().ToString();
  EXPECT_EQ(*e5, 5u);
}

}  // namespace
}  // namespace skl
