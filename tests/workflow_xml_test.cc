// Tests for workflow XML serialization: lossless round trips for specs and
// runs, end-to-end labeling of a run loaded from XML, and malformed inputs.
#include <gtest/gtest.h>

#include "src/core/skeleton_labeler.h"
#include "src/graph/algorithms.h"
#include "src/io/workflow_xml.h"
#include "src/workload/run_generator.h"
#include "src/workload/spec_generator.h"
#include "tests/test_util.h"

namespace skl {
namespace {

TEST(SpecificationXmlTest, RoundTripRunningExample) {
  auto ex = testing_util::MakeRunningExample();
  std::string xml = WriteSpecificationXml(ex.spec);
  auto spec2 = ReadSpecificationXml(xml);
  ASSERT_TRUE(spec2.ok()) << spec2.status().ToString();
  EXPECT_EQ(spec2->graph().num_vertices(), ex.spec.graph().num_vertices());
  EXPECT_EQ(spec2->graph().num_edges(), ex.spec.graph().num_edges());
  EXPECT_EQ(spec2->num_forks(), ex.spec.num_forks());
  EXPECT_EQ(spec2->num_loops(), ex.spec.num_loops());
  EXPECT_EQ(spec2->hierarchy().depth(), ex.spec.hierarchy().depth());
  // Vertices keep their names (and hence ids, by declaration order).
  for (VertexId v = 0; v < ex.spec.graph().num_vertices(); ++v) {
    EXPECT_EQ(spec2->ModuleName(v), ex.spec.ModuleName(v));
  }
  EXPECT_EQ(spec2->graph().Edges(), ex.spec.graph().Edges());
}

TEST(SpecificationXmlTest, RoundTripGeneratedSpec) {
  SpecGenOptions opt;
  opt.num_vertices = 60;
  opt.num_edges = 100;
  opt.num_subgraphs = 7;
  opt.depth = 4;
  opt.seed = 3;
  auto spec = GenerateSpecification(opt);
  ASSERT_TRUE(spec.ok());
  auto spec2 = ReadSpecificationXml(WriteSpecificationXml(spec.value()));
  ASSERT_TRUE(spec2.ok()) << spec2.status().ToString();
  EXPECT_EQ(spec2->graph().Edges(), spec->graph().Edges());
  EXPECT_EQ(spec2->subgraphs().size(), spec->subgraphs().size());
}

TEST(SpecificationXmlTest, MalformedInputs) {
  EXPECT_FALSE(ReadSpecificationXml("<wrong/>").ok());
  EXPECT_FALSE(ReadSpecificationXml("<specification><module/>"
                                    "</specification>").ok());
  EXPECT_FALSE(
      ReadSpecificationXml("<specification><module name=\"a\"/>"
                           "<edge from=\"a\" to=\"zzz\"/></specification>")
          .ok());
  EXPECT_FALSE(
      ReadSpecificationXml("<specification><module name=\"a\"/>"
                           "<fork vertices=\"a q\"/></specification>")
          .ok());
  EXPECT_FALSE(ReadSpecificationXml("not xml at all").ok());
}

TEST(RunXmlTest, RoundTripRunningExample) {
  auto ex = testing_util::MakeRunningExample();
  std::string xml = WriteRunXml(ex.run);
  auto run2 = ReadRunXml(xml);
  ASSERT_TRUE(run2.ok()) << run2.status().ToString();
  EXPECT_EQ(run2->num_vertices(), ex.run.num_vertices());
  EXPECT_EQ(run2->num_edges(), ex.run.num_edges());
  for (VertexId v = 0; v < ex.run.num_vertices(); ++v) {
    EXPECT_EQ(run2->ModuleNameOf(v), ex.run.ModuleNameOf(v));
  }
  EXPECT_EQ(run2->graph().Edges(), ex.run.graph().Edges());
}

TEST(RunXmlTest, LoadedRunIsLabelable) {
  // Full pipeline: generate, serialize, reload with a fresh module table,
  // label via name-based origins, and verify against graph search.
  auto ex = testing_util::MakeRunningExample();
  RunGenerator gen(&ex.spec);
  RunGenOptions opt;
  opt.target_vertices = 150;
  opt.seed = 6;
  auto generated = gen.Generate(opt);
  ASSERT_TRUE(generated.ok());
  auto reloaded = ReadRunXml(WriteRunXml(generated->run));
  ASSERT_TRUE(reloaded.ok());
  EXPECT_NE(&reloaded->modules(), &ex.spec.modules());

  SkeletonLabeler labeler(&ex.spec, SpecSchemeKind::kTcm);
  ASSERT_TRUE(labeler.Init().ok());
  auto labeling = labeler.LabelRun(*reloaded);
  ASSERT_TRUE(labeling.ok()) << labeling.status().ToString();
  const Digraph& g = reloaded->graph();
  Rng rng(51);
  for (int i = 0; i < 1500; ++i) {
    VertexId u = static_cast<VertexId>(rng.NextBelow(g.num_vertices()));
    VertexId v = static_cast<VertexId>(rng.NextBelow(g.num_vertices()));
    ASSERT_EQ(labeling->Reaches(u, v), Reaches(g, u, v));
  }
}

TEST(RunXmlTest, MalformedInputs) {
  EXPECT_FALSE(ReadRunXml("<notrun/>").ok());
  EXPECT_FALSE(ReadRunXml("<run><vertex id=\"0\"/></run>").ok());
  EXPECT_FALSE(
      ReadRunXml("<run><vertex id=\"7\" module=\"a\"/></run>").ok());
  EXPECT_FALSE(
      ReadRunXml("<run><vertex id=\"0\" module=\"a\"/>"
                 "<vertex id=\"0\" module=\"b\"/></run>")
          .ok());
  EXPECT_FALSE(
      ReadRunXml("<run><vertex id=\"0\" module=\"a\"/>"
                 "<edge from=\"0\" to=\"9\"/></run>")
          .ok());
  EXPECT_FALSE(
      ReadRunXml("<run><vertex id=\"x\" module=\"a\"/></run>").ok());
}

}  // namespace
}  // namespace skl
