// Shared fixtures: the paper's running example (Figures 2-3) and small
// helpers used across test files.
#ifndef SKL_TESTS_TEST_UTIL_H_
#define SKL_TESTS_TEST_UTIL_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/check.h"
#include "src/workflow/run.h"
#include "src/workflow/specification.h"
#include "src/workload/real_workflows.h"

namespace skl {
namespace testing_util {

/// The base seed of a randomized differential suite. SKL_TEST_SEED=<n> in
/// the environment overrides `default_seed` — a CI failure replays locally
/// with one export — and the chosen value is printed unconditionally, so
/// the seed is in the log even when the suite dies before its own
/// diagnostics run. Accepts decimal, 0x hex, or 0 octal spellings.
inline uint64_t TestSeed(const char* suite, uint64_t default_seed) {
  uint64_t seed = default_seed;
  const char* from = "default";
  if (const char* env = std::getenv("SKL_TEST_SEED")) {
    char* end = nullptr;
    const unsigned long long parsed = std::strtoull(env, &end, 0);
    if (end != env && *end == '\0') {
      seed = parsed;
      from = "SKL_TEST_SEED";
    } else {
      std::fprintf(stderr, "[%s] ignoring unparseable SKL_TEST_SEED=\"%s\"\n",
                   suite, env);
    }
  }
  std::fprintf(stderr, "[%s] seed=%llu (%s; override with SKL_TEST_SEED)\n",
               suite, static_cast<unsigned long long>(seed), from);
  return seed;
}

/// Iteration multiplier for the randomized suites: 1 normally,
/// SKL_TEST_ITER_SCALE=<n> in CI's nightly long-fuzz leg. Values < 1 or
/// unparseable spellings fall back to 1.
inline uint64_t TestIterScale() {
  if (const char* env = std::getenv("SKL_TEST_ITER_SCALE")) {
    char* end = nullptr;
    const unsigned long long parsed = std::strtoull(env, &end, 0);
    if (end != env && *end == '\0' && parsed >= 1) return parsed;
  }
  return 1;
}

/// The Figure 3 run of the running example: F1 executed twice; in one copy
/// L2... — precisely: fork F1 {b,c} twice (copies (b1,c1,b2,c2) with loop L1
/// twice, and (b3,c3) with L1 once), loop L2 twice (iteration 1 reads e1,
/// f1, g1; iteration 2 has fork F2 over f executed twice: f2, f3).
/// Vertex naming follows the paper: a1, b1..b3, c1..c3, d1, e1, e2, f1..f3,
/// g1, g2, h1.
struct RunningExample {
  Specification spec;
  Run run;
  std::unordered_map<std::string, VertexId> run_vertex;   // "b1" -> id
  std::unordered_map<std::string, VertexId> spec_vertex;  // "b" -> id

  VertexId rv(const std::string& name) const {
    auto it = run_vertex.find(name);
    SKL_CHECK_MSG(it != run_vertex.end(), name.c_str());
    return it->second;
  }
  VertexId sv(const std::string& name) const {
    auto it = spec_vertex.find(name);
    SKL_CHECK_MSG(it != spec_vertex.end(), name.c_str());
    return it->second;
  }
};

inline RunningExample MakeRunningExample() {
  auto spec_result = BuildRunningExampleSpec();
  SKL_CHECK_MSG(spec_result.ok(), spec_result.status().ToString().c_str());
  RunningExample ex{std::move(spec_result).value(), Run{}, {}, {}};
  for (const char* name : {"a", "b", "c", "h", "d", "e", "f", "g"}) {
    ex.spec_vertex[name] = ex.spec.VertexOf(name);
  }

  RunBuilder rb(ex.spec.shared_modules());
  auto add = [&](const std::string& instance, const std::string& module) {
    VertexId v = rb.AddVertexById(
        static_cast<ModuleId>(ex.spec.VertexOf(module)));
    ex.run_vertex[instance] = v;
  };
  // Figure 3's vertices.
  add("a1", "a");
  add("b1", "b");
  add("c1", "c");
  add("b2", "b");
  add("c2", "c");
  add("b3", "b");
  add("c3", "c");
  add("h1", "h");
  add("d1", "d");
  add("e1", "e");
  add("f1", "f");
  add("g1", "g");
  add("e2", "e");
  add("f2", "f");
  add("f3", "f");
  add("g2", "g");
  auto edge = [&](const std::string& u, const std::string& v) {
    rb.AddEdge(ex.run_vertex.at(u), ex.run_vertex.at(v));
  };
  // Fork copy 1 of F1 with loop L1 executed twice: a1->b1->c1->b2->c2->h1.
  edge("a1", "b1");
  edge("b1", "c1");
  edge("c1", "b2");  // serial loop edge
  edge("b2", "c2");
  edge("c2", "h1");
  // Fork copy 2 of F1 with L1 once: a1->b3->c3->h1.
  edge("a1", "b3");
  edge("b3", "c3");
  edge("c3", "h1");
  // Second branch: a1->d1->e1->f1->g1->e2->{f2,f3}->g2->h1.
  edge("a1", "d1");
  edge("d1", "e1");
  edge("e1", "f1");
  edge("f1", "g1");
  edge("g1", "e2");  // serial loop edge between L2 iterations
  edge("e2", "f2");
  edge("f2", "g2");
  edge("e2", "f3");
  edge("f3", "g2");
  edge("g2", "h1");
  auto run_result = std::move(rb).Build();
  SKL_CHECK_MSG(run_result.ok(), run_result.status().ToString().c_str());
  ex.run = std::move(run_result).value();
  return ex;
}

}  // namespace testing_util
}  // namespace skl

#endif  // SKL_TESTS_TEST_UTIL_H_
