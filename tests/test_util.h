// Shared fixtures: the paper's running example (Figures 2-3) and small
// helpers used across test files.
#ifndef SKL_TESTS_TEST_UTIL_H_
#define SKL_TESTS_TEST_UTIL_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/check.h"
#include "src/workflow/run.h"
#include "src/workflow/specification.h"
#include "src/workload/real_workflows.h"

namespace skl {
namespace testing_util {

/// The Figure 3 run of the running example: F1 executed twice; in one copy
/// L2... — precisely: fork F1 {b,c} twice (copies (b1,c1,b2,c2) with loop L1
/// twice, and (b3,c3) with L1 once), loop L2 twice (iteration 1 reads e1,
/// f1, g1; iteration 2 has fork F2 over f executed twice: f2, f3).
/// Vertex naming follows the paper: a1, b1..b3, c1..c3, d1, e1, e2, f1..f3,
/// g1, g2, h1.
struct RunningExample {
  Specification spec;
  Run run;
  std::unordered_map<std::string, VertexId> run_vertex;   // "b1" -> id
  std::unordered_map<std::string, VertexId> spec_vertex;  // "b" -> id

  VertexId rv(const std::string& name) const {
    auto it = run_vertex.find(name);
    SKL_CHECK_MSG(it != run_vertex.end(), name.c_str());
    return it->second;
  }
  VertexId sv(const std::string& name) const {
    auto it = spec_vertex.find(name);
    SKL_CHECK_MSG(it != spec_vertex.end(), name.c_str());
    return it->second;
  }
};

inline RunningExample MakeRunningExample() {
  auto spec_result = BuildRunningExampleSpec();
  SKL_CHECK_MSG(spec_result.ok(), spec_result.status().ToString().c_str());
  RunningExample ex{std::move(spec_result).value(), Run{}, {}, {}};
  for (const char* name : {"a", "b", "c", "h", "d", "e", "f", "g"}) {
    ex.spec_vertex[name] = ex.spec.VertexOf(name);
  }

  RunBuilder rb(ex.spec.shared_modules());
  auto add = [&](const std::string& instance, const std::string& module) {
    VertexId v = rb.AddVertexById(
        static_cast<ModuleId>(ex.spec.VertexOf(module)));
    ex.run_vertex[instance] = v;
  };
  // Figure 3's vertices.
  add("a1", "a");
  add("b1", "b");
  add("c1", "c");
  add("b2", "b");
  add("c2", "c");
  add("b3", "b");
  add("c3", "c");
  add("h1", "h");
  add("d1", "d");
  add("e1", "e");
  add("f1", "f");
  add("g1", "g");
  add("e2", "e");
  add("f2", "f");
  add("f3", "f");
  add("g2", "g");
  auto edge = [&](const std::string& u, const std::string& v) {
    rb.AddEdge(ex.run_vertex.at(u), ex.run_vertex.at(v));
  };
  // Fork copy 1 of F1 with loop L1 executed twice: a1->b1->c1->b2->c2->h1.
  edge("a1", "b1");
  edge("b1", "c1");
  edge("c1", "b2");  // serial loop edge
  edge("b2", "c2");
  edge("c2", "h1");
  // Fork copy 2 of F1 with L1 once: a1->b3->c3->h1.
  edge("a1", "b3");
  edge("b3", "c3");
  edge("c3", "h1");
  // Second branch: a1->d1->e1->f1->g1->e2->{f2,f3}->g2->h1.
  edge("a1", "d1");
  edge("d1", "e1");
  edge("e1", "f1");
  edge("f1", "g1");
  edge("g1", "e2");  // serial loop edge between L2 iterations
  edge("e2", "f2");
  edge("f2", "g2");
  edge("e2", "f3");
  edge("f3", "g2");
  edge("g2", "h1");
  auto run_result = std::move(rb).Build();
  SKL_CHECK_MSG(run_result.ok(), run_result.status().ToString().c_str());
  ex.run = std::move(run_result).value();
  return ex;
}

}  // namespace testing_util
}  // namespace skl

#endif  // SKL_TESTS_TEST_UTIL_H_
