// Durable service snapshots: save→load→query equivalence (exhaustively, for
// every bundled scheme), RunId bit-identity including the id counter and
// RemoveRun gaps, imported-run round trips, and the failure paths — missing
// file, truncation at every byte prefix, bad magic, unsupported format
// version and corrupted checksums must each come back as a descriptive
// Status, never a crash.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/common/temp_path.h"
#include "src/core/provenance_service.h"
#include "src/io/snapshot.h"
#include "src/workload/data_generator.h"
#include "src/workload/run_generator.h"
#include "tests/test_util.h"

namespace skl {
namespace {

/// A fresh pid-qualified path under the temp dir (concurrent ctest runs —
/// e.g. the plain and sanitizer build trees — share /tmp); removed by the
/// TempFile destructor.
class TempFile {
 public:
  explicit TempFile(const std::string& name)
      : path_(PidQualifiedTempPath("skl_snapshot_test_" + name, ".skls")) {}
  ~TempFile() {
    std::error_code ec;
    std::filesystem::remove(path_, ec);
    for (const std::string& tmp : TmpSiblings()) {
      std::filesystem::remove(tmp, ec);
    }
  }
  const std::string& path() const { return path_; }

  /// Any "<path>.tmp*" remnants of SnapshotWriter::WriteFile.
  std::vector<std::string> TmpSiblings() const {
    const std::filesystem::path target(path_);
    const std::string prefix = target.filename().string() + ".tmp";
    std::vector<std::string> found;
    std::error_code ec;
    for (std::filesystem::directory_iterator
             it(target.parent_path(), ec),
         end;
         !ec && it != end; it.increment(ec)) {
      if (it->path().filename().string().rfind(prefix, 0) == 0) {
        found.push_back(it->path().string());
      }
    }
    return found;
  }

 private:
  std::string path_;
};

std::vector<uint8_t> ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  SKL_CHECK(static_cast<bool>(in));
  return std::vector<uint8_t>((std::istreambuf_iterator<char>(in)),
                              std::istreambuf_iterator<char>());
}

void WriteAll(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  SKL_CHECK(static_cast<bool>(out));
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

::skl::Run GenerateRun(const Specification& spec, uint32_t target,
                       uint64_t seed) {
  RunGenerator generator(&spec);
  RunGenOptions opt;
  opt.target_vertices = target;
  opt.seed = seed;
  auto gen = generator.Generate(opt);
  SKL_CHECK_MSG(gen.ok(), gen.status().ToString().c_str());
  return std::move(gen->run);
}

void ExpectStatsEqual(const RunStats& a, const RunStats& b) {
  EXPECT_EQ(a.num_vertices, b.num_vertices);
  EXPECT_EQ(a.num_items, b.num_items);
  EXPECT_EQ(a.label_bits, b.label_bits);
  EXPECT_EQ(a.context_bits, b.context_bits);
  EXPECT_EQ(a.origin_bits, b.origin_bits);
  EXPECT_EQ(a.num_nonempty_plus, b.num_nonempty_plus);
  EXPECT_EQ(a.imported, b.imported);
}

/// Exhaustive Reaches equivalence over every vertex pair of every run.
void ExpectQueryEquivalent(const ProvenanceService& a,
                           const ProvenanceService& b) {
  ASSERT_EQ(a.num_runs(), b.num_runs());
  std::vector<RunId> ids = a.ListRuns();
  std::vector<RunId> restored_ids = b.ListRuns();
  ASSERT_EQ(ids.size(), restored_ids.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(ids[i].value(), restored_ids[i].value());
  }
  for (RunId id : ids) {
    auto sa = a.Stats(id);
    auto sb = b.Stats(id);
    ASSERT_TRUE(sa.ok());
    ASSERT_TRUE(sb.ok());
    ExpectStatsEqual(*sa, *sb);
    const VertexId n = sa->num_vertices;
    std::vector<VertexPair> pairs;
    pairs.reserve(static_cast<size_t>(n) * n);
    for (VertexId v = 0; v < n; ++v) {
      for (VertexId w = 0; w < n; ++w) {
        pairs.push_back({v, w});
        auto ra = a.Reaches(id, v, w);
        auto rb = b.Reaches(id, v, w);
        ASSERT_TRUE(ra.ok() && rb.ok());
        ASSERT_EQ(*ra, *rb) << "run " << id.value() << " pair " << v << "->"
                            << w;
      }
    }
    // The batch variant must agree pairwise too.
    auto ba = a.ReachesBatch(id, pairs);
    auto bb = b.ReachesBatch(id, pairs);
    ASSERT_TRUE(ba.ok() && bb.ok());
    ASSERT_EQ(*ba, *bb) << "run " << id.value();
  }
}

// --------------------------------------------------------- round tripping --

TEST(SnapshotTest, RoundTripsEveryBundledScheme) {
  // kInterval requires a tree-shaped spec graph and is covered separately.
  for (SpecSchemeKind kind :
       {SpecSchemeKind::kTcm, SpecSchemeKind::kBfs, SpecSchemeKind::kDfs,
        SpecSchemeKind::kTreeCover, SpecSchemeKind::kChain,
        SpecSchemeKind::kTwoHop}) {
    SCOPED_TRACE(SpecSchemeKindName(kind));
    auto ex = testing_util::MakeRunningExample();
    ::skl::Run generated = GenerateRun(ex.spec, 60, 11);
    auto service = ProvenanceService::Create(std::move(ex.spec), kind);
    ASSERT_TRUE(service.ok()) << service.status().ToString();
    ASSERT_TRUE(service->AddRun(ex.run).ok());
    ASSERT_TRUE(service->AddRun(generated).ok());

    TempFile file(std::string("scheme_") + SpecSchemeKindName(kind));
    ASSERT_TRUE(service->SaveSnapshot(file.path()).ok());
    auto restored = ProvenanceService::LoadSnapshot(file.path());
    ASSERT_TRUE(restored.ok()) << restored.status().ToString();
    EXPECT_EQ(std::string(restored->scheme().name()),
              std::string(service->scheme().name()));
    ExpectQueryEquivalent(*service, *restored);
  }
}

TEST(SnapshotTest, RoundTripsIntervalSchemeOnTreeSpec) {
  // A tree-shaped specification (chain with a loop) for the one scheme that
  // rejects DAGs with undirected cycles.
  SpecificationBuilder builder;
  VertexId a = builder.AddModule("a");
  VertexId b = builder.AddModule("b");
  VertexId c = builder.AddModule("c");
  VertexId d = builder.AddModule("d");
  builder.AddEdge(a, b).AddEdge(b, c).AddEdge(c, d);
  builder.DeclareLoop({b, c});
  auto spec = std::move(builder).Build();
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();

  ::skl::Run run = GenerateRun(*spec, 30, 5);
  auto service = ProvenanceService::Create(std::move(spec).value(),
                                           SpecSchemeKind::kInterval);
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  ASSERT_TRUE(service->AddRun(run).ok());

  TempFile file("interval");
  ASSERT_TRUE(service->SaveSnapshot(file.path()).ok());
  auto restored = ProvenanceService::LoadSnapshot(file.path());
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  ExpectQueryEquivalent(*service, *restored);
}

TEST(SnapshotTest, RoundTripsDataCatalogAndDependsOn) {
  auto ex = testing_util::MakeRunningExample();
  ::skl::Run run = GenerateRun(ex.spec, 80, 21);
  DataGenOptions dopt;
  dopt.seed = 3;
  DataCatalog catalog = GenerateDataCatalog(run, dopt);
  ASSERT_GT(catalog.size(), 0u);

  auto service =
      ProvenanceService::Create(std::move(ex.spec), SpecSchemeKind::kTcm);
  ASSERT_TRUE(service.ok());
  auto id = service->AddRun(run, &catalog);
  ASSERT_TRUE(id.ok());

  TempFile file("catalog");
  ASSERT_TRUE(service->SaveSnapshot(file.path()).ok());
  auto restored = ProvenanceService::LoadSnapshot(file.path());
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();

  const DataItemId items = static_cast<DataItemId>(catalog.size());
  for (DataItemId x = 0; x < items; ++x) {
    for (DataItemId y = 0; y < items; ++y) {
      auto a = service->DependsOn(*id, x, y);
      auto b = restored->DependsOn(*id, x, y);
      ASSERT_TRUE(a.ok() && b.ok());
      ASSERT_EQ(*a, *b) << "items " << x << ", " << y;
    }
  }
}

TEST(SnapshotTest, PreservesRunIdsAcrossRemovalsAndTheIdCounter) {
  auto ex = testing_util::MakeRunningExample();
  auto service =
      ProvenanceService::Create(std::move(ex.spec), SpecSchemeKind::kTcm);
  ASSERT_TRUE(service.ok());
  auto id1 = service->AddRun(ex.run);
  auto id2 = service->AddRun(ex.run);
  auto id3 = service->AddRun(ex.run);
  ASSERT_TRUE(id1.ok() && id2.ok() && id3.ok());
  ASSERT_TRUE(service->RemoveRun(*id2).ok());

  TempFile file("ids");
  ASSERT_TRUE(service->SaveSnapshot(file.path()).ok());
  auto restored = ProvenanceService::LoadSnapshot(file.path());
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();

  // The gap survives; the removed id stays NotFound, not reassigned.
  std::vector<RunId> ids = restored->ListRuns();
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_EQ(ids[0].value(), id1->value());
  EXPECT_EQ(ids[1].value(), id3->value());
  EXPECT_FALSE(restored->Contains(*id2));

  // The id counter is part of the snapshot: the next ingestion on the
  // restored service yields the same handle the saving service would.
  auto next_original = service->AddRun(ex.run);
  auto next_restored = restored->AddRun(ex.run);
  ASSERT_TRUE(next_original.ok() && next_restored.ok());
  EXPECT_EQ(next_original->value(), next_restored->value());
}

TEST(SnapshotTest, RoundTripsImportedRuns) {
  auto ex = testing_util::MakeRunningExample();
  auto service =
      ProvenanceService::Create(std::move(ex.spec), SpecSchemeKind::kTcm);
  ASSERT_TRUE(service.ok());
  auto id = service->AddRun(ex.run);
  ASSERT_TRUE(id.ok());
  auto blob = service->ExportRun(*id);
  ASSERT_TRUE(blob.ok());
  auto imported = service->ImportRun(*blob);
  ASSERT_TRUE(imported.ok());

  TempFile file("imported");
  ASSERT_TRUE(service->SaveSnapshot(file.path()).ok());
  auto restored = ProvenanceService::LoadSnapshot(file.path());
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  auto stats = restored->Stats(*imported);
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats->imported);
  ExpectQueryEquivalent(*service, *restored);
}

TEST(SnapshotTest, EmptyRegistryRoundTrips) {
  auto ex = testing_util::MakeRunningExample();
  auto service =
      ProvenanceService::Create(std::move(ex.spec), SpecSchemeKind::kBfs);
  ASSERT_TRUE(service.ok());
  TempFile file("empty");
  ASSERT_TRUE(service->SaveSnapshot(file.path()).ok());
  auto restored = ProvenanceService::LoadSnapshot(file.path());
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->num_runs(), 0u);
  // First run on the restored empty service gets id 1, like a fresh one.
  auto id = restored->AddRun(ex.run);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(id->value(), 1u);
}

TEST(SnapshotTest, LoadOptionsControlRuntimeKnobs) {
  auto ex = testing_util::MakeRunningExample();
  auto service =
      ProvenanceService::Create(std::move(ex.spec), SpecSchemeKind::kTcm);
  ASSERT_TRUE(service.ok());
  TempFile file("options");
  ASSERT_TRUE(service->SaveSnapshot(file.path()).ok());
  ProvenanceService::Options options;
  options.num_threads = 2;
  options.fail_fast = true;
  auto restored = ProvenanceService::LoadSnapshot(file.path(), options);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->options().num_threads, 2u);
  EXPECT_TRUE(restored->options().fail_fast);
}

TEST(SnapshotTest, SaveIsConsistentWhileIngestingAndQuerying) {
  // TSan target: SaveSnapshot runs under the shared lock, so it must
  // coexist with concurrent readers and bulk writers — and every snapshot
  // it produces must be a loadable, point-in-time-consistent registry in
  // which the stable run answers exactly as in the live service.
  auto ex = testing_util::MakeRunningExample();
  ::skl::Run batch_run = GenerateRun(ex.spec, 40, 31);
  auto service = ProvenanceService::Create(std::move(ex.spec),
                                           SpecSchemeKind::kTcm,
                                           {.num_threads = 2});
  ASSERT_TRUE(service.ok());
  auto stable_id = service->AddRun(ex.run);
  ASSERT_TRUE(stable_id.ok());
  const VertexId n = ex.run.num_vertices();

  std::atomic<bool> stop{false};
  std::atomic<size_t> failures{0};
  std::thread ingester([&] {
    std::vector<::skl::Run> batch(3, batch_run);
    while (!stop.load(std::memory_order_relaxed)) {
      for (const Result<RunId>& id : service->AddRunsParallel(batch)) {
        if (!id.ok() || !service->RemoveRun(*id).ok()) {
          failures.fetch_add(1, std::memory_order_relaxed);
          return;
        }
      }
    }
  });
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      auto r = service->Reaches(*stable_id, 0, n - 1);
      if (!r.ok()) {
        failures.fetch_add(1, std::memory_order_relaxed);
        return;
      }
    }
  });

  TempFile file("concurrent");
  for (int round = 0; round < 4; ++round) {
    ASSERT_TRUE(service->SaveSnapshot(file.path()).ok());
    auto restored = ProvenanceService::LoadSnapshot(file.path());
    ASSERT_TRUE(restored.ok()) << restored.status().ToString();
    ASSERT_TRUE(restored->Contains(*stable_id));
    for (VertexId v = 0; v < n; ++v) {
      auto a = service->Reaches(*stable_id, v, n - 1 - v);
      auto b = restored->Reaches(*stable_id, v, n - 1 - v);
      ASSERT_TRUE(a.ok() && b.ok());
      ASSERT_EQ(*a, *b);
    }
  }
  stop.store(true, std::memory_order_relaxed);
  ingester.join();
  reader.join();
  EXPECT_EQ(failures.load(), 0u);
}

// ---------------------------------------------------------- failure paths --

TEST(SnapshotTest, MissingFileIsNotFound) {
  auto missing = ProvenanceService::LoadSnapshot(
      "/nonexistent/dir/missing.skls");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

TEST(SnapshotTest, TruncationAtEveryPrefixFailsCleanly) {
  auto ex = testing_util::MakeRunningExample();
  auto service =
      ProvenanceService::Create(std::move(ex.spec), SpecSchemeKind::kTcm);
  ASSERT_TRUE(service.ok());
  ASSERT_TRUE(service->AddRun(ex.run).ok());
  TempFile file("truncate");
  ASSERT_TRUE(service->SaveSnapshot(file.path()).ok());
  const std::vector<uint8_t> bytes = ReadAll(file.path());
  ASSERT_GT(bytes.size(), 16u);

  TempFile truncated("truncated");
  for (size_t len = 0; len < bytes.size(); ++len) {
    WriteAll(truncated.path(),
             std::vector<uint8_t>(bytes.begin(), bytes.begin() + len));
    auto restored = ProvenanceService::LoadSnapshot(truncated.path());
    ASSERT_FALSE(restored.ok()) << "prefix of " << len << " bytes parsed";
    ASSERT_EQ(restored.status().code(), StatusCode::kParseError)
        << restored.status().ToString();
  }
  // The full file still loads (the loop really was about truncation).
  WriteAll(truncated.path(), bytes);
  EXPECT_TRUE(ProvenanceService::LoadSnapshot(truncated.path()).ok());
}

TEST(SnapshotTest, BadMagicIsDescriptive) {
  auto ex = testing_util::MakeRunningExample();
  auto service =
      ProvenanceService::Create(std::move(ex.spec), SpecSchemeKind::kTcm);
  ASSERT_TRUE(service.ok());
  TempFile file("magic");
  ASSERT_TRUE(service->SaveSnapshot(file.path()).ok());
  std::vector<uint8_t> bytes = ReadAll(file.path());
  bytes[0] ^= 0xFF;
  WriteAll(file.path(), bytes);
  auto restored = ProvenanceService::LoadSnapshot(file.path());
  ASSERT_FALSE(restored.ok());
  EXPECT_EQ(restored.status().code(), StatusCode::kParseError);
  EXPECT_NE(restored.status().message().find("bad magic"), std::string::npos)
      << restored.status().ToString();
}

TEST(SnapshotTest, FutureFormatVersionIsRejected) {
  SnapshotWriter writer(/*format_version=*/kSnapshotFormatVersion + 41);
  writer.AddSection(kSnapshotSectionSpec, {1, 2, 3});
  TempFile file("version");
  ASSERT_TRUE(std::move(writer).WriteFile(file.path()).ok());
  auto restored = ProvenanceService::LoadSnapshot(file.path());
  ASSERT_FALSE(restored.ok());
  EXPECT_EQ(restored.status().code(), StatusCode::kParseError);
  EXPECT_NE(restored.status().message().find("unsupported snapshot format"),
            std::string::npos)
      << restored.status().ToString();
}

TEST(SnapshotTest, TrailingBytesAreRejected) {
  auto ex = testing_util::MakeRunningExample();
  auto service =
      ProvenanceService::Create(std::move(ex.spec), SpecSchemeKind::kTcm);
  ASSERT_TRUE(service.ok());
  TempFile file("trailing");
  ASSERT_TRUE(service->SaveSnapshot(file.path()).ok());
  std::vector<uint8_t> bytes = ReadAll(file.path());
  bytes.push_back('X');  // a torn second write / concatenated snapshot
  WriteAll(file.path(), bytes);
  auto restored = ProvenanceService::LoadSnapshot(file.path());
  ASSERT_FALSE(restored.ok());
  EXPECT_EQ(restored.status().code(), StatusCode::kParseError);
  EXPECT_NE(restored.status().message().find("trailing bytes"),
            std::string::npos)
      << restored.status().ToString();
}

TEST(SnapshotTest, CorruptedPayloadFailsTheChecksum) {
  auto ex = testing_util::MakeRunningExample();
  auto service =
      ProvenanceService::Create(std::move(ex.spec), SpecSchemeKind::kTcm);
  ASSERT_TRUE(service.ok());
  ASSERT_TRUE(service->AddRun(ex.run).ok());
  TempFile file("checksum");
  ASSERT_TRUE(service->SaveSnapshot(file.path()).ok());
  const std::vector<uint8_t> original = ReadAll(file.path());

  // Flip one byte in the last section's payload (the run registry): the
  // checksum must catch it before any registry bytes are interpreted.
  std::vector<uint8_t> corrupted = original;
  corrupted[corrupted.size() - 1] ^= 0x01;
  WriteAll(file.path(), corrupted);
  auto restored = ProvenanceService::LoadSnapshot(file.path());
  ASSERT_FALSE(restored.ok());
  EXPECT_EQ(restored.status().code(), StatusCode::kParseError);
  EXPECT_NE(restored.status().message().find("checksum mismatch"),
            std::string::npos)
      << restored.status().ToString();
}

TEST(SnapshotTest, CustomSchemeIsNotSnapshotable) {
  class CustomScheme : public SpecLabelingScheme {
   public:
    std::string_view name() const override { return "custom-test"; }
    Status Build(const Digraph&) override { return Status::OK(); }
    bool Reaches(VertexId u, VertexId v) const override { return u == v; }
    size_t TotalLabelBits() const override { return 0; }
    size_t MaxLabelBits() const override { return 0; }
  };
  auto ex = testing_util::MakeRunningExample();
  auto service = ProvenanceService::Create(std::move(ex.spec),
                                           std::make_unique<CustomScheme>());
  ASSERT_TRUE(service.ok());
  TempFile file("custom");
  Status saved = service->SaveSnapshot(file.path());
  ASSERT_FALSE(saved.ok());
  EXPECT_EQ(saved.code(), StatusCode::kInvalidArgument);
}

// ----------------------------------------------------- container plumbing --

TEST(SnapshotReaderTest, EmptyInputIsTruncated) {
  auto parsed = SnapshotReader::Parse({});
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kParseError);
}

TEST(SnapshotReaderTest, HugeSectionCountIsParseErrorNotBadAlloc) {
  // Crafted header claiming ~2^61 sections: must come back as a truncation
  // ParseError, not attempt the allocation (the reserve is capped by what
  // the file could physically hold).
  std::vector<uint8_t> bytes = {'S', 'K', 'L', 'S', 0x01};
  for (int i = 0; i < 8; ++i) bytes.push_back(0xFF);  // varint count
  bytes.push_back(0x1F);
  auto parsed = SnapshotReader::Parse(std::move(bytes));
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kParseError);
}

TEST(SnapshotReaderTest, SectionsRoundTripInMemory) {
  SnapshotWriter writer;
  writer.AddSection(7, {0xDE, 0xAD});
  writer.AddSection(9, {});
  writer.AddSection(11, std::vector<uint8_t>(300, 0x42));
  auto parsed = SnapshotReader::Parse(std::move(writer).Finish());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->format_version(), kSnapshotFormatVersion);
  EXPECT_EQ(parsed->num_sections(), 3u);
  EXPECT_TRUE(parsed->Has(7));
  EXPECT_FALSE(parsed->Has(8));
  auto section = parsed->Section(7);
  ASSERT_TRUE(section.ok());
  ASSERT_EQ(section->size(), 2u);
  EXPECT_EQ((*section)[0], 0xDE);
  auto empty = parsed->Section(9);
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty->size(), 0u);
  auto missing = parsed->Section(8);
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

TEST(SnapshotReaderTest, SaveLeavesNoTmpFileBehind) {
  auto ex = testing_util::MakeRunningExample();
  auto service =
      ProvenanceService::Create(std::move(ex.spec), SpecSchemeKind::kTcm);
  ASSERT_TRUE(service.ok());
  TempFile file("tmpfile");
  ASSERT_TRUE(service->SaveSnapshot(file.path()).ok());
  EXPECT_TRUE(std::filesystem::exists(file.path()));
  EXPECT_TRUE(file.TmpSiblings().empty());
}

TEST(SnapshotTest, RunsSectionTrailingBytesAreRejected) {
  // A CRC-valid runs section with bytes past the declared runs means a
  // writer bug (count written too small); those runs must not vanish
  // silently from the restored registry.
  auto ex = testing_util::MakeRunningExample();
  auto service =
      ProvenanceService::Create(std::move(ex.spec), SpecSchemeKind::kTcm);
  ASSERT_TRUE(service.ok());
  ASSERT_TRUE(service->AddRun(ex.run).ok());
  TempFile file("runs_trailing");
  // Pinned to format v1 — the only version with a kSnapshotSectionRuns
  // section (the v2 run-index trailing-bytes case lives in
  // columnar_snapshot_test.cc).
  ASSERT_TRUE(service->SaveSnapshotAtVersion(file.path(), 1).ok());

  auto reader = SnapshotReader::ReadFile(file.path());
  ASSERT_TRUE(reader.ok());
  SnapshotWriter writer;
  for (uint32_t id :
       {kSnapshotSectionSpec, kSnapshotSectionScheme, kSnapshotSectionRuns}) {
    auto section = reader->Section(id);
    ASSERT_TRUE(section.ok());
    std::vector<uint8_t> payload(section->begin(), section->end());
    if (id == kSnapshotSectionRuns) payload.push_back(0x00);
    writer.AddSection(id, std::move(payload));
  }
  TempFile tampered("runs_trailing_tampered");
  ASSERT_TRUE(std::move(writer).WriteFile(tampered.path()).ok());
  auto restored = ProvenanceService::LoadSnapshot(tampered.path());
  ASSERT_FALSE(restored.ok());
  EXPECT_EQ(restored.status().code(), StatusCode::kParseError);
  EXPECT_NE(restored.status().message().find("run registry has trailing"),
            std::string::npos)
      << restored.status().ToString();
}

}  // namespace
}  // namespace skl
