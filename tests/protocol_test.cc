// Wire-protocol robustness: frame round trips, incremental decoding, and —
// mirroring snapshot_test.cc's fuzz style — byte-exhaustive truncation and
// corruption over encoded frames. Every malformed input must come back as a
// descriptive ParseError (or "incomplete, feed more"), never a decoded
// frame and never a crash; the CRC makes a single flipped byte detectable
// at every position.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "src/net/protocol.h"

namespace skl {
namespace {

Frame MakeReachesFrame(uint64_t request_id) {
  Frame frame;
  frame.type = MsgType::kReaches;
  frame.request_id = request_id;
  PayloadWriter payload;
  payload.U64(7);   // run id
  payload.U64(3);   // v
  payload.U64(12);  // w
  frame.payload = std::move(payload).Finish();
  return frame;
}

std::vector<uint8_t> Encode(const Frame& frame) {
  std::vector<uint8_t> bytes;
  EncodeFrame(frame, &bytes);
  return bytes;
}

void ExpectFramesEqual(const Frame& a, const Frame& b) {
  EXPECT_EQ(a.version, b.version);
  EXPECT_EQ(a.type, b.type);
  EXPECT_EQ(a.request_id, b.request_id);
  EXPECT_EQ(a.payload, b.payload);
}

TEST(ProtocolTest, FrameRoundTrips) {
  for (const Frame& frame :
       {MakeReachesFrame(1), MakeReachesFrame(UINT64_MAX),
        Frame{kProtocolVersion, MsgType::kPing, 0, {}},
        Frame{kProtocolVersion, MsgType::kImportRun, 42,
              std::vector<uint8_t>(100000, 0xAB)}}) {
    FrameDecoder decoder;
    decoder.Feed(Encode(frame));
    auto next = decoder.Next();
    ASSERT_TRUE(next.ok()) << next.status().ToString();
    ASSERT_TRUE(next->has_value());
    ExpectFramesEqual(**next, frame);
    // Exactly one frame; the stream is fully consumed.
    auto empty = decoder.Next();
    ASSERT_TRUE(empty.ok());
    EXPECT_FALSE(empty->has_value());
    EXPECT_EQ(decoder.buffered_bytes(), 0u);
  }
}

TEST(ProtocolTest, DecodesManyFramesFedByteByByte) {
  std::vector<uint8_t> wire;
  for (uint64_t id = 1; id <= 3; ++id) {
    EncodeFrame(MakeReachesFrame(id), &wire);
  }
  FrameDecoder decoder;
  uint64_t decoded = 0;
  for (uint8_t byte : wire) {
    decoder.Feed({&byte, 1});
    for (;;) {
      auto next = decoder.Next();
      ASSERT_TRUE(next.ok()) << next.status().ToString();
      if (!next->has_value()) break;
      ++decoded;
      EXPECT_EQ((*next)->request_id, decoded);
      ExpectFramesEqual(**next, MakeReachesFrame(decoded));
    }
  }
  EXPECT_EQ(decoded, 3u);
}

TEST(ProtocolTest, TruncationAtEveryPrefixIsIncompleteNotError) {
  const std::vector<uint8_t> wire = Encode(MakeReachesFrame(9));
  for (size_t len = 0; len < wire.size(); ++len) {
    FrameDecoder decoder;
    decoder.Feed({wire.data(), len});
    auto next = decoder.Next();
    ASSERT_TRUE(next.ok()) << "prefix of " << len << " bytes: "
                           << next.status().ToString();
    EXPECT_FALSE(next->has_value()) << "prefix of " << len << " bytes";
    // Feeding the remainder completes the frame: truncation was benign.
    decoder.Feed({wire.data() + len, wire.size() - len});
    auto completed = decoder.Next();
    ASSERT_TRUE(completed.ok());
    ASSERT_TRUE(completed->has_value());
    ExpectFramesEqual(**completed, MakeReachesFrame(9));
  }
}

TEST(ProtocolTest, CorruptionAtEveryByteNeverYieldsAFrame) {
  const Frame original = MakeReachesFrame(5);
  const std::vector<uint8_t> wire = Encode(original);
  // A valid Ping follows the corrupted frame, as it would on a pipelined
  // connection; it must never be misparsed as part of the damage.
  std::vector<uint8_t> tail;
  EncodeFrame(Frame{kProtocolVersion, MsgType::kPing, 6, {}}, &tail);

  for (size_t i = 0; i < wire.size(); ++i) {
    for (uint8_t flip : {uint8_t{0x01}, uint8_t{0xFF}}) {
      std::vector<uint8_t> corrupted = wire;
      corrupted[i] ^= flip;
      FrameDecoder decoder;
      decoder.Feed(corrupted);
      decoder.Feed(tail);
      auto next = decoder.Next();
      if (next.ok()) {
        // The corruption may leave the stream incomplete (e.g. an inflated
        // length prefix) — but it must never decode into a frame.
        EXPECT_FALSE(next->has_value())
            << "byte " << i << " ^ " << int(flip) << " decoded a frame";
      } else {
        EXPECT_EQ(next.status().code(), StatusCode::kParseError);
        EXPECT_FALSE(next.status().message().empty());
        // Poisoned: the error is sticky, the tail is not resynced into.
        EXPECT_TRUE(decoder.poisoned());
        auto again = decoder.Next();
        EXPECT_FALSE(again.ok());
      }
    }
  }
}

TEST(ProtocolTest, OversizedLengthPrefixIsBoundedNotAllocated) {
  // Header claiming a ~4GB body: must fail fast on the configured ceiling,
  // not wait for (or allocate) gigabytes.
  std::vector<uint8_t> wire = Encode(MakeReachesFrame(1));
  wire[2] = 0xFF;  // big-endian body_len high byte
  FrameDecoder decoder(/*max_frame_bytes=*/1 << 20);
  decoder.Feed(wire);
  auto next = decoder.Next();
  ASSERT_FALSE(next.ok());
  EXPECT_EQ(next.status().code(), StatusCode::kParseError);
  EXPECT_NE(next.status().message().find("exceeds the maximum"),
            std::string::npos)
      << next.status().ToString();
}

TEST(ProtocolTest, UnsupportedVersionDecodesForTheDispatcherToReject) {
  // A CRC-intact frame of a future protocol version is not line noise: the
  // decoder hands it over so the server can answer a descriptive error.
  Frame future = MakeReachesFrame(2);
  future.version = kProtocolVersion + 3;
  FrameDecoder decoder;
  decoder.Feed(Encode(future));
  auto next = decoder.Next();
  ASSERT_TRUE(next.ok()) << next.status().ToString();
  ASSERT_TRUE(next->has_value());
  EXPECT_EQ((*next)->version, kProtocolVersion + 3);
}

TEST(ProtocolTest, PayloadReaderRejectsTruncationAndTrailingBytes) {
  PayloadWriter writer;
  writer.U64(300);
  writer.Boolean(true);
  writer.Str("hello");
  const std::vector<uint8_t> payload = std::move(writer).Finish();

  {
    PayloadReader reader(payload);
    ASSERT_TRUE(reader.U64().ok());
    ASSERT_TRUE(reader.Boolean().ok());
    auto s = reader.Str();
    ASSERT_TRUE(s.ok());
    EXPECT_EQ(*s, "hello");
    EXPECT_TRUE(reader.ExpectEnd().ok());
  }
  {
    // Stopping early is a shape mismatch.
    PayloadReader reader(payload);
    ASSERT_TRUE(reader.U64().ok());
    Status end = reader.ExpectEnd();
    ASSERT_FALSE(end.ok());
    EXPECT_EQ(end.code(), StatusCode::kParseError);
    EXPECT_NE(end.message().find("trailing"), std::string::npos);
  }
  {
    // Reading past the end fails instead of fabricating values.
    PayloadReader reader(payload);
    ASSERT_TRUE(reader.U64().ok());
    ASSERT_TRUE(reader.Boolean().ok());
    ASSERT_TRUE(reader.Str().ok());
    EXPECT_FALSE(reader.U64().ok());
  }
  {
    // A blob length pointing past the payload is caught by the read.
    PayloadWriter w;
    w.U64(1000);  // as a Bytes() length this overruns
    const std::vector<uint8_t> bad = std::move(w).Finish();
    PayloadReader reader(bad);
    EXPECT_FALSE(reader.Bytes().ok());
  }
}

TEST(ProtocolTest, ErrorPayloadRoundTripsEveryCode) {
  for (StatusCode code :
       {StatusCode::kInvalidArgument, StatusCode::kInvalidSpecification,
        StatusCode::kInvalidRun, StatusCode::kNotFound,
        StatusCode::kParseError, StatusCode::kCapacityExceeded,
        StatusCode::kInternal, StatusCode::kCancelled,
        StatusCode::kUnavailable, StatusCode::kRetryAt}) {
    const Status original(code, std::string("message for ") +
                                    StatusCodeName(code));
    Status decoded = DecodeErrorPayload(EncodeErrorPayload(original));
    EXPECT_EQ(decoded.code(), original.code());
    EXPECT_EQ(decoded.message(), original.message());
  }
}

TEST(ProtocolTest, UnknownErrorCodeMapsToInternalKeepingTheMessage) {
  PayloadWriter writer;
  writer.U64(200);  // a code from the future
  writer.Str("future failure");
  Status decoded = DecodeErrorPayload(std::move(writer).Finish());
  EXPECT_EQ(decoded.code(), StatusCode::kInternal);
  EXPECT_NE(decoded.message().find("future failure"), std::string::npos);
}

TEST(ProtocolTest, MalformedErrorPayloadIsAParseError) {
  Status decoded = DecodeErrorPayload(std::vector<uint8_t>{0x01});
  EXPECT_EQ(decoded.code(), StatusCode::kParseError);
  EXPECT_NE(decoded.message().find("malformed error payload"),
            std::string::npos);
}

}  // namespace
}  // namespace skl
