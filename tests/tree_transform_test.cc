// Tests for the tree-transform baseline: correctness on DAGs, exponential
// blow-up measurement, and the capacity cap.
#include <gtest/gtest.h>

#include "src/baseline/tree_transform.h"
#include "src/graph/algorithms.h"
#include "src/workload/run_generator.h"
#include "tests/test_util.h"

namespace skl {
namespace {

TEST(TreeTransformTest, CorrectOnDiamond) {
  DigraphBuilder b(4);
  b.AddEdge(0, 1);
  b.AddEdge(0, 2);
  b.AddEdge(1, 3);
  b.AddEdge(2, 3);
  Digraph g = std::move(b).Build();
  TreeTransformLabeling tt;
  ASSERT_TRUE(tt.Build(g).ok());
  // 3 is duplicated (reached via 1 and via 2): tree has 5 nodes.
  EXPECT_EQ(tt.tree_size(), 5u);
  for (VertexId u = 0; u < 4; ++u) {
    for (VertexId v = 0; v < 4; ++v) {
      EXPECT_EQ(tt.Reaches(u, v), Reaches(g, u, v)) << u << "->" << v;
    }
  }
}

TEST(TreeTransformTest, CorrectOnGeneratedRun) {
  auto ex = testing_util::MakeRunningExample();
  RunGenerator gen(&ex.spec);
  RunGenOptions opt;
  opt.target_vertices = 150;
  opt.seed = 4;
  auto run = gen.Generate(opt);
  ASSERT_TRUE(run.ok());
  TreeTransformLabeling tt;
  auto st = tt.Build(run->run);
  ASSERT_TRUE(st.ok()) << st.ToString();
  const Digraph& g = run->run.graph();
  Rng rng(41);
  for (int i = 0; i < 2000; ++i) {
    VertexId u = static_cast<VertexId>(rng.NextBelow(g.num_vertices()));
    VertexId v = static_cast<VertexId>(rng.NextBelow(g.num_vertices()));
    ASSERT_EQ(tt.Reaches(u, v), Reaches(g, u, v)) << u << "->" << v;
  }
}

TEST(TreeTransformTest, BlowUpOnChainedDiamonds) {
  // k chained diamonds duplicate the tail 2^k times.
  const int k = 12;
  DigraphBuilder b;
  VertexId prev = b.AddVertex();
  for (int i = 0; i < k; ++i) {
    VertexId left = b.AddVertex();
    VertexId right = b.AddVertex();
    VertexId join = b.AddVertex();
    b.AddEdge(prev, left);
    b.AddEdge(prev, right);
    b.AddEdge(left, join);
    b.AddEdge(right, join);
    prev = join;
  }
  Digraph g = std::move(b).Build();
  TreeTransformLabeling tt;
  ASSERT_TRUE(tt.Build(g).ok());
  EXPECT_GT(tt.tree_size(), size_t{1} << k);  // exponential in k
  EXPECT_LT(g.num_vertices(), 4u * k + 1u);   // but the DAG is linear in k
}

TEST(TreeTransformTest, CapStopsTheExplosion) {
  const int k = 40;
  DigraphBuilder b;
  VertexId prev = b.AddVertex();
  for (int i = 0; i < k; ++i) {
    VertexId left = b.AddVertex();
    VertexId right = b.AddVertex();
    VertexId join = b.AddVertex();
    b.AddEdge(prev, left);
    b.AddEdge(prev, right);
    b.AddEdge(left, join);
    b.AddEdge(right, join);
    prev = join;
  }
  Digraph g = std::move(b).Build();
  TreeTransformLabeling tt(/*max_tree_nodes=*/100000);
  auto st = tt.Build(g);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kCapacityExceeded);
}

TEST(TreeTransformTest, RequiresSingleSource) {
  DigraphBuilder b(3);
  b.AddEdge(0, 2);
  b.AddEdge(1, 2);
  Digraph g = std::move(b).Build();
  TreeTransformLabeling tt;
  EXPECT_FALSE(tt.Build(g).ok());
}

TEST(TreeTransformTest, LabelBitsAccounted) {
  DigraphBuilder b(2);
  b.AddEdge(0, 1);
  Digraph g = std::move(b).Build();
  TreeTransformLabeling tt;
  ASSERT_TRUE(tt.Build(g).ok());
  EXPECT_GT(tt.TotalLabelBits(), 0u);
}

}  // namespace
}  // namespace skl
