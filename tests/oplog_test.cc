// Durable op-log unit + fuzz suite (src/replication/oplog.h): entry
// round trips, reopen-continues-LSN, header identity checks, ReadFrom
// windows — and, mirroring snapshot_test.cc's fuzz style, byte-exhaustive
// truncation and bit-flip sweeps over a 3-entry log asserting replay
// always stops at the last valid LSN with a descriptive Status: never a
// crash, never a silently skipped entry, never a full-length replay of a
// damaged file.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "src/common/check.h"
#include "src/common/temp_path.h"
#include "src/replication/oplog.h"

namespace skl {
namespace {

constexpr char kSpecXml[] = "<specification fake-but-stable/>";
constexpr char kScheme[] = "tcm";

std::string FreshLogPath(const std::string& stem) {
  const std::string path = PidQualifiedTempPath(stem, ".skllog");
  std::filesystem::remove(path);
  return path;
}

LogOp MakeAddOp(uint64_t run_id, uint8_t blob_fill, size_t blob_len) {
  LogOp op;
  op.kind = LogOp::Kind::kAddRun;
  op.run_id = run_id;
  op.stats.num_vertices = 30;
  op.stats.num_items = 12;
  op.stats.label_bits = 96;
  op.stats.context_bits = 40;
  op.stats.origin_bits = 8;
  op.stats.num_nonempty_plus = 5;
  op.stats.imported = false;
  op.blob.assign(blob_len, blob_fill);
  return op;
}

std::vector<uint8_t> ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                              std::istreambuf_iterator<char>());
}

void WriteAll(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

/// A log with 3 entries (add, import, remove); fsync off — these tests
/// exercise the format, not the disk.
std::string BuildThreeEntryLog(const std::string& stem) {
  const std::string path = FreshLogPath(stem);
  OpLog::Options options;
  options.fsync = false;
  auto log = OpLog::Open(path, kSpecXml, kScheme, options);
  SKL_CHECK_MSG(log.ok(), log.status().ToString().c_str());
  auto a = (*log)->Append(MakeAddOp(1, 0xAA, 24));
  SKL_CHECK_MSG(a.ok(), a.status().ToString().c_str());
  LogOp imported = MakeAddOp(2, 0xBB, 16);
  imported.kind = LogOp::Kind::kImportRun;
  imported.stats.imported = true;
  auto b = (*log)->Append(std::move(imported));
  SKL_CHECK_MSG(b.ok(), b.status().ToString().c_str());
  LogOp removed;
  removed.kind = LogOp::Kind::kRemoveRun;
  removed.run_id = 1;
  auto c = (*log)->Append(std::move(removed));
  SKL_CHECK_MSG(c.ok(), c.status().ToString().c_str());
  return path;
}

TEST(OpLogTest, AppendsReplayBitIdentical) {
  const std::string path = BuildThreeEntryLog("oplog_roundtrip");
  auto replay = OpLog::ReplayFile(path);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_TRUE(replay->tail.ok()) << replay->tail.ToString();
  EXPECT_EQ(replay->spec_xml, kSpecXml);
  EXPECT_EQ(replay->scheme_name, kScheme);
  EXPECT_EQ(replay->last_lsn, 3u);
  ASSERT_EQ(replay->ops.size(), 3u);

  const LogOp& add = replay->ops[0];
  EXPECT_EQ(add.lsn, 1u);
  EXPECT_EQ(add.kind, LogOp::Kind::kAddRun);
  EXPECT_EQ(add.run_id, 1u);
  EXPECT_EQ(add.stats.num_vertices, 30u);
  EXPECT_EQ(add.stats.num_items, 12u);
  EXPECT_EQ(add.stats.label_bits, 96u);
  EXPECT_EQ(add.stats.context_bits, 40u);
  EXPECT_EQ(add.stats.origin_bits, 8u);
  EXPECT_EQ(add.stats.num_nonempty_plus, 5u);
  EXPECT_FALSE(add.stats.imported);
  EXPECT_EQ(add.blob, std::vector<uint8_t>(24, 0xAA));

  const LogOp& imported = replay->ops[1];
  EXPECT_EQ(imported.lsn, 2u);
  EXPECT_EQ(imported.kind, LogOp::Kind::kImportRun);
  EXPECT_TRUE(imported.stats.imported);
  EXPECT_EQ(imported.blob, std::vector<uint8_t>(16, 0xBB));

  const LogOp& removed = replay->ops[2];
  EXPECT_EQ(removed.lsn, 3u);
  EXPECT_EQ(removed.kind, LogOp::Kind::kRemoveRun);
  EXPECT_EQ(removed.run_id, 1u);
  std::filesystem::remove(path);
}

TEST(OpLogTest, ReopenContinuesTheLsnSequence) {
  const std::string path = BuildThreeEntryLog("oplog_reopen");
  OpLog::Options options;
  options.fsync = false;
  auto reopened = OpLog::Open(path, kSpecXml, kScheme, options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->last_lsn(), 3u);
  auto lsn = (*reopened)->Append(MakeAddOp(3, 0xCC, 8));
  ASSERT_TRUE(lsn.ok()) << lsn.status().ToString();
  EXPECT_EQ(*lsn, 4u);

  auto replay = OpLog::ReplayFile(path);
  ASSERT_TRUE(replay.ok());
  EXPECT_TRUE(replay->tail.ok());
  EXPECT_EQ(replay->last_lsn, 4u);
  std::filesystem::remove(path);
}

TEST(OpLogTest, OpenRefusesAForeignHeader) {
  const std::string path = BuildThreeEntryLog("oplog_header");
  OpLog::Options options;
  options.fsync = false;
  auto wrong_spec = OpLog::Open(path, "<other spec/>", kScheme, options);
  ASSERT_FALSE(wrong_spec.ok());
  EXPECT_EQ(wrong_spec.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(wrong_spec.status().message().find("different specification"),
            std::string::npos)
      << wrong_spec.status().ToString();

  auto wrong_scheme = OpLog::Open(path, kSpecXml, "bfs", options);
  ASSERT_FALSE(wrong_scheme.ok());
  EXPECT_EQ(wrong_scheme.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(wrong_scheme.status().message().find("tcm"), std::string::npos);
  EXPECT_NE(wrong_scheme.status().message().find("bfs"), std::string::npos);
  std::filesystem::remove(path);
}

TEST(OpLogTest, ReadFromServesLsnWindows) {
  const std::string path = FreshLogPath("oplog_readfrom");
  OpLog::Options options;
  options.fsync = false;
  auto log = OpLog::Open(path, kSpecXml, kScheme, options);
  ASSERT_TRUE(log.ok());
  for (uint64_t i = 1; i <= 5; ++i) {
    ASSERT_TRUE((*log)->Append(MakeAddOp(i, 0x11, 4)).ok());
  }
  EXPECT_EQ((*log)->ReadFrom(0, 100).size(), 5u);
  const std::vector<LogOp> window = (*log)->ReadFrom(2, 2);
  ASSERT_EQ(window.size(), 2u);
  EXPECT_EQ(window[0].lsn, 3u);
  EXPECT_EQ(window[1].lsn, 4u);
  EXPECT_TRUE((*log)->ReadFrom(5, 10).empty());
  EXPECT_TRUE((*log)->ReadFrom(50, 10).empty());
  std::filesystem::remove(path);
}

TEST(OpLogTest, DeserializeRejectsMalformedEntries) {
  LogOp op = MakeAddOp(7, 0x5A, 6);
  op.lsn = 1;  // Append assigns this in real use; 0 is invalid on the wire
  const std::vector<uint8_t> good = SerializeLogOp(op);
  {
    auto decoded = DeserializeLogOp(good);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded->run_id, 7u);
  }
  // Empty payload.
  EXPECT_FALSE(DeserializeLogOp(std::vector<uint8_t>{}).ok());
  // Every strict prefix is a truncation, never a partial decode.
  for (size_t len = 0; len < good.size(); ++len) {
    auto r = DeserializeLogOp(std::vector<uint8_t>(good.begin(),
                                                   good.begin() + len));
    EXPECT_FALSE(r.ok()) << "prefix of " << len << " bytes decoded";
  }
  // Trailing garbage is a shape mismatch.
  std::vector<uint8_t> padded = good;
  padded.push_back(0x00);
  auto r = DeserializeLogOp(padded);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

// -------------------------------------------------------- corruption fuzz --

/// Shared checker: a (possibly damaged) file must replay to a valid strict
/// prefix — contiguous LSNs from 1 — and must say why it stopped early.
void ExpectSanePartialReplay(const std::string& path, size_t file_len,
                             const char* what) {
  auto replay = OpLog::ReplayFile(path);
  if (!replay.ok()) {
    // Header-level damage: the whole file is rejected, descriptively.
    EXPECT_EQ(replay.status().code(), StatusCode::kParseError)
        << what << ": " << replay.status().ToString();
    EXPECT_FALSE(replay.status().message().empty()) << what;
    return;
  }
  EXPECT_LE(replay->ops.size(), 3u) << what;
  EXPECT_EQ(replay->last_lsn, replay->ops.size()) << what;
  for (size_t i = 0; i < replay->ops.size(); ++i) {
    EXPECT_EQ(replay->ops[i].lsn, i + 1) << what;
  }
  EXPECT_LE(replay->valid_bytes, file_len) << what;
  if (replay->tail.ok()) {
    // A clean tail means the file ends exactly after the last valid
    // entry — nothing was skipped.
    EXPECT_EQ(replay->valid_bytes, file_len) << what;
  } else {
    EXPECT_EQ(replay->tail.code(), StatusCode::kParseError)
        << what << ": " << replay->tail.ToString();
    EXPECT_FALSE(replay->tail.message().empty()) << what;
  }
}

TEST(OpLogFuzzTest, TruncationAtEveryByteStopsAtTheLastValidLsn) {
  const std::string path = BuildThreeEntryLog("oplog_trunc_src");
  const std::vector<uint8_t> wire = ReadAll(path);
  ASSERT_GT(wire.size(), 0u);
  const std::string scratch = FreshLogPath("oplog_trunc_scratch");
  size_t full_replays = 0;
  for (size_t len = 0; len < wire.size(); ++len) {
    SCOPED_TRACE("prefix of " + std::to_string(len) + " bytes");
    WriteAll(scratch,
             std::vector<uint8_t>(wire.begin(), wire.begin() + len));
    ExpectSanePartialReplay(scratch, len, "truncation");
    auto replay = OpLog::ReplayFile(scratch);
    if (replay.ok() && replay->ops.size() == 3) ++full_replays;
  }
  // No strict prefix may replay all three entries: the last one is
  // incomplete by construction.
  EXPECT_EQ(full_replays, 0u);
  std::filesystem::remove(path);
  std::filesystem::remove(scratch);
}

TEST(OpLogFuzzTest, BitFlipAtEveryByteNeverSkipsOrCrashes) {
  const std::string path = BuildThreeEntryLog("oplog_flip_src");
  const std::vector<uint8_t> wire = ReadAll(path);
  const std::string scratch = FreshLogPath("oplog_flip_scratch");
  for (size_t i = 0; i < wire.size(); ++i) {
    for (uint8_t flip : {uint8_t{0x01}, uint8_t{0xFF}}) {
      SCOPED_TRACE("byte " + std::to_string(i) + " ^ " +
                   std::to_string(int(flip)));
      std::vector<uint8_t> corrupted = wire;
      corrupted[i] ^= flip;
      WriteAll(scratch, corrupted);
      ExpectSanePartialReplay(scratch, corrupted.size(), "bit flip");
      // A flip anywhere damages the header or exactly one entry: a full
      // undamaged replay of all 3 ops with a clean tail is impossible
      // (the frame CRC detects every single-byte flip in a payload; a
      // flipped length or CRC field breaks its own frame).
      auto replay = OpLog::ReplayFile(scratch);
      if (replay.ok()) {
        EXPECT_FALSE(replay->ops.size() == 3 && replay->tail.ok())
            << "flip decoded as an undamaged file";
      }
    }
  }
  std::filesystem::remove(path);
  std::filesystem::remove(scratch);
}

TEST(OpLogTest, OpenTruncatesATornTailAndContinues) {
  const std::string path = BuildThreeEntryLog("oplog_torn");
  // Simulate a crash mid-append: half a frame of garbage at the end.
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    const char torn[] = {0x00, 0x00, 0x00, 0x30, 0x12};
    out.write(torn, sizeof(torn));
  }
  const auto damaged_size = std::filesystem::file_size(path);
  OpLog::Options options;
  options.fsync = false;
  auto reopened = OpLog::Open(path, kSpecXml, kScheme, options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->last_lsn(), 3u);
  EXPECT_LT(std::filesystem::file_size(path), damaged_size);
  auto lsn = (*reopened)->Append(MakeAddOp(9, 0xEE, 4));
  ASSERT_TRUE(lsn.ok()) << lsn.status().ToString();
  EXPECT_EQ(*lsn, 4u);
  auto replay = OpLog::ReplayFile(path);
  ASSERT_TRUE(replay.ok());
  EXPECT_TRUE(replay->tail.ok());
  EXPECT_EQ(replay->last_lsn, 4u);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace skl
