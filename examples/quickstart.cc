// Quickstart: the paper's running example end to end, against the
// service-level API. Everything needed is in the umbrella header.
//
// Builds the Figure 2 specification (fork F1, loops L1/L2, fork F2), the
// Figure 3 run, registers the run with a ProvenanceService (TCM skeleton,
// labeled once), and answers the provenance queries from the paper's
// introduction.
//
//   $ ./quickstart
#include <cstdio>

#include "src/skl.h"

namespace {

using namespace skl;  // NOLINT: example brevity

Result<Specification> BuildSpec() {
  SpecificationBuilder b;
  VertexId a = b.AddModule("a");
  VertexId bb = b.AddModule("b");
  VertexId c = b.AddModule("c");
  VertexId h = b.AddModule("h");
  VertexId d = b.AddModule("d");
  VertexId e = b.AddModule("e");
  VertexId f = b.AddModule("f");
  VertexId g = b.AddModule("g");
  b.AddEdge(a, bb).AddEdge(bb, c).AddEdge(c, h);
  b.AddEdge(a, d).AddEdge(d, e).AddEdge(e, f).AddEdge(f, g).AddEdge(g, h);
  b.DeclareFork({a, bb, c, h});  // F1: the b-c branch may fork
  b.DeclareLoop({bb, c});        // L1: b-c may iterate
  b.DeclareLoop({e, f, g});      // L2: e-f-g may iterate
  b.DeclareFork({e, f, g});      // F2: f may fork within an iteration
  return std::move(b).Build();
}

}  // namespace

int main() {
  auto spec = BuildSpec();
  if (!spec.ok()) {
    std::fprintf(stderr, "spec: %s\n", spec.status().ToString().c_str());
    return 1;
  }
  std::printf("specification: %u modules, %zu channels, %zu forks, %zu "
              "loops, hierarchy depth %d\n",
              spec->graph().num_vertices(), spec->graph().num_edges(),
              spec->num_forks(), spec->num_loops(),
              spec->hierarchy().depth());

  // The Figure 3 run: F1 executed twice; L1 twice in one copy, once in the
  // other; L2 twice, with F2 executed twice in the second iteration.
  RunBuilder rb(spec->shared_modules());
  auto v = [&](const char* module) {
    return rb.AddVertexById(static_cast<ModuleId>(spec->VertexOf(module)));
  };
  VertexId a1 = v("a"), b1 = v("b"), c1 = v("c"), b2 = v("b"), c2 = v("c");
  VertexId b3 = v("b"), c3 = v("c"), h1 = v("h"), d1 = v("d");
  VertexId e1 = v("e"), f1 = v("f"), g1 = v("g");
  VertexId e2 = v("e"), f2 = v("f"), f3 = v("f"), g2 = v("g");
  rb.AddEdge(a1, b1).AddEdge(b1, c1).AddEdge(c1, b2).AddEdge(b2, c2)
      .AddEdge(c2, h1);
  rb.AddEdge(a1, b3).AddEdge(b3, c3).AddEdge(c3, h1);
  rb.AddEdge(a1, d1).AddEdge(d1, e1).AddEdge(e1, f1).AddEdge(f1, g1);
  rb.AddEdge(g1, e2).AddEdge(e2, f2).AddEdge(f2, g2).AddEdge(e2, f3)
      .AddEdge(f3, g2).AddEdge(g2, h1);
  auto run = std::move(rb).Build();
  if (!run.ok()) {
    std::fprintf(stderr, "run: %s\n", run.status().ToString().c_str());
    return 1;
  }
  std::printf("run: %u module executions, %zu data channels\n\n",
              run->num_vertices(), run->num_edges());

  // The service labels the specification skeleton once (TCM); every run
  // added afterwards amortizes that cost.
  auto service =
      ProvenanceService::Create(std::move(spec).value(), SpecSchemeKind::kTcm);
  if (!service.ok()) {
    std::fprintf(stderr, "service: %s\n",
                 service.status().ToString().c_str());
    return 1;
  }
  auto id = service->AddRun(*run);
  if (!id.ok()) {
    std::fprintf(stderr, "label: %s\n", id.status().ToString().c_str());
    return 1;
  }
  auto stats = service->Stats(*id);
  if (!stats.ok()) return 1;
  std::printf("labels: %u bits each (3x%u context + %u origin), "
              "%u nonempty plan nodes\n\n",
              stats->label_bits, stats->context_bits / 3,
              stats->origin_bits, stats->num_nonempty_plus);

  struct Query {
    const char* text;
    VertexId from, to;
  } queries[] = {
      {"does c3's output depend on b1's input (parallel fork copies)?",
       b1, c3},
      {"does b2's output depend on c1's input (successive iterations)?",
       c1, b2},
      {"does c1's output depend on b1's input (same copy, via skeleton)?",
       b1, c1},
      {"does d1 depend on c1 (different branches)?", c1, d1},
      {"does f2 see f1's data (across loop iterations)?", f1, f2},
      {"does f3 see f2's data (parallel fork copies)?", f2, f3},
  };
  for (const Query& q : queries) {
    auto answer = service->Reaches(*id, q.from, q.to);
    if (!answer.ok()) {
      std::fprintf(stderr, "query: %s\n",
                   answer.status().ToString().c_str());
      return 1;
    }
    std::printf("  %-62s %s\n", q.text, *answer ? "yes" : "no");
  }

  // Persist and restore: a blob round-trip stays queryable.
  auto blob = service->ExportRun(*id);
  if (!blob.ok()) return 1;
  auto restored = service->ImportRun(*blob);
  if (!restored.ok()) return 1;
  auto check = service->Reaches(*restored, b1, c3);
  std::printf("\npersisted blob: %zu bytes; restored run answers match: %s\n",
              blob->size(),
              check.ok() && *check == *service->Reaches(*id, b1, c3)
                  ? "yes" : "no");
  return 0;
}
