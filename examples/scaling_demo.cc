// Scaling demonstration: labels a sweep of run sizes (0.1K..25.6K vertices
// by default) against one fixed specification and prints label length,
// construction time and mean query latency — a miniature of the paper's
// Figures 12-14 that runs in a couple of seconds.
//
//   $ ./scaling_demo [max_vertices]
#include <cstdio>
#include <cstdlib>

#include "src/common/stopwatch.h"
#include "src/core/skeleton_labeler.h"
#include "src/workload/query_generator.h"
#include "src/workload/real_workflows.h"
#include "src/workload/run_generator.h"

using namespace skl;  // NOLINT: example brevity

int main(int argc, char** argv) {
  uint32_t max_vertices =
      argc > 1 ? static_cast<uint32_t>(std::strtoul(argv[1], nullptr, 10))
               : 25600;
  auto spec = BuildRealWorkflow("QBLAST");
  if (!spec.ok()) {
    std::fprintf(stderr, "%s\n", spec.status().ToString().c_str());
    return 1;
  }
  SkeletonLabeler labeler(&spec.value(), SpecSchemeKind::kTcm);
  if (!labeler.Init().ok()) return 1;
  RunGenerator generator(&spec.value());

  std::printf("%10s %10s %12s %14s %12s\n", "run size", "edges",
              "label bits", "construct ms", "query ns");
  for (uint32_t target = 100; target <= max_vertices; target *= 2) {
    RunGenOptions ropt;
    ropt.target_vertices = target;
    ropt.seed = target;
    auto gen = generator.Generate(ropt);
    if (!gen.ok()) {
      std::fprintf(stderr, "%s\n", gen.status().ToString().c_str());
      return 1;
    }
    Stopwatch sw;
    auto labeling = labeler.LabelRun(gen->run);
    double construct_ms = sw.ElapsedMillis();
    if (!labeling.ok()) {
      std::fprintf(stderr, "%s\n", labeling.status().ToString().c_str());
      return 1;
    }
    auto queries =
        GenerateQueries(gen->run.num_vertices(), 100000, target + 1);
    sw.Restart();
    size_t positive = 0;
    for (const auto& [u, v] : queries) {
      positive += labeling->Reaches(u, v) ? 1 : 0;
    }
    double query_ns = sw.ElapsedSeconds() * 1e9 / queries.size();
    std::printf("%10u %10zu %12u %14.2f %12.1f   (%zu%% reachable)\n",
                gen->run.num_vertices(), gen->run.num_edges(),
                labeling->label_bits(), construct_ms, query_ns,
                positive * 100 / queries.size());
  }
  return 0;
}
