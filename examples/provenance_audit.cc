// Provenance audit over a bioinformatics-style workflow (Section 6 usage),
// driven through ProvenanceService: the run is registered once with its data
// catalog, and every audit question is answered from the service's registry
// — no graph traversal over the run, no scheme plumbing at the call sites.
//
// Scenario: a QBLAST-like pipeline ran with hundreds of module executions.
// Quality control flags one module execution as faulty; the analyst needs
// (a) every data item downstream of the faulty execution (to invalidate),
// and (b) the upstream executions that a chosen final item depended on
// (to re-examine inputs). Before the audit, the nightly batch of replicate
// runs is bulk-ingested on the service's thread pool
// (AddRunsWithPlansParallel) — the paper's many-runs amortization, parallel.
//
// After the nightly batch, the service checkpoints itself to a snapshot
// file and recovery is rehearsed: the snapshot is loaded back and a sample
// of query answers is verified identical — the warm-restart path a crash
// would take (docs/PERSISTENCE.md), exercised on every audit.
//
//   $ ./provenance_audit [target_run_size] [batch_size]
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "src/common/temp_path.h"

#include "src/common/stopwatch.h"
#include "src/skl.h"
#include "src/workload/data_generator.h"
#include "src/workload/real_workflows.h"
#include "src/workload/run_generator.h"

using namespace skl;  // NOLINT: example brevity

int main(int argc, char** argv) {
  uint32_t target = argc > 1 ? static_cast<uint32_t>(
                                   std::strtoul(argv[1], nullptr, 10))
                             : 2000;
  auto spec = BuildRealWorkflow("QBLAST");
  if (!spec.ok()) {
    std::fprintf(stderr, "%s\n", spec.status().ToString().c_str());
    return 1;
  }
  std::printf("QBLAST-like specification: %u modules, %zu channels\n",
              spec->graph().num_vertices(), spec->graph().num_edges());

  RunGenerator generator(&spec.value());
  RunGenOptions ropt;
  ropt.target_vertices = target;
  ropt.seed = 2024;
  auto gen = generator.Generate(ropt);
  if (!gen.ok()) {
    std::fprintf(stderr, "%s\n", gen.status().ToString().c_str());
    return 1;
  }
  const Run& run = gen->run;
  std::printf("simulated run: %u executions, %zu channels\n",
              run.num_vertices(), run.num_edges());

  DataGenOptions dopt;
  dopt.seed = 7;
  DataCatalog catalog = GenerateDataCatalog(run, dopt);

  auto service =
      ProvenanceService::Create(std::move(spec).value(), SpecSchemeKind::kTcm);
  if (!service.ok()) {
    std::fprintf(stderr, "%s\n", service.status().ToString().c_str());
    return 1;
  }
  Stopwatch sw;
  auto id = service->AddRun(run, &catalog);
  if (!id.ok()) {
    std::fprintf(stderr, "%s\n", id.status().ToString().c_str());
    return 1;
  }
  auto stats = service->Stats(*id);
  if (!stats.ok()) return 1;
  std::printf("registered in %.2f ms (%u-bit labels)\n", sw.ElapsedMillis(),
              stats->label_bits);
  std::printf("data catalog: %zu items (max %zu readers per item)\n\n",
              catalog.size(), catalog.MaxInputs());

  // Nightly batch: replicate runs arrive together with their engine logs
  // (ground-truth plans) and are labeled concurrently; the returned ids are
  // ascending in batch order.
  const size_t batch = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 8;
  RunGenOptions batch_opt;
  batch_opt.target_vertices = target;
  batch_opt.seed = 4242;
  // The original `spec` was moved into the service; generate against the
  // service-owned copy (stable address for the service's lifetime).
  RunGenerator batch_generator(&service->spec());
  auto replicates = batch_generator.GenerateMany(batch_opt, batch);
  if (!replicates.ok()) {
    std::fprintf(stderr, "%s\n", replicates.status().ToString().c_str());
    return 1;
  }
  std::vector<PlannedRun> planned;
  planned.reserve(replicates->size());
  for (const GeneratedRun& g : *replicates) {
    planned.push_back({&g.run, &g.plan, g.origin});
  }
  sw.Restart();
  std::vector<Result<RunId>> batch_ids =
      service->AddRunsWithPlansParallel(planned);
  const double batch_secs = sw.ElapsedSeconds();
  size_t batch_ok = 0;
  for (const Result<RunId>& r : batch_ids) batch_ok += r.ok() ? 1 : 0;
  std::printf("nightly batch: %zu/%zu replicate runs ingested in %.2f ms "
              "(%.0f runs/s, pool of %u)\n\n",
              batch_ok, batch_ids.size(), batch_secs * 1e3,
              batch_secs > 0 ? batch_ok / batch_secs : 0.0,
              ThreadPool::Resolve(service->options().num_threads));

  // Checkpoint-and-recover rehearsal: persist the whole service (spec +
  // scheme + all registered runs), load it back as a crash recovery would,
  // and verify the restored registry answers identically.
  const std::filesystem::path snapshot_path =
      PidQualifiedTempPath("provenance_audit", ".skls");
  sw.Restart();
  Status saved = service->SaveSnapshot(snapshot_path.string());
  if (!saved.ok()) {
    std::fprintf(stderr, "%s\n", saved.ToString().c_str());
    return 1;
  }
  const double save_ms = sw.ElapsedMillis();
  std::error_code size_ec;
  const auto snapshot_bytes =
      std::filesystem::file_size(snapshot_path, size_ec);

  sw.Restart();
  auto restored = ProvenanceService::LoadSnapshot(snapshot_path.string());
  const double recover_ms = sw.ElapsedMillis();
  std::error_code rm_ec;
  std::filesystem::remove(snapshot_path, rm_ec);
  if (!restored.ok()) {
    std::fprintf(stderr, "%s\n", restored.status().ToString().c_str());
    return 1;
  }
  size_t verified = 0, mismatches = 0;
  for (RunId rid : service->ListRuns()) {
    auto rstats = restored->Stats(rid);
    if (!rstats.ok()) {  // a missing run counts as one failed sample
      ++verified;
      ++mismatches;
      continue;
    }
    const VertexId n = rstats->num_vertices;
    // Deterministic sample: a diagonal band plus the extremes.
    for (VertexId v = 0; v < n; v += 1 + n / 16) {
      const VertexId w = n - 1 - v;
      auto a = service->Reaches(rid, v, w);
      auto b = restored->Reaches(rid, v, w);
      ++verified;
      if (!a.ok() || !b.ok() || *a != *b) ++mismatches;
    }
  }
  std::printf("checkpoint: %zu runs -> %llu bytes in %.2f ms; recovered in "
              "%.2f ms; %zu/%zu sampled answers identical\n\n",
              service->num_runs(),
              size_ec ? 0ULL
                      : static_cast<unsigned long long>(snapshot_bytes),
              save_ms, recover_ms, verified - mismatches, verified);
  if (mismatches != 0) return 1;

  // (a) Faulty execution: pick a mid-run vertex; find all affected items.
  VertexId faulty = run.num_vertices() / 2;
  sw.Restart();
  size_t affected = 0;
  for (DataItemId x = 0; x < catalog.size(); ++x) {
    auto dep = service->DataDependsOnModule(*id, x, faulty);
    if (dep.ok() && *dep) ++affected;
  }
  std::printf("fault audit: execution #%u ('%s') taints %zu/%zu items "
              "(%.2f ms via labels)\n",
              faulty, run.ModuleNameOf(faulty).c_str(), affected,
              catalog.size(), sw.ElapsedMillis());

  // (b) Root-cause: which executions fed the last item written?
  DataItemId last = static_cast<DataItemId>(catalog.size() - 1);
  sw.Restart();
  size_t contributors = 0;
  for (VertexId v = 0; v < run.num_vertices(); ++v) {
    auto fed = service->DataDependsOnModule(*id, last, v);
    if (fed.ok() && *fed) ++contributors;
  }
  std::printf("root cause: item #%u depends on %zu/%u executions "
              "(%.2f ms via labels)\n",
              last, contributors, run.num_vertices(), sw.ElapsedMillis());

  // (c) Item-to-item dependency spot checks, batched under one reader lock.
  const size_t sample = std::min<size_t>(catalog.size(), 200);
  std::vector<ItemPair> pairs;
  pairs.reserve(sample);
  for (DataItemId x = 0; x < sample; ++x) pairs.push_back({last, x});
  auto answers = service->DependsOnBatch(*id, pairs);
  if (!answers.ok()) return 1;
  size_t deps = 0;
  for (bool a : *answers) deps += a ? 1 : 0;
  std::printf("lineage: item #%u depends on %zu of the first %zu items\n",
              last, deps, sample);

  // (d) Networked serving rehearsal (docs/NETWORK.md): the same audits,
  // answered over the wire protocol instead of in-process — the posture a
  // second analyst's tooling would use against a shared registry. The
  // service moves into a loopback ProvenanceServer; a ProvenanceClient
  // re-asks (a) and (c) and every answer must match.
  ProvenanceServer::Options net_opt;
  net_opt.num_threads = 2;
  auto server =
      ProvenanceServer::Start(std::move(service).value(), net_opt);
  if (!server.ok()) {
    std::fprintf(stderr, "%s\n", server.status().ToString().c_str());
    return 1;
  }
  auto client = ProvenanceClient::Connect("127.0.0.1", (*server)->port());
  if (!client.ok()) {
    std::fprintf(stderr, "%s\n", client.status().ToString().c_str());
    return 1;
  }
  sw.Restart();
  size_t remote_affected = 0;
  for (DataItemId x = 0; x < catalog.size(); ++x) {
    auto dep = client->DataDependsOnModule(*id, x, faulty);
    if (dep.ok() && *dep) ++remote_affected;
  }
  auto remote_answers = client->DependsOnBatch(*id, pairs);
  if (!remote_answers.ok()) {
    std::fprintf(stderr, "%s\n", remote_answers.status().ToString().c_str());
    return 1;
  }
  size_t remote_deps = 0;
  for (bool a : *remote_answers) remote_deps += a ? 1 : 0;
  const double remote_ms = sw.ElapsedMillis();
  const size_t remote_queries = catalog.size() + pairs.size();
  auto counters = client->GetServiceStats();
  if (!counters.ok()) return 1;
  std::printf("networked: %zu remote queries in %.2f ms over loopback "
              "(%.0f queries/s); server has answered %llu item-level "
              "queries total\n",
              remote_queries, remote_ms,
              remote_ms > 0 ? remote_queries / (remote_ms / 1e3) : 0.0,
              static_cast<unsigned long long>(
                  counters->depends_on_queries +
                  counters->module_data_queries +
                  counters->data_module_queries));
  Status down = client->Shutdown();
  (*server)->Wait();
  if (!down.ok() || remote_affected != affected || remote_deps != deps) {
    std::fprintf(stderr,
                 "networked audit diverged: affected %zu vs %zu, lineage "
                 "%zu vs %zu, shutdown %s\n",
                 remote_affected, affected, remote_deps, deps,
                 down.ToString().c_str());
    return 1;
  }
  return 0;
}
