// sklctl: command-line front end over the XML formats.
//
//   sklctl demo-spec > spec.xml          write the running-example spec
//   sklctl demo-run spec.xml > run.xml   simulate a run of a spec
//   sklctl validate spec.xml run.xml     conformance-check a run
//   sklctl label spec.xml run.xml        label and answer stdin queries
//                                        ("<from-id> <to-id>" per line)
//   sklctl stats spec.xml run.xml        print plan/label statistics
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "src/core/plan_builder.h"
#include "src/core/skeleton_labeler.h"
#include "src/io/workflow_xml.h"
#include "src/workload/real_workflows.h"
#include "src/workload/run_generator.h"

using namespace skl;  // NOLINT: example brevity

namespace {

int Fail(const Status& st) {
  std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
  return 1;
}

Result<std::string> ReadFile(const char* path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound(std::string("cannot open ") + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

Result<Specification> LoadSpec(const char* path) {
  SKL_ASSIGN_OR_RETURN(std::string xml, ReadFile(path));
  return ReadSpecificationXml(xml);
}

Result<Run> LoadRun(const char* path) {
  SKL_ASSIGN_OR_RETURN(std::string xml, ReadFile(path));
  return ReadRunXml(xml);
}

int Usage() {
  std::fprintf(stderr,
               "usage: sklctl demo-spec\n"
               "       sklctl demo-run <spec.xml> [target_size] [seed]\n"
               "       sklctl validate <spec.xml> <run.xml>\n"
               "       sklctl label <spec.xml> <run.xml>\n"
               "       sklctl stats <spec.xml> <run.xml>\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string cmd = argv[1];

  if (cmd == "demo-spec") {
    auto spec = BuildRunningExampleSpec();
    if (!spec.ok()) return Fail(spec.status());
    std::fputs(WriteSpecificationXml(*spec).c_str(), stdout);
    return 0;
  }

  if (cmd == "demo-run") {
    if (argc < 3) return Usage();
    auto spec = LoadSpec(argv[2]);
    if (!spec.ok()) return Fail(spec.status());
    RunGenerator generator(&spec.value());
    RunGenOptions opt;
    opt.target_vertices =
        argc > 3 ? static_cast<uint32_t>(std::strtoul(argv[3], nullptr, 10))
                 : 100;
    opt.seed = argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 1;
    auto gen = generator.Generate(opt);
    if (!gen.ok()) return Fail(gen.status());
    std::fputs(WriteRunXml(gen->run).c_str(), stdout);
    return 0;
  }

  if (cmd == "validate" || cmd == "label" || cmd == "stats") {
    if (argc < 4) return Usage();
    auto spec = LoadSpec(argv[2]);
    if (!spec.ok()) return Fail(spec.status());
    auto run = LoadRun(argv[3]);
    if (!run.ok()) return Fail(run.status());

    auto recovered = ConstructPlan(*spec, *run);
    if (cmd == "validate") {
      if (!recovered.ok()) {
        std::printf("NOT CONFORMING: %s\n",
                    recovered.status().ToString().c_str());
        return 1;
      }
      std::printf("OK: run conforms to the specification\n");
      return 0;
    }
    if (!recovered.ok()) return Fail(recovered.status());

    SkeletonLabeler labeler(&spec.value(), SpecSchemeKind::kTcm);
    if (Status st = labeler.Init(); !st.ok()) return Fail(st);
    auto labeling = labeler.LabelRunWithPlan(*run, recovered->plan,
                                             recovered->origin);
    if (!labeling.ok()) return Fail(labeling.status());

    if (cmd == "stats") {
      std::printf("run vertices:        %u\n", run->num_vertices());
      std::printf("run edges:           %zu\n", run->num_edges());
      std::printf("plan nodes:          %zu\n", recovered->plan.num_nodes());
      std::printf("nonempty + nodes:    %u\n",
                  labeling->num_nonempty_plus());
      std::printf("bits per label:      %u (3x%u context + %u origin)\n",
                  labeling->label_bits(), labeling->context_bits() / 3,
                  labeling->origin_bits());
      return 0;
    }
    // label: answer "<from> <to>" queries from stdin.
    std::string line;
    while (std::getline(std::cin, line)) {
      if (line.empty() || line[0] == '#') continue;
      std::istringstream iss(line);
      VertexId u, v;
      if (!(iss >> u >> v) || u >= run->num_vertices() ||
          v >= run->num_vertices()) {
        std::printf("? bad query: %s\n", line.c_str());
        continue;
      }
      std::printf("%u -> %u : %s\n", u, v,
                  labeling->Reaches(u, v) ? "reachable" : "unreachable");
    }
    return 0;
  }
  return Usage();
}
