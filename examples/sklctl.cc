// sklctl: command-line front end over the XML formats, built on the
// service-level API (skl::ProvenanceService).
//
//   sklctl demo-spec > spec.xml          write the running-example spec
//   sklctl demo-run spec.xml > run.xml   simulate a run of a spec
//   sklctl validate spec.xml run.xml     conformance-check a run
//   sklctl label spec.xml run.xml        label and answer stdin queries
//                                        ("<from-id> <to-id>" per line)
//   sklctl stats spec.xml run.xml        print plan/label statistics
//
// label/stats accept --scheme=tcm|bfs|dfs|interval|tree-cover|chain|2hop
// to pick the skeleton labeling scheme (default tcm).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "src/skl.h"
#include "src/workload/real_workflows.h"
#include "src/workload/run_generator.h"

using namespace skl;  // NOLINT: example brevity

namespace {

int Fail(const Status& st) {
  std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
  return 1;
}

Result<std::string> ReadFile(const char* path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound(std::string("cannot open ") + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

Result<Specification> LoadSpec(const char* path) {
  SKL_ASSIGN_OR_RETURN(std::string xml, ReadFile(path));
  return ReadSpecificationXml(xml);
}

Result<Run> LoadRun(const char* path) {
  SKL_ASSIGN_OR_RETURN(std::string xml, ReadFile(path));
  return ReadRunXml(xml);
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: sklctl demo-spec\n"
      "       sklctl demo-run <spec.xml> [target_size] [seed]\n"
      "       sklctl validate <spec.xml> <run.xml>\n"
      "       sklctl label [--scheme=<name>] <spec.xml> <run.xml>\n"
      "       sklctl stats [--scheme=<name>] <spec.xml> <run.xml>\n"
      "scheme names: tcm (default), bfs, dfs, interval, tree-cover, "
      "chain, 2hop\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  // Split argv into the command, --scheme, and positional arguments.
  std::string cmd;
  SpecSchemeKind scheme_kind = SpecSchemeKind::kTcm;
  std::vector<const char*> args;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--scheme=", 9) == 0) {
      auto parsed = ParseSpecSchemeKind(argv[i] + 9);
      if (!parsed.ok()) return Fail(parsed.status());
      scheme_kind = *parsed;
    } else if (std::strncmp(argv[i], "--", 2) == 0) {
      std::fprintf(stderr, "error: unknown option '%s'\n", argv[i]);
      return Usage();
    } else if (cmd.empty()) {
      cmd = argv[i];
    } else {
      args.push_back(argv[i]);
    }
  }
  if (cmd.empty()) return Usage();

  if (cmd == "demo-spec") {
    auto spec = BuildRunningExampleSpec();
    if (!spec.ok()) return Fail(spec.status());
    std::fputs(WriteSpecificationXml(*spec).c_str(), stdout);
    return 0;
  }

  if (cmd == "demo-run") {
    if (args.empty()) return Usage();
    auto spec = LoadSpec(args[0]);
    if (!spec.ok()) return Fail(spec.status());
    RunGenerator generator(&spec.value());
    RunGenOptions opt;
    opt.target_vertices =
        args.size() > 1
            ? static_cast<uint32_t>(std::strtoul(args[1], nullptr, 10))
            : 100;
    opt.seed = args.size() > 2 ? std::strtoull(args[2], nullptr, 10) : 1;
    auto gen = generator.Generate(opt);
    if (!gen.ok()) return Fail(gen.status());
    std::fputs(WriteRunXml(gen->run).c_str(), stdout);
    return 0;
  }

  if (cmd == "validate" || cmd == "label" || cmd == "stats") {
    if (args.size() < 2) return Usage();
    auto spec = LoadSpec(args[0]);
    if (!spec.ok()) return Fail(spec.status());
    auto run = LoadRun(args[1]);
    if (!run.ok()) return Fail(run.status());

    auto recovered = ConstructPlan(*spec, *run);
    if (cmd == "validate") {
      if (!recovered.ok()) {
        std::printf("NOT CONFORMING: %s\n",
                    recovered.status().ToString().c_str());
        return 1;
      }
      std::printf("OK: run conforms to the specification\n");
      return 0;
    }
    if (!recovered.ok()) return Fail(recovered.status());
    const size_t plan_nodes = recovered->plan.num_nodes();

    auto service =
        ProvenanceService::Create(std::move(spec).value(), scheme_kind);
    if (!service.ok()) return Fail(service.status());
    auto id = service->AddRunWithPlan(*run, recovered->plan,
                                      std::move(recovered->origin));
    if (!id.ok()) return Fail(id.status());

    if (cmd == "stats") {
      auto stats = service->Stats(*id);
      if (!stats.ok()) return Fail(stats.status());
      std::printf("scheme:              %s\n",
                  SpecSchemeKindName(scheme_kind));
      std::printf("run vertices:        %u\n", run->num_vertices());
      std::printf("run edges:           %zu\n", run->num_edges());
      std::printf("plan nodes:          %zu\n", plan_nodes);
      std::printf("nonempty + nodes:    %u\n", stats->num_nonempty_plus);
      std::printf("bits per label:      %u (3x%u context + %u origin)\n",
                  stats->label_bits, stats->context_bits / 3,
                  stats->origin_bits);
      return 0;
    }
    // label: answer "<from> <to>" queries from stdin.
    std::string line;
    while (std::getline(std::cin, line)) {
      if (line.empty() || line[0] == '#') continue;
      std::istringstream iss(line);
      VertexId u, v;
      if (!(iss >> u >> v) || u >= run->num_vertices() ||
          v >= run->num_vertices()) {
        std::printf("? bad query: %s\n", line.c_str());
        continue;
      }
      auto reach = service->Reaches(*id, u, v);
      if (!reach.ok()) return Fail(reach.status());
      std::printf("%u -> %u : %s\n", u, v,
                  *reach ? "reachable" : "unreachable");
    }
    return 0;
  }
  return Usage();
}
