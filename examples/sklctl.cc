// sklctl: command-line front end over the XML formats, built on the
// service-level API (skl::ProvenanceService).
//
//   sklctl demo-spec > spec.xml          write the running-example spec
//   sklctl demo-run spec.xml > run.xml   simulate a run of a spec
//   sklctl validate spec.xml run.xml     conformance-check a run
//   sklctl label spec.xml run.xml        label and answer stdin queries
//                                        ("<from-id> <to-id>" per line)
//   sklctl stats spec.xml run.xml        print plan/label statistics
//   sklctl ingest-dir spec.xml runs/     bulk-ingest every run XML in a
//                                        directory on a thread pool
//   sklctl save spec.xml runs/ out.skls  ingest a directory and save the
//                                        whole service as a snapshot
//   sklctl load out.skls                 restore a snapshot and answer
//                                        stdin queries ("<run-id> <u> <v>")
//
// Network serving (docs/NETWORK.md):
//
//   sklctl serve spec.xml [runs/]        serve a (optionally pre-ingested)
//                                        service over TCP; --port=0 picks an
//                                        ephemeral port, printed on stdout
//   sklctl reaches   --connect=H:P <run-id> <u> <v>   remote reachability
//   sklctl stats     --connect=H:P [run-id]           service counters /
//                                                     one run's stats
//   sklctl add-run   --connect=H:P run.xml            remote ingestion
//   sklctl list-runs --connect=H:P                    remote registry
//   sklctl shutdown  --connect=H:P                    graceful server drain
//   sklctl save      --connect=H:P out.skls           server-side snapshot
//
// Observability (docs/OBSERVABILITY.md):
//
//   sklctl serve --slow-query-threshold-us=N ...
//       record any request slower than N microseconds (queue + execute) in
//       the server's bounded slow-query ring buffer
//   sklctl metrics --connect=H:P
//       scrape the server's metrics in Prometheus text exposition format
//   sklctl slow-queries --connect=H:P
//       dump the slow-query ring buffer (trace id, opcode, run, shard,
//       queue/execute breakdown), oldest first
//   sklctl stats --connect=H:P --json
//       the service counters as one JSON object (stable keys = the
//       ServiceStats field names)
//   Every remote subcommand accepts --trace-id=N: the 64-bit token stamped
//   on each request it sends, echoed in the server's slow-query log and
//   error replies.
//
// Replication (docs/REPLICATION.md):
//
//   sklctl serve --oplog=ops.log spec.xml [runs/]
//       serve with a durable op-log attached: every mutation is logged
//       before it is acked, and if ops.log already exists the service is
//       first rebuilt from it (crash recovery) — the spec.xml argument is
//       then checked against the log's recorded specification
//   sklctl replicate --connect=H:P [--listen=H:P]
//       start a read replica of the primary at --connect: bootstraps from
//       a snapshot, serves reads (ships with LSN read-your-writes tokens),
//       tails the primary's op stream until shut down
//
// The remote stats subcommand prints the server's replication LSN and lag
// (how far a replica trails the primary it tails; 0 on a primary).
//
// label/stats/ingest-dir/save/serve accept
// --scheme=tcm|bfs|dfs|interval|tree-cover|chain|2hop to pick the skeleton
// labeling scheme (default tcm); ingest-dir, save, load and serve accept
// --threads=N (0 = one per hardware thread), --shards=N (registry lock
// stripes, rounded up to a power of two) and ingest-dir --fail-fast
// (all-or-nothing batch). load rejects --scheme: the scheme identity is
// part of the snapshot. The remote stats subcommand also prints the
// server's result-cache hit rate.
#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "src/common/stopwatch.h"
#include "src/skl.h"
#include "src/workload/real_workflows.h"
#include "src/workload/run_generator.h"

using namespace skl;  // NOLINT: example brevity

namespace {

int Fail(const Status& st) {
  std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
  return 1;
}

Result<std::string> ReadFile(const char* path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound(std::string("cannot open ") + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

Result<Specification> LoadSpec(const char* path) {
  SKL_ASSIGN_OR_RETURN(std::string xml, ReadFile(path));
  return ReadSpecificationXml(xml);
}

Result<Run> LoadRun(const char* path) {
  SKL_ASSIGN_OR_RETURN(std::string xml, ReadFile(path));
  return ReadRunXml(xml);
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: sklctl demo-spec\n"
      "       sklctl demo-run <spec.xml> [target_size] [seed]\n"
      "       sklctl validate <spec.xml> <run.xml>\n"
      "       sklctl label [--scheme=<name>] <spec.xml> <run.xml>\n"
      "       sklctl stats [--scheme=<name>] <spec.xml> <run.xml>\n"
      "       sklctl ingest-dir [--scheme=<name>] [--threads=<n>] "
      "[--shards=<n>]\n"
      "                         [--fail-fast] <spec.xml> <run-dir>\n"
      "       sklctl save [--scheme=<name>] [--threads=<n>] [--shards=<n>]\n"
      "                   <spec.xml> <run-dir> <out.snapshot>\n"
      "       sklctl load [--threads=<n>] [--shards=<n>] [--mmap] "
      "<snapshot>\n"
      "       sklctl serve [--scheme=<name>] [--threads=<n>] "
      "[--shards=<n>]\n"
      "                    [--num-io-threads=<n>] [--port=<p>] "
      "[--oplog=<path>]\n"
      "                    [--slow-query-threshold-us=<n>] [--mmap] "
      "<spec.xml> [run-dir]\n"
      "       sklctl replicate --connect=<host:port> "
      "[--listen=<host:port>]\n"
      "       sklctl reaches --connect=<host:port> <run-id> <from> <to>\n"
      "       sklctl stats --connect=<host:port> [--json] [run-id]\n"
      "       sklctl add-run --connect=<host:port> <run.xml>\n"
      "       sklctl list-runs --connect=<host:port>\n"
      "       sklctl shutdown --connect=<host:port>\n"
      "       sklctl save --connect=<host:port> <out.snapshot>\n"
      "       sklctl load-snapshot --connect=<host:port> "
      "<server-path.skls>\n"
      "       sklctl metrics --connect=<host:port>\n"
      "       sklctl slow-queries --connect=<host:port>\n"
      "       sklctl apply-delta --connect=<host:port> "
      "add-module <name> <from-csv> <to-csv>\n"
      "       sklctl apply-delta --connect=<host:port> "
      "remove-module <name>\n"
      "       sklctl apply-delta --connect=<host:port> "
      "add-edge <from> <to>\n"
      "       sklctl apply-delta --connect=<host:port> "
      "remove-edge <from> <to>\n"
      "         (module lists are comma-separated; \"-\" means empty)\n"
      "remote subcommands also accept --trace-id=<n> (slow-query log "
      "attribution)\n"
      "scheme names: tcm (default), bfs, dfs, interval, tree-cover, "
      "chain, 2hop\n");
  return 2;
}

/// Regular files in `dir`, sorted by name; the shared discovery step of
/// ingest-dir and save.
Result<std::vector<std::string>> ScanRunDir(const char* dir) {
  // error_code forms throughout: a stat failure mid-iteration (entry
  // deleted under us, unsearchable subpath) must report, not terminate.
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec), end;
  if (ec) {
    return Status::NotFound(std::string("cannot open directory ") + dir +
                            ": " + ec.message());
  }
  std::vector<std::string> paths;
  for (; it != end; it.increment(ec)) {
    std::error_code stat_ec;
    if (it->is_regular_file(stat_ec) && !stat_ec) {
      paths.push_back(it->path().string());
    }
  }
  if (ec) {  // a failed increment lands on `end` with ec set
    return Status::Internal(std::string("while scanning ") + dir + ": " +
                            ec.message());
  }
  std::sort(paths.begin(), paths.end());
  if (paths.empty()) {
    return Status::NotFound(std::string("no files in ") + dir);
  }
  return paths;
}

/// Bulk-ingests every regular file in `dir` (sorted by name, parsed as run
/// XML) through AddRunsParallel, reporting per-file outcomes + throughput.
int IngestDir(Specification spec, SpecSchemeKind scheme_kind,
              ProvenanceService::Options options, const char* dir) {
  auto scanned = ScanRunDir(dir);
  if (!scanned.ok()) return Fail(scanned.status());
  std::vector<std::string> paths = std::move(scanned).value();

  // Parse failures drop out of `runs`; the report loop below re-derives the
  // run-to-path mapping by skipping entries with a parse error.
  std::vector<Run> runs;
  std::vector<std::string> parse_errors(paths.size());
  for (size_t i = 0; i < paths.size(); ++i) {
    auto run = LoadRun(paths[i].c_str());
    if (!run.ok()) {
      parse_errors[i] = run.status().ToString();
      continue;
    }
    runs.push_back(std::move(run).value());
  }

  auto service =
      ProvenanceService::Create(std::move(spec), scheme_kind, options);
  if (!service.ok()) return Fail(service.status());

  Stopwatch sw;
  std::vector<Result<RunId>> ids = service->AddRunsParallel(runs);
  const double seconds = sw.ElapsedSeconds();

  size_t ok = 0;
  uint64_t vertices = 0;
  for (size_t i = 0, r = 0; i < paths.size(); ++i) {
    if (!parse_errors[i].empty()) {
      std::printf("%-40s PARSE ERROR: %s\n", paths[i].c_str(),
                  parse_errors[i].c_str());
      continue;
    }
    const Result<RunId>& id = ids[r];
    if (id.ok()) {
      auto stats = service->Stats(*id);
      std::printf("%-40s run %llu (%u vertices, %u-bit labels)\n",
                  paths[i].c_str(),
                  static_cast<unsigned long long>(id->value()),
                  stats.ok() ? stats->num_vertices : 0,
                  stats.ok() ? stats->label_bits : 0);
      ++ok;
      vertices += runs[r].num_vertices();
    } else {
      std::printf("%-40s FAILED: %s\n", paths[i].c_str(),
                  id.status().ToString().c_str());
    }
    ++r;
  }
  std::printf(
      "\ningested %zu/%zu runs (%llu vertices) in %.2f ms "
      "on %u threads: %.0f runs/s\n",
      ok, paths.size(), static_cast<unsigned long long>(vertices),
      seconds * 1e3, ThreadPool::Resolve(options.num_threads),
      seconds > 0 ? static_cast<double>(ok) / seconds : 0.0);
  return ok == paths.size() ? 0 : 1;
}

/// `sklctl save`: ingest every run XML in a directory, then persist the
/// whole service (spec + scheme identity + every labeled run) as one
/// snapshot file. Strict: a snapshot is a durability artifact, so any parse
/// or labeling failure aborts the save instead of dropping runs silently.
int Save(Specification spec, SpecSchemeKind scheme_kind,
         ProvenanceService::Options options, const char* dir,
         const char* out_path) {
  auto paths = ScanRunDir(dir);
  if (!paths.ok()) return Fail(paths.status());

  std::vector<Run> runs;
  runs.reserve(paths->size());
  for (const std::string& path : *paths) {
    auto run = LoadRun(path.c_str());
    if (!run.ok()) {
      std::fprintf(stderr, "error: %s: %s\n", path.c_str(),
                   run.status().ToString().c_str());
      return 1;
    }
    runs.push_back(std::move(run).value());
  }

  options.fail_fast = true;  // all-or-nothing, see above
  auto service =
      ProvenanceService::Create(std::move(spec), scheme_kind, options);
  if (!service.ok()) return Fail(service.status());

  Stopwatch sw;
  std::vector<Result<RunId>> ids = service->AddRunsParallel(runs);
  // Under fail-fast, siblings of the real failure report Cancelled; name
  // the run that actually failed, not the first casualty.
  size_t failed = ids.size();
  for (size_t i = 0; i < ids.size(); ++i) {
    if (ids[i].ok()) continue;
    if (ids[i].status().code() != StatusCode::kCancelled) {
      failed = i;
      break;
    }
    if (failed == ids.size()) failed = i;  // Cancelled-only fallback
  }
  if (failed != ids.size()) {
    std::fprintf(stderr, "error: %s: %s\n", (*paths)[failed].c_str(),
                 ids[failed].status().ToString().c_str());
    return 1;
  }
  const double ingest_secs = sw.ElapsedSeconds();

  sw.Restart();
  Status saved = service->SaveSnapshot(out_path);
  if (!saved.ok()) return Fail(saved);
  const double save_secs = sw.ElapsedSeconds();

  std::error_code ec;
  const auto bytes = std::filesystem::file_size(out_path, ec);
  std::printf(
      "saved %zu runs (scheme %s) to %s: %.2f ms ingest + %.2f ms save"
      ", %llu bytes\n",
      ids.size(), SpecSchemeKindName(scheme_kind), out_path,
      ingest_secs * 1e3, save_secs * 1e3,
      ec ? 0ULL : static_cast<unsigned long long>(bytes));
  return 0;
}

/// `sklctl load`: restore a snapshot, print what came back, and answer
/// "<run-id> <from> <to>" reachability queries from stdin. The scheme is
/// part of the snapshot; runtime knobs (threads) are not and pass through.
int Load(const char* path, ProvenanceService::Options options,
         bool use_mmap) {
  Stopwatch sw;
  auto service =
      ProvenanceService::LoadSnapshot(path, options, {.use_mmap = use_mmap});
  if (!service.ok()) return Fail(service.status());
  const double load_secs = sw.ElapsedSeconds();

  std::vector<RunId> ids = service->ListRuns();
  uint64_t vertices = 0;
  std::string run_lines;
  for (RunId id : ids) {
    auto stats = service->Stats(id);
    if (!stats.ok()) continue;
    vertices += stats->num_vertices;
    char line[128];
    std::snprintf(line, sizeof(line),
                  "  run %llu: %u vertices, %zu items, %u-bit labels%s\n",
                  static_cast<unsigned long long>(id.value()),
                  stats->num_vertices, stats->num_items, stats->label_bits,
                  stats->imported ? " (imported)" : "");
    run_lines += line;
  }
  // "via mmap" only when the runs actually view the mapping — a v1
  // snapshot or an SKL_NO_MMAP/mapping fallback reports "via copy" even
  // under --mmap, which is what the CI smoke legs assert.
  std::printf("restored %s in %.2f ms: scheme %s, %u spec modules, "
              "%zu runs, %llu run vertices via %s\n",
              path, load_secs * 1e3,
              std::string(service->scheme().name()).c_str(),
              service->spec().graph().num_vertices(), ids.size(),
              static_cast<unsigned long long>(vertices),
              service->loaded_via_mmap() ? "mmap" : "copy");
  std::fputs(run_lines.c_str(), stdout);

  std::string line;
  while (std::getline(std::cin, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream iss(line);
    uint64_t run_value;
    VertexId u, v;
    if (!(iss >> run_value >> u >> v)) {
      std::printf("? bad query: %s\n", line.c_str());
      continue;
    }
    auto reach = service->Reaches(RunId::FromValue(run_value), u, v);
    if (!reach.ok()) {
      std::printf("? %s\n", reach.status().ToString().c_str());
      continue;
    }
    std::printf("run %llu: %u -> %u : %s\n",
                static_cast<unsigned long long>(run_value), u, v,
                *reach ? "reachable" : "unreachable");
  }
  return 0;
}

/// `sklctl serve`: build a service over the spec (optionally pre-ingesting
/// every run XML in a directory, all-or-nothing), then serve it over TCP
/// until a remote shutdown frame drains it. The bound address is printed
/// first — the CI smoke job parses "serving on <addr>:<port>" to discover
/// an ephemeral port. With --oplog, every mutation is durably logged
/// before it is acked; an existing log is replayed first (crash recovery),
/// and its recorded scheme wins over --scheme.
int Serve(Specification spec, SpecSchemeKind scheme_kind,
          ProvenanceService::Options options, uint16_t port,
          unsigned num_io_threads, const std::string& oplog_path,
          bool mmap_snapshots, uint32_t slow_query_threshold_us,
          const char* dir) {
  std::unique_ptr<OpLog> oplog;
  std::optional<ProvenanceService> service;
  if (!oplog_path.empty() && std::filesystem::exists(oplog_path)) {
    auto recovered = RecoverPrimary(oplog_path, options);
    if (!recovered.ok()) return Fail(recovered.status());
    // The log's recorded specification is authoritative; a mismatched
    // spec.xml is a typo'd invocation, not a request to relabel. The
    // comparison is against the *creation* spec: replayed spec deltas may
    // have moved the head past it.
    if (WriteSpecificationXml(recovered->service.base_spec()) !=
        WriteSpecificationXml(spec)) {
      std::fprintf(stderr,
                   "error: %s was recorded against a different "
                   "specification than the given spec.xml\n",
                   oplog_path.c_str());
      return 1;
    }
    service = std::move(recovered->service);
    oplog = std::move(recovered->oplog);
    std::printf("recovered %zu runs from %s (lsn %llu)\n",
                service->num_runs(), oplog_path.c_str(),
                static_cast<unsigned long long>(oplog->last_lsn()));
  } else {
    auto created =
        ProvenanceService::Create(std::move(spec), scheme_kind, options);
    if (!created.ok()) return Fail(created.status());
    service = std::move(created).value();
    if (!oplog_path.empty()) {
      auto opened =
          OpLog::Open(oplog_path, WriteSpecificationXml(service->base_spec()),
                      SpecSchemeKindName(scheme_kind));
      if (!opened.ok()) return Fail(opened.status());
      oplog = std::move(opened).value();
      // Attach before pre-ingestion so directory runs are logged too.
      service->AttachOpLog(oplog.get());
    }
  }

  if (dir != nullptr) {
    auto paths = ScanRunDir(dir);
    if (!paths.ok()) return Fail(paths.status());
    std::vector<Run> runs;
    runs.reserve(paths->size());
    for (const std::string& path : *paths) {
      auto run = LoadRun(path.c_str());
      if (!run.ok()) {
        std::fprintf(stderr, "error: %s: %s\n", path.c_str(),
                     run.status().ToString().c_str());
        return 1;
      }
      runs.push_back(std::move(run).value());
    }
    std::vector<Result<RunId>> ids = service->AddRunsParallel(runs);
    for (size_t i = 0; i < ids.size(); ++i) {
      if (!ids[i].ok()) {
        std::fprintf(stderr, "error: %s: %s\n", (*paths)[i].c_str(),
                     ids[i].status().ToString().c_str());
        return 1;
      }
    }
  }

  ProvenanceServer::Options server_options;
  server_options.port = port;
  server_options.oplog = oplog.get();
  // --mmap: kLoadSnapshot swaps restore through the zero-copy path.
  server_options.mmap_snapshots = mmap_snapshots;
  // --slow-query-threshold-us: requests slower than this (queue + execute)
  // land in the slow-query ring buffer; 0 keeps the log disabled.
  server_options.slow_query_threshold_us = slow_query_threshold_us;
  // --threads sizes the connection-handler pool too; 0 keeps the server's
  // own default (8), which is a better serving concurrency than one-per-
  // core on small machines.
  if (options.num_threads != 0) {
    server_options.num_threads = options.num_threads;
  }
  // --num-io-threads sizes the epoll reactor (socket multiplexing); 0
  // keeps the server's default of one I/O thread, plenty below many
  // thousands of connections.
  if (num_io_threads != 0) {
    server_options.num_io_threads = num_io_threads;
  }
  auto server = ProvenanceServer::Start(std::move(*service), server_options);
  if (!server.ok()) return Fail(server.status());
  std::printf("serving on %s:%u (scheme %s, %zu runs)\n",
              (*server)->options().bind_address.c_str(), (*server)->port(),
              std::string((*server)->service().scheme().name()).c_str(),
              (*server)->service().num_runs());
  std::fflush(stdout);  // the port line must reach a redirected pipe now
  (*server)->Wait();
  std::printf("server drained, exiting\n");
  return 0;
}

/// `sklctl replicate`: a read replica of the primary at `connect`,
/// listening on `listen` ("host:port"; port 0 picks an ephemeral one).
/// Prints its bound address in the same greppable shape as serve, then
/// serves until a remote shutdown frame drains it.
int Replicate(const std::string& connect, const std::string& listen,
              ProvenanceService::Options service_options) {
  const size_t colon = connect.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 == connect.size()) {
    std::fprintf(stderr, "error: --connect expects <host:port>, got '%s'\n",
                 connect.c_str());
    return Usage();
  }
  const std::string primary_host = connect.substr(0, colon);
  char* end = nullptr;
  const unsigned long primary_port =
      std::strtoul(connect.c_str() + colon + 1, &end, 10);
  if (*end != '\0' || primary_port == 0 || primary_port > 65535) {
    std::fprintf(stderr, "error: --connect expects <host:port>, got '%s'\n",
                 connect.c_str());
    return Usage();
  }

  ReadReplica::Options options;
  options.service = service_options;
  if (!listen.empty()) {
    const size_t sep = listen.rfind(':');
    if (sep == std::string::npos || sep == 0 || sep + 1 == listen.size()) {
      std::fprintf(stderr, "error: --listen expects <host:port>, got '%s'\n",
                   listen.c_str());
      return Usage();
    }
    options.listen_address = listen.substr(0, sep);
    end = nullptr;
    const unsigned long port = std::strtoul(listen.c_str() + sep + 1, &end, 10);
    if (*end != '\0' || port > 65535) {
      std::fprintf(stderr, "error: --listen expects <host:port>, got '%s'\n",
                   listen.c_str());
      return Usage();
    }
    options.port = static_cast<uint16_t>(port);
  }
  if (service_options.num_threads != 0) {
    options.num_threads = service_options.num_threads;
  }

  auto replica = ReadReplica::Start(
      primary_host, static_cast<uint16_t>(primary_port), options);
  if (!replica.ok()) return Fail(replica.status());
  std::printf("replica serving on %s:%u (primary %s, lsn %llu)\n",
              options.listen_address.c_str(), (*replica)->port(),
              connect.c_str(),
              static_cast<unsigned long long>((*replica)->applied_lsn()));
  std::fflush(stdout);  // CI parses the port line from a redirected pipe
  (*replica)->server().Wait();
  (*replica)->Stop();
  std::printf("replica drained, exiting\n");
  return 0;
}

void PrintRunStatsLine(uint64_t id, const RunStats& stats) {
  std::printf("run %llu: %u vertices, %zu items, %u-bit labels%s\n",
              static_cast<unsigned long long>(id), stats.num_vertices,
              stats.num_items, stats.label_bits,
              stats.imported ? " (imported)" : "");
}

/// Remote `sklctl stats`: with a run-id argument, that run's stats; without,
/// the service-wide cumulative counters (the new ServiceStats RPC). With
/// `json`, the counters as one JSON object whose keys are exactly the
/// ServiceStats field names — the stable machine contract the CI smoke leg
/// parses.
int RemoteStats(ProvenanceClient& client, const std::vector<const char*>& args,
                bool json) {
  if (args.size() == 1) {
    if (json) {
      std::fprintf(stderr,
                   "error: --json prints the service-wide counters; a "
                   "run-id argument is not accepted\n");
      return Usage();
    }
    const uint64_t run = std::strtoull(args[0], nullptr, 10);
    auto stats = client.Stats(RunId::FromValue(run));
    if (!stats.ok()) return Fail(stats.status());
    PrintRunStatsLine(run, *stats);
    return 0;
  }
  auto stats = client.GetServiceStats();
  if (!stats.ok()) return Fail(stats.status());
  const auto u = [](uint64_t v) { return static_cast<unsigned long long>(v); };
  if (json) {
    std::printf(
        "{\"num_runs\": %llu, \"reaches_queries\": %llu, "
        "\"depends_on_queries\": %llu, \"module_data_queries\": %llu, "
        "\"data_module_queries\": %llu, \"batch_calls\": %llu, "
        "\"runs_ingested\": %llu, \"runs_imported\": %llu, "
        "\"runs_removed\": %llu, \"bulk_batches\": %llu, "
        "\"snapshot_saves\": %llu, \"cache_hits\": %llu, "
        "\"cache_misses\": %llu, \"replication_lsn\": %llu, "
        "\"replication_target_lsn\": %llu, \"connections_open\": %llu, "
        "\"connections_accepted\": %llu, \"connections_timed_out\": %llu, "
        "\"connections_backpressured\": %llu, \"epoll_wakeups\": %llu, "
        "\"accept_backoffs\": %llu, \"spec_epoch\": %llu}\n",
        u(stats->num_runs), u(stats->reaches_queries),
        u(stats->depends_on_queries), u(stats->module_data_queries),
        u(stats->data_module_queries), u(stats->batch_calls),
        u(stats->runs_ingested), u(stats->runs_imported),
        u(stats->runs_removed), u(stats->bulk_batches),
        u(stats->snapshot_saves), u(stats->cache_hits),
        u(stats->cache_misses), u(stats->replication_lsn),
        u(stats->replication_target_lsn), u(stats->connections_open),
        u(stats->connections_accepted), u(stats->connections_timed_out),
        u(stats->connections_backpressured), u(stats->epoll_wakeups),
        u(stats->accept_backoffs), u(stats->spec_epoch));
    return 0;
  }
  std::printf("runs registered:      %llu\n", u(stats->num_runs));
  std::printf("reaches queries:      %llu\n", u(stats->reaches_queries));
  std::printf("depends-on queries:   %llu\n", u(stats->depends_on_queries));
  std::printf("module<-data queries: %llu\n", u(stats->module_data_queries));
  std::printf("data<-module queries: %llu\n", u(stats->data_module_queries));
  std::printf("batch calls:          %llu\n", u(stats->batch_calls));
  std::printf("runs ingested:        %llu\n", u(stats->runs_ingested));
  std::printf("runs imported:        %llu\n", u(stats->runs_imported));
  std::printf("runs removed:         %llu\n", u(stats->runs_removed));
  std::printf("bulk batches:         %llu\n", u(stats->bulk_batches));
  std::printf("snapshot saves:       %llu\n", u(stats->snapshot_saves));
  std::printf("cache hits:           %llu\n", u(stats->cache_hits));
  std::printf("cache misses:         %llu\n", u(stats->cache_misses));
  const uint64_t lookups = stats->cache_hits + stats->cache_misses;
  if (lookups > 0) {
    std::printf("cache hit rate:       %.1f%%\n",
                100.0 * static_cast<double>(stats->cache_hits) /
                    static_cast<double>(lookups));
  } else {
    std::printf("cache hit rate:       n/a (no cached lookups)\n");
  }
  std::printf("replication lsn:      %llu\n", u(stats->replication_lsn));
  std::printf("replication lag:      %llu\n",
              u(stats->replication_target_lsn - stats->replication_lsn));
  std::printf("connections open:     %llu\n", u(stats->connections_open));
  std::printf("connections accepted: %llu\n",
              u(stats->connections_accepted));
  std::printf("conns timed out:      %llu\n",
              u(stats->connections_timed_out));
  std::printf("backpressure trips:   %llu\n",
              u(stats->connections_backpressured));
  std::printf("epoll wakeups:        %llu\n", u(stats->epoll_wakeups));
  std::printf("accept backoffs:      %llu\n", u(stats->accept_backoffs));
  std::printf("spec epoch:           %llu\n", u(stats->spec_epoch));
  return 0;
}

/// Parses a comma-separated module-name list; "-" means the empty list
/// (positional grammar needs an explicit empty marker).
std::vector<std::string> SplitModuleList(const char* csv) {
  std::vector<std::string> out;
  const std::string s(csv);
  if (s == "-") return out;
  size_t start = 0;
  while (start <= s.size()) {
    const size_t comma = s.find(',', start);
    if (comma == std::string::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

/// `sklctl apply-delta` argument grammar -> SpecDelta; arity/kind misuse
/// returns no value (the caller prints Usage and exits 2, before dialing).
std::optional<SpecDelta> ParseDeltaArgs(
    const std::vector<const char*>& args) {
  if (args.empty()) return std::nullopt;
  const std::string op = args[0];
  SpecDelta delta;
  if (op == "add-module") {
    if (args.size() != 4) return std::nullopt;
    delta.kind = SpecDelta::Kind::kAddModule;
    delta.module = args[1];
    delta.from = SplitModuleList(args[2]);
    delta.to = SplitModuleList(args[3]);
    return delta;
  }
  if (op == "remove-module") {
    if (args.size() != 2) return std::nullopt;
    delta.kind = SpecDelta::Kind::kRemoveModule;
    delta.module = args[1];
    return delta;
  }
  if (op == "add-edge" || op == "remove-edge") {
    if (args.size() != 3) return std::nullopt;
    delta.kind = op == "add-edge" ? SpecDelta::Kind::kAddEdge
                                  : SpecDelta::Kind::kRemoveEdge;
    delta.edge_from = args[1];
    delta.edge_to = args[2];
    return delta;
  }
  return std::nullopt;
}

}  // namespace

int main(int argc, char** argv) {
  // Split argv into the command, options, and positional arguments.
  std::string cmd;
  SpecSchemeKind scheme_kind = SpecSchemeKind::kTcm;
  bool scheme_given = false;
  unsigned num_threads = 0;
  unsigned num_io_threads = 0;
  unsigned num_shards = 0;
  bool shards_given = false;
  bool fail_fast = false;
  bool use_mmap = false;
  uint16_t port = 0;
  std::string connect;
  std::string oplog_path;
  std::string listen;
  uint64_t trace_id = 0;
  bool trace_id_given = false;
  bool json_output = false;
  uint32_t slow_query_threshold_us = 0;
  bool slow_threshold_given = false;
  std::vector<const char*> args;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--scheme=", 9) == 0) {
      auto parsed = ParseSpecSchemeKind(argv[i] + 9);
      if (!parsed.ok()) {  // malformed invocation: usage + exit 2
        std::fprintf(stderr, "error: %s\n",
                     parsed.status().ToString().c_str());
        return Usage();
      }
      scheme_kind = *parsed;
      scheme_given = true;
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      // Strict parse: reject non-numeric and absurd values up front — a
      // negative number wrapped through strtoul would ask the pool for
      // ~4 billion workers.
      const char* value = argv[i] + 10;
      char* end = nullptr;
      unsigned long parsed = std::strtoul(value, &end, 10);
      if (*value == '\0' || *end != '\0' || value[0] == '-' ||
          parsed > 1024) {
        std::fprintf(stderr,
                     "error: --threads expects an integer in [0, 1024], "
                     "got '%s'\n",
                     value);
        return Usage();
      }
      num_threads = static_cast<unsigned>(parsed);
    } else if (std::strncmp(argv[i], "--num-io-threads=", 17) == 0) {
      // Reactor thread count for serve; same strict-parse discipline, with
      // the server's own clamp as the bound.
      const char* value = argv[i] + 17;
      char* end = nullptr;
      unsigned long parsed = std::strtoul(value, &end, 10);
      if (*value == '\0' || *end != '\0' || value[0] == '-' || parsed < 1 ||
          parsed > 64) {
        std::fprintf(stderr,
                     "error: --num-io-threads expects an integer in "
                     "[1, 64], got '%s'\n",
                     value);
        return Usage();
      }
      num_io_threads = static_cast<unsigned>(parsed);
    } else if (std::strncmp(argv[i], "--shards=", 9) == 0) {
      // Same strict parse as --threads; the bound is the registry's own
      // clamp, so CLI and library can never drift.
      const char* value = argv[i] + 9;
      char* end = nullptr;
      unsigned long parsed = std::strtoul(value, &end, 10);
      if (*value == '\0' || *end != '\0' || value[0] == '-' || parsed < 1 ||
          parsed > RunRegistry::kMaxShards) {
        std::fprintf(stderr,
                     "error: --shards expects an integer in [1, %zu], "
                     "got '%s'\n",
                     RunRegistry::kMaxShards, value);
        return Usage();
      }
      num_shards = static_cast<unsigned>(parsed);
      shards_given = true;
    } else if (std::strncmp(argv[i], "--slow-query-threshold-us=", 26) == 0) {
      // Same strict parse as --threads; 0 means "disabled", so the usable
      // range is the option's full uint32 domain.
      const char* value = argv[i] + 26;
      char* end = nullptr;
      unsigned long long parsed = std::strtoull(value, &end, 10);
      if (*value == '\0' || *end != '\0' || value[0] == '-' ||
          parsed > UINT32_MAX) {
        std::fprintf(stderr,
                     "error: --slow-query-threshold-us expects an integer "
                     "in [0, %llu], got '%s'\n",
                     static_cast<unsigned long long>(UINT32_MAX), value);
        return Usage();
      }
      slow_query_threshold_us = static_cast<uint32_t>(parsed);
      slow_threshold_given = true;
    } else if (std::strncmp(argv[i], "--trace-id=", 11) == 0) {
      // The full uint64 domain is valid (clients pick random ids); only
      // the spelling is checked.
      const char* value = argv[i] + 11;
      char* end = nullptr;
      errno = 0;
      unsigned long long parsed = std::strtoull(value, &end, 10);
      if (*value == '\0' || *end != '\0' || value[0] == '-' || errno != 0) {
        std::fprintf(stderr,
                     "error: --trace-id expects an unsigned 64-bit "
                     "integer, got '%s'\n",
                     value);
        return Usage();
      }
      trace_id = parsed;
      trace_id_given = true;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json_output = true;
    } else if (std::strcmp(argv[i], "--fail-fast") == 0) {
      fail_fast = true;
    } else if (std::strcmp(argv[i], "--mmap") == 0) {
      use_mmap = true;
    } else if (std::strncmp(argv[i], "--port=", 7) == 0) {
      const char* value = argv[i] + 7;
      char* end = nullptr;
      unsigned long parsed = std::strtoul(value, &end, 10);
      if (*value == '\0' || *end != '\0' || value[0] == '-' ||
          parsed > 65535) {
        std::fprintf(stderr,
                     "error: --port expects an integer in [0, 65535], "
                     "got '%s'\n",
                     value);
        return Usage();
      }
      port = static_cast<uint16_t>(parsed);
    } else if (std::strncmp(argv[i], "--connect=", 10) == 0) {
      connect = argv[i] + 10;
      if (connect.empty()) {
        std::fprintf(stderr, "error: --connect expects <host:port>\n");
        return Usage();
      }
    } else if (std::strncmp(argv[i], "--oplog=", 8) == 0) {
      oplog_path = argv[i] + 8;
      if (oplog_path.empty()) {
        std::fprintf(stderr, "error: --oplog expects a file path\n");
        return Usage();
      }
    } else if (std::strncmp(argv[i], "--listen=", 9) == 0) {
      listen = argv[i] + 9;
      if (listen.empty()) {
        std::fprintf(stderr, "error: --listen expects <host:port>\n");
        return Usage();
      }
    } else if (std::strncmp(argv[i], "--", 2) == 0) {
      std::fprintf(stderr, "error: unknown option '%s'\n", argv[i]);
      return Usage();
    } else if (cmd.empty()) {
      cmd = argv[i];
    } else {
      args.push_back(argv[i]);
    }
  }
  if (cmd.empty()) return Usage();

  ProvenanceService::Options service_options;
  service_options.num_threads = num_threads;
  service_options.fail_fast = fail_fast;
  if (shards_given) service_options.num_shards = num_shards;

  // --connect routes a command to a remote server; only these speak it.
  const bool remote_capable = cmd == "reaches" || cmd == "stats" ||
                              cmd == "add-run" || cmd == "list-runs" ||
                              cmd == "shutdown" || cmd == "save" ||
                              cmd == "load-snapshot" || cmd == "replicate" ||
                              cmd == "metrics" || cmd == "slow-queries" ||
                              cmd == "apply-delta";
  if (!connect.empty() && !remote_capable) {
    std::fprintf(stderr,
                 "error: --connect is only accepted by reaches, stats, "
                 "add-run, list-runs, shutdown, save, load-snapshot, "
                 "metrics, slow-queries, apply-delta and replicate\n");
    return Usage();
  }
  if (trace_id_given && (connect.empty() || cmd == "replicate")) {
    std::fprintf(stderr,
                 "error: --trace-id is only accepted by the remote "
                 "subcommands (reaches, stats, add-run, list-runs, "
                 "shutdown, save, load-snapshot, metrics, slow-queries, "
                 "apply-delta)\n");
    return Usage();
  }
  if (json_output && cmd != "stats") {
    std::fprintf(stderr, "error: --json is only accepted by stats\n");
    return Usage();
  }
  if (json_output && connect.empty()) {
    std::fprintf(stderr,
                 "error: --json requires stats --connect=<host:port>\n");
    return Usage();
  }
  if (slow_threshold_given && cmd != "serve") {
    std::fprintf(stderr,
                 "error: --slow-query-threshold-us is only accepted by "
                 "serve\n");
    return Usage();
  }
  if (use_mmap && cmd != "load" && cmd != "serve") {
    std::fprintf(stderr, "error: --mmap is only accepted by load and serve\n");
    return Usage();
  }
  if (!oplog_path.empty() && cmd != "serve") {
    std::fprintf(stderr, "error: --oplog is only accepted by serve\n");
    return Usage();
  }
  if (num_io_threads != 0 && cmd != "serve") {
    std::fprintf(stderr,
                 "error: --num-io-threads is only accepted by serve\n");
    return Usage();
  }
  if (!listen.empty() && cmd != "replicate") {
    std::fprintf(stderr, "error: --listen is only accepted by replicate\n");
    return Usage();
  }

  if (cmd == "serve") {
    if (args.empty() || args.size() > 2) return Usage();
    if (fail_fast) {
      std::fprintf(stderr,
                   "error: serve pre-ingestion is always all-or-nothing; "
                   "--fail-fast is not accepted\n");
      return Usage();
    }
    auto spec = LoadSpec(args[0]);
    if (!spec.ok()) return Fail(spec.status());
    return Serve(std::move(spec).value(), scheme_kind, service_options, port,
                 num_io_threads, oplog_path, use_mmap,
                 slow_query_threshold_us,
                 args.size() > 1 ? args[1] : nullptr);
  }

  if (cmd == "replicate") {
    if (!args.empty()) return Usage();
    if (connect.empty()) {
      std::fprintf(stderr,
                   "error: replicate requires --connect=<host:port>\n");
      return Usage();
    }
    if (scheme_given || fail_fast) {
      std::fprintf(stderr,
                   "error: a replica mirrors the primary's scheme and "
                   "performs no ingestion; --scheme/--fail-fast are not "
                   "accepted\n");
      return Usage();
    }
    return Replicate(connect, listen, service_options);
  }

  if (cmd == "reaches" || cmd == "add-run" || cmd == "list-runs" ||
      cmd == "shutdown" || cmd == "load-snapshot" || cmd == "metrics" ||
      cmd == "slow-queries" || cmd == "apply-delta" ||
      (cmd == "stats" && !connect.empty()) ||
      (cmd == "save" && !connect.empty())) {
    if (connect.empty()) {
      std::fprintf(stderr, "error: %s requires --connect=<host:port>\n",
                   cmd.c_str());
      return Usage();
    }
    // Arity before dialing: misuse must exit 2 even when nothing listens.
    if ((cmd == "metrics" || cmd == "slow-queries") && !args.empty()) {
      std::fprintf(stderr, "error: %s takes no positional arguments\n",
                   cmd.c_str());
      return Usage();
    }
    std::optional<SpecDelta> delta;
    if (cmd == "apply-delta") {
      delta = ParseDeltaArgs(args);
      if (!delta.has_value()) {
        std::fprintf(stderr,
                     "error: apply-delta takes add-module <name> <from-csv> "
                     "<to-csv>, remove-module <name>, add-edge <from> <to> "
                     "or remove-edge <from> <to>\n");
        return Usage();
      }
    }
    auto client = ProvenanceClient::ConnectHostPort(connect);
    if (!client.ok()) return Fail(client.status());
    client->set_trace_id(trace_id);

    if (cmd == "apply-delta") {
      auto epoch = client->ApplySpecDelta(*delta);
      if (!epoch.ok()) return Fail(epoch.status());
      std::printf("spec epoch %llu\n",
                  static_cast<unsigned long long>(*epoch));
      return 0;
    }
    if (cmd == "metrics") {
      auto text = client->GetMetrics();
      if (!text.ok()) return Fail(text.status());
      std::fputs(text->c_str(), stdout);
      return 0;
    }
    if (cmd == "slow-queries") {
      auto entries = client->SlowQueries();
      if (!entries.ok()) return Fail(entries.status());
      for (const SlowQueryEntry& e : *entries) {
        std::printf(
            "trace %llu op %s run %llu shard %llu: queue %llu us + "
            "exec %llu us = %llu us\n",
            static_cast<unsigned long long>(e.trace_id),
            MsgTypeName(static_cast<MsgType>(e.opcode)),
            static_cast<unsigned long long>(e.run_id),
            static_cast<unsigned long long>(e.shard),
            static_cast<unsigned long long>(e.queue_us),
            static_cast<unsigned long long>(e.exec_us),
            static_cast<unsigned long long>(e.queue_us + e.exec_us));
      }
      std::printf("%zu slow queries\n", entries->size());
      return 0;
    }
    if (cmd == "reaches") {
      if (args.size() != 3) return Usage();
      const uint64_t run = std::strtoull(args[0], nullptr, 10);
      const VertexId u =
          static_cast<VertexId>(std::strtoul(args[1], nullptr, 10));
      const VertexId v =
          static_cast<VertexId>(std::strtoul(args[2], nullptr, 10));
      auto reach = client->Reaches(RunId::FromValue(run), u, v);
      if (!reach.ok()) return Fail(reach.status());
      std::printf("run %llu: %u -> %u : %s\n",
                  static_cast<unsigned long long>(run), u, v,
                  *reach ? "reachable" : "unreachable");
      return 0;
    }
    if (cmd == "stats") {
      if (args.size() > 1) return Usage();
      return RemoteStats(*client, args, json_output);
    }
    if (cmd == "add-run") {
      if (args.size() != 1) return Usage();
      auto xml = ReadFile(args[0]);
      if (!xml.ok()) return Fail(xml.status());
      auto id = client->AddRunXml(*xml);
      if (!id.ok()) return Fail(id.status());
      auto stats = client->Stats(*id);
      if (!stats.ok()) return Fail(stats.status());
      PrintRunStatsLine(id->value(), *stats);
      return 0;
    }
    if (cmd == "list-runs") {
      if (!args.empty()) return Usage();
      auto ids = client->ListRuns();
      if (!ids.ok()) return Fail(ids.status());
      for (RunId id : *ids) {
        auto stats = client->Stats(id);
        if (!stats.ok()) return Fail(stats.status());
        PrintRunStatsLine(id.value(), *stats);
      }
      std::printf("%zu runs\n", ids->size());
      return 0;
    }
    if (cmd == "save") {
      if (args.size() != 1) return Usage();
      Status saved = client->SaveSnapshot(args[0]);
      if (!saved.ok()) return Fail(saved);
      std::printf("server saved snapshot to %s\n", args[0]);
      return 0;
    }
    if (cmd == "load-snapshot") {
      // Server-side swap: the path names a snapshot on the *server's*
      // filesystem; whether it restores via mmap is the server's
      // --mmap/mmap_snapshots setting, not a client choice.
      if (args.size() != 1) return Usage();
      Status swapped = client->LoadSnapshot(args[0]);
      if (!swapped.ok()) return Fail(swapped);
      std::printf("server loaded snapshot %s\n", args[0]);
      return 0;
    }
    // shutdown
    if (!args.empty()) return Usage();
    Status down = client->Shutdown();
    if (!down.ok()) return Fail(down);
    std::printf("server acknowledged shutdown\n");
    return 0;
  }

  if (cmd == "demo-spec") {
    if (!args.empty()) {
      std::fprintf(stderr, "error: demo-spec takes no arguments\n");
      return Usage();
    }
    auto spec = BuildRunningExampleSpec();
    if (!spec.ok()) return Fail(spec.status());
    std::fputs(WriteSpecificationXml(*spec).c_str(), stdout);
    return 0;
  }

  if (cmd == "demo-run") {
    if (args.empty() || args.size() > 3) return Usage();
    auto spec = LoadSpec(args[0]);
    if (!spec.ok()) return Fail(spec.status());
    RunGenerator generator(&spec.value());
    RunGenOptions opt;
    opt.target_vertices =
        args.size() > 1
            ? static_cast<uint32_t>(std::strtoul(args[1], nullptr, 10))
            : 100;
    opt.seed = args.size() > 2 ? std::strtoull(args[2], nullptr, 10) : 1;
    auto gen = generator.Generate(opt);
    if (!gen.ok()) return Fail(gen.status());
    std::fputs(WriteRunXml(gen->run).c_str(), stdout);
    return 0;
  }

  if (cmd == "ingest-dir") {
    if (args.size() != 2) return Usage();
    auto spec = LoadSpec(args[0]);
    if (!spec.ok()) return Fail(spec.status());
    return IngestDir(std::move(spec).value(), scheme_kind, service_options,
                     args[1]);
  }

  if (cmd == "save") {
    if (args.size() != 3) return Usage();
    if (fail_fast) {
      std::fprintf(stderr,
                   "error: save is always all-or-nothing; --fail-fast is "
                   "not accepted\n");
      return Usage();
    }
    auto spec = LoadSpec(args[0]);
    if (!spec.ok()) return Fail(spec.status());
    return Save(std::move(spec).value(), scheme_kind, service_options,
                args[1], args[2]);
  }

  if (cmd == "load") {
    if (args.size() != 1) return Usage();
    if (scheme_given) {
      std::fprintf(stderr,
                   "error: load restores the scheme stored in the snapshot; "
                   "--scheme is not accepted\n");
      return Usage();
    }
    if (fail_fast) {
      std::fprintf(stderr,
                   "error: load performs no bulk ingestion; --fail-fast is "
                   "not accepted\n");
      return Usage();
    }
    return Load(args[0], service_options, use_mmap);
  }

  if (cmd == "validate" || cmd == "label" || cmd == "stats") {
    if (args.size() != 2) return Usage();
    auto spec = LoadSpec(args[0]);
    if (!spec.ok()) return Fail(spec.status());
    auto run = LoadRun(args[1]);
    if (!run.ok()) return Fail(run.status());

    auto recovered = ConstructPlan(*spec, *run);
    if (cmd == "validate") {
      if (!recovered.ok()) {
        std::printf("NOT CONFORMING: %s\n",
                    recovered.status().ToString().c_str());
        return 1;
      }
      std::printf("OK: run conforms to the specification\n");
      return 0;
    }
    if (!recovered.ok()) return Fail(recovered.status());
    const size_t plan_nodes = recovered->plan.num_nodes();

    auto service = ProvenanceService::Create(std::move(spec).value(),
                                             scheme_kind, service_options);
    if (!service.ok()) return Fail(service.status());
    auto id = service->AddRunWithPlan(*run, recovered->plan,
                                      std::move(recovered->origin));
    if (!id.ok()) return Fail(id.status());

    if (cmd == "stats") {
      auto stats = service->Stats(*id);
      if (!stats.ok()) return Fail(stats.status());
      std::printf("scheme:              %s\n",
                  SpecSchemeKindName(scheme_kind));
      std::printf("run vertices:        %u\n", run->num_vertices());
      std::printf("run edges:           %zu\n", run->num_edges());
      std::printf("plan nodes:          %zu\n", plan_nodes);
      std::printf("nonempty + nodes:    %u\n", stats->num_nonempty_plus);
      std::printf("bits per label:      %u (3x%u context + %u origin)\n",
                  stats->label_bits, stats->context_bits / 3,
                  stats->origin_bits);
      return 0;
    }
    // label: answer "<from> <to>" queries from stdin.
    std::string line;
    while (std::getline(std::cin, line)) {
      if (line.empty() || line[0] == '#') continue;
      std::istringstream iss(line);
      VertexId u, v;
      if (!(iss >> u >> v) || u >= run->num_vertices() ||
          v >= run->num_vertices()) {
        std::printf("? bad query: %s\n", line.c_str());
        continue;
      }
      auto reach = service->Reaches(*id, u, v);
      if (!reach.ok()) return Fail(reach.status());
      std::printf("%u -> %u : %s\n", u, v,
                  *reach ? "reachable" : "unreachable");
    }
    return 0;
  }
  std::fprintf(stderr, "error: unknown subcommand '%s'\n", cmd.c_str());
  return Usage();
}
