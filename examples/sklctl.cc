// sklctl: command-line front end over the XML formats, built on the
// service-level API (skl::ProvenanceService).
//
//   sklctl demo-spec > spec.xml          write the running-example spec
//   sklctl demo-run spec.xml > run.xml   simulate a run of a spec
//   sklctl validate spec.xml run.xml     conformance-check a run
//   sklctl label spec.xml run.xml        label and answer stdin queries
//                                        ("<from-id> <to-id>" per line)
//   sklctl stats spec.xml run.xml        print plan/label statistics
//   sklctl ingest-dir spec.xml runs/     bulk-ingest every run XML in a
//                                        directory on a thread pool
//
// label/stats/ingest-dir accept
// --scheme=tcm|bfs|dfs|interval|tree-cover|chain|2hop to pick the skeleton
// labeling scheme (default tcm); ingest-dir additionally accepts
// --threads=N (0 = one per hardware thread) and --fail-fast (all-or-nothing
// batch).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "src/common/stopwatch.h"
#include "src/skl.h"
#include "src/workload/real_workflows.h"
#include "src/workload/run_generator.h"

using namespace skl;  // NOLINT: example brevity

namespace {

int Fail(const Status& st) {
  std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
  return 1;
}

Result<std::string> ReadFile(const char* path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound(std::string("cannot open ") + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

Result<Specification> LoadSpec(const char* path) {
  SKL_ASSIGN_OR_RETURN(std::string xml, ReadFile(path));
  return ReadSpecificationXml(xml);
}

Result<Run> LoadRun(const char* path) {
  SKL_ASSIGN_OR_RETURN(std::string xml, ReadFile(path));
  return ReadRunXml(xml);
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: sklctl demo-spec\n"
      "       sklctl demo-run <spec.xml> [target_size] [seed]\n"
      "       sklctl validate <spec.xml> <run.xml>\n"
      "       sklctl label [--scheme=<name>] <spec.xml> <run.xml>\n"
      "       sklctl stats [--scheme=<name>] <spec.xml> <run.xml>\n"
      "       sklctl ingest-dir [--scheme=<name>] [--threads=<n>] "
      "[--fail-fast]\n"
      "                         <spec.xml> <run-dir>\n"
      "scheme names: tcm (default), bfs, dfs, interval, tree-cover, "
      "chain, 2hop\n");
  return 2;
}

/// Bulk-ingests every regular file in `dir` (sorted by name, parsed as run
/// XML) through AddRunsParallel, reporting per-file outcomes + throughput.
int IngestDir(Specification spec, SpecSchemeKind scheme_kind,
              unsigned num_threads, bool fail_fast, const char* dir) {
  // error_code forms throughout: a stat failure mid-iteration (entry
  // deleted under us, unsearchable subpath) must report, not terminate.
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec), end;
  if (ec) {
    std::fprintf(stderr, "error: cannot open directory %s: %s\n", dir,
                 ec.message().c_str());
    return 1;
  }
  std::vector<std::string> paths;
  for (; it != end; it.increment(ec)) {
    std::error_code stat_ec;
    if (it->is_regular_file(stat_ec) && !stat_ec) {
      paths.push_back(it->path().string());
    }
  }
  if (ec) {  // a failed increment lands on `end` with ec set
    std::fprintf(stderr, "error: while scanning %s: %s\n", dir,
                 ec.message().c_str());
    return 1;
  }
  std::sort(paths.begin(), paths.end());
  if (paths.empty()) {
    std::fprintf(stderr, "error: no files in %s\n", dir);
    return 1;
  }

  // Parse failures drop out of `runs`; the report loop below re-derives the
  // run-to-path mapping by skipping entries with a parse error.
  std::vector<Run> runs;
  std::vector<std::string> parse_errors(paths.size());
  for (size_t i = 0; i < paths.size(); ++i) {
    auto run = LoadRun(paths[i].c_str());
    if (!run.ok()) {
      parse_errors[i] = run.status().ToString();
      continue;
    }
    runs.push_back(std::move(run).value());
  }

  ProvenanceService::Options options;
  options.num_threads = num_threads;
  options.fail_fast = fail_fast;
  auto service =
      ProvenanceService::Create(std::move(spec), scheme_kind, options);
  if (!service.ok()) return Fail(service.status());

  Stopwatch sw;
  std::vector<Result<RunId>> ids = service->AddRunsParallel(runs);
  const double seconds = sw.ElapsedSeconds();

  size_t ok = 0;
  uint64_t vertices = 0;
  for (size_t i = 0, r = 0; i < paths.size(); ++i) {
    if (!parse_errors[i].empty()) {
      std::printf("%-40s PARSE ERROR: %s\n", paths[i].c_str(),
                  parse_errors[i].c_str());
      continue;
    }
    const Result<RunId>& id = ids[r];
    if (id.ok()) {
      auto stats = service->Stats(*id);
      std::printf("%-40s run %llu (%u vertices, %u-bit labels)\n",
                  paths[i].c_str(),
                  static_cast<unsigned long long>(id->value()),
                  stats.ok() ? stats->num_vertices : 0,
                  stats.ok() ? stats->label_bits : 0);
      ++ok;
      vertices += runs[r].num_vertices();
    } else {
      std::printf("%-40s FAILED: %s\n", paths[i].c_str(),
                  id.status().ToString().c_str());
    }
    ++r;
  }
  std::printf(
      "\ningested %zu/%zu runs (%llu vertices) in %.2f ms "
      "on %u threads: %.0f runs/s\n",
      ok, paths.size(), static_cast<unsigned long long>(vertices),
      seconds * 1e3, ThreadPool::Resolve(num_threads),
      seconds > 0 ? static_cast<double>(ok) / seconds : 0.0);
  return ok == paths.size() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  // Split argv into the command, options, and positional arguments.
  std::string cmd;
  SpecSchemeKind scheme_kind = SpecSchemeKind::kTcm;
  unsigned num_threads = 0;
  bool fail_fast = false;
  std::vector<const char*> args;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--scheme=", 9) == 0) {
      auto parsed = ParseSpecSchemeKind(argv[i] + 9);
      if (!parsed.ok()) return Fail(parsed.status());
      scheme_kind = *parsed;
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      // Strict parse: reject non-numeric and absurd values up front — a
      // negative number wrapped through strtoul would ask the pool for
      // ~4 billion workers.
      const char* value = argv[i] + 10;
      char* end = nullptr;
      unsigned long parsed = std::strtoul(value, &end, 10);
      if (*value == '\0' || *end != '\0' || value[0] == '-' ||
          parsed > 1024) {
        std::fprintf(stderr,
                     "error: --threads expects an integer in [0, 1024], "
                     "got '%s'\n",
                     value);
        return Usage();
      }
      num_threads = static_cast<unsigned>(parsed);
    } else if (std::strcmp(argv[i], "--fail-fast") == 0) {
      fail_fast = true;
    } else if (std::strncmp(argv[i], "--", 2) == 0) {
      std::fprintf(stderr, "error: unknown option '%s'\n", argv[i]);
      return Usage();
    } else if (cmd.empty()) {
      cmd = argv[i];
    } else {
      args.push_back(argv[i]);
    }
  }
  if (cmd.empty()) return Usage();

  if (cmd == "demo-spec") {
    auto spec = BuildRunningExampleSpec();
    if (!spec.ok()) return Fail(spec.status());
    std::fputs(WriteSpecificationXml(*spec).c_str(), stdout);
    return 0;
  }

  if (cmd == "demo-run") {
    if (args.empty()) return Usage();
    auto spec = LoadSpec(args[0]);
    if (!spec.ok()) return Fail(spec.status());
    RunGenerator generator(&spec.value());
    RunGenOptions opt;
    opt.target_vertices =
        args.size() > 1
            ? static_cast<uint32_t>(std::strtoul(args[1], nullptr, 10))
            : 100;
    opt.seed = args.size() > 2 ? std::strtoull(args[2], nullptr, 10) : 1;
    auto gen = generator.Generate(opt);
    if (!gen.ok()) return Fail(gen.status());
    std::fputs(WriteRunXml(gen->run).c_str(), stdout);
    return 0;
  }

  if (cmd == "ingest-dir") {
    if (args.size() < 2) return Usage();
    auto spec = LoadSpec(args[0]);
    if (!spec.ok()) return Fail(spec.status());
    return IngestDir(std::move(spec).value(), scheme_kind, num_threads,
                     fail_fast, args[1]);
  }

  if (cmd == "validate" || cmd == "label" || cmd == "stats") {
    if (args.size() < 2) return Usage();
    auto spec = LoadSpec(args[0]);
    if (!spec.ok()) return Fail(spec.status());
    auto run = LoadRun(args[1]);
    if (!run.ok()) return Fail(run.status());

    auto recovered = ConstructPlan(*spec, *run);
    if (cmd == "validate") {
      if (!recovered.ok()) {
        std::printf("NOT CONFORMING: %s\n",
                    recovered.status().ToString().c_str());
        return 1;
      }
      std::printf("OK: run conforms to the specification\n");
      return 0;
    }
    if (!recovered.ok()) return Fail(recovered.status());
    const size_t plan_nodes = recovered->plan.num_nodes();

    auto service =
        ProvenanceService::Create(std::move(spec).value(), scheme_kind);
    if (!service.ok()) return Fail(service.status());
    auto id = service->AddRunWithPlan(*run, recovered->plan,
                                      std::move(recovered->origin));
    if (!id.ok()) return Fail(id.status());

    if (cmd == "stats") {
      auto stats = service->Stats(*id);
      if (!stats.ok()) return Fail(stats.status());
      std::printf("scheme:              %s\n",
                  SpecSchemeKindName(scheme_kind));
      std::printf("run vertices:        %u\n", run->num_vertices());
      std::printf("run edges:           %zu\n", run->num_edges());
      std::printf("plan nodes:          %zu\n", plan_nodes);
      std::printf("nonempty + nodes:    %u\n", stats->num_nonempty_plus);
      std::printf("bits per label:      %u (3x%u context + %u origin)\n",
                  stats->label_bits, stats->context_bits / 3,
                  stats->origin_bits);
      return 0;
    }
    // label: answer "<from> <to>" queries from stdin.
    std::string line;
    while (std::getline(std::cin, line)) {
      if (line.empty() || line[0] == '#') continue;
      std::istringstream iss(line);
      VertexId u, v;
      if (!(iss >> u >> v) || u >= run->num_vertices() ||
          v >= run->num_vertices()) {
        std::printf("? bad query: %s\n", line.c_str());
        continue;
      }
      auto reach = service->Reaches(*id, u, v);
      if (!reach.ok()) return Fail(reach.status());
      std::printf("%u -> %u : %s\n", u, v,
                  *reach ? "reachable" : "unreachable");
    }
    return 0;
  }
  return Usage();
}
