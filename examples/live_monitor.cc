// Live provenance monitoring (the paper's Section 9 direction): a
// long-running iterative workflow reports events while it executes, and an
// analyst asks dependency questions about intermediate results before the
// run completes. Built on ProvenanceService::OpenSession — the service owns
// the labeled skeleton; the session wraps the event feed and Seal()s the
// finished run into the service's registry.
//
// The simulated workflow refines a model over many loop iterations, forking
// a configurable number of parallel evaluations inside each iteration.
//
//   $ ./live_monitor [iterations] [forks_per_iteration]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "src/common/stopwatch.h"
#include "src/skl.h"

using namespace skl;  // NOLINT: example brevity

int main(int argc, char** argv) {
  // The monitoring queries below index the first/second eval of the first
  // and last iteration, so at least one iteration with two forks each.
  const uint32_t iterations = std::max<uint32_t>(
      1, argc > 1 ? static_cast<uint32_t>(std::strtoul(argv[1], nullptr, 10))
                  : 50);
  const uint32_t forks = std::max<uint32_t>(
      2, argc > 2 ? static_cast<uint32_t>(std::strtoul(argv[2], nullptr, 10))
                  : 8);

  // Specification: ingest -> [ prepare -> { evaluate } -> select ]* -> publish
  // with a loop around prepare/evaluate/select and a fork around evaluate.
  SpecificationBuilder b;
  VertexId ingest = b.AddModule("ingest");
  VertexId prepare = b.AddModule("prepare");
  VertexId evaluate = b.AddModule("evaluate");
  VertexId select = b.AddModule("select");
  VertexId publish = b.AddModule("publish");
  b.AddEdge(ingest, prepare).AddEdge(prepare, evaluate)
      .AddEdge(evaluate, select).AddEdge(select, publish);
  b.DeclareLoop({prepare, evaluate, select});
  b.DeclareFork({prepare, evaluate, select});  // evaluate forks in parallel
  auto spec = std::move(b).Build();
  if (!spec.ok()) {
    std::fprintf(stderr, "%s\n", spec.status().ToString().c_str());
    return 1;
  }
  auto service =
      ProvenanceService::Create(std::move(spec).value(), SpecSchemeKind::kTcm);
  if (!service.ok()) {
    std::fprintf(stderr, "%s\n", service.status().ToString().c_str());
    return 1;
  }

  // Hierarchy ids follow declaration order: loop=1, fork=2.
  RunSession monitor = service->OpenSession();
  auto die = [](const Status& st) {
    std::fprintf(stderr, "event error: %s\n", st.ToString().c_str());
    std::exit(1);
  };
  auto ok = [&](const Status& st) {
    if (!st.ok()) die(st);
  };

  Stopwatch sw;
  auto ingest_v = monitor.ExecuteModule("ingest");
  if (!ingest_v.ok()) die(ingest_v.status());
  std::vector<VertexId> first_iter_evals;
  std::vector<VertexId> last_iter_evals;
  ok(monitor.BeginExecution(1));  // the refinement loop starts
  for (uint32_t it = 0; it < iterations; ++it) {
    ok(monitor.BeginCopy());  // loop iteration
    auto p = monitor.ExecuteModule("prepare");
    if (!p.ok()) die(p.status());
    auto sel_pending = [&] {
      ok(monitor.BeginExecution(2));  // parallel evaluations
      std::vector<VertexId> evals;
      for (uint32_t f = 0; f < forks; ++f) {
        ok(monitor.BeginCopy());
        auto e = monitor.ExecuteModule("evaluate");
        if (!e.ok()) die(e.status());
        evals.push_back(*e);
        ok(monitor.EndCopy());
      }
      ok(monitor.EndExecution());
      return evals;
    };
    auto evals = sel_pending();
    if (it == 0) first_iter_evals = evals;
    last_iter_evals = evals;
    auto s = monitor.ExecuteModule("select");
    if (!s.ok()) die(s.status());
    ok(monitor.EndCopy());
  }
  double feed_ms = sw.ElapsedMillis();
  std::printf("fed %u events for %u executions in %.2f ms "
              "(run still open)\n",
              3 * iterations + iterations * forks + 1,
              monitor.num_vertices(), feed_ms);

  // Mid-run questions — the workflow has NOT finished (publish pending).
  std::printf("\nmid-run queries (loop still open):\n");
  std::printf("  first-iteration eval feeds the latest eval?   %s\n",
              monitor.Reaches(first_iter_evals[0], last_iter_evals[0])
                  ? "yes" : "no");
  std::printf("  two parallel evals of the last iteration?     %s\n",
              monitor.Reaches(last_iter_evals[0], last_iter_evals[1])
                  ? "yes" : "no (parallel)");
  std::printf("  everything still traces back to the ingest?   %s\n",
              monitor.Reaches(*ingest_v, last_iter_evals.back()) ? "yes"
                                                                 : "no");
  sw.Restart();
  size_t dependent = 0;
  for (VertexId v = 0; v < monitor.num_vertices(); ++v) {
    dependent += monitor.Reaches(first_iter_evals[0], v) ? 1 : 0;
  }
  std::printf("  executions downstream of eval#0:              %zu/%u "
              "(%.2f ms, O(depth) per query)\n",
              dependent, monitor.num_vertices(), sw.ElapsedMillis());

  // The run completes; seal into constant-time labels inside the service.
  ok(monitor.EndExecution());
  auto publish_v = monitor.ExecuteModule("publish");
  if (!publish_v.ok()) die(publish_v.status());
  auto id = std::move(monitor).Seal();
  if (!id.ok()) die(id.status());
  auto stats = service->Stats(*id);
  if (!stats.ok()) die(stats.status());
  auto final_dep = service->Reaches(*id, *ingest_v, *publish_v);
  if (!final_dep.ok()) die(final_dep.status());
  std::printf("\nrun complete: sealed as run #%llu; %u-bit final labels; "
              "publish depends on ingest: %s\n",
              static_cast<unsigned long long>(id->value()),
              stats->label_bits, *final_dep ? "yes" : "no");

  // Constant-time answers now come from the registry; batch queries take
  // the reader lock once.
  std::vector<VertexPair> pairs = {
      {first_iter_evals[0], last_iter_evals[0]},
      {last_iter_evals[0], last_iter_evals[1]},
  };
  auto answers = service->ReachesBatch(*id, pairs);
  if (!answers.ok()) die(answers.status());
  std::printf("first eval feeds last eval = %s\n",
              (*answers)[0] ? "yes" : "no");
  std::printf("two parallel evals related = %s\n",
              (*answers)[1] ? "yes" : "no (parallel)");
  return 0;
}
