// Live provenance monitoring (the paper's Section 9 direction, implemented
// by OnlineLabeler): a long-running iterative workflow reports events while
// it executes, and an analyst asks dependency questions about intermediate
// results before the run completes.
//
// The simulated workflow refines a model over many loop iterations, forking
// a configurable number of parallel evaluations inside each iteration.
//
//   $ ./live_monitor [iterations] [forks_per_iteration]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "src/common/stopwatch.h"
#include "src/core/online_labeler.h"
#include "src/workflow/specification.h"

using namespace skl;  // NOLINT: example brevity

int main(int argc, char** argv) {
  const uint32_t iterations =
      argc > 1 ? static_cast<uint32_t>(std::strtoul(argv[1], nullptr, 10))
               : 50;
  const uint32_t forks =
      argc > 2 ? static_cast<uint32_t>(std::strtoul(argv[2], nullptr, 10))
               : 8;

  // Specification: ingest -> [ prepare -> { evaluate } -> select ]* -> publish
  // with a loop around prepare/evaluate/select and a fork around evaluate.
  SpecificationBuilder b;
  VertexId ingest = b.AddModule("ingest");
  VertexId prepare = b.AddModule("prepare");
  VertexId evaluate = b.AddModule("evaluate");
  VertexId select = b.AddModule("select");
  VertexId publish = b.AddModule("publish");
  b.AddEdge(ingest, prepare).AddEdge(prepare, evaluate)
      .AddEdge(evaluate, select).AddEdge(select, publish);
  b.DeclareLoop({prepare, evaluate, select});
  b.DeclareFork({prepare, evaluate, select});  // evaluate forks in parallel
  auto spec = std::move(b).Build();
  if (!spec.ok()) {
    std::fprintf(stderr, "%s\n", spec.status().ToString().c_str());
    return 1;
  }
  // Hierarchy ids follow declaration order: loop=1, fork=2.
  auto scheme = CreateSpecScheme(SpecSchemeKind::kTcm);
  if (!scheme->Build(spec->graph()).ok()) return 1;

  OnlineLabeler monitor(&spec.value(), scheme.get());
  auto die = [](const Status& st) {
    std::fprintf(stderr, "event error: %s\n", st.ToString().c_str());
    std::exit(1);
  };
  auto ok = [&](const Status& st) {
    if (!st.ok()) die(st);
  };

  Stopwatch sw;
  auto ingest_v = monitor.ExecuteModule("ingest");
  if (!ingest_v.ok()) die(ingest_v.status());
  std::vector<VertexId> first_iter_evals;
  std::vector<VertexId> last_iter_evals;
  ok(monitor.BeginExecution(1));  // the refinement loop starts
  for (uint32_t it = 0; it < iterations; ++it) {
    ok(monitor.BeginCopy());  // loop iteration
    auto p = monitor.ExecuteModule("prepare");
    if (!p.ok()) die(p.status());
    auto sel_pending = [&] {
      ok(monitor.BeginExecution(2));  // parallel evaluations
      std::vector<VertexId> evals;
      for (uint32_t f = 0; f < forks; ++f) {
        ok(monitor.BeginCopy());
        auto e = monitor.ExecuteModule("evaluate");
        if (!e.ok()) die(e.status());
        evals.push_back(*e);
        ok(monitor.EndCopy());
      }
      ok(monitor.EndExecution());
      return evals;
    };
    auto evals = sel_pending();
    if (it == 0) first_iter_evals = evals;
    last_iter_evals = evals;
    auto s = monitor.ExecuteModule("select");
    if (!s.ok()) die(s.status());
    ok(monitor.EndCopy());
  }
  double feed_ms = sw.ElapsedMillis();
  std::printf("fed %u events for %u executions in %.2f ms "
              "(run still open)\n",
              3 * iterations + iterations * forks + 1,
              monitor.num_vertices(), feed_ms);

  // Mid-run questions — the workflow has NOT finished (publish pending).
  std::printf("\nmid-run queries (loop still open):\n");
  std::printf("  first-iteration eval feeds the latest eval?   %s\n",
              monitor.Reaches(first_iter_evals[0], last_iter_evals[0])
                  ? "yes" : "no");
  std::printf("  two parallel evals of the last iteration?     %s\n",
              monitor.Reaches(last_iter_evals[0], last_iter_evals[1])
                  ? "yes" : "no (parallel)");
  std::printf("  everything still traces back to the ingest?   %s\n",
              monitor.Reaches(*ingest_v, last_iter_evals.back()) ? "yes"
                                                                 : "no");
  sw.Restart();
  size_t dependent = 0;
  for (VertexId v = 0; v < monitor.num_vertices(); ++v) {
    dependent += monitor.Reaches(first_iter_evals[0], v) ? 1 : 0;
  }
  std::printf("  executions downstream of eval#0:              %zu/%u "
              "(%.2f ms, O(depth) per query)\n",
              dependent, monitor.num_vertices(), sw.ElapsedMillis());

  // The run completes; freeze into constant-time labels.
  ok(monitor.EndExecution());
  auto publish_v = monitor.ExecuteModule("publish");
  if (!publish_v.ok()) die(publish_v.status());
  auto labeling = std::move(monitor).Finish();
  if (!labeling.ok()) die(labeling.status());
  std::printf("\nrun complete: %u-bit final labels; publish depends on "
              "ingest: %s\n",
              labeling->label_bits(),
              labeling->Reaches(*ingest_v, *publish_v) ? "yes" : "no");
  std::printf("relationship(first eval, last eval) = %s\n",
              RunRelationshipName(
                  labeling->Relate(first_iter_evals[0],
                                   last_iter_evals[0])));
  std::printf("relationship(two parallel evals)    = %s\n",
              RunRelationshipName(
                  labeling->Relate(last_iter_evals[0],
                                   last_iter_evals[1])));
  return 0;
}
