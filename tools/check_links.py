#!/usr/bin/env python3
"""Fails (exit 1) on broken relative links in the given markdown files.

Checks inline links and images — [text](target) / ![alt](target) — whose
target is a relative path: the referenced file must exist relative to the
markdown file containing the link. External schemes (http/https/mailto) and
pure in-page anchors (#...) are skipped; a #fragment on a relative target is
stripped before the existence check (anchor validity is not checked).

Usage: tools/check_links.py README.md docs/*.md
"""
import re
import sys
from pathlib import Path

# Inline links/images; deliberately simple — our docs don't nest parens in
# URLs or use reference-style links.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def broken_links(md_file: Path):
    text = md_file.read_text(encoding="utf-8")
    # Drop fenced code blocks: their bracket/paren runs are not links.
    text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
    for match in LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(SKIP_PREFIXES):
            continue
        path = target.split("#", 1)[0]
        if not path:
            continue
        if not (md_file.parent / path).exists():
            yield target


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    failures = 0
    for name in argv[1:]:
        md_file = Path(name)
        if not md_file.exists():
            print(f"{name}: file not found", file=sys.stderr)
            failures += 1
            continue
        for target in broken_links(md_file):
            print(f"{name}: broken relative link -> {target}", file=sys.stderr)
            failures += 1
    if failures:
        print(f"{failures} broken link(s)", file=sys.stderr)
        return 1
    print("all relative links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
