#!/usr/bin/env python3
"""Compare two directories of SKL_BENCH_JSON bench results and gate on
perf regressions.

Usage:
    bench_compare.py BASELINE_DIR CURRENT_DIR [--threshold 0.25]
                     [--summary FILE]

Each directory holds one JSON file per bench in the JsonReporter shape
({"bench": ..., "results": [{"name", "value", "unit"}, ...]}); CI
downloads BASELINE_DIR from the previous main run's bench-results
artifact and fills CURRENT_DIR from this run (docs/BENCHMARKS.md).

Every metric present on both sides is reported in a markdown delta table
(written to --summary for $GITHUB_STEP_SUMMARY, and always to stdout).
Only the *gated* keys fail the job: snapshot_load_*, spec_delta_*,
query_cache_hit_ns, net_connscale_*_p99_latency and repl_lag_p50/p99 —
the snapshot-restore, spec-update-relabel, serving-latency,
connection-scale tail-latency and replication-lag surfaces this repo
promises not to regress. A gated
key regresses when it worsens by more than --threshold (default 25%);
"worsens" respects the unit's direction — UNIT_DIRECTIONS pins it
explicitly for every unit a gated key uses, and time-like units
(ms, ns/query) otherwise regress upward, rate-like units (MB/s, runs/s)
downward. A gated key that exists in the baseline but vanished from the
current run also fails (a silently dropped metric must not pass the
gate it used to guard).

Artifact compatibility: documents written by JsonReporter carry
bench_schema_version (bench/bench_common.h). A file whose version is
newer or older than SCHEMA_VERSION exits 2 — mis-reading a stale
baseline is worse than failing loudly. Files without the field predate
the versioning and are accepted as version-1 shaped.

Exit codes: 0 ok, 1 regression, 2 usage/IO error — matching the repo's
CLI misuse convention.
"""

import argparse
import glob
import json
import os
import sys

#: The JsonReporter artifact format this comparator understands
#: (bench/bench_common.h kSchemaVersion).
SCHEMA_VERSION = 1

GATED_PREFIXES = ("snapshot_load_", "spec_delta_")
GATED_EXACT = ("query_cache_hit_ns", "repl_lag_p50", "repl_lag_p99")
#: (prefix, suffix) pairs: gates the connection-scale p99 keys
#: (net_connscale_256_p99_latency, ..._1024_..., ...) without gating the
#: qps/churn keys that share the prefix.
GATED_AFFIXES = (("net_connscale_", "_p99_latency"),)

#: Explicit direction for every unit a gated key uses (True = higher is
#: better). The heuristic in higher_is_better covers the informational
#: rest; gated keys must not depend on a substring guess.
UNIT_DIRECTIONS = {
    "ms": False,
    "us": False,
    "ns/query": False,
    "queries/s": True,
    "runs/s": True,
    "MB/s": True,
}


def is_gated(key):
    name = key.rsplit("/", 1)[-1]
    if name.startswith(GATED_PREFIXES) or name in GATED_EXACT:
        return True
    return any(name.startswith(prefix) and name.endswith(suffix)
               for prefix, suffix in GATED_AFFIXES)


def higher_is_better(unit):
    """Rate-like units improve upward; everything else (ms, ns, MB, x)
    is treated as lower-is-better, which is correct for every gated key
    and harmless for the informational rows."""
    if unit in UNIT_DIRECTIONS:
        return UNIT_DIRECTIONS[unit]
    return "/s" in unit or "per_sec" in unit


def load_dir(path):
    """{ "<bench>/<metric>": (value, unit) } over every *.json in path."""
    metrics = {}
    for file in sorted(glob.glob(os.path.join(path, "*.json"))):
        try:
            with open(file, "r", encoding="utf-8") as fh:
                doc = json.load(fh)
        except (OSError, json.JSONDecodeError) as err:
            print(f"error: cannot read {file}: {err}", file=sys.stderr)
            sys.exit(2)
        version = doc.get("bench_schema_version")
        if version is not None and version != SCHEMA_VERSION:
            print(f"error: {file}: bench_schema_version {version} is not "
                  f"the supported {SCHEMA_VERSION}; refusing to compare "
                  "incompatible artifacts", file=sys.stderr)
            sys.exit(2)
        bench = doc.get("bench", os.path.basename(file))
        for entry in doc.get("results", []):
            try:
                key = f"{bench}/{entry['name']}"
                metrics[key] = (float(entry["value"]), str(entry.get("unit", "")))
            except (KeyError, TypeError, ValueError) as err:
                print(f"error: malformed entry in {file}: {err}", file=sys.stderr)
                sys.exit(2)
    return metrics


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="directory of baseline bench JSON")
    parser.add_argument("current", help="directory of current bench JSON")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="gated regression threshold as a fraction "
                             "(default 0.25 = 25%%)")
    parser.add_argument("--summary", default=None,
                        help="also write the markdown table to this file "
                             "(append; for $GITHUB_STEP_SUMMARY)")
    args = parser.parse_args()
    for path in (args.baseline, args.current):
        if not os.path.isdir(path):
            print(f"error: {path} is not a directory", file=sys.stderr)
            return 2

    baseline = load_dir(args.baseline)
    current = load_dir(args.current)
    if not baseline:
        # First run on a branch / expired artifact: nothing to gate against.
        print(f"no baseline metrics under {args.baseline}; skipping the gate")
        return 0
    if not current:
        print(f"error: no current metrics under {args.current}",
              file=sys.stderr)
        return 2

    lines = [
        f"### Bench comparison (gate: ±{args.threshold:.0%} on "
        "`snapshot_load_*`, `spec_delta_*`, `query_cache_hit_ns`, "
        "`net_connscale_*_p99_latency`, `repl_lag_p50/p99`)",
        "",
        "| metric | baseline | current | delta | gate |",
        "|---|---:|---:|---:|---|",
    ]
    regressions = []
    for key in sorted(set(baseline) | set(current)):
        gated = is_gated(key)
        if key not in current:
            status = "MISSING" if gated else "removed"
            lines.append(f"| `{key}` | {baseline[key][0]:.4g} {baseline[key][1]}"
                         f" | — | — | {status} |")
            if gated:
                regressions.append(f"{key}: gated metric missing from the "
                                   "current run")
            continue
        if key not in baseline:
            value, unit = current[key]
            lines.append(f"| `{key}` | — | {value:.4g} {unit} | — | new |")
            continue
        base_value, unit = baseline[key]
        value = current[key][0]
        delta = (value - base_value) / base_value if base_value != 0 else 0.0
        worsened = -delta if higher_is_better(unit) else delta
        status = ""
        if gated:
            status = "REGRESSED" if worsened > args.threshold else "ok"
            if worsened > args.threshold:
                regressions.append(
                    f"{key}: {base_value:.4g} -> {value:.4g} {unit} "
                    f"({delta:+.1%}, threshold ±{args.threshold:.0%})")
        lines.append(f"| `{key}` | {base_value:.4g} {unit} | {value:.4g} {unit}"
                     f" | {delta:+.1%} | {status} |")
    if regressions:
        lines += ["", f"**{len(regressions)} gated regression(s):**", ""]
        lines += [f"- {r}" for r in regressions]
    else:
        lines += ["", "No gated regressions."]

    table = "\n".join(lines)
    print(table)
    if args.summary:
        with open(args.summary, "a", encoding="utf-8") as fh:
            fh.write(table + "\n")
    return 1 if regressions else 0


if __name__ == "__main__":
    sys.exit(main())
