// Umbrella header: the public surface of the SKL library in one include.
//
//   #include "src/skl.h"
//
//   skl::Specification spec = ...;                       // SpecificationBuilder
//   auto svc = skl::ProvenanceService::Create(
//       std::move(spec), skl::SpecSchemeKind::kTcm);     // skeleton labeled once
//   skl::RunId id = *svc->AddRun(run);                   // many runs, amortized
//   bool dep = *svc->Reaches(id, v, w);                  // O(1) per query
//
// ProvenanceService is the recommended entry point; the lower-level facades
// (SkeletonLabeler, OnlineLabeler) remain available for single-run and
// embedded uses. For serving queries to other processes, wrap the service
// in a ProvenanceServer and connect with ProvenanceClient (src/net/,
// docs/NETWORK.md) — the client mirrors the service API. For durability and
// horizontal read scaling, attach an OpLog and point ReadReplica /
// FleetClient at the server (src/replication/, docs/REPLICATION.md).
#ifndef SKL_SKL_H_
#define SKL_SKL_H_

#include "src/common/status.h"
#include "src/core/data_provenance.h"
#include "src/core/execution_plan.h"
#include "src/core/online_labeler.h"
#include "src/core/plan_builder.h"
#include "src/core/provenance_service.h"
#include "src/core/provenance_store.h"
#include "src/core/run_labeling.h"
#include "src/core/skeleton_labeler.h"
#include "src/graph/digraph.h"
#include "src/io/snapshot.h"
#include "src/io/workflow_xml.h"
#include "src/net/client.h"
#include "src/net/protocol.h"
#include "src/net/server.h"
#include "src/replication/fleet_client.h"
#include "src/replication/oplog.h"
#include "src/replication/replicator.h"
#include "src/speclabel/scheme.h"
#include "src/workflow/run.h"
#include "src/workflow/spec_delta.h"
#include "src/workflow/specification.h"
#include "src/workflow/validation.h"

#endif  // SKL_SKL_H_
