#include "src/net/protocol.h"

#include <algorithm>
#include <cstring>

#include "src/common/crc32.h"

namespace skl {

const char* MsgTypeName(MsgType type) {
  switch (type) {
    case MsgType::kPing: return "Ping";
    case MsgType::kReaches: return "Reaches";
    case MsgType::kReachesBatch: return "ReachesBatch";
    case MsgType::kDependsOn: return "DependsOn";
    case MsgType::kDependsOnBatch: return "DependsOnBatch";
    case MsgType::kModuleDependsOnData: return "ModuleDependsOnData";
    case MsgType::kDataDependsOnModule: return "DataDependsOnModule";
    case MsgType::kAddRun: return "AddRun";
    case MsgType::kImportRun: return "ImportRun";
    case MsgType::kExportRun: return "ExportRun";
    case MsgType::kRemoveRun: return "RemoveRun";
    case MsgType::kListRuns: return "ListRuns";
    case MsgType::kRunStats: return "RunStats";
    case MsgType::kServiceStats: return "ServiceStats";
    case MsgType::kSaveSnapshot: return "SaveSnapshot";
    case MsgType::kLoadSnapshot: return "LoadSnapshot";
    case MsgType::kShutdown: return "Shutdown";
    case MsgType::kSnapshotFetch: return "SnapshotFetch";
    case MsgType::kSubscribe: return "Subscribe";
    case MsgType::kMetrics: return "Metrics";
    case MsgType::kSlowQueries: return "SlowQueries";
    case MsgType::kApplySpecDelta: return "ApplySpecDelta";
    case MsgType::kReply: return "Reply";
    case MsgType::kError: return "Error";
    case MsgType::kLogEntries: return "LogEntries";
    case MsgType::kRetryAt: return "RetryAt";
  }
  return "Unknown";
}

bool IsRequestType(uint8_t type) {
  return type >= static_cast<uint8_t>(MsgType::kPing) &&
         type <= static_cast<uint8_t>(MsgType::kApplySpecDelta);
}

void EncodeFrame(const Frame& frame, std::vector<uint8_t>* out) {
  // Body first: its length and CRC go into the header.
  BitWriter body_writer;
  body_writer.Write(frame.version, 8);
  body_writer.Write(static_cast<uint8_t>(frame.type), 8);
  body_writer.WriteVarint(frame.request_id);
  body_writer.WriteBytes(frame.payload);
  const std::vector<uint8_t> body = std::move(body_writer).Finish();

  BitWriter header;
  header.Write(kFrameMagic, 16);
  header.Write(static_cast<uint32_t>(body.size()), 32);
  header.Write(Crc32(body), 32);
  const std::vector<uint8_t> header_bytes = std::move(header).Finish();

  out->reserve(out->size() + header_bytes.size() + body.size());
  out->insert(out->end(), header_bytes.begin(), header_bytes.end());
  out->insert(out->end(), body.begin(), body.end());
}

void FrameDecoder::Feed(std::span<const uint8_t> bytes) {
  // Compact the already-decoded prefix before growing; keeps long-lived
  // connections from accumulating every frame ever received.
  if (consumed_ > 0 && consumed_ == buffer_.size()) {
    buffer_.clear();
    consumed_ = 0;
  } else if (consumed_ > 4096) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
}

Result<std::optional<Frame>> FrameDecoder::Next() {
  if (poisoned_.has_value()) return *poisoned_;
  const size_t available = buffer_.size() - consumed_;
  if (available < kFrameHeaderBytes) return std::optional<Frame>();

  const uint8_t* base = buffer_.data() + consumed_;
  BitReader header(base, kFrameHeaderBytes);
  uint64_t magic = 0, body_len = 0, body_crc = 0;
  // The header reads cannot fail: kFrameHeaderBytes are present.
  (void)header.Read(16, &magic);
  (void)header.Read(32, &body_len);
  (void)header.Read(32, &body_crc);
  if (magic != kFrameMagic) {
    poisoned_ = Status::ParseError(
        "bad frame magic: peer is not speaking the SKL wire protocol or the "
        "stream lost frame synchronization");
    return *poisoned_;
  }
  if (body_len > max_frame_bytes_) {
    poisoned_ = Status::ParseError(
        "frame length " + std::to_string(body_len) +
        " exceeds the maximum of " + std::to_string(max_frame_bytes_) +
        " bytes (corrupted length prefix?)");
    return *poisoned_;
  }
  if (body_len < 2) {  // version + type are mandatory
    poisoned_ = Status::ParseError("frame body too short for version+type");
    return *poisoned_;
  }
  if (available < kFrameHeaderBytes + body_len) {
    return std::optional<Frame>();  // incomplete: wait for more bytes
  }

  const std::span<const uint8_t> body(base + kFrameHeaderBytes,
                                      static_cast<size_t>(body_len));
  if (Crc32(body) != body_crc) {
    poisoned_ = Status::ParseError(
        "frame checksum mismatch: body of " + std::to_string(body_len) +
        " bytes does not match its CRC-32");
    return *poisoned_;
  }

  Frame frame;
  frame.version = body[0];
  frame.type = static_cast<MsgType>(body[1]);
  BitReader body_reader(body.data() + 2, body.size() - 2);
  uint64_t request_id = 0;
  Status id_status = body_reader.ReadVarint(&request_id);
  if (!id_status.ok()) {
    // CRC was fine, so this is a malformed body encoding, not line noise;
    // still unrecoverable as a message, and ids cannot be echoed.
    poisoned_ = Status::ParseError("frame body truncated inside request id");
    return *poisoned_;
  }
  frame.request_id = request_id;
  body_reader.AlignToByte();
  const size_t payload_offset = 2 + body_reader.bit_position() / 8;
  frame.payload.assign(body.begin() + static_cast<ptrdiff_t>(payload_offset),
                       body.end());
  consumed_ += kFrameHeaderBytes + static_cast<size_t>(body_len);
  return std::optional<Frame>(std::move(frame));
}

Result<uint64_t> PayloadReader::U64() {
  uint64_t value = 0;
  SKL_RETURN_NOT_OK(reader_.ReadVarint(&value));
  return value;
}

Result<bool> PayloadReader::Boolean() {
  uint64_t value = 0;
  SKL_RETURN_NOT_OK(reader_.Read(8, &value));
  if (value > 1) {
    return Status::ParseError("boolean field holds " + std::to_string(value));
  }
  return value == 1;
}

Result<std::span<const uint8_t>> PayloadReader::Bytes() {
  uint64_t length = 0;
  SKL_RETURN_NOT_OK(reader_.ReadVarint(&length));
  std::span<const uint8_t> out;
  SKL_RETURN_NOT_OK(reader_.ReadBytes(static_cast<size_t>(length), &out));
  return out;
}

Result<std::string> PayloadReader::Str() {
  SKL_ASSIGN_OR_RETURN(std::span<const uint8_t> bytes, Bytes());
  return std::string(reinterpret_cast<const char*>(bytes.data()),
                     bytes.size());
}

Status PayloadReader::ExpectEnd() {
  reader_.AlignToByte();
  if (reader_.bit_position() / 8 != size_bytes_) {
    return Status::ParseError(
        "payload has " +
        std::to_string(size_bytes_ - reader_.bit_position() / 8) +
        " trailing bytes");
  }
  return Status::OK();
}

std::vector<uint8_t> EncodeErrorPayload(const Status& status) {
  PayloadWriter writer;
  writer.U64(static_cast<uint64_t>(status.code()));
  writer.Str(status.message());
  return std::move(writer).Finish();
}

std::vector<uint8_t> EncodeErrorPayload(const Status& status,
                                        uint64_t trace_id) {
  PayloadWriter writer;
  writer.U64(static_cast<uint64_t>(status.code()));
  writer.Str(status.message());
  writer.U64(trace_id);
  return std::move(writer).Finish();
}

namespace {

/// Shared body of the two DecodeErrorPayload forms: `trace_id` non-null
/// means the v5 shape (trailing trace-id varint) is expected.
Status DecodeErrorPayloadImpl(std::span<const uint8_t> payload,
                              uint64_t* trace_id) {
  PayloadReader reader(payload);
  Result<uint64_t> code_result = reader.U64();
  if (!code_result.ok()) {
    return Status::ParseError("malformed error payload: " +
                              code_result.status().message());
  }
  const uint64_t code = *code_result;
  Result<std::string> message_result = reader.Str();
  if (!message_result.ok()) {
    return Status::ParseError("malformed error payload: " +
                              message_result.status().message());
  }
  std::string message = std::move(message_result).value();
  if (trace_id != nullptr) {
    Result<uint64_t> trace_result = reader.U64();
    if (!trace_result.ok()) {
      return Status::ParseError("malformed error payload: " +
                                trace_result.status().message());
    }
    *trace_id = *trace_result;
  }
  Status end = reader.ExpectEnd();
  if (!end.ok()) {
    return Status::ParseError("malformed error payload: " + end.message());
  }
  if (code == static_cast<uint64_t>(StatusCode::kOk) ||
      code > static_cast<uint64_t>(StatusCode::kEpochMismatch)) {
    // An error frame must carry an error; map codes from a future peer to
    // Internal but keep the human-readable message.
    return Status(StatusCode::kInternal,
                  "remote error with unknown code " + std::to_string(code) +
                      ": " + message);
  }
  return Status(static_cast<StatusCode>(code), std::move(message));
}

}  // namespace

Status DecodeErrorPayload(std::span<const uint8_t> payload) {
  return DecodeErrorPayloadImpl(payload, nullptr);
}

Status DecodeErrorPayload(std::span<const uint8_t> payload,
                          uint64_t* trace_id) {
  *trace_id = 0;
  return DecodeErrorPayloadImpl(payload, trace_id);
}

}  // namespace skl
