// ProvenanceClient: synchronous client for a ProvenanceServer. The API
// mirrors ProvenanceService method for method, so a caller that held a
// service ports to remote serving with a one-line change:
//
//   auto client = *ProvenanceClient::Connect("127.0.0.1", port);
//   bool dep = *client.Reaches(id, v, w);          // was: svc.Reaches(...)
//   auto answers = *client.ReachesBatch(id, pairs);
//   RunId added = *client.AddRun(run);             // run XML over the wire
//
// Each call sends one request frame and blocks for its response; a server-
// side failure comes back as the same Status (code preserved across the
// wire) the service would have returned in-process. Transport failures —
// refused connection, peer gone, protocol corruption — are kUnavailable or
// kParseError, and the client then refuses further calls (single-socket
// state cannot be trusted after a desync; reconnect instead).
//
// Pipelining: the *Pipelined variants write one frame per query back to
// back (in bounded windows of 512, so the two socket buffers can never
// deadlock against a non-reading peer) and then read the responses,
// trading per-query round trips for one per window. They exist for
// throughput-sensitive callers (bench_net measures the difference); the
// semantics are identical to a loop of single calls.
//
// A client instance is NOT thread-safe (it owns one socket); open one
// client per thread. Connect/queries against a server in the same process
// are fine — tests and bench_net do exactly that.
#ifndef SKL_NET_CLIENT_H_
#define SKL_NET_CLIENT_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"
#include "src/core/provenance_service.h"
#include "src/net/protocol.h"

namespace skl {

class ProvenanceClient {
 public:
  /// Connects to a ProvenanceServer. `host` is a numeric IPv4 address or a
  /// resolvable name ("localhost").
  static Result<ProvenanceClient> Connect(
      const std::string& host, uint16_t port,
      size_t max_frame_bytes = kDefaultMaxFrameBytes);

  /// Connect via one "host:port" string (the sklctl --connect spelling).
  static Result<ProvenanceClient> ConnectHostPort(
      const std::string& host_port,
      size_t max_frame_bytes = kDefaultMaxFrameBytes);

  ~ProvenanceClient();
  ProvenanceClient(ProvenanceClient&& other) noexcept;
  ProvenanceClient& operator=(ProvenanceClient&& other) noexcept;
  ProvenanceClient(const ProvenanceClient&) = delete;
  ProvenanceClient& operator=(const ProvenanceClient&) = delete;

  // ------------------------------------------------ service API mirror --

  Result<bool> Reaches(RunId id, VertexId v, VertexId w);
  Result<std::vector<bool>> ReachesBatch(RunId id,
                                         std::span<const VertexPair> pairs);
  Result<bool> DependsOn(RunId id, DataItemId x, DataItemId x_from);
  Result<std::vector<bool>> DependsOnBatch(RunId id,
                                           std::span<const ItemPair> pairs);
  Result<bool> ModuleDependsOnData(RunId id, VertexId v, DataItemId x);
  Result<bool> DataDependsOnModule(RunId id, DataItemId x, VertexId v);

  /// Registers a run from its XML serialization (the wire format of
  /// AddRun; the server parses and labels it).
  Result<RunId> AddRunXml(std::string_view run_xml);
  /// Convenience: serializes `run` to XML and calls AddRunXml.
  Result<RunId> AddRun(const Run& run);

  Result<RunId> ImportRun(const std::vector<uint8_t>& blob);
  Result<std::vector<uint8_t>> ExportRun(RunId id);
  Status RemoveRun(RunId id);
  Result<std::vector<RunId>> ListRuns();
  Result<RunStats> Stats(RunId id);
  Result<ServiceStats> GetServiceStats();

  /// Snapshot save/load on the *server's* filesystem.
  Status SaveSnapshot(const std::string& path);
  Status LoadSnapshot(const std::string& path);

  // ------------------------------------------------------- lifecycle --

  Status Ping();
  /// Asks the server to drain and exit. The OK response is sent before the
  /// server begins shutting down.
  Status Shutdown();

  // ------------------------------------------------------ pipelining --

  /// One frame per pair written back to back in windows of 512, then the
  /// window's responses read in order: N queries, one round trip per
  /// window. Fails atomically — the first errored response wins and the
  /// rest are drained.
  Result<std::vector<bool>> ReachesPipelined(
      RunId id, std::span<const VertexPair> pairs);
  Result<std::vector<bool>> DependsOnPipelined(
      RunId id, std::span<const ItemPair> pairs);

 private:
  ProvenanceClient(int fd, size_t max_frame_bytes);

  /// Sends one request frame; returns its request id.
  Result<uint64_t> Send(MsgType type, std::vector<uint8_t> payload);
  /// Blocks for the next response frame and checks it answers `request_id`.
  /// kError responses decode back into their carried Status.
  Result<std::vector<uint8_t>> Receive(uint64_t request_id);
  /// Send + Receive.
  Result<std::vector<uint8_t>> Call(MsgType type,
                                    std::vector<uint8_t> payload);

  /// Sends N single-query frames, then collects N boolean replies.
  Result<std::vector<bool>> PipelinedBools(
      MsgType type, uint64_t run,
      std::span<const std::pair<uint32_t, uint32_t>> pairs);

  /// Marks the connection unusable and returns `status` (transport and
  /// framing failures are not recoverable on this socket).
  Status Poison(Status status);

  int fd_ = -1;
  uint64_t next_request_id_ = 1;
  FrameDecoder decoder_;
  Status broken_ = Status::OK();  ///< non-OK once the connection is poisoned
};

}  // namespace skl

#endif  // SKL_NET_CLIENT_H_
