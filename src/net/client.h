// ProvenanceClient: synchronous client for a ProvenanceServer. The API
// mirrors ProvenanceService method for method, so a caller that held a
// service ports to remote serving with a one-line change:
//
//   auto client = *ProvenanceClient::Connect("127.0.0.1", port);
//   bool dep = *client.Reaches(id, v, w);          // was: svc.Reaches(...)
//   auto answers = *client.ReachesBatch(id, pairs);
//   RunId added = *client.AddRun(run);             // run XML over the wire
//
// Each call sends one request frame and blocks for its response; a server-
// side failure comes back as the same Status (code preserved across the
// wire) the service would have returned in-process. Transport failures —
// refused connection, peer gone, protocol corruption — are kUnavailable or
// kParseError, and the client then refuses further calls (single-socket
// state cannot be trusted after a desync; reconnect instead).
//
// Pipelining: the *Pipelined variants write one frame per query back to
// back (in bounded windows of 512, so the two socket buffers can never
// deadlock against a non-reading peer) and then read the responses,
// trading per-query round trips for one per window. They exist for
// throughput-sensitive callers (bench_net measures the difference); the
// semantics are identical to a loop of single calls.
//
// A client instance is NOT thread-safe (it owns one socket); open one
// client per thread. Connect/queries against a server in the same process
// are fine — tests and bench_net do exactly that.
//
// Replication awareness (docs/REPLICATION.md): the client speaks protocol
// v5. Every request additionally carries the client's trace id as its
// trailing varint (set_trace_id; 0 = untraced) — the token the server's
// slow-query log and error replies echo back (docs/OBSERVABILITY.md).
// Every read request carries the client's read-LSN token (0 = any
// state is fine); a replica that has not yet applied that LSN answers
// kRetryAt, surfaced as StatusCode::kRetryAt without poisoning the
// connection. Every mutating response carries the primary's ack LSN,
// remembered in last_write_lsn() — pin it on replica clients via
// SetReadLsn for read-your-writes. Idempotent reads can additionally be
// retried across reconnects with jittered exponential backoff
// (Options::max_read_retries); mutations are never retried.
#ifndef SKL_NET_CLIENT_H_
#define SKL_NET_CLIENT_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"
#include "src/core/provenance_service.h"
#include "src/net/protocol.h"
#include "src/replication/oplog.h"

namespace skl {

/// Client knobs. (Namespace-scope so it can be brace-defaulted; spelled
/// ProvenanceClient::Options at call sites.)
struct ProvenanceClientOptions {
  /// Per-frame size ceiling for responses.
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// How many times an idempotent read is retried after a *transport*
  /// failure (kUnavailable), reconnecting before each retry. 0 = fail
  /// fast (the historical behavior). Service-level errors — including
  /// kRetryAt — are never retried here; the caller (or FleetClient)
  /// decides those.
  int max_read_retries = 0;
  /// Backoff before retry k sleeps uniformly in [s/2, s] where
  /// s = min(backoff_max_ms, backoff_base_ms << k) — bounded exponential
  /// with jitter, so a fleet of clients hammering a restarting server
  /// spreads out instead of thundering in lockstep.
  uint32_t backoff_base_ms = 5;
  uint32_t backoff_max_ms = 200;
  /// Jitter seed (deterministic per seed+attempt; pick per-client values
  /// to decorrelate a fleet).
  uint64_t backoff_seed = 0;
};

/// kSnapshotFetch result: a snapshot byte-stream that contains every op
/// with LSN <= lsn (tail the log from `lsn` to catch up).
struct SnapshotFetchResult {
  uint64_t lsn = 0;
  std::vector<uint8_t> bytes;
};

/// kSubscribe result: ops with LSN > the requested after_lsn, in order,
/// plus the primary's log head (the catch-up target).
struct LogBatch {
  std::vector<LogOp> ops;
  uint64_t primary_last_lsn = 0;
};

class ProvenanceClient {
 public:
  using Options = ProvenanceClientOptions;

  /// Connects to a ProvenanceServer. `host` is a numeric IPv4 address or a
  /// resolvable name ("localhost").
  static Result<ProvenanceClient> Connect(
      const std::string& host, uint16_t port,
      size_t max_frame_bytes = kDefaultMaxFrameBytes);
  static Result<ProvenanceClient> Connect(const std::string& host,
                                          uint16_t port,
                                          const Options& options);

  /// Connect via one "host:port" string (the sklctl --connect spelling).
  static Result<ProvenanceClient> ConnectHostPort(
      const std::string& host_port,
      size_t max_frame_bytes = kDefaultMaxFrameBytes);
  static Result<ProvenanceClient> ConnectHostPort(
      const std::string& host_port, const Options& options);

  ~ProvenanceClient();
  ProvenanceClient(ProvenanceClient&& other) noexcept;
  ProvenanceClient& operator=(ProvenanceClient&& other) noexcept;
  ProvenanceClient(const ProvenanceClient&) = delete;
  ProvenanceClient& operator=(const ProvenanceClient&) = delete;

  // ------------------------------------------------ service API mirror --

  Result<bool> Reaches(RunId id, VertexId v, VertexId w);
  Result<std::vector<bool>> ReachesBatch(RunId id,
                                         std::span<const VertexPair> pairs);
  Result<bool> DependsOn(RunId id, DataItemId x, DataItemId x_from);
  Result<std::vector<bool>> DependsOnBatch(RunId id,
                                           std::span<const ItemPair> pairs);
  Result<bool> ModuleDependsOnData(RunId id, VertexId v, DataItemId x);
  Result<bool> DataDependsOnModule(RunId id, DataItemId x, VertexId v);

  /// Registers a run from its XML serialization (the wire format of
  /// AddRun; the server parses and labels it).
  Result<RunId> AddRunXml(std::string_view run_xml);
  /// Convenience: serializes `run` to XML and calls AddRunXml.
  Result<RunId> AddRun(const Run& run);

  Result<RunId> ImportRun(const std::vector<uint8_t>& blob);
  Result<std::vector<uint8_t>> ExportRun(RunId id);
  Status RemoveRun(RunId id);
  Result<std::vector<RunId>> ListRuns();
  Result<RunStats> Stats(RunId id);
  Result<ServiceStats> GetServiceStats();

  /// Applies a specification delta on the server (docs/UPDATES.md) and
  /// returns the new spec epoch. A v6 mutating call: the reply's ack LSN
  /// updates last_write_lsn() like every other mutation.
  Result<uint64_t> ApplySpecDelta(const SpecDelta& delta);

  /// Snapshot save/load on the *server's* filesystem.
  Status SaveSnapshot(const std::string& path);
  Status LoadSnapshot(const std::string& path);

  // ------------------------------------------------------- lifecycle --

  Status Ping();
  /// Asks the server to drain and exit. The OK response is sent before the
  /// server begins shutting down.
  Status Shutdown();

  // ---------------------------------------------------- observability --

  /// The trace id stamped on every request this client sends (v5 framing:
  /// the trailing varint of each request payload). 0 — the default — means
  /// "untraced"; the server still accepts it, it just logs as trace 0.
  /// Pick a random or request-scoped value and grep it out of the server's
  /// slow-query log (docs/OBSERVABILITY.md).
  void set_trace_id(uint64_t trace_id) { trace_id_ = trace_id; }
  uint64_t trace_id() const { return trace_id_; }

  /// The server's metrics in Prometheus text exposition format (kMetrics).
  Result<std::string> GetMetrics();

  /// The server's slow-query ring buffer, oldest first (kSlowQueries).
  Result<std::vector<SlowQueryEntry>> SlowQueries();

  // ------------------------------------------------------ replication --

  /// Raises the read-LSN token attached to every subsequent read (monotone
  /// max — a smaller LSN never lowers it). Against a replica, reads then
  /// either see a state containing that LSN or come back kRetryAt.
  void SetReadLsn(uint64_t lsn) {
    if (lsn > read_lsn_) read_lsn_ = lsn;
  }
  uint64_t read_lsn() const { return read_lsn_; }

  /// The primary's ack LSN from the most recent successful mutation
  /// through this client (0 before any, or when the server has no op-log).
  uint64_t last_write_lsn() const { return last_write_lsn_; }

  /// Fetches a replica bootstrap snapshot (requires the server to have an
  /// op-log attached).
  Result<SnapshotFetchResult> SnapshotFetch();

  /// Fetches up to `max_entries` log entries with LSN > after_lsn — the
  /// replica tailing primitive.
  Result<LogBatch> Subscribe(uint64_t after_lsn, uint64_t max_entries);

  // ------------------------------------------------------ pipelining --

  /// One frame per pair written back to back in windows of 512, then the
  /// window's responses read in order: N queries, one round trip per
  /// window. Fails atomically — the first errored response wins and the
  /// rest are drained.
  Result<std::vector<bool>> ReachesPipelined(
      RunId id, std::span<const VertexPair> pairs);
  Result<std::vector<bool>> DependsOnPipelined(
      RunId id, std::span<const ItemPair> pairs);

 private:
  ProvenanceClient(int fd, Options options, std::string host, uint16_t port);

  /// Sends one request frame; returns its request id.
  Result<uint64_t> Send(MsgType type, std::vector<uint8_t> payload);
  /// Blocks for the next response frame and checks it answers `request_id`.
  /// kError responses decode back into their carried Status; kRetryAt
  /// decodes into StatusCode::kRetryAt — both leave the connection usable.
  /// `expected` is the success frame type (kLogEntries for Subscribe).
  Result<std::vector<uint8_t>> Receive(uint64_t request_id,
                                       MsgType expected = MsgType::kReply);
  /// Send + Receive.
  Result<std::vector<uint8_t>> Call(MsgType type,
                                    std::vector<uint8_t> payload);
  /// Call with the read retry policy: on kUnavailable, sleeps the jittered
  /// backoff, reconnects and retries, up to Options::max_read_retries.
  /// Only for idempotent requests.
  Result<std::vector<uint8_t>> CallRead(MsgType type,
                                        const std::vector<uint8_t>& payload);
  /// Tears down the socket and dials host_:port_ again with fresh framing
  /// state. On failure the client stays poisoned with the dial error.
  Status Reconnect();
  /// Decodes a mutating reply ({run id, ack LSN}), recording the LSN.
  Result<RunId> DecodeMutationReply(std::span<const uint8_t> payload);

  /// Sends N single-query frames, then collects N boolean replies.
  Result<std::vector<bool>> PipelinedBools(
      MsgType type, uint64_t run,
      std::span<const std::pair<uint32_t, uint32_t>> pairs);

  /// Marks the connection unusable and returns `status` (transport and
  /// framing failures are not recoverable on this socket).
  Status Poison(Status status);

  int fd_ = -1;
  uint64_t next_request_id_ = 1;
  FrameDecoder decoder_;
  Status broken_ = Status::OK();  ///< non-OK once the connection is poisoned

  Options options_;
  std::string host_;  ///< remembered for Reconnect
  uint16_t port_ = 0;
  uint64_t read_lsn_ = 0;        ///< token sent with every read
  uint64_t last_write_lsn_ = 0;  ///< primary ack LSN of the last mutation
  uint64_t trace_id_ = 0;        ///< v5 trace token sent with every request
};

}  // namespace skl

#endif  // SKL_NET_CLIENT_H_
