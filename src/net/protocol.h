// Wire protocol of the network query serving layer: framed binary messages
// carrying ProvenanceService requests and responses over a byte stream
// (docs/NETWORK.md has the full layout, opcode table and versioning policy).
//
// Every message travels in one length-prefixed, CRC-checked frame:
//
//   magic    "SN"            16 bits
//   body_len                 32 bits   bytes in `body`, big-endian
//   body_crc                 32 bits   CRC-32 of the body bytes
//   body:
//     version                 8 bits   kProtocolVersion
//     type                    8 bits   MsgType
//     request_id             varint    echoed verbatim in the response
//     payload                          type-specific (PayloadWriter/Reader)
//
// The CRC covers the whole body, so a flipped bit anywhere in a request is
// reported as a descriptive ParseError — never parsed into a plausible but
// wrong query. Frames are self-delimiting, which is what makes request
// pipelining work: a client may write any number of request frames before
// reading the first response; the server answers strictly in order, echoing
// each request_id.
//
// Error model: header-intact frames whose body fails validation (CRC, version,
// payload shape, service-level errors) get a kError response carrying the
// StatusCode + message; the connection stays usable. A corrupted header
// (magic/length) loses frame synchronization — the decoder poisons itself and
// the server closes that connection after a best-effort error response.
#ifndef SKL_NET_PROTOCOL_H_
#define SKL_NET_PROTOCOL_H_

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/bit_codec.h"
#include "src/common/status.h"

namespace skl {

/// Protocol version carried in every frame body. Bumped on any incompatible
/// change to the frame layout or a payload encoding; servers reject frames
/// outside [kMinSupportedProtocolVersion, kProtocolVersion] with a kError
/// naming both versions (see docs/NETWORK.md).
/// Version 2: the kServiceStats reply grew the result-cache counters
/// (cache_hits, cache_misses) — 13 varints instead of 11.
/// Version 3 (replication, docs/REPLICATION.md): read requests carry a
/// trailing min-LSN token (read-your-writes; a lagging replica answers
/// kRetryAt), mutating replies carry the op's ack LSN, kServiceStats gains
/// applied/target LSNs, and the kSnapshotFetch / kSubscribe opcodes stream
/// the primary's op-log to replicas.
/// Version 4 (epoll reactor server): the kServiceStats reply grew six
/// reactor counters (connections open/accepted/timed-out/backpressured,
/// epoll wakeups, accept backoffs). Unlike the service counters, these
/// describe the server process and do NOT reset on kLoadSnapshot.
/// Version 5 (observability, docs/OBSERVABILITY.md): every request payload
/// carries a trailing client-generated 64-bit trace-id varint (after the
/// v3 read token on reads), echoed as a trailing varint in kError replies
/// to in-range v5 requests and recorded in the server's slow-query log;
/// the kMetrics / kSlowQueries opcodes expose Prometheus text metrics and
/// the slow-query ring buffer.
/// Version 6 (dynamic spec updates, docs/UPDATES.md): the kApplySpecDelta
/// opcode mutates the specification (reply: {new epoch, ack LSN}), the
/// kServiceStats reply grows a trailing spec-epoch varint, and kError can
/// carry StatusCode::kEpochMismatch.
inline constexpr uint8_t kProtocolVersion = 6;

/// Oldest request version the server still dispatches. Version-2 requests
/// are answered in version-2 reply shapes, so pre-replication clients keep
/// working against a version-5 server.
inline constexpr uint8_t kMinSupportedProtocolVersion = 2;

/// First two frame bytes, "SN". A stream that does not start with them is
/// not speaking this protocol.
inline constexpr uint16_t kFrameMagic = 0x534E;

/// Bytes before the body: magic (2) + body_len (4) + body_crc (4).
inline constexpr size_t kFrameHeaderBytes = 10;

/// Default ceiling on body_len. A hostile or corrupted length prefix must
/// bound memory, not commit the peer to a multi-gigabyte allocation.
inline constexpr size_t kDefaultMaxFrameBytes = 64u << 20;  // 64 MiB

/// Message opcodes. Requests map 1:1 onto the ProvenanceService API (plus
/// Ping/Shutdown for liveness and lifecycle); responses are kReply (success,
/// request-specific payload) or kError (StatusCode + message).
enum class MsgType : uint8_t {
  kPing = 1,
  kReaches = 2,
  kReachesBatch = 3,
  kDependsOn = 4,
  kDependsOnBatch = 5,
  kModuleDependsOnData = 6,
  kDataDependsOnModule = 7,
  kAddRun = 8,         ///< payload: run XML
  kImportRun = 9,      ///< payload: ProvenanceStore blob
  kExportRun = 10,     ///< reply payload: ProvenanceStore blob
  kRemoveRun = 11,
  kListRuns = 12,
  kRunStats = 13,      ///< per-run RunStats
  kServiceStats = 14,  ///< service-wide cumulative counters
  kSaveSnapshot = 15,  ///< server-side snapshot save (path on the server)
  kLoadSnapshot = 16,  ///< server-side snapshot load: replaces the service
  kShutdown = 17,      ///< graceful drain-and-shutdown of the whole server
  kSnapshotFetch = 18, ///< v3: reply carries {lsn, snapshot bytes}
  kSubscribe = 19,     ///< v3: {after_lsn, max}; answered by kLogEntries
  kMetrics = 20,       ///< v5: reply carries Prometheus text exposition
  kSlowQueries = 21,   ///< v5: reply carries the slow-query ring buffer
  kApplySpecDelta = 22,  ///< v6: {delta blob}; reply {epoch, ack lsn}

  kReply = 64,
  kError = 65,
  kLogEntries = 66,    ///< v3 kSubscribe response: a batch of op-log entries
  kRetryAt = 67,       ///< v3: replica behind the request's min-LSN token
};

/// Opcode name for logs and error messages ("Reaches", "Error", ...).
const char* MsgTypeName(MsgType type);

/// True for the request opcodes a server dispatches (kPing..kSlowQueries).
bool IsRequestType(uint8_t type);

/// One decoded message. `payload` is the type-specific body remainder.
struct Frame {
  uint8_t version = kProtocolVersion;
  MsgType type = MsgType::kPing;
  uint64_t request_id = 0;
  std::vector<uint8_t> payload;
};

/// Encodes `frame` into the wire format, appending to `*out`.
void EncodeFrame(const Frame& frame, std::vector<uint8_t>* out);

/// Incremental frame decoder over a received byte stream. Feed() bytes as
/// they arrive; Next() yields complete frames in order.
class FrameDecoder {
 public:
  explicit FrameDecoder(size_t max_frame_bytes = kDefaultMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  /// Appends received bytes to the internal buffer.
  void Feed(std::span<const uint8_t> bytes);

  /// Decodes the next frame, if a complete one is buffered.
  ///  - a Frame: header and CRC checked out;
  ///  - std::nullopt: the buffered prefix is incomplete, feed more bytes;
  ///  - ParseError: the stream is corrupt (bad magic, oversized length,
  ///    checksum mismatch). The decoder is then poisoned — frame boundaries
  ///    cannot be recovered, so every later Next() repeats the error and the
  ///    connection must be torn down.
  /// A CRC-intact frame of an unsupported protocol version is returned
  /// normally (the dispatcher answers kError), not treated as corruption.
  Result<std::optional<Frame>> Next();

  /// Bytes buffered but not yet consumed by a decoded frame.
  size_t buffered_bytes() const { return buffer_.size() - consumed_; }

  bool poisoned() const { return poisoned_.has_value(); }

 private:
  size_t max_frame_bytes_;
  std::vector<uint8_t> buffer_;
  size_t consumed_ = 0;  ///< prefix of buffer_ already decoded
  std::optional<Status> poisoned_;
};

/// Appends payload fields in the canonical encodings (varints byte-aligned,
/// blobs length-prefixed). Thin wrapper over BitWriter so request/response
/// payloads are built the same way everywhere.
class PayloadWriter {
 public:
  void U64(uint64_t value) { writer_.WriteVarint(value); }
  void Boolean(bool value) { writer_.Write(value ? 1 : 0, 8); }
  void Bytes(std::span<const uint8_t> bytes) {
    writer_.WriteVarint(bytes.size());
    writer_.WriteBytes(bytes);
  }
  void Str(std::string_view s) {
    Bytes({reinterpret_cast<const uint8_t*>(s.data()), s.size()});
  }
  std::vector<uint8_t> Finish() && { return std::move(writer_).Finish(); }

 private:
  BitWriter writer_;
};

/// Reads back payload fields written by PayloadWriter, every read checked:
/// truncated or trailing payload bytes come back as a descriptive
/// ParseError, never an out-of-bounds read.
class PayloadReader {
 public:
  explicit PayloadReader(std::span<const uint8_t> payload)
      : reader_(payload.data(), payload.size()), size_bytes_(payload.size()) {}

  Result<uint64_t> U64();
  Result<bool> Boolean();
  /// Length-prefixed blob; the span aliases the payload buffer.
  Result<std::span<const uint8_t>> Bytes();
  Result<std::string> Str();
  /// Fails with ParseError if payload bytes remain unconsumed — a shape
  /// mismatch (e.g. a request with extra arguments) must not pass silently.
  Status ExpectEnd();

 private:
  BitReader reader_;
  size_t size_bytes_;
};

/// Encodes a non-OK status as a kError payload (code + message) — the
/// legacy (v2-v4) shape, also used when the failing frame's version is
/// unknown or untrusted (out-of-range version, decoder poison).
std::vector<uint8_t> EncodeErrorPayload(const Status& status);

/// v5 kError payload: code + message + trailing trace-id varint, echoing
/// the trace id the failing request carried (0 when it carried none, e.g.
/// when the payload was too malformed to reach the trace field).
std::vector<uint8_t> EncodeErrorPayload(const Status& status,
                                        uint64_t trace_id);

/// Decodes a kError payload back into the Status it carried; a malformed
/// payload decodes to a ParseError describing the corruption instead. An
/// unknown code (from a future peer) maps to kInternal with the message
/// preserved. Always non-OK.
Status DecodeErrorPayload(std::span<const uint8_t> payload);

/// v5 form: additionally reads the trailing trace-id varint into
/// `*trace_id` (left 0 when the payload is malformed). Use when the error
/// frame's version is >= 5.
Status DecodeErrorPayload(std::span<const uint8_t> payload,
                          uint64_t* trace_id);

/// One slow-query log record (docs/OBSERVABILITY.md): a request whose
/// queue-wait + execute time exceeded the server's slow-query threshold.
/// Lives here because it is also the kSlowQueries reply wire shape: the
/// payload is a count varint followed by the six fields of each entry as
/// varints, in declaration order.
/// `run_id` is the run the request named (0 for run-less opcodes or when
/// the payload was too malformed to carry one); `trace_id` is the client's
/// v5 trace token (0 for v2-v4 requests, which carry none).
struct SlowQueryEntry {
  uint64_t trace_id = 0;
  uint8_t opcode = 0;  ///< raw MsgType value (MsgTypeName prints it)
  uint64_t run_id = 0;
  uint64_t shard = 0;     ///< registry shard owning run_id (0 when run-less)
  uint64_t queue_us = 0;  ///< decoded-to-dequeued wait in the frame queue
  uint64_t exec_us = 0;   ///< dispatch + reply encode
};

}  // namespace skl

#endif  // SKL_NET_PROTOCOL_H_
