#include "src/net/client.h"

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "src/common/random.h"
#include "src/io/workflow_xml.h"

namespace skl {

namespace {

std::string Errno(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

bool SendAll(int fd, std::span<const uint8_t> bytes) {
  size_t off = 0;
  while (off < bytes.size()) {
    ssize_t n = ::send(fd, bytes.data() + off, bytes.size() - off,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

Result<uint32_t> ReadU32(PayloadReader& reader, const char* what) {
  SKL_ASSIGN_OR_RETURN(uint64_t raw, reader.U64());
  if (raw > UINT32_MAX) {
    return Status::ParseError(std::string(what) +
                              " in response does not fit 32 bits");
  }
  return static_cast<uint32_t>(raw);
}

/// Decodes the N-boolean reply shape shared by the batch queries.
Result<std::vector<bool>> DecodeBoolVector(std::span<const uint8_t> payload,
                                           size_t expected) {
  PayloadReader reader(payload);
  SKL_ASSIGN_OR_RETURN(uint64_t count, reader.U64());
  if (count != expected) {
    return Status::ParseError("batch reply answers " + std::to_string(count) +
                              " queries, expected " +
                              std::to_string(expected));
  }
  std::vector<bool> answers;
  answers.reserve(expected);
  for (uint64_t i = 0; i < count; ++i) {
    SKL_ASSIGN_OR_RETURN(bool answer, reader.Boolean());
    answers.push_back(answer);
  }
  SKL_RETURN_NOT_OK(reader.ExpectEnd());
  return answers;
}

Result<bool> DecodeBool(std::span<const uint8_t> payload) {
  PayloadReader reader(payload);
  SKL_ASSIGN_OR_RETURN(bool answer, reader.Boolean());
  SKL_RETURN_NOT_OK(reader.ExpectEnd());
  return answer;
}

Status ExpectEmpty(std::span<const uint8_t> payload) {
  PayloadReader reader(payload);
  return reader.ExpectEnd();
}

/// Dials host:port; returns the connected fd with TCP_NODELAY set.
Result<int> Dial(const std::string& host, uint16_t port) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* addrs = nullptr;
  const std::string port_str = std::to_string(port);
  int rc = ::getaddrinfo(host.c_str(), port_str.c_str(), &hints, &addrs);
  if (rc != 0) {
    return Status::Unavailable("cannot resolve '" + host +
                               "': " + ::gai_strerror(rc));
  }
  int fd = -1;
  std::string last_error = "no addresses for '" + host + "'";
  for (addrinfo* a = addrs; a != nullptr; a = a->ai_next) {
    fd = ::socket(a->ai_family, a->ai_socktype, a->ai_protocol);
    if (fd < 0) {
      last_error = Errno("socket()");
      continue;
    }
    if (::connect(fd, a->ai_addr, a->ai_addrlen) == 0) break;
    last_error = Errno(("connect " + host + ":" + port_str).c_str());
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(addrs);
  if (fd < 0) return Status::Unavailable(last_error);
  // Request frames are small; don't let Nagle hold one back against the
  // server's delayed ACK (the mirror of the server-side setting).
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

}  // namespace

ProvenanceClient::ProvenanceClient(int fd, Options options, std::string host,
                                   uint16_t port)
    : fd_(fd),
      decoder_(options.max_frame_bytes),
      options_(options),
      host_(std::move(host)),
      port_(port) {}

ProvenanceClient::~ProvenanceClient() {
  if (fd_ >= 0) ::close(fd_);
}

ProvenanceClient::ProvenanceClient(ProvenanceClient&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      next_request_id_(other.next_request_id_),
      decoder_(std::move(other.decoder_)),
      broken_(std::move(other.broken_)),
      options_(other.options_),
      host_(std::move(other.host_)),
      port_(other.port_),
      read_lsn_(other.read_lsn_),
      last_write_lsn_(other.last_write_lsn_),
      trace_id_(other.trace_id_) {}

ProvenanceClient& ProvenanceClient::operator=(
    ProvenanceClient&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    next_request_id_ = other.next_request_id_;
    decoder_ = std::move(other.decoder_);
    broken_ = std::move(other.broken_);
    options_ = other.options_;
    host_ = std::move(other.host_);
    port_ = other.port_;
    read_lsn_ = other.read_lsn_;
    last_write_lsn_ = other.last_write_lsn_;
    trace_id_ = other.trace_id_;
  }
  return *this;
}

Result<ProvenanceClient> ProvenanceClient::Connect(const std::string& host,
                                                   uint16_t port,
                                                   size_t max_frame_bytes) {
  Options options;
  options.max_frame_bytes = max_frame_bytes;
  return Connect(host, port, options);
}

Result<ProvenanceClient> ProvenanceClient::Connect(const std::string& host,
                                                   uint16_t port,
                                                   const Options& options) {
  SKL_ASSIGN_OR_RETURN(int fd, Dial(host, port));
  return ProvenanceClient(fd, options, host, port);
}

Result<ProvenanceClient> ProvenanceClient::ConnectHostPort(
    const std::string& host_port, size_t max_frame_bytes) {
  Options options;
  options.max_frame_bytes = max_frame_bytes;
  return ConnectHostPort(host_port, options);
}

Result<ProvenanceClient> ProvenanceClient::ConnectHostPort(
    const std::string& host_port, const Options& options) {
  const size_t colon = host_port.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 == host_port.size()) {
    return Status::InvalidArgument("expected host:port, got '" + host_port +
                                   "'");
  }
  const std::string port_str = host_port.substr(colon + 1);
  char* end = nullptr;
  unsigned long port = std::strtoul(port_str.c_str(), &end, 10);
  if (*end != '\0' || port_str[0] == '-' || port == 0 || port > 65535) {
    return Status::InvalidArgument("port must be in [1, 65535], got '" +
                                   port_str + "'");
  }
  return Connect(host_port.substr(0, colon), static_cast<uint16_t>(port),
                 options);
}

Status ProvenanceClient::Poison(Status status) {
  broken_ = status;
  return status;
}

Status ProvenanceClient::Reconnect() {
  if (host_.empty()) {
    return Status::Unavailable("client has no remembered endpoint");
  }
  Result<int> fd = Dial(host_, port_);
  if (!fd.ok()) return Poison(fd.status());
  if (fd_ >= 0) ::close(fd_);
  fd_ = *fd;
  decoder_ = FrameDecoder(options_.max_frame_bytes);
  next_request_id_ = 1;
  broken_ = Status::OK();
  return Status::OK();
}

Result<uint64_t> ProvenanceClient::Send(MsgType type,
                                        std::vector<uint8_t> payload) {
  if (!broken_.ok()) return broken_;
  if (fd_ < 0) return Status::Unavailable("client is not connected");
  Frame frame;
  frame.type = type;
  frame.request_id = next_request_id_++;
  frame.payload = std::move(payload);
  std::vector<uint8_t> bytes;
  EncodeFrame(frame, &bytes);
  if (!SendAll(fd_, bytes)) {
    return Poison(Status::Unavailable(Errno("send()")));
  }
  return frame.request_id;
}

Result<std::vector<uint8_t>> ProvenanceClient::Receive(uint64_t request_id,
                                                       MsgType expected) {
  if (!broken_.ok()) return broken_;
  uint8_t buf[65536];
  for (;;) {
    Result<std::optional<Frame>> next = decoder_.Next();
    if (!next.ok()) {
      // Framing corruption: the socket's remaining bytes are untrustworthy.
      return Poison(next.status());
    }
    if (next->has_value()) {
      Frame frame = std::move(**next);
      if (frame.request_id != request_id) {
        return Poison(Status::ParseError(
            "response answers request " + std::to_string(frame.request_id) +
            ", expected " + std::to_string(request_id) +
            " (pipelining misuse or desynchronized stream)"));
      }
      if (frame.type == MsgType::kError) {
        // The service-level error; the connection stays usable. v5 error
        // payloads additionally echo the request's trace id.
        if (frame.version >= 5) {
          uint64_t trace = 0;
          return DecodeErrorPayload(frame.payload, &trace);
        }
        return DecodeErrorPayload(frame.payload);
      }
      if (frame.type == MsgType::kRetryAt) {
        // The replica is behind the read token; the connection stays
        // usable — retry here later or read elsewhere (FleetClient does).
        PayloadReader reader(frame.payload);
        SKL_ASSIGN_OR_RETURN(uint64_t applied, reader.U64());
        SKL_RETURN_NOT_OK(reader.ExpectEnd());
        return Status::RetryAt(
            "replica has applied LSN " + std::to_string(applied) +
            ", behind the requested read LSN " + std::to_string(read_lsn_));
      }
      if (frame.type != expected) {
        return Poison(Status::ParseError(
            std::string("peer sent a ") + MsgTypeName(frame.type) +
            " frame where a " + MsgTypeName(expected) +
            " response was expected"));
      }
      return std::move(frame.payload);
    }
    ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0) return Poison(Status::Unavailable(Errno("recv()")));
    if (n == 0) {
      return Poison(
          Status::Unavailable("server closed the connection mid-response"));
    }
    decoder_.Feed({buf, static_cast<size_t>(n)});
  }
}

Result<std::vector<uint8_t>> ProvenanceClient::Call(
    MsgType type, std::vector<uint8_t> payload) {
  SKL_ASSIGN_OR_RETURN(uint64_t id, Send(type, std::move(payload)));
  return Receive(id);
}

Result<std::vector<uint8_t>> ProvenanceClient::CallRead(
    MsgType type, const std::vector<uint8_t>& payload) {
  for (int attempt = 0;; ++attempt) {
    Result<std::vector<uint8_t>> reply = Call(type, payload);
    if (reply.ok() ||
        reply.status().code() != StatusCode::kUnavailable ||
        attempt >= options_.max_read_retries || host_.empty()) {
      return reply;
    }
    // Bounded exponential backoff with jitter: sleep uniformly in
    // [s/2, s], s = min(max, base << attempt). Mix64 keeps the delay
    // deterministic per (seed, attempt) — reproducible tests, and
    // distinct seeds decorrelate a fleet.
    const int shift = attempt < 20 ? attempt : 20;
    const uint64_t s =
        std::min<uint64_t>(options_.backoff_max_ms,
                           static_cast<uint64_t>(options_.backoff_base_ms)
                               << shift);
    const uint64_t half = s / 2;
    const uint64_t span = s - half + 1;
    const uint64_t delay =
        half + Mix64(options_.backoff_seed ^
                     (0x9e3779b97f4a7c15ULL * (attempt + 1))) %
                   span;
    std::this_thread::sleep_for(std::chrono::milliseconds(delay));
    // A failed reconnect leaves the client poisoned; the next Call then
    // fails kUnavailable and the loop either retries or gives up.
    (void)Reconnect();
  }
}

Result<bool> ProvenanceClient::Reaches(RunId id, VertexId v, VertexId w) {
  PayloadWriter req;
  req.U64(id.value());
  req.U64(v);
  req.U64(w);
  req.U64(read_lsn_);
  req.U64(trace_id_);
  SKL_ASSIGN_OR_RETURN(std::vector<uint8_t> reply,
                       CallRead(MsgType::kReaches, std::move(req).Finish()));
  return DecodeBool(reply);
}

Result<std::vector<bool>> ProvenanceClient::ReachesBatch(
    RunId id, std::span<const VertexPair> pairs) {
  PayloadWriter req;
  req.U64(id.value());
  req.U64(pairs.size());
  for (const auto& [v, w] : pairs) {
    req.U64(v);
    req.U64(w);
  }
  req.U64(read_lsn_);
  req.U64(trace_id_);
  SKL_ASSIGN_OR_RETURN(
      std::vector<uint8_t> reply,
      CallRead(MsgType::kReachesBatch, std::move(req).Finish()));
  return DecodeBoolVector(reply, pairs.size());
}

Result<bool> ProvenanceClient::DependsOn(RunId id, DataItemId x,
                                         DataItemId x_from) {
  PayloadWriter req;
  req.U64(id.value());
  req.U64(x);
  req.U64(x_from);
  req.U64(read_lsn_);
  req.U64(trace_id_);
  SKL_ASSIGN_OR_RETURN(
      std::vector<uint8_t> reply,
      CallRead(MsgType::kDependsOn, std::move(req).Finish()));
  return DecodeBool(reply);
}

Result<std::vector<bool>> ProvenanceClient::DependsOnBatch(
    RunId id, std::span<const ItemPair> pairs) {
  PayloadWriter req;
  req.U64(id.value());
  req.U64(pairs.size());
  for (const auto& [x, x_from] : pairs) {
    req.U64(x);
    req.U64(x_from);
  }
  req.U64(read_lsn_);
  req.U64(trace_id_);
  SKL_ASSIGN_OR_RETURN(
      std::vector<uint8_t> reply,
      CallRead(MsgType::kDependsOnBatch, std::move(req).Finish()));
  return DecodeBoolVector(reply, pairs.size());
}

Result<bool> ProvenanceClient::ModuleDependsOnData(RunId id, VertexId v,
                                                   DataItemId x) {
  PayloadWriter req;
  req.U64(id.value());
  req.U64(v);
  req.U64(x);
  req.U64(read_lsn_);
  req.U64(trace_id_);
  SKL_ASSIGN_OR_RETURN(
      std::vector<uint8_t> reply,
      CallRead(MsgType::kModuleDependsOnData, std::move(req).Finish()));
  return DecodeBool(reply);
}

Result<bool> ProvenanceClient::DataDependsOnModule(RunId id, DataItemId x,
                                                   VertexId v) {
  PayloadWriter req;
  req.U64(id.value());
  req.U64(x);
  req.U64(v);
  req.U64(read_lsn_);
  req.U64(trace_id_);
  SKL_ASSIGN_OR_RETURN(
      std::vector<uint8_t> reply,
      CallRead(MsgType::kDataDependsOnModule, std::move(req).Finish()));
  return DecodeBool(reply);
}

/// Decodes the v3 mutating-reply tail: the primary's ack LSN.
Result<RunId> ProvenanceClient::DecodeMutationReply(
    std::span<const uint8_t> payload) {
  PayloadReader reader(payload);
  SKL_ASSIGN_OR_RETURN(uint64_t value, reader.U64());
  SKL_ASSIGN_OR_RETURN(uint64_t lsn, reader.U64());
  SKL_RETURN_NOT_OK(reader.ExpectEnd());
  if (lsn > last_write_lsn_) last_write_lsn_ = lsn;
  return RunId::FromValue(value);
}

Result<RunId> ProvenanceClient::AddRunXml(std::string_view run_xml) {
  PayloadWriter req;
  req.Str(run_xml);
  req.U64(trace_id_);
  SKL_ASSIGN_OR_RETURN(std::vector<uint8_t> reply,
                       Call(MsgType::kAddRun, std::move(req).Finish()));
  return DecodeMutationReply(reply);
}

Result<RunId> ProvenanceClient::AddRun(const Run& run) {
  return AddRunXml(WriteRunXml(run));
}

Result<RunId> ProvenanceClient::ImportRun(const std::vector<uint8_t>& blob) {
  PayloadWriter req;
  req.Bytes(blob);
  req.U64(trace_id_);
  SKL_ASSIGN_OR_RETURN(std::vector<uint8_t> reply,
                       Call(MsgType::kImportRun, std::move(req).Finish()));
  return DecodeMutationReply(reply);
}

Result<std::vector<uint8_t>> ProvenanceClient::ExportRun(RunId id) {
  PayloadWriter req;
  req.U64(id.value());
  req.U64(read_lsn_);
  req.U64(trace_id_);
  SKL_ASSIGN_OR_RETURN(
      std::vector<uint8_t> reply,
      CallRead(MsgType::kExportRun, std::move(req).Finish()));
  PayloadReader reader(reply);
  SKL_ASSIGN_OR_RETURN(std::span<const uint8_t> blob, reader.Bytes());
  SKL_RETURN_NOT_OK(reader.ExpectEnd());
  return std::vector<uint8_t>(blob.begin(), blob.end());
}

Status ProvenanceClient::RemoveRun(RunId id) {
  PayloadWriter req;
  req.U64(id.value());
  req.U64(trace_id_);
  auto reply = Call(MsgType::kRemoveRun, std::move(req).Finish());
  if (!reply.ok()) return reply.status();
  PayloadReader reader(*reply);
  SKL_ASSIGN_OR_RETURN(uint64_t lsn, reader.U64());
  SKL_RETURN_NOT_OK(reader.ExpectEnd());
  if (lsn > last_write_lsn_) last_write_lsn_ = lsn;
  return Status::OK();
}

Result<std::vector<RunId>> ProvenanceClient::ListRuns() {
  PayloadWriter req;
  req.U64(read_lsn_);
  req.U64(trace_id_);
  SKL_ASSIGN_OR_RETURN(
      std::vector<uint8_t> reply,
      CallRead(MsgType::kListRuns, std::move(req).Finish()));
  PayloadReader reader(reply);
  SKL_ASSIGN_OR_RETURN(uint64_t count, reader.U64());
  std::vector<RunId> ids;
  for (uint64_t i = 0; i < count; ++i) {
    SKL_ASSIGN_OR_RETURN(uint64_t value, reader.U64());
    ids.push_back(RunId::FromValue(value));
  }
  SKL_RETURN_NOT_OK(reader.ExpectEnd());
  return ids;
}

Result<RunStats> ProvenanceClient::Stats(RunId id) {
  PayloadWriter req;
  req.U64(id.value());
  req.U64(read_lsn_);
  req.U64(trace_id_);
  SKL_ASSIGN_OR_RETURN(
      std::vector<uint8_t> reply,
      CallRead(MsgType::kRunStats, std::move(req).Finish()));
  PayloadReader reader(reply);
  RunStats stats;
  SKL_ASSIGN_OR_RETURN(stats.num_vertices,
                       ReadU32(reader, "num_vertices"));
  SKL_ASSIGN_OR_RETURN(uint64_t num_items, reader.U64());
  stats.num_items = static_cast<size_t>(num_items);
  SKL_ASSIGN_OR_RETURN(stats.label_bits, ReadU32(reader, "label_bits"));
  SKL_ASSIGN_OR_RETURN(stats.context_bits, ReadU32(reader, "context_bits"));
  SKL_ASSIGN_OR_RETURN(stats.origin_bits, ReadU32(reader, "origin_bits"));
  SKL_ASSIGN_OR_RETURN(stats.num_nonempty_plus,
                       ReadU32(reader, "num_nonempty_plus"));
  SKL_ASSIGN_OR_RETURN(stats.imported, reader.Boolean());
  SKL_RETURN_NOT_OK(reader.ExpectEnd());
  return stats;
}

Result<ServiceStats> ProvenanceClient::GetServiceStats() {
  PayloadWriter req;
  req.U64(trace_id_);
  SKL_ASSIGN_OR_RETURN(
      std::vector<uint8_t> reply,
      CallRead(MsgType::kServiceStats, std::move(req).Finish()));
  PayloadReader reader(reply);
  ServiceStats stats;
  SKL_ASSIGN_OR_RETURN(stats.num_runs, reader.U64());
  SKL_ASSIGN_OR_RETURN(stats.reaches_queries, reader.U64());
  SKL_ASSIGN_OR_RETURN(stats.depends_on_queries, reader.U64());
  SKL_ASSIGN_OR_RETURN(stats.module_data_queries, reader.U64());
  SKL_ASSIGN_OR_RETURN(stats.data_module_queries, reader.U64());
  SKL_ASSIGN_OR_RETURN(stats.batch_calls, reader.U64());
  SKL_ASSIGN_OR_RETURN(stats.runs_ingested, reader.U64());
  SKL_ASSIGN_OR_RETURN(stats.runs_imported, reader.U64());
  SKL_ASSIGN_OR_RETURN(stats.runs_removed, reader.U64());
  SKL_ASSIGN_OR_RETURN(stats.bulk_batches, reader.U64());
  SKL_ASSIGN_OR_RETURN(stats.snapshot_saves, reader.U64());
  SKL_ASSIGN_OR_RETURN(stats.cache_hits, reader.U64());
  SKL_ASSIGN_OR_RETURN(stats.cache_misses, reader.U64());
  SKL_ASSIGN_OR_RETURN(stats.replication_lsn, reader.U64());
  SKL_ASSIGN_OR_RETURN(stats.replication_target_lsn, reader.U64());
  SKL_ASSIGN_OR_RETURN(stats.connections_open, reader.U64());
  SKL_ASSIGN_OR_RETURN(stats.connections_accepted, reader.U64());
  SKL_ASSIGN_OR_RETURN(stats.connections_timed_out, reader.U64());
  SKL_ASSIGN_OR_RETURN(stats.connections_backpressured, reader.U64());
  SKL_ASSIGN_OR_RETURN(stats.epoll_wakeups, reader.U64());
  SKL_ASSIGN_OR_RETURN(stats.accept_backoffs, reader.U64());
  SKL_ASSIGN_OR_RETURN(stats.spec_epoch, reader.U64());
  SKL_RETURN_NOT_OK(reader.ExpectEnd());
  return stats;
}

Result<uint64_t> ProvenanceClient::ApplySpecDelta(const SpecDelta& delta) {
  PayloadWriter req;
  req.Bytes(SerializeSpecDelta(delta));
  req.U64(trace_id_);
  SKL_ASSIGN_OR_RETURN(
      std::vector<uint8_t> reply,
      Call(MsgType::kApplySpecDelta, std::move(req).Finish()));
  // Same shape as every mutating reply: the value, then the ack LSN.
  SKL_ASSIGN_OR_RETURN(RunId epoch_as_id, DecodeMutationReply(reply));
  return epoch_as_id.value();
}

Status ProvenanceClient::SaveSnapshot(const std::string& path) {
  PayloadWriter req;
  req.Str(path);
  req.U64(trace_id_);
  auto reply = Call(MsgType::kSaveSnapshot, std::move(req).Finish());
  if (!reply.ok()) return reply.status();
  return ExpectEmpty(*reply);
}

Status ProvenanceClient::LoadSnapshot(const std::string& path) {
  PayloadWriter req;
  req.Str(path);
  req.U64(trace_id_);
  auto reply = Call(MsgType::kLoadSnapshot, std::move(req).Finish());
  if (!reply.ok()) return reply.status();
  return ExpectEmpty(*reply);
}

Status ProvenanceClient::Ping() {
  PayloadWriter req;
  req.U64(trace_id_);
  auto reply = Call(MsgType::kPing, std::move(req).Finish());
  if (!reply.ok()) return reply.status();
  return ExpectEmpty(*reply);
}

Status ProvenanceClient::Shutdown() {
  PayloadWriter req;
  req.U64(trace_id_);
  auto reply = Call(MsgType::kShutdown, std::move(req).Finish());
  if (!reply.ok()) return reply.status();
  return ExpectEmpty(*reply);
}

Result<SnapshotFetchResult> ProvenanceClient::SnapshotFetch() {
  PayloadWriter req;
  req.U64(trace_id_);
  SKL_ASSIGN_OR_RETURN(
      std::vector<uint8_t> reply,
      Call(MsgType::kSnapshotFetch, std::move(req).Finish()));
  PayloadReader reader(reply);
  SnapshotFetchResult result;
  SKL_ASSIGN_OR_RETURN(result.lsn, reader.U64());
  SKL_ASSIGN_OR_RETURN(std::span<const uint8_t> bytes, reader.Bytes());
  SKL_RETURN_NOT_OK(reader.ExpectEnd());
  result.bytes.assign(bytes.begin(), bytes.end());
  return result;
}

Result<LogBatch> ProvenanceClient::Subscribe(uint64_t after_lsn,
                                             uint64_t max_entries) {
  PayloadWriter req;
  req.U64(after_lsn);
  req.U64(max_entries);
  req.U64(trace_id_);
  SKL_ASSIGN_OR_RETURN(uint64_t id,
                       Send(MsgType::kSubscribe, std::move(req).Finish()));
  SKL_ASSIGN_OR_RETURN(std::vector<uint8_t> reply,
                       Receive(id, MsgType::kLogEntries));
  PayloadReader reader(reply);
  SKL_ASSIGN_OR_RETURN(uint64_t count, reader.U64());
  LogBatch batch;
  batch.ops.reserve(count);
  uint64_t expected_lsn = after_lsn;
  for (uint64_t i = 0; i < count; ++i) {
    SKL_ASSIGN_OR_RETURN(std::span<const uint8_t> entry, reader.Bytes());
    SKL_ASSIGN_OR_RETURN(LogOp op, DeserializeLogOp(entry));
    // The batch must be a contiguous LSN run starting just past
    // after_lsn — anything else means the primary's log disagrees with
    // what this replica already applied.
    ++expected_lsn;
    if (op.lsn != expected_lsn) {
      return Status::ParseError(
          "subscribe batch entry " + std::to_string(i) + " carries LSN " +
          std::to_string(op.lsn) + ", expected " +
          std::to_string(expected_lsn));
    }
    batch.ops.push_back(std::move(op));
  }
  SKL_ASSIGN_OR_RETURN(batch.primary_last_lsn, reader.U64());
  SKL_RETURN_NOT_OK(reader.ExpectEnd());
  return batch;
}

Result<std::string> ProvenanceClient::GetMetrics() {
  PayloadWriter req;
  req.U64(trace_id_);
  SKL_ASSIGN_OR_RETURN(
      std::vector<uint8_t> reply,
      CallRead(MsgType::kMetrics, std::move(req).Finish()));
  PayloadReader reader(reply);
  SKL_ASSIGN_OR_RETURN(std::string text, reader.Str());
  SKL_RETURN_NOT_OK(reader.ExpectEnd());
  return text;
}

Result<std::vector<SlowQueryEntry>> ProvenanceClient::SlowQueries() {
  PayloadWriter req;
  req.U64(trace_id_);
  SKL_ASSIGN_OR_RETURN(
      std::vector<uint8_t> reply,
      CallRead(MsgType::kSlowQueries, std::move(req).Finish()));
  PayloadReader reader(reply);
  SKL_ASSIGN_OR_RETURN(uint64_t count, reader.U64());
  std::vector<SlowQueryEntry> entries;
  entries.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    SlowQueryEntry e;
    SKL_ASSIGN_OR_RETURN(e.trace_id, reader.U64());
    SKL_ASSIGN_OR_RETURN(uint64_t opcode, reader.U64());
    if (opcode > UINT8_MAX) {
      return Status::ParseError("slow-query entry opcode does not fit 8 bits");
    }
    e.opcode = static_cast<uint8_t>(opcode);
    SKL_ASSIGN_OR_RETURN(e.run_id, reader.U64());
    SKL_ASSIGN_OR_RETURN(e.shard, reader.U64());
    SKL_ASSIGN_OR_RETURN(e.queue_us, reader.U64());
    SKL_ASSIGN_OR_RETURN(e.exec_us, reader.U64());
    entries.push_back(e);
  }
  SKL_RETURN_NOT_OK(reader.ExpectEnd());
  return entries;
}

Result<std::vector<bool>> ProvenanceClient::PipelinedBools(
    MsgType type, uint64_t run,
    std::span<const std::pair<uint32_t, uint32_t>> pairs) {
  if (!broken_.ok()) return broken_;
  if (fd_ < 0) return Status::Unavailable("client is not connected");
  // The in-flight window is bounded: with both peers single-threaded per
  // connection, writing an unbounded batch before reading any response
  // can fill the socket buffers in both directions and deadlock (the
  // server blocks sending responses we are not reading, we block sending
  // requests it is not receiving). 512 frames is far below that threshold
  // and already amortizes the round trip away.
  constexpr size_t kWindow = 512;
  std::vector<bool> answers;
  answers.reserve(pairs.size());
  Status first_error = Status::OK();
  std::vector<uint8_t> wire;
  for (size_t off = 0; off < pairs.size(); off += kWindow) {
    const size_t len = std::min(kWindow, pairs.size() - off);
    const uint64_t first_id = next_request_id_;
    wire.clear();
    for (size_t i = 0; i < len; ++i) {
      Frame frame;
      frame.type = type;
      frame.request_id = next_request_id_++;
      PayloadWriter req;
      req.U64(run);
      req.U64(pairs[off + i].first);
      req.U64(pairs[off + i].second);
      req.U64(read_lsn_);
      req.U64(trace_id_);
      frame.payload = std::move(req).Finish();
      EncodeFrame(frame, &wire);
    }
    if (!SendAll(fd_, wire)) {
      return Poison(Status::Unavailable(Errno("send()")));
    }
    // Responses come back strictly in order. On a per-query error, keep
    // draining the window so the connection stays usable, then report the
    // first error after all windows flushed.
    for (size_t i = 0; i < len; ++i) {
      auto reply = Receive(first_id + i);
      if (!reply.ok()) {
        if (!broken_.ok()) return reply.status();  // transport: stop now
        if (first_error.ok()) first_error = reply.status();
        continue;
      }
      if (first_error.ok()) {
        auto answer = DecodeBool(*reply);
        if (!answer.ok()) {
          first_error = answer.status();
          continue;
        }
        answers.push_back(*answer);
      }
    }
  }
  if (!first_error.ok()) return first_error;
  return answers;
}

Result<std::vector<bool>> ProvenanceClient::ReachesPipelined(
    RunId id, std::span<const VertexPair> pairs) {
  return PipelinedBools(MsgType::kReaches, id.value(), pairs);
}

Result<std::vector<bool>> ProvenanceClient::DependsOnPipelined(
    RunId id, std::span<const ItemPair> pairs) {
  return PipelinedBools(MsgType::kDependsOn, id.value(), pairs);
}

}  // namespace skl
