#include "src/net/client.h"

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "src/io/workflow_xml.h"

namespace skl {

namespace {

std::string Errno(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

bool SendAll(int fd, std::span<const uint8_t> bytes) {
  size_t off = 0;
  while (off < bytes.size()) {
    ssize_t n = ::send(fd, bytes.data() + off, bytes.size() - off,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

Result<uint32_t> ReadU32(PayloadReader& reader, const char* what) {
  SKL_ASSIGN_OR_RETURN(uint64_t raw, reader.U64());
  if (raw > UINT32_MAX) {
    return Status::ParseError(std::string(what) +
                              " in response does not fit 32 bits");
  }
  return static_cast<uint32_t>(raw);
}

/// Decodes the N-boolean reply shape shared by the batch queries.
Result<std::vector<bool>> DecodeBoolVector(std::span<const uint8_t> payload,
                                           size_t expected) {
  PayloadReader reader(payload);
  SKL_ASSIGN_OR_RETURN(uint64_t count, reader.U64());
  if (count != expected) {
    return Status::ParseError("batch reply answers " + std::to_string(count) +
                              " queries, expected " +
                              std::to_string(expected));
  }
  std::vector<bool> answers;
  answers.reserve(expected);
  for (uint64_t i = 0; i < count; ++i) {
    SKL_ASSIGN_OR_RETURN(bool answer, reader.Boolean());
    answers.push_back(answer);
  }
  SKL_RETURN_NOT_OK(reader.ExpectEnd());
  return answers;
}

Result<bool> DecodeBool(std::span<const uint8_t> payload) {
  PayloadReader reader(payload);
  SKL_ASSIGN_OR_RETURN(bool answer, reader.Boolean());
  SKL_RETURN_NOT_OK(reader.ExpectEnd());
  return answer;
}

Result<RunId> DecodeRunId(std::span<const uint8_t> payload) {
  PayloadReader reader(payload);
  SKL_ASSIGN_OR_RETURN(uint64_t value, reader.U64());
  SKL_RETURN_NOT_OK(reader.ExpectEnd());
  return RunId::FromValue(value);
}

Status ExpectEmpty(std::span<const uint8_t> payload) {
  PayloadReader reader(payload);
  return reader.ExpectEnd();
}

}  // namespace

ProvenanceClient::ProvenanceClient(int fd, size_t max_frame_bytes)
    : fd_(fd), decoder_(max_frame_bytes) {}

ProvenanceClient::~ProvenanceClient() {
  if (fd_ >= 0) ::close(fd_);
}

ProvenanceClient::ProvenanceClient(ProvenanceClient&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      next_request_id_(other.next_request_id_),
      decoder_(std::move(other.decoder_)),
      broken_(std::move(other.broken_)) {}

ProvenanceClient& ProvenanceClient::operator=(
    ProvenanceClient&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    next_request_id_ = other.next_request_id_;
    decoder_ = std::move(other.decoder_);
    broken_ = std::move(other.broken_);
  }
  return *this;
}

Result<ProvenanceClient> ProvenanceClient::Connect(const std::string& host,
                                                   uint16_t port,
                                                   size_t max_frame_bytes) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* addrs = nullptr;
  const std::string port_str = std::to_string(port);
  int rc = ::getaddrinfo(host.c_str(), port_str.c_str(), &hints, &addrs);
  if (rc != 0) {
    return Status::Unavailable("cannot resolve '" + host +
                               "': " + ::gai_strerror(rc));
  }
  int fd = -1;
  std::string last_error = "no addresses for '" + host + "'";
  for (addrinfo* a = addrs; a != nullptr; a = a->ai_next) {
    fd = ::socket(a->ai_family, a->ai_socktype, a->ai_protocol);
    if (fd < 0) {
      last_error = Errno("socket()");
      continue;
    }
    if (::connect(fd, a->ai_addr, a->ai_addrlen) == 0) break;
    last_error = Errno(("connect " + host + ":" + port_str).c_str());
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(addrs);
  if (fd < 0) return Status::Unavailable(last_error);
  // Request frames are small; don't let Nagle hold one back against the
  // server's delayed ACK (the mirror of the server-side setting).
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return ProvenanceClient(fd, max_frame_bytes);
}

Result<ProvenanceClient> ProvenanceClient::ConnectHostPort(
    const std::string& host_port, size_t max_frame_bytes) {
  const size_t colon = host_port.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 == host_port.size()) {
    return Status::InvalidArgument("expected host:port, got '" + host_port +
                                   "'");
  }
  const std::string port_str = host_port.substr(colon + 1);
  char* end = nullptr;
  unsigned long port = std::strtoul(port_str.c_str(), &end, 10);
  if (*end != '\0' || port_str[0] == '-' || port == 0 || port > 65535) {
    return Status::InvalidArgument("port must be in [1, 65535], got '" +
                                   port_str + "'");
  }
  return Connect(host_port.substr(0, colon), static_cast<uint16_t>(port),
                 max_frame_bytes);
}

Status ProvenanceClient::Poison(Status status) {
  broken_ = status;
  return status;
}

Result<uint64_t> ProvenanceClient::Send(MsgType type,
                                        std::vector<uint8_t> payload) {
  if (!broken_.ok()) return broken_;
  if (fd_ < 0) return Status::Unavailable("client is not connected");
  Frame frame;
  frame.type = type;
  frame.request_id = next_request_id_++;
  frame.payload = std::move(payload);
  std::vector<uint8_t> bytes;
  EncodeFrame(frame, &bytes);
  if (!SendAll(fd_, bytes)) {
    return Poison(Status::Unavailable(Errno("send()")));
  }
  return frame.request_id;
}

Result<std::vector<uint8_t>> ProvenanceClient::Receive(uint64_t request_id) {
  if (!broken_.ok()) return broken_;
  uint8_t buf[65536];
  for (;;) {
    Result<std::optional<Frame>> next = decoder_.Next();
    if (!next.ok()) {
      // Framing corruption: the socket's remaining bytes are untrustworthy.
      return Poison(next.status());
    }
    if (next->has_value()) {
      Frame frame = std::move(**next);
      if (frame.request_id != request_id) {
        return Poison(Status::ParseError(
            "response answers request " + std::to_string(frame.request_id) +
            ", expected " + std::to_string(request_id) +
            " (pipelining misuse or desynchronized stream)"));
      }
      if (frame.type == MsgType::kError) {
        // The service-level error; the connection stays usable.
        return DecodeErrorPayload(frame.payload);
      }
      if (frame.type != MsgType::kReply) {
        return Poison(Status::ParseError(
            std::string("peer sent a ") + MsgTypeName(frame.type) +
            " frame where a response was expected"));
      }
      return std::move(frame.payload);
    }
    ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0) return Poison(Status::Unavailable(Errno("recv()")));
    if (n == 0) {
      return Poison(
          Status::Unavailable("server closed the connection mid-response"));
    }
    decoder_.Feed({buf, static_cast<size_t>(n)});
  }
}

Result<std::vector<uint8_t>> ProvenanceClient::Call(
    MsgType type, std::vector<uint8_t> payload) {
  SKL_ASSIGN_OR_RETURN(uint64_t id, Send(type, std::move(payload)));
  return Receive(id);
}

Result<bool> ProvenanceClient::Reaches(RunId id, VertexId v, VertexId w) {
  PayloadWriter req;
  req.U64(id.value());
  req.U64(v);
  req.U64(w);
  SKL_ASSIGN_OR_RETURN(std::vector<uint8_t> reply,
                       Call(MsgType::kReaches, std::move(req).Finish()));
  return DecodeBool(reply);
}

Result<std::vector<bool>> ProvenanceClient::ReachesBatch(
    RunId id, std::span<const VertexPair> pairs) {
  PayloadWriter req;
  req.U64(id.value());
  req.U64(pairs.size());
  for (const auto& [v, w] : pairs) {
    req.U64(v);
    req.U64(w);
  }
  SKL_ASSIGN_OR_RETURN(std::vector<uint8_t> reply,
                       Call(MsgType::kReachesBatch, std::move(req).Finish()));
  return DecodeBoolVector(reply, pairs.size());
}

Result<bool> ProvenanceClient::DependsOn(RunId id, DataItemId x,
                                         DataItemId x_from) {
  PayloadWriter req;
  req.U64(id.value());
  req.U64(x);
  req.U64(x_from);
  SKL_ASSIGN_OR_RETURN(std::vector<uint8_t> reply,
                       Call(MsgType::kDependsOn, std::move(req).Finish()));
  return DecodeBool(reply);
}

Result<std::vector<bool>> ProvenanceClient::DependsOnBatch(
    RunId id, std::span<const ItemPair> pairs) {
  PayloadWriter req;
  req.U64(id.value());
  req.U64(pairs.size());
  for (const auto& [x, x_from] : pairs) {
    req.U64(x);
    req.U64(x_from);
  }
  SKL_ASSIGN_OR_RETURN(
      std::vector<uint8_t> reply,
      Call(MsgType::kDependsOnBatch, std::move(req).Finish()));
  return DecodeBoolVector(reply, pairs.size());
}

Result<bool> ProvenanceClient::ModuleDependsOnData(RunId id, VertexId v,
                                                   DataItemId x) {
  PayloadWriter req;
  req.U64(id.value());
  req.U64(v);
  req.U64(x);
  SKL_ASSIGN_OR_RETURN(
      std::vector<uint8_t> reply,
      Call(MsgType::kModuleDependsOnData, std::move(req).Finish()));
  return DecodeBool(reply);
}

Result<bool> ProvenanceClient::DataDependsOnModule(RunId id, DataItemId x,
                                                   VertexId v) {
  PayloadWriter req;
  req.U64(id.value());
  req.U64(x);
  req.U64(v);
  SKL_ASSIGN_OR_RETURN(
      std::vector<uint8_t> reply,
      Call(MsgType::kDataDependsOnModule, std::move(req).Finish()));
  return DecodeBool(reply);
}

Result<RunId> ProvenanceClient::AddRunXml(std::string_view run_xml) {
  PayloadWriter req;
  req.Str(run_xml);
  SKL_ASSIGN_OR_RETURN(std::vector<uint8_t> reply,
                       Call(MsgType::kAddRun, std::move(req).Finish()));
  return DecodeRunId(reply);
}

Result<RunId> ProvenanceClient::AddRun(const Run& run) {
  return AddRunXml(WriteRunXml(run));
}

Result<RunId> ProvenanceClient::ImportRun(const std::vector<uint8_t>& blob) {
  PayloadWriter req;
  req.Bytes(blob);
  SKL_ASSIGN_OR_RETURN(std::vector<uint8_t> reply,
                       Call(MsgType::kImportRun, std::move(req).Finish()));
  return DecodeRunId(reply);
}

Result<std::vector<uint8_t>> ProvenanceClient::ExportRun(RunId id) {
  PayloadWriter req;
  req.U64(id.value());
  SKL_ASSIGN_OR_RETURN(std::vector<uint8_t> reply,
                       Call(MsgType::kExportRun, std::move(req).Finish()));
  PayloadReader reader(reply);
  SKL_ASSIGN_OR_RETURN(std::span<const uint8_t> blob, reader.Bytes());
  SKL_RETURN_NOT_OK(reader.ExpectEnd());
  return std::vector<uint8_t>(blob.begin(), blob.end());
}

Status ProvenanceClient::RemoveRun(RunId id) {
  PayloadWriter req;
  req.U64(id.value());
  auto reply = Call(MsgType::kRemoveRun, std::move(req).Finish());
  if (!reply.ok()) return reply.status();
  return ExpectEmpty(*reply);
}

Result<std::vector<RunId>> ProvenanceClient::ListRuns() {
  SKL_ASSIGN_OR_RETURN(std::vector<uint8_t> reply,
                       Call(MsgType::kListRuns, {}));
  PayloadReader reader(reply);
  SKL_ASSIGN_OR_RETURN(uint64_t count, reader.U64());
  std::vector<RunId> ids;
  for (uint64_t i = 0; i < count; ++i) {
    SKL_ASSIGN_OR_RETURN(uint64_t value, reader.U64());
    ids.push_back(RunId::FromValue(value));
  }
  SKL_RETURN_NOT_OK(reader.ExpectEnd());
  return ids;
}

Result<RunStats> ProvenanceClient::Stats(RunId id) {
  PayloadWriter req;
  req.U64(id.value());
  SKL_ASSIGN_OR_RETURN(std::vector<uint8_t> reply,
                       Call(MsgType::kRunStats, std::move(req).Finish()));
  PayloadReader reader(reply);
  RunStats stats;
  SKL_ASSIGN_OR_RETURN(stats.num_vertices,
                       ReadU32(reader, "num_vertices"));
  SKL_ASSIGN_OR_RETURN(uint64_t num_items, reader.U64());
  stats.num_items = static_cast<size_t>(num_items);
  SKL_ASSIGN_OR_RETURN(stats.label_bits, ReadU32(reader, "label_bits"));
  SKL_ASSIGN_OR_RETURN(stats.context_bits, ReadU32(reader, "context_bits"));
  SKL_ASSIGN_OR_RETURN(stats.origin_bits, ReadU32(reader, "origin_bits"));
  SKL_ASSIGN_OR_RETURN(stats.num_nonempty_plus,
                       ReadU32(reader, "num_nonempty_plus"));
  SKL_ASSIGN_OR_RETURN(stats.imported, reader.Boolean());
  SKL_RETURN_NOT_OK(reader.ExpectEnd());
  return stats;
}

Result<ServiceStats> ProvenanceClient::GetServiceStats() {
  SKL_ASSIGN_OR_RETURN(std::vector<uint8_t> reply,
                       Call(MsgType::kServiceStats, {}));
  PayloadReader reader(reply);
  ServiceStats stats;
  SKL_ASSIGN_OR_RETURN(stats.num_runs, reader.U64());
  SKL_ASSIGN_OR_RETURN(stats.reaches_queries, reader.U64());
  SKL_ASSIGN_OR_RETURN(stats.depends_on_queries, reader.U64());
  SKL_ASSIGN_OR_RETURN(stats.module_data_queries, reader.U64());
  SKL_ASSIGN_OR_RETURN(stats.data_module_queries, reader.U64());
  SKL_ASSIGN_OR_RETURN(stats.batch_calls, reader.U64());
  SKL_ASSIGN_OR_RETURN(stats.runs_ingested, reader.U64());
  SKL_ASSIGN_OR_RETURN(stats.runs_imported, reader.U64());
  SKL_ASSIGN_OR_RETURN(stats.runs_removed, reader.U64());
  SKL_ASSIGN_OR_RETURN(stats.bulk_batches, reader.U64());
  SKL_ASSIGN_OR_RETURN(stats.snapshot_saves, reader.U64());
  SKL_ASSIGN_OR_RETURN(stats.cache_hits, reader.U64());
  SKL_ASSIGN_OR_RETURN(stats.cache_misses, reader.U64());
  SKL_RETURN_NOT_OK(reader.ExpectEnd());
  return stats;
}

Status ProvenanceClient::SaveSnapshot(const std::string& path) {
  PayloadWriter req;
  req.Str(path);
  auto reply = Call(MsgType::kSaveSnapshot, std::move(req).Finish());
  if (!reply.ok()) return reply.status();
  return ExpectEmpty(*reply);
}

Status ProvenanceClient::LoadSnapshot(const std::string& path) {
  PayloadWriter req;
  req.Str(path);
  auto reply = Call(MsgType::kLoadSnapshot, std::move(req).Finish());
  if (!reply.ok()) return reply.status();
  return ExpectEmpty(*reply);
}

Status ProvenanceClient::Ping() {
  auto reply = Call(MsgType::kPing, {});
  if (!reply.ok()) return reply.status();
  return ExpectEmpty(*reply);
}

Status ProvenanceClient::Shutdown() {
  auto reply = Call(MsgType::kShutdown, {});
  if (!reply.ok()) return reply.status();
  return ExpectEmpty(*reply);
}

Result<std::vector<bool>> ProvenanceClient::PipelinedBools(
    MsgType type, uint64_t run,
    std::span<const std::pair<uint32_t, uint32_t>> pairs) {
  if (!broken_.ok()) return broken_;
  if (fd_ < 0) return Status::Unavailable("client is not connected");
  // The in-flight window is bounded: with both peers single-threaded per
  // connection, writing an unbounded batch before reading any response
  // can fill the socket buffers in both directions and deadlock (the
  // server blocks sending responses we are not reading, we block sending
  // requests it is not receiving). 512 frames is far below that threshold
  // and already amortizes the round trip away.
  constexpr size_t kWindow = 512;
  std::vector<bool> answers;
  answers.reserve(pairs.size());
  Status first_error = Status::OK();
  std::vector<uint8_t> wire;
  for (size_t off = 0; off < pairs.size(); off += kWindow) {
    const size_t len = std::min(kWindow, pairs.size() - off);
    const uint64_t first_id = next_request_id_;
    wire.clear();
    for (size_t i = 0; i < len; ++i) {
      Frame frame;
      frame.type = type;
      frame.request_id = next_request_id_++;
      PayloadWriter req;
      req.U64(run);
      req.U64(pairs[off + i].first);
      req.U64(pairs[off + i].second);
      frame.payload = std::move(req).Finish();
      EncodeFrame(frame, &wire);
    }
    if (!SendAll(fd_, wire)) {
      return Poison(Status::Unavailable(Errno("send()")));
    }
    // Responses come back strictly in order. On a per-query error, keep
    // draining the window so the connection stays usable, then report the
    // first error after all windows flushed.
    for (size_t i = 0; i < len; ++i) {
      auto reply = Receive(first_id + i);
      if (!reply.ok()) {
        if (!broken_.ok()) return reply.status();  // transport: stop now
        if (first_error.ok()) first_error = reply.status();
        continue;
      }
      if (first_error.ok()) {
        auto answer = DecodeBool(*reply);
        if (!answer.ok()) {
          first_error = answer.status();
          continue;
        }
        answers.push_back(*answer);
      }
    }
  }
  if (!first_error.ok()) return first_error;
  return answers;
}

Result<std::vector<bool>> ProvenanceClient::ReachesPipelined(
    RunId id, std::span<const VertexPair> pairs) {
  return PipelinedBools(MsgType::kReaches, id.value(), pairs);
}

Result<std::vector<bool>> ProvenanceClient::DependsOnPipelined(
    RunId id, std::span<const ItemPair> pairs) {
  return PipelinedBools(MsgType::kDependsOn, id.value(), pairs);
}

}  // namespace skl
