// ProvenanceServer: serves a ProvenanceService to other processes over TCP
// using the framed wire protocol (src/net/protocol.h, docs/NETWORK.md).
//
//   auto svc = *ProvenanceService::Create(std::move(spec), kind);
//   auto server = *ProvenanceServer::Start(std::move(svc), {.port = 0});
//   std::printf("serving on 127.0.0.1:%u\n", server->port());
//   server->Wait();  // until a Shutdown frame (or Shutdown() elsewhere)
//
// Threading model: one dedicated accept thread; each accepted connection is
// handled by a task on an skl::ThreadPool (Options::num_threads workers), so
// at most num_threads connections make progress at once and the rest queue.
// Within a connection, requests are answered strictly in order — but the
// client may pipeline: any number of request frames can be in flight before
// the first response is read, and the server drains every complete frame it
// has buffered before blocking on the socket again.
//
// Error model (the per-request Status mapping): a header-intact frame whose
// payload is malformed, or whose request fails in the service, produces a
// kError response carrying the StatusCode + message — the connection stays
// open and later requests keep working. Only a corrupted frame *header*
// (bad magic or length), which loses frame synchronization irrecoverably,
// makes the server answer with a best-effort kError and close that one
// connection. No input can crash the server or take down other connections.
//
// Shutdown: a kShutdown frame (or Shutdown()) stops the accept loop, nudges
// every idle connection, lets in-flight requests finish and their responses
// flush, then joins — the graceful drain the CI smoke job exercises.
#ifndef SKL_NET_SERVER_H_
#define SKL_NET_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "src/common/status.h"
#include "src/common/thread_pool.h"
#include "src/core/provenance_service.h"
#include "src/net/protocol.h"

namespace skl {

/// Server knobs, fixed at Start time. (Namespace-scope so it can be
/// brace-defaulted; spelled ProvenanceServer::Options at call sites.)
struct ProvenanceServerOptions {
  /// TCP port to listen on; 0 picks an ephemeral port (read it back from
  /// ProvenanceServer::port()).
  uint16_t port = 0;
  /// Listen address. Loopback by default: serving beyond the host is a
  /// deployment decision (see docs/NETWORK.md) — pass "0.0.0.0" explicitly.
  std::string bind_address = "127.0.0.1";
  /// Connection-handler pool size: the number of connections that can make
  /// progress concurrently. 0 = one per hardware thread. The default is 8,
  /// not 0, because a handler occupies its worker for the connection's
  /// whole lifetime — sizing by core count would cap concurrent clients at
  /// 1 on small machines.
  unsigned num_threads = 8;
  /// Per-frame size ceiling, bounding what one request can make the server
  /// buffer (AddRun XML and ImportRun blobs included).
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Primary-side replication (docs/REPLICATION.md): the op-log this
  /// server's service appends to. Borrowed — must outlive the server. When
  /// set, kSnapshotFetch / kSubscribe serve replica bootstrap and tailing,
  /// and a kLoadSnapshot swap re-attaches the log and appends a barrier.
  OpLog* oplog = nullptr;
  /// Replica mode: mutating opcodes (kAddRun, kImportRun, kRemoveRun,
  /// kLoadSnapshot) are refused with InvalidArgument; the replication
  /// tailer mutates the service directly via WithServiceShared instead.
  /// kShutdown and kSaveSnapshot stay allowed (operational, not
  /// replicated).
  bool read_only = false;
};

/// A TCP server owning one ProvenanceService. Non-movable (threads hold
/// `this`), so Start returns it behind a unique_ptr.
class ProvenanceServer {
 public:
  using Options = ProvenanceServerOptions;

  /// Binds, listens and starts accepting. The service is moved in; all
  /// mutation from then on happens through request frames (or through
  /// service(), see below).
  static Result<std::unique_ptr<ProvenanceServer>> Start(
      ProvenanceService service, Options options = {});

  /// Blocking graceful shutdown (idempotent, callable from any non-handler
  /// thread): stop accepting, drain in-flight requests, join everything.
  ~ProvenanceServer();
  void Shutdown();

  /// Non-blocking shutdown trigger: stops the accept loop and nudges idle
  /// connections, but does not wait. The kShutdown handler uses this (a
  /// handler cannot join the machinery it runs on); pair with Wait().
  void BeginShutdown();

  /// Blocks until a shutdown (BeginShutdown/Shutdown/kShutdown frame) has
  /// completed its drain: no accept loop, no open connections.
  void Wait();

  ProvenanceServer(const ProvenanceServer&) = delete;
  ProvenanceServer& operator=(const ProvenanceServer&) = delete;

  /// Port actually bound (resolves port 0).
  uint16_t port() const { return port_; }
  const Options& options() const { return options_; }

  /// The served service. Safe to query concurrently with request handling
  /// (the service is internally synchronized) — but not concurrently with a
  /// kLoadSnapshot frame, which replaces the object. Tests use this to
  /// compare remote answers against direct ones.
  const ProvenanceService& service() const { return service_; }

  /// Replica bookkeeping (docs/REPLICATION.md): the LSN the replica has
  /// applied (what min-LSN read tokens are checked against) and the
  /// primary's last known LSN (the lag denominator in kServiceStats). A
  /// primary ignores these — its applied LSN is its op-log head.
  void SetReplicationLsns(uint64_t applied_lsn, uint64_t target_lsn);

  /// Swaps in a new service under the exclusive service lock — the replica
  /// re-bootstrap path (a kSnapshotBarrier arrived in the op stream). The
  /// configured op-log, if any, is re-attached to the new service.
  void ReplaceService(ProvenanceService service);

  /// Runs `fn` on the served service under the shared service lock: safe
  /// against a concurrent ReplaceService/kLoadSnapshot swap, concurrent
  /// with request handling (the service is internally synchronized). The
  /// replication tailer applies shipped ops through this.
  void WithServiceShared(const std::function<void(ProvenanceService&)>& fn);

 private:
  ProvenanceServer(ProvenanceService service, Options options);

  Status Listen();
  void AcceptLoop();
  void HandleConnection(int fd);

  /// Dispatches one decoded request frame, appending the encoded response
  /// frame to *out (the connection's batched write buffer); sets
  /// *shutdown_after_reply for kShutdown.
  void HandleFrame(const Frame& frame, std::vector<uint8_t>* out,
                   bool* shutdown_after_reply);

  /// Request-type switch: decodes the payload, calls the service, encodes
  /// the reply payload. Caller holds service_mu_ (unique for LoadSnapshot,
  /// shared otherwise) and maps errors onto a kError response. The reply is
  /// kReply unless the case overrides *reply_type (kLogEntries for
  /// kSubscribe, kRetryAt for a read whose min-LSN token is ahead of the
  /// applied LSN). Version-2 requests get version-2 reply shapes — no LSN
  /// fields.
  Result<std::vector<uint8_t>> Dispatch(const Frame& frame,
                                        bool* shutdown_after_reply,
                                        MsgType* reply_type);

  /// The LSN reads are served at: the op-log head on a primary (appends
  /// ack only after the log has the op, so it is never behind a handed-out
  /// token), the tailer-reported applied LSN on a replica.
  uint64_t CurrentAppliedLsn() const;

  /// Registers/unregisters a connection fd with the drain bookkeeping.
  bool RegisterConnection(int fd);  ///< false once shutdown began
  void UnregisterConnection(int fd);

  Options options_;
  uint16_t port_ = 0;
  int listen_fd_ = -1;

  // service_mu_ lets kLoadSnapshot swap the whole service object while no
  // request is mid-dispatch: every handler takes it shared, the load
  // handler takes it unique. All other synchronization is inside the
  // service itself.
  std::shared_mutex service_mu_;
  ProvenanceService service_;

  ThreadPool pool_;
  std::thread accept_thread_;

  std::mutex state_mu_;
  std::condition_variable drained_cv_;
  bool stop_ = false;                     // guarded by state_mu_
  std::unordered_set<int> conn_fds_;      // open connections, by state_mu_
  size_t open_connections_ = 0;           // accepted minus closed

  std::mutex join_mu_;  ///< serializes the accept-thread join (Wait vs dtor)

  // Replica-mode LSN bookkeeping, written by the tailer thread via
  // SetReplicationLsns and read by every dispatch; unused on a primary.
  std::atomic<uint64_t> applied_lsn_{0};
  std::atomic<uint64_t> target_lsn_{0};
};

}  // namespace skl

#endif  // SKL_NET_SERVER_H_
