// ProvenanceServer: serves a ProvenanceService to other processes over TCP
// using the framed wire protocol (src/net/protocol.h, docs/NETWORK.md).
//
//   auto svc = *ProvenanceService::Create(std::move(spec), kind);
//   auto server = *ProvenanceServer::Start(std::move(svc), {.port = 0});
//   std::printf("serving on 127.0.0.1:%u\n", server->port());
//   server->Wait();  // until a Shutdown frame (or Shutdown() elsewhere)
//
// Threading model (the epoll reactor, docs/NETWORK.md has the diagram):
// Options::num_io_threads reactor threads multiplex *all* sockets through
// epoll in edge-triggered non-blocking mode — a connection costs a few
// hundred bytes of state, never a thread, so thousands of mostly-idle
// clients are cheap. Each accepted connection is owned by exactly one I/O
// thread (round-robin at accept); that thread does every socket read and
// all epoll bookkeeping for it. Decoded request frames are handed to a
// query-execution ThreadPool (Options::num_threads workers): at most one
// dispatch task runs per connection at a time, draining its frame queue in
// FIFO order — which is what keeps responses strictly in request order
// while different connections' queries run concurrently. Responses are
// appended to a per-connection write buffer and flushed non-blockingly by
// whoever holds the buffer (the pool task on the fast path, the owning I/O
// thread via an eventfd nudge + EPOLLOUT when the socket is full).
//
// Flow control: the per-connection write buffer is bounded
// (Options::max_write_buffer_bytes). A client that stops draining its
// responses trips backpressure — the server suspends reading *and*
// dispatching for that connection until the buffer drains below half,
// bounding memory per connection no matter how fast the peer pipelines.
// Similarly, at most kMaxPendingFrames decoded-but-undispatched frames are
// buffered before reading pauses. Connections idle longer than
// Options::idle_timeout_ms (no bytes in either direction, nothing in
// flight) are closed and counted. Both counters travel in kServiceStats.
//
// Error model (the per-request Status mapping): a header-intact frame whose
// payload is malformed, or whose request fails in the service, produces a
// kError response carrying the StatusCode + message — the connection stays
// open and later requests keep working. Only a corrupted frame *header*
// (bad magic or length), which loses frame synchronization irrecoverably,
// makes the server answer with a best-effort kError and close that one
// connection. On fd exhaustion (EMFILE/ENFILE) the acceptor backs off and
// retries instead of abandoning the accept path — pending connections sit
// in the listen backlog and are admitted once descriptors free up. No
// input can crash the server or take down other connections.
//
// Shutdown: a kShutdown frame (or Shutdown()) stops the accept path,
// half-closes every connection's read side, lets already-decoded requests
// finish and their responses flush, then joins — the graceful drain the CI
// smoke job exercises. A peer that refuses to drain its responses is
// force-closed after Options::drain_grace_ms so shutdown always completes.
#ifndef SKL_NET_SERVER_H_
#define SKL_NET_SERVER_H_

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/common/metrics.h"
#include "src/common/status.h"
#include "src/common/thread_pool.h"
#include "src/core/provenance_service.h"
#include "src/net/protocol.h"

namespace skl {

/// Server knobs, fixed at Start time. (Namespace-scope so it can be
/// brace-defaulted; spelled ProvenanceServer::Options at call sites.)
struct ProvenanceServerOptions {
  /// TCP port to listen on; 0 picks an ephemeral port (read it back from
  /// ProvenanceServer::port()).
  uint16_t port = 0;
  /// Listen address. Loopback by default: serving beyond the host is a
  /// deployment decision (see docs/NETWORK.md) — pass "0.0.0.0" explicitly.
  std::string bind_address = "127.0.0.1";
  /// Query-execution pool size: how many requests (across all connections)
  /// can be answered concurrently. 0 = one per hardware thread. Workers
  /// are no longer pinned to connections — a worker serves one request
  /// batch and moves on — so this bounds CPU parallelism, not clients.
  unsigned num_threads = 8;
  /// Reactor (epoll) I/O threads multiplexing the sockets. 0 = 1. More
  /// than 1 only pays off when socket I/O itself saturates a core;
  /// connections are distributed round-robin at accept time.
  unsigned num_io_threads = 1;
  /// Per-frame size ceiling, bounding what one request can make the server
  /// buffer (AddRun XML and ImportRun blobs included).
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Close connections with no socket activity and nothing in flight for
  /// this long. 0 disables idle reaping. A half-received frame counts as
  /// activity as long as bytes keep arriving within the window.
  uint32_t idle_timeout_ms = 0;
  /// Per-connection response-buffer bound: past it, the connection's reads
  /// and dispatches are suspended (backpressure) until the peer drains
  /// below half. Responses already being composed may overshoot by one
  /// frame, so the hard bound is this plus max_frame_bytes.
  size_t max_write_buffer_bytes = 8u << 20;  // 8 MiB
  /// How long a graceful shutdown waits for unflushed responses before
  /// force-closing the connection (a non-draining peer must not be able to
  /// wedge the drain forever).
  uint32_t drain_grace_ms = 2000;
  /// Primary-side replication (docs/REPLICATION.md): the op-log this
  /// server's service appends to. Borrowed — must outlive the server. When
  /// set, kSnapshotFetch / kSubscribe serve replica bootstrap and tailing,
  /// and a kLoadSnapshot swap re-attaches the log and appends a barrier.
  OpLog* oplog = nullptr;
  /// Replica mode: mutating opcodes (kAddRun, kImportRun, kRemoveRun,
  /// kLoadSnapshot) are refused with InvalidArgument; the replication
  /// tailer mutates the service directly via WithServiceShared instead.
  /// kShutdown and kSaveSnapshot stay allowed (operational, not
  /// replicated).
  bool read_only = false;
  /// kLoadSnapshot swaps restore through the zero-copy mmap path
  /// (SnapshotLoadOptions::use_mmap): v2 columnar snapshots are mapped
  /// read-only and the new service's runs view the mapping in place. Same
  /// fallback contract as the library call (SKL_NO_MMAP, mapping failure).
  bool mmap_snapshots = false;
  /// Requests whose queue-wait + execute time exceeds this land in the
  /// slow-query ring buffer (docs/OBSERVABILITY.md), dumpable via the
  /// kSlowQueries opcode / `sklctl slow-queries`. 0 disables the log.
  uint32_t slow_query_threshold_us = 0;
};

/// Point-in-time reactor counters (also appended to the kServiceStats reply
/// for protocol-v4 peers; see ServiceStats and docs/NETWORK.md).
struct ReactorStats {
  uint64_t connections_open = 0;           ///< currently registered
  uint64_t connections_accepted = 0;       ///< cumulative accepts
  uint64_t connections_timed_out = 0;      ///< closed by the idle reaper
  uint64_t connections_backpressured = 0;  ///< write-buffer cap trips
  uint64_t epoll_wakeups = 0;              ///< epoll_wait returns, all threads
  uint64_t accept_backoffs = 0;            ///< fd-exhaustion accept retries
};

// SlowQueryEntry — the record Options::slow_query_threshold_us populates —
// lives in protocol.h: it doubles as the kSlowQueries reply wire shape.

/// A TCP server owning one ProvenanceService. Non-movable (threads hold
/// `this`), so Start returns it behind a unique_ptr.
class ProvenanceServer {
 public:
  using Options = ProvenanceServerOptions;

  /// Binds, listens and starts the reactor. The service is moved in; all
  /// mutation from then on happens through request frames (or through
  /// service(), see below).
  static Result<std::unique_ptr<ProvenanceServer>> Start(
      ProvenanceService service, Options options = {});

  /// Blocking graceful shutdown (idempotent, callable from any non-handler
  /// thread): stop accepting, drain in-flight requests, join everything.
  ~ProvenanceServer();
  void Shutdown();

  /// Non-blocking shutdown trigger: stops the accept path and nudges every
  /// connection, but does not wait. The kShutdown handler uses this (a
  /// handler cannot join the machinery it runs on); pair with Wait().
  void BeginShutdown();

  /// Blocks until a shutdown (BeginShutdown/Shutdown/kShutdown frame) has
  /// completed its drain: no accept path, no open connections.
  void Wait();

  ProvenanceServer(const ProvenanceServer&) = delete;
  ProvenanceServer& operator=(const ProvenanceServer&) = delete;

  /// Port actually bound (resolves port 0).
  uint16_t port() const { return port_; }
  const Options& options() const { return options_; }

  /// The served service. Safe to query concurrently with request handling
  /// (the service is internally synchronized) — but not concurrently with a
  /// kLoadSnapshot frame, which replaces the object. Tests use this to
  /// compare remote answers against direct ones.
  const ProvenanceService& service() const { return service_; }

  /// Snapshot of the reactor counters (tests and kServiceStats use this).
  ReactorStats reactor_stats() const;

  /// The server-side metrics registry: per-opcode queue-wait / execute
  /// histograms and the replication-lag gauges. Registered once at Start;
  /// recording is lock-free (docs/OBSERVABILITY.md).
  const MetricsRegistry& metrics() const { return metrics_; }

  /// Per-opcode dispatch histograms, microseconds. Null for non-request
  /// opcodes. Tests assert histogram counts against ServiceStats counters.
  const LatencyHistogram* queue_wait_histogram(MsgType type) const;
  const LatencyHistogram* execute_histogram(MsgType type) const;

  /// Snapshot of the slow-query ring buffer, oldest first (the kSlowQueries
  /// reply and `sklctl slow-queries` render this).
  std::vector<SlowQueryEntry> slow_queries() const;

  /// Everything this process exposes, one Prometheus text document: the
  /// server registry, the served service's registry, and (when an op-log is
  /// attached) its append/fsync histograms. The kMetrics reply body.
  std::string RenderMetricsText();

  /// Ring-buffer capacity of the slow-query log: one cache-resident page of
  /// recent offenders, not a durable audit trail.
  static constexpr size_t kSlowQueryLogCapacity = 128;

  /// Replica bookkeeping (docs/REPLICATION.md): the LSN the replica has
  /// applied (what min-LSN read tokens are checked against) and the
  /// primary's last known LSN (the lag denominator in kServiceStats). A
  /// primary ignores these — its applied LSN is its op-log head.
  void SetReplicationLsns(uint64_t applied_lsn, uint64_t target_lsn);

  /// Swaps in a new service under the exclusive service lock — the replica
  /// re-bootstrap path (a kSnapshotBarrier arrived in the op stream). The
  /// configured op-log, if any, is re-attached to the new service.
  void ReplaceService(ProvenanceService service);

  /// Runs `fn` on the served service under the shared service lock: safe
  /// against a concurrent ReplaceService/kLoadSnapshot swap, concurrent
  /// with request handling (the service is internally synchronized). The
  /// replication tailer applies shipped ops through this.
  void WithServiceShared(const std::function<void(ProvenanceService&)>& fn);

  /// Decoded-but-undispatched frames buffered per connection before its
  /// reads pause (the request-side twin of max_write_buffer_bytes).
  static constexpr size_t kMaxPendingFrames = 1024;

 private:
  struct Conn;      // per-connection state (server.cc)
  struct IoThread;  // per-reactor-thread state (server.cc)

  ProvenanceServer(ProvenanceService service, Options options);

  Status Listen();
  Status StartIoThreads();

  /// The reactor loop of I/O thread `index` (thread 0 also owns the
  /// listening socket).
  void IoLoop(size_t index);
  /// epoll_wait timeout for one loop turn: the soonest of the idle-reap
  /// tick, the accept-retry deadline and the shutdown drain deadline.
  int LoopTimeoutMs(const IoThread& io) const;

  /// Accepts until EAGAIN; on fd exhaustion arms the retry deadline
  /// instead of abandoning the accept path. Thread 0 only.
  void DoAccept(IoThread& io);
  /// Adds a connection to its owner thread's epoll + map (owner only).
  void AdoptConn(IoThread& io, const std::shared_ptr<Conn>& conn);

  /// Reads until EAGAIN/EOF, feeds the decoder, queues decoded frames and
  /// submits a dispatch task when one is due. Owner I/O thread only.
  void ReadFrom(IoThread& io, const std::shared_ptr<Conn>& conn);
  /// EPOLLOUT handler: flush, then disarm EPOLLOUT once the buffer drains.
  /// Owner I/O thread only.
  void HandleWritable(IoThread& io, const std::shared_ptr<Conn>& conn);
  /// Acts on a cross-thread nudge: arm EPOLLOUT, resume a suspended read,
  /// re-dispatch, or close. Owner I/O thread only.
  void ServiceNudge(IoThread& io, const std::shared_ptr<Conn>& conn);
  /// Submits a dispatch pool task if the connection has work and none is
  /// running. Any thread.
  void MaybeDispatch(const std::shared_ptr<Conn>& conn);
  /// Pool task: drains the connection's frame queue in order, appending
  /// responses to the write buffer, then flushes.
  void DispatchLoop(std::shared_ptr<Conn> conn);
  /// Flushes the write buffer (non-blocking) and settles the aftermath:
  /// un-pausing, EPOLLOUT arming, shutdown-after-flush, owner nudging.
  /// Safe from pool and I/O threads.
  void FlushAndSettle(const std::shared_ptr<Conn>& conn);
  /// Closes the connection if it has nothing left to do (or `force`).
  /// Owner I/O thread only.
  void TryClose(IoThread& io, const std::shared_ptr<Conn>& conn, bool force);

  /// Queues a connection for its owner I/O thread's attention and wakes it
  /// through the thread's eventfd. Any thread.
  void NudgeOwner(const std::shared_ptr<Conn>& conn);

  /// Dispatches one decoded request frame, appending the encoded response
  /// frame to *out; sets *shutdown_after_reply for kShutdown and
  /// *trace_id to the request's v5 trace token (0 when it carried none or
  /// the payload failed before the trace field).
  void HandleFrame(const Frame& frame, std::vector<uint8_t>* out,
                   bool* shutdown_after_reply, uint64_t* trace_id);

  /// Request-type switch: decodes the payload, calls the service, encodes
  /// the reply payload. Caller holds service_mu_ (unique for LoadSnapshot,
  /// shared otherwise) and maps errors onto a kError response. The reply is
  /// kReply unless the case overrides *reply_type (kLogEntries for
  /// kSubscribe, kRetryAt for a read whose min-LSN token is ahead of the
  /// applied LSN). Version-2 requests get version-2 reply shapes — no LSN
  /// fields; version-4 kServiceStats replies carry the reactor counters;
  /// version-5 payloads end with a trace-id varint written to *trace_id.
  Result<std::vector<uint8_t>> Dispatch(const Frame& frame,
                                        bool* shutdown_after_reply,
                                        MsgType* reply_type,
                                        uint64_t* trace_id);

  /// Registers the per-opcode histograms and replication gauges (Start
  /// path, before any frame can arrive).
  void RegisterMetrics();

  /// Records one dispatched frame's timing into the per-opcode histograms
  /// and, past the slow-query threshold, into the ring buffer.
  void RecordFrameTiming(const Frame& frame, uint64_t trace_id,
                         uint64_t queue_us, uint64_t exec_us);

  /// RenderMetricsText body; caller holds service_mu_ (the kMetrics
  /// dispatch case already does and must not re-lock).
  std::string RenderMetricsLocked();

  /// The LSN reads are served at: the op-log head on a primary (appends
  /// ack only after the log has the op, so it is never behind a handed-out
  /// token), the tailer-reported applied LSN on a replica.
  uint64_t CurrentAppliedLsn() const;

  /// Registers a fresh connection with the drain bookkeeping.
  bool RegisterConnection();  ///< false once shutdown began
  void UnregisterConnection();

  Options options_;
  uint16_t port_ = 0;
  int listen_fd_ = -1;

  // service_mu_ lets kLoadSnapshot swap the whole service object while no
  // request is mid-dispatch: every handler takes it shared, the load
  // handler takes it unique. All other synchronization is inside the
  // service itself.
  std::shared_mutex service_mu_;
  ProvenanceService service_;

  std::vector<std::unique_ptr<IoThread>> io_threads_;
  std::atomic<size_t> next_io_{0};  ///< round-robin connection placement

  mutable std::mutex state_mu_;
  std::condition_variable drained_cv_;
  std::atomic<bool> stop_{false};
  size_t open_connections_ = 0;  // guarded by state_mu_
  std::chrono::steady_clock::time_point stop_time_{};  // by state_mu_

  std::mutex join_mu_;  ///< serializes the io-thread join (Wait vs dtor)

  // Reactor counters (ReactorStats); connections_open is derived from
  // open_connections_.
  std::atomic<uint64_t> accepted_total_{0};
  std::atomic<uint64_t> timed_out_total_{0};
  std::atomic<uint64_t> backpressured_total_{0};
  std::atomic<uint64_t> epoll_wakeups_{0};
  std::atomic<uint64_t> accept_backoffs_{0};

  // Replica-mode LSN bookkeeping, written by the tailer thread via
  // SetReplicationLsns and read by every dispatch; unused on a primary.
  std::atomic<uint64_t> applied_lsn_{0};
  std::atomic<uint64_t> target_lsn_{0};

  // Observability (docs/OBSERVABILITY.md). The histogram pointer tables
  // are indexed by raw opcode value and filled by RegisterMetrics before
  // the reactor starts; entries stay null for non-request opcodes.
  MetricsRegistry metrics_;
  static constexpr size_t kOpcodeSlots = 64;
  std::array<LatencyHistogram*, kOpcodeSlots> queue_hist_{};
  std::array<LatencyHistogram*, kOpcodeSlots> exec_hist_{};

  mutable std::mutex slow_mu_;
  std::deque<SlowQueryEntry> slow_queries_;  ///< ring, oldest at front

  // Declared last so it is destroyed first: the pool drains dispatch tasks
  // (which touch every member above) before anything else goes away.
  ThreadPool pool_;  ///< query execution, shared by all connections
};

}  // namespace skl

#endif  // SKL_NET_SERVER_H_
