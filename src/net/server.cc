#include "src/net/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "src/io/workflow_xml.h"
#include "src/replication/oplog.h"

namespace skl {

namespace {

std::string Errno(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

/// Writes the whole buffer, riding out EINTR and partial sends. MSG_NOSIGNAL
/// turns a dead peer into an error return instead of SIGPIPE.
bool SendAll(int fd, std::span<const uint8_t> bytes) {
  size_t off = 0;
  while (off < bytes.size()) {
    ssize_t n = ::send(fd, bytes.data() + off, bytes.size() - off,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

/// Varint argument that must fit a 32-bit id (VertexId / DataItemId).
Result<uint32_t> ReadU32(PayloadReader& reader, const char* what) {
  SKL_ASSIGN_OR_RETURN(uint64_t raw, reader.U64());
  if (raw > UINT32_MAX) {
    return Status::InvalidArgument(std::string(what) +
                                   " does not fit 32 bits");
  }
  return static_cast<uint32_t>(raw);
}

}  // namespace

ProvenanceServer::ProvenanceServer(ProvenanceService service, Options options)
    : options_(std::move(options)),
      service_(std::move(service)),
      pool_(ThreadPool::Resolve(options_.num_threads)) {}

Result<std::unique_ptr<ProvenanceServer>> ProvenanceServer::Start(
    ProvenanceService service, Options options) {
  if (options.oplog != nullptr) {
    // Attach before the first frame can arrive: a mutation that slipped in
    // unlogged would be invisible to replicas and to crash recovery.
    service.AttachOpLog(options.oplog);
  }
  std::unique_ptr<ProvenanceServer> server(
      new ProvenanceServer(std::move(service), std::move(options)));
  SKL_RETURN_NOT_OK(server->Listen());
  server->accept_thread_ =
      std::thread([s = server.get()] { s->AcceptLoop(); });
  return server;
}

ProvenanceServer::~ProvenanceServer() { Shutdown(); }

Status ProvenanceServer::Listen() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Status::Unavailable(Errno("socket()"));
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    return Status::InvalidArgument(
        "bind_address must be a numeric IPv4 address, got '" +
        options_.bind_address + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Status::Unavailable(
        Errno(("bind " + options_.bind_address + ":" +
               std::to_string(options_.port))
                  .c_str()));
  }
  if (::listen(listen_fd_, 128) != 0) {
    return Status::Unavailable(Errno("listen()"));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) !=
      0) {
    return Status::Unavailable(Errno("getsockname()"));
  }
  port_ = ntohs(bound.sin_port);
  return Status::OK();
}

void ProvenanceServer::AcceptLoop() {
  for (;;) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener shut down (BeginShutdown) or fatal: stop accepting
    }
    // Responses are small frames; without TCP_NODELAY, Nagle holds each one
    // back waiting for the peer's (delayed) ACK and pipelined throughput
    // collapses to the 40ms delayed-ACK clock.
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    if (!RegisterConnection(fd)) {
      ::close(fd);  // raced a shutdown: refuse politely
      continue;
    }
    try {
      pool_.Submit([this, fd] { HandleConnection(fd); });
    } catch (...) {
      UnregisterConnection(fd);  // Submit allocation failed; drop the conn
    }
  }
}

bool ProvenanceServer::RegisterConnection(int fd) {
  std::lock_guard lock(state_mu_);
  if (stop_) return false;
  conn_fds_.insert(fd);
  ++open_connections_;
  return true;
}

void ProvenanceServer::UnregisterConnection(int fd) {
  std::lock_guard lock(state_mu_);
  conn_fds_.erase(fd);
  ::close(fd);  // under the lock: BeginShutdown must not nudge a stale fd
  if (--open_connections_ == 0) drained_cv_.notify_all();
}

void ProvenanceServer::HandleConnection(int fd) {
  FrameDecoder decoder(options_.max_frame_bytes);
  std::vector<uint8_t> out;
  uint8_t buf[65536];
  bool closing = false;
  while (!closing) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // EOF (peer done, or SHUT_RD from shutdown) or error
    decoder.Feed({buf, static_cast<size_t>(n)});
    // Drain every complete frame before blocking on the socket again, and
    // batch all their responses into one send — together with TCP_NODELAY
    // this is what makes client-side pipelining pay off.
    out.clear();
    bool shutdown_after_flush = false;
    while (!shutdown_after_flush) {
      Result<std::optional<Frame>> next = decoder.Next();
      if (!next.ok()) {
        // Frame desynchronization (corrupted header): one best-effort
        // error response, then drop the connection — its byte stream can
        // no longer be trusted to contain frame boundaries.
        Frame err;
        err.type = MsgType::kError;
        err.request_id = 0;
        err.payload = EncodeErrorPayload(next.status());
        EncodeFrame(err, &out);
        closing = true;
        break;
      }
      if (!next->has_value()) break;  // incomplete: read more
      HandleFrame(**next, &out, &shutdown_after_flush);
    }
    if (!out.empty() && !SendAll(fd, out)) closing = true;
    if (shutdown_after_flush) BeginShutdown();  // the OK reply is out first
  }
  UnregisterConnection(fd);
}

void ProvenanceServer::HandleFrame(const Frame& frame,
                                   std::vector<uint8_t>* out,
                                   bool* shutdown_after_reply) {
  MsgType reply_type = MsgType::kReply;
  Result<std::vector<uint8_t>> payload = [&]() -> Result<std::vector<uint8_t>> {
    if (frame.version > kProtocolVersion ||
        frame.version < kMinSupportedProtocolVersion) {
      // Name both ends of the supported range so a mismatched peer's log
      // says exactly which side must upgrade (asserted by protocol_test).
      return Status::InvalidArgument(
          "unsupported protocol version " + std::to_string(frame.version) +
          "; this server speaks versions " +
          std::to_string(kMinSupportedProtocolVersion) + " through " +
          std::to_string(kProtocolVersion));
    }
    if (!IsRequestType(static_cast<uint8_t>(frame.type))) {
      return Status::InvalidArgument(
          "opcode " + std::to_string(static_cast<uint8_t>(frame.type)) +
          " is not a request");
    }
    if (frame.type == MsgType::kLoadSnapshot) {
      // The one request that replaces the service object outright: exclude
      // every other in-flight dispatch for its duration.
      std::unique_lock lock(service_mu_);
      return Dispatch(frame, shutdown_after_reply, &reply_type);
    }
    std::shared_lock lock(service_mu_);
    return Dispatch(frame, shutdown_after_reply, &reply_type);
  }();

  Frame reply;
  reply.version = frame.version;  // answer in the requester's version
  reply.request_id = frame.request_id;
  if (payload.ok()) {
    reply.type = reply_type;
    reply.payload = std::move(payload).value();
  } else {
    reply.type = MsgType::kError;
    // Name the failing request so client-side logs are self-explanatory.
    Status named(payload.status().code(),
                 std::string(MsgTypeName(frame.type)) + ": " +
                     payload.status().message());
    reply.payload = EncodeErrorPayload(named);
  }
  EncodeFrame(reply, out);
}

Result<std::vector<uint8_t>> ProvenanceServer::Dispatch(
    const Frame& frame, bool* shutdown_after_reply, MsgType* reply_type) {
  PayloadReader reader(frame.payload);
  PayloadWriter out;
  if (options_.read_only &&
      (frame.type == MsgType::kAddRun || frame.type == MsgType::kImportRun ||
       frame.type == MsgType::kRemoveRun ||
       frame.type == MsgType::kLoadSnapshot)) {
    return Status::InvalidArgument(
        "read-only replica; writes must go to the primary");
  }
  const bool v3 = frame.version >= 3;
  // Version-3 read payloads end with a min-LSN token (read-your-writes,
  // docs/REPLICATION.md): if this server has not applied that far yet, the
  // request bounces as kRetryAt carrying the applied LSN instead of
  // answering from a stale registry. A primary never bounces — appends ack
  // only after the log holds the op, so its applied LSN covers every token
  // a client can legitimately hold.
  bool bounce = false;
  uint64_t bounce_applied = 0;
  auto end_read = [&](PayloadReader& r) -> Status {
    if (!v3) return r.ExpectEnd();
    Result<uint64_t> min_lsn = r.U64();
    if (!min_lsn.ok()) return min_lsn.status();
    SKL_RETURN_NOT_OK(r.ExpectEnd());
    const uint64_t applied = CurrentAppliedLsn();
    if (*min_lsn > applied) {
      bounce = true;
      bounce_applied = applied;
    }
    return Status::OK();
  };
  switch (frame.type) {
    case MsgType::kPing: {
      SKL_RETURN_NOT_OK(reader.ExpectEnd());
      break;
    }
    case MsgType::kShutdown: {
      SKL_RETURN_NOT_OK(reader.ExpectEnd());
      *shutdown_after_reply = true;  // reply first, then drain
      break;
    }
    case MsgType::kReaches: {
      SKL_ASSIGN_OR_RETURN(uint64_t run, reader.U64());
      SKL_ASSIGN_OR_RETURN(VertexId v, ReadU32(reader, "vertex id"));
      SKL_ASSIGN_OR_RETURN(VertexId w, ReadU32(reader, "vertex id"));
      SKL_RETURN_NOT_OK(end_read(reader));
      if (bounce) break;
      SKL_ASSIGN_OR_RETURN(bool answer,
                           service_.Reaches(RunId::FromValue(run), v, w));
      out.Boolean(answer);
      break;
    }
    case MsgType::kReachesBatch: {
      SKL_ASSIGN_OR_RETURN(uint64_t run, reader.U64());
      SKL_ASSIGN_OR_RETURN(uint64_t count, reader.U64());
      std::vector<VertexPair> pairs;
      for (uint64_t i = 0; i < count; ++i) {  // reads bound the allocation
        SKL_ASSIGN_OR_RETURN(VertexId v, ReadU32(reader, "vertex id"));
        SKL_ASSIGN_OR_RETURN(VertexId w, ReadU32(reader, "vertex id"));
        pairs.push_back({v, w});
      }
      SKL_RETURN_NOT_OK(end_read(reader));
      if (bounce) break;
      SKL_ASSIGN_OR_RETURN(
          std::vector<bool> answers,
          service_.ReachesBatch(RunId::FromValue(run), pairs));
      out.U64(answers.size());
      for (bool answer : answers) out.Boolean(answer);
      break;
    }
    case MsgType::kDependsOn: {
      SKL_ASSIGN_OR_RETURN(uint64_t run, reader.U64());
      SKL_ASSIGN_OR_RETURN(DataItemId x, ReadU32(reader, "item id"));
      SKL_ASSIGN_OR_RETURN(DataItemId x_from, ReadU32(reader, "item id"));
      SKL_RETURN_NOT_OK(end_read(reader));
      if (bounce) break;
      SKL_ASSIGN_OR_RETURN(
          bool answer, service_.DependsOn(RunId::FromValue(run), x, x_from));
      out.Boolean(answer);
      break;
    }
    case MsgType::kDependsOnBatch: {
      SKL_ASSIGN_OR_RETURN(uint64_t run, reader.U64());
      SKL_ASSIGN_OR_RETURN(uint64_t count, reader.U64());
      std::vector<ItemPair> pairs;
      for (uint64_t i = 0; i < count; ++i) {
        SKL_ASSIGN_OR_RETURN(DataItemId x, ReadU32(reader, "item id"));
        SKL_ASSIGN_OR_RETURN(DataItemId x_from, ReadU32(reader, "item id"));
        pairs.push_back({x, x_from});
      }
      SKL_RETURN_NOT_OK(end_read(reader));
      if (bounce) break;
      SKL_ASSIGN_OR_RETURN(
          std::vector<bool> answers,
          service_.DependsOnBatch(RunId::FromValue(run), pairs));
      out.U64(answers.size());
      for (bool answer : answers) out.Boolean(answer);
      break;
    }
    case MsgType::kModuleDependsOnData: {
      SKL_ASSIGN_OR_RETURN(uint64_t run, reader.U64());
      SKL_ASSIGN_OR_RETURN(VertexId v, ReadU32(reader, "vertex id"));
      SKL_ASSIGN_OR_RETURN(DataItemId x, ReadU32(reader, "item id"));
      SKL_RETURN_NOT_OK(end_read(reader));
      if (bounce) break;
      SKL_ASSIGN_OR_RETURN(
          bool answer,
          service_.ModuleDependsOnData(RunId::FromValue(run), v, x));
      out.Boolean(answer);
      break;
    }
    case MsgType::kDataDependsOnModule: {
      SKL_ASSIGN_OR_RETURN(uint64_t run, reader.U64());
      SKL_ASSIGN_OR_RETURN(DataItemId x, ReadU32(reader, "item id"));
      SKL_ASSIGN_OR_RETURN(VertexId v, ReadU32(reader, "vertex id"));
      SKL_RETURN_NOT_OK(end_read(reader));
      if (bounce) break;
      SKL_ASSIGN_OR_RETURN(
          bool answer,
          service_.DataDependsOnModule(RunId::FromValue(run), x, v));
      out.Boolean(answer);
      break;
    }
    case MsgType::kAddRun: {
      SKL_ASSIGN_OR_RETURN(std::string xml, reader.Str());
      SKL_RETURN_NOT_OK(reader.ExpectEnd());
      SKL_ASSIGN_OR_RETURN(::skl::Run run, ReadRunXml(xml));
      SKL_ASSIGN_OR_RETURN(RunId id, service_.AddRun(run));
      out.U64(id.value());
      // v3 mutating replies carry an ack LSN >= the op's own: the token a
      // client pins later replica reads with (read-your-writes).
      if (v3) out.U64(service_.replication_lsn());
      break;
    }
    case MsgType::kImportRun: {
      SKL_ASSIGN_OR_RETURN(std::span<const uint8_t> blob, reader.Bytes());
      SKL_RETURN_NOT_OK(reader.ExpectEnd());
      SKL_ASSIGN_OR_RETURN(
          RunId id,
          service_.ImportRun(std::vector<uint8_t>(blob.begin(), blob.end())));
      out.U64(id.value());
      if (v3) out.U64(service_.replication_lsn());
      break;
    }
    case MsgType::kExportRun: {
      SKL_ASSIGN_OR_RETURN(uint64_t run, reader.U64());
      SKL_RETURN_NOT_OK(end_read(reader));
      if (bounce) break;
      SKL_ASSIGN_OR_RETURN(std::vector<uint8_t> blob,
                           service_.ExportRun(RunId::FromValue(run)));
      out.Bytes(blob);
      break;
    }
    case MsgType::kRemoveRun: {
      SKL_ASSIGN_OR_RETURN(uint64_t run, reader.U64());
      SKL_RETURN_NOT_OK(reader.ExpectEnd());
      SKL_RETURN_NOT_OK(service_.RemoveRun(RunId::FromValue(run)));
      if (v3) out.U64(service_.replication_lsn());
      break;
    }
    case MsgType::kListRuns: {
      SKL_RETURN_NOT_OK(end_read(reader));
      if (bounce) break;
      const std::vector<RunId> ids = service_.ListRuns();
      out.U64(ids.size());
      for (RunId id : ids) out.U64(id.value());
      break;
    }
    case MsgType::kRunStats: {
      SKL_ASSIGN_OR_RETURN(uint64_t run, reader.U64());
      SKL_RETURN_NOT_OK(end_read(reader));
      if (bounce) break;
      SKL_ASSIGN_OR_RETURN(RunStats stats,
                           service_.Stats(RunId::FromValue(run)));
      out.U64(stats.num_vertices);
      out.U64(stats.num_items);
      out.U64(stats.label_bits);
      out.U64(stats.context_bits);
      out.U64(stats.origin_bits);
      out.U64(stats.num_nonempty_plus);
      out.Boolean(stats.imported);
      break;
    }
    case MsgType::kServiceStats: {
      SKL_RETURN_NOT_OK(reader.ExpectEnd());
      const ServiceStats stats = service_.service_stats();
      out.U64(stats.num_runs);
      out.U64(stats.reaches_queries);
      out.U64(stats.depends_on_queries);
      out.U64(stats.module_data_queries);
      out.U64(stats.data_module_queries);
      out.U64(stats.batch_calls);
      out.U64(stats.runs_ingested);
      out.U64(stats.runs_imported);
      out.U64(stats.runs_removed);
      out.U64(stats.bulk_batches);
      out.U64(stats.snapshot_saves);
      out.U64(stats.cache_hits);
      out.U64(stats.cache_misses);
      if (v3) {
        // Applied/target LSN pair: equal on a primary, the lag
        // numerator/denominator on a replica. Clamped so a freshly updated
        // applied LSN never reads as ahead of a stale target.
        const uint64_t applied = CurrentAppliedLsn();
        uint64_t target =
            options_.oplog != nullptr
                ? options_.oplog->last_lsn()
                : target_lsn_.load(std::memory_order_acquire);
        target = std::max(target, applied);
        out.U64(applied);
        out.U64(target);
      }
      break;
    }
    case MsgType::kSnapshotFetch: {
      SKL_RETURN_NOT_OK(reader.ExpectEnd());
      if (options_.oplog == nullptr) {
        return Status::InvalidArgument(
            "server has no replication log attached; start it with an "
            "op-log (e.g. sklctl serve --oplog=...) to serve replicas");
      }
      // Read the LSN *before* composing the snapshot: the bytes then
      // contain every op <= lsn (append-before-ack), and ops > lsn may
      // appear in both snapshot and stream — which is why replica apply is
      // idempotent.
      const uint64_t lsn = options_.oplog->last_lsn();
      SKL_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes,
                           service_.SnapshotBytes());
      out.U64(lsn);
      out.Bytes(bytes);
      break;
    }
    case MsgType::kSubscribe: {
      SKL_ASSIGN_OR_RETURN(uint64_t after_lsn, reader.U64());
      SKL_ASSIGN_OR_RETURN(uint64_t max_ops, reader.U64());
      SKL_RETURN_NOT_OK(reader.ExpectEnd());
      if (options_.oplog == nullptr) {
        return Status::InvalidArgument(
            "server has no replication log attached; start it with an "
            "op-log (e.g. sklctl serve --oplog=...) to serve replicas");
      }
      // Cap the batch so one subscribe cannot ask for an unbounded reply
      // frame; the tailer just comes back for the rest.
      const size_t capped =
          static_cast<size_t>(std::min<uint64_t>(max_ops, 4096));
      const std::vector<LogOp> ops =
          options_.oplog->ReadFrom(after_lsn, capped);
      *reply_type = MsgType::kLogEntries;
      out.U64(ops.size());
      for (const LogOp& op : ops) out.Bytes(SerializeLogOp(op));
      out.U64(options_.oplog->last_lsn());
      break;
    }
    case MsgType::kSaveSnapshot: {
      SKL_ASSIGN_OR_RETURN(std::string path, reader.Str());
      SKL_RETURN_NOT_OK(reader.ExpectEnd());
      SKL_RETURN_NOT_OK(service_.SaveSnapshot(path));
      break;
    }
    case MsgType::kLoadSnapshot: {
      // Caller holds service_mu_ exclusively (see HandleFrame). The swap
      // replaces the whole service — sharded registry, caches (fresh
      // generations) and ServiceStats counters included. Counters RESET on
      // load by contract: they describe the served lifetime of a registry,
      // not the process (asserted by net_server_test, documented in
      // docs/NETWORK.md). Runtime knobs (threads, shards, cache size) are
      // not part of the snapshot and carry over from the old service.
      SKL_ASSIGN_OR_RETURN(std::string path, reader.Str());
      SKL_RETURN_NOT_OK(reader.ExpectEnd());
      SKL_ASSIGN_OR_RETURN(
          ProvenanceService loaded,
          ProvenanceService::LoadSnapshot(path, service_.options()));
      service_ = std::move(loaded);
      if (options_.oplog != nullptr) {
        // The swap dropped the old service's attachment; re-attach and
        // append a barrier so recovery and replicas know the registry was
        // replaced wholesale at this LSN (they chain through the snapshot
        // rather than replaying across it).
        service_.AttachOpLog(options_.oplog);
        LogOp barrier;
        barrier.kind = LogOp::Kind::kSnapshotBarrier;
        barrier.blob.assign(path.begin(), path.end());
        Result<uint64_t> appended =
            options_.oplog->Append(std::move(barrier));
        if (!appended.ok()) {
          return Status::Internal(
              "snapshot loaded but the op-log barrier append failed (" +
              appended.status().message() +
              "); the service is ahead of its replication log");
        }
      }
      break;
    }
    default:
      return Status::InvalidArgument(
          "opcode " + std::to_string(static_cast<uint8_t>(frame.type)) +
          " is not dispatchable");
  }
  if (bounce) {
    *reply_type = MsgType::kRetryAt;
    PayloadWriter behind;
    behind.U64(bounce_applied);
    return std::move(behind).Finish();
  }
  return std::move(out).Finish();
}

uint64_t ProvenanceServer::CurrentAppliedLsn() const {
  return options_.oplog != nullptr
             ? options_.oplog->last_lsn()
             : applied_lsn_.load(std::memory_order_acquire);
}

void ProvenanceServer::SetReplicationLsns(uint64_t applied_lsn,
                                          uint64_t target_lsn) {
  applied_lsn_.store(applied_lsn, std::memory_order_release);
  target_lsn_.store(target_lsn, std::memory_order_release);
}

void ProvenanceServer::ReplaceService(ProvenanceService service) {
  std::unique_lock lock(service_mu_);
  service_ = std::move(service);
  if (options_.oplog != nullptr) service_.AttachOpLog(options_.oplog);
}

void ProvenanceServer::WithServiceShared(
    const std::function<void(ProvenanceService&)>& fn) {
  std::shared_lock lock(service_mu_);
  fn(service_);
}

void ProvenanceServer::BeginShutdown() {
  std::lock_guard lock(state_mu_);
  if (stop_) return;
  stop_ = true;
  // Wake the accept loop (shutdown on a listening socket unblocks accept
  // with EINVAL on Linux); the fd itself is closed after the join in Wait().
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  // Nudge idle connections: their blocking recv returns 0 and the handler
  // winds down after finishing (and flushing) whatever it was serving.
  for (int fd : conn_fds_) ::shutdown(fd, SHUT_RD);
  drained_cv_.notify_all();
}

void ProvenanceServer::Wait() {
  {
    std::unique_lock lock(state_mu_);
    drained_cv_.wait(lock, [&] { return stop_ && open_connections_ == 0; });
  }
  std::lock_guard join_lock(join_mu_);
  if (accept_thread_.joinable()) accept_thread_.join();
  std::lock_guard lock(state_mu_);
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void ProvenanceServer::Shutdown() {
  BeginShutdown();
  Wait();
}

}  // namespace skl
