#include "src/net/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "src/io/workflow_xml.h"

namespace skl {

namespace {

std::string Errno(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

/// Writes the whole buffer, riding out EINTR and partial sends. MSG_NOSIGNAL
/// turns a dead peer into an error return instead of SIGPIPE.
bool SendAll(int fd, std::span<const uint8_t> bytes) {
  size_t off = 0;
  while (off < bytes.size()) {
    ssize_t n = ::send(fd, bytes.data() + off, bytes.size() - off,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

/// Varint argument that must fit a 32-bit id (VertexId / DataItemId).
Result<uint32_t> ReadU32(PayloadReader& reader, const char* what) {
  SKL_ASSIGN_OR_RETURN(uint64_t raw, reader.U64());
  if (raw > UINT32_MAX) {
    return Status::InvalidArgument(std::string(what) +
                                   " does not fit 32 bits");
  }
  return static_cast<uint32_t>(raw);
}

}  // namespace

ProvenanceServer::ProvenanceServer(ProvenanceService service, Options options)
    : options_(std::move(options)),
      service_(std::move(service)),
      pool_(ThreadPool::Resolve(options_.num_threads)) {}

Result<std::unique_ptr<ProvenanceServer>> ProvenanceServer::Start(
    ProvenanceService service, Options options) {
  std::unique_ptr<ProvenanceServer> server(
      new ProvenanceServer(std::move(service), std::move(options)));
  SKL_RETURN_NOT_OK(server->Listen());
  server->accept_thread_ =
      std::thread([s = server.get()] { s->AcceptLoop(); });
  return server;
}

ProvenanceServer::~ProvenanceServer() { Shutdown(); }

Status ProvenanceServer::Listen() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Status::Unavailable(Errno("socket()"));
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    return Status::InvalidArgument(
        "bind_address must be a numeric IPv4 address, got '" +
        options_.bind_address + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Status::Unavailable(
        Errno(("bind " + options_.bind_address + ":" +
               std::to_string(options_.port))
                  .c_str()));
  }
  if (::listen(listen_fd_, 128) != 0) {
    return Status::Unavailable(Errno("listen()"));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) !=
      0) {
    return Status::Unavailable(Errno("getsockname()"));
  }
  port_ = ntohs(bound.sin_port);
  return Status::OK();
}

void ProvenanceServer::AcceptLoop() {
  for (;;) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener shut down (BeginShutdown) or fatal: stop accepting
    }
    // Responses are small frames; without TCP_NODELAY, Nagle holds each one
    // back waiting for the peer's (delayed) ACK and pipelined throughput
    // collapses to the 40ms delayed-ACK clock.
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    if (!RegisterConnection(fd)) {
      ::close(fd);  // raced a shutdown: refuse politely
      continue;
    }
    try {
      pool_.Submit([this, fd] { HandleConnection(fd); });
    } catch (...) {
      UnregisterConnection(fd);  // Submit allocation failed; drop the conn
    }
  }
}

bool ProvenanceServer::RegisterConnection(int fd) {
  std::lock_guard lock(state_mu_);
  if (stop_) return false;
  conn_fds_.insert(fd);
  ++open_connections_;
  return true;
}

void ProvenanceServer::UnregisterConnection(int fd) {
  std::lock_guard lock(state_mu_);
  conn_fds_.erase(fd);
  ::close(fd);  // under the lock: BeginShutdown must not nudge a stale fd
  if (--open_connections_ == 0) drained_cv_.notify_all();
}

void ProvenanceServer::HandleConnection(int fd) {
  FrameDecoder decoder(options_.max_frame_bytes);
  std::vector<uint8_t> out;
  uint8_t buf[65536];
  bool closing = false;
  while (!closing) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // EOF (peer done, or SHUT_RD from shutdown) or error
    decoder.Feed({buf, static_cast<size_t>(n)});
    // Drain every complete frame before blocking on the socket again, and
    // batch all their responses into one send — together with TCP_NODELAY
    // this is what makes client-side pipelining pay off.
    out.clear();
    bool shutdown_after_flush = false;
    while (!shutdown_after_flush) {
      Result<std::optional<Frame>> next = decoder.Next();
      if (!next.ok()) {
        // Frame desynchronization (corrupted header): one best-effort
        // error response, then drop the connection — its byte stream can
        // no longer be trusted to contain frame boundaries.
        Frame err;
        err.type = MsgType::kError;
        err.request_id = 0;
        err.payload = EncodeErrorPayload(next.status());
        EncodeFrame(err, &out);
        closing = true;
        break;
      }
      if (!next->has_value()) break;  // incomplete: read more
      HandleFrame(**next, &out, &shutdown_after_flush);
    }
    if (!out.empty() && !SendAll(fd, out)) closing = true;
    if (shutdown_after_flush) BeginShutdown();  // the OK reply is out first
  }
  UnregisterConnection(fd);
}

void ProvenanceServer::HandleFrame(const Frame& frame,
                                   std::vector<uint8_t>* out,
                                   bool* shutdown_after_reply) {
  Result<std::vector<uint8_t>> payload = [&]() -> Result<std::vector<uint8_t>> {
    if (frame.version != kProtocolVersion) {
      return Status::InvalidArgument(
          "unsupported protocol version " + std::to_string(frame.version) +
          "; this server speaks version " + std::to_string(kProtocolVersion));
    }
    if (!IsRequestType(static_cast<uint8_t>(frame.type))) {
      return Status::InvalidArgument(
          "opcode " + std::to_string(static_cast<uint8_t>(frame.type)) +
          " is not a request");
    }
    if (frame.type == MsgType::kLoadSnapshot) {
      // The one request that replaces the service object outright: exclude
      // every other in-flight dispatch for its duration.
      std::unique_lock lock(service_mu_);
      return Dispatch(frame, shutdown_after_reply);
    }
    std::shared_lock lock(service_mu_);
    return Dispatch(frame, shutdown_after_reply);
  }();

  Frame reply;
  reply.request_id = frame.request_id;
  if (payload.ok()) {
    reply.type = MsgType::kReply;
    reply.payload = std::move(payload).value();
  } else {
    reply.type = MsgType::kError;
    // Name the failing request so client-side logs are self-explanatory.
    Status named(payload.status().code(),
                 std::string(MsgTypeName(frame.type)) + ": " +
                     payload.status().message());
    reply.payload = EncodeErrorPayload(named);
  }
  EncodeFrame(reply, out);
}

Result<std::vector<uint8_t>> ProvenanceServer::Dispatch(
    const Frame& frame, bool* shutdown_after_reply) {
  PayloadReader reader(frame.payload);
  PayloadWriter out;
  switch (frame.type) {
    case MsgType::kPing: {
      SKL_RETURN_NOT_OK(reader.ExpectEnd());
      break;
    }
    case MsgType::kShutdown: {
      SKL_RETURN_NOT_OK(reader.ExpectEnd());
      *shutdown_after_reply = true;  // reply first, then drain
      break;
    }
    case MsgType::kReaches: {
      SKL_ASSIGN_OR_RETURN(uint64_t run, reader.U64());
      SKL_ASSIGN_OR_RETURN(VertexId v, ReadU32(reader, "vertex id"));
      SKL_ASSIGN_OR_RETURN(VertexId w, ReadU32(reader, "vertex id"));
      SKL_RETURN_NOT_OK(reader.ExpectEnd());
      SKL_ASSIGN_OR_RETURN(bool answer,
                           service_.Reaches(RunId::FromValue(run), v, w));
      out.Boolean(answer);
      break;
    }
    case MsgType::kReachesBatch: {
      SKL_ASSIGN_OR_RETURN(uint64_t run, reader.U64());
      SKL_ASSIGN_OR_RETURN(uint64_t count, reader.U64());
      std::vector<VertexPair> pairs;
      for (uint64_t i = 0; i < count; ++i) {  // reads bound the allocation
        SKL_ASSIGN_OR_RETURN(VertexId v, ReadU32(reader, "vertex id"));
        SKL_ASSIGN_OR_RETURN(VertexId w, ReadU32(reader, "vertex id"));
        pairs.push_back({v, w});
      }
      SKL_RETURN_NOT_OK(reader.ExpectEnd());
      SKL_ASSIGN_OR_RETURN(
          std::vector<bool> answers,
          service_.ReachesBatch(RunId::FromValue(run), pairs));
      out.U64(answers.size());
      for (bool answer : answers) out.Boolean(answer);
      break;
    }
    case MsgType::kDependsOn: {
      SKL_ASSIGN_OR_RETURN(uint64_t run, reader.U64());
      SKL_ASSIGN_OR_RETURN(DataItemId x, ReadU32(reader, "item id"));
      SKL_ASSIGN_OR_RETURN(DataItemId x_from, ReadU32(reader, "item id"));
      SKL_RETURN_NOT_OK(reader.ExpectEnd());
      SKL_ASSIGN_OR_RETURN(
          bool answer, service_.DependsOn(RunId::FromValue(run), x, x_from));
      out.Boolean(answer);
      break;
    }
    case MsgType::kDependsOnBatch: {
      SKL_ASSIGN_OR_RETURN(uint64_t run, reader.U64());
      SKL_ASSIGN_OR_RETURN(uint64_t count, reader.U64());
      std::vector<ItemPair> pairs;
      for (uint64_t i = 0; i < count; ++i) {
        SKL_ASSIGN_OR_RETURN(DataItemId x, ReadU32(reader, "item id"));
        SKL_ASSIGN_OR_RETURN(DataItemId x_from, ReadU32(reader, "item id"));
        pairs.push_back({x, x_from});
      }
      SKL_RETURN_NOT_OK(reader.ExpectEnd());
      SKL_ASSIGN_OR_RETURN(
          std::vector<bool> answers,
          service_.DependsOnBatch(RunId::FromValue(run), pairs));
      out.U64(answers.size());
      for (bool answer : answers) out.Boolean(answer);
      break;
    }
    case MsgType::kModuleDependsOnData: {
      SKL_ASSIGN_OR_RETURN(uint64_t run, reader.U64());
      SKL_ASSIGN_OR_RETURN(VertexId v, ReadU32(reader, "vertex id"));
      SKL_ASSIGN_OR_RETURN(DataItemId x, ReadU32(reader, "item id"));
      SKL_RETURN_NOT_OK(reader.ExpectEnd());
      SKL_ASSIGN_OR_RETURN(
          bool answer,
          service_.ModuleDependsOnData(RunId::FromValue(run), v, x));
      out.Boolean(answer);
      break;
    }
    case MsgType::kDataDependsOnModule: {
      SKL_ASSIGN_OR_RETURN(uint64_t run, reader.U64());
      SKL_ASSIGN_OR_RETURN(DataItemId x, ReadU32(reader, "item id"));
      SKL_ASSIGN_OR_RETURN(VertexId v, ReadU32(reader, "vertex id"));
      SKL_RETURN_NOT_OK(reader.ExpectEnd());
      SKL_ASSIGN_OR_RETURN(
          bool answer,
          service_.DataDependsOnModule(RunId::FromValue(run), x, v));
      out.Boolean(answer);
      break;
    }
    case MsgType::kAddRun: {
      SKL_ASSIGN_OR_RETURN(std::string xml, reader.Str());
      SKL_RETURN_NOT_OK(reader.ExpectEnd());
      SKL_ASSIGN_OR_RETURN(::skl::Run run, ReadRunXml(xml));
      SKL_ASSIGN_OR_RETURN(RunId id, service_.AddRun(run));
      out.U64(id.value());
      break;
    }
    case MsgType::kImportRun: {
      SKL_ASSIGN_OR_RETURN(std::span<const uint8_t> blob, reader.Bytes());
      SKL_RETURN_NOT_OK(reader.ExpectEnd());
      SKL_ASSIGN_OR_RETURN(
          RunId id,
          service_.ImportRun(std::vector<uint8_t>(blob.begin(), blob.end())));
      out.U64(id.value());
      break;
    }
    case MsgType::kExportRun: {
      SKL_ASSIGN_OR_RETURN(uint64_t run, reader.U64());
      SKL_RETURN_NOT_OK(reader.ExpectEnd());
      SKL_ASSIGN_OR_RETURN(std::vector<uint8_t> blob,
                           service_.ExportRun(RunId::FromValue(run)));
      out.Bytes(blob);
      break;
    }
    case MsgType::kRemoveRun: {
      SKL_ASSIGN_OR_RETURN(uint64_t run, reader.U64());
      SKL_RETURN_NOT_OK(reader.ExpectEnd());
      SKL_RETURN_NOT_OK(service_.RemoveRun(RunId::FromValue(run)));
      break;
    }
    case MsgType::kListRuns: {
      SKL_RETURN_NOT_OK(reader.ExpectEnd());
      const std::vector<RunId> ids = service_.ListRuns();
      out.U64(ids.size());
      for (RunId id : ids) out.U64(id.value());
      break;
    }
    case MsgType::kRunStats: {
      SKL_ASSIGN_OR_RETURN(uint64_t run, reader.U64());
      SKL_RETURN_NOT_OK(reader.ExpectEnd());
      SKL_ASSIGN_OR_RETURN(RunStats stats,
                           service_.Stats(RunId::FromValue(run)));
      out.U64(stats.num_vertices);
      out.U64(stats.num_items);
      out.U64(stats.label_bits);
      out.U64(stats.context_bits);
      out.U64(stats.origin_bits);
      out.U64(stats.num_nonempty_plus);
      out.Boolean(stats.imported);
      break;
    }
    case MsgType::kServiceStats: {
      SKL_RETURN_NOT_OK(reader.ExpectEnd());
      const ServiceStats stats = service_.service_stats();
      out.U64(stats.num_runs);
      out.U64(stats.reaches_queries);
      out.U64(stats.depends_on_queries);
      out.U64(stats.module_data_queries);
      out.U64(stats.data_module_queries);
      out.U64(stats.batch_calls);
      out.U64(stats.runs_ingested);
      out.U64(stats.runs_imported);
      out.U64(stats.runs_removed);
      out.U64(stats.bulk_batches);
      out.U64(stats.snapshot_saves);
      out.U64(stats.cache_hits);
      out.U64(stats.cache_misses);
      break;
    }
    case MsgType::kSaveSnapshot: {
      SKL_ASSIGN_OR_RETURN(std::string path, reader.Str());
      SKL_RETURN_NOT_OK(reader.ExpectEnd());
      SKL_RETURN_NOT_OK(service_.SaveSnapshot(path));
      break;
    }
    case MsgType::kLoadSnapshot: {
      // Caller holds service_mu_ exclusively (see HandleFrame). The swap
      // replaces the whole service — sharded registry, caches (fresh
      // generations) and ServiceStats counters included. Counters RESET on
      // load by contract: they describe the served lifetime of a registry,
      // not the process (asserted by net_server_test, documented in
      // docs/NETWORK.md). Runtime knobs (threads, shards, cache size) are
      // not part of the snapshot and carry over from the old service.
      SKL_ASSIGN_OR_RETURN(std::string path, reader.Str());
      SKL_RETURN_NOT_OK(reader.ExpectEnd());
      SKL_ASSIGN_OR_RETURN(
          ProvenanceService loaded,
          ProvenanceService::LoadSnapshot(path, service_.options()));
      service_ = std::move(loaded);
      break;
    }
    default:
      return Status::InvalidArgument(
          "opcode " + std::to_string(static_cast<uint8_t>(frame.type)) +
          " is not dispatchable");
  }
  return std::move(out).Finish();
}

void ProvenanceServer::BeginShutdown() {
  std::lock_guard lock(state_mu_);
  if (stop_) return;
  stop_ = true;
  // Wake the accept loop (shutdown on a listening socket unblocks accept
  // with EINVAL on Linux); the fd itself is closed after the join in Wait().
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  // Nudge idle connections: their blocking recv returns 0 and the handler
  // winds down after finishing (and flushing) whatever it was serving.
  for (int fd : conn_fds_) ::shutdown(fd, SHUT_RD);
  drained_cv_.notify_all();
}

void ProvenanceServer::Wait() {
  {
    std::unique_lock lock(state_mu_);
    drained_cv_.wait(lock, [&] { return stop_ && open_connections_ == 0; });
  }
  std::lock_guard join_lock(join_mu_);
  if (accept_thread_.joinable()) accept_thread_.join();
  std::lock_guard lock(state_mu_);
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void ProvenanceServer::Shutdown() {
  BeginShutdown();
  Wait();
}

}  // namespace skl
