#include "src/net/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <optional>
#include <unordered_map>
#include <utility>

#include "src/io/workflow_xml.h"
#include "src/replication/oplog.h"

namespace skl {

namespace {

using Clock = std::chrono::steady_clock;

std::string Errno(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

/// Varint argument that must fit a 32-bit id (VertexId / DataItemId).
Result<uint32_t> ReadU32(PayloadReader& reader, const char* what) {
  SKL_ASSIGN_OR_RETURN(uint64_t raw, reader.U64());
  if (raw > UINT32_MAX) {
    return Status::InvalidArgument(std::string(what) +
                                   " does not fit 32 bits");
  }
  return static_cast<uint32_t>(raw);
}

/// epoll user-data tags for the two non-connection fds each reactor thread
/// watches; connection events carry the Conn* instead (never 0/1).
constexpr uint64_t kEventFdTag = 0;
constexpr uint64_t kListenFdTag = 1;

/// Flush responses once this much is buffered even mid-batch, so pipelined
/// replies still leave in large sends without the buffer ballooning.
constexpr size_t kFlushChunkBytes = 64u << 10;

int64_t MsUntil(Clock::time_point t) {
  const auto d = t - Clock::now();
  const int64_t ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(d).count();
  return ms < 0 ? 0 : ms + 1;  // round up: never wake before the deadline
}

uint64_t UsBetween(Clock::time_point from, Clock::time_point to) {
  const int64_t us =
      std::chrono::duration_cast<std::chrono::microseconds>(to - from)
          .count();
  return us < 0 ? 0 : static_cast<uint64_t>(us);
}

/// Best-effort run id for the slow-query log: the opcodes that name a run
/// carry it as the first payload varint. 0 for run-less opcodes or when
/// the payload is too malformed to read one (the dispatch error already
/// describes that).
uint64_t PeekRunId(const Frame& frame) {
  switch (frame.type) {
    case MsgType::kReaches:
    case MsgType::kReachesBatch:
    case MsgType::kDependsOn:
    case MsgType::kDependsOnBatch:
    case MsgType::kModuleDependsOnData:
    case MsgType::kDataDependsOnModule:
    case MsgType::kExportRun:
    case MsgType::kRemoveRun:
    case MsgType::kRunStats: {
      PayloadReader reader(frame.payload);
      Result<uint64_t> run = reader.U64();
      return run.ok() ? *run : 0;
    }
    default:
      return 0;
  }
}

}  // namespace

/// Per-connection state. The owning I/O thread is the only one that reads
/// the socket, touches the decoder, or registers/closes the fd; everything
/// under `mu` is shared with the dispatch pool task. Writes to the socket
/// happen under `mu` (from whichever thread flushes), and the fd is closed
/// under `mu` with `closed` set — so no thread can write a stale fd.
struct ProvenanceServer::Conn {
  Conn(int fd_in, size_t io, size_t max_frame)
      : fd(fd_in), io_index(io), decoder(max_frame) {}

  /// A decoded request stamped with its decode time, so dispatch can split
  /// total latency into queue-wait (decoded -> dequeued) and execute.
  struct PendingFrame {
    Frame frame;
    Clock::time_point enqueued;
  };

  const int fd;
  const size_t io_index;  ///< owning reactor thread

  // --- owner I/O thread only ---
  FrameDecoder decoder;
  bool in_epoll = false;

  std::mutex mu;  // guards everything below
  std::deque<PendingFrame> pending;  ///< decoded, not yet dispatched (FIFO)
  std::optional<Status> terminal;  ///< decoder poison: error-then-close
  bool terminal_encoded = false;
  bool task_active = false;  ///< at most one pool task per connection
  std::vector<uint8_t> wbuf;
  size_t woff = 0;           ///< flushed prefix of wbuf
  bool want_write = false;   ///< partial flush: needs EPOLLOUT
  bool epollout_armed = false;
  bool paused = false;          ///< backpressure: reads+dispatch suspended
  bool read_throttled = false;  ///< kMaxPendingFrames cap hit
  bool read_closed = false;
  bool close_after_flush = false;
  bool shutdown_after_flush = false;  ///< kShutdown: reply out, then drain
  bool io_error = false;  ///< transport dead; close without flushing
  bool closed = false;    ///< fd closed; no socket use past this
  Clock::time_point last_activity{};
};

/// Per-reactor-thread state. `conns`/`retired` and the accept/idle
/// deadlines belong to the owning thread; `nudges` is the cross-thread
/// mailbox (paired with an eventfd write).
struct ProvenanceServer::IoThread {
  ~IoThread() {
    if (epoll_fd >= 0) ::close(epoll_fd);
    if (event_fd >= 0) ::close(event_fd);
  }

  size_t index = 0;
  int epoll_fd = -1;
  int event_fd = -1;
  std::thread thread;

  std::mutex nudge_mu;
  std::vector<std::shared_ptr<Conn>> nudges;

  // --- owner thread only ---
  std::unordered_map<int, std::shared_ptr<Conn>> conns;
  /// Closed this loop turn: keeps Conn* in already-harvested epoll events
  /// valid until the turn ends (the map entry is erased immediately so the
  /// fd number can be reused by a fresh accept).
  std::vector<std::shared_ptr<Conn>> retired;
  bool accept_retry_armed = false;
  Clock::time_point accept_retry_at{};
  uint32_t accept_backoff_ms = 0;
  Clock::time_point next_idle_scan{};
  bool stop_seen = false;
  Clock::time_point drain_deadline{};
};

ProvenanceServer::ProvenanceServer(ProvenanceService service, Options options)
    : options_(std::move(options)),
      service_(std::move(service)),
      pool_(ThreadPool::Resolve(options_.num_threads)) {}

Result<std::unique_ptr<ProvenanceServer>> ProvenanceServer::Start(
    ProvenanceService service, Options options) {
  if (options.oplog != nullptr) {
    // Attach before the first frame can arrive: a mutation that slipped in
    // unlogged would be invisible to replicas and to crash recovery.
    service.AttachOpLog(options.oplog);
  }
  std::unique_ptr<ProvenanceServer> server(
      new ProvenanceServer(std::move(service), std::move(options)));
  server->RegisterMetrics();  // before any frame can record
  SKL_RETURN_NOT_OK(server->Listen());
  SKL_RETURN_NOT_OK(server->StartIoThreads());
  return server;
}

ProvenanceServer::~ProvenanceServer() { Shutdown(); }

Status ProvenanceServer::Listen() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Status::Unavailable(Errno("socket()"));
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    return Status::InvalidArgument(
        "bind_address must be a numeric IPv4 address, got '" +
        options_.bind_address + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Status::Unavailable(
        Errno(("bind " + options_.bind_address + ":" +
               std::to_string(options_.port))
                  .c_str()));
  }
  if (::listen(listen_fd_, 128) != 0) {
    return Status::Unavailable(Errno("listen()"));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) !=
      0) {
    return Status::Unavailable(Errno("getsockname()"));
  }
  port_ = ntohs(bound.sin_port);
  return Status::OK();
}

Status ProvenanceServer::StartIoThreads() {
  const unsigned requested =
      options_.num_io_threads == 0 ? 1u : options_.num_io_threads;
  const size_t n = std::min(requested, 64u);
  for (size_t i = 0; i < n; ++i) {
    auto io = std::make_unique<IoThread>();
    io->index = i;
    io->epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
    if (io->epoll_fd < 0) return Status::Unavailable(Errno("epoll_create1()"));
    io->event_fd = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    if (io->event_fd < 0) return Status::Unavailable(Errno("eventfd()"));
    epoll_event ev{};
    ev.events = EPOLLIN;  // level-triggered is right for a wakeup counter
    ev.data.u64 = kEventFdTag;
    if (::epoll_ctl(io->epoll_fd, EPOLL_CTL_ADD, io->event_fd, &ev) != 0) {
      return Status::Unavailable(Errno("epoll_ctl(eventfd)"));
    }
    io_threads_.push_back(std::move(io));
  }
  // The listener lives in thread 0's epoll, edge-triggered: DoAccept drains
  // to EAGAIN, and the fd-exhaustion retry path re-polls it by deadline.
  const int flags = ::fcntl(listen_fd_, F_GETFL, 0);
  if (flags < 0 || ::fcntl(listen_fd_, F_SETFL, flags | O_NONBLOCK) != 0) {
    return Status::Unavailable(Errno("fcntl(listen, O_NONBLOCK)"));
  }
  epoll_event ev{};
  ev.events = EPOLLIN | EPOLLET;
  ev.data.u64 = kListenFdTag;
  if (::epoll_ctl(io_threads_[0]->epoll_fd, EPOLL_CTL_ADD, listen_fd_, &ev) !=
      0) {
    return Status::Unavailable(Errno("epoll_ctl(listen)"));
  }
  for (auto& io : io_threads_) {
    io->thread = std::thread([this, p = io.get()] { IoLoop(p->index); });
  }
  return Status::OK();
}

int ProvenanceServer::LoopTimeoutMs(const IoThread& io) const {
  int64_t timeout = -1;  // block until an event or a nudge
  auto consider = [&](int64_t ms) {
    if (timeout < 0 || ms < timeout) timeout = ms;
  };
  if (options_.idle_timeout_ms > 0 && !io.conns.empty()) {
    consider(MsUntil(io.next_idle_scan));
  }
  if (io.accept_retry_armed) consider(MsUntil(io.accept_retry_at));
  if (io.stop_seen && !io.conns.empty()) consider(50);  // drain-grace ticks
  if (timeout > 60000) timeout = 60000;
  return static_cast<int>(timeout);
}

void ProvenanceServer::IoLoop(size_t index) {
  IoThread& io = *io_threads_[index];
  const uint32_t idle_scan_ms =
      options_.idle_timeout_ms > 0
          ? std::clamp(options_.idle_timeout_ms / 4, 10u, 1000u)
          : 0;
  io.next_idle_scan = Clock::now() + std::chrono::milliseconds(idle_scan_ms);
  std::array<epoll_event, 128> events;
  for (;;) {
    const int n = ::epoll_wait(io.epoll_fd, events.data(),
                               static_cast<int>(events.size()),
                               LoopTimeoutMs(io));
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // epoll itself failed; nothing sane left to do
    }
    epoll_wakeups_.fetch_add(1, std::memory_order_relaxed);
    bool accept_ready = false;
    for (int i = 0; i < n; ++i) {
      const epoll_event& ev = events[i];
      if (ev.data.u64 == kEventFdTag) {
        uint64_t drained;
        while (::read(io.event_fd, &drained, sizeof(drained)) > 0) {
        }
      } else if (ev.data.u64 == kListenFdTag) {
        accept_ready = true;
      } else {
        // Closed-this-turn conns were erased from the map but their
        // pointers stay valid via `retired`; the lookup filters them out.
        // New fds are only adopted after this event sweep, so an entry
        // found under this fd is the event's connection.
        auto it = io.conns.find(static_cast<Conn*>(ev.data.ptr)->fd);
        if (it == io.conns.end() ||
            it->second.get() != static_cast<Conn*>(ev.data.ptr)) {
          continue;
        }
        std::shared_ptr<Conn> c = it->second;
        if (ev.events & EPOLLOUT) HandleWritable(io, c);
        if (ev.events & (EPOLLIN | EPOLLERR | EPOLLHUP)) ReadFrom(io, c);
        TryClose(io, c, /*force=*/false);
      }
    }
    std::vector<std::shared_ptr<Conn>> nudged;
    {
      std::lock_guard lock(io.nudge_mu);
      nudged.swap(io.nudges);
    }
    for (const auto& c : nudged) {
      if (!c->in_epoll) {
        AdoptConn(io, c);
      } else {
        ServiceNudge(io, c);
      }
    }
    if (stop_.load(std::memory_order_acquire)) {
      if (!io.stop_seen) {
        io.stop_seen = true;
        {
          std::lock_guard lock(state_mu_);
          io.drain_deadline =
              stop_time_ + std::chrono::milliseconds(options_.drain_grace_ms);
        }
        // Half-close every connection: already-decoded requests finish and
        // flush, idle ones close right away.
        std::vector<std::shared_ptr<Conn>> open;
        open.reserve(io.conns.size());
        for (const auto& [fd, c] : io.conns) open.push_back(c);
        for (const auto& c : open) {
          {
            std::lock_guard lock(c->mu);
            if (!c->closed && !c->read_closed) {
              ::shutdown(c->fd, SHUT_RD);
              c->read_closed = true;
            }
          }
          MaybeDispatch(c);
          TryClose(io, c, /*force=*/false);
        }
      } else if (!io.conns.empty() && Clock::now() >= io.drain_deadline) {
        // A peer that will not drain its responses must not wedge the
        // shutdown: past the grace window, close it mid-buffer.
        std::vector<std::shared_ptr<Conn>> open;
        open.reserve(io.conns.size());
        for (const auto& [fd, c] : io.conns) open.push_back(c);
        for (const auto& c : open) TryClose(io, c, /*force=*/true);
      }
    }
    if (io.index == 0 && !stop_.load(std::memory_order_acquire)) {
      const bool retry_due =
          io.accept_retry_armed && Clock::now() >= io.accept_retry_at;
      if (accept_ready || retry_due) DoAccept(io);
    }
    if (idle_scan_ms > 0 && Clock::now() >= io.next_idle_scan) {
      io.next_idle_scan =
          Clock::now() + std::chrono::milliseconds(idle_scan_ms);
      const auto cutoff =
          Clock::now() - std::chrono::milliseconds(options_.idle_timeout_ms);
      std::vector<std::shared_ptr<Conn>> expired;
      for (const auto& [fd, c] : io.conns) {
        std::lock_guard lock(c->mu);
        // "Idle" means nothing anywhere: no unread request, no running
        // dispatch, no unflushed response, and no socket bytes either way
        // since the cutoff. A half-received frame keeps a connection alive
        // exactly as long as bytes keep trickling in.
        if (!c->closed && !c->task_active && c->pending.empty() &&
            !c->terminal.has_value() && c->wbuf.size() == c->woff &&
            c->last_activity < cutoff) {
          expired.push_back(c);
        }
      }
      for (const auto& c : expired) {
        timed_out_total_.fetch_add(1, std::memory_order_relaxed);
        TryClose(io, c, /*force=*/true);
      }
    }
    io.retired.clear();
    if (stop_.load(std::memory_order_acquire) && io.conns.empty()) break;
  }
}

void ProvenanceServer::DoAccept(IoThread& io) {
  io.accept_retry_armed = false;
  for (;;) {
    if (stop_.load(std::memory_order_acquire)) return;
    const int fd =
        ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS ||
          errno == ENOMEM) {
        // fd exhaustion is transient: pending handshakes keep waiting in
        // the listen backlog, so back off and retry by deadline instead of
        // abandoning the accept path (the edge-triggered event is spent).
        accept_backoffs_.fetch_add(1, std::memory_order_relaxed);
        io.accept_backoff_ms =
            io.accept_backoff_ms == 0
                ? 10
                : std::min(io.accept_backoff_ms * 2, 1000u);
        io.accept_retry_armed = true;
        io.accept_retry_at =
            Clock::now() + std::chrono::milliseconds(io.accept_backoff_ms);
        return;
      }
      return;  // listener shut down (EINVAL after BeginShutdown) or fatal
    }
    io.accept_backoff_ms = 0;
    // Responses are small frames; without TCP_NODELAY, Nagle holds each one
    // back waiting for the peer's (delayed) ACK and pipelined throughput
    // collapses to the 40ms delayed-ACK clock.
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    if (!RegisterConnection()) {
      ::close(fd);  // raced a shutdown: refuse politely
      continue;
    }
    accepted_total_.fetch_add(1, std::memory_order_relaxed);
    const size_t target =
        next_io_.fetch_add(1, std::memory_order_relaxed) % io_threads_.size();
    auto conn = std::make_shared<Conn>(fd, target, options_.max_frame_bytes);
    conn->last_activity = Clock::now();
    if (target == io.index) {
      AdoptConn(io, conn);
    } else {
      NudgeOwner(conn);  // the owner adopts it on its next loop turn
    }
  }
}

void ProvenanceServer::AdoptConn(IoThread& io,
                                 const std::shared_ptr<Conn>& conn) {
  epoll_event ev{};
  ev.events = EPOLLIN | EPOLLET;
  ev.data.ptr = conn.get();
  if (::epoll_ctl(io.epoll_fd, EPOLL_CTL_ADD, conn->fd, &ev) != 0) {
    {
      std::lock_guard lock(conn->mu);
      conn->closed = true;
      ::close(conn->fd);
    }
    UnregisterConnection();
    return;
  }
  conn->in_epoll = true;
  io.conns.emplace(conn->fd, conn);
  if (stop_.load(std::memory_order_acquire)) {
    // Raced BeginShutdown after registration: this thread's half-close
    // sweep already ran, so apply it here.
    std::lock_guard lock(conn->mu);
    if (!conn->read_closed) {
      ::shutdown(conn->fd, SHUT_RD);
      conn->read_closed = true;
    }
  }
  // Edge-triggered: bytes may have arrived before the ADD; read them now.
  ReadFrom(io, conn);
  TryClose(io, conn, /*force=*/false);
}

void ProvenanceServer::ReadFrom(IoThread& io, const std::shared_ptr<Conn>& c) {
  (void)io;
  uint8_t buf[65536];
  bool progress = false;
  for (;;) {
    {
      std::lock_guard lock(c->mu);
      if (c->closed || c->read_closed || c->paused || c->read_throttled) {
        break;
      }
    }
    // Drain frames already buffered in the decoder before touching the
    // socket: the pending-frame throttle can trip mid-chunk, leaving
    // complete frames behind in the decoder with the socket already
    // empty — no readability edge will ever revisit them, so the resume
    // path must decode first, recv second.
    bool poisoned = false;
    bool throttled = false;
    for (;;) {
      Result<std::optional<Frame>> next = c->decoder.Next();
      if (!next.ok()) {
        // Frame desynchronization (corrupted header): queue one
        // best-effort error — emitted after the replies to frames that
        // did decode — then drop the connection; its byte stream can no
        // longer be trusted to contain frame boundaries.
        std::lock_guard lock(c->mu);
        c->terminal = next.status();
        c->read_closed = true;
        poisoned = true;
        break;
      }
      if (!next->has_value()) break;  // incomplete: read more
      progress = true;
      std::lock_guard lock(c->mu);
      c->pending.push_back({std::move(**next), Clock::now()});
      if (c->pending.size() >= kMaxPendingFrames) {
        c->read_throttled = true;  // dispatch drains it, then reads resume
        throttled = true;
        break;
      }
    }
    if (poisoned || throttled) break;
    const ssize_t n = ::recv(c->fd, buf, sizeof(buf), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      std::lock_guard lock(c->mu);
      c->io_error = true;  // transport dead; responses are undeliverable
      c->read_closed = true;
      break;
    }
    if (n == 0) {
      std::lock_guard lock(c->mu);
      c->read_closed = true;  // peer half-closed (or our shutdown sweep)
      break;
    }
    progress = true;
    c->decoder.Feed({buf, static_cast<size_t>(n)});
  }
  if (progress) {
    std::lock_guard lock(c->mu);
    c->last_activity = Clock::now();
  }
  MaybeDispatch(c);
}

void ProvenanceServer::MaybeDispatch(const std::shared_ptr<Conn>& c) {
  {
    std::lock_guard lock(c->mu);
    if (c->closed || c->task_active || c->paused) return;
    const bool work = !c->pending.empty() ||
                      (c->terminal.has_value() && !c->terminal_encoded);
    if (!work) return;
    c->task_active = true;
  }
  try {
    pool_.Submit([this, c] { DispatchLoop(c); });
  } catch (...) {
    std::lock_guard lock(c->mu);
    c->task_active = false;
    c->io_error = true;  // cannot serve it; the owner will close
  }
}

void ProvenanceServer::DispatchLoop(std::shared_ptr<Conn> c) {
  for (;;) {
    Conn::PendingFrame pending;
    bool resume_read = false;
    {
      std::lock_guard lock(c->mu);
      if (c->closed ||
          c->wbuf.size() - c->woff > options_.max_write_buffer_bytes) {
        if (!c->closed && !c->paused) {
          // Peer stopped draining: suspend this connection's reads and
          // dispatch until the buffer empties below half (FlushAndSettle
          // resumes us). Bounds memory per connection.
          c->paused = true;
          backpressured_total_.fetch_add(1, std::memory_order_relaxed);
        }
        c->task_active = false;
        break;
      }
      if (c->pending.empty()) {
        if (c->terminal.has_value() && !c->terminal_encoded) {
          Frame err;
          err.type = MsgType::kError;
          err.request_id = 0;
          err.payload = EncodeErrorPayload(*c->terminal);
          EncodeFrame(err, &c->wbuf);
          c->terminal_encoded = true;
          c->close_after_flush = true;
        }
        c->task_active = false;
        break;
      }
      pending = std::move(c->pending.front());
      c->pending.pop_front();
      if (c->read_throttled && c->pending.size() <= kMaxPendingFrames / 2) {
        c->read_throttled = false;
        resume_read = true;
      }
    }
    if (resume_read) NudgeOwner(c);
    const Frame& frame = pending.frame;
    std::vector<uint8_t> out;
    bool shutdown_after_reply = false;
    uint64_t trace_id = 0;
    const auto exec_start = Clock::now();
    HandleFrame(frame, &out, &shutdown_after_reply, &trace_id);
    RecordFrameTiming(frame, trace_id,
                      UsBetween(pending.enqueued, exec_start),
                      UsBetween(exec_start, Clock::now()));
    bool flush_now;
    {
      std::lock_guard lock(c->mu);
      c->wbuf.insert(c->wbuf.end(), out.begin(), out.end());
      if (shutdown_after_reply) c->shutdown_after_flush = true;
      // Batch small pipelined replies into large sends; flush eagerly once
      // a chunk has built up (or a shutdown reply must get out).
      flush_now = c->wbuf.size() - c->woff >= kFlushChunkBytes ||
                  c->shutdown_after_flush;
    }
    if (flush_now) FlushAndSettle(c);
  }
  FlushAndSettle(c);
}

void ProvenanceServer::FlushAndSettle(const std::shared_ptr<Conn>& c) {
  bool begin_shutdown = false;
  bool redispatch = false;
  bool nudge = false;
  {
    std::lock_guard lock(c->mu);
    if (c->closed) return;
    if (!c->io_error) {
      while (c->woff < c->wbuf.size()) {
        const ssize_t n =
            ::send(c->fd, c->wbuf.data() + c->woff, c->wbuf.size() - c->woff,
                   MSG_NOSIGNAL | MSG_DONTWAIT);
        if (n < 0) {
          if (errno == EINTR) continue;
          if (errno == EAGAIN || errno == EWOULDBLOCK) {
            c->want_write = true;  // socket full: EPOLLOUT finishes the job
            break;
          }
          c->io_error = true;  // peer gone mid-response
          break;
        }
        c->woff += static_cast<size_t>(n);
        c->last_activity = Clock::now();
      }
      if (c->woff == c->wbuf.size()) {
        c->wbuf.clear();
        c->woff = 0;
        c->want_write = false;
      } else if (c->woff >= kFlushChunkBytes) {
        c->wbuf.erase(c->wbuf.begin(),
                      c->wbuf.begin() + static_cast<ptrdiff_t>(c->woff));
        c->woff = 0;
      }
    }
    const size_t backlog = c->wbuf.size() - c->woff;
    if (c->io_error) {
      nudge = true;  // owner force-closes
    } else {
      if (backlog == 0 && c->shutdown_after_flush) {
        c->shutdown_after_flush = false;
        begin_shutdown = true;  // the OK reply is out first
      }
      if (c->paused && backlog <= options_.max_write_buffer_bytes / 2) {
        c->paused = false;  // peer drained: resume dispatch and reads
        redispatch = true;
        nudge = true;
      }
      if (c->want_write && !c->epollout_armed) nudge = true;
      if (backlog == 0 && (c->close_after_flush || c->read_closed) &&
          !c->task_active && c->pending.empty() &&
          !(c->terminal.has_value() && !c->terminal_encoded)) {
        nudge = true;  // nothing left: owner closes
      }
    }
  }
  if (begin_shutdown) BeginShutdown();
  if (redispatch) MaybeDispatch(c);
  if (nudge) NudgeOwner(c);
}

void ProvenanceServer::HandleWritable(IoThread& io,
                                      const std::shared_ptr<Conn>& c) {
  FlushAndSettle(c);
  std::lock_guard lock(c->mu);
  if (c->closed) return;
  if (!c->want_write && c->epollout_armed) {
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLET;
    ev.data.ptr = c.get();
    ::epoll_ctl(io.epoll_fd, EPOLL_CTL_MOD, c->fd, &ev);
    c->epollout_armed = false;
  }
}

void ProvenanceServer::ServiceNudge(IoThread& io,
                                    const std::shared_ptr<Conn>& c) {
  bool arm = false;
  bool read_more = false;
  {
    std::lock_guard lock(c->mu);
    if (c->closed) return;
    if (c->want_write && !c->epollout_armed) {
      // EPOLL_CTL_MOD re-arms the edge: if the socket is already writable
      // again, the event fires immediately — no stall window.
      epoll_event ev{};
      ev.events = EPOLLIN | EPOLLOUT | EPOLLET;
      ev.data.ptr = c.get();
      if (::epoll_ctl(io.epoll_fd, EPOLL_CTL_MOD, c->fd, &ev) == 0) {
        c->epollout_armed = true;
      }
      arm = true;
    }
    read_more = !c->read_closed && !c->paused && !c->read_throttled;
  }
  (void)arm;
  // A nudge can mean "resume reading" (backpressure lifted, throttle
  // cleared): the data's edge was consumed long ago, so read explicitly.
  if (read_more) ReadFrom(io, c);
  MaybeDispatch(c);
  TryClose(io, c, /*force=*/false);
}

void ProvenanceServer::TryClose(IoThread& io, const std::shared_ptr<Conn>& c,
                                bool force) {
  {
    std::lock_guard lock(c->mu);
    if (c->closed) return;
    if (!force && !c->io_error) {
      const size_t backlog = c->wbuf.size() - c->woff;
      const bool work_left =
          c->task_active || !c->pending.empty() ||
          (c->terminal.has_value() && !c->terminal_encoded) || backlog != 0;
      const bool done =
          (c->read_closed || c->close_after_flush) && !work_left;
      if (!done) return;
    }
    c->closed = true;
    ::close(c->fd);  // under mu: every socket write checks `closed` first
  }
  io.conns.erase(c->fd);
  io.retired.push_back(c);  // keep Conn* in this turn's events valid
  UnregisterConnection();
}

void ProvenanceServer::NudgeOwner(const std::shared_ptr<Conn>& c) {
  IoThread& io = *io_threads_[c->io_index];
  {
    std::lock_guard lock(io.nudge_mu);
    io.nudges.push_back(c);
  }
  const uint64_t one = 1;
  [[maybe_unused]] ssize_t n =
      ::write(io.event_fd, &one, sizeof(one));  // EAGAIN (counter full) is
                                                // fine: a wakeup is pending
}

bool ProvenanceServer::RegisterConnection() {
  std::lock_guard lock(state_mu_);
  if (stop_.load(std::memory_order_acquire)) return false;
  ++open_connections_;
  return true;
}

void ProvenanceServer::UnregisterConnection() {
  std::lock_guard lock(state_mu_);
  if (--open_connections_ == 0) drained_cv_.notify_all();
}

ReactorStats ProvenanceServer::reactor_stats() const {
  ReactorStats s;
  {
    std::lock_guard lock(state_mu_);
    s.connections_open = open_connections_;
  }
  s.connections_accepted = accepted_total_.load(std::memory_order_relaxed);
  s.connections_timed_out = timed_out_total_.load(std::memory_order_relaxed);
  s.connections_backpressured =
      backpressured_total_.load(std::memory_order_relaxed);
  s.epoll_wakeups = epoll_wakeups_.load(std::memory_order_relaxed);
  s.accept_backoffs = accept_backoffs_.load(std::memory_order_relaxed);
  return s;
}

void ProvenanceServer::RegisterMetrics() {
  // Two passes so each histogram family's per-opcode series are registered
  // contiguously — the exposition emits one # HELP/# TYPE header per
  // family, and Prometheus requires a family's samples to be adjacent.
  for (int pass = 0; pass < 2; ++pass) {
    for (uint8_t op = static_cast<uint8_t>(MsgType::kPing);
         op <= static_cast<uint8_t>(MsgType::kApplySpecDelta); ++op) {
      if (!IsRequestType(op)) continue;
      const std::string labels =
          std::string("op=\"") + MsgTypeName(static_cast<MsgType>(op)) + "\"";
      if (pass == 0) {
        queue_hist_[op] = metrics_.AddHistogram(
            "skl_server_queue_wait_us",
            "Microseconds a decoded request waited before dispatch", labels);
      } else {
        exec_hist_[op] = metrics_.AddHistogram(
            "skl_server_execute_us",
            "Microseconds spent dispatching a request and encoding its reply",
            labels);
      }
    }
  }
  // Replication lag at scrape time: on a primary applied == target (the
  // op-log head); on a replica the tailer-reported pair, clamped so a
  // freshly updated applied LSN never reads as ahead of a stale target.
  auto target = [this] {
    const uint64_t applied = CurrentAppliedLsn();
    const uint64_t t = options_.oplog != nullptr
                           ? options_.oplog->last_lsn()
                           : target_lsn_.load(std::memory_order_acquire);
    return std::max(t, applied);
  };
  metrics_.AddCallbackGauge("skl_replication_applied_lsn",
                            "Last op-log LSN applied by this server", "",
                            [this] { return CurrentAppliedLsn(); });
  metrics_.AddCallbackGauge(
      "skl_replication_target_lsn",
      "Primary's last known op-log LSN (apply-lag denominator)", "", target);
  metrics_.AddCallbackGauge(
      "skl_replication_apply_lag",
      "Ops the primary has logged that this server has not yet applied", "",
      [this, target] { return target() - CurrentAppliedLsn(); });
}

const LatencyHistogram* ProvenanceServer::queue_wait_histogram(
    MsgType type) const {
  const size_t op = static_cast<uint8_t>(type);
  return op < kOpcodeSlots ? queue_hist_[op] : nullptr;
}

const LatencyHistogram* ProvenanceServer::execute_histogram(
    MsgType type) const {
  const size_t op = static_cast<uint8_t>(type);
  return op < kOpcodeSlots ? exec_hist_[op] : nullptr;
}

std::vector<SlowQueryEntry> ProvenanceServer::slow_queries() const {
  std::lock_guard lock(slow_mu_);
  return {slow_queries_.begin(), slow_queries_.end()};
}

void ProvenanceServer::RecordFrameTiming(const Frame& frame,
                                         uint64_t trace_id, uint64_t queue_us,
                                         uint64_t exec_us) {
  const size_t op = static_cast<uint8_t>(frame.type);
  if (op >= kOpcodeSlots || queue_hist_[op] == nullptr) return;
  queue_hist_[op]->Record(queue_us);
  exec_hist_[op]->Record(exec_us);
  const uint32_t threshold = options_.slow_query_threshold_us;
  if (threshold == 0 || queue_us + exec_us <= threshold) return;
  SlowQueryEntry entry;
  entry.trace_id = trace_id;
  entry.opcode = static_cast<uint8_t>(frame.type);
  entry.run_id = PeekRunId(frame);
  if (entry.run_id != 0) {
    // Slow path only: a brief shared service lock to resolve the owning
    // shard (the registry can be swapped by kLoadSnapshot/ReplaceService).
    std::shared_lock service_lock(service_mu_);
    entry.shard = service_.shard_of(RunId::FromValue(entry.run_id));
  }
  entry.queue_us = queue_us;
  entry.exec_us = exec_us;
  std::lock_guard lock(slow_mu_);
  if (slow_queries_.size() >= kSlowQueryLogCapacity) {
    slow_queries_.pop_front();  // ring: newest kSlowQueryLogCapacity win
  }
  slow_queries_.push_back(entry);
}

std::string ProvenanceServer::RenderMetricsLocked() {
  std::string text = metrics_.RenderPrometheus();
  text += service_.metrics().RenderPrometheus();
  if (options_.oplog != nullptr) {
    text +=
        "# HELP skl_oplog_append_us Microseconds per op-log append "
        "(serialize+write+flush, fsync included)\n"
        "# TYPE skl_oplog_append_us histogram\n";
    RenderHistogramPrometheus(options_.oplog->append_histogram(),
                              "skl_oplog_append_us", "", &text);
    text +=
        "# HELP skl_oplog_fsync_us Microseconds per op-log fsync\n"
        "# TYPE skl_oplog_fsync_us histogram\n";
    RenderHistogramPrometheus(options_.oplog->fsync_histogram(),
                              "skl_oplog_fsync_us", "", &text);
  }
  return text;
}

std::string ProvenanceServer::RenderMetricsText() {
  std::shared_lock lock(service_mu_);
  return RenderMetricsLocked();
}

void ProvenanceServer::HandleFrame(const Frame& frame,
                                   std::vector<uint8_t>* out,
                                   bool* shutdown_after_reply,
                                   uint64_t* trace_id) {
  *trace_id = 0;
  const bool version_in_range = frame.version <= kProtocolVersion &&
                                frame.version >= kMinSupportedProtocolVersion;
  MsgType reply_type = MsgType::kReply;
  Result<std::vector<uint8_t>> payload = [&]() -> Result<std::vector<uint8_t>> {
    if (!version_in_range) {
      // Name both ends of the supported range so a mismatched peer's log
      // says exactly which side must upgrade (asserted by protocol_test).
      return Status::InvalidArgument(
          "unsupported protocol version " + std::to_string(frame.version) +
          "; this server speaks versions " +
          std::to_string(kMinSupportedProtocolVersion) + " through " +
          std::to_string(kProtocolVersion));
    }
    if (!IsRequestType(static_cast<uint8_t>(frame.type))) {
      return Status::InvalidArgument(
          "opcode " + std::to_string(static_cast<uint8_t>(frame.type)) +
          " is not a request");
    }
    if (frame.type == MsgType::kLoadSnapshot) {
      // The one request that replaces the service object outright: exclude
      // every other in-flight dispatch for its duration.
      std::unique_lock lock(service_mu_);
      return Dispatch(frame, shutdown_after_reply, &reply_type, trace_id);
    }
    std::shared_lock lock(service_mu_);
    return Dispatch(frame, shutdown_after_reply, &reply_type, trace_id);
  }();

  Frame reply;
  reply.version = frame.version;  // answer in the requester's version
  reply.request_id = frame.request_id;
  if (payload.ok()) {
    reply.type = reply_type;
    reply.payload = std::move(payload).value();
  } else {
    reply.type = MsgType::kError;
    // Name the failing request so client-side logs are self-explanatory.
    Status named(payload.status().code(),
                 std::string(MsgTypeName(frame.type)) + ": " +
                     payload.status().message());
    // v5 errors echo the request's trace id (0 when the payload never got
    // as far as the trace field); an out-of-range version is untrusted and
    // keeps the legacy code+message shape.
    reply.payload = version_in_range && frame.version >= 5
                        ? EncodeErrorPayload(named, *trace_id)
                        : EncodeErrorPayload(named);
  }
  EncodeFrame(reply, out);
}

Result<std::vector<uint8_t>> ProvenanceServer::Dispatch(
    const Frame& frame, bool* shutdown_after_reply, MsgType* reply_type,
    uint64_t* trace_id) {
  PayloadReader reader(frame.payload);
  PayloadWriter out;
  if (options_.read_only &&
      (frame.type == MsgType::kAddRun || frame.type == MsgType::kImportRun ||
       frame.type == MsgType::kRemoveRun ||
       frame.type == MsgType::kLoadSnapshot ||
       frame.type == MsgType::kApplySpecDelta)) {
    return Status::InvalidArgument(
        "read-only replica; writes must go to the primary");
  }
  const bool v3 = frame.version >= 3;
  const bool v5 = frame.version >= 5;
  // Version-5 payloads end with a client-generated trace-id varint
  // (docs/OBSERVABILITY.md) — the last field of every request, after the
  // v3 read token on reads. Every case ends its payload through here.
  auto end_request = [&](PayloadReader& r) -> Status {
    if (v5) {
      Result<uint64_t> trace = r.U64();
      if (!trace.ok()) return trace.status();
      *trace_id = *trace;
    }
    return r.ExpectEnd();
  };
  // Version-3 read payloads additionally carry a min-LSN token before the
  // trace id (read-your-writes, docs/REPLICATION.md): if this server has
  // not applied that far yet, the request bounces as kRetryAt carrying the
  // applied LSN instead of answering from a stale registry. A primary
  // never bounces — appends ack only after the log holds the op, so its
  // applied LSN covers every token a client can legitimately hold.
  bool bounce = false;
  uint64_t bounce_applied = 0;
  auto end_read = [&](PayloadReader& r) -> Status {
    if (!v3) return end_request(r);
    Result<uint64_t> min_lsn = r.U64();
    if (!min_lsn.ok()) return min_lsn.status();
    SKL_RETURN_NOT_OK(end_request(r));
    const uint64_t applied = CurrentAppliedLsn();
    if (*min_lsn > applied) {
      bounce = true;
      bounce_applied = applied;
    }
    return Status::OK();
  };
  switch (frame.type) {
    case MsgType::kPing: {
      SKL_RETURN_NOT_OK(end_request(reader));
      break;
    }
    case MsgType::kShutdown: {
      SKL_RETURN_NOT_OK(end_request(reader));
      *shutdown_after_reply = true;  // reply first, then drain
      break;
    }
    case MsgType::kReaches: {
      SKL_ASSIGN_OR_RETURN(uint64_t run, reader.U64());
      SKL_ASSIGN_OR_RETURN(VertexId v, ReadU32(reader, "vertex id"));
      SKL_ASSIGN_OR_RETURN(VertexId w, ReadU32(reader, "vertex id"));
      SKL_RETURN_NOT_OK(end_read(reader));
      if (bounce) break;
      SKL_ASSIGN_OR_RETURN(bool answer,
                           service_.Reaches(RunId::FromValue(run), v, w));
      out.Boolean(answer);
      break;
    }
    case MsgType::kReachesBatch: {
      SKL_ASSIGN_OR_RETURN(uint64_t run, reader.U64());
      SKL_ASSIGN_OR_RETURN(uint64_t count, reader.U64());
      std::vector<VertexPair> pairs;
      for (uint64_t i = 0; i < count; ++i) {  // reads bound the allocation
        SKL_ASSIGN_OR_RETURN(VertexId v, ReadU32(reader, "vertex id"));
        SKL_ASSIGN_OR_RETURN(VertexId w, ReadU32(reader, "vertex id"));
        pairs.push_back({v, w});
      }
      SKL_RETURN_NOT_OK(end_read(reader));
      if (bounce) break;
      SKL_ASSIGN_OR_RETURN(
          std::vector<bool> answers,
          service_.ReachesBatch(RunId::FromValue(run), pairs));
      out.U64(answers.size());
      for (bool answer : answers) out.Boolean(answer);
      break;
    }
    case MsgType::kDependsOn: {
      SKL_ASSIGN_OR_RETURN(uint64_t run, reader.U64());
      SKL_ASSIGN_OR_RETURN(DataItemId x, ReadU32(reader, "item id"));
      SKL_ASSIGN_OR_RETURN(DataItemId x_from, ReadU32(reader, "item id"));
      SKL_RETURN_NOT_OK(end_read(reader));
      if (bounce) break;
      SKL_ASSIGN_OR_RETURN(
          bool answer, service_.DependsOn(RunId::FromValue(run), x, x_from));
      out.Boolean(answer);
      break;
    }
    case MsgType::kDependsOnBatch: {
      SKL_ASSIGN_OR_RETURN(uint64_t run, reader.U64());
      SKL_ASSIGN_OR_RETURN(uint64_t count, reader.U64());
      std::vector<ItemPair> pairs;
      for (uint64_t i = 0; i < count; ++i) {
        SKL_ASSIGN_OR_RETURN(DataItemId x, ReadU32(reader, "item id"));
        SKL_ASSIGN_OR_RETURN(DataItemId x_from, ReadU32(reader, "item id"));
        pairs.push_back({x, x_from});
      }
      SKL_RETURN_NOT_OK(end_read(reader));
      if (bounce) break;
      SKL_ASSIGN_OR_RETURN(
          std::vector<bool> answers,
          service_.DependsOnBatch(RunId::FromValue(run), pairs));
      out.U64(answers.size());
      for (bool answer : answers) out.Boolean(answer);
      break;
    }
    case MsgType::kModuleDependsOnData: {
      SKL_ASSIGN_OR_RETURN(uint64_t run, reader.U64());
      SKL_ASSIGN_OR_RETURN(VertexId v, ReadU32(reader, "vertex id"));
      SKL_ASSIGN_OR_RETURN(DataItemId x, ReadU32(reader, "item id"));
      SKL_RETURN_NOT_OK(end_read(reader));
      if (bounce) break;
      SKL_ASSIGN_OR_RETURN(
          bool answer,
          service_.ModuleDependsOnData(RunId::FromValue(run), v, x));
      out.Boolean(answer);
      break;
    }
    case MsgType::kDataDependsOnModule: {
      SKL_ASSIGN_OR_RETURN(uint64_t run, reader.U64());
      SKL_ASSIGN_OR_RETURN(DataItemId x, ReadU32(reader, "item id"));
      SKL_ASSIGN_OR_RETURN(VertexId v, ReadU32(reader, "vertex id"));
      SKL_RETURN_NOT_OK(end_read(reader));
      if (bounce) break;
      SKL_ASSIGN_OR_RETURN(
          bool answer,
          service_.DataDependsOnModule(RunId::FromValue(run), x, v));
      out.Boolean(answer);
      break;
    }
    case MsgType::kAddRun: {
      SKL_ASSIGN_OR_RETURN(std::string xml, reader.Str());
      SKL_RETURN_NOT_OK(end_request(reader));
      SKL_ASSIGN_OR_RETURN(::skl::Run run, ReadRunXml(xml));
      SKL_ASSIGN_OR_RETURN(RunId id, service_.AddRun(run));
      out.U64(id.value());
      // v3 mutating replies carry an ack LSN >= the op's own: the token a
      // client pins later replica reads with (read-your-writes).
      if (v3) out.U64(service_.replication_lsn());
      break;
    }
    case MsgType::kImportRun: {
      SKL_ASSIGN_OR_RETURN(std::span<const uint8_t> blob, reader.Bytes());
      SKL_RETURN_NOT_OK(end_request(reader));
      SKL_ASSIGN_OR_RETURN(
          RunId id,
          service_.ImportRun(std::vector<uint8_t>(blob.begin(), blob.end())));
      out.U64(id.value());
      if (v3) out.U64(service_.replication_lsn());
      break;
    }
    case MsgType::kExportRun: {
      SKL_ASSIGN_OR_RETURN(uint64_t run, reader.U64());
      SKL_RETURN_NOT_OK(end_read(reader));
      if (bounce) break;
      SKL_ASSIGN_OR_RETURN(std::vector<uint8_t> blob,
                           service_.ExportRun(RunId::FromValue(run)));
      out.Bytes(blob);
      break;
    }
    case MsgType::kRemoveRun: {
      SKL_ASSIGN_OR_RETURN(uint64_t run, reader.U64());
      SKL_RETURN_NOT_OK(end_request(reader));
      SKL_RETURN_NOT_OK(service_.RemoveRun(RunId::FromValue(run)));
      if (v3) out.U64(service_.replication_lsn());
      break;
    }
    case MsgType::kListRuns: {
      SKL_RETURN_NOT_OK(end_read(reader));
      if (bounce) break;
      const std::vector<RunId> ids = service_.ListRuns();
      out.U64(ids.size());
      for (RunId id : ids) out.U64(id.value());
      break;
    }
    case MsgType::kRunStats: {
      SKL_ASSIGN_OR_RETURN(uint64_t run, reader.U64());
      SKL_RETURN_NOT_OK(end_read(reader));
      if (bounce) break;
      SKL_ASSIGN_OR_RETURN(RunStats stats,
                           service_.Stats(RunId::FromValue(run)));
      out.U64(stats.num_vertices);
      out.U64(stats.num_items);
      out.U64(stats.label_bits);
      out.U64(stats.context_bits);
      out.U64(stats.origin_bits);
      out.U64(stats.num_nonempty_plus);
      out.Boolean(stats.imported);
      break;
    }
    case MsgType::kServiceStats: {
      SKL_RETURN_NOT_OK(end_request(reader));
      const ServiceStats stats = service_.service_stats();
      out.U64(stats.num_runs);
      out.U64(stats.reaches_queries);
      out.U64(stats.depends_on_queries);
      out.U64(stats.module_data_queries);
      out.U64(stats.data_module_queries);
      out.U64(stats.batch_calls);
      out.U64(stats.runs_ingested);
      out.U64(stats.runs_imported);
      out.U64(stats.runs_removed);
      out.U64(stats.bulk_batches);
      out.U64(stats.snapshot_saves);
      out.U64(stats.cache_hits);
      out.U64(stats.cache_misses);
      if (v3) {
        // Applied/target LSN pair: equal on a primary, the lag
        // numerator/denominator on a replica. Clamped so a freshly updated
        // applied LSN never reads as ahead of a stale target.
        const uint64_t applied = CurrentAppliedLsn();
        uint64_t target =
            options_.oplog != nullptr
                ? options_.oplog->last_lsn()
                : target_lsn_.load(std::memory_order_acquire);
        target = std::max(target, applied);
        out.U64(applied);
        out.U64(target);
      }
      if (frame.version >= 4) {
        // Reactor counters (docs/NETWORK.md): these describe the server
        // process, not the registry — they do NOT reset on kLoadSnapshot.
        const ReactorStats rs = reactor_stats();
        out.U64(rs.connections_open);
        out.U64(rs.connections_accepted);
        out.U64(rs.connections_timed_out);
        out.U64(rs.connections_backpressured);
        out.U64(rs.epoll_wakeups);
        out.U64(rs.accept_backoffs);
      }
      if (frame.version >= 6) out.U64(stats.spec_epoch);
      break;
    }
    case MsgType::kSnapshotFetch: {
      SKL_RETURN_NOT_OK(end_request(reader));
      if (options_.oplog == nullptr) {
        return Status::InvalidArgument(
            "server has no replication log attached; start it with an "
            "op-log (e.g. sklctl serve --oplog=...) to serve replicas");
      }
      // Read the LSN *before* composing the snapshot: the bytes then
      // contain every op <= lsn (append-before-ack), and ops > lsn may
      // appear in both snapshot and stream — which is why replica apply is
      // idempotent.
      const uint64_t lsn = options_.oplog->last_lsn();
      SKL_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes,
                           service_.SnapshotBytes());
      out.U64(lsn);
      out.Bytes(bytes);
      break;
    }
    case MsgType::kSubscribe: {
      SKL_ASSIGN_OR_RETURN(uint64_t after_lsn, reader.U64());
      SKL_ASSIGN_OR_RETURN(uint64_t max_ops, reader.U64());
      SKL_RETURN_NOT_OK(end_request(reader));
      if (options_.oplog == nullptr) {
        return Status::InvalidArgument(
            "server has no replication log attached; start it with an "
            "op-log (e.g. sklctl serve --oplog=...) to serve replicas");
      }
      // Cap the batch so one subscribe cannot ask for an unbounded reply
      // frame; the tailer just comes back for the rest.
      const size_t capped =
          static_cast<size_t>(std::min<uint64_t>(max_ops, 4096));
      const std::vector<LogOp> ops =
          options_.oplog->ReadFrom(after_lsn, capped);
      *reply_type = MsgType::kLogEntries;
      out.U64(ops.size());
      for (const LogOp& op : ops) out.Bytes(SerializeLogOp(op));
      out.U64(options_.oplog->last_lsn());
      break;
    }
    case MsgType::kSaveSnapshot: {
      SKL_ASSIGN_OR_RETURN(std::string path, reader.Str());
      SKL_RETURN_NOT_OK(end_request(reader));
      SKL_RETURN_NOT_OK(service_.SaveSnapshot(path));
      break;
    }
    case MsgType::kLoadSnapshot: {
      // Caller holds service_mu_ exclusively (see HandleFrame). The swap
      // replaces the whole service — sharded registry, caches (fresh
      // generations) and ServiceStats counters included. Counters RESET on
      // load by contract: they describe the served lifetime of a registry,
      // not the process (asserted by net_server_test, documented in
      // docs/NETWORK.md). Runtime knobs (threads, shards, cache size) are
      // not part of the snapshot and carry over from the old service.
      SKL_ASSIGN_OR_RETURN(std::string path, reader.Str());
      SKL_RETURN_NOT_OK(end_request(reader));
      SKL_ASSIGN_OR_RETURN(
          ProvenanceService loaded,
          ProvenanceService::LoadSnapshot(
              path, service_.options(),
              {.use_mmap = options_.mmap_snapshots}));
      service_ = std::move(loaded);
      if (options_.oplog != nullptr) {
        // The swap dropped the old service's attachment; re-attach and
        // append a barrier so recovery and replicas know the registry was
        // replaced wholesale at this LSN (they chain through the snapshot
        // rather than replaying across it).
        service_.AttachOpLog(options_.oplog);
        LogOp barrier;
        barrier.kind = LogOp::Kind::kSnapshotBarrier;
        barrier.blob.assign(path.begin(), path.end());
        Result<uint64_t> appended =
            options_.oplog->Append(std::move(barrier));
        if (!appended.ok()) {
          return Status::Internal(
              "snapshot loaded but the op-log barrier append failed (" +
              appended.status().message() +
              "); the service is ahead of its replication log");
        }
      }
      break;
    }
    case MsgType::kMetrics: {
      SKL_RETURN_NOT_OK(end_request(reader));
      // service_mu_ is already held (shared) by HandleFrame, so render
      // through the lock-free body, not the public re-locking wrapper.
      out.Str(RenderMetricsLocked());
      break;
    }
    case MsgType::kSlowQueries: {
      SKL_RETURN_NOT_OK(end_request(reader));
      const std::vector<SlowQueryEntry> entries = slow_queries();
      out.U64(entries.size());
      for (const SlowQueryEntry& e : entries) {
        out.U64(e.trace_id);
        out.U64(e.opcode);
        out.U64(e.run_id);
        out.U64(e.shard);
        out.U64(e.queue_us);
        out.U64(e.exec_us);
      }
      break;
    }
    case MsgType::kApplySpecDelta: {
      SKL_ASSIGN_OR_RETURN(std::span<const uint8_t> blob, reader.Bytes());
      SKL_RETURN_NOT_OK(end_request(reader));
      SKL_ASSIGN_OR_RETURN(SpecDelta delta, DeserializeSpecDelta(blob));
      // Internally synchronized (the service's epoch mutex): the shared
      // service_mu_ held by HandleFrame is enough, exactly as for AddRun.
      SKL_ASSIGN_OR_RETURN(uint64_t epoch, service_.ApplySpecDelta(delta));
      out.U64(epoch);
      if (v3) out.U64(service_.replication_lsn());
      break;
    }
    default:
      return Status::InvalidArgument(
          "opcode " + std::to_string(static_cast<uint8_t>(frame.type)) +
          " is not dispatchable");
  }
  if (bounce) {
    *reply_type = MsgType::kRetryAt;
    PayloadWriter behind;
    behind.U64(bounce_applied);
    return std::move(behind).Finish();
  }
  return std::move(out).Finish();
}

uint64_t ProvenanceServer::CurrentAppliedLsn() const {
  return options_.oplog != nullptr
             ? options_.oplog->last_lsn()
             : applied_lsn_.load(std::memory_order_acquire);
}

void ProvenanceServer::SetReplicationLsns(uint64_t applied_lsn,
                                          uint64_t target_lsn) {
  applied_lsn_.store(applied_lsn, std::memory_order_release);
  target_lsn_.store(target_lsn, std::memory_order_release);
}

void ProvenanceServer::ReplaceService(ProvenanceService service) {
  std::unique_lock lock(service_mu_);
  service_ = std::move(service);
  if (options_.oplog != nullptr) service_.AttachOpLog(options_.oplog);
}

void ProvenanceServer::WithServiceShared(
    const std::function<void(ProvenanceService&)>& fn) {
  std::shared_lock lock(service_mu_);
  fn(service_);
}

void ProvenanceServer::BeginShutdown() {
  {
    std::lock_guard lock(state_mu_);
    if (stop_.load(std::memory_order_acquire)) return;
    stop_time_ = Clock::now();
    stop_.store(true, std::memory_order_release);
    // Refuse new connections immediately (shutdown on a listening socket
    // makes connects fail); the fd itself is closed after the join in
    // Wait().
    if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
    drained_cv_.notify_all();
  }
  // Wake every reactor thread: each runs its half-close sweep and winds
  // down once its connections drain.
  for (const auto& io : io_threads_) {
    const uint64_t one = 1;
    [[maybe_unused]] ssize_t n = ::write(io->event_fd, &one, sizeof(one));
  }
}

void ProvenanceServer::Wait() {
  {
    std::unique_lock lock(state_mu_);
    drained_cv_.wait(lock, [&] {
      return stop_.load(std::memory_order_acquire) && open_connections_ == 0;
    });
  }
  std::lock_guard join_lock(join_mu_);
  for (const auto& io : io_threads_) {
    if (io->thread.joinable()) io->thread.join();
  }
  std::lock_guard lock(state_mu_);
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void ProvenanceServer::Shutdown() {
  BeginShutdown();
  Wait();
}

}  // namespace skl
