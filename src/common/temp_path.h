// Pid-qualified scratch-file paths for driver binaries (examples, benches):
// concurrent invocations on one machine — parallel CI jobs on a shared
// runner, say — must not clobber each other's temp files.
#ifndef SKL_COMMON_TEMP_PATH_H_
#define SKL_COMMON_TEMP_PATH_H_

#include <string>

namespace skl {

/// "<tmpdir>/<stem>.<pid><suffix>"; the pid qualifier is dropped on
/// platforms without one. `suffix` should include its dot (".skls").
std::string PidQualifiedTempPath(const std::string& stem,
                                 const std::string& suffix);

}  // namespace skl

#endif  // SKL_COMMON_TEMP_PATH_H_
