#include "src/common/temp_path.h"

#include <filesystem>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace skl {

std::string PidQualifiedTempPath(const std::string& stem,
                                 const std::string& suffix) {
#if defined(__unix__) || defined(__APPLE__)
  const std::string name = stem + "." + std::to_string(::getpid()) + suffix;
#else
  const std::string name = stem + suffix;
#endif
  return (std::filesystem::temp_directory_path() / name).string();
}

}  // namespace skl
