// CRC-32 (IEEE 802.3 polynomial, the zlib/PNG variant) used to checksum
// snapshot sections: a flipped bit in a persisted service snapshot must be
// reported as corruption, never parsed into a wrong-but-plausible registry.
#ifndef SKL_COMMON_CRC32_H_
#define SKL_COMMON_CRC32_H_

#include <cstdint>
#include <span>

namespace skl {

/// CRC-32 of `bytes` (init 0xFFFFFFFF, reflected, final xor — matches
/// zlib's crc32(0, data, len)).
uint32_t Crc32(std::span<const uint8_t> bytes);

/// Streaming form: feed the previous return value back in as `seed` to
/// checksum data arriving in pieces. Start with seed 0.
uint32_t Crc32Update(uint32_t seed, std::span<const uint8_t> bytes);

}  // namespace skl

#endif  // SKL_COMMON_CRC32_H_
