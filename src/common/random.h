// Deterministic, seedable PRNG used by all workload generators and property
// tests. We avoid <random> engines in the hot path for speed and for
// bit-exact reproducibility across standard library implementations.
#ifndef SKL_COMMON_RANDOM_H_
#define SKL_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace skl {

/// xoshiro256** seeded via splitmix64. Fast, high-quality, reproducible.
class Rng {
 public:
  /// Seeds the generator; identical seeds yield identical streams.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform value in [0, bound). Precondition: bound > 0.
  uint64_t NextBelow(uint64_t bound);

  /// Uniform value in [lo, hi] inclusive. Precondition: lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool NextBool(double p = 0.5);

  /// Geometric-ish count >= 1 with mean approximately `mean` (mean >= 1).
  /// Used to sample fork/loop replication counts.
  uint32_t NextCount(double mean);

  /// Fisher-Yates shuffles `items` in place.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    if (items->empty()) return;
    for (size_t i = items->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(NextBelow(i + 1));
      std::swap((*items)[i], (*items)[j]);
    }
  }

 private:
  uint64_t s_[4];
};

/// splitmix64 step; exposed for seeding derived generators.
uint64_t SplitMix64(uint64_t* state);

/// Stateless splitmix64 finalizer: full-avalanche mixing of one 64-bit
/// value. The hash-distribution workhorse for sequential ids (registry
/// shard selection, cache slot indexing), where unmixed low bits would
/// correlate with allocation order.
uint64_t Mix64(uint64_t x);

}  // namespace skl

#endif  // SKL_COMMON_RANDOM_H_
