// Internal invariant checks. These abort on failure and are reserved for
// programmer errors (violated preconditions inside the library); recoverable
// conditions use Status instead.
#ifndef SKL_COMMON_CHECK_H_
#define SKL_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

#define SKL_CHECK(cond)                                                   \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "SKL_CHECK failed at %s:%d: %s\n", __FILE__,   \
                   __LINE__, #cond);                                      \
      std::abort();                                                       \
    }                                                                     \
  } while (0)

#define SKL_CHECK_MSG(cond, msg)                                          \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "SKL_CHECK failed at %s:%d: %s (%s)\n",        \
                   __FILE__, __LINE__, #cond, msg);                       \
      std::abort();                                                       \
    }                                                                     \
  } while (0)

#ifndef NDEBUG
#define SKL_DCHECK(cond) SKL_CHECK(cond)
#else
#define SKL_DCHECK(cond) \
  do {                   \
  } while (0)
#endif

#endif  // SKL_COMMON_CHECK_H_
