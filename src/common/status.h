// Status and Result<T>: exception-free error propagation in the style of
// RocksDB/Arrow. Core library code returns Status (or Result<T>) instead of
// throwing; SKL_CHECK-style macros are reserved for programmer errors.
#ifndef SKL_COMMON_STATUS_H_
#define SKL_COMMON_STATUS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <utility>

namespace skl {

/// Error category carried by a Status.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument = 1,   ///< Caller passed a malformed value.
  kInvalidSpecification = 2,  ///< Definitions 1-3 violated (model errors).
  kInvalidRun = 3,        ///< Run graph does not conform to its specification.
  kNotFound = 4,          ///< Lookup failed (module name, vertex, data item).
  kParseError = 5,        ///< Serialization input is malformed.
  kCapacityExceeded = 6,  ///< A configured limit (e.g. tree blow-up cap) hit.
  kInternal = 7,          ///< Invariant broken inside the library.
  kCancelled = 8,         ///< Work abandoned (e.g. fail-fast bulk ingestion).
  kUnavailable = 9,       ///< Peer unreachable (connect/read/write failed).
  kRetryAt = 10,          ///< Replica not yet caught up to the requested LSN.
  kEpochMismatch = 11,    ///< Query pinned to a spec epoch the run is not in.
};

/// Human-readable name of a status code (e.g. "InvalidSpecification").
const char* StatusCodeName(StatusCode code);

/// A cheap, movable success-or-error value. OK carries no allocation.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message);

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg);
  static Status InvalidSpecification(std::string msg);
  static Status InvalidRun(std::string msg);
  static Status NotFound(std::string msg);
  static Status ParseError(std::string msg);
  static Status CapacityExceeded(std::string msg);
  static Status Internal(std::string msg);
  static Status Cancelled(std::string msg);
  static Status Unavailable(std::string msg);
  static Status RetryAt(std::string msg);
  static Status EpochMismatch(std::string msg);

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Result<T>: either a value or an error Status. Modeled after
/// arrow::Result; intentionally minimal (no implicit conversions beyond
/// value/status construction).
template <typename T>
class Result {
 public:
  /// Constructs an errored result. `status` must not be OK.
  Result(Status status) : status_(std::move(status)) {}  // NOLINT(runtime/explicit)
  /// Constructs a successful result holding `value`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Value access. Precondition: ok().
  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return std::move(*value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace skl

/// Propagates a non-OK Status from the current function.
#define SKL_RETURN_NOT_OK(expr)                  \
  do {                                           \
    ::skl::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                   \
  } while (0)

/// Evaluates a Result expression, propagating the error or binding the value.
#define SKL_ASSIGN_OR_RETURN(lhs, expr)          \
  auto SKL_CONCAT_(_res_, __LINE__) = (expr);    \
  if (!SKL_CONCAT_(_res_, __LINE__).ok())        \
    return SKL_CONCAT_(_res_, __LINE__).status();\
  lhs = std::move(SKL_CONCAT_(_res_, __LINE__)).value()

#define SKL_CONCAT_(a, b) SKL_CONCAT_IMPL_(a, b)
#define SKL_CONCAT_IMPL_(a, b) a##b

#endif  // SKL_COMMON_STATUS_H_
