#include "src/common/bitset.h"

#include <bit>

#include "src/common/check.h"

namespace skl {

DynamicBitset::DynamicBitset(size_t size)
    : size_(size), words_((size + 63) / 64, 0) {}

void DynamicBitset::Set(size_t i) {
  SKL_DCHECK(i < size_);
  words_[i >> 6] |= (uint64_t{1} << (i & 63));
}

void DynamicBitset::Clear(size_t i) {
  SKL_DCHECK(i < size_);
  words_[i >> 6] &= ~(uint64_t{1} << (i & 63));
}

bool DynamicBitset::Test(size_t i) const {
  SKL_DCHECK(i < size_);
  return (words_[i >> 6] >> (i & 63)) & 1;
}

void DynamicBitset::UnionWith(const DynamicBitset& other) {
  SKL_DCHECK(size_ == other.size_);
  for (size_t w = 0; w < words_.size(); ++w) words_[w] |= other.words_[w];
}

void DynamicBitset::IntersectWith(const DynamicBitset& other) {
  SKL_DCHECK(size_ == other.size_);
  for (size_t w = 0; w < words_.size(); ++w) words_[w] &= other.words_[w];
}

size_t DynamicBitset::Count() const {
  size_t n = 0;
  for (uint64_t w : words_) n += static_cast<size_t>(std::popcount(w));
  return n;
}

bool DynamicBitset::None() const {
  for (uint64_t w : words_) {
    if (w != 0) return false;
  }
  return true;
}

bool DynamicBitset::IsSubsetOf(const DynamicBitset& other) const {
  SKL_DCHECK(size_ == other.size_);
  for (size_t w = 0; w < words_.size(); ++w) {
    if (words_[w] & ~other.words_[w]) return false;
  }
  return true;
}

bool DynamicBitset::Intersects(const DynamicBitset& other) const {
  SKL_DCHECK(size_ == other.size_);
  for (size_t w = 0; w < words_.size(); ++w) {
    if (words_[w] & other.words_[w]) return true;
  }
  return false;
}

bool DynamicBitset::operator==(const DynamicBitset& other) const {
  return size_ == other.size_ && words_ == other.words_;
}

size_t DynamicBitset::FindFirst() const {
  for (size_t w = 0; w < words_.size(); ++w) {
    if (words_[w] != 0) {
      return (w << 6) + static_cast<size_t>(std::countr_zero(words_[w]));
    }
  }
  return size_;
}

void DynamicBitset::GrowTo(size_t new_size) {
  SKL_DCHECK(new_size >= size_);
  size_ = new_size;
  words_.resize((new_size + 63) / 64, 0);
}

void DynamicBitset::EraseBit(size_t pos) {
  SKL_DCHECK(pos < size_);
  const size_t w = pos >> 6;
  const size_t b = pos & 63;
  // In the word holding `pos`: keep the bits below it, shift the bits
  // above it down one.
  const uint64_t low_mask = b == 0 ? 0 : (~uint64_t{0} >> (64 - b));
  words_[w] = (words_[w] & low_mask) | ((words_[w] >> 1) & ~low_mask);
  // Each later word shifts right one, its lowest bit carrying into the
  // previous word's top bit.
  for (size_t k = w + 1; k < words_.size(); ++k) {
    words_[k - 1] |= (words_[k] & 1) << 63;
    words_[k] >>= 1;
  }
  --size_;
  words_.resize((size_ + 63) / 64);
}

size_t DynamicBitset::FindNext(size_t i) const {
  ++i;
  if (i >= size_) return size_;
  size_t w = i >> 6;
  uint64_t masked = words_[w] & (~uint64_t{0} << (i & 63));
  if (masked != 0) {
    return (w << 6) + static_cast<size_t>(std::countr_zero(masked));
  }
  for (++w; w < words_.size(); ++w) {
    if (words_[w] != 0) {
      return (w << 6) + static_cast<size_t>(std::countr_zero(words_[w]));
    }
  }
  return size_;
}

}  // namespace skl
