// ThreadPool: a fixed-size worker pool with exception-safe task futures,
// shared by the bulk ingestion paths (ProvenanceService::AddRunsParallel),
// the workload generators and the scaling benchmarks.
//
// Design points:
//  - Fixed worker count chosen at construction; workers live until the pool
//    is destroyed (destruction drains the queue, then joins).
//  - Submit returns a std::future<void>; an exception thrown by the task is
//    captured into the future and rethrown by future::get(), never lost and
//    never allowed to tear down a worker thread.
//  - Tasks are dispatched FIFO: with one worker, tasks run strictly in
//    submission order.
//  - A pool constructed with zero threads degrades to inline execution:
//    Submit runs the task on the calling thread before returning. This keeps
//    call sites free of "if parallel" branches and gives tests and
//    single-core builds a deterministic serial mode.
#ifndef SKL_COMMON_THREAD_POOL_H_
#define SKL_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace skl {

class ThreadPool {
 public:
  /// Starts `num_threads` workers. 0 workers = inline execution on Submit.
  explicit ThreadPool(unsigned num_threads);

  /// Drains outstanding tasks, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task (runs it inline for a zero-thread pool). The returned
  /// future becomes ready when the task finishes; if the task threw, get()
  /// rethrows the exception.
  std::future<void> Submit(std::function<void()> task);

  /// Worker count this pool was built with (0 = inline mode).
  unsigned num_threads() const { return num_threads_; }

  /// Hardware concurrency with a fallback of 1 (hardware_concurrency may
  /// report 0 on exotic platforms).
  static unsigned DefaultThreadCount();

  /// Resolves the library-wide "0 = auto" worker-count convention: returns
  /// `requested`, or DefaultThreadCount() when requested is 0. Every layer
  /// exposing a num_threads knob funnels through this.
  static unsigned Resolve(unsigned requested) {
    return requested == 0 ? DefaultThreadCount() : requested;
  }

 private:
  void WorkerLoop();

  const unsigned num_threads_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::packaged_task<void()>> queue_;  // guarded by mu_
  bool stop_ = false;                             // guarded by mu_
  std::vector<std::thread> workers_;
};

}  // namespace skl

#endif  // SKL_COMMON_THREAD_POOL_H_
