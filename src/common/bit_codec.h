// Bit-granular writer/reader used by the label codec: SKL run labels are
// `3*ceil(log2 n_T_plus)` bits of context encoding plus `ceil(log2 n_G)` bits
// of origin id, and we serialize them at exactly that width to demonstrate the
// paper's label-length bounds on real bytes.
#ifndef SKL_COMMON_BIT_CODEC_H_
#define SKL_COMMON_BIT_CODEC_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/common/status.h"

namespace skl {

/// Appends fields of arbitrary bit width (1..64) to a byte buffer, MSB-first
/// within each field, fields packed back to back.
class BitWriter {
 public:
  /// Appends the low `bits` bits of `value`. Precondition: 0 < bits <= 64 and
  /// value < 2^bits.
  void Write(uint64_t value, int bits);

  /// Appends an LEB128-style varint (7 bits per byte), byte-aligned first.
  void WriteVarint(uint64_t value);

  /// Appends a raw byte blob verbatim, byte-aligned first. Used to embed an
  /// already-encoded payload (e.g. a ProvenanceStore blob inside a service
  /// snapshot) without re-encoding it bit by bit.
  void WriteBytes(std::span<const uint8_t> bytes);

  /// Pads with zero bits to the next byte boundary.
  void AlignToByte();

  /// Total bits written so far.
  size_t bit_count() const { return bit_count_; }

  /// Finalizes (pads to byte) and returns the buffer.
  std::vector<uint8_t> Finish();

 private:
  std::vector<uint8_t> bytes_;
  size_t bit_count_ = 0;
};

/// Reads back fields written by BitWriter in the same order.
class BitReader {
 public:
  BitReader(const uint8_t* data, size_t size_bytes);
  explicit BitReader(const std::vector<uint8_t>& bytes);

  /// Reads a `bits`-wide field into *value. Fails if the stream is exhausted.
  Status Read(int bits, uint64_t* value);

  /// Reads a varint written by WriteVarint (aligns to byte first).
  Status ReadVarint(uint64_t* value);

  /// Reads `count` raw bytes written by WriteBytes (aligns to byte first).
  /// *out is a zero-copy view into the underlying buffer, valid only while
  /// that buffer lives. Fails without advancing if fewer bytes remain.
  Status ReadBytes(size_t count, std::span<const uint8_t>* out);

  /// Skips forward to the next byte boundary.
  void AlignToByte();

  size_t bit_position() const { return bit_pos_; }

 private:
  const uint8_t* data_;
  size_t size_bits_;
  size_t bit_pos_ = 0;
};

/// Number of bits needed to index `n` distinct values (>=1 even for n<=1), in
/// other words ceil(log2(max(n,2))).
int BitsForCount(uint64_t n);

}  // namespace skl

#endif  // SKL_COMMON_BIT_CODEC_H_
