#include "src/common/status.h"

namespace skl {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kInvalidSpecification:
      return "InvalidSpecification";
    case StatusCode::kInvalidRun:
      return "InvalidRun";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kCapacityExceeded:
      return "CapacityExceeded";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kRetryAt:
      return "RetryAt";
    case StatusCode::kEpochMismatch:
      return "EpochMismatch";
  }
  return "Unknown";
}

Status::Status(StatusCode code, std::string message)
    : code_(code), message_(std::move(message)) {}

Status Status::InvalidArgument(std::string msg) {
  return Status(StatusCode::kInvalidArgument, std::move(msg));
}
Status Status::InvalidSpecification(std::string msg) {
  return Status(StatusCode::kInvalidSpecification, std::move(msg));
}
Status Status::InvalidRun(std::string msg) {
  return Status(StatusCode::kInvalidRun, std::move(msg));
}
Status Status::NotFound(std::string msg) {
  return Status(StatusCode::kNotFound, std::move(msg));
}
Status Status::ParseError(std::string msg) {
  return Status(StatusCode::kParseError, std::move(msg));
}
Status Status::CapacityExceeded(std::string msg) {
  return Status(StatusCode::kCapacityExceeded, std::move(msg));
}
Status Status::Internal(std::string msg) {
  return Status(StatusCode::kInternal, std::move(msg));
}
Status Status::Cancelled(std::string msg) {
  return Status(StatusCode::kCancelled, std::move(msg));
}
Status Status::Unavailable(std::string msg) {
  return Status(StatusCode::kUnavailable, std::move(msg));
}
Status Status::RetryAt(std::string msg) {
  return Status(StatusCode::kRetryAt, std::move(msg));
}
Status Status::EpochMismatch(std::string msg) {
  return Status(StatusCode::kEpochMismatch, std::move(msg));
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace skl
