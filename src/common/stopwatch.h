// Monotonic wall-clock stopwatch for benchmarks and construction-time
// reporting.
#ifndef SKL_COMMON_STOPWATCH_H_
#define SKL_COMMON_STOPWATCH_H_

#include <chrono>

namespace skl {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Resets the epoch to now.
  void Restart() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  /// Elapsed microseconds.
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace skl

#endif  // SKL_COMMON_STOPWATCH_H_
