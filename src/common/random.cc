#include "src/common/random.h"

#include <cmath>

#include "src/common/check.h"

namespace skl {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  return Mix64(z);
}

uint64_t Mix64(uint64_t x) {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  SKL_DCHECK(bound > 0);
  // Lemire-style rejection-free-enough multiply-shift; bias is negligible for
  // our bound sizes but we reject the short tail anyway for determinism.
  uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  SKL_DCHECK(lo <= hi);
  return lo + static_cast<int64_t>(
                  NextBelow(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

uint32_t Rng::NextCount(double mean) {
  if (mean <= 1.0) return 1;
  // Geometric distribution on {1,2,...} with the requested mean:
  // success probability q = 1/mean.
  double q = 1.0 / mean;
  double u = NextDouble();
  // Inverse CDF; clamp to avoid pathological counts from tiny u.
  double k = std::floor(std::log1p(-u) / std::log1p(-q)) + 1.0;
  if (k < 1.0) k = 1.0;
  if (k > 1e6) k = 1e6;
  return static_cast<uint32_t>(k);
}

}  // namespace skl
