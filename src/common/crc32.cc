#include "src/common/crc32.h"

#include <array>

namespace skl {

namespace {

// Reflected CRC-32 table for polynomial 0xEDB88320 (IEEE 802.3).
std::array<uint32_t, 256> BuildTable() {
  std::array<uint32_t, 256> table;
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

const std::array<uint32_t, 256>& Table() {
  static const std::array<uint32_t, 256> table = BuildTable();
  return table;
}

}  // namespace

uint32_t Crc32Update(uint32_t seed, std::span<const uint8_t> bytes) {
  const std::array<uint32_t, 256>& table = Table();
  uint32_t c = seed ^ 0xFFFFFFFFu;
  for (uint8_t b : bytes) {
    c = table[(c ^ b) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

uint32_t Crc32(std::span<const uint8_t> bytes) {
  return Crc32Update(0, bytes);
}

}  // namespace skl
