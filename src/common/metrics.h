// The observability core (docs/OBSERVABILITY.md): a lock-free, mergeable,
// log-bucketed latency histogram plus a named-metric registry that renders
// the Prometheus text exposition format.
//
//   MetricsRegistry registry;
//   LatencyHistogram* h = registry.AddHistogram(
//       "skl_request_execute_seconds", "Dispatch execute time",
//       "op=\"Reaches\"");
//   h->Record(elapsed_us);            // any integer unit; pick one per family
//   std::string text = registry.RenderPrometheus();
//
// LatencyHistogram is HDR-style: values are bucketed by their power-of-two
// octave with kSubBuckets linear sub-buckets per octave, so every bucket's
// width is at most 1/kSubBuckets (12.5%) of its lower bound — quantiles are
// exact to that relative error at every magnitude from 1 to 2^63. All
// mutation is relaxed fetch_add on per-bucket atomics: concurrent Record
// calls never contend on a lock and the type is TSan-clean by construction.
// Count()/Sum()/Quantile() over a concurrently mutated histogram see some
// valid interleaving (each bucket individually consistent), which is the
// usual and sufficient contract for monitoring reads.
//
// The registry owns its metrics; Add* returns stable pointers for the hot
// path (register once at construction, record lock-free forever after).
// Rendering groups metrics into families (same name = one # HELP/# TYPE
// header) in registration order, histograms as cumulative `le` buckets on
// a powers-of-two ladder.
#ifndef SKL_COMMON_METRICS_H_
#define SKL_COMMON_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace skl {

/// Monotonic counter. Increment is relaxed fetch_add; safe from any thread.
class MetricCounter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Settable gauge (last write wins). For values that are cheap to push on
/// change; values that are only known at scrape time use the registry's
/// callback-gauge form instead.
class MetricGauge {
 public:
  void Set(uint64_t v) { value_.store(v, std::memory_order_relaxed); }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Log-bucketed (HDR-style) histogram over atomic buckets. Unit-agnostic:
/// the caller picks one integer unit per family (the serving path records
/// microseconds, the benches nanoseconds) and the exposition names it.
class LatencyHistogram {
 public:
  /// Linear sub-buckets per power-of-two octave (8 = 12.5% max relative
  /// bucket width). Values 0..kSubBuckets-1 get exact unit buckets.
  static constexpr uint32_t kSubBits = 3;
  static constexpr uint32_t kSubBuckets = 1u << kSubBits;
  /// One linear block for [0, kSubBuckets) plus one block per octave whose
  /// values need more than kSubBits bits — covers the full uint64 range.
  static constexpr size_t kNumBuckets =
      static_cast<size_t>(64 - kSubBits + 1) * kSubBuckets;

  LatencyHistogram() = default;
  LatencyHistogram(const LatencyHistogram&) = delete;
  LatencyHistogram& operator=(const LatencyHistogram&) = delete;

  /// Which bucket `value` lands in. Exposed for the exposition renderer
  /// and the bucket-layout unit tests.
  static size_t BucketIndex(uint64_t value);

  /// Smallest value that lands in bucket `index` (buckets cover
  /// [lower_bound(i), lower_bound(i+1))).
  static uint64_t BucketLowerBound(size_t index);

  void Record(uint64_t value) {
    buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t Sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t BucketCount(size_t index) const {
    return buckets_[index].load(std::memory_order_relaxed);
  }

  /// The q-quantile (q in [0, 1]), linearly interpolated inside the target
  /// bucket — so exact to the bucket's <=12.5% relative width. 0 when the
  /// histogram is empty.
  double Quantile(double q) const;

  /// Adds every bucket of `other` into this histogram (bench workers merge
  /// their thread-local histograms into one before reporting).
  void MergeFrom(const LatencyHistogram& other);

  void Reset();

 private:
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
};

/// Appends one histogram in Prometheus text format to `out`: cumulative
/// `name_bucket{le="..."}` lines on a powers-of-two ladder (1, 2, 4, ...,
/// 2^30, +Inf), then `name_sum` and `name_count`. `labels` (may be empty)
/// is spliced into every line next to the `le` label. The free-function
/// form serves histograms embedded outside any registry (OpLog's).
void RenderHistogramPrometheus(const LatencyHistogram& histogram,
                               std::string_view name, std::string_view labels,
                               std::string* out);

/// Named metrics container. Instantiable — one per component (server,
/// service), NOT a process-global singleton: tests run many servers per
/// process and each must count only its own traffic. Registration takes a
/// mutex and happens at component construction; the returned pointers are
/// stable for the registry's lifetime and lock-free to record through.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// `name` is the family (shared # HELP/# TYPE header); `labels` (e.g.
  /// `op="Reaches",shard="3"` — no surrounding braces) distinguishes
  /// series within it. `help` is taken from the family's first
  /// registration.
  MetricCounter* AddCounter(std::string name, std::string help,
                            std::string labels = "");
  MetricGauge* AddGauge(std::string name, std::string help,
                        std::string labels = "");
  /// A gauge whose value is computed at render time (e.g. replica apply
  /// lag = target - applied). `fn` must be safe to call from any thread.
  void AddCallbackGauge(std::string name, std::string help,
                        std::string labels, std::function<uint64_t()> fn);
  LatencyHistogram* AddHistogram(std::string name, std::string help,
                                 std::string labels = "");

  /// The whole registry in Prometheus text exposition format, families in
  /// registration order. Safe to call concurrently with recording.
  std::string RenderPrometheus() const;

 private:
  enum class Kind { kCounter, kGauge, kCallbackGauge, kHistogram };

  struct Entry {
    Kind kind;
    std::string name;
    std::string help;
    std::string labels;
    std::unique_ptr<MetricCounter> counter;
    std::unique_ptr<MetricGauge> gauge;
    std::function<uint64_t()> callback;
    std::unique_ptr<LatencyHistogram> histogram;
  };

  mutable std::mutex mu_;           // guards entries_ growth
  std::vector<std::unique_ptr<Entry>> entries_;  // stable addresses
};

}  // namespace skl

#endif  // SKL_COMMON_METRICS_H_
