#include "src/common/thread_pool.h"

#include <utility>

namespace skl {

unsigned ThreadPool::DefaultThreadCount() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

ThreadPool::ThreadPool(unsigned num_threads) : num_threads_(num_threads) {
  workers_.reserve(num_threads_);
  try {
    for (unsigned i = 0; i < num_threads_; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  } catch (...) {
    // Thread spawn failed partway (e.g. system_error on an absurd count).
    // Join the workers that did start before rethrowing — destroying a
    // joinable std::thread would std::terminate and make the failure
    // uncatchable for the caller.
    {
      std::unique_lock lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    for (std::thread& w : workers_) w.join();
    throw;
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

std::future<void> ThreadPool::Submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> future = packaged.get_future();
  if (num_threads_ == 0) {
    packaged();  // inline mode; exceptions land in the future, not here
    return future;
  }
  {
    std::unique_lock lock(mu_);
    queue_.push_back(std::move(packaged));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // packaged_task routes exceptions into the future
  }
}

}  // namespace skl
