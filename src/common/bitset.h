// DynamicBitset: fixed-size-at-construction bit vector with word-level
// operations. Backs the transitive-closure matrix (TCM) scheme and various
// set computations in validation code.
#ifndef SKL_COMMON_BITSET_H_
#define SKL_COMMON_BITSET_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace skl {

class DynamicBitset {
 public:
  DynamicBitset() = default;
  /// Creates a bitset of `size` bits, all clear.
  explicit DynamicBitset(size_t size);

  size_t size() const { return size_; }

  void Set(size_t i);
  void Clear(size_t i);
  bool Test(size_t i) const;

  /// Sets every bit that is set in `other`. Sizes must match.
  void UnionWith(const DynamicBitset& other);
  /// Clears bits not set in `other`. Sizes must match.
  void IntersectWith(const DynamicBitset& other);

  /// Number of set bits.
  size_t Count() const;
  /// True if no bit is set.
  bool None() const;
  /// True iff every set bit of *this is also set in `other`.
  bool IsSubsetOf(const DynamicBitset& other) const;
  /// True iff *this and `other` share at least one set bit.
  bool Intersects(const DynamicBitset& other) const;

  bool operator==(const DynamicBitset& other) const;

  /// Index of the first set bit, or size() if none.
  size_t FindFirst() const;
  /// Index of the first set bit at position > i, or size() if none.
  size_t FindNext(size_t i) const;

  /// Grows the bitset to `new_size` bits; the new bits are clear. Must not
  /// shrink. Word-level — the incremental-relabel fast paths rely on this
  /// being O(words), not O(bits).
  void GrowTo(size_t new_size);
  /// Removes the bit at `pos`: every bit above it shifts down one and the
  /// size drops by one. Word-level (shift with cross-word carry), so a row
  /// copy under a single-module removal costs O(words), not O(set bits).
  void EraseBit(size_t pos);

  /// Storage footprint in bytes (used by label-length accounting).
  size_t MemoryBytes() const { return words_.size() * sizeof(uint64_t); }

 private:
  size_t size_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace skl

#endif  // SKL_COMMON_BITSET_H_
