#include "src/common/metrics.h"

#include <bit>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <unordered_set>

namespace skl {

namespace {

/// Width of bucket `index` (every value in the bucket lies in
/// [lower, lower + width)).
uint64_t BucketWidth(size_t index) {
  if (index < LatencyHistogram::kSubBuckets) return 1;
  return uint64_t{1} << (index / LatencyHistogram::kSubBuckets - 1);
}

void AppendLine(std::string* out, std::string_view name,
                std::string_view labels, uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
  out->append(name);
  if (!labels.empty()) {
    out->push_back('{');
    out->append(labels);
    out->push_back('}');
  }
  out->push_back(' ');
  out->append(buf);
  out->push_back('\n');
}

}  // namespace

size_t LatencyHistogram::BucketIndex(uint64_t value) {
  if (value < kSubBuckets) return static_cast<size_t>(value);
  const int msb = 63 - std::countl_zero(value);
  const int shift = msb - static_cast<int>(kSubBits);
  return (static_cast<size_t>(shift) + 1) * kSubBuckets +
         static_cast<size_t>((value >> shift) & (kSubBuckets - 1));
}

uint64_t LatencyHistogram::BucketLowerBound(size_t index) {
  if (index < kSubBuckets) return index;
  const size_t block = index / kSubBuckets;  // >= 1
  const size_t sub = index % kSubBuckets;
  return static_cast<uint64_t>(kSubBuckets + sub) << (block - 1);
}

double LatencyHistogram::Quantile(double q) const {
  const uint64_t total = Count();
  if (total == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double target = q * static_cast<double>(total);
  double cum = 0.0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    const uint64_t c = BucketCount(i);
    if (c == 0) continue;
    const double next = cum + static_cast<double>(c);
    if (next >= target) {
      const double frac =
          (target - cum) / static_cast<double>(c);  // c > 0 here
      return static_cast<double>(BucketLowerBound(i)) +
             frac * static_cast<double>(BucketWidth(i));
    }
    cum = next;
  }
  // Count() can run ahead of the bucket sums under concurrent Record;
  // answer from the highest populated bucket instead of 0.
  for (size_t i = kNumBuckets; i-- > 0;) {
    if (BucketCount(i) != 0) return static_cast<double>(BucketLowerBound(i));
  }
  return 0.0;
}

void LatencyHistogram::MergeFrom(const LatencyHistogram& other) {
  for (size_t i = 0; i < kNumBuckets; ++i) {
    const uint64_t c = other.BucketCount(i);
    if (c != 0) buckets_[i].fetch_add(c, std::memory_order_relaxed);
  }
  count_.fetch_add(other.Count(), std::memory_order_relaxed);
  sum_.fetch_add(other.Sum(), std::memory_order_relaxed);
}

void LatencyHistogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

void RenderHistogramPrometheus(const LatencyHistogram& histogram,
                               std::string_view name, std::string_view labels,
                               std::string* out) {
  // Exposition ladder: powers of two from 1 to 2^30, then +Inf — coarse on
  // purpose (31 lines per series, vs 496 internal buckets). A bucket is
  // counted under the first `le` at or above its maximum value, so the
  // cumulative counts are monotone and exact at every ladder boundary up
  // to the internal buckets' <=12.5% width.
  const std::string prefix(name);
  uint64_t cum = 0;
  size_t next_internal = 0;
  for (uint32_t power = 0; power <= 30; ++power) {
    const uint64_t le = uint64_t{1} << power;
    while (next_internal < LatencyHistogram::kNumBuckets &&
           LatencyHistogram::BucketLowerBound(next_internal) +
                   BucketWidth(next_internal) - 1 <=
               le) {
      cum += histogram.BucketCount(next_internal);
      ++next_internal;
    }
    std::string le_labels(labels);
    if (!le_labels.empty()) le_labels += ",";
    char bound[32];
    std::snprintf(bound, sizeof(bound), "le=\"%" PRIu64 "\"", le);
    le_labels += bound;
    AppendLine(out, prefix + "_bucket", le_labels, cum);
  }
  std::string inf_labels(labels);
  if (!inf_labels.empty()) inf_labels += ",";
  inf_labels += "le=\"+Inf\"";
  AppendLine(out, prefix + "_bucket", inf_labels, histogram.Count());
  AppendLine(out, prefix + "_sum", labels, histogram.Sum());
  AppendLine(out, prefix + "_count", labels, histogram.Count());
}

MetricCounter* MetricsRegistry::AddCounter(std::string name, std::string help,
                                           std::string labels) {
  auto entry = std::make_unique<Entry>();
  entry->kind = Kind::kCounter;
  entry->name = std::move(name);
  entry->help = std::move(help);
  entry->labels = std::move(labels);
  entry->counter = std::make_unique<MetricCounter>();
  MetricCounter* out = entry->counter.get();
  std::lock_guard<std::mutex> lock(mu_);
  entries_.push_back(std::move(entry));
  return out;
}

MetricGauge* MetricsRegistry::AddGauge(std::string name, std::string help,
                                       std::string labels) {
  auto entry = std::make_unique<Entry>();
  entry->kind = Kind::kGauge;
  entry->name = std::move(name);
  entry->help = std::move(help);
  entry->labels = std::move(labels);
  entry->gauge = std::make_unique<MetricGauge>();
  MetricGauge* out = entry->gauge.get();
  std::lock_guard<std::mutex> lock(mu_);
  entries_.push_back(std::move(entry));
  return out;
}

void MetricsRegistry::AddCallbackGauge(std::string name, std::string help,
                                       std::string labels,
                                       std::function<uint64_t()> fn) {
  auto entry = std::make_unique<Entry>();
  entry->kind = Kind::kCallbackGauge;
  entry->name = std::move(name);
  entry->help = std::move(help);
  entry->labels = std::move(labels);
  entry->callback = std::move(fn);
  std::lock_guard<std::mutex> lock(mu_);
  entries_.push_back(std::move(entry));
}

LatencyHistogram* MetricsRegistry::AddHistogram(std::string name,
                                                std::string help,
                                                std::string labels) {
  auto entry = std::make_unique<Entry>();
  entry->kind = Kind::kHistogram;
  entry->name = std::move(name);
  entry->help = std::move(help);
  entry->labels = std::move(labels);
  entry->histogram = std::make_unique<LatencyHistogram>();
  LatencyHistogram* out = entry->histogram.get();
  std::lock_guard<std::mutex> lock(mu_);
  entries_.push_back(std::move(entry));
  return out;
}

std::string MetricsRegistry::RenderPrometheus() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  std::unordered_set<std::string_view> headered;
  for (const auto& entry : entries_) {
    if (headered.insert(entry->name).second) {
      const char* type = entry->kind == Kind::kCounter     ? "counter"
                         : entry->kind == Kind::kHistogram ? "histogram"
                                                           : "gauge";
      out += "# HELP " + entry->name + " " + entry->help + "\n";
      out += "# TYPE " + entry->name + " " + type;
      out.push_back('\n');
    }
    switch (entry->kind) {
      case Kind::kCounter:
        AppendLine(&out, entry->name, entry->labels,
                   entry->counter->Value());
        break;
      case Kind::kGauge:
        AppendLine(&out, entry->name, entry->labels, entry->gauge->Value());
        break;
      case Kind::kCallbackGauge:
        AppendLine(&out, entry->name, entry->labels, entry->callback());
        break;
      case Kind::kHistogram:
        RenderHistogramPrometheus(*entry->histogram, entry->name,
                                  entry->labels, &out);
        break;
    }
  }
  return out;
}

}  // namespace skl
