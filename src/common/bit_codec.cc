#include "src/common/bit_codec.h"

#include <bit>

#include "src/common/check.h"

namespace skl {

void BitWriter::Write(uint64_t value, int bits) {
  SKL_DCHECK(bits > 0 && bits <= 64);
  SKL_DCHECK(bits == 64 || value < (uint64_t{1} << bits));
  for (int i = bits - 1; i >= 0; --i) {
    size_t byte = bit_count_ >> 3;
    if (byte >= bytes_.size()) bytes_.push_back(0);
    uint8_t bit = static_cast<uint8_t>((value >> i) & 1);
    bytes_[byte] = static_cast<uint8_t>(bytes_[byte] |
                                        (bit << (7 - (bit_count_ & 7))));
    ++bit_count_;
  }
}

void BitWriter::WriteVarint(uint64_t value) {
  AlignToByte();
  do {
    uint8_t byte = value & 0x7f;
    value >>= 7;
    if (value != 0) byte |= 0x80;
    Write(byte, 8);
  } while (value != 0);
}

void BitWriter::WriteBytes(std::span<const uint8_t> bytes) {
  AlignToByte();
  bytes_.insert(bytes_.end(), bytes.begin(), bytes.end());
  bit_count_ += bytes.size() * 8;
}

void BitWriter::AlignToByte() {
  while (bit_count_ & 7) Write(0, 1);
}

std::vector<uint8_t> BitWriter::Finish() {
  AlignToByte();
  return std::move(bytes_);
}

BitReader::BitReader(const uint8_t* data, size_t size_bytes)
    : data_(data), size_bits_(size_bytes * 8) {}

BitReader::BitReader(const std::vector<uint8_t>& bytes)
    : BitReader(bytes.data(), bytes.size()) {}

Status BitReader::Read(int bits, uint64_t* value) {
  SKL_DCHECK(bits > 0 && bits <= 64);
  if (bit_pos_ + static_cast<size_t>(bits) > size_bits_) {
    return Status::ParseError("bit stream exhausted");
  }
  uint64_t out = 0;
  for (int i = 0; i < bits; ++i) {
    uint8_t byte = data_[bit_pos_ >> 3];
    uint8_t bit = (byte >> (7 - (bit_pos_ & 7))) & 1;
    out = (out << 1) | bit;
    ++bit_pos_;
  }
  *value = out;
  return Status::OK();
}

Status BitReader::ReadVarint(uint64_t* value) {
  AlignToByte();
  uint64_t out = 0;
  int shift = 0;
  for (;;) {
    uint64_t byte = 0;
    SKL_RETURN_NOT_OK(Read(8, &byte));
    out |= (byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
    if (shift > 63) return Status::ParseError("varint too long");
  }
  *value = out;
  return Status::OK();
}

Status BitReader::ReadBytes(size_t count, std::span<const uint8_t>* out) {
  const size_t aligned = (bit_pos_ + 7) & ~size_t{7};
  if (count > (size_bits_ - aligned) / 8) {
    return Status::ParseError("bit stream exhausted");
  }
  bit_pos_ = aligned;
  *out = std::span<const uint8_t>(data_ + (bit_pos_ >> 3), count);
  bit_pos_ += count * 8;
  return Status::OK();
}

void BitReader::AlignToByte() {
  bit_pos_ = (bit_pos_ + 7) & ~size_t{7};
}

int BitsForCount(uint64_t n) {
  if (n <= 2) return 1;
  return 64 - std::countl_zero(n - 1);
}

}  // namespace skl
