#include "src/io/snapshot.h"

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <fstream>
#include <string_view>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#endif

#include "src/common/bit_codec.h"
#include "src/common/crc32.h"
#include "src/core/provenance_service.h"
#include "src/io/workflow_xml.h"
#include "src/speclabel/scheme.h"

namespace skl {

namespace {

constexpr uint32_t kMagic = 0x534b4c53;  // "SKLS"

#if defined(__unix__) || defined(__APPLE__)
Status FsyncPath(const char* path, int flags, const std::string& what) {
  int fd = ::open(path, flags);
  if (fd < 0) return Status::Internal("cannot open " + what + " for sync");
  const bool synced = ::fsync(fd) == 0;
  ::close(fd);
  if (!synced) return Status::Internal("cannot sync " + what);
  return Status::OK();
}
#endif

/// Flushes a written file to stable storage where the platform supports it.
Status SyncFile(const std::string& file) {
#if defined(__unix__) || defined(__APPLE__)
  return FsyncPath(file.c_str(), O_RDONLY, "snapshot file " + file);
#else
  (void)file;
  return Status::OK();
#endif
}

/// Flushes a directory's entries; a rename is only durable once this runs
/// *after* it.
Status SyncDir(const std::string& dir) {
#if defined(__unix__) || defined(__APPLE__)
  const std::string d = dir.empty() ? "." : dir;
  return FsyncPath(d.c_str(), O_RDONLY | O_DIRECTORY,
                   "snapshot directory " + d);
#else
  (void)dir;
  return Status::OK();
#endif
}

Result<std::vector<uint8_t>> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open snapshot file " + path);
  std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
  if (in.bad()) return Status::Internal("error reading snapshot file " + path);
  return bytes;
}

}  // namespace

// ----------------------------------------------------------- container IO --

void SnapshotWriter::AddSection(uint32_t id, std::vector<uint8_t> payload) {
  sections_.emplace_back(id, std::move(payload));
}

std::vector<uint8_t> SnapshotWriter::Finish() && {
  BitWriter writer;
  writer.Write(kMagic, 32);
  writer.WriteVarint(format_version_);
  writer.WriteVarint(sections_.size());
  for (const auto& [id, payload] : sections_) {
    writer.WriteVarint(id);
    writer.WriteVarint(payload.size());
    writer.Write(Crc32(payload), 32);
    writer.WriteBytes(payload);
  }
  return writer.Finish();
}

Status SnapshotWriter::WriteFile(const std::string& path) && {
  const std::vector<uint8_t> bytes = std::move(*this).Finish();
  // Write to a sibling tmp file and rename into place: a crash mid-save
  // must never leave a torn snapshot under the real name (the previous
  // snapshot, if any, stays intact until the atomic rename). The tmp name
  // is pid+sequence qualified so concurrent saves to the same path cannot
  // clobber each other's half-written bytes before their renames.
  static std::atomic<uint64_t> save_seq{0};
  std::string unique = std::to_string(save_seq.fetch_add(1));
#if defined(__unix__) || defined(__APPLE__)
  unique = std::to_string(::getpid()) + "." + unique;
#endif
  const std::string tmp = path + ".tmp." + unique;
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::Internal("cannot create snapshot file " + tmp);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    out.close();  // flushes; a failed final flush surfaces on the stream
    if (out.fail()) {
      std::error_code cleanup_ec;
      std::filesystem::remove(tmp, cleanup_ec);
      return Status::Internal("error writing snapshot file " + tmp);
    }
  }
  // The tmp bytes must be on stable storage before the rename publishes
  // them, or a power failure could replace a good snapshot with a torn one.
  Status synced = SyncFile(tmp);
  if (!synced.ok()) {
    std::error_code cleanup_ec;
    std::filesystem::remove(tmp, cleanup_ec);
    return synced;
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    const std::string reason = ec.message();
    std::error_code cleanup_ec;
    std::filesystem::remove(tmp, cleanup_ec);
    return Status::Internal("cannot move snapshot into place at " + path +
                            ": " + reason);
  }
  // ... and the rename itself is only durable once the directory entry is
  // flushed; only then may the caller be told the checkpoint committed.
  return SyncDir(std::filesystem::path(path).parent_path().string());
}

Result<SnapshotReader> SnapshotReader::Parse(std::vector<uint8_t> bytes) {
  SnapshotReader snapshot;
  snapshot.bytes_ = std::move(bytes);
  BitReader reader(snapshot.bytes_);
  uint64_t magic = 0;
  if (!reader.Read(32, &magic).ok()) {
    return Status::ParseError("snapshot truncated: missing file header");
  }
  if (magic != kMagic) {
    return Status::ParseError("not an SKL snapshot (bad magic)");
  }
  uint64_t version = 0, count = 0;
  if (!reader.ReadVarint(&version).ok() || !reader.ReadVarint(&count).ok()) {
    return Status::ParseError("snapshot truncated: incomplete header");
  }
  if (version != kSnapshotFormatVersion) {
    return Status::ParseError(
        "unsupported snapshot format version " + std::to_string(version) +
        " (this build reads version " +
        std::to_string(kSnapshotFormatVersion) + ")");
  }
  snapshot.format_version_ = static_cast<uint32_t>(version);
  // The count is corruption-controlled: cap the reserve at what the file
  // could physically hold (>= 6 header bytes per section) so a crafted
  // varint yields ParseError below, not a length_error/bad_alloc abort.
  snapshot.sections_.reserve(
      std::min<uint64_t>(count, snapshot.bytes_.size() / 6));
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t id = 0, length = 0, expected_crc = 0;
    if (!reader.ReadVarint(&id).ok() || !reader.ReadVarint(&length).ok() ||
        !reader.Read(32, &expected_crc).ok()) {
      return Status::ParseError("snapshot truncated in section " +
                                std::to_string(i) + " header");
    }
    std::span<const uint8_t> payload;
    if (!reader.ReadBytes(length, &payload).ok()) {
      return Status::ParseError(
          "snapshot truncated: section " + std::to_string(i) + " declares " +
          std::to_string(length) + " payload bytes past end of file");
    }
    if (id > UINT32_MAX) {
      return Status::ParseError("snapshot section id " + std::to_string(id) +
                                " out of range");
    }
    if (Crc32(payload) != expected_crc) {
      return Status::ParseError("snapshot section " + std::to_string(id) +
                                " checksum mismatch (corrupted payload)");
    }
    snapshot.sections_.push_back(
        {static_cast<uint32_t>(id),
         static_cast<size_t>(payload.data() - snapshot.bytes_.data()),
         static_cast<size_t>(length)});
  }
  // Bytes past the last declared section mean a torn writer or a
  // concatenated file — reject rather than silently ignore them.
  if (reader.bit_position() != snapshot.bytes_.size() * 8) {
    return Status::ParseError(
        "snapshot has trailing bytes after the last section");
  }
  return snapshot;
}

Result<SnapshotReader> SnapshotReader::ReadFile(const std::string& path) {
  SKL_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes, ReadFileBytes(path));
  return Parse(std::move(bytes));
}

bool SnapshotReader::Has(uint32_t id) const {
  for (const SectionEntry& s : sections_) {
    if (s.id == id) return true;
  }
  return false;
}

Result<std::span<const uint8_t>> SnapshotReader::Section(uint32_t id) const {
  for (const SectionEntry& s : sections_) {
    if (s.id == id) {
      return std::span<const uint8_t>(bytes_.data() + s.offset, s.length);
    }
  }
  return Status::NotFound("snapshot has no section " + std::to_string(id));
}

// ------------------------------------------- service snapshot on top of it --
//
// The service-level encoding (defined here so the spec-XML and scheme-name
// dependencies stay inside src/io):
//
//   section kSnapshotSectionSpec    spec XML (WriteSpecificationXml)
//   section kSnapshotSectionScheme  canonical scheme name ("TCM", ...)
//   section kSnapshotSectionRuns    varint next_id, varint run count, then
//     per run in ascending id order: varint id, the RunStats fields
//     (num_vertices, num_items, label_bits, context_bits, origin_bits,
//     num_nonempty_plus, imported), varint blob length, and the
//     ProvenanceStore blob (which carries its own magic + version).
//
// The scheme itself is not serialized: every bundled scheme builds
// deterministically from the specification graph, so rebuilding on load
// yields bit-identical skeleton labels — and therefore bit-identical query
// answers — at a fraction of the snapshot size.

Result<SnapshotWriter> ProvenanceService::BuildSnapshotWriter() const {
  const std::string_view scheme_name = scheme_->name();
  if (!ParseSpecSchemeKind(scheme_name).ok()) {
    return Status::InvalidArgument(
        "scheme '" + std::string(scheme_name) +
        "' is not a bundled SpecSchemeKind; only services over bundled "
        "schemes can be snapshotted");
  }
  SnapshotWriter writer;
  const std::string spec_xml = WriteSpecificationXml(*spec_);
  writer.AddSection(kSnapshotSectionSpec,
                    std::vector<uint8_t>(spec_xml.begin(), spec_xml.end()));
  writer.AddSection(
      kSnapshotSectionScheme,
      std::vector<uint8_t>(scheme_name.begin(), scheme_name.end()));

  // Compose the registry view shard by shard under each shard's read lock
  // — no stop-the-world pass, so queries keep answering while the snapshot
  // is encoded. Shards partition ids by hash, so the sweep's cross-shard
  // order interleaves; sorting restores the ascending id order the on-disk
  // layout requires (the byte format is unchanged from the single-lock
  // registry).
  struct SavedRun {
    uint64_t id;
    RunStats stats;
    std::vector<uint8_t> blob;
  };
  std::vector<SavedRun> saved;
  registry_->ForEach([&](uint64_t id, const RunRecord& record) {
    saved.push_back({id, record.stats, record.store.Serialize()});
  });
  // Read the id allocator *after* the sweep: every id the sweep collected
  // was allocated before this load, so the invariant id < next_id holds
  // even for runs published concurrently mid-sweep.
  const uint64_t next_id = registry_->next_id();
  std::sort(saved.begin(), saved.end(),
            [](const SavedRun& a, const SavedRun& b) { return a.id < b.id; });

  BitWriter runs;
  runs.WriteVarint(next_id);
  runs.WriteVarint(saved.size());
  for (SavedRun& r : saved) {
    runs.WriteVarint(r.id);
    const RunStats& s = r.stats;
    runs.WriteVarint(s.num_vertices);
    runs.WriteVarint(s.num_items);
    runs.WriteVarint(s.label_bits);
    runs.WriteVarint(s.context_bits);
    runs.WriteVarint(s.origin_bits);
    runs.WriteVarint(s.num_nonempty_plus);
    runs.WriteVarint(s.imported ? 1 : 0);
    runs.WriteVarint(r.blob.size());
    runs.WriteBytes(r.blob);
    // Each blob exists twice once written (here and in the section being
    // assembled); release it now so peak memory stays ~one registry, not
    // two, on large services.
    std::vector<uint8_t>().swap(r.blob);
  }
  writer.AddSection(kSnapshotSectionRuns, runs.Finish());
  return writer;
}

Status ProvenanceService::SaveSnapshot(const std::string& path) const {
  SKL_ASSIGN_OR_RETURN(SnapshotWriter writer, BuildSnapshotWriter());
  Status written = std::move(writer).WriteFile(path);
  if (written.ok()) {
    counters_->snapshot_saves.fetch_add(1, std::memory_order_relaxed);
  }
  return written;
}

Result<std::vector<uint8_t>> ProvenanceService::SnapshotBytes() const {
  // The replication bootstrap path (kSnapshotFetch): same encoding as
  // SaveSnapshot, but handed back as bytes for the wire instead of a file,
  // and not counted as a snapshot save — nothing durable happened here.
  SKL_ASSIGN_OR_RETURN(SnapshotWriter writer, BuildSnapshotWriter());
  return std::move(writer).Finish();
}

Result<ProvenanceService> ProvenanceService::LoadSnapshot(
    const std::string& path, Options options) {
  SKL_ASSIGN_OR_RETURN(SnapshotReader reader, SnapshotReader::ReadFile(path));
  return LoadFromSnapshotReader(std::move(reader), std::move(options));
}

Result<ProvenanceService> ProvenanceService::LoadSnapshotBytes(
    std::vector<uint8_t> bytes, Options options) {
  SKL_ASSIGN_OR_RETURN(SnapshotReader reader,
                       SnapshotReader::Parse(std::move(bytes)));
  return LoadFromSnapshotReader(std::move(reader), std::move(options));
}

Result<ProvenanceService> ProvenanceService::LoadFromSnapshotReader(
    SnapshotReader reader, Options options) {
  SKL_ASSIGN_OR_RETURN(std::span<const uint8_t> spec_bytes,
                       reader.Section(kSnapshotSectionSpec));
  SKL_ASSIGN_OR_RETURN(
      Specification spec,
      ReadSpecificationXml(std::string(spec_bytes.begin(), spec_bytes.end())));

  SKL_ASSIGN_OR_RETURN(std::span<const uint8_t> scheme_bytes,
                       reader.Section(kSnapshotSectionScheme));
  SKL_ASSIGN_OR_RETURN(
      SpecSchemeKind kind,
      ParseSpecSchemeKind(std::string_view(
          reinterpret_cast<const char*>(scheme_bytes.data()),
          scheme_bytes.size())));

  // Rebuilds the skeleton scheme over the restored spec (deterministic).
  SKL_ASSIGN_OR_RETURN(ProvenanceService service,
                       Create(std::move(spec), kind, options));

  SKL_ASSIGN_OR_RETURN(std::span<const uint8_t> runs_bytes,
                       reader.Section(kSnapshotSectionRuns));
  BitReader runs(runs_bytes.data(), runs_bytes.size());
  uint64_t next_id = 0, count = 0;
  SKL_RETURN_NOT_OK(runs.ReadVarint(&next_id));
  SKL_RETURN_NOT_OK(runs.ReadVarint(&count));
  if (next_id == 0) {
    return Status::ParseError("snapshot run registry: id counter is zero");
  }
  // Declared-count vs payload mismatches are checked at the end of the
  // loop: unread runs would vanish silently from the restored registry.
  const VertexId n_g = service.spec_->graph().num_vertices();
  uint64_t prev_id = 0;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t id = 0, num_vertices = 0, num_items = 0, label_bits = 0,
             context_bits = 0, origin_bits = 0, num_nonempty_plus = 0,
             imported = 0, blob_len = 0;
    SKL_RETURN_NOT_OK(runs.ReadVarint(&id));
    SKL_RETURN_NOT_OK(runs.ReadVarint(&num_vertices));
    SKL_RETURN_NOT_OK(runs.ReadVarint(&num_items));
    SKL_RETURN_NOT_OK(runs.ReadVarint(&label_bits));
    SKL_RETURN_NOT_OK(runs.ReadVarint(&context_bits));
    SKL_RETURN_NOT_OK(runs.ReadVarint(&origin_bits));
    SKL_RETURN_NOT_OK(runs.ReadVarint(&num_nonempty_plus));
    SKL_RETURN_NOT_OK(runs.ReadVarint(&imported));
    SKL_RETURN_NOT_OK(runs.ReadVarint(&blob_len));
    if (id <= prev_id || id >= next_id) {
      return Status::ParseError(
          "snapshot run registry: run id " + std::to_string(id) +
          " out of order or beyond the id counter");
    }
    if (imported > 1) {
      return Status::ParseError("snapshot run registry: bad imported flag");
    }
    // The stats fields restore into uint32_t; a crafted varint must not
    // silently truncate into a plausible-looking value.
    if (label_bits > UINT32_MAX || context_bits > UINT32_MAX ||
        origin_bits > UINT32_MAX || num_nonempty_plus > UINT32_MAX) {
      return Status::ParseError("snapshot run " + std::to_string(id) +
                                ": stats field out of range");
    }
    std::span<const uint8_t> blob;
    SKL_RETURN_NOT_OK(runs.ReadBytes(blob_len, &blob));
    SKL_ASSIGN_OR_RETURN(ProvenanceStore store,
                         ProvenanceStore::Deserialize(blob));
    if (store.num_vertices() != num_vertices ||
        store.num_items() != num_items) {
      return Status::ParseError(
          "snapshot run " + std::to_string(id) +
          ": stats disagree with the stored labels/catalog");
    }
    // Same guard as ImportRun: every origin must name a spec vertex, or
    // queries would index the rebuilt scheme out of range.
    for (VertexId v = 0; v < store.num_vertices(); ++v) {
      if (store.label(v).origin >= n_g) {
        return Status::ParseError(
            "snapshot run " + std::to_string(id) + " references spec vertex " +
            std::to_string(store.label(v).origin) +
            " unknown to the snapshotted specification");
      }
    }
    RunRecord record;
    record.stats.num_vertices = static_cast<VertexId>(num_vertices);
    record.stats.num_items = static_cast<size_t>(num_items);
    record.stats.label_bits = static_cast<uint32_t>(label_bits);
    record.stats.context_bits = static_cast<uint32_t>(context_bits);
    record.stats.origin_bits = static_cast<uint32_t>(origin_bits);
    record.stats.num_nonempty_plus = static_cast<uint32_t>(num_nonempty_plus);
    record.stats.imported = imported != 0;
    record.store = std::move(store);
    if (!service.registry_->Restore(id, std::move(record))) {
      return Status::ParseError("snapshot run registry: duplicate run id " +
                                std::to_string(id));
    }
    prev_id = id;
  }
  if (runs.bit_position() != runs_bytes.size() * 8) {
    return Status::ParseError(
        "snapshot run registry has trailing bytes after the declared runs");
  }
  service.registry_->SetNextId(next_id);
  return service;
}

}  // namespace skl
