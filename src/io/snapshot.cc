#include "src/io/snapshot.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string_view>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

#include "src/common/bit_codec.h"
#include "src/common/crc32.h"
#include "src/core/provenance_service.h"
#include "src/io/workflow_xml.h"
#include "src/speclabel/scheme.h"

namespace skl {

namespace {

constexpr uint32_t kMagic = 0x534b4c53;  // "SKLS"
constexpr uint64_t kMaxSchemeTagBytes = 256;

#if defined(__unix__) || defined(__APPLE__)
Status FsyncPath(const char* path, int flags, const std::string& what) {
  int fd = ::open(path, flags);
  if (fd < 0) return Status::Internal("cannot open " + what + " for sync");
  const bool synced = ::fsync(fd) == 0;
  ::close(fd);
  if (!synced) return Status::Internal("cannot sync " + what);
  return Status::OK();
}
#endif

/// Flushes a written file to stable storage where the platform supports it.
Status SyncFile(const std::string& file) {
#if defined(__unix__) || defined(__APPLE__)
  return FsyncPath(file.c_str(), O_RDONLY, "snapshot file " + file);
#else
  (void)file;
  return Status::OK();
#endif
}

/// Flushes a directory's entries; a rename is only durable once this runs
/// *after* it.
Status SyncDir(const std::string& dir) {
#if defined(__unix__) || defined(__APPLE__)
  const std::string d = dir.empty() ? "." : dir;
  return FsyncPath(d.c_str(), O_RDONLY | O_DIRECTORY,
                   "snapshot directory " + d);
#else
  (void)dir;
  return Status::OK();
#endif
}

Result<std::vector<uint8_t>> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open snapshot file " + path);
  std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
  if (in.bad()) return Status::Internal("error reading snapshot file " + path);
  return bytes;
}

/// Encoded length of WriteVarint's LEB128 (7 bits per byte).
size_t VarintLen(uint64_t value) {
  size_t n = 1;
  while (value >= 0x80) {
    value >>= 7;
    ++n;
  }
  return n;
}

size_t AlignUp(size_t offset) {
  return (offset + kSnapshotSectionAlignment - 1) &
         ~(kSnapshotSectionAlignment - 1);
}

void AppendU32Le(std::vector<uint8_t>& out, uint32_t value) {
  out.push_back(static_cast<uint8_t>(value));
  out.push_back(static_cast<uint8_t>(value >> 8));
  out.push_back(static_cast<uint8_t>(value >> 16));
  out.push_back(static_cast<uint8_t>(value >> 24));
}

uint32_t LoadU32Le(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

/// Heap-owned snapshot bytes (Parse/ReadFile).
class HeapBacking final : public SnapshotBacking {
 public:
  explicit HeapBacking(std::vector<uint8_t> buf) : buf_(std::move(buf)) {
    bytes_ = buf_;
  }

 private:
  std::vector<uint8_t> buf_;
};

#if defined(__unix__) || defined(__APPLE__)
/// mmap'd snapshot bytes (MapFile); unmapped when the last shared owner
/// (reader or zero-copy run view) drops its reference.
class MmapBacking final : public SnapshotBacking {
 public:
  MmapBacking(void* addr, size_t len) : addr_(addr), len_(len) {
    bytes_ = std::span<const uint8_t>(static_cast<const uint8_t*>(addr), len);
  }
  ~MmapBacking() override { ::munmap(addr_, len_); }
  bool mapped() const override { return true; }

 private:
  void* addr_;
  size_t len_;
};
#endif

}  // namespace

// ----------------------------------------------------------- container IO --

void SnapshotWriter::AddSection(uint32_t id, std::vector<uint8_t> payload) {
  sections_.push_back({id, std::move(payload), /*aligned=*/false});
}

void SnapshotWriter::AddAlignedSection(uint32_t id,
                                       std::vector<uint8_t> payload) {
  sections_.push_back({id, std::move(payload), /*aligned=*/true});
}

std::vector<uint8_t> SnapshotWriter::Finish() && {
  size_t n_sections = sections_.size();
  for (const PendingSection& s : sections_) {
    if (s.aligned) ++n_sections;  // each aligned section gets a pad section
  }
  BitWriter writer;
  writer.Write(kMagic, 32);
  writer.WriteVarint(format_version_);
  writer.WriteVarint(n_sections);
  size_t offset = 4 + VarintLen(format_version_) + VarintLen(n_sections);
  for (const PendingSection& s : sections_) {
    const size_t header_len = VarintLen(s.id) + VarintLen(s.payload.size()) + 4;
    if (s.aligned) {
      // A pad section (id 0) sized so the *next* section's payload lands on
      // an alignment boundary. The pad's own header is 6 bytes: 1-byte id,
      // 1-byte length (the pad is < 64, so its varint is one byte), 4-byte
      // CRC.
      const size_t unpadded = offset + 6 + header_len;
      const size_t pad =
          (kSnapshotSectionAlignment - unpadded % kSnapshotSectionAlignment) %
          kSnapshotSectionAlignment;
      const std::vector<uint8_t> zeros(pad, 0);
      writer.WriteVarint(kSnapshotSectionPad);
      writer.WriteVarint(pad);
      writer.Write(Crc32(zeros), 32);
      writer.WriteBytes(zeros);
      offset += 6 + pad;
    }
    writer.WriteVarint(s.id);
    writer.WriteVarint(s.payload.size());
    writer.Write(Crc32(s.payload), 32);
    writer.WriteBytes(s.payload);
    offset += header_len + s.payload.size();
  }
  return writer.Finish();
}

Status SnapshotWriter::WriteFile(const std::string& path) && {
  const std::vector<uint8_t> bytes = std::move(*this).Finish();
  // Write to a sibling tmp file and rename into place: a crash mid-save
  // must never leave a torn snapshot under the real name (the previous
  // snapshot, if any, stays intact until the atomic rename). The tmp name
  // is pid+sequence qualified so concurrent saves to the same path cannot
  // clobber each other's half-written bytes before their renames.
  static std::atomic<uint64_t> save_seq{0};
  std::string unique = std::to_string(save_seq.fetch_add(1));
#if defined(__unix__) || defined(__APPLE__)
  unique = std::to_string(::getpid()) + "." + unique;
#endif
  const std::string tmp = path + ".tmp." + unique;
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::Internal("cannot create snapshot file " + tmp);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    out.close();  // flushes; a failed final flush surfaces on the stream
    if (out.fail()) {
      std::error_code cleanup_ec;
      std::filesystem::remove(tmp, cleanup_ec);
      return Status::Internal("error writing snapshot file " + tmp);
    }
  }
  // The tmp bytes must be on stable storage before the rename publishes
  // them, or a power failure could replace a good snapshot with a torn one.
  Status synced = SyncFile(tmp);
  if (!synced.ok()) {
    std::error_code cleanup_ec;
    std::filesystem::remove(tmp, cleanup_ec);
    return synced;
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    const std::string reason = ec.message();
    std::error_code cleanup_ec;
    std::filesystem::remove(tmp, cleanup_ec);
    return Status::Internal("cannot move snapshot into place at " + path +
                            ": " + reason);
  }
  // ... and the rename itself is only durable once the directory entry is
  // flushed; only then may the caller be told the checkpoint committed.
  return SyncDir(std::filesystem::path(path).parent_path().string());
}

Result<SnapshotReader> SnapshotReader::ParseBacking(
    std::shared_ptr<const SnapshotBacking> backing) {
  SnapshotReader snapshot;
  snapshot.backing_ = std::move(backing);
  const std::span<const uint8_t> bytes = snapshot.backing_->bytes();
  BitReader reader(bytes.data(), bytes.size());
  uint64_t magic = 0;
  if (!reader.Read(32, &magic).ok()) {
    return Status::ParseError("snapshot truncated: missing file header");
  }
  if (magic != kMagic) {
    return Status::ParseError("not an SKL snapshot (bad magic)");
  }
  uint64_t version = 0, count = 0;
  if (!reader.ReadVarint(&version).ok() || !reader.ReadVarint(&count).ok()) {
    return Status::ParseError("snapshot truncated: incomplete header");
  }
  if (version == 0 || version > kSnapshotFormatVersion) {
    return Status::ParseError(
        "unsupported snapshot format version " + std::to_string(version) +
        " (this build reads versions 1.." +
        std::to_string(kSnapshotFormatVersion) + ")");
  }
  snapshot.format_version_ = static_cast<uint32_t>(version);
  // The count is corruption-controlled: cap the reserve at what the file
  // could physically hold (>= 6 header bytes per section) so a crafted
  // varint yields ParseError below, not a length_error/bad_alloc abort.
  snapshot.sections_.reserve(std::min<uint64_t>(count, bytes.size() / 6));
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t id = 0, length = 0, expected_crc = 0;
    if (!reader.ReadVarint(&id).ok() || !reader.ReadVarint(&length).ok() ||
        !reader.Read(32, &expected_crc).ok()) {
      return Status::ParseError("snapshot truncated in section " +
                                std::to_string(i) + " header");
    }
    std::span<const uint8_t> payload;
    if (!reader.ReadBytes(length, &payload).ok()) {
      return Status::ParseError(
          "snapshot truncated: section " + std::to_string(i) + " declares " +
          std::to_string(length) + " payload bytes past end of file");
    }
    if (id > UINT32_MAX) {
      return Status::ParseError("snapshot section id " + std::to_string(id) +
                                " out of range");
    }
    if (Crc32(payload) != expected_crc) {
      return Status::ParseError("snapshot section " + std::to_string(id) +
                                " checksum mismatch (corrupted payload)");
    }
    snapshot.sections_.push_back(
        {static_cast<uint32_t>(id),
         static_cast<size_t>(payload.data() - bytes.data()),
         static_cast<size_t>(length)});
  }
  // Bytes past the last declared section mean a torn writer or a
  // concatenated file — reject rather than silently ignore them.
  if (reader.bit_position() != bytes.size() * 8) {
    return Status::ParseError(
        "snapshot has trailing bytes after the last section");
  }
  return snapshot;
}

Result<SnapshotReader> SnapshotReader::Parse(std::vector<uint8_t> bytes) {
  return ParseBacking(std::make_shared<HeapBacking>(std::move(bytes)));
}

Result<SnapshotReader> SnapshotReader::ReadFile(const std::string& path) {
  SKL_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes, ReadFileBytes(path));
  return Parse(std::move(bytes));
}

Result<SnapshotReader> SnapshotReader::MapFile(const std::string& path) {
#if defined(__unix__) || defined(__APPLE__)
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Status::NotFound("cannot open snapshot file " + path);
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::Internal("cannot stat snapshot file " + path);
  }
  const size_t len = static_cast<size_t>(st.st_size);
  if (len == 0) {
    // mmap(0) is an error; report what Parse would say about an empty file.
    ::close(fd);
    return Status::ParseError("snapshot truncated: missing file header");
  }
  void* addr = ::mmap(nullptr, len, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping survives the descriptor
  if (addr == MAP_FAILED) {
    return Status::Internal("cannot mmap snapshot file " + path);
  }
  // The CRC sweep inside ParseBacking touches every page, so corruption
  // surfaces here as ParseError — the same way the copying path reports it
  // — not as a SIGBUS at query time.
  return ParseBacking(std::make_shared<MmapBacking>(addr, len));
#else
  (void)path;
  return Status::Internal("mmap snapshots are not supported on this platform");
#endif
}

bool SnapshotReader::Has(uint32_t id) const {
  for (const SectionEntry& s : sections_) {
    if (s.id == id) return true;
  }
  return false;
}

Result<std::span<const uint8_t>> SnapshotReader::Section(uint32_t id) const {
  for (const SectionEntry& s : sections_) {
    if (s.id == id) {
      return backing_->bytes().subspan(s.offset, s.length);
    }
  }
  return Status::NotFound("snapshot has no section " + std::to_string(id));
}

// ------------------------------------------- service snapshot on top of it --
//
// The service-level encoding (defined here so the spec-XML and scheme-name
// dependencies stay inside src/io):
//
//   section kSnapshotSectionSpec    spec XML (WriteSpecificationXml)
//   section kSnapshotSectionScheme  canonical scheme name ("TCM", ...)
//
// and then, format version 1 (what SaveSnapshotAtVersion(path, 1) still
// writes; every v1 file keeps loading):
//
//   section kSnapshotSectionRuns    varint next_id, varint run count, then
//     per run in ascending id order: varint id, the RunStats fields
//     (num_vertices, num_items, label_bits, context_bits, origin_bits,
//     num_nonempty_plus, imported), varint blob length, and the
//     ProvenanceStore blob (which carries its own magic + version).
//
// or format version 2 (the default), which splits the registry into a
// small index and one aligned columnar payload the loader can view in
// place (the mmap path maps it read-only and copies nothing):
//
//   section kSnapshotSectionRunIndex  varint next_id, varint run count,
//     then per run in ascending id order: varint id, the RunStats fields
//     as in v1, varint reader-entry count, varint scheme-tag length + tag
//     bytes.
//   section kSnapshotSectionColumns (aligned)  a 16-byte header of u32-LE
//     totals (vertices, items, offset entries, reader entries), then seven
//     u32-LE columns, each starting at a 64-byte multiple relative to the
//     payload: Q1, Q2, Q3, ORIGIN (label components, all runs' vertices
//     concatenated in id order), WRITERS (item writers), OFFSETS (per-run
//     CSR offset arrays, run-local values, num_items+1 entries per run),
//     READERS (CSR reader entries). A run's columns are the contiguous
//     slices at its cumulative base.
//
// The scheme itself is not serialized: every bundled scheme builds
// deterministically from the specification graph, so rebuilding on load
// yields bit-identical skeleton labels — and therefore bit-identical query
// answers — at a fraction of the snapshot size.

Result<SnapshotWriter> ProvenanceService::BuildSnapshotWriter(
    uint32_t format_version) const {
  const std::string_view scheme_name = scheme().name();
  if (!ParseSpecSchemeKind(scheme_name).ok()) {
    return Status::InvalidArgument(
        "scheme '" + std::string(scheme_name) +
        "' is not a bundled SpecSchemeKind; only services over bundled "
        "schemes can be snapshotted");
  }
  // Freeze the epoch chain for this snapshot: deltas applied after this
  // point are simply not part of the file, exactly like runs published
  // after the registry sweep below. (Epoch entries are append-only, so the
  // copied prefix stays internally consistent.)
  std::vector<std::pair<uint64_t, std::vector<uint8_t>>> deltas;
  uint64_t epoch_count = 1;
  {
    std::lock_guard<std::mutex> lock(*epoch_mu_);
    epoch_count = epochs_->back().number;
    for (const SpecEpoch& e : *epochs_) {
      if (e.number < 2) continue;  // epoch 1 is the spec XML itself
      deltas.emplace_back(e.number, SerializeSpecDelta(e.delta));
    }
  }
  if (format_version < 3 && epoch_count > 1) {
    return Status::InvalidArgument(
        "cannot write snapshot format version " +
        std::to_string(format_version) + ": the service is at spec epoch " +
        std::to_string(epoch_count) +
        " and only format 3+ records the epoch chain");
  }
  SnapshotWriter writer(format_version);
  // The Spec section always holds the *creation* (epoch 1) specification;
  // the Epochs section replays the deltas on load.
  const std::string spec_xml = WriteSpecificationXml(base_spec());
  writer.AddSection(kSnapshotSectionSpec,
                    std::vector<uint8_t>(spec_xml.begin(), spec_xml.end()));
  writer.AddSection(
      kSnapshotSectionScheme,
      std::vector<uint8_t>(scheme_name.begin(), scheme_name.end()));
  if (format_version >= 3) {
    // Epochs section: varint chain length, then per epoch >= 2 its number
    // and the serialized delta that produced it.
    BitWriter epochs;
    epochs.WriteVarint(epoch_count);
    for (const auto& [number, blob] : deltas) {
      epochs.WriteVarint(number);
      epochs.WriteVarint(blob.size());
      epochs.WriteBytes(blob);
    }
    writer.AddSection(kSnapshotSectionEpochs, epochs.Finish());
  }

  // Compose the registry view shard by shard under each shard's read lock
  // — no stop-the-world pass, so queries keep answering while the snapshot
  // is encoded. Shards partition ids by hash, so the sweep's cross-shard
  // order interleaves; sorting restores the ascending id order the on-disk
  // layout requires.
  struct SavedRun {
    uint64_t id;
    RunStats stats;
    ProvenanceStore store;
  };
  std::vector<SavedRun> saved;
  registry_->ForEach([&](uint64_t id, const RunRecord& record) {
    // A run ingested under an epoch past the frozen chain (a delta raced
    // in between the chain copy and this sweep) belongs to a later
    // snapshot; including it would dangle off the recorded chain.
    if (record.stats.epoch > epoch_count) return;
    saved.push_back({id, record.stats, record.store});
  });
  // Read the id allocator *after* the sweep: every id the sweep collected
  // was allocated before this load, so the invariant id < next_id holds
  // even for runs published concurrently mid-sweep.
  const uint64_t next_id = registry_->next_id();
  std::sort(saved.begin(), saved.end(),
            [](const SavedRun& a, const SavedRun& b) { return a.id < b.id; });

  if (format_version == 1) {
    BitWriter runs;
    runs.WriteVarint(next_id);
    runs.WriteVarint(saved.size());
    for (SavedRun& r : saved) {
      runs.WriteVarint(r.id);
      const RunStats& s = r.stats;
      runs.WriteVarint(s.num_vertices);
      runs.WriteVarint(s.num_items);
      runs.WriteVarint(s.label_bits);
      runs.WriteVarint(s.context_bits);
      runs.WriteVarint(s.origin_bits);
      runs.WriteVarint(s.num_nonempty_plus);
      runs.WriteVarint(s.imported ? 1 : 0);
      const std::vector<uint8_t> blob = r.store.Serialize();
      runs.WriteVarint(blob.size());
      runs.WriteBytes(blob);
      // Release the copied store early; peak memory stays ~one registry.
      r.store = ProvenanceStore();
    }
    writer.AddSection(kSnapshotSectionRuns, runs.Finish());
    return writer;
  }

  // v2: run index + one aligned columnar payload.
  uint64_t total_vertices = 0, total_items = 0, total_offsets = 0,
           total_readers = 0;
  for (const SavedRun& r : saved) {
    total_vertices += r.store.num_vertices();
    total_items += r.store.num_items();
    total_offsets += r.store.num_items() + 1;
    total_readers += r.store.num_reader_entries();
  }
  if (total_vertices > UINT32_MAX || total_items > UINT32_MAX ||
      total_offsets > UINT32_MAX || total_readers > UINT32_MAX) {
    return Status::InvalidArgument(
        "run registry too large for a columnar snapshot");
  }

  BitWriter index;
  index.WriteVarint(next_id);
  index.WriteVarint(saved.size());
  for (const SavedRun& r : saved) {
    index.WriteVarint(r.id);
    const RunStats& s = r.stats;
    index.WriteVarint(s.num_vertices);
    index.WriteVarint(s.num_items);
    index.WriteVarint(s.label_bits);
    index.WriteVarint(s.context_bits);
    index.WriteVarint(s.origin_bits);
    index.WriteVarint(s.num_nonempty_plus);
    index.WriteVarint(s.imported ? 1 : 0);
    if (format_version >= 3) index.WriteVarint(s.epoch);
    index.WriteVarint(r.store.num_reader_entries());
    const std::string& tag = r.store.scheme_tag();
    index.WriteVarint(tag.size());
    index.WriteBytes(std::span<const uint8_t>(
        reinterpret_cast<const uint8_t*>(tag.data()), tag.size()));
  }
  writer.AddSection(kSnapshotSectionRunIndex, index.Finish());

  std::vector<uint8_t> cols;
  cols.reserve(AlignUp(16) +
               4 * (total_vertices * 4 + total_items + total_offsets +
                    total_readers) +
               7 * kSnapshotSectionAlignment);
  AppendU32Le(cols, static_cast<uint32_t>(total_vertices));
  AppendU32Le(cols, static_cast<uint32_t>(total_items));
  AppendU32Le(cols, static_cast<uint32_t>(total_offsets));
  AppendU32Le(cols, static_cast<uint32_t>(total_readers));
  const auto begin_column = [&cols] { cols.resize(AlignUp(cols.size()), 0); };
  const auto label_column = [&](std::span<const uint32_t> (
                                    ProvenanceStore::*column)() const) {
    begin_column();
    for (const SavedRun& r : saved) {
      for (uint32_t value : (r.store.*column)()) AppendU32Le(cols, value);
    }
  };
  label_column(&ProvenanceStore::q1_column);
  label_column(&ProvenanceStore::q2_column);
  label_column(&ProvenanceStore::q3_column);
  label_column(&ProvenanceStore::origin_column);
  begin_column();  // WRITERS
  for (const SavedRun& r : saved) {
    for (DataItemId x = 0; x < r.store.num_items(); ++x) {
      AppendU32Le(cols, r.store.item_writer(x));
    }
  }
  begin_column();  // OFFSETS (run-local CSR)
  for (const SavedRun& r : saved) {
    uint32_t off = 0;
    AppendU32Le(cols, 0);
    for (DataItemId x = 0; x < r.store.num_items(); ++x) {
      off += static_cast<uint32_t>(r.store.item_readers(x).size());
      AppendU32Le(cols, off);
    }
  }
  begin_column();  // READERS
  for (const SavedRun& r : saved) {
    for (DataItemId x = 0; x < r.store.num_items(); ++x) {
      for (VertexId reader : r.store.item_readers(x)) {
        AppendU32Le(cols, reader);
      }
    }
  }
  writer.AddAlignedSection(kSnapshotSectionColumns, std::move(cols));
  return writer;
}

Status ProvenanceService::SaveSnapshot(const std::string& path) const {
  return SaveSnapshotAtVersion(path, kSnapshotFormatVersion);
}

Status ProvenanceService::SaveSnapshotAtVersion(const std::string& path,
                                                uint32_t format_version) const {
  if (format_version == 0 || format_version > kSnapshotFormatVersion) {
    return Status::InvalidArgument(
        "cannot write snapshot format version " +
        std::to_string(format_version) + " (this build writes versions 1.." +
        std::to_string(kSnapshotFormatVersion) + ")");
  }
  SKL_ASSIGN_OR_RETURN(SnapshotWriter writer,
                       BuildSnapshotWriter(format_version));
  Status written = std::move(writer).WriteFile(path);
  if (written.ok()) {
    counters_->snapshot_saves.fetch_add(1, std::memory_order_relaxed);
  }
  return written;
}

Result<std::vector<uint8_t>> ProvenanceService::SnapshotBytes() const {
  // The replication bootstrap path (kSnapshotFetch): same encoding as
  // SaveSnapshot, but handed back as bytes for the wire instead of a file,
  // and not counted as a snapshot save — nothing durable happened here.
  SKL_ASSIGN_OR_RETURN(SnapshotWriter writer,
                       BuildSnapshotWriter(kSnapshotFormatVersion));
  return std::move(writer).Finish();
}

Result<ProvenanceService> ProvenanceService::LoadSnapshot(
    const std::string& path, Options options,
    SnapshotLoadOptions load_options) {
  if (load_options.use_mmap && std::getenv("SKL_NO_MMAP") == nullptr) {
    Result<SnapshotReader> mapped = SnapshotReader::MapFile(path);
    if (mapped.ok()) {
      return LoadFromSnapshotReader(std::move(mapped).value(),
                                    std::move(options));
    }
    if (mapped.status().code() == StatusCode::kParseError ||
        mapped.status().code() == StatusCode::kNotFound) {
      // The *file* is bad; the copying reader would report the same thing.
      return mapped.status();
    }
    // Only the mapping mechanism failed (platform/filesystem): fall back to
    // the copying reader below, which sees the same bytes.
  }
  SKL_ASSIGN_OR_RETURN(SnapshotReader reader, SnapshotReader::ReadFile(path));
  return LoadFromSnapshotReader(std::move(reader), std::move(options));
}

Result<ProvenanceService> ProvenanceService::LoadSnapshotBytes(
    std::vector<uint8_t> bytes, Options options) {
  SKL_ASSIGN_OR_RETURN(SnapshotReader reader,
                       SnapshotReader::Parse(std::move(bytes)));
  return LoadFromSnapshotReader(std::move(reader), std::move(options));
}

Result<ProvenanceService> ProvenanceService::LoadFromSnapshotReader(
    SnapshotReader reader, Options options) {
  SKL_ASSIGN_OR_RETURN(std::span<const uint8_t> spec_bytes,
                       reader.Section(kSnapshotSectionSpec));
  SKL_ASSIGN_OR_RETURN(
      Specification spec,
      ReadSpecificationXml(std::string(spec_bytes.begin(), spec_bytes.end())));

  SKL_ASSIGN_OR_RETURN(std::span<const uint8_t> scheme_bytes,
                       reader.Section(kSnapshotSectionScheme));
  SKL_ASSIGN_OR_RETURN(
      SpecSchemeKind kind,
      ParseSpecSchemeKind(std::string_view(
          reinterpret_cast<const char*>(scheme_bytes.data()),
          scheme_bytes.size())));

  // Rebuilds the skeleton scheme over the restored spec (deterministic).
  SKL_ASSIGN_OR_RETURN(ProvenanceService service,
                       Create(std::move(spec), kind, options));

  // v3: replay the recorded delta chain before any run is restored, so
  // every run's ingest epoch resolves to a live chain entry. Replay goes
  // through the replica path — chain continuity is enforced and nothing is
  // re-logged.
  if (reader.Has(kSnapshotSectionEpochs)) {
    SKL_ASSIGN_OR_RETURN(std::span<const uint8_t> epoch_bytes,
                         reader.Section(kSnapshotSectionEpochs));
    BitReader epochs(epoch_bytes.data(), epoch_bytes.size());
    uint64_t chain_len = 0;
    SKL_RETURN_NOT_OK(epochs.ReadVarint(&chain_len));
    if (chain_len == 0) {
      return Status::ParseError("snapshot epoch chain: length is zero");
    }
    for (uint64_t number = 2; number <= chain_len; ++number) {
      uint64_t recorded = 0, blob_len = 0;
      std::span<const uint8_t> blob;
      if (!epochs.ReadVarint(&recorded).ok() ||
          !epochs.ReadVarint(&blob_len).ok() ||
          !epochs.ReadBytes(static_cast<size_t>(blob_len), &blob).ok()) {
        return Status::ParseError(
            "snapshot epoch chain truncated at epoch " +
            std::to_string(number));
      }
      if (recorded != number) {
        return Status::ParseError(
            "snapshot epoch chain out of order: expected epoch " +
            std::to_string(number) + ", found " + std::to_string(recorded));
      }
      SKL_ASSIGN_OR_RETURN(SpecDelta delta, DeserializeSpecDelta(blob));
      Status applied = service.ApplySpecDeltaReplicated(delta, number);
      if (!applied.ok()) {
        return Status::ParseError(
            "snapshot epoch " + std::to_string(number) +
            " does not replay: " + applied.message());
      }
    }
    epochs.AlignToByte();
    if (epochs.bit_position() / 8 != epoch_bytes.size()) {
      return Status::ParseError(
          "snapshot epoch chain has trailing bytes after the declared "
          "deltas");
    }
  }

  const std::string_view scheme_name = service.scheme().name();
  const VertexId n_g = service.base_spec().graph().num_vertices();

  if (reader.Has(kSnapshotSectionRunIndex)) {
    SKL_RETURN_NOT_OK(
        LoadColumnarRuns(reader, scheme_name, n_g, &service));
    return service;
  }

  SKL_ASSIGN_OR_RETURN(std::span<const uint8_t> runs_bytes,
                       reader.Section(kSnapshotSectionRuns));
  BitReader runs(runs_bytes.data(), runs_bytes.size());
  uint64_t next_id = 0, count = 0;
  SKL_RETURN_NOT_OK(runs.ReadVarint(&next_id));
  SKL_RETURN_NOT_OK(runs.ReadVarint(&count));
  if (next_id == 0) {
    return Status::ParseError("snapshot run registry: id counter is zero");
  }
  // Declared-count vs payload mismatches are checked at the end of the
  // loop: unread runs would vanish silently from the restored registry.
  uint64_t prev_id = 0;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t id = 0, num_vertices = 0, num_items = 0, label_bits = 0,
             context_bits = 0, origin_bits = 0, num_nonempty_plus = 0,
             imported = 0, blob_len = 0;
    SKL_RETURN_NOT_OK(runs.ReadVarint(&id));
    SKL_RETURN_NOT_OK(runs.ReadVarint(&num_vertices));
    SKL_RETURN_NOT_OK(runs.ReadVarint(&num_items));
    SKL_RETURN_NOT_OK(runs.ReadVarint(&label_bits));
    SKL_RETURN_NOT_OK(runs.ReadVarint(&context_bits));
    SKL_RETURN_NOT_OK(runs.ReadVarint(&origin_bits));
    SKL_RETURN_NOT_OK(runs.ReadVarint(&num_nonempty_plus));
    SKL_RETURN_NOT_OK(runs.ReadVarint(&imported));
    SKL_RETURN_NOT_OK(runs.ReadVarint(&blob_len));
    if (id <= prev_id || id >= next_id) {
      return Status::ParseError(
          "snapshot run registry: run id " + std::to_string(id) +
          " out of order or beyond the id counter");
    }
    if (imported > 1) {
      return Status::ParseError("snapshot run registry: bad imported flag");
    }
    // The stats fields restore into uint32_t; a crafted varint must not
    // silently truncate into a plausible-looking value.
    if (label_bits > UINT32_MAX || context_bits > UINT32_MAX ||
        origin_bits > UINT32_MAX || num_nonempty_plus > UINT32_MAX) {
      return Status::ParseError("snapshot run " + std::to_string(id) +
                                ": stats field out of range");
    }
    std::span<const uint8_t> blob;
    SKL_RETURN_NOT_OK(runs.ReadBytes(blob_len, &blob));
    SKL_ASSIGN_OR_RETURN(ProvenanceStore store,
                         ProvenanceStore::Deserialize(blob));
    if (store.num_vertices() != num_vertices ||
        store.num_items() != num_items) {
      return Status::ParseError(
          "snapshot run " + std::to_string(id) +
          ": stats disagree with the stored labels/catalog");
    }
    if (!store.scheme_tag().empty() && store.scheme_tag() != scheme_name) {
      return Status::ParseError(
          "snapshot run " + std::to_string(id) +
          " was labeled under scheme '" + store.scheme_tag() +
          "', but the snapshot's scheme is '" + std::string(scheme_name) +
          "'");
    }
    // Same guard as ImportRun: every origin must name a spec vertex, or
    // queries would index the rebuilt scheme out of range.
    for (VertexId v = 0; v < store.num_vertices(); ++v) {
      if (store.label(v).origin >= n_g) {
        return Status::ParseError(
            "snapshot run " + std::to_string(id) + " references spec vertex " +
            std::to_string(store.label(v).origin) +
            " unknown to the snapshotted specification");
      }
    }
    RunRecord record;
    record.stats.num_vertices = static_cast<VertexId>(num_vertices);
    record.stats.num_items = static_cast<size_t>(num_items);
    record.stats.label_bits = static_cast<uint32_t>(label_bits);
    record.stats.context_bits = static_cast<uint32_t>(context_bits);
    record.stats.origin_bits = static_cast<uint32_t>(origin_bits);
    record.stats.num_nonempty_plus = static_cast<uint32_t>(num_nonempty_plus);
    record.stats.imported = imported != 0;
    // The v1 runs section predates epochs: every run is epoch 1.
    const SpecEpoch* at = service.FindEpoch(1);
    record.stats.epoch = 1;
    record.spec = at->spec.get();
    record.scheme = at->scheme.get();
    record.store = std::move(store);
    if (!service.registry_->Restore(id, std::move(record))) {
      return Status::ParseError("snapshot run registry: duplicate run id " +
                                std::to_string(id));
    }
    prev_id = id;
  }
  if (runs.bit_position() != runs_bytes.size() * 8) {
    return Status::ParseError(
        "snapshot run registry has trailing bytes after the declared runs");
  }
  service.registry_->SetNextId(next_id);
  return service;
}

Status ProvenanceService::LoadColumnarRuns(const SnapshotReader& reader,
                                           std::string_view scheme_name,
                                           VertexId n_g,
                                           ProvenanceService* service) {
  (void)n_g;  // origin checks are per-run-epoch since format v3
  SKL_ASSIGN_OR_RETURN(std::span<const uint8_t> index_bytes,
                       reader.Section(kSnapshotSectionRunIndex));
  BitReader index(index_bytes.data(), index_bytes.size());
  uint64_t next_id = 0, count = 0;
  SKL_RETURN_NOT_OK(index.ReadVarint(&next_id));
  SKL_RETURN_NOT_OK(index.ReadVarint(&count));
  if (next_id == 0) {
    return Status::ParseError("snapshot run registry: id counter is zero");
  }
  struct RunMeta {
    uint64_t id;
    RunStats stats;
    uint64_t readers_total;
    std::string tag;
  };
  std::vector<RunMeta> metas;
  // Reserve is corruption-controlled like the section table: each indexed
  // run occupies at least 10 varint bytes.
  metas.reserve(std::min<uint64_t>(count, index_bytes.size() / 10 + 1));
  uint64_t prev_id = 0;
  uint64_t sum_vertices = 0, sum_items = 0, sum_offsets = 0, sum_readers = 0;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t id = 0, num_vertices = 0, num_items = 0, label_bits = 0,
             context_bits = 0, origin_bits = 0, num_nonempty_plus = 0,
             imported = 0, epoch = 1, readers_total = 0, tag_len = 0;
    SKL_RETURN_NOT_OK(index.ReadVarint(&id));
    SKL_RETURN_NOT_OK(index.ReadVarint(&num_vertices));
    SKL_RETURN_NOT_OK(index.ReadVarint(&num_items));
    SKL_RETURN_NOT_OK(index.ReadVarint(&label_bits));
    SKL_RETURN_NOT_OK(index.ReadVarint(&context_bits));
    SKL_RETURN_NOT_OK(index.ReadVarint(&origin_bits));
    SKL_RETURN_NOT_OK(index.ReadVarint(&num_nonempty_plus));
    SKL_RETURN_NOT_OK(index.ReadVarint(&imported));
    if (reader.format_version() >= 3) {
      SKL_RETURN_NOT_OK(index.ReadVarint(&epoch));
    }
    SKL_RETURN_NOT_OK(index.ReadVarint(&readers_total));
    SKL_RETURN_NOT_OK(index.ReadVarint(&tag_len));
    if (id <= prev_id || id >= next_id) {
      return Status::ParseError(
          "snapshot run registry: run id " + std::to_string(id) +
          " out of order or beyond the id counter");
    }
    if (imported > 1) {
      return Status::ParseError("snapshot run registry: bad imported flag");
    }
    if (service->FindEpoch(epoch) == nullptr) {
      return Status::ParseError(
          "snapshot run " + std::to_string(id) + " was ingested under spec "
          "epoch " + std::to_string(epoch) +
          ", which the snapshot's epoch chain does not reach");
    }
    if (num_vertices > UINT32_MAX || num_items > UINT32_MAX ||
        label_bits > UINT32_MAX || context_bits > UINT32_MAX ||
        origin_bits > UINT32_MAX || num_nonempty_plus > UINT32_MAX ||
        readers_total > UINT32_MAX) {
      return Status::ParseError("snapshot run " + std::to_string(id) +
                                ": stats field out of range");
    }
    if (tag_len > kMaxSchemeTagBytes) {
      return Status::ParseError("snapshot run " + std::to_string(id) +
                                ": scheme tag too long");
    }
    std::span<const uint8_t> tag_bytes;
    SKL_RETURN_NOT_OK(index.ReadBytes(tag_len, &tag_bytes));
    std::string tag(tag_bytes.begin(), tag_bytes.end());
    if (!tag.empty() && tag != scheme_name) {
      return Status::ParseError(
          "snapshot run " + std::to_string(id) + " was labeled under scheme '" +
          tag + "', but the snapshot's scheme is '" + std::string(scheme_name) +
          "'");
    }
    RunMeta meta;
    meta.id = id;
    meta.stats.num_vertices = static_cast<VertexId>(num_vertices);
    meta.stats.num_items = static_cast<size_t>(num_items);
    meta.stats.label_bits = static_cast<uint32_t>(label_bits);
    meta.stats.context_bits = static_cast<uint32_t>(context_bits);
    meta.stats.origin_bits = static_cast<uint32_t>(origin_bits);
    meta.stats.num_nonempty_plus = static_cast<uint32_t>(num_nonempty_plus);
    meta.stats.imported = imported != 0;
    meta.stats.epoch = epoch;
    meta.readers_total = readers_total;
    meta.tag = std::move(tag);
    metas.push_back(std::move(meta));
    sum_vertices += num_vertices;
    sum_items += num_items;
    sum_offsets += num_items + 1;
    sum_readers += readers_total;
    prev_id = id;
  }
  if (index.bit_position() != index_bytes.size() * 8) {
    return Status::ParseError(
        "snapshot run registry has trailing bytes after the declared runs");
  }

  SKL_ASSIGN_OR_RETURN(std::span<const uint8_t> cols,
                       reader.Section(kSnapshotSectionColumns));
  if (cols.size() < 16) {
    return Status::ParseError("snapshot columnar section truncated");
  }
  const uint64_t totals[4] = {LoadU32Le(cols.data()), LoadU32Le(cols.data() + 4),
                              LoadU32Le(cols.data() + 8),
                              LoadU32Le(cols.data() + 12)};
  if (totals[0] != sum_vertices || totals[1] != sum_items ||
      totals[2] != sum_offsets || totals[3] != sum_readers) {
    return Status::ParseError(
        "snapshot columnar section totals disagree with the run index");
  }
  // Column geometry: 16-byte header, then seven u32 columns, each aligned
  // to a 64-byte multiple relative to the payload start.
  const uint64_t col_counts[7] = {totals[0], totals[0], totals[0], totals[0],
                                  totals[1], totals[2], totals[3]};
  size_t col_off[7];
  size_t off = 16;
  for (int c = 0; c < 7; ++c) {
    off = AlignUp(off);
    col_off[c] = off;
    off += static_cast<size_t>(col_counts[c]) * 4;
  }
  if (off != cols.size()) {
    return Status::ParseError(
        "snapshot columnar section size disagrees with the run index");
  }

  // Zero-copy view when the host can read the little-endian columns in
  // place (the payload's actual address is u32-aligned; guaranteed for the
  // writer's aligned section under both the heap and mmap readers, checked
  // anyway for hand-assembled files). Otherwise decode into one owned
  // contiguous buffer — same layout, shared by every restored run.
  const bool can_view =
      std::endian::native == std::endian::little &&
      reinterpret_cast<uintptr_t>(cols.data()) % alignof(uint32_t) == 0;
  const uint32_t* base[7];
  std::shared_ptr<const void> backing;
  if (can_view) {
    for (int c = 0; c < 7; ++c) {
      base[c] = reinterpret_cast<const uint32_t*>(cols.data() + col_off[c]);
    }
    backing = reader.backing();
  } else {
    auto decoded = std::make_shared<std::vector<uint32_t>>();
    size_t total = 0;
    for (uint64_t n : col_counts) total += static_cast<size_t>(n);
    decoded->resize(total);
    size_t out = 0;
    for (int c = 0; c < 7; ++c) {
      base[c] = decoded->data() + out;
      for (uint64_t j = 0; j < col_counts[c]; ++j) {
        (*decoded)[out++] = LoadU32Le(cols.data() + col_off[c] + 4 * j);
      }
    }
    backing = std::move(decoded);
  }

  size_t cum_v = 0, cum_items = 0, cum_offsets = 0, cum_readers = 0;
  for (RunMeta& meta : metas) {
    const size_t n = meta.stats.num_vertices;
    const size_t items = meta.stats.num_items;
    const size_t readers_total = static_cast<size_t>(meta.readers_total);
    const std::span<const uint32_t> q1(base[0] + cum_v, n);
    const std::span<const uint32_t> q2(base[1] + cum_v, n);
    const std::span<const uint32_t> q3(base[2] + cum_v, n);
    const std::span<const uint32_t> origin(base[3] + cum_v, n);
    const std::span<const uint32_t> writers(base[4] + cum_items, items);
    const std::span<const uint32_t> offsets(base[5] + cum_offsets, items + 1);
    const std::span<const uint32_t> readers(base[6] + cum_readers,
                                            readers_total);
    // Same guard as ImportRun, against the run's *own* epoch: every origin
    // must name a vertex of the spec the run was labeled under, or queries
    // would index that epoch's scheme out of range. (Presence was already
    // verified in the index pass.)
    const SpecEpoch* at = service->FindEpoch(meta.stats.epoch);
    const VertexId run_n_g = at->spec->graph().num_vertices();
    for (uint32_t o : origin) {
      if (o >= run_n_g) {
        return Status::ParseError(
            "snapshot run " + std::to_string(meta.id) +
            " references spec vertex " + std::to_string(o) +
            " unknown to its epoch's specification");
      }
    }
    for (uint32_t w : writers) {
      if (w >= n) {
        return Status::ParseError("snapshot run " + std::to_string(meta.id) +
                                  ": item writer out of range");
      }
    }
    if (offsets[0] != 0 || offsets[items] != readers_total) {
      return Status::ParseError("snapshot run " + std::to_string(meta.id) +
                                ": corrupt reader offsets");
    }
    for (size_t x = 0; x < items; ++x) {
      if (offsets[x + 1] < offsets[x]) {
        return Status::ParseError("snapshot run " + std::to_string(meta.id) +
                                  ": corrupt reader offsets");
      }
    }
    for (uint32_t r : readers) {
      if (r >= n) {
        return Status::ParseError("snapshot run " + std::to_string(meta.id) +
                                  ": item reader out of range");
      }
    }
    RunRecord record;
    record.stats = meta.stats;
    record.spec = at->spec.get();
    record.scheme = at->scheme.get();
    record.store = ProvenanceStore::FromColumns(
        q1, q2, q3, origin, writers, offsets, readers, std::move(meta.tag),
        backing);
    if (!service->registry_->Restore(meta.id, std::move(record))) {
      return Status::ParseError("snapshot run registry: duplicate run id " +
                                std::to_string(meta.id));
    }
    cum_v += n;
    cum_items += items;
    cum_offsets += items + 1;
    cum_readers += readers_total;
  }
  service->registry_->SetNextId(next_id);
  service->loaded_via_mmap_ = can_view && reader.is_mapped();
  return Status::OK();
}

}  // namespace skl
