// XML serialization of specifications and runs.
//
// Specification:
//   <specification>
//     <module name="a"/> ...
//     <edge from="a" to="b"/> ...
//     <fork vertices="a b c h"/>
//     <loop vertices="b c"/>
//   </specification>
//
// Run (module names repeat; ids disambiguate):
//   <run>
//     <vertex id="0" module="a"/> ...
//     <edge from="0" to="3"/> ...
//   </run>
#ifndef SKL_IO_WORKFLOW_XML_H_
#define SKL_IO_WORKFLOW_XML_H_

#include <string>

#include "src/common/status.h"
#include "src/workflow/run.h"
#include "src/workflow/specification.h"

namespace skl {

std::string WriteSpecificationXml(const Specification& spec);
Result<Specification> ReadSpecificationXml(const std::string& xml);

std::string WriteRunXml(const Run& run);
Result<Run> ReadRunXml(const std::string& xml);

}  // namespace skl

#endif  // SKL_IO_WORKFLOW_XML_H_
