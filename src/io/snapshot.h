// Durable service snapshots: the whole ProvenanceService — specification,
// skeleton scheme identity, and every registered run with its labels —
// serialized to one versioned, checksummed binary file. This is the paper's
// amortization argument made restart-proof: the specification is labeled
// once, and a warm restart (ProvenanceService::LoadSnapshot) restores a
// fully queryable service without relabeling a single run.
//
// Container layout (all multi-byte fields via the bit_codec varint/bit
// encodings, byte-aligned):
//
//   magic "SKLS" (32 bits)
//   container format version  varint
//   section count             varint
//   per section:
//     section id              varint
//     payload length (bytes)  varint
//     payload CRC-32          32 bits
//     payload                 raw bytes
//
// Sections are opaque payloads to the container; SnapshotWriter /
// SnapshotReader only deal in (id, bytes, checksum). The service-level
// encoding on top (section ids kSnapshotSection*) lives in snapshot.cc and
// is documented in docs/PERSISTENCE.md, together with the versioning and
// recovery policy. Every malformed input — truncated file, bad magic,
// unsupported version, checksum mismatch — is reported as a descriptive
// ParseError Status, never a crash.
#ifndef SKL_IO_SNAPSHOT_H_
#define SKL_IO_SNAPSHOT_H_

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "src/common/status.h"

namespace skl {

/// Current container format version written by SnapshotWriter.
inline constexpr uint32_t kSnapshotFormatVersion = 1;

/// Section ids of the service snapshot encoding (see docs/PERSISTENCE.md).
inline constexpr uint32_t kSnapshotSectionSpec = 1;    ///< spec XML
inline constexpr uint32_t kSnapshotSectionScheme = 2;  ///< scheme name
inline constexpr uint32_t kSnapshotSectionRuns = 3;    ///< run registry

/// Assembles a snapshot file: add sections, then Finish() into bytes or
/// WriteFile() to disk (written to a unique "<path>.tmp.<pid>.<seq>"
/// sibling, fsynced, and renamed into place, so neither a crash mid-save
/// nor a concurrent save to the same path can leave a half-written
/// snapshot at `path`).
class SnapshotWriter {
 public:
  /// `format_version` is overridable only so tests can fabricate snapshots
  /// from the future; production callers use the default.
  explicit SnapshotWriter(uint32_t format_version = kSnapshotFormatVersion)
      : format_version_(format_version) {}

  /// Appends one section. Ids should be unique; SnapshotReader::Section
  /// returns the first match.
  void AddSection(uint32_t id, std::vector<uint8_t> payload);

  /// Encodes the container and returns its bytes.
  std::vector<uint8_t> Finish() &&;

  /// Encodes the container and writes it to `path` (tmp-file + rename).
  Status WriteFile(const std::string& path) &&;

 private:
  uint32_t format_version_;
  std::vector<std::pair<uint32_t, std::vector<uint8_t>>> sections_;
};

/// Parses and validates a snapshot: magic, version, section table, and the
/// CRC-32 of every section payload are all checked up front, so a reader
/// holding a SnapshotReader knows the bytes are intact.
class SnapshotReader {
 public:
  /// Parses an in-memory snapshot. The reader owns the bytes; Section()
  /// spans point into them.
  static Result<SnapshotReader> Parse(std::vector<uint8_t> bytes);

  /// Reads and parses a snapshot file.
  static Result<SnapshotReader> ReadFile(const std::string& path);

  uint32_t format_version() const { return format_version_; }
  size_t num_sections() const { return sections_.size(); }

  bool Has(uint32_t id) const;

  /// Payload of the section with the given id (checksum already verified),
  /// or NotFound. The span is valid for the reader's lifetime.
  Result<std::span<const uint8_t>> Section(uint32_t id) const;

 private:
  struct SectionEntry {
    uint32_t id;
    size_t offset;  ///< byte offset of the payload in bytes_
    size_t length;
  };

  SnapshotReader() = default;

  std::vector<uint8_t> bytes_;
  uint32_t format_version_ = 0;
  std::vector<SectionEntry> sections_;
};

}  // namespace skl

#endif  // SKL_IO_SNAPSHOT_H_
