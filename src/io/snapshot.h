// Durable service snapshots: the whole ProvenanceService — specification,
// skeleton scheme identity, and every registered run with its labels —
// serialized to one versioned, checksummed binary file. This is the paper's
// amortization argument made restart-proof: the specification is labeled
// once, and a warm restart (ProvenanceService::LoadSnapshot) restores a
// fully queryable service without relabeling a single run.
//
// Container layout (all multi-byte fields via the bit_codec varint/bit
// encodings, byte-aligned):
//
//   magic "SKLS" (32 bits)
//   container format version  varint
//   section count             varint
//   per section:
//     section id              varint
//     payload length (bytes)  varint
//     payload CRC-32          32 bits
//     payload                 raw bytes
//
// Sections are opaque payloads to the container; SnapshotWriter /
// SnapshotReader only deal in (id, bytes, checksum). An *aligned* section's
// payload additionally starts at a 64-byte multiple in the file — the
// writer inserts a pad section (id 0) in front of it — so a reader that
// mmaps the file can hand the payload to SIMD loops and typed column views
// in place. The service-level encoding on top (section ids
// kSnapshotSection*) lives in snapshot.cc and is documented in
// docs/PERSISTENCE.md, together with the versioning and recovery policy.
// Every malformed input — truncated file, bad magic, unsupported version,
// checksum mismatch — is reported as a descriptive ParseError Status,
// never a crash.
#ifndef SKL_IO_SNAPSHOT_H_
#define SKL_IO_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "src/common/status.h"

namespace skl {

/// Current container format version written by SnapshotWriter. Version 1
/// stored runs as per-run self-describing blobs; version 2 stores them as
/// contiguous columnar arrays (plus the run index); version 3 adds the
/// spec-epoch chain (docs/UPDATES.md) — the delta history and a per-run
/// ingest epoch in the run index. SnapshotReader accepts all three; see
/// docs/PERSISTENCE.md for the compat matrix. A service past epoch 1
/// refuses to save at versions < 3 (older readers would mis-attribute its
/// runs to the creation spec).
inline constexpr uint32_t kSnapshotFormatVersion = 3;

/// Alignment (bytes) the writer guarantees for aligned sections' payloads,
/// chosen to match cache-line / SIMD-width expectations of the column
/// loops.
inline constexpr size_t kSnapshotSectionAlignment = 64;

/// Section ids of the service snapshot encoding (see docs/PERSISTENCE.md).
inline constexpr uint32_t kSnapshotSectionPad = 0;       ///< alignment filler
inline constexpr uint32_t kSnapshotSectionSpec = 1;      ///< spec XML
inline constexpr uint32_t kSnapshotSectionScheme = 2;    ///< scheme name
inline constexpr uint32_t kSnapshotSectionRuns = 3;      ///< v1 run registry
inline constexpr uint32_t kSnapshotSectionRunIndex = 4;  ///< v2 run index
inline constexpr uint32_t kSnapshotSectionColumns = 5;   ///< v2 label columns
inline constexpr uint32_t kSnapshotSectionEpochs = 6;    ///< v3 epoch chain

/// Owns the bytes a parsed snapshot points into — a heap buffer or a
/// read-only mmap'd region. Shared (via shared_ptr) by the SnapshotReader
/// and any zero-copy ProvenanceStore views carved out of it, so an mmap is
/// released exactly when the last owner lets go.
class SnapshotBacking {
 public:
  virtual ~SnapshotBacking() = default;
  SnapshotBacking(const SnapshotBacking&) = delete;
  SnapshotBacking& operator=(const SnapshotBacking&) = delete;

  std::span<const uint8_t> bytes() const { return bytes_; }
  /// True for mmap'd regions (whose validity depends on the file not being
  /// truncated underneath the mapping — see docs/PERSISTENCE.md).
  virtual bool mapped() const { return false; }

 protected:
  SnapshotBacking() = default;
  std::span<const uint8_t> bytes_;
};

/// Assembles a snapshot file: add sections, then Finish() into bytes or
/// WriteFile() to disk (written to a unique "<path>.tmp.<pid>.<seq>"
/// sibling, fsynced, and renamed into place, so neither a crash mid-save
/// nor a concurrent save to the same path can leave a half-written
/// snapshot at `path`).
class SnapshotWriter {
 public:
  /// `format_version` is overridable so tests can fabricate snapshots from
  /// the future and compat paths can pin the previous format; production
  /// callers use the default.
  explicit SnapshotWriter(uint32_t format_version = kSnapshotFormatVersion)
      : format_version_(format_version) {}

  /// Appends one section. Ids should be unique; SnapshotReader::Section
  /// returns the first match.
  void AddSection(uint32_t id, std::vector<uint8_t> payload);

  /// Appends one section whose payload will start at a multiple of
  /// kSnapshotSectionAlignment in the encoded file (a pad section is
  /// inserted in front of it). Precondition: id < 128.
  void AddAlignedSection(uint32_t id, std::vector<uint8_t> payload);

  /// Encodes the container and returns its bytes.
  std::vector<uint8_t> Finish() &&;

  /// Encodes the container and writes it to `path` (tmp-file + rename).
  Status WriteFile(const std::string& path) &&;

 private:
  struct PendingSection {
    uint32_t id;
    std::vector<uint8_t> payload;
    bool aligned;
  };
  uint32_t format_version_;
  std::vector<PendingSection> sections_;
};

/// Parses and validates a snapshot: magic, version, section table, and the
/// CRC-32 of every section payload are all checked up front, so a reader
/// holding a SnapshotReader knows the bytes are intact (for an mmap'd file,
/// "intact" as of the eager CRC sweep — the mapping contract is the
/// caller's from there).
class SnapshotReader {
 public:
  /// Parses an in-memory snapshot. The reader owns the bytes; Section()
  /// spans point into them.
  static Result<SnapshotReader> Parse(std::vector<uint8_t> bytes);

  /// Reads and parses a snapshot file into a heap buffer (the copying
  /// path).
  static Result<SnapshotReader> ReadFile(const std::string& path);

  /// Maps a snapshot file read-only and parses it in place (the zero-copy
  /// path). NotFound if the file cannot be opened, ParseError if its bytes
  /// are malformed (exactly as ReadFile would report), Internal if the
  /// platform cannot map it — callers treat only the last as "fall back to
  /// ReadFile".
  static Result<SnapshotReader> MapFile(const std::string& path);

  uint32_t format_version() const { return format_version_; }
  size_t num_sections() const { return sections_.size(); }

  bool Has(uint32_t id) const;

  /// Payload of the section with the given id (checksum already verified),
  /// or NotFound. The span is valid while the backing lives.
  Result<std::span<const uint8_t>> Section(uint32_t id) const;

  /// The byte owner. Callers that build zero-copy views into Section()
  /// spans must retain a copy of this shared_ptr for the views' lifetime.
  const std::shared_ptr<const SnapshotBacking>& backing() const {
    return backing_;
  }

  /// True when the backing is an mmap'd region rather than a heap buffer.
  bool is_mapped() const {
    return backing_ != nullptr && backing_->mapped();
  }

 private:
  struct SectionEntry {
    uint32_t id;
    size_t offset;  ///< byte offset of the payload in the backing
    size_t length;
  };

  SnapshotReader() = default;

  static Result<SnapshotReader> ParseBacking(
      std::shared_ptr<const SnapshotBacking> backing);

  std::shared_ptr<const SnapshotBacking> backing_;
  uint32_t format_version_ = 0;
  std::vector<SectionEntry> sections_;
};

}  // namespace skl

#endif  // SKL_IO_SNAPSHOT_H_
