// Minimal XML subset used to persist specifications and runs (the paper
// stores both as XML files). Supports elements, attributes, self-closing
// tags, comments, XML declarations and the five predefined entities; no
// namespaces, CDATA or DTDs. Implemented from scratch — no external
// dependencies.
#ifndef SKL_IO_XML_H_
#define SKL_IO_XML_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/common/status.h"

namespace skl {

struct XmlNode {
  std::string name;
  std::vector<std::pair<std::string, std::string>> attributes;
  std::vector<XmlNode> children;
  std::string text;  ///< concatenated character data directly inside

  /// Attribute value, or nullptr.
  const std::string* FindAttribute(std::string_view key) const;
  /// First child element with the given name, or nullptr.
  const XmlNode* FindChild(std::string_view name) const;
  /// All child elements with the given name.
  std::vector<const XmlNode*> FindChildren(std::string_view name) const;
};

/// Parses a document; returns its root element.
Result<XmlNode> ParseXml(std::string_view input);

/// Serializes with 2-space indentation and a leading XML declaration.
std::string SerializeXml(const XmlNode& root);

/// Escapes the five predefined entities.
std::string XmlEscape(std::string_view text);

}  // namespace skl

#endif  // SKL_IO_XML_H_
