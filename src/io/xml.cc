#include "src/io/xml.h"

#include <cctype>

namespace skl {

const std::string* XmlNode::FindAttribute(std::string_view key) const {
  for (const auto& [k, v] : attributes) {
    if (k == key) return &v;
  }
  return nullptr;
}

const XmlNode* XmlNode::FindChild(std::string_view name_arg) const {
  for (const XmlNode& c : children) {
    if (c.name == name_arg) return &c;
  }
  return nullptr;
}

std::vector<const XmlNode*> XmlNode::FindChildren(
    std::string_view name_arg) const {
  std::vector<const XmlNode*> out;
  for (const XmlNode& c : children) {
    if (c.name == name_arg) out.push_back(&c);
  }
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view input) : in_(input) {}

  Result<XmlNode> Parse() {
    SkipProlog();
    XmlNode root;
    SKL_RETURN_NOT_OK(ParseElement(&root));
    SkipWhitespaceAndComments();
    if (pos_ != in_.size()) {
      return Status::ParseError("trailing content after root element");
    }
    return root;
  }

 private:
  bool Eof() const { return pos_ >= in_.size(); }
  char Peek() const { return in_[pos_]; }
  bool Consume(std::string_view token) {
    if (in_.substr(pos_, token.size()) == token) {
      pos_ += token.size();
      return true;
    }
    return false;
  }

  void SkipWhitespace() {
    while (!Eof() && std::isspace(static_cast<unsigned char>(Peek()))) ++pos_;
  }

  Status SkipComment() {
    // Caller consumed "<!--".
    size_t end = in_.find("-->", pos_);
    if (end == std::string_view::npos) {
      return Status::ParseError("unterminated comment");
    }
    pos_ = end + 3;
    return Status::OK();
  }

  void SkipWhitespaceAndComments() {
    for (;;) {
      SkipWhitespace();
      if (Consume("<!--")) {
        if (!SkipComment().ok()) return;
        continue;
      }
      return;
    }
  }

  void SkipProlog() {
    SkipWhitespace();
    if (Consume("<?")) {
      size_t end = in_.find("?>", pos_);
      pos_ = end == std::string_view::npos ? in_.size() : end + 2;
    }
    SkipWhitespaceAndComments();
  }

  static bool IsNameChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '-' || c == '.' || c == ':';
  }

  Status ParseName(std::string* out) {
    size_t start = pos_;
    while (!Eof() && IsNameChar(Peek())) ++pos_;
    if (pos_ == start) return Status::ParseError("expected a name");
    *out = std::string(in_.substr(start, pos_ - start));
    return Status::OK();
  }

  Status Unescape(std::string_view raw, std::string* out) {
    out->clear();
    out->reserve(raw.size());
    for (size_t i = 0; i < raw.size(); ++i) {
      if (raw[i] != '&') {
        out->push_back(raw[i]);
        continue;
      }
      size_t semi = raw.find(';', i);
      if (semi == std::string_view::npos) {
        return Status::ParseError("unterminated entity");
      }
      std::string_view entity = raw.substr(i + 1, semi - i - 1);
      if (entity == "amp") {
        out->push_back('&');
      } else if (entity == "lt") {
        out->push_back('<');
      } else if (entity == "gt") {
        out->push_back('>');
      } else if (entity == "quot") {
        out->push_back('"');
      } else if (entity == "apos") {
        out->push_back('\'');
      } else {
        return Status::ParseError("unknown entity: " + std::string(entity));
      }
      i = semi;
    }
    return Status::OK();
  }

  Status ParseAttributes(XmlNode* node) {
    for (;;) {
      SkipWhitespace();
      if (Eof()) return Status::ParseError("unterminated start tag");
      if (Peek() == '>' || Peek() == '/') return Status::OK();
      std::string key;
      SKL_RETURN_NOT_OK(ParseName(&key));
      SkipWhitespace();
      if (!Consume("=")) return Status::ParseError("expected '='");
      SkipWhitespace();
      if (Eof() || (Peek() != '"' && Peek() != '\'')) {
        return Status::ParseError("expected a quoted attribute value");
      }
      char quote = Peek();
      ++pos_;
      size_t start = pos_;
      while (!Eof() && Peek() != quote) ++pos_;
      if (Eof()) return Status::ParseError("unterminated attribute value");
      std::string value;
      SKL_RETURN_NOT_OK(Unescape(in_.substr(start, pos_ - start), &value));
      ++pos_;
      node->attributes.emplace_back(std::move(key), std::move(value));
    }
  }

  Status ParseElement(XmlNode* node) {
    SkipWhitespaceAndComments();
    if (!Consume("<")) return Status::ParseError("expected '<'");
    SKL_RETURN_NOT_OK(ParseName(&node->name));
    SKL_RETURN_NOT_OK(ParseAttributes(node));
    if (Consume("/>")) return Status::OK();
    if (!Consume(">")) return Status::ParseError("expected '>'");
    // Content: children, text, comments, until the matching end tag.
    for (;;) {
      size_t lt = in_.find('<', pos_);
      if (lt == std::string_view::npos) {
        return Status::ParseError("unterminated element: " + node->name);
      }
      std::string text_chunk;
      SKL_RETURN_NOT_OK(Unescape(in_.substr(pos_, lt - pos_), &text_chunk));
      // Keep non-whitespace character data only.
      for (char c : text_chunk) {
        if (!std::isspace(static_cast<unsigned char>(c))) {
          node->text += text_chunk;
          break;
        }
      }
      pos_ = lt;
      if (Consume("<!--")) {
        SKL_RETURN_NOT_OK(SkipComment());
        continue;
      }
      if (in_.substr(pos_, 2) == "</") {
        pos_ += 2;
        std::string closing;
        SKL_RETURN_NOT_OK(ParseName(&closing));
        SkipWhitespace();
        if (!Consume(">")) return Status::ParseError("expected '>'");
        if (closing != node->name) {
          return Status::ParseError("mismatched end tag: expected </" +
                                    node->name + ">, got </" + closing + ">");
        }
        return Status::OK();
      }
      XmlNode child;
      SKL_RETURN_NOT_OK(ParseElement(&child));
      node->children.push_back(std::move(child));
    }
  }

  std::string_view in_;
  size_t pos_ = 0;
};

void SerializeNode(const XmlNode& node, int indent, std::string* out) {
  out->append(static_cast<size_t>(indent) * 2, ' ');
  out->push_back('<');
  out->append(node.name);
  for (const auto& [k, v] : node.attributes) {
    out->push_back(' ');
    out->append(k);
    out->append("=\"");
    out->append(XmlEscape(v));
    out->push_back('"');
  }
  if (node.children.empty() && node.text.empty()) {
    out->append("/>\n");
    return;
  }
  out->push_back('>');
  if (!node.text.empty()) out->append(XmlEscape(node.text));
  if (!node.children.empty()) {
    out->push_back('\n');
    for (const XmlNode& c : node.children) SerializeNode(c, indent + 1, out);
    out->append(static_cast<size_t>(indent) * 2, ' ');
  }
  out->append("</");
  out->append(node.name);
  out->append(">\n");
}

}  // namespace

Result<XmlNode> ParseXml(std::string_view input) {
  Parser parser(input);
  return parser.Parse();
}

std::string SerializeXml(const XmlNode& root) {
  std::string out = "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n";
  SerializeNode(root, 0, &out);
  return out;
}

std::string XmlEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      case '\'':
        out += "&apos;";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

}  // namespace skl
