#include "src/io/workflow_xml.h"

#include <charconv>
#include <unordered_map>
#include <sstream>

#include "src/io/xml.h"

namespace skl {

namespace {

Result<uint32_t> ParseU32(const std::string& s) {
  uint32_t value = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc() || ptr != s.data() + s.size()) {
    return Status::ParseError("not an unsigned integer: " + s);
  }
  return value;
}

std::vector<std::string> SplitWords(const std::string& s) {
  std::vector<std::string> out;
  std::istringstream iss(s);
  std::string word;
  while (iss >> word) out.push_back(word);
  return out;
}

}  // namespace

std::string WriteSpecificationXml(const Specification& spec) {
  XmlNode root;
  root.name = "specification";
  for (VertexId v = 0; v < spec.graph().num_vertices(); ++v) {
    XmlNode m;
    m.name = "module";
    m.attributes.emplace_back("name", spec.ModuleName(v));
    root.children.push_back(std::move(m));
  }
  for (const auto& [u, v] : spec.graph().Edges()) {
    XmlNode e;
    e.name = "edge";
    e.attributes.emplace_back("from", spec.ModuleName(u));
    e.attributes.emplace_back("to", spec.ModuleName(v));
    root.children.push_back(std::move(e));
  }
  for (const SubgraphInfo& sub : spec.subgraphs()) {
    XmlNode s;
    s.name = sub.kind == SubgraphKind::kFork ? "fork" : "loop";
    std::string vertices;
    for (VertexId v : sub.vertices) {
      if (!vertices.empty()) vertices.push_back(' ');
      vertices += spec.ModuleName(v);
    }
    s.attributes.emplace_back("vertices", vertices);
    root.children.push_back(std::move(s));
  }
  return SerializeXml(root);
}

Result<Specification> ReadSpecificationXml(const std::string& xml) {
  SKL_ASSIGN_OR_RETURN(XmlNode root, ParseXml(xml));
  if (root.name != "specification") {
    return Status::ParseError("expected <specification> root");
  }
  SpecificationBuilder builder;
  std::unordered_map<std::string, VertexId> by_name;
  for (const XmlNode* m : root.FindChildren("module")) {
    const std::string* name = m->FindAttribute("name");
    if (name == nullptr) {
      return Status::ParseError("<module> missing name attribute");
    }
    by_name[*name] = builder.AddModule(*name);
  }
  auto lookup = [&](const std::string& name) -> Result<VertexId> {
    auto it = by_name.find(name);
    if (it == by_name.end()) {
      return Status::ParseError("unknown module: " + name);
    }
    return it->second;
  };
  for (const XmlNode* e : root.FindChildren("edge")) {
    const std::string* from = e->FindAttribute("from");
    const std::string* to = e->FindAttribute("to");
    if (from == nullptr || to == nullptr) {
      return Status::ParseError("<edge> missing from/to attribute");
    }
    SKL_ASSIGN_OR_RETURN(VertexId u, lookup(*from));
    SKL_ASSIGN_OR_RETURN(VertexId v, lookup(*to));
    builder.AddEdge(u, v);
  }
  for (const XmlNode& child : root.children) {
    if (child.name != "fork" && child.name != "loop") continue;
    const std::string* vertices = child.FindAttribute("vertices");
    if (vertices == nullptr) {
      return Status::ParseError("<" + child.name +
                                "> missing vertices attribute");
    }
    std::vector<VertexId> span;
    for (const std::string& name : SplitWords(*vertices)) {
      SKL_ASSIGN_OR_RETURN(VertexId v, lookup(name));
      span.push_back(v);
    }
    if (child.name == "fork") {
      builder.DeclareFork(std::move(span));
    } else {
      builder.DeclareLoop(std::move(span));
    }
  }
  return std::move(builder).Build();
}

std::string WriteRunXml(const Run& run) {
  XmlNode root;
  root.name = "run";
  for (VertexId v = 0; v < run.num_vertices(); ++v) {
    XmlNode n;
    n.name = "vertex";
    n.attributes.emplace_back("id", std::to_string(v));
    n.attributes.emplace_back("module", run.ModuleNameOf(v));
    root.children.push_back(std::move(n));
  }
  for (const auto& [u, v] : run.graph().Edges()) {
    XmlNode e;
    e.name = "edge";
    e.attributes.emplace_back("from", std::to_string(u));
    e.attributes.emplace_back("to", std::to_string(v));
    root.children.push_back(std::move(e));
  }
  return SerializeXml(root);
}

Result<Run> ReadRunXml(const std::string& xml) {
  SKL_ASSIGN_OR_RETURN(XmlNode root, ParseXml(xml));
  if (root.name != "run") {
    return Status::ParseError("expected <run> root");
  }
  auto vertex_nodes = root.FindChildren("vertex");
  std::vector<std::string> module_of(vertex_nodes.size());
  for (const XmlNode* n : vertex_nodes) {
    const std::string* id = n->FindAttribute("id");
    const std::string* module = n->FindAttribute("module");
    if (id == nullptr || module == nullptr) {
      return Status::ParseError("<vertex> missing id/module attribute");
    }
    SKL_ASSIGN_OR_RETURN(uint32_t vid, ParseU32(*id));
    if (vid >= module_of.size()) {
      return Status::ParseError("vertex id out of range: " + *id);
    }
    if (!module_of[vid].empty()) {
      return Status::ParseError("duplicate vertex id: " + *id);
    }
    module_of[vid] = *module;
  }
  RunBuilder builder;
  for (const std::string& module : module_of) {
    if (module.empty()) {
      return Status::ParseError("vertex ids are not contiguous");
    }
    builder.AddVertex(module);
  }
  for (const XmlNode* e : root.FindChildren("edge")) {
    const std::string* from = e->FindAttribute("from");
    const std::string* to = e->FindAttribute("to");
    if (from == nullptr || to == nullptr) {
      return Status::ParseError("<edge> missing from/to attribute");
    }
    SKL_ASSIGN_OR_RETURN(uint32_t u, ParseU32(*from));
    SKL_ASSIGN_OR_RETURN(uint32_t v, ParseU32(*to));
    if (u >= module_of.size() || v >= module_of.size()) {
      return Status::ParseError("edge endpoint out of range");
    }
    builder.AddEdge(u, v);
  }
  return std::move(builder).Build();
}

}  // namespace skl
