// Workflow run (Definition 6): a labeled graph derived from a specification
// by fork (parallel) and loop (serial) executions. Vertices carry module
// names, which are unique in the specification but repeat in the run; the
// origin function maps each run vertex back to its specification vertex by
// module name (Definition 8).
#ifndef SKL_WORKFLOW_RUN_H_
#define SKL_WORKFLOW_RUN_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"
#include "src/graph/digraph.h"
#include "src/workflow/module_table.h"
#include "src/workflow/specification.h"

namespace skl {

/// Immutable run graph.
class Run {
 public:
  const Digraph& graph() const { return graph_; }
  VertexId num_vertices() const { return graph_.num_vertices(); }
  size_t num_edges() const { return graph_.num_edges(); }

  ModuleId ModuleOf(VertexId v) const { return modules_[v]; }
  const std::string& ModuleNameOf(VertexId v) const {
    return table_->Name(modules_[v]);
  }
  const ModuleTable& modules() const { return *table_; }

 private:
  friend class RunBuilder;

  Digraph graph_;
  std::vector<ModuleId> modules_;
  std::shared_ptr<const ModuleTable> table_;
};

/// Assembles a Run. Use the shared-table form when the run is produced
/// against an in-memory specification (module ids then coincide with spec
/// vertex ids); use the owned-table form when loading from external formats.
class RunBuilder {
 public:
  /// Builder with its own module table (names are interned on AddVertex).
  RunBuilder();
  /// Builder referencing an existing table (e.g. the specification's).
  explicit RunBuilder(std::shared_ptr<const ModuleTable> table);

  /// Adds a vertex labeled with `module_name`. Only valid for owned tables.
  VertexId AddVertex(std::string_view module_name);
  /// Adds a vertex labeled with an id from the shared table.
  VertexId AddVertexById(ModuleId module);

  RunBuilder& AddEdge(VertexId u, VertexId v);

  VertexId num_vertices() const {
    return static_cast<VertexId>(modules_.size());
  }

  Result<Run> Build() &&;

 private:
  std::shared_ptr<const ModuleTable> table_;
  ModuleTable* owned_table_ = nullptr;  // aliases table_ when owned
  std::vector<ModuleId> modules_;
  std::vector<std::pair<VertexId, VertexId>> edges_;
};

/// Computes the origin function (Definition 8): origin[v] is the spec vertex
/// whose module name matches run vertex v. Fails with InvalidRun if any run
/// module is unknown to the specification.
Result<std::vector<VertexId>> ComputeOrigin(const Specification& spec,
                                            const Run& run);

}  // namespace skl

#endif  // SKL_WORKFLOW_RUN_H_
