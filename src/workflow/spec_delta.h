// SpecDelta: a single edit to a workflow specification, the unit of the
// dynamic-update subsystem (docs/UPDATES.md). Deltas name modules by their
// *names*, never by vertex id — ids renumber when a module is removed, so a
// name is the only stable coordinate across epochs.
//
// Grammar (four operations):
//   AddModule    {module, from[], to[]}  — new module wired below the named
//                                          upstream modules and above the
//                                          named downstream modules
//   RemoveModule {module}                — drop the module and its edges
//   AddEdge      {edge_from, edge_to}    — new data channel between modules
//   RemoveEdge   {edge_from, edge_to}    — drop an existing data channel
//
// Applying a delta reconstructs the specification through
// SpecificationBuilder, so every Definition 1-3 invariant (acyclic flow
// network, unique source/sink, well-nested fork/loop subgraphs) is
// re-validated; an edit that would break the model comes back as a
// descriptive error and the base specification is untouched. The
// application also reports the *dirty region* — the new-graph vertices
// whose reachable sets may differ from the base — which is what lets a
// labeling scheme relabel incrementally instead of rebuilding from scratch.
#ifndef SKL_WORKFLOW_SPEC_DELTA_H_
#define SKL_WORKFLOW_SPEC_DELTA_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/workflow/specification.h"

namespace skl {

/// One specification edit. Which fields are meaningful depends on `kind`;
/// the rest must be left empty (the serializer enforces this shape).
struct SpecDelta {
  enum class Kind : uint8_t {
    kAddModule = 1,
    kRemoveModule = 2,
    kAddEdge = 3,
    kRemoveEdge = 4,
  };

  Kind kind = Kind::kAddModule;
  /// kAddModule / kRemoveModule: the module being added or removed.
  std::string module;
  /// kAddModule: upstream neighbors (edges from[i] -> module) and
  /// downstream neighbors (edges module -> to[i]). Either may be empty,
  /// but a module with no edges at all cannot join the flow network.
  std::vector<std::string> from;
  std::vector<std::string> to;
  /// kAddEdge / kRemoveEdge: the edge endpoints.
  std::string edge_from;
  std::string edge_to;
};

/// "AddModule", "RemoveModule", "AddEdge", "RemoveEdge" or "Unknown".
const char* SpecDeltaKindName(SpecDelta::Kind kind);

/// Serializes a delta to a self-contained byte blob (varint framing in the
/// op-log style): kind byte, then the kind's fields as length-prefixed
/// strings / string lists.
std::vector<uint8_t> SerializeSpecDelta(const SpecDelta& delta);

/// Restores a delta from SerializeSpecDelta bytes. Rejects unknown kinds,
/// truncated or oversized fields, and trailing garbage with ParseError.
Result<SpecDelta> DeserializeSpecDelta(std::span<const uint8_t> bytes);

/// The outcome of applying a delta to a base specification.
struct SpecDeltaApplication {
  /// The rebuilt (and re-validated) specification.
  Specification spec;
  /// Old vertex id -> new vertex id; kInvalidVertex for a removed module.
  /// Size == base.graph().num_vertices().
  std::vector<VertexId> vertex_remap;
  /// New-graph vertices whose reachable sets may differ from the base
  /// (sorted ascending): the ancestors of the delta's anchor vertex. Every
  /// vertex outside this set provably keeps its reachability row, so a
  /// canonical scheme can copy those labels forward.
  std::vector<VertexId> dirty;
};

/// Applies `delta` to `base`, revalidating through SpecificationBuilder.
/// On any failure (unknown module names, duplicate module, duplicate or
/// missing edge, a module that participates in a fork/loop declaration,
/// or a rebuild that violates Definitions 1-3) the error Status describes
/// the rejection and `base` is untouched.
Result<SpecDeltaApplication> ApplySpecDeltaToSpec(const Specification& base,
                                                  const SpecDelta& delta);

}  // namespace skl

#endif  // SKL_WORKFLOW_SPEC_DELTA_H_
