#include "src/workflow/module_table.h"

#include "src/common/check.h"

namespace skl {

ModuleId ModuleTable::Intern(std::string_view name) {
  auto it = index_.find(std::string(name));
  if (it != index_.end()) return it->second;
  ModuleId id = static_cast<ModuleId>(names_.size());
  names_.emplace_back(name);
  index_.emplace(names_.back(), id);
  return id;
}

ModuleId ModuleTable::Find(std::string_view name) const {
  auto it = index_.find(std::string(name));
  return it == index_.end() ? kInvalidModule : it->second;
}

const std::string& ModuleTable::Name(ModuleId id) const {
  SKL_DCHECK(id < names_.size());
  return names_[id];
}

}  // namespace skl
