#include "src/workflow/spec_delta.h"

#include <algorithm>
#include <deque>
#include <unordered_set>

#include "src/common/bit_codec.h"

namespace skl {

namespace {

// Allocation bounds for deserialization: a module name or neighbor list
// larger than this is corruption, not a workflow.
constexpr uint64_t kMaxNameBytes = 4096;
constexpr uint64_t kMaxNeighborCount = 4096;

void WriteString(BitWriter& writer, const std::string& s) {
  writer.WriteVarint(s.size());
  writer.WriteBytes(
      {reinterpret_cast<const uint8_t*>(s.data()), s.size()});
}

Status ReadString(BitReader& reader, const char* what, std::string* out) {
  uint64_t len = 0;
  if (!reader.ReadVarint(&len).ok()) {
    return Status::ParseError(std::string("spec delta: truncated ") + what);
  }
  if (len == 0 || len > kMaxNameBytes) {
    return Status::ParseError(std::string("spec delta: ") + what +
                              " length " + std::to_string(len) +
                              " is outside [1, " +
                              std::to_string(kMaxNameBytes) + "]");
  }
  std::span<const uint8_t> bytes;
  if (!reader.ReadBytes(len, &bytes).ok()) {
    return Status::ParseError(std::string("spec delta: truncated ") + what);
  }
  out->assign(reinterpret_cast<const char*>(bytes.data()), bytes.size());
  return Status::OK();
}

Status ReadStringList(BitReader& reader, const char* what,
                      std::vector<std::string>* out) {
  uint64_t count = 0;
  if (!reader.ReadVarint(&count).ok()) {
    return Status::ParseError(std::string("spec delta: truncated ") + what +
                              " count");
  }
  if (count > kMaxNeighborCount) {
    return Status::ParseError(std::string("spec delta: ") + what +
                              " count " + std::to_string(count) +
                              " exceeds " +
                              std::to_string(kMaxNeighborCount));
  }
  out->resize(count);
  for (uint64_t i = 0; i < count; ++i) {
    SKL_RETURN_NOT_OK(ReadString(reader, what, &(*out)[i]));
  }
  return Status::OK();
}

/// Ancestors of `anchor` in `g` (vertices with a path *to* anchor),
/// including anchor itself, sorted ascending.
std::vector<VertexId> AncestorsOf(const Digraph& g, VertexId anchor) {
  std::vector<bool> seen(g.num_vertices(), false);
  std::deque<VertexId> frontier{anchor};
  seen[anchor] = true;
  while (!frontier.empty()) {
    const VertexId v = frontier.front();
    frontier.pop_front();
    for (VertexId u : g.InNeighbors(v)) {
      if (!seen[u]) {
        seen[u] = true;
        frontier.push_back(u);
      }
    }
  }
  std::vector<VertexId> out;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (seen[v]) out.push_back(v);
  }
  return out;
}

Result<VertexId> ResolveModule(const Specification& base,
                               const std::string& name, const char* role) {
  if (name.empty()) {
    return Status::InvalidArgument(std::string("spec delta: empty ") + role +
                                   " module name");
  }
  const VertexId v = base.VertexOf(name);
  if (v == kInvalidVertex) {
    return Status::NotFound(std::string("spec delta: ") + role +
                            " module \"" + name +
                            "\" is not in the specification");
  }
  return v;
}

}  // namespace

const char* SpecDeltaKindName(SpecDelta::Kind kind) {
  switch (kind) {
    case SpecDelta::Kind::kAddModule:
      return "AddModule";
    case SpecDelta::Kind::kRemoveModule:
      return "RemoveModule";
    case SpecDelta::Kind::kAddEdge:
      return "AddEdge";
    case SpecDelta::Kind::kRemoveEdge:
      return "RemoveEdge";
  }
  return "Unknown";
}

std::vector<uint8_t> SerializeSpecDelta(const SpecDelta& delta) {
  BitWriter writer;
  writer.WriteVarint(static_cast<uint64_t>(delta.kind));
  switch (delta.kind) {
    case SpecDelta::Kind::kAddModule:
      WriteString(writer, delta.module);
      writer.WriteVarint(delta.from.size());
      for (const std::string& name : delta.from) WriteString(writer, name);
      writer.WriteVarint(delta.to.size());
      for (const std::string& name : delta.to) WriteString(writer, name);
      break;
    case SpecDelta::Kind::kRemoveModule:
      WriteString(writer, delta.module);
      break;
    case SpecDelta::Kind::kAddEdge:
    case SpecDelta::Kind::kRemoveEdge:
      WriteString(writer, delta.edge_from);
      WriteString(writer, delta.edge_to);
      break;
  }
  return writer.Finish();
}

Result<SpecDelta> DeserializeSpecDelta(std::span<const uint8_t> bytes) {
  BitReader reader(bytes.data(), bytes.size());
  uint64_t kind = 0;
  if (!reader.ReadVarint(&kind).ok()) {
    return Status::ParseError("spec delta: truncated kind");
  }
  if (kind < static_cast<uint64_t>(SpecDelta::Kind::kAddModule) ||
      kind > static_cast<uint64_t>(SpecDelta::Kind::kRemoveEdge)) {
    return Status::ParseError("spec delta: unknown kind " +
                              std::to_string(kind));
  }
  SpecDelta delta;
  delta.kind = static_cast<SpecDelta::Kind>(kind);
  switch (delta.kind) {
    case SpecDelta::Kind::kAddModule:
      SKL_RETURN_NOT_OK(ReadString(reader, "module name", &delta.module));
      SKL_RETURN_NOT_OK(ReadStringList(reader, "from list", &delta.from));
      SKL_RETURN_NOT_OK(ReadStringList(reader, "to list", &delta.to));
      break;
    case SpecDelta::Kind::kRemoveModule:
      SKL_RETURN_NOT_OK(ReadString(reader, "module name", &delta.module));
      break;
    case SpecDelta::Kind::kAddEdge:
    case SpecDelta::Kind::kRemoveEdge:
      SKL_RETURN_NOT_OK(ReadString(reader, "edge source", &delta.edge_from));
      SKL_RETURN_NOT_OK(ReadString(reader, "edge target", &delta.edge_to));
      break;
  }
  if (reader.bit_position() != bytes.size() * 8) {
    return Status::ParseError("spec delta: trailing bytes after the delta");
  }
  return delta;
}

Result<SpecDeltaApplication> ApplySpecDeltaToSpec(const Specification& base,
                                                  const SpecDelta& delta) {
  const Digraph& g = base.graph();
  const VertexId n = g.num_vertices();

  // -- Resolve the delta against the base and decide the vertex remap. ----
  VertexId removed = kInvalidVertex;       // kRemoveModule target
  VertexId edge_u = kInvalidVertex;        // kAddEdge/kRemoveEdge endpoints
  VertexId edge_v = kInvalidVertex;
  std::vector<VertexId> add_from;          // kAddModule neighbors (base ids)
  std::vector<VertexId> add_to;
  switch (delta.kind) {
    case SpecDelta::Kind::kAddModule: {
      if (delta.module.empty()) {
        return Status::InvalidArgument("spec delta: empty module name");
      }
      if (base.VertexOf(delta.module) != kInvalidVertex) {
        return Status::InvalidArgument("spec delta: module \"" +
                                       delta.module + "\" already exists");
      }
      if (delta.from.empty() && delta.to.empty()) {
        return Status::InvalidArgument(
            "spec delta: AddModule needs at least one from/to neighbor to "
            "join the flow network");
      }
      std::unordered_set<VertexId> seen_from, seen_to;
      for (const std::string& name : delta.from) {
        SKL_ASSIGN_OR_RETURN(VertexId u, ResolveModule(base, name, "from"));
        if (!seen_from.insert(u).second) {
          return Status::InvalidArgument(
              "spec delta: duplicate from neighbor \"" + name + "\"");
        }
        add_from.push_back(u);
      }
      for (const std::string& name : delta.to) {
        SKL_ASSIGN_OR_RETURN(VertexId v, ResolveModule(base, name, "to"));
        if (!seen_to.insert(v).second) {
          return Status::InvalidArgument(
              "spec delta: duplicate to neighbor \"" + name + "\"");
        }
        add_to.push_back(v);
      }
      break;
    }
    case SpecDelta::Kind::kRemoveModule: {
      SKL_ASSIGN_OR_RETURN(removed,
                           ResolveModule(base, delta.module, "removed"));
      if (removed == base.source() || removed == base.sink()) {
        return Status::InvalidArgument(
            "spec delta: cannot remove the flow network's " +
            std::string(removed == base.source() ? "source" : "sink") +
            " module \"" + delta.module + "\"");
      }
      for (size_t i = 0; i < base.subgraphs().size(); ++i) {
        if (base.subgraphs()[i].vertex_set.Test(removed)) {
          return Status::InvalidArgument(
              "spec delta: module \"" + delta.module +
              "\" participates in a declared " +
              (base.subgraphs()[i].kind == SubgraphKind::kFork ? "fork"
                                                               : "loop") +
              " subgraph; remove the declaration first");
        }
      }
      break;
    }
    case SpecDelta::Kind::kAddEdge:
    case SpecDelta::Kind::kRemoveEdge: {
      SKL_ASSIGN_OR_RETURN(edge_u,
                           ResolveModule(base, delta.edge_from, "source"));
      SKL_ASSIGN_OR_RETURN(edge_v,
                           ResolveModule(base, delta.edge_to, "target"));
      if (edge_u == edge_v) {
        return Status::InvalidArgument(
            "spec delta: self-loop edge on module \"" + delta.edge_from +
            "\"");
      }
      const bool exists = g.HasEdge(edge_u, edge_v);
      if (delta.kind == SpecDelta::Kind::kAddEdge && exists) {
        return Status::InvalidArgument("spec delta: edge \"" +
                                       delta.edge_from + "\" -> \"" +
                                       delta.edge_to + "\" already exists");
      }
      if (delta.kind == SpecDelta::Kind::kRemoveEdge && !exists) {
        return Status::NotFound("spec delta: edge \"" + delta.edge_from +
                                "\" -> \"" + delta.edge_to +
                                "\" is not in the specification");
      }
      break;
    }
  }

  SpecDeltaApplication out;
  out.vertex_remap.resize(n);
  for (VertexId v = 0; v < n; ++v) {
    out.vertex_remap[v] =
        v == removed ? kInvalidVertex : (removed != kInvalidVertex && v > removed ? v - 1 : v);
  }

  // -- Rebuild through the builder so Definitions 1-3 are re-validated. ---
  SpecificationBuilder builder;
  for (VertexId v = 0; v < n; ++v) {
    if (v == removed) continue;
    builder.AddModule(base.ModuleName(v));
  }
  VertexId added = kInvalidVertex;
  if (delta.kind == SpecDelta::Kind::kAddModule) {
    added = builder.AddModule(delta.module);
  }
  for (const auto& [u, v] : g.Edges()) {
    if (u == removed || v == removed) continue;
    if (delta.kind == SpecDelta::Kind::kRemoveEdge && u == edge_u &&
        v == edge_v) {
      continue;
    }
    builder.AddEdge(out.vertex_remap[u], out.vertex_remap[v]);
  }
  if (delta.kind == SpecDelta::Kind::kAddEdge) {
    builder.AddEdge(edge_u, edge_v);
  }
  for (VertexId u : add_from) builder.AddEdge(u, added);
  for (VertexId v : add_to) builder.AddEdge(added, v);
  for (const SubgraphInfo& sub : base.subgraphs()) {
    std::vector<VertexId> vertices;
    vertices.reserve(sub.vertices.size());
    for (VertexId v : sub.vertices) vertices.push_back(out.vertex_remap[v]);
    if (sub.kind == SubgraphKind::kFork) {
      builder.DeclareFork(std::move(vertices));
    } else {
      builder.DeclareLoop(std::move(vertices));
    }
  }
  Result<Specification> rebuilt = std::move(builder).Build();
  if (!rebuilt.ok()) {
    return Status(rebuilt.status().code(),
                  std::string("spec delta ") + SpecDeltaKindName(delta.kind) +
                      " rejected: " + rebuilt.status().message());
  }
  out.spec = std::move(rebuilt).value();

  // -- Dirty region: ancestors of the delta's anchor. Removing a module
  // anchors on the *base* graph (the vertex is gone from the new one);
  // everything else anchors on the new graph. In all four cases a vertex
  // outside the anchor's ancestor set keeps its reachable set: the edit
  // only creates or destroys paths that pass through the anchor.
  if (delta.kind == SpecDelta::Kind::kRemoveModule) {
    for (VertexId v : AncestorsOf(g, removed)) {
      if (v != removed) out.dirty.push_back(out.vertex_remap[v]);
    }
    std::sort(out.dirty.begin(), out.dirty.end());
  } else {
    const VertexId anchor =
        delta.kind == SpecDelta::Kind::kAddModule ? added : edge_u;
    out.dirty = AncestorsOf(out.spec.graph(), anchor);
  }
  return out;
}

}  // namespace skl
