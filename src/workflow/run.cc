#include "src/workflow/run.h"

#include <utility>

#include "src/common/check.h"

namespace skl {

RunBuilder::RunBuilder() {
  auto table = std::make_shared<ModuleTable>();
  owned_table_ = table.get();
  table_ = std::move(table);
}

RunBuilder::RunBuilder(std::shared_ptr<const ModuleTable> table)
    : table_(std::move(table)) {}

VertexId RunBuilder::AddVertex(std::string_view module_name) {
  SKL_CHECK_MSG(owned_table_ != nullptr,
                "AddVertex(name) requires an owned module table");
  modules_.push_back(owned_table_->Intern(module_name));
  return static_cast<VertexId>(modules_.size() - 1);
}

VertexId RunBuilder::AddVertexById(ModuleId module) {
  modules_.push_back(module);
  return static_cast<VertexId>(modules_.size() - 1);
}

RunBuilder& RunBuilder::AddEdge(VertexId u, VertexId v) {
  edges_.emplace_back(u, v);
  return *this;
}

Result<Run> RunBuilder::Build() && {
  Run run;
  for (ModuleId m : modules_) {
    if (m >= table_->size()) {
      return Status::InvalidRun("run vertex references unknown module id");
    }
  }
  DigraphBuilder gb(static_cast<VertexId>(modules_.size()));
  for (const auto& [u, v] : edges_) {
    if (u >= modules_.size() || v >= modules_.size()) {
      return Status::InvalidRun("run edge endpoint out of range");
    }
    if (u == v) {
      return Status::InvalidRun("run has a self-loop edge");
    }
    gb.AddEdge(u, v);
  }
  run.graph_ = std::move(gb).Build();
  run.modules_ = std::move(modules_);
  run.table_ = std::move(table_);
  return run;
}

Result<std::vector<VertexId>> ComputeOrigin(const Specification& spec,
                                            const Run& run) {
  std::vector<VertexId> origin(run.num_vertices(), kInvalidVertex);
  // Fast path: the run shares the specification's module table, so module ids
  // are spec vertex ids already.
  const bool shared_table = &run.modules() == &spec.modules();
  for (VertexId v = 0; v < run.num_vertices(); ++v) {
    VertexId u;
    if (shared_table) {
      u = static_cast<VertexId>(run.ModuleOf(v));
    } else {
      u = spec.VertexOf(run.ModuleNameOf(v));
    }
    if (u == kInvalidVertex || u >= spec.graph().num_vertices()) {
      return Status::InvalidRun("run module '" + run.ModuleNameOf(v) +
                                "' does not appear in the specification");
    }
    origin[v] = u;
  }
  return origin;
}

}  // namespace skl
