// The fork-and-loop hierarchy T_G (paper Section 4.1, Figure 6): an
// unordered tree whose root stands for the whole specification graph G and
// whose other nodes stand for the fork/loop subgraphs, ordered by nesting.
// The hierarchy also precomputes everything the plan-recovery algorithm
// (Section 5) needs: dominating sets, "own" vertices/edges (those not covered
// by a deeper subgraph), per-vertex owners, leaf leader edges, and designated
// children for non-leaf leader propagation.
#ifndef SKL_WORKFLOW_HIERARCHY_H_
#define SKL_WORKFLOW_HIERARCHY_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "src/common/bitset.h"
#include "src/common/status.h"
#include "src/graph/digraph.h"
#include "src/workflow/subgraph.h"

namespace skl {

using HierNodeId = int32_t;
inline constexpr HierNodeId kHierRoot = 0;
inline constexpr HierNodeId kInvalidHierNode = -1;

enum class HierKind : uint8_t { kRoot, kFork, kLoop };

struct HierNode {
  HierKind kind = HierKind::kRoot;
  /// Index into Specification::subgraphs() (-1 for the root).
  int32_t subgraph_index = -1;
  VertexId source = kInvalidVertex;  ///< s(H); s(G) for the root.
  VertexId sink = kInvalidVertex;
  HierNodeId parent = kInvalidHierNode;
  std::vector<HierNodeId> children;
  int32_t depth = 1;  ///< root has depth 1, matching the paper's T_G(i).

  /// DomSet(H) over V(G): V*(H) for forks, V(H) for loops, V(G) for root.
  DynamicBitset dom_set;
  /// Edges of H not contained in any child subgraph.
  std::vector<std::pair<VertexId, VertexId>> own_edges;
  /// For leaves: a member edge of E(H) used to seed copy discovery in runs.
  std::pair<VertexId, VertexId> leader_edge{kInvalidVertex, kInvalidVertex};
  /// For non-leaves: the child whose collapsed execution edge seeds copies.
  HierNodeId designated_child = kInvalidHierNode;
};

class Hierarchy {
 public:
  Hierarchy() = default;

  const std::vector<HierNode>& nodes() const { return nodes_; }
  const HierNode& node(HierNodeId id) const { return nodes_[id]; }
  size_t size() const { return nodes_.size(); }

  /// Depth of the tree ([T_G] in the paper); 1 for a spec without forks/loops.
  int32_t depth() const { return depth_; }

  /// Node ids at a given depth (1-based).
  const std::vector<HierNodeId>& Level(int32_t d) const { return levels_[d]; }

  /// Owner of a spec vertex: the deepest node whose DomSet contains it.
  HierNodeId OwnerOf(VertexId v) const { return owner_[v]; }
  const std::vector<HierNodeId>& owners() const { return owner_; }

  /// Vertices owned by each node (owner == node).
  const std::vector<VertexId>& OwnVertices(HierNodeId id) const {
    return own_vertices_[id];
  }

  bool IsLeaf(HierNodeId id) const { return nodes_[id].children.empty(); }

 private:
  friend Result<Hierarchy> BuildHierarchy(
      const Digraph& g, const std::vector<SubgraphInfo>& subgraphs,
      VertexId source, VertexId sink);

  std::vector<HierNode> nodes_;
  std::vector<std::vector<HierNodeId>> levels_;  // index 0 unused
  std::vector<HierNodeId> owner_;
  std::vector<std::vector<VertexId>> own_vertices_;
  int32_t depth_ = 1;
};

/// Builds T_G from validated, well-nested subgraphs. Nodes are indexed with
/// the root at 0 and subgraph i at node id i+1.
Result<Hierarchy> BuildHierarchy(const Digraph& g,
                                 const std::vector<SubgraphInfo>& subgraphs,
                                 VertexId source, VertexId sink);

}  // namespace skl

#endif  // SKL_WORKFLOW_HIERARCHY_H_
