// Workflow specification (G, F, L) per Definition 3: a uniquely-labeled
// acyclic flow network G together with a well-nested system of fork subgraphs
// F (atomic, self-contained; executed in parallel) and loop subgraphs L
// (complete, self-contained; executed in series).
//
// Forks and loops are declared by their full vertex set; edge sets are
// normalized per the paper's model:
//   * loop edges  = all edges of G induced by the vertex set (a complete
//     subgraph contains every branch between its terminals);
//   * fork edges  = induced edges minus any direct source->sink edge (which,
//     by Definition 1(3), may bypass the fork; an atomic fork containing both
//     a direct edge and internal structure would not be atomic).
#ifndef SKL_WORKFLOW_SPECIFICATION_H_
#define SKL_WORKFLOW_SPECIFICATION_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/bitset.h"
#include "src/common/status.h"
#include "src/graph/digraph.h"
#include "src/workflow/hierarchy.h"
#include "src/workflow/module_table.h"
#include "src/workflow/subgraph.h"

namespace skl {

/// Immutable validated specification.
class Specification {
 public:
  const Digraph& graph() const { return graph_; }
  const ModuleTable& modules() const { return *modules_; }
  std::shared_ptr<const ModuleTable> shared_modules() const {
    return modules_;
  }

  /// Module name of a specification vertex (vertex id == declaration order).
  const std::string& ModuleName(VertexId v) const;
  /// Vertex for a module name, or kInvalidVertex.
  VertexId VertexOf(std::string_view module_name) const;

  VertexId source() const { return source_; }
  VertexId sink() const { return sink_; }

  const std::vector<SubgraphInfo>& subgraphs() const { return subgraphs_; }
  const Hierarchy& hierarchy() const { return hierarchy_; }

  size_t num_forks() const { return num_forks_; }
  size_t num_loops() const { return num_loops_; }

 private:
  friend class SpecificationBuilder;

  Digraph graph_;
  std::shared_ptr<ModuleTable> modules_;
  VertexId source_ = kInvalidVertex;
  VertexId sink_ = kInvalidVertex;
  std::vector<SubgraphInfo> subgraphs_;
  Hierarchy hierarchy_;
  size_t num_forks_ = 0;
  size_t num_loops_ = 0;
};

/// Assembles and validates a Specification.
class SpecificationBuilder {
 public:
  /// Adds a module (== one vertex). Names must be unique; duplicates are
  /// reported by Build().
  VertexId AddModule(std::string_view name);

  /// Adds a data-channel edge between two previously added modules.
  SpecificationBuilder& AddEdge(VertexId u, VertexId v);

  /// Declares a fork over the given full vertex set (source, internals, sink).
  SpecificationBuilder& DeclareFork(std::vector<VertexId> vertices);

  /// Declares a loop over the given full vertex set.
  SpecificationBuilder& DeclareLoop(std::vector<VertexId> vertices);

  /// Validates everything (acyclic flow network; Definitions 1 and 2) and
  /// builds the fork/loop hierarchy T_G.
  Result<Specification> Build() &&;

 private:
  std::vector<std::string> names_;
  std::vector<std::pair<VertexId, VertexId>> edges_;
  std::vector<std::pair<SubgraphKind, std::vector<VertexId>>> declared_;
};

}  // namespace skl

#endif  // SKL_WORKFLOW_SPECIFICATION_H_
